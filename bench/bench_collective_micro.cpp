// Microbenchmarks (google-benchmark) of the engineering substrate:
//   * real threaded ring / hierarchical / multi-channel all-reduce
//     (wall-clock, real payloads, real threads);
//   * simulated-collective event throughput (how fast the DES executes);
//   * packing planner throughput.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "collective/simulated.h"
#include "collective/threaded.h"
#include "common/rng.h"
#include "core/aiacc_engine.h"
#include "core/packing.h"
#include "dnn/zoo.h"

namespace {

using namespace aiacc;

void BM_ThreadedRingAllReduce(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const std::size_t elems = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    transport::InProcTransport tr(world);
    std::vector<std::vector<float>> data(static_cast<std::size_t>(world),
                                         std::vector<float>(elems, 1.0f));
    state.ResumeTiming();
    std::vector<std::thread> threads;
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        collective::Comm comm{&tr, r, world, 0};
        Status st =
            collective::RingAllReduce(comm, data[static_cast<std::size_t>(r)],
                                      collective::ReduceOp::kSum);
        if (!st.ok()) {
          std::fprintf(stderr, "ring all-reduce failed: %s\n",
                       st.ToString().c_str());
          std::exit(2);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          world * elems * sizeof(float));
}
BENCHMARK(BM_ThreadedRingAllReduce)
    ->Args({2, 1 << 16})
    ->Args({4, 1 << 16})
    ->Args({4, 1 << 20})
    ->Unit(benchmark::kMillisecond);

void BM_ThreadedMultiChannel(benchmark::State& state) {
  const int world = 4;
  const int channels = static_cast<int>(state.range(0));
  const std::size_t elems = 1 << 20;
  for (auto _ : state) {
    state.PauseTiming();
    transport::InProcTransport tr(world);
    std::vector<std::vector<float>> data(static_cast<std::size_t>(world),
                                         std::vector<float>(elems, 1.0f));
    state.ResumeTiming();
    std::vector<std::thread> threads;
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        collective::Comm comm{&tr, r, world, 0};
        Status st = collective::MultiChannelAllReduce(
            comm, data[static_cast<std::size_t>(r)],
            collective::ReduceOp::kAvg, channels);
        if (!st.ok()) {
          std::fprintf(stderr, "multi-channel all-reduce failed: %s\n",
                       st.ToString().c_str());
          std::exit(2);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          world * elems * sizeof(float));
}
BENCHMARK(BM_ThreadedMultiChannel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatedAllReduceEvents(benchmark::State& state) {
  // How many simulated all-reduce units per second the DES sustains at a
  // 256-GPU topology (the cost that bounds big sweeps).
  const int units = 64;
  for (auto _ : state) {
    sim::Engine engine;
    net::CloudFabric fabric(engine,
                            net::Topology{32, 8, net::TransportKind::kTcp},
                            net::FabricParams{});
    collective::SimCollectives coll(fabric);
    int done = 0;
    for (int u = 0; u < units; ++u) {
      collective::SimCollectives::Unit unit;
      unit.bytes_per_rank = 8 << 20;
      unit.on_done = [&done](double) { ++done; };
      coll.Start(std::move(unit));
    }
    engine.Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          units);
}
BENCHMARK(BM_SimulatedAllReduceEvents);

void BM_PackingPlanner(benchmark::State& state) {
  const auto model = dnn::MakeResNet50();
  const auto registry = core::GradientRegistry::FromModel(model);
  std::vector<int> ready(static_cast<std::size_t>(registry.size()));
  for (int i = 0; i < registry.size(); ++i) ready[static_cast<std::size_t>(i)] = i;
  for (auto _ : state) {
    core::PackingPlanner planner(8u << 20);
    auto units = planner.Pack(registry, ready);
    benchmark::DoNotOptimize(units);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          registry.size());
}
BENCHMARK(BM_PackingPlanner);

void BM_FullSimulatedIteration(benchmark::State& state) {
  // Wall-clock cost of simulating one AIACC training iteration at scale —
  // the unit of work behind every figure bench.
  const int hosts = static_cast<int>(state.range(0));
  dnn::ModelDescriptor model = dnn::MakeResNet50();
  sim::Engine engine;
  net::CloudFabric fabric(engine,
                          net::Topology{hosts, 8, net::TransportKind::kTcp},
                          net::FabricParams{});
  collective::SimCollectives coll(fabric);
  core::WorkloadSetup setup;
  setup.fabric = &fabric;
  setup.collectives = &coll;
  setup.model = &model;
  setup.batch_per_gpu = 64;
  core::AiaccEngine ddl(setup, core::CommConfig{});
  for (auto _ : state) {
    auto stats = ddl.RunIterations(1);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_FullSimulatedIteration)->Arg(4)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
