// §VI meta-solver analysis: how the sliding-window AUC bandit allocates the
// warm-up budget across the four search techniques, and what each technique
// achieves alone on the real (simulated) tuning objective.
#include "bench_util.h"

#include "autotune/autotuner.h"
#include "core/aiacc_engine.h"
#include "dnn/zoo.h"

using namespace aiacc;
using namespace aiacc::bench;

namespace {

/// Real objective: one warm-up training iteration of ResNet-50 on 32 GPUs
/// under the candidate configuration.
struct SimObjective {
  dnn::ModelDescriptor model = dnn::MakeResNet50();
  sim::Engine engine;
  net::CloudFabric fabric{engine, net::Topology{4, 8, net::TransportKind::kTcp},
                          net::FabricParams{}};
  collective::SimCollectives collectives{fabric};
  std::unique_ptr<core::AiaccEngine> ddl;

  SimObjective() {
    core::WorkloadSetup setup;
    setup.fabric = &fabric;
    setup.collectives = &collectives;
    setup.model = &model;
    setup.batch_per_gpu = 64;
    ddl = std::make_unique<core::AiaccEngine>(setup, core::CommConfig{});
  }
  double operator()(const core::CommConfig& cfg) {
    ddl->SetConfig(cfg);
    const auto stats = ddl->RunIterations(1);
    return 64.0 * 32 / stats.front().duration;
  }
};

}  // namespace

int main() {
  PrintHeader("§VI — MAB meta-solver budget allocation (AUC credit)",
              "Paper §VI (n=100 iterations, C=0.2, sliding-window AUC)",
              "all four techniques exercised; budget shifts toward "
              "techniques that deliver new global bests");

  SimObjective objective;
  autotune::AutotuneOptions options;
  options.solver.budget = 100;  // the paper's default
  const auto result = autotune::Tune(
      [&](const core::CommConfig& c) { return objective(c); }, options);

  TablePrinter usage({"technique", "iterations used", "share"});
  for (std::size_t t = 0; t < result.searcher_names.size(); ++t) {
    usage.AddRow({result.searcher_names[t],
                  std::to_string(result.searcher_usage[t]),
                  FormatDouble(100.0 * result.searcher_usage[t] /
                                   options.solver.budget, 1) + "%"});
  }
  usage.Print();

  std::printf("\nBest configuration found: %s -> %.0f samples/s\n",
              result.best_config.ToString().c_str(), result.best_score);

  std::printf("\nSearch trajectory (new global bests):\n");
  TablePrinter traj({"step", "technique", "config", "samples/s"});
  for (const auto& rec : result.history) {
    if (!rec.new_best) continue;
    traj.AddRow({std::to_string(rec.step), rec.searcher,
                 rec.config.ToString(), FormatDouble(rec.score, 0)});
  }
  traj.Print();

  // Each technique alone, same budget split.
  std::printf("\nEach technique alone (25 iterations each):\n");
  TablePrinter alone({"technique", "best samples/s"});
  core::CommConfigSpace space;
  auto ensemble = autotune::MakeDefaultEnsemble(space);
  for (auto& searcher : ensemble) {
    SimObjective solo;
    Rng rng(7);
    double best = 0.0;
    for (int i = 0; i < 25; ++i) {
      const core::CommConfig cfg = searcher->Propose(rng);
      const double score = solo(cfg);
      searcher->Observe({cfg, score});
      best = std::max(best, score);
    }
    alone.AddRow({searcher->Name(), FormatDouble(best, 0)});
  }
  alone.Print();
  return 0;
}
