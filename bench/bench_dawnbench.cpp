// §VIII-C: DAWNBench-style projection (time and public-cloud cost to train
// ResNet-50 to 93% top-5 on ImageNet) and the InsightFace improvement. The
// paper's DAWNBench entry reached the goal in 158 s of *communication-
// optimized* training on 128 V100s; we project time-to-accuracy from the
// measured steady-state throughput (epochs-to-accuracy and price are
// constants documented below) and report the InsightFace-R100 128-GPU
// speedup over a hand-tuned Horovod DDL setup (paper: 3.8x).
#include "bench_util.h"

using namespace aiacc;
using namespace aiacc::bench;

int main() {
  PrintHeader("§VIII-C — DAWNBench projection + InsightFace",
              "Paper §VIII-C",
              "AIACC reaches the accuracy goal in a fraction of Horovod's "
              "time/cost; InsightFace ~3-4x at 128 GPUs");

  // DAWNBench-style projection. The paper's record run used progressive
  // image resizing + fp16, finishing in ~3 effective epochs' worth of
  // full-resolution work; we keep the constants explicit.
  constexpr double kImagenetImages = 1.28e6;
  constexpr double kEffectiveEpochs = 3.2;   // progressive-resize schedule
  constexpr double kInstancePricePerHour = 12.0;  // 8x V100 instance, USD
  TablePrinter table({"engine", "GPUs", "throughput (img/s)",
                      "time to 93% top-5", "cloud cost"});
  for (auto kind : {trainer::EngineKind::kAiacc,
                    trainer::EngineKind::kHorovod,
                    trainer::EngineKind::kPytorchDdp}) {
    auto spec = MakeSpec("resnet50", 128, kind, 64);
    spec.wire_dtype = dnn::DType::kF16;  // the record run used fp16 wire
    const double throughput = trainer::Run(spec).throughput;
    const double seconds = kImagenetImages * kEffectiveEpochs / throughput;
    const double cost =
        seconds / 3600.0 * (128 / 8) * kInstancePricePerHour;
    table.AddRow({ToString(kind), "128", FormatDouble(throughput, 0),
                  FormatDouble(seconds, 0) + " s",
                  "$" + FormatDouble(cost, 2)});
  }
  table.Print();
  std::printf("(paper record: 158 s / $7.43 on 128 V100s; our substrate is "
              "a simulator, the shape to check is the AIACC-vs-baseline "
              "ratio)\n");

  // InsightFace-R100 at 128 GPUs vs the hand-tuned Horovod DDL code.
  const double aiacc =
      Throughput("insightface-r100", 128, trainer::EngineKind::kAiacc, 128);
  const double horovod =
      Throughput("insightface-r100", 128, trainer::EngineKind::kHorovod, 128);
  std::printf("\nInsightFace-R100, 128 GPUs: AIACC %.0f img/s vs Horovod "
              "%.0f img/s -> %.2fx (paper: 3.8x)\n",
              aiacc, horovod, aiacc / horovod);
  return 0;
}
