// Table I: DNN model characteristics. Prints our analytically-constructed
// architectures' parameter counts and FLOPs next to the paper's numbers.
// Deviations (noted in EXPERIMENTS.md): the paper's ResNet-101 row (29.4M)
// differs from the published architecture (44.5M), and its FLOPs column
// mixes MAC conventions across rows; we use 1 MAC = 2 FLOPs uniformly.
#include "bench_util.h"

#include "dnn/zoo.h"

using namespace aiacc;
using namespace aiacc::bench;

int main() {
  PrintHeader("Table I — DNN model characteristics",
              "Paper Table I", "parameter counts match the published "
              "architectures; FLOPs under the 2*MAC convention");

  struct PaperRow {
    const char* model;
    double params_m;
    double flops_g;
  };
  const PaperRow paper[] = {
      {"vgg16", 138.3, 31.0},       {"resnet50", 25.6, 4.0},
      {"resnet101", 29.4, 8.0},     {"transformer", 66.5, 145.0},
      {"bert-large", 302.2, 232.0},
  };

  TablePrinter table({"model", "#params (ours)", "#params (paper)",
                      "FLOPs/sample (ours)", "FLOPs (paper)", "#gradients",
                      "gradient bytes"});
  for (const PaperRow& row : paper) {
    const auto m = dnn::MakeModelByName(row.model);
    table.AddRow({m.name(),
                  FormatDouble(m.TotalParameters() / 1e6, 1) + "M",
                  FormatDouble(row.params_m, 1) + "M",
                  FormatDouble(m.FwdFlopsPerSample() / 1e9, 1) + "G",
                  FormatDouble(row.flops_g, 1) + "G",
                  std::to_string(m.NumGradients()),
                  FormatBytes(static_cast<double>(m.TotalParameterBytes()))});
  }
  // Extended models used in §VIII-C/D.
  for (const char* name : {"gpt2-xl", "ctr", "insightface-r100"}) {
    const auto m = dnn::MakeModelByName(name);
    table.AddRow({m.name(),
                  FormatDouble(m.TotalParameters() / 1e6, 1) + "M", "-",
                  FormatDouble(m.FwdFlopsPerSample() / 1e9, 1) + "G", "-",
                  std::to_string(m.NumGradients()),
                  FormatBytes(static_cast<double>(m.TotalParameterBytes()))});
  }
  table.Print();
  return 0;
}
