// §VIII-D auto-tuning analysis: what the tuner actually picks across
// workloads and cluster sizes. The paper observes: ring chosen over tree;
// 2-24 concurrent streams, more streams with more GPUs; larger granularity
// for Transformer-class models. The warm-up search runs real (simulated)
// training iterations, so tuning cycles also advance training.
#include "bench_util.h"

using namespace aiacc;
using namespace aiacc::bench;

int main() {
  PrintHeader("§VIII-D — auto-tuned communication parameters",
              "Paper §VIII-D 'Auto-tuning parameters'",
              "streams grow with GPU count (2..24); Transformer-class "
              "models pick larger granularity; ring preferred");

  autotune::TuningCache cache;
  TablePrinter table({"model", "GPUs", "streams", "granularity", "algorithm",
                      "depth", "tuned thr", "default thr", "gain"});
  struct Workload {
    const char* model;
    int batch;
  };
  const Workload workloads[] = {
      {"vgg16", 64}, {"resnet50", 64}, {"bert-large", 8}};
  for (const Workload& w : workloads) {
    for (int gpus : {8, 64, 256}) {
      auto spec = MakeSpec(w.model, gpus, trainer::EngineKind::kAiaccAutotuned,
                           w.batch);
      spec.tune_budget = 48;
      spec.tuning_cache = &cache;
      const auto tuned = trainer::Run(spec);

      auto fixed = MakeSpec(w.model, gpus, trainer::EngineKind::kAiacc,
                            w.batch);
      fixed.aiacc_config = core::CommConfig{};  // library defaults
      const auto defaults = trainer::Run(fixed);

      const auto& cfg = tuned.chosen_config;
      table.AddRow({w.model, std::to_string(gpus),
                    std::to_string(cfg.num_streams),
                    FormatBytes(static_cast<double>(cfg.granularity_bytes)),
                    collective::ToString(cfg.algorithm),
                    std::to_string(cfg.pipeline_depth),
                    FormatDouble(tuned.throughput, 0),
                    FormatDouble(defaults.throughput, 0),
                    FormatDouble(tuned.throughput / defaults.throughput, 2) +
                        "x"});
    }
  }
  table.Print();
  std::printf("\nTuning-cache entries accumulated: %zu (similar deployments "
              "seed each other's search, §VI)\n", cache.size());
  return 0;
}
