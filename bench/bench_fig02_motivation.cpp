// Fig. 2 (motivation): Horovod training throughput on ResNet-50 vs the
// theoretical linear speedup, 8 -> 32 GPUs on 30 Gbps TCP. The paper
// measures ~75% scaling efficiency at 32 GPUs; AIACC's own curve is shown
// for contrast (the paper quotes >0.96).
#include "bench_util.h"

using namespace aiacc;
using namespace aiacc::bench;

int main() {
  PrintHeader("Fig. 2 — Horovod throughput vs theoretical linear speedup",
              "Paper Fig. 2 + §III (ResNet-50, 8x V100/node, 30 Gbps TCP)",
              "Horovod ~75-85% scaling efficiency at 32 GPUs; AIACC >0.9");

  const double single = Throughput("resnet50", 1, trainer::EngineKind::kAiacc);
  TablePrinter table({"GPUs", "linear (img/s)", "Horovod (img/s)",
                      "Horovod eff.", "AIACC (img/s)", "AIACC eff."});
  for (int gpus : {1, 8, 16, 32}) {
    const double linear = single * gpus;
    const double horovod =
        Throughput("resnet50", gpus, trainer::EngineKind::kHorovod);
    const double aiacc =
        Throughput("resnet50", gpus, trainer::EngineKind::kAiacc);
    table.AddRow({std::to_string(gpus), FormatDouble(linear, 0),
                  FormatDouble(horovod, 0), FormatDouble(horovod / linear, 3),
                  FormatDouble(aiacc, 0), FormatDouble(aiacc / linear, 3)});
  }
  table.Print();
  return 0;
}
