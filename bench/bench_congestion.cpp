// Shared-cloud congestion analysis (§V-B motivates the tree all-reduce with
// "some of the physical network links become congested due to burst
// communications from other shared cloud users"; §VII-A notes the paper's
// own runs used isolated machines). This bench loads one host's NIC with
// foreign-tenant traffic and measures how each engine's throughput degrades,
// and whether the ring/hierarchical choice shifts.
//
// Two of the paper's claims reproduce here: (1) the hierarchical ("tree")
// all-reduce degrades *less* than the flat ring under congestion — its
// NVLink phases keep each unit off the congested NIC for most of its
// lifetime, which is exactly why the paper includes the tree variant; and
// (2) the auto-tuner reacts to congestion by switching algorithm and
// raising the stream count (more connections claw back fair share against
// the foreign tenant's flows). The AIACC-over-Horovod advantage narrows as
// foreign traffic eats the headroom the extra streams were exploiting.
#include "bench_util.h"

using namespace aiacc;
using namespace aiacc::bench;

int main() {
  PrintHeader("§V-B — shared-cloud congestion (foreign traffic on one NIC)",
              "Paper §V-B congestion motivation / §VII-A isolation note",
              "every engine degrades once the straggler NIC saturates; the "
              "AIACC advantage narrows toward the single-stream baselines");

  std::printf("\nVGG-16, 32 GPUs, background load on host 0's NIC:\n");
  TablePrinter table({"bg load", "AIACC", "AIACC (tree)", "Horovod",
                      "AIACC/Horovod"});
  for (double load : {0.0, 0.3, 0.5, 0.7, 0.85}) {
    auto aiacc_spec = MakeSpec("vgg16", 32, trainer::EngineKind::kAiacc);
    aiacc_spec.background_load = load;
    const double aiacc = trainer::Run(aiacc_spec).throughput;

    auto tree_spec = aiacc_spec;
    tree_spec.aiacc_config.algorithm = collective::Algorithm::kHierarchical;
    const double tree = trainer::Run(tree_spec).throughput;

    auto horovod_spec = MakeSpec("vgg16", 32, trainer::EngineKind::kHorovod);
    horovod_spec.background_load = load;
    const double horovod = trainer::Run(horovod_spec).throughput;

    table.AddRow({FormatDouble(load * 100, 0) + "%", FormatDouble(aiacc, 0),
                  FormatDouble(tree, 0), FormatDouble(horovod, 0),
                  FormatDouble(aiacc / horovod, 2) + "x"});
  }
  table.Print();

  std::printf("\nWhat the auto-tuner picks under heavy congestion "
              "(VGG-16, 32 GPUs, 70%% foreign load):\n");
  auto tuned = MakeSpec("vgg16", 32, trainer::EngineKind::kAiaccAutotuned);
  tuned.background_load = 0.7;
  tuned.tune_budget = 32;
  const auto result = trainer::Run(tuned);
  std::printf("  chosen: %s -> %.0f img/s\n",
              result.chosen_config.ToString().c_str(), result.throughput);
  return 0;
}
