// Fig. 11: the unified AIACC library applied to TensorFlow models. The
// TensorFlow distributed engine is all-reduce based (like Horovod); AIACC's
// framework adapters reuse the same communication core, so the comparison is
// AIACC vs the Horovod-style engine on TF workloads — with the paper's
// headline 3.3x over Horovod at 256 GPUs.
#include "bench_util.h"

using namespace aiacc;
using namespace aiacc::bench;

int main() {
  PrintHeader("Fig. 11 — TensorFlow models (unified library, same core)",
              "Paper Fig. 11 + §VIII-B",
              "portable performance: same ordering as PyTorch figures; "
              "up to ~3.3x over Horovod at 256 GPUs on comm-bound models");

  // TF evaluation uses the CV models plus Transformer; TF's native
  // distribution strategy behaves like Horovod's single-stream all-reduce.
  struct Workload {
    const char* model;
    int batch;
  };
  const Workload workloads[] = {
      {"resnet50", 64}, {"vgg16", 64}, {"transformer", 32}};
  for (const Workload& w : workloads) {
    std::printf("\n-- tensorflow/%s --\n", w.model);
    TablePrinter table(
        {"GPUs", "AIACC", "Horovod(TF)", "speedup"});
    for (int gpus : {8, 32, 64, 128, 256}) {
      const double aiacc =
          Throughput(w.model, gpus, trainer::EngineKind::kAiacc, w.batch);
      const double horovod =
          Throughput(w.model, gpus, trainer::EngineKind::kHorovod, w.batch);
      table.AddRow({std::to_string(gpus), FormatDouble(aiacc, 0),
                    FormatDouble(horovod, 0),
                    FormatDouble(aiacc / horovod, 2) + "x"});
    }
    table.Print();
  }
  return 0;
}
