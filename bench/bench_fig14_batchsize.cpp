// Fig. 14: AIACC speedup over Horovod on BERT-Large as the per-GPU batch
// size varies, on 16 GPUs (2 nodes). Smaller batches mean more frequent
// communication relative to compute, so the multi-stream advantage is
// larger — the paper stresses the common fine-tuning regime uses modest
// batches where AIACC shines.
#include "bench_util.h"

using namespace aiacc;
using namespace aiacc::bench;

int main() {
  PrintHeader("Fig. 14 — speedup over Horovod vs batch size (BERT-Large, "
              "16 GPUs)",
              "Paper Fig. 14 + §VIII-D",
              "speedup decreases monotonically as batch grows; low-bound "
              "improvement at the largest batch");

  TablePrinter table({"batch/GPU", "AIACC (seq/s)", "Horovod (seq/s)",
                      "speedup"});
  for (int batch : {1, 2, 4, 8, 16, 32}) {
    const double aiacc =
        Throughput("bert-large", 16, trainer::EngineKind::kAiacc, batch);
    const double horovod =
        Throughput("bert-large", 16, trainer::EngineKind::kHorovod, batch);
    table.AddRow({std::to_string(batch), FormatDouble(aiacc, 1),
                  FormatDouble(horovod, 1),
                  FormatDouble(aiacc / horovod, 2) + "x"});
  }
  table.Print();
  return 0;
}
