// Shared helpers for the figure/table reproduction benches. Each bench is a
// standalone binary that prints the rows/series of one table or figure from
// the paper's evaluation (simulated deployment, deterministic output).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "trainer/harness.h"

namespace aiacc::bench {

inline trainer::RunSpec MakeSpec(const std::string& model, int gpus,
                                 trainer::EngineKind engine, int batch = 64,
                                 net::TransportKind transport =
                                     net::TransportKind::kTcp) {
  trainer::RunSpec spec;
  spec.model_name = model;
  spec.topology = trainer::MakeTopology(gpus, 8, transport);
  spec.engine = engine;
  spec.batch_per_gpu = batch;
  spec.warmup_iterations = 2;
  spec.measure_iterations = 6;
  return spec;
}

inline double Throughput(const std::string& model, int gpus,
                         trainer::EngineKind engine, int batch = 64,
                         net::TransportKind transport =
                             net::TransportKind::kTcp) {
  return trainer::Run(MakeSpec(model, gpus, engine, batch, transport))
      .throughput;
}

inline void PrintHeader(const std::string& title, const std::string& paper_ref,
                        const std::string& expectation) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Expected shape: %s\n", expectation.c_str());
  std::printf("============================================================\n");
}

/// The four engines every throughput figure compares.
inline std::vector<trainer::EngineKind> FigureEngines() {
  return {trainer::EngineKind::kAiacc, trainer::EngineKind::kHorovod,
          trainer::EngineKind::kByteps, trainer::EngineKind::kPytorchDdp};
}

}  // namespace aiacc::bench
