// Fig. 13: hybrid data+model parallelism on ResNet-50 (MXNet): the model is
// split across 2 GPUs per replica; AIACC replaces the KVStore interface for
// the per-shard gradient exchange. The paper reports 2.8x over the MXNet
// DDL implementation at 64 GPUs.
#include "bench_util.h"

using namespace aiacc;
using namespace aiacc::bench;

int main() {
  PrintHeader("Fig. 13 — hybrid data+model parallelism (ResNet-50, MXNet)",
              "Paper Fig. 13 + §VIII-D",
              "AIACC improvement over MXNet-KVStore grows with GPUs, "
              "~2.8x at 64 GPUs");

  TablePrinter table({"GPUs", "replicas", "AIACC (img/s)",
                      "MXNet-DDL (img/s)", "improvement"});
  for (int gpus : {8, 16, 32, 64}) {
    trainer::HybridSpec spec;
    spec.model_name = "resnet50";
    spec.topology = trainer::MakeTopology(gpus);
    spec.batch_per_replica = 64;
    spec.model_shards = 2;
    spec.aiacc_config.num_streams = 8;

    spec.use_aiacc = true;
    const double aiacc = trainer::RunHybrid(spec);
    spec.use_aiacc = false;
    const double mxnet = trainer::RunHybrid(spec);
    table.AddRow({std::to_string(gpus), std::to_string(gpus / 2),
                  FormatDouble(aiacc, 0), FormatDouble(mxnet, 0),
                  FormatDouble(aiacc / mxnet, 2) + "x"});
  }
  table.Print();
  return 0;
}
