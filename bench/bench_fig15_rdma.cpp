// Fig. 15: throughput improvement over PyTorch-DDP on 64 GPUs with RDMA
// links. A single RDMA stream drives only ~10% of the 100 Gbps link, so the
// single-stream baselines leave even more bandwidth on the table than on
// TCP; the paper reports up to 9.8x on GPT-2.
#include "bench_util.h"

using namespace aiacc;
using namespace aiacc::bench;

int main() {
  PrintHeader("Fig. 15 — speedup over PyTorch-DDP on 64 GPUs with RDMA",
              "Paper Fig. 15 + §VIII-D",
              "largest win on the largest model (GPT-2 ~10x); ~10% extra "
              "improvement vs the TCP setting across models");

  struct Workload {
    const char* model;
    int batch;
  };
  const Workload workloads[] = {{"resnet50", 64},
                                {"vgg16", 64},
                                {"transformer", 32},
                                {"bert-large", 8},
                                {"gpt2-xl", 2}};
  TablePrinter table({"model", "AIACC (RDMA)", "DDP (RDMA)", "speedup",
                      "speedup (TCP)"});
  for (const Workload& w : workloads) {
    auto aiacc_spec = MakeSpec(w.model, 64, trainer::EngineKind::kAiacc,
                               w.batch, net::TransportKind::kRdma);
    // At 64+ GPUs the tuner picks large stream counts (§VIII-D); use the
    // upper end it reports.
    aiacc_spec.aiacc_config.num_streams = 24;
    const double aiacc = trainer::Run(aiacc_spec).throughput;
    const double ddp = Throughput(w.model, 64, trainer::EngineKind::kPytorchDdp,
                                  w.batch, net::TransportKind::kRdma);
    const double aiacc_tcp = [&] {
      auto spec = MakeSpec(w.model, 64, trainer::EngineKind::kAiacc, w.batch);
      spec.aiacc_config.num_streams = 24;
      return trainer::Run(spec).throughput;
    }();
    const double ddp_tcp =
        Throughput(w.model, 64, trainer::EngineKind::kPytorchDdp, w.batch);
    table.AddRow({w.model, FormatDouble(aiacc, 1), FormatDouble(ddp, 1),
                  FormatDouble(aiacc / ddp, 2) + "x",
                  FormatDouble(aiacc_tcp / ddp_tcp, 2) + "x"});
  }
  table.Print();
  return 0;
}
