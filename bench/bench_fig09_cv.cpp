// Fig. 9: training throughput of PyTorch CV models (VGG-16, ResNet-50,
// ResNet-101) for AIACC vs Horovod vs BytePS vs PyTorch-DDP, 1..256 GPUs.
// Also prints the §VIII-A headline numbers derived from the sweep: AIACC's
// improvement over Horovod/DDP at 256 GPUs and ResNet-50 scaling
// efficiency.
#include "bench_util.h"

using namespace aiacc;
using namespace aiacc::bench;

int main() {
  PrintHeader("Fig. 9 — PyTorch CV model throughput (images/s)",
              "Paper Fig. 9 + §VIII-A",
              "AIACC highest at >8 GPUs, gap grows with scale; "
              "BytePS lowest; ResNet-50 AIACC efficiency ~0.95 at 256");

  const std::vector<int> gpu_counts = {1, 8, 16, 32, 64, 128, 256};
  for (const char* model : {"vgg16", "resnet50", "resnet101"}) {
    std::printf("\n-- %s (batch 64/GPU) --\n", model);
    TablePrinter table({"GPUs", "AIACC", "Horovod", "BytePS", "PyTorch-DDP",
                        "AIACC/Horovod", "AIACC/DDP"});
    double aiacc_single = 0.0;
    double aiacc_last = 0.0;
    for (int gpus : gpu_counts) {
      const double aiacc = Throughput(model, gpus, trainer::EngineKind::kAiacc);
      const double horovod =
          Throughput(model, gpus, trainer::EngineKind::kHorovod);
      const double byteps =
          Throughput(model, gpus, trainer::EngineKind::kByteps);
      const double ddp =
          Throughput(model, gpus, trainer::EngineKind::kPytorchDdp);
      if (gpus == 1) aiacc_single = aiacc;
      aiacc_last = aiacc;
      table.AddRow({std::to_string(gpus), FormatDouble(aiacc, 0),
                    FormatDouble(horovod, 0), FormatDouble(byteps, 0),
                    FormatDouble(ddp, 0), FormatDouble(aiacc / horovod, 2),
                    FormatDouble(aiacc / ddp, 2)});
    }
    table.Print();
    std::printf("%s: AIACC scaling efficiency at 256 GPUs = %.3f "
                "(paper: ResNet-50 >= 0.95)\n",
                model, aiacc_last / (aiacc_single * 256));
  }
  return 0;
}
