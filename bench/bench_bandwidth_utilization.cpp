// §III bandwidth-utilization measurement: a single TCP communication stream
// utilizes at most ~30% of the 30 Gbps NIC (and a single RDMA stream ~10%
// of 100 Gbps); N concurrent streams multiplex the link toward saturation.
// This is the phenomenon AIACC-Training's multi-streamed design exploits.
#include "bench_util.h"

#include "collective/simulated.h"

using namespace aiacc;
using namespace aiacc::bench;

namespace {

void StreamSweep(net::TransportKind kind, const char* label) {
  std::printf("\n-- %s --\n", label);
  TablePrinter table({"streams", "aggregate rate", "NIC utilization",
                      "transfer time (128MiB/stream-pool)"});
  for (int streams : {1, 2, 3, 4, 8, 16, 32}) {
    sim::Engine engine;
    net::CloudFabric fabric(engine, net::Topology{2, 1, kind},
                            net::FabricParams{});
    const double total_bytes = 128.0 * (1 << 20);
    int done = 0;
    for (int s = 0; s < streams; ++s) {
      net::Network::FlowSpec spec;
      spec.path = fabric.PathBetween(0, 1);
      spec.bytes = total_bytes / streams;
      spec.rate_cap = fabric.InterNodeStreamCap();
      spec.on_complete = [&done] { ++done; };
      fabric.network().StartFlow(std::move(spec));
    }
    engine.Run();
    AIACC_CHECK(done == streams);
    const double elapsed = engine.Now();
    const double rate = total_bytes / elapsed;
    table.AddRow({std::to_string(streams), FormatRate(rate),
                  FormatDouble(rate / fabric.NicBandwidth(), 3),
                  FormatDouble(elapsed * 1e3, 2) + " ms"});
  }
  table.Print();
}

}  // namespace

int main() {
  PrintHeader("§III — network bandwidth utilization vs stream count",
              "Paper §III: single TCP stream <= 30% of link; RDMA 5-10%",
              "utilization = min(1.0, N * per-stream cap); saturation at "
              "4 streams (TCP) / 10 streams (RDMA)");
  StreamSweep(net::TransportKind::kTcp, "TCP/IP 30 Gbps (VPC)");
  StreamSweep(net::TransportKind::kRdma, "RDMA 100 Gbps");
  return 0;
}
