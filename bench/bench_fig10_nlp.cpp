// Fig. 10: training throughput of PyTorch NLP models (Transformer,
// BERT-Large) across engines and GPU counts. NLP models are larger, so
// communication dominates earlier and AIACC's advantage is bigger than on
// the CV models.
#include "bench_util.h"

using namespace aiacc;
using namespace aiacc::bench;

int main() {
  PrintHeader("Fig. 10 — PyTorch NLP model throughput (sequences/s)",
              "Paper Fig. 10",
              "same ordering as Fig. 9 with larger AIACC gaps (bigger "
              "gradients); BytePS collapses on BERT-Large");

  struct Workload {
    const char* model;
    int batch;
  };
  // Sequences per GPU; chosen to nearly fill V100 memory as in §VII-D.
  const Workload workloads[] = {{"transformer", 32}, {"bert-large", 8}};
  const std::vector<int> gpu_counts = {1, 8, 16, 32, 64, 128, 256};

  for (const Workload& w : workloads) {
    std::printf("\n-- %s (batch %d seq/GPU) --\n", w.model, w.batch);
    TablePrinter table({"GPUs", "AIACC", "Horovod", "BytePS", "PyTorch-DDP",
                        "AIACC/Horovod"});
    for (int gpus : gpu_counts) {
      const double aiacc =
          Throughput(w.model, gpus, trainer::EngineKind::kAiacc, w.batch);
      const double horovod =
          Throughput(w.model, gpus, trainer::EngineKind::kHorovod, w.batch);
      const double byteps =
          Throughput(w.model, gpus, trainer::EngineKind::kByteps, w.batch);
      const double ddp =
          Throughput(w.model, gpus, trainer::EngineKind::kPytorchDdp, w.batch);
      table.AddRow({std::to_string(gpus), FormatDouble(aiacc, 1),
                    FormatDouble(horovod, 1), FormatDouble(byteps, 1),
                    FormatDouble(ddp, 1), FormatDouble(aiacc / horovod, 2)});
    }
    table.Print();
  }
  return 0;
}
