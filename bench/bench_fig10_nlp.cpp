// Fig. 10: training throughput of PyTorch NLP models (Transformer,
// BERT-Large) across engines and GPU counts. NLP models are larger, so
// communication dominates earlier and AIACC's advantage is bigger than on
// the CV models.
//
// On top of the analytic figure, this bench drives a REAL
// ThreadedAiaccEngine scheduler A/B on scaled-down BERT-Large and GPT-2-XL
// gradient sets: the same layer-wise workload runs once with FIFO dispatch
// (priority_urgent_fraction = 0, the pre-scheduler engine) and once with
// priority dispatch on, and reports per-iteration wall time for both arms.
// Each rank produces gradients back-to-front (backward order) and then
// consumes them front-to-back via Worker::WaitGradient with a fixed
// per-layer forward compute — the paper's layer-wise consumption pattern,
// where FIFO completion order (back-to-front) serializes the next forward
// behind the whole communication tail and priority dispatch lets the front
// layers unblock early. Per-layer compute is simulated with sleeps, which
// models the accelerator-side compute of real training: the GPU is busy
// while the host core stays free to run communication, which is exactly
// the overlap the scheduler exploits (and the only honest simulation on a
// single-core CI box, where spinning would serialize compute against comm
// and make overlap physically impossible). An SgdOptimizer is bound for
// optimizer/comm overlap, so the A/B also covers engine-applied parameter
// updates.
//
// `--json` prints a machine-readable scheduler_ab document (consumed by
// tools/bench_compare.py against the checked-in BENCH_scheduler.json —
// speedups are machine-stable ratios, absolute ms are not). `--smoke`
// shrinks the workload, verifies the two arms produce bit-identical
// parameters (dispatch order must not change results), and exits non-zero
// unless scheduler-on beats FIFO within 3 attempts (wired into ctest with
// label `scheduler`). Quote numbers from the `release-bench` preset.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>

#include "bench_util.h"
#include "core/optimizer.h"
#include "core/threaded_engine.h"
#include "dnn/zoo.h"

using namespace aiacc;
using namespace aiacc::bench;

namespace {

struct AbConfig {
  int world = 4;
  int streams = 4;
  int iters = 8;
  int warmup = 2;
  std::size_t grad_cap = 64;          // gradients kept per model (sampled)
  std::size_t target_total_elems = 1u << 21;  // 8 MiB of grads per rank
  std::size_t granularity = 64u << 10;
  int fwd_us_per_layer = 1000;        // forward compute per consumed layer
  // Backward compute per produced layer. This stagger is what makes the
  // A/B honest: gradients must become ready back-to-front across several
  // sync rounds (as a real backward pass produces them), so the protocol
  // pushes back-layer units first and the front units the next forward
  // needs arrive behind a queue of bulk — the priority inversion FIFO
  // suffers and the scheduler removes. With instantaneous production one
  // round agrees everything and packs in id order, and both arms dispatch
  // identically.
  int bwd_us_per_layer = 60;
};

/// A model scaled to bench size: up to `grad_cap` gradients sampled evenly
/// across the forward order (so the front/back structure survives), each
/// tensor shrunk proportionally to its real parameter count.
struct ScaledModel {
  std::string name;
  std::vector<std::string> grad_names;  // forward order; names sort likewise
  std::vector<std::size_t> elems;
};

ScaledModel ScaleModel(const dnn::ModelDescriptor& model,
                       const AbConfig& cfg) {
  ScaledModel out;
  out.name = model.name();
  const auto& grads = model.gradients();
  const std::size_t n = grads.size();
  const std::size_t keep = std::min(cfg.grad_cap, n);
  // Scale against the SAMPLED tensors' parameter count, not the full
  // model's — we only register `keep` of the model's gradients, and the
  // bench's comm volume (hence its backlog, hence the A/B's signal) must
  // actually hit target_total_elems.
  std::vector<std::size_t> sampled_raw;
  sampled_raw.reserve(keep);
  double sampled_total = 0.0;
  for (std::size_t k = 0; k < keep; ++k) {
    const std::size_t src = k * n / keep;  // even sample, order-preserving
    sampled_raw.push_back(grads[src].NumElements());
    sampled_total += static_cast<double>(sampled_raw.back());
  }
  const double scale =
      sampled_total / static_cast<double>(cfg.target_total_elems);
  // Clamp each tensor to [mean/2, 2*mean]: NLP models mix giant embeddings
  // with tiny LayerNorms, and unclamped proportional scaling collapses the
  // traffic into one gradient's units (a single priority — nothing for the
  // scheduler to order) with everything else at the floor. A front-loaded
  // giant (GPT-2's wte) also gates the whole forward chain behind its own
  // transfer, hiding the ordering win the A/B exists to measure.
  const double mean = static_cast<double>(cfg.target_total_elems) /
                      static_cast<double>(keep);
  for (std::size_t k = 0; k < keep; ++k) {
    const auto raw = static_cast<double>(sampled_raw[k]);
    const auto elems = static_cast<std::size_t>(std::clamp(
        raw / std::max(1e-9, scale), std::max(256.0, mean / 2.0),
        2.0 * mean));
    char name[32];
    std::snprintf(name, sizeof(name), "g%04zu", k);
    out.grad_names.emplace_back(name);
    out.elems.push_back(elems);
  }
  return out;
}

/// Simulated accelerator-side compute: sleep, don't spin. In real training
/// the forward/backward kernels run on the GPU while the host core drives
/// communication; a sleeping thread models exactly that (core free for the
/// comm streams). Spinning would be wrong twice over: it steals the core
/// from the rings it is supposed to overlap with, and on a single-core CI
/// box it makes compute/comm overlap physically impossible, reducing the
/// A/B to noise.
void ComputeUs(int us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

struct ArmResult {
  double iter_ms = 0.0;  // mean steady-state iteration, rank 0
  core::SchedulerStats sched;
  std::vector<std::vector<float>> params;  // rank 0's final parameters
  bool ok = false;
};

/// One A/B arm: the full layer-wise workload under `urgent_fraction`.
/// Identical inputs per iteration across arms, so final parameters must be
/// bit-identical regardless of dispatch policy.
ArmResult RunArm(const ScaledModel& model, float urgent_fraction,
                 const AbConfig& cfg) {
  core::CommConfig config;
  config.num_streams = cfg.streams;
  config.granularity_bytes = cfg.granularity;  // several units per iteration
  config.pipeline_depth = 2;
  config.priority_urgent_fraction = urgent_fraction;
  // Aging must comfortably exceed the iteration's comm backlog or every
  // entry crosses the threshold and aged-first dispatch (oldest sequence)
  // quietly degenerates streams >= 1 back to FIFO.
  config.priority_aging_ms = 1000;

  const std::size_t n = model.grad_names.size();
  ArmResult result;
  std::vector<double> iter_seconds;
  std::atomic<bool> failed{false};
  {
    core::ThreadedAiaccEngine engine(cfg.world, config);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(cfg.world));
    for (int r = 0; r < cfg.world; ++r) {
      threads.emplace_back([&, r] {
        auto& worker = engine.worker(r);
        core::SgdOptimizer sgd(/*momentum=*/0.9);
        std::vector<std::vector<float>> grads(n);
        std::vector<std::vector<float>> params(n);
        for (std::size_t g = 0; g < n; ++g) {
          grads[g].resize(model.elems[g]);
          params[g].assign(model.elems[g], 1.0f);
          if (!worker.Register(model.grad_names[g], grads[g]).ok()) {
            failed.store(true);
            return;
          }
          worker.BindParameter(model.grad_names[g], params[g]);
        }
        worker.BindOptimizer(&sgd, /*lr=*/0.01);
        worker.Finalize();
        for (int it = 0; it < cfg.warmup + cfg.iters && !failed.load();
             ++it) {
          const auto t0 = std::chrono::steady_clock::now();
          // Backward: gradients become ready back-to-front, staggered by
          // per-layer compute. Deterministic per-iteration values so both
          // arms reduce identical bytes.
          for (std::size_t b = n; b-- > 0;) {
            ComputeUs(cfg.bwd_us_per_layer);
            auto& grad = grads[b];
            for (std::size_t i = 0; i < grad.size(); ++i) {
              grad[i] = 0.001f * static_cast<float>(r + 1) +
                        0.01f * static_cast<float>((b + i +
                                                    static_cast<std::size_t>(
                                                        it)) %
                                                   13);
            }
            worker.Push(model.grad_names[b]);
          }
          worker.FlushIteration();
          // Next forward: consume front-to-back; each layer's compute can
          // only start once its (averaged, stepped) parameter is ready.
          for (std::size_t g = 0; g < n; ++g) {
            if (!worker.WaitGradient(model.grad_names[g]).ok()) {
              failed.store(true);
              return;
            }
            ComputeUs(cfg.fwd_us_per_layer);
          }
          if (!worker.WaitIteration().ok()) {
            failed.store(true);
            return;
          }
          if (r == 0 && it >= cfg.warmup) {
            iter_seconds.push_back(
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
          }
        }
        if (r == 0) {
          result.sched = worker.scheduler_stats();
          result.params = params;
        }
      });
    }
    for (auto& t : threads) t.join();
    engine.Shutdown();
  }
  if (failed.load() || iter_seconds.empty()) return result;
  // Median, not mean: on a shared/oversubscribed box a single descheduled
  // iteration would otherwise dominate the arm's number.
  std::sort(iter_seconds.begin(), iter_seconds.end());
  result.iter_ms = 1e3 * iter_seconds[iter_seconds.size() / 2];
  result.ok = true;
  return result;
}

struct AbRow {
  std::string model;
  std::size_t num_gradients = 0;
  double fifo_ms = 0.0;
  double sched_ms = 0.0;
  double speedup = 0.0;
  std::uint64_t pops = 0;
  std::uint64_t priority_pops = 0;
  std::uint64_t aged_pops = 0;
  std::uint64_t inversions = 0;
  bool bit_identical = false;
};

bool SameParams(const std::vector<std::vector<float>>& a,
                const std::vector<std::vector<float>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    if (std::memcmp(a[i].data(), b[i].data(),
                    a[i].size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

/// FIFO vs priority-dispatch A/B for one model; retries the timing (never
/// the bit-exactness) up to `attempts` times — wall-clock on a loaded CI
/// box is noisy, results are not.
AbRow RunAb(const dnn::ModelDescriptor& model, const AbConfig& cfg,
            int attempts) {
  const ScaledModel scaled = ScaleModel(model, cfg);
  AbRow row;
  row.model = model.name();
  row.num_gradients = scaled.grad_names.size();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    // FIFO vs FULL forward-order dispatch (urgent_fraction 1.0: the whole
    // id space is the urgent class). Partial fractions only reorder the
    // first layers and leave the rest serialized behind the reversed bulk
    // tail — the overlap win scales with how much of the forward chain the
    // scheduler can feed in consumption order.
    const ArmResult fifo = RunArm(scaled, 0.0f, cfg);
    const ArmResult sched = RunArm(scaled, 1.0f, cfg);
    if (!fifo.ok || !sched.ok) continue;
    row.fifo_ms = fifo.iter_ms;
    row.sched_ms = sched.iter_ms;
    row.speedup = sched.iter_ms > 0 ? fifo.iter_ms / sched.iter_ms : 0.0;
    row.pops = sched.sched.pops;
    row.priority_pops = sched.sched.priority_pops;
    row.aged_pops = sched.sched.aged_pops;
    row.inversions = sched.sched.inversions;
    row.bit_identical = SameParams(fifo.params, sched.params);
    if (!row.bit_identical) return row;  // never retry a results mismatch
    if (row.speedup >= 1.0) return row;
  }
  return row;
}

void PrintAnalyticFigure() {
  PrintHeader("Fig. 10 — PyTorch NLP model throughput (sequences/s)",
              "Paper Fig. 10",
              "same ordering as Fig. 9 with larger AIACC gaps (bigger "
              "gradients); BytePS collapses on BERT-Large");

  struct Workload {
    const char* model;
    int batch;
  };
  // Sequences per GPU; chosen to nearly fill V100 memory as in §VII-D.
  const Workload workloads[] = {{"transformer", 32}, {"bert-large", 8}};
  const std::vector<int> gpu_counts = {1, 8, 16, 32, 64, 128, 256};

  for (const Workload& w : workloads) {
    std::printf("\n-- %s (batch %d seq/GPU) --\n", w.model, w.batch);
    TablePrinter table({"GPUs", "AIACC", "Horovod", "BytePS", "PyTorch-DDP",
                        "AIACC/Horovod"});
    for (int gpus : gpu_counts) {
      const double aiacc =
          Throughput(w.model, gpus, trainer::EngineKind::kAiacc, w.batch);
      const double horovod =
          Throughput(w.model, gpus, trainer::EngineKind::kHorovod, w.batch);
      const double byteps =
          Throughput(w.model, gpus, trainer::EngineKind::kByteps, w.batch);
      const double ddp =
          Throughput(w.model, gpus, trainer::EngineKind::kPytorchDdp, w.batch);
      table.AddRow({std::to_string(gpus), FormatDouble(aiacc, 1),
                    FormatDouble(horovod, 1), FormatDouble(byteps, 1),
                    FormatDouble(ddp, 1), FormatDouble(aiacc / horovod, 2)});
    }
    table.Print();
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  AbConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      cfg.iters = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--smoke] [--iters N]\n",
                   argv[0]);
      return 1;
    }
  }
  if (smoke) {
    // 4 streams: one FIFO anchor + three priority streams. The overlap win
    // scales as (streams-1)/streams — the FIFO stream delivers its share
    // of the units in reverse order, gating that tail of the forward.
    cfg.streams = 4;
    cfg.iters = 3;
    cfg.warmup = 1;
    cfg.grad_cap = 24;
    // Units must be heavy enough that the collectives — not the readiness
    // sync rounds — pace the iteration, or the ready set never holds more
    // than one unit and both arms dispatch identically (the A/B measures
    // pure noise). And the forward chain must be a large fraction of the
    // iteration — the scheduler's entire win is overlapping that chain
    // with the comm tail, so fwd_total / comm_total bounds the measurable
    // speedup. The backward stagger must exceed the sync-round time or one
    // round agrees every gradient and pushes the units in id order —
    // indistinguishable from priority dispatch.
    cfg.target_total_elems = 1u << 20;
    cfg.granularity = 64u << 10;
    cfg.fwd_us_per_layer = 2000;
    cfg.bwd_us_per_layer = 100;
  }
  if (!json && !smoke) PrintAnalyticFigure();

  const std::vector<dnn::ModelDescriptor> models = {dnn::MakeBertLarge(),
                                                    dnn::MakeGpt2Xl()};
  std::vector<AbRow> rows;
  for (const auto& m : models) rows.push_back(RunAb(m, cfg, /*attempts=*/3));

  if (json) {
    std::printf("{\"world\": %d, \"streams\": %d, \"iters\": %d,\n"
                " \"scheduler_ab\": [\n",
                cfg.world, cfg.streams, cfg.iters);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const AbRow& r = rows[i];
      std::printf("  {\"model\": \"%s\", \"num_gradients\": %zu, "
                  "\"fifo_iter_ms\": %.3f, \"sched_iter_ms\": %.3f, "
                  "\"speedup\": %.3f, \"pops\": %llu, "
                  "\"priority_pops\": %llu, \"aged_pops\": %llu, "
                  "\"inversions\": %llu, \"bit_identical\": %s}%s\n",
                  r.model.c_str(), r.num_gradients, r.fifo_ms, r.sched_ms,
                  r.speedup, static_cast<unsigned long long>(r.pops),
                  static_cast<unsigned long long>(r.priority_pops),
                  static_cast<unsigned long long>(r.aged_pops),
                  static_cast<unsigned long long>(r.inversions),
                  r.bit_identical ? "true" : "false",
                  i + 1 < rows.size() ? "," : "");
    }
    std::printf(" ]}\n");
  } else {
    std::printf("\n-- scheduler A/B (real engine, %d ranks, %d streams, "
                "layer-wise consumption) --\n",
                cfg.world, cfg.streams);
    TablePrinter table({"model", "grads", "FIFO ms/iter", "sched ms/iter",
                        "speedup", "pops", "prio pops", "aged",
                        "bit-identical"});
    for (const AbRow& r : rows) {
      table.AddRow({r.model, std::to_string(r.num_gradients),
                    FormatDouble(r.fifo_ms, 2), FormatDouble(r.sched_ms, 2),
                    FormatDouble(r.speedup, 2), std::to_string(r.pops),
                    std::to_string(r.priority_pops),
                    std::to_string(r.aged_pops),
                    r.bit_identical ? "yes" : "NO"});
    }
    table.Print();
  }

  for (const AbRow& r : rows) {
    if (r.fifo_ms == 0.0) {
      std::fprintf(stderr, "A/B FAILURE: %s: engine run failed\n",
                   r.model.c_str());
      return 2;
    }
    if (!r.bit_identical) {
      std::fprintf(stderr,
                   "A/B FAILURE: %s: FIFO and priority dispatch produced "
                   "different parameters — dispatch order leaked into "
                   "results\n",
                   r.model.c_str());
      return 2;
    }
  }
  if (smoke) {
    for (const AbRow& r : rows) {
      if (r.speedup < 1.0) {
        std::fprintf(stderr,
                     "SMOKE FAILURE: %s: scheduler-on %.2f ms/iter did not "
                     "beat FIFO %.2f ms/iter in 3 attempts\n",
                     r.model.c_str(), r.sched_ms, r.fifo_ms);
        return 1;
      }
    }
  }
  return 0;
}
