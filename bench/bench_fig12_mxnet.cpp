// Fig. 12: MXNet models — the KVStore parameter-server baseline vs AIACC
// (which replaces the KVStore interface). The paper observes the PS
// approach gives clearly lower throughput than all-reduce engines.
#include "bench_util.h"

using namespace aiacc;
using namespace aiacc::bench;

int main() {
  PrintHeader("Fig. 12 — MXNet models (KVStore PS baseline)",
              "Paper Fig. 12 + §VIII-B",
              "MXNet KVStore (dist_device_sync PS) lowest; AIACC restores "
              "all-reduce-class scaling on the same MXNet workloads");

  for (const char* model : {"resnet50", "vgg16"}) {
    std::printf("\n-- mxnet/%s --\n", model);
    TablePrinter table({"GPUs", "AIACC", "MXNet-KVStore", "BytePS",
                        "AIACC/KVStore"});
    for (int gpus : {8, 16, 32, 64, 128}) {
      const double aiacc =
          Throughput(model, gpus, trainer::EngineKind::kAiacc);
      const double kv =
          Throughput(model, gpus, trainer::EngineKind::kMxnetKvstore);
      const double byteps =
          Throughput(model, gpus, trainer::EngineKind::kByteps);
      table.AddRow({std::to_string(gpus), FormatDouble(aiacc, 0),
                    FormatDouble(kv, 0), FormatDouble(byteps, 0),
                    FormatDouble(aiacc / kv, 2) + "x"});
    }
    table.Print();
  }
  return 0;
}
