// Ablation of AIACC's design decisions (DESIGN.md §4): which mechanism buys
// what. Each row disables/varies one component on ResNet-50 and VGG-16 at
// 64 GPUs: stream count, granularity, sync protocol (decentralized vs
// master), all-reduce algorithm, and fp16 wire compression.
#include "bench_util.h"

#include "core/aiacc_engine.h"
#include "dnn/zoo.h"

using namespace aiacc;
using namespace aiacc::bench;

namespace {

double AiaccThroughput(const char* model, int gpus, int batch,
                       const core::CommConfig& cfg,
                       dnn::DType wire = dnn::DType::kF32) {
  auto spec = MakeSpec(model, gpus, trainer::EngineKind::kAiacc, batch);
  spec.aiacc_config = cfg;
  spec.wire_dtype = wire;
  return trainer::Run(spec).throughput;
}

}  // namespace

int main() {
  PrintHeader("Ablation — what each AIACC mechanism contributes (64 GPUs)",
              "DESIGN.md §4 / paper §V-VI design decisions",
              "streams: big win; granularity: unimodal optimum; "
              "decentralized sync: matters for many-tensor models; fp16: "
              "~2x wire reduction");

  struct Workload {
    const char* model;
    int batch;
  };
  for (const Workload& w : {Workload{"resnet50", 64}, Workload{"vgg16", 64},
                            Workload{"bert-large", 8}}) {
    std::printf("\n-- %s --\n", w.model);
    core::CommConfig base;  // defaults: 8 streams, 8 MiB, ring

    TablePrinter streams_table({"streams", "throughput", "vs 1 stream"});
    double one_stream = 0.0;
    for (int s : {1, 2, 4, 8, 16, 24}) {
      core::CommConfig cfg = base;
      cfg.num_streams = s;
      const double thr = AiaccThroughput(w.model, 64, w.batch, cfg);
      if (s == 1) one_stream = thr;
      streams_table.AddRow({std::to_string(s), FormatDouble(thr, 0),
                            FormatDouble(thr / one_stream, 2) + "x"});
    }
    streams_table.Print();

    TablePrinter gran_table({"granularity", "throughput"});
    for (std::size_t g : {std::size_t{1} << 20, std::size_t{4} << 20,
                          std::size_t{8} << 20, std::size_t{32} << 20,
                          std::size_t{128} << 20}) {
      core::CommConfig cfg = base;
      cfg.granularity_bytes = g;
      gran_table.AddRow({FormatBytes(static_cast<double>(g)),
                         FormatDouble(AiaccThroughput(w.model, 64, w.batch,
                                                      cfg), 0)});
    }
    gran_table.Print();

    TablePrinter algo_table({"algorithm", "throughput"});
    for (auto algo : {collective::Algorithm::kRing,
                      collective::Algorithm::kHierarchical}) {
      core::CommConfig cfg = base;
      cfg.algorithm = algo;
      algo_table.AddRow({collective::ToString(algo),
                         FormatDouble(AiaccThroughput(w.model, 64, w.batch,
                                                      cfg), 0)});
    }
    algo_table.Print();

    // fp16 halves the wire bytes; the unit granularity must shrink with it
    // (same tensor *elements* per unit), otherwise the coarser tail unit
    // eats the gain — one of the couplings the auto-tuner resolves (§VI).
    const double f32 = AiaccThroughput(w.model, 64, w.batch, base);
    core::CommConfig f16_cfg = base;
    f16_cfg.granularity_bytes = base.granularity_bytes / 2;
    f16_cfg.min_bucket_bytes = base.min_bucket_bytes / 2;
    const double f16 =
        AiaccThroughput(w.model, 64, w.batch, f16_cfg, dnn::DType::kF16);
    const double f16_untuned =
        AiaccThroughput(w.model, 64, w.batch, base, dnn::DType::kF16);
    std::printf("fp16 wire compression: %.0f -> %.0f samples/s (%.2fx; "
                "%.2fx if granularity is left at the fp32 setting)\n",
                f32, f16, f16 / f32, f16_untuned / f32);
  }

  // §IX extension: CPU-offloaded optimizer update — frees GPU memory but
  // pays a CPU pass + PCIe upload; the paper warns the transfer can become
  // the bottleneck, and the model shows exactly that.
  std::printf("\n-- CPU optimizer offload (\u00a7IX extension, 64 GPUs) --\n");
  TablePrinter offload_table({"model", "GPU optimizer", "CPU offload",
                              "slowdown"});
  for (const char* m : {"resnet50", "bert-large"}) {
    const int b = std::string(m) == "bert-large" ? 8 : 64;
    auto gpu_spec = MakeSpec(m, 64, trainer::EngineKind::kAiacc, b);
    auto cpu_spec = gpu_spec;
    cpu_spec.cpu_optimizer_offload = true;
    const double gpu_thr = trainer::Run(gpu_spec).throughput;
    const double cpu_thr = trainer::Run(cpu_spec).throughput;
    offload_table.AddRow({m, FormatDouble(gpu_thr, 0),
                          FormatDouble(cpu_thr, 0),
                          FormatDouble(gpu_thr / cpu_thr, 2) + "x"});
  }
  offload_table.Print();

  // Sync-protocol ablation, isolated (the CTR mechanism).
  std::printf("\n-- synchronization protocol round cost, 20k-tensor model --\n");
  TablePrinter sync_table({"GPUs", "decentralized (ms)", "master (ms)"});
  for (int hosts : {2, 4, 8, 16, 32}) {
    sim::Engine engine;
    net::CloudFabric fabric(engine,
                            net::Topology{hosts, 8, net::TransportKind::kTcp},
                            net::FabricParams{});
    core::DecentralizedSync dec(fabric);
    core::MasterSync mas(fabric);
    sync_table.AddRow({std::to_string(hosts * 8),
                       FormatDouble(dec.RoundCost(20000 / 8) * 1e3, 3),
                       FormatDouble(mas.MasterProcessingCost(20000) * 1e3, 3)});
  }
  sync_table.Print();
  return 0;
}
