// §VIII-C: the warehouse-scale CTR recommendation workload. Tens of
// thousands of small embedding-shard gradients make Horovod's master-node
// synchronization the bottleneck at 128 GPUs; AIACC's decentralized
// bit-vector protocol sidesteps it (paper: 13.4x over the hand-tuned
// Horovod DDL implementation).
#include "bench_util.h"

#include "core/sync.h"
#include "dnn/zoo.h"

using namespace aiacc;
using namespace aiacc::bench;

int main() {
  PrintHeader("§VIII-C — production CTR workload (decentralized vs master "
              "synchronization)",
              "Paper §VIII-C (13.4x over hand-tuned Horovod at 128 GPUs)",
              "AIACC >> Horovod, gap grows with GPU count; driven by "
              "O(world x tensors) master work");

  TablePrinter table({"GPUs", "AIACC (samples/s)", "Horovod (samples/s)",
                      "speedup"});
  for (int gpus : {16, 32, 64, 128}) {
    const double aiacc =
        Throughput("ctr", gpus, trainer::EngineKind::kAiacc, 512);
    const double horovod =
        Throughput("ctr", gpus, trainer::EngineKind::kHorovod, 512);
    table.AddRow({std::to_string(gpus), FormatDouble(aiacc, 0),
                  FormatDouble(horovod, 0),
                  FormatDouble(aiacc / horovod, 2) + "x"});
  }
  table.Print();

  // The mechanism, isolated: one synchronization round over the CTR
  // model's ~20k gradients.
  std::printf("\nPer-round synchronization cost at 128 GPUs (CTR, ~20k "
              "tensors):\n");
  sim::Engine engine;
  net::CloudFabric fabric(engine,
                          net::Topology{16, 8, net::TransportKind::kTcp},
                          net::FabricParams{});
  core::DecentralizedSync dec(fabric);
  core::MasterSync mas(fabric);
  const auto model = dnn::MakeModelByName("ctr");
  const std::size_t tensors = static_cast<std::size_t>(model.NumGradients());
  std::printf("  decentralized bit-vector ring : %.3f ms\n",
              dec.RoundCost((tensors + 7) / 8) * 1e3);
  std::printf("  master serialized processing  : %.3f ms\n",
              mas.MasterProcessingCost(tensors) * 1e3);
  return 0;
}
