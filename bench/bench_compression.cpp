// Gradient-compression bench: measures the wire-byte reduction and the
// reconstruction error of every codec on two workload shapes at world 4:
//
//   * dense_conv        — a dense, smooth gradient (every element nonzero),
//                         the shape of conv/MLP layer gradients;
//   * sparse_embedding  — an embedding-table gradient where <1% of rows were
//                         touched this step (the paper's CTR workloads).
//
// For each (workload, codec) pair the bench runs real ring all-reduces over
// InProcTransport (cast codecs ride the sliced ring, sparse codecs the
// record all-gather of CompressedAllReduce with per-rank error-feedback
// residuals) and reports measured transport bytes via TotalPayloadBytes,
// the reduction vs the raw-fp32 wire, per-all-reduce latency, and the
// relative error of the final iteration against the exact fp32 average.
//
// A second section demonstrates the per-tensor codec bandit
// (compress::PerTensorCodecTuner): after a few dozen observed rounds it must
// settle on different codecs for the two shapes (fp16 for dense, top-k for
// the sparse embedding). `--json` prints a machine-readable summary (the
// checked-in BENCH_compression.json); `--smoke` shrinks the workloads and
// exits non-zero unless fp16 cuts embedding wire bytes by >= 1.9x, top-k by
// >= 10x, and the bandit separates the two workloads (wired into ctest).
#include <barrier>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "collective/threaded.h"
#include "common/buffer_pool.h"
#include "compress/codec.h"
#include "compress/tuner.h"
#include "transport/inproc.h"

namespace {

using aiacc::common::BufferPool;
using aiacc::compress::CodecKind;
using aiacc::compress::CodecSpec;

struct BenchConfig {
  int world = 4;
  std::size_t dense_elems = 1u << 18;
  std::size_t embed_elems = 1u << 20;
  int iters = 5;
  int tuner_rounds = 60;
};

// Deterministic per-(rank, index) gradient values, so the exact fp32
// average is computable without a reference all-reduce.
float DenseValue(int rank, std::size_t i) {
  std::uint32_t h = static_cast<std::uint32_t>(i) * 2654435761u +
                    static_cast<std::uint32_t>(rank + 1) * 40503u;
  h ^= h >> 15;
  h *= 2246822519u;
  h ^= h >> 13;
  return static_cast<float>(h & 0xFFFFFFu) / 8388608.0f - 1.0f;
}

// ~0.8% of positions hot; the same positions on every rank (the touched
// rows of one minibatch), which is what makes top-k@1% lossless here.
float EmbeddingValue(int rank, std::size_t i) {
  const std::uint32_t h = static_cast<std::uint32_t>(i) * 2654435761u;
  if ((h >> 8) % 125 != 0) return 0.0f;
  return DenseValue(rank, i);
}

struct CodecResult {
  CodecSpec spec;
  std::uint64_t wire_bytes = 0;
  double seconds = 0.0;
  double rel_error = 0.0;
};

/// Run `iters` all-reduces of the generated workload at every rank and
/// measure transport bytes + final-iteration error vs the exact average.
template <typename Gen>
CodecResult RunCodecPhase(const CodecSpec& spec, int world,
                          std::size_t elems, int iters, Gen gen) {
  aiacc::transport::InProcTransport tr(
      world, aiacc::transport::WakeMode::kTargeted);
  BufferPool pool;
  std::vector<float> rank0_result(elems);
  std::barrier<> gate(static_cast<std::ptrdiff_t>(world) + 1);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> data(elems);
      std::vector<float> residual;
      if (aiacc::compress::UsesErrorFeedback(spec.kind)) {
        residual.assign(elems, 0.0f);
      }
      gate.arrive_and_wait();  // start line (main samples counters)
      for (int it = 0; it < iters; ++it) {
        for (std::size_t i = 0; i < elems; ++i) data[i] = gen(r, i);
        aiacc::collective::Comm comm{&tr,  r, world, /*tag_base=*/1,
                                     /*timeout_ms=*/0, &pool};
        comm.codec = spec;
        const aiacc::Status st =
            aiacc::compress::IsSparse(spec.kind)
                ? aiacc::collective::CompressedAllReduce(
                      comm, data, aiacc::collective::ReduceOp::kAvg,
                      std::span<float>(residual))
                : aiacc::collective::RingAllReduce(
                      comm, data, aiacc::collective::ReduceOp::kAvg);
        if (!st.ok()) {
          std::fprintf(stderr, "all-reduce (%s) failed: %s\n",
                       aiacc::compress::ToString(spec).c_str(),
                       st.ToString().c_str());
          std::exit(2);
        }
        gate.arrive_and_wait();  // iteration fence (keeps tags in lockstep)
      }
      if (r == 0) std::copy(data.begin(), data.end(), rank0_result.begin());
      gate.arrive_and_wait();  // finish line
    });
  }
  // Sample counters BEFORE the start gate releases the rank threads, so the
  // window covers every send of every iteration.
  const std::uint64_t wire0 = tr.TotalPayloadBytes();
  const auto t0 = std::chrono::steady_clock::now();
  gate.arrive_and_wait();
  for (int it = 0; it < iters; ++it) gate.arrive_and_wait();
  const auto t1 = std::chrono::steady_clock::now();
  gate.arrive_and_wait();
  for (auto& t : threads) t.join();

  CodecResult result;
  result.spec = spec;
  result.wire_bytes = tr.TotalPayloadBytes() - wire0;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  // Exact average of the last iteration's inputs.
  double err2 = 0.0;
  double ref2 = 0.0;
  for (std::size_t i = 0; i < elems; ++i) {
    double sum = 0.0;
    for (int r = 0; r < world; ++r) sum += static_cast<double>(gen(r, i));
    const double exact = sum / world;
    const double d = static_cast<double>(rank0_result[i]) - exact;
    err2 += d * d;
    ref2 += exact * exact;
  }
  result.rel_error = ref2 > 0.0 ? std::sqrt(err2 / ref2) : 0.0;
  return result;
}

/// Local single-shot encode footprint + reconstruction error — the
/// observation the per-tensor bandit consumes each round.
void EncodeFootprint(const CodecSpec& spec, std::span<const float> src,
                     BufferPool& pool, std::size_t* wire_floats,
                     double* rel_error) {
  const std::size_t n = src.size();
  if (spec.kind == CodecKind::kNone) {
    *wire_floats = n;
    *rel_error = 0.0;
    return;
  }
  std::vector<float> wire =
      pool.Acquire(aiacc::compress::MaxWireFloats(spec, n));
  std::vector<float> decoded = pool.Acquire(n);
  if (aiacc::compress::IsCast(spec.kind)) {
    *wire_floats = aiacc::compress::CastWireFloats(n);
    aiacc::compress::CastEncode(spec.kind, src, wire);
    aiacc::compress::CastDecode(spec.kind, wire, decoded, n);
  } else {
    *wire_floats = aiacc::compress::SparseEncode(
        spec, src, std::span<float>(wire), pool);
    std::fill(decoded.begin(), decoded.begin() + static_cast<long>(n), 0.0f);
    const aiacc::Status st = aiacc::compress::SparseDecodeAccumulate(
        spec, std::span<const float>(wire.data(), *wire_floats),
        std::span<float>(decoded.data(), n));
    if (!st.ok()) {
      std::fprintf(stderr, "decode failed: %s\n", st.ToString().c_str());
      std::exit(2);
    }
  }
  double err2 = 0.0;
  double ref2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d =
        static_cast<double>(decoded[i]) - static_cast<double>(src[i]);
    err2 += d * d;
    ref2 += static_cast<double>(src[i]) * static_cast<double>(src[i]);
  }
  *rel_error = ref2 > 0.0 ? std::sqrt(err2 / ref2) : 0.0;
  pool.Release(std::move(wire));
  pool.Release(std::move(decoded));
}

struct WorkloadReport {
  std::string name;
  std::size_t elems = 0;
  std::vector<CodecResult> codecs;
};

void PrintJson(const BenchConfig& cfg,
               const std::vector<WorkloadReport>& workloads,
               const CodecSpec& dense_pick, const CodecSpec& embed_pick) {
  std::printf("{\"world\": %d, \"iters\": %d,\n \"workloads\": [\n",
              cfg.world, cfg.iters);
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const WorkloadReport& wl = workloads[w];
    const double raw = static_cast<double>(wl.codecs.front().wire_bytes);
    std::printf("  {\"name\": \"%s\", \"elems\": %zu, \"codecs\": [\n",
                wl.name.c_str(), wl.elems);
    for (std::size_t c = 0; c < wl.codecs.size(); ++c) {
      const CodecResult& r = wl.codecs[c];
      std::printf("    {\"codec\": \"%s\", \"wire_bytes\": %llu, "
                  "\"reduction_vs_raw\": %.2f, \"rel_error\": %.3e, "
                  "\"all_reduce_us\": %.1f}%s\n",
                  aiacc::compress::ToString(r.spec).c_str(),
                  static_cast<unsigned long long>(r.wire_bytes),
                  r.wire_bytes > 0
                      ? raw / static_cast<double>(r.wire_bytes)
                      : 0.0,
                  r.rel_error, 1e6 * r.seconds / cfg.iters,
                  c + 1 < wl.codecs.size() ? "," : "");
    }
    std::printf("  ]}%s\n", w + 1 < workloads.size() ? "," : "");
  }
  std::printf(" ],\n \"tuner\": {\"rounds\": %d, \"dense_conv\": \"%s\", "
              "\"sparse_embedding\": \"%s\"}}\n",
              cfg.tuner_rounds,
              aiacc::compress::ToString(dense_pick).c_str(),
              aiacc::compress::ToString(embed_pick).c_str());
}

void PrintText(const BenchConfig& cfg,
               const std::vector<WorkloadReport>& workloads,
               const CodecSpec& dense_pick, const CodecSpec& embed_pick) {
  std::printf("compression bench: %d ranks, %d iters per codec\n", cfg.world,
              cfg.iters);
  for (const WorkloadReport& wl : workloads) {
    const double raw = static_cast<double>(wl.codecs.front().wire_bytes);
    std::printf("  %s (%zu floats):\n", wl.name.c_str(), wl.elems);
    for (const CodecResult& r : wl.codecs) {
      std::printf("    %-12s %12llu wire bytes  %6.2fx  rel_err %.3e  "
                  "%10.1f us/all-reduce\n",
                  aiacc::compress::ToString(r.spec).c_str(),
                  static_cast<unsigned long long>(r.wire_bytes),
                  r.wire_bytes > 0 ? raw / static_cast<double>(r.wire_bytes)
                                   : 0.0,
                  r.rel_error, 1e6 * r.seconds / cfg.iters);
    }
  }
  std::printf("  per-tensor bandit after %d rounds: dense_conv -> %s, "
              "sparse_embedding -> %s\n",
              cfg.tuner_rounds,
              aiacc::compress::ToString(dense_pick).c_str(),
              aiacc::compress::ToString(embed_pick).c_str());
}

double ReductionFor(const WorkloadReport& wl, CodecKind kind) {
  const double raw = static_cast<double>(wl.codecs.front().wire_bytes);
  for (const CodecResult& r : wl.codecs) {
    if (r.spec.kind == kind && r.wire_bytes > 0) {
      return raw / static_cast<double>(r.wire_bytes);
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      cfg.iters = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--smoke] [--iters N]\n",
                   argv[0]);
      return 1;
    }
  }
  if (smoke) {
    cfg.dense_elems = 1u << 14;
    cfg.embed_elems = 1u << 17;
    cfg.iters = 3;
  }

  const std::vector<CodecSpec> codecs = {
      CodecSpec{CodecKind::kNone}, CodecSpec{CodecKind::kFp16},
      CodecSpec{CodecKind::kBf16}, CodecSpec{CodecKind::kOneBit},
      CodecSpec{CodecKind::kTopK, 0.01f}};

  std::vector<WorkloadReport> workloads(2);
  workloads[0].name = "dense_conv";
  workloads[0].elems = cfg.dense_elems;
  workloads[1].name = "sparse_embedding";
  workloads[1].elems = cfg.embed_elems;
  for (const CodecSpec& spec : codecs) {
    workloads[0].codecs.push_back(RunCodecPhase(
        spec, cfg.world, cfg.dense_elems, cfg.iters, DenseValue));
    workloads[1].codecs.push_back(RunCodecPhase(
        spec, cfg.world, cfg.embed_elems, cfg.iters, EmbeddingValue));
  }

  // Per-tensor bandit demo: observe every round's encode footprint + error
  // and let UCB1 separate the two shapes.
  BufferPool tuner_pool;
  aiacc::compress::PerTensorCodecTuner tuner;
  const std::size_t dense_id = tuner.RegisterTensor("dense_conv");
  const std::size_t embed_id = tuner.RegisterTensor("sparse_embedding");
  std::vector<float> dense_grad(cfg.dense_elems);
  std::vector<float> embed_grad(cfg.embed_elems);
  for (std::size_t i = 0; i < cfg.dense_elems; ++i) {
    dense_grad[i] = DenseValue(0, i);
  }
  for (std::size_t i = 0; i < cfg.embed_elems; ++i) {
    embed_grad[i] = EmbeddingValue(0, i);
  }
  for (int round = 0; round < cfg.tuner_rounds; ++round) {
    for (const auto& [id, grad] :
         {std::pair<std::size_t, std::span<const float>>{dense_id,
                                                         dense_grad},
          {embed_id, embed_grad}}) {
      const CodecSpec pick = tuner.Choose(id);
      std::size_t wire = 0;
      double err = 0.0;
      EncodeFootprint(pick, grad, tuner_pool, &wire, &err);
      tuner.Observe(id, wire, grad.size(), err);
    }
  }
  const CodecSpec dense_pick = tuner.Best(dense_id);
  const CodecSpec embed_pick = tuner.Best(embed_id);

  if (json) {
    PrintJson(cfg, workloads, dense_pick, embed_pick);
  } else {
    PrintText(cfg, workloads, dense_pick, embed_pick);
  }

  if (smoke) {
    const double fp16_red = ReductionFor(workloads[1], CodecKind::kFp16);
    const double topk_red = ReductionFor(workloads[1], CodecKind::kTopK);
    if (fp16_red < 1.9) {
      std::fprintf(stderr,
                   "SMOKE FAILURE: fp16 embedding wire reduction %.2fx "
                   "(want >= 1.9x)\n",
                   fp16_red);
      return 1;
    }
    if (topk_red < 10.0) {
      std::fprintf(stderr,
                   "SMOKE FAILURE: top-k embedding wire reduction %.2fx "
                   "(want >= 10x)\n",
                   topk_red);
      return 1;
    }
    if (dense_pick == embed_pick ||
        dense_pick.kind != CodecKind::kFp16 ||
        embed_pick.kind != CodecKind::kTopK) {
      std::fprintf(stderr,
                   "SMOKE FAILURE: bandit picked %s for dense_conv and %s "
                   "for sparse_embedding (want fp16 / topk)\n",
                   aiacc::compress::ToString(dense_pick).c_str(),
                   aiacc::compress::ToString(embed_pick).c_str());
      return 1;
    }
  }
  return 0;
}
