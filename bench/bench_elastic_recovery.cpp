// Production-feature analysis (paper §IV "fault-tolerance to restart the
// training process from the last checkpoint upon node failure and elastic
// deployment by propagating training parameters into newly added computing
// nodes"): recovery-time breakdown after a node failure, and the
// checkpoint-interval trade-off (write overhead vs replay on failure).
#include "bench_util.h"

#include "trainer/elastic.h"

using namespace aiacc;
using namespace aiacc::bench;

int main() {
  PrintHeader("§IV — fault tolerance & elastic deployment",
              "Paper §IV 'Other features and optimizations'",
              "recovery = replacement wait + parameter broadcast + replay "
              "since last checkpoint; tighter checkpoints trade steady-state "
              "overhead for replay");

  // Recovery breakdown for a failure mid-run, per model.
  std::printf("\nnode failure at iteration 27 of 60 (64 GPUs, checkpoint "
              "every 10):\n");
  TablePrinter table({"model", "ideal", "total", "ckpt ovh", "replay",
                      "replace", "rejoin bcast"});
  for (const char* model : {"resnet50", "vgg16", "bert-large"}) {
    trainer::ElasticSpec spec;
    spec.model_name = model;
    spec.topology = trainer::MakeTopology(64);
    spec.batch_per_gpu = std::string(model) == "bert-large" ? 8 : 64;
    spec.total_iterations = 60;
    spec.checkpoint_interval = 10;
    spec.fail_at_iteration = 27;
    const auto r = trainer::SimulateElasticTraining(spec);
    table.AddRow({model, FormatDouble(r.ideal_time, 1) + " s",
                  FormatDouble(r.total_time, 1) + " s",
                  FormatDouble(r.checkpoint_overhead, 2) + " s",
                  FormatDouble(r.replay_overhead, 2) + " s",
                  FormatDouble(r.replacement_overhead, 1) + " s",
                  FormatDouble(r.rejoin_broadcast_time, 3) + " s"});
  }
  table.Print();

  // Checkpoint-interval trade-off on ResNet-50.
  std::printf("\ncheckpoint-interval trade-off (ResNet-50, failure @27):\n");
  TablePrinter tradeoff({"interval", "ckpt overhead", "replayed iters",
                         "total time"});
  for (int interval : {0, 5, 10, 20, 30}) {
    trainer::ElasticSpec spec;
    spec.model_name = "resnet50";
    spec.topology = trainer::MakeTopology(64);
    spec.total_iterations = 60;
    spec.checkpoint_interval = interval;
    spec.fail_at_iteration = 27;
    const auto r = trainer::SimulateElasticTraining(spec);
    tradeoff.AddRow({interval == 0 ? "none" : std::to_string(interval),
                     FormatDouble(r.checkpoint_overhead, 2) + " s",
                     std::to_string(r.iterations_replayed),
                     FormatDouble(r.total_time, 1) + " s"});
  }
  tradeoff.Print();

  // Gray failures: link-bandwidth degradation windows ("flaps") that slow
  // training without killing a rank — the failure detector never fires, but
  // throughput drops for the duration of the window.
  std::printf("\nlink flaps (VGG-16, 64 GPUs, no node failure):\n");
  TablePrinter flaps({"flap window", "bandwidth", "ideal", "total",
                      "degradation ovh"});
  struct FlapCase {
    const char* label;
    trainer::LinkFlap flap;
  };
  const FlapCase cases[] = {
      {"none", {0, 0, 1.0}},
      {"[20, 30) x0.5", {20, 30, 0.5}},
      {"[20, 30) x0.1", {20, 30, 0.1}},
      {"[10, 50) x0.5", {10, 50, 0.5}},
  };
  for (const FlapCase& c : cases) {
    trainer::ElasticSpec spec;
    spec.model_name = "vgg16";
    spec.topology = trainer::MakeTopology(64);
    spec.total_iterations = 60;
    spec.checkpoint_interval = 0;
    if (c.flap.to_iteration > c.flap.from_iteration) spec.flaps = {c.flap};
    const auto r = trainer::SimulateElasticTraining(spec);
    flaps.AddRow({c.label,
                  "x" + FormatDouble(c.flap.bandwidth_factor, 1),
                  FormatDouble(r.ideal_time, 1) + " s",
                  FormatDouble(r.total_time, 1) + " s",
                  FormatDouble(r.degradation_overhead, 2) + " s"});
  }
  flaps.Print();

  // A sample timeline.
  std::printf("\ntimeline (ResNet-50, interval 10, failure @27):\n");
  trainer::ElasticSpec spec;
  spec.model_name = "resnet50";
  spec.topology = trainer::MakeTopology(64);
  spec.total_iterations = 60;
  spec.checkpoint_interval = 10;
  spec.fail_at_iteration = 27;
  for (const auto& e : trainer::SimulateElasticTraining(spec).timeline) {
    std::printf("  t=%8.2fs  %s\n", e.time, e.what.c_str());
  }
  return 0;
}
