// Production-feature analysis (paper §IV "fault-tolerance to restart the
// training process from the last checkpoint upon node failure and elastic
// deployment by propagating training parameters into newly added computing
// nodes"): recovery-time breakdown after a node failure, and the
// checkpoint-interval trade-off (write overhead vs replay on failure).
#include "bench_util.h"

#include <cstring>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace_events.h"
#include "trainer/elastic.h"

using namespace aiacc;
using namespace aiacc::bench;

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace FILE] [--metrics-json FILE|-]\n",
                   argv[0]);
      return 1;
    }
  }

  PrintHeader("§IV — fault tolerance & elastic deployment",
              "Paper §IV 'Other features and optimizations'",
              "recovery = replacement wait + parameter broadcast + replay "
              "since last checkpoint; tighter checkpoints trade steady-state "
              "overhead for replay");

  // Recovery breakdown for a failure mid-run, per model.
  std::printf("\nnode failure at iteration 27 of 60 (64 GPUs, checkpoint "
              "every 10):\n");
  TablePrinter table({"model", "ideal", "total", "ckpt ovh", "replay",
                      "replace", "rejoin bcast"});
  for (const char* model : {"resnet50", "vgg16", "bert-large"}) {
    trainer::ElasticSpec spec;
    spec.model_name = model;
    spec.topology = trainer::MakeTopology(64);
    spec.batch_per_gpu = std::string(model) == "bert-large" ? 8 : 64;
    spec.total_iterations = 60;
    spec.checkpoint_interval = 10;
    spec.fail_at_iteration = 27;
    const auto r = trainer::SimulateElasticTraining(spec);
    auto& metrics = telemetry::MetricsRegistry::Global();
    metrics.GetCounter("elastic.cases").Add();
    metrics.GetGauge(telemetry::Scoped("elastic.total_time_s", model))
        .Set(r.total_time);
    metrics.GetGauge(telemetry::Scoped("elastic.replay_overhead_s", model))
        .Set(r.replay_overhead);
    table.AddRow({model, FormatDouble(r.ideal_time, 1) + " s",
                  FormatDouble(r.total_time, 1) + " s",
                  FormatDouble(r.checkpoint_overhead, 2) + " s",
                  FormatDouble(r.replay_overhead, 2) + " s",
                  FormatDouble(r.replacement_overhead, 1) + " s",
                  FormatDouble(r.rejoin_broadcast_time, 3) + " s"});
  }
  table.Print();

  // Checkpoint-interval trade-off on ResNet-50.
  std::printf("\ncheckpoint-interval trade-off (ResNet-50, failure @27):\n");
  TablePrinter tradeoff({"interval", "ckpt overhead", "replayed iters",
                         "total time"});
  for (int interval : {0, 5, 10, 20, 30}) {
    trainer::ElasticSpec spec;
    spec.model_name = "resnet50";
    spec.topology = trainer::MakeTopology(64);
    spec.total_iterations = 60;
    spec.checkpoint_interval = interval;
    spec.fail_at_iteration = 27;
    const auto r = trainer::SimulateElasticTraining(spec);
    tradeoff.AddRow({interval == 0 ? "none" : std::to_string(interval),
                     FormatDouble(r.checkpoint_overhead, 2) + " s",
                     std::to_string(r.iterations_replayed),
                     FormatDouble(r.total_time, 1) + " s"});
  }
  tradeoff.Print();

  // Gray failures: link-bandwidth degradation windows ("flaps") that slow
  // training without killing a rank — the failure detector never fires, but
  // throughput drops for the duration of the window.
  std::printf("\nlink flaps (VGG-16, 64 GPUs, no node failure):\n");
  TablePrinter flaps({"flap window", "bandwidth", "ideal", "total",
                      "degradation ovh"});
  struct FlapCase {
    const char* label;
    trainer::LinkFlap flap;
  };
  const FlapCase cases[] = {
      {"none", {0, 0, 1.0}},
      {"[20, 30) x0.5", {20, 30, 0.5}},
      {"[20, 30) x0.1", {20, 30, 0.1}},
      {"[10, 50) x0.5", {10, 50, 0.5}},
  };
  for (const FlapCase& c : cases) {
    trainer::ElasticSpec spec;
    spec.model_name = "vgg16";
    spec.topology = trainer::MakeTopology(64);
    spec.total_iterations = 60;
    spec.checkpoint_interval = 0;
    if (c.flap.to_iteration > c.flap.from_iteration) spec.flaps = {c.flap};
    const auto r = trainer::SimulateElasticTraining(spec);
    flaps.AddRow({c.label,
                  "x" + FormatDouble(c.flap.bandwidth_factor, 1),
                  FormatDouble(r.ideal_time, 1) + " s",
                  FormatDouble(r.total_time, 1) + " s",
                  FormatDouble(r.degradation_overhead, 2) + " s"});
  }
  flaps.Print();

  // A sample timeline.
  std::printf("\ntimeline (ResNet-50, interval 10, failure @27):\n");
  trainer::ElasticSpec spec;
  spec.model_name = "resnet50";
  spec.topology = trainer::MakeTopology(64);
  spec.total_iterations = 60;
  spec.checkpoint_interval = 10;
  spec.fail_at_iteration = 27;
  const auto sample = trainer::SimulateElasticTraining(spec);
  for (const auto& e : sample.timeline) {
    std::printf("  t=%8.2fs  %s\n", e.time, e.what.c_str());
  }

  // The simulated timeline renders through the same Chrome trace-event
  // emitter as the runtime tracer: each event opens a phase span that lasts
  // until the next event, plus a point marker at the transition.
  if (!trace_path.empty()) {
    std::vector<telemetry::SpanEvent> spans;
    std::vector<telemetry::InstantEvent> instants;
    const auto& tl = sample.timeline;
    for (std::size_t i = 0; i < tl.size(); ++i) {
      const double end =
          i + 1 < tl.size() ? tl[i + 1].time : sample.total_time;
      if (end > tl[i].time) {
        spans.push_back(
            {"recovery", tl[i].what, tl[i].time, end, "elastic"});
      }
      instants.push_back({"recovery", tl[i].what, tl[i].time, "elastic"});
    }
    const Status st =
        telemetry::WriteChromeTrace(trace_path, spans, instants);
    if (!st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("\ntrace: %zu spans -> %s\n", spans.size(),
                trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    const std::string json =
        telemetry::MetricsRegistry::Global().Snapshot().ToJson();
    if (metrics_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(metrics_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
        return 1;
      }
      std::fputs(json.c_str(), f);
      std::fclose(f);
    }
  }
  return 0;
}
