// Production-feature analysis (paper §IV "fault-tolerance to restart the
// training process from the last checkpoint upon node failure and elastic
// deployment by propagating training parameters into newly added computing
// nodes"): recovery-time breakdown after a node failure, the
// checkpoint-interval trade-off (write overhead vs replay on failure), and
// the in-band reliability sweep (--json): at each wire drop rate, the
// strict seed engine vs the reliable+degradation stack — recovered
// iterations/s, retransmit counts, and the time-to-degrade/time-to-restore
// of the engine's degradation ladder. --fault-schedule replays a serialized
// chaos schedule (tests dump one per failing soak cell) through the
// reliable engine.
#include "bench_util.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "collective/tags.h"
#include "core/threaded_engine.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_events.h"
#include "trainer/elastic.h"
#include "transport/fault_schedule.h"

using namespace aiacc;
using namespace aiacc::bench;

namespace {

/// One engine run for the reliability sweep: `iters` iterations of two
/// deterministic gradient tensors on every rank.
struct EngineRunResult {
  int completed_iters = 0;   // min across ranks
  bool aborted = false;
  double wall_s = 0.0;
  // Reliable-layer + degradation readings (zero when the tier is off).
  std::uint64_t retransmits = 0;
  std::uint64_t crc_failures = 0;
  std::uint64_t delivery_failures = 0;
  std::uint64_t unit_retries = 0;
  int final_degradation_level = 0;
  double time_to_degrade_ms = -1.0;  // first level > 0 (-1 = never)
  double time_to_restore_ms = -1.0;  // first return to 0 afterwards
};

EngineRunResult RunReliabilityEngine(int world, const core::CommConfig& config,
                                     const core::FailureConfig& failure,
                                     int iters) {
  static constexpr std::size_t kLenA = 600, kLenB = 130;
  EngineRunResult out;
  core::ThreadedAiaccEngine engine(world, config, failure);
  std::atomic<int> min_completed{iters};
  std::atomic<bool> any_failed{false};
  std::atomic<bool> done{false};

  // Sample the degradation ladder while the run is live.
  const auto start = std::chrono::steady_clock::now();
  std::thread monitor([&] {
    while (!done.load(std::memory_order_acquire)) {
      const int level = engine.degradation_level();
      const double now_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      if (level > 0 && out.time_to_degrade_ms < 0) {
        out.time_to_degrade_ms = now_ms;
      } else if (level == 0 && out.time_to_degrade_ms >= 0 &&
                 out.time_to_restore_ms < 0) {
        out.time_to_restore_ms = now_ms;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> a(kLenA), b(kLenB);
      auto& worker = engine.worker(r);
      if (!worker.Register("grad_a", a).ok() ||
          !worker.Register("grad_b", b).ok()) {
        any_failed.store(true);
        return;
      }
      worker.Finalize();
      int completed = 0;
      for (int it = 0; it < iters; ++it) {
        for (std::size_t i = 0; i < a.size(); ++i) {
          a[i] = static_cast<float>(r + 1) * 0.5f +
                 static_cast<float>(it) * 0.125f +
                 static_cast<float>(i) * 0.25f;
        }
        for (std::size_t i = 0; i < b.size(); ++i) {
          b[i] = static_cast<float>(r + 1) * -0.75f +
                 static_cast<float>(it * 3 + static_cast<int>(i)) * 0.0625f;
        }
        worker.PushAll();
        if (!worker.WaitIteration().ok()) {
          any_failed.store(true);
          break;
        }
        ++completed;
      }
      int expect = min_completed.load();
      while (completed < expect &&
             !min_completed.compare_exchange_weak(expect, completed)) {
      }
    });
  }
  for (auto& t : threads) t.join();
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
                   .count();
  done.store(true, std::memory_order_release);
  monitor.join();
  // The ladder often restores on the final WaitIteration, inside the
  // monitor's last sleep — take one authoritative end-of-run sample.
  if (engine.degradation_level() == 0 && out.time_to_degrade_ms >= 0 &&
      out.time_to_restore_ms < 0) {
    out.time_to_restore_ms = out.wall_s * 1000.0;
  }

  out.completed_iters = min_completed.load();
  out.aborted = any_failed.load();
  if (engine.reliable_layer() != nullptr) {
    const transport::ReliableStats s = engine.reliable_layer()->stats();
    out.retransmits = s.retransmits;
    out.crc_failures = s.crc_failures;
    out.delivery_failures = s.delivery_failures;
  }
  out.unit_retries =
      engine.metrics().GetCounter("engine.unit_retries").Value();
  out.final_degradation_level = engine.degradation_level();
  return out;
}

std::string JsonEngineRun(const EngineRunResult& r) {
  const double ips = r.wall_s > 0 ? r.completed_iters / r.wall_s : 0.0;
  std::string s = "{";
  s += "\"completed_iters\": " + std::to_string(r.completed_iters);
  s += ", \"aborted\": " + std::string(r.aborted ? "true" : "false");
  s += ", \"iters_per_sec\": " + FormatDouble(ips, 1);
  s += ", \"retransmits\": " + std::to_string(r.retransmits);
  s += ", \"crc_failures\": " + std::to_string(r.crc_failures);
  s += ", \"delivery_failures\": " + std::to_string(r.delivery_failures);
  s += ", \"unit_retries\": " + std::to_string(r.unit_retries);
  s += ", \"final_degradation_level\": " +
       std::to_string(r.final_degradation_level);
  s += "}";
  return s;
}

core::CommConfig SweepConfig() {
  core::CommConfig config;
  config.num_streams = 2;
  config.granularity_bytes = 1024;  // several units per iteration
  return config;
}

core::FailureConfig RobustFailureConfig(const transport::FaultSpec& spec) {
  core::FailureConfig f;
  f.faults = spec;
  f.collective_timeout_ms = 10000;
  f.reliable_transport = true;
  f.reliable_options.rto_initial_ms = 1;
  f.reliable_options.rto_max_ms = 8;
  f.degrade_before_abort = true;
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  std::string json_path;
  std::string schedule_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fault-schedule") == 0 && i + 1 < argc) {
      schedule_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace FILE] [--metrics-json FILE|-] "
                   "[--json FILE|-] [--fault-schedule FILE]\n",
                   argv[0]);
      return 1;
    }
  }

  // Replay a serialized chaos schedule (dumped by a failing soak cell or
  // written by hand) through the reliable engine, then exit.
  if (!schedule_path.empty()) {
    const Result<transport::FaultSpec> spec =
        transport::LoadFaultSchedule(schedule_path);
    if (!spec.ok()) {
      std::fprintf(stderr, "cannot load fault schedule: %s\n",
                   spec.status().ToString().c_str());
      return 1;
    }
    std::printf("replaying fault schedule %s (seed %llu)\n",
                schedule_path.c_str(),
                static_cast<unsigned long long>(spec->seed));
    const EngineRunResult r =
        RunReliabilityEngine(2, SweepConfig(), RobustFailureConfig(*spec), 30);
    std::printf(
        "  completed %d/30 iters in %.2fs (%s); retransmits=%llu "
        "crc_failures=%llu unit_retries=%llu final_level=%d\n",
        r.completed_iters, r.wall_s, r.aborted ? "ABORTED" : "ok",
        static_cast<unsigned long long>(r.retransmits),
        static_cast<unsigned long long>(r.crc_failures),
        static_cast<unsigned long long>(r.unit_retries),
        r.final_degradation_level);
    return r.aborted ? 2 : 0;
  }

  // In-band reliability sweep (--json): contrast the strict seed engine
  // (faults surface as collective timeouts -> abort) with the
  // reliable+degradation stack at increasing wire drop rates, then probe
  // the degradation ladder's reaction time. Emitted as JSON so the result
  // can be checked in (BENCH_reliability.json) and diffed across PRs.
  if (!json_path.empty()) {
    constexpr int kIters = 30;
    const double kDropRates[] = {0.0, 0.001, 0.01, 0.05};

    std::string json = "{\n  \"config\": {\"world\": 2, \"iters\": " +
                       std::to_string(kIters) +
                       ", \"num_streams\": 2, \"granularity_bytes\": 1024, "
                       "\"tensors\": [600, 130]},\n  \"sweep\": [\n";
    bool first = true;
    for (const double rate : kDropRates) {
      std::fprintf(stderr, "drop_rate %.3f...\n", rate);
      transport::FaultSpec spec;
      spec.seed = 4242;
      spec.all_links.drop_prob = rate;

      // Fragile leg: the pre-reliability engine. Strict delivery (a dropped
      // frame is never resequenced) and a finite collective deadline — any
      // drop on the critical path aborts the iteration.
      core::FailureConfig fragile;
      fragile.faults = spec;
      fragile.collective_timeout_ms = 300;
      const EngineRunResult frail =
          RunReliabilityEngine(2, SweepConfig(), fragile, kIters);

      // Robust leg: same schedule under the reliable transport with the
      // degradation ladder armed.
      transport::FaultSpec raw = spec;
      raw.delivery = transport::FaultDelivery::kRaw;
      const EngineRunResult robust = RunReliabilityEngine(
          2, SweepConfig(), RobustFailureConfig(raw), kIters);

      if (!first) json += ",\n";
      first = false;
      json += "    {\"drop_rate\": " + FormatDouble(rate, 3) +
              ",\n     \"fragile\": " + JsonEngineRun(frail) +
              ",\n     \"robust\": " + JsonEngineRun(robust) + "}";
    }
    json += "\n  ],\n";

    // Degradation-ladder probe: blackhole the primary unit tag namespace
    // (epoch-retry tags stay clean) and time the ladder's rise and the
    // walk back to level 0 (mirrors chaos_soak_test's
    // EngineDegradesRetriesAndRestores).
    std::fprintf(stderr, "degradation probe...\n");
    {
      core::CommConfig config;
      config.num_streams = 2;
      config.granularity_bytes = 4096;
      config.pipeline_depth = 4;
      transport::FaultSpec spec;
      spec.seed = 62;
      transport::TagFaults window;
      window.tag_lo = collective::kUnitTagBase;
      window.tag_hi = collective::kUnitRetryTagBase - 1;
      window.faults.drop_prob = 1.0;
      spec.per_tag.push_back(window);
      core::FailureConfig failure;
      failure.faults = spec;
      failure.collective_timeout_ms = 200;
      failure.degrade_before_abort = true;
      failure.degradation.recover_after = 2;
      const EngineRunResult probe =
          RunReliabilityEngine(2, config, failure, 6);
      json += "  \"degradation_probe\": {\"run\": " + JsonEngineRun(probe) +
              ", \"time_to_degrade_ms\": " +
              FormatDouble(probe.time_to_degrade_ms, 2) +
              ", \"time_to_restore_ms\": " +
              FormatDouble(probe.time_to_restore_ms, 2) + "}\n";
    }
    json += "}\n";

    if (json_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 1;
      }
      std::fputs(json.c_str(), f);
      std::fclose(f);
    }
    return 0;
  }

  PrintHeader("§IV — fault tolerance & elastic deployment",
              "Paper §IV 'Other features and optimizations'",
              "recovery = replacement wait + parameter broadcast + replay "
              "since last checkpoint; tighter checkpoints trade steady-state "
              "overhead for replay");

  // Recovery breakdown for a failure mid-run, per model.
  std::printf("\nnode failure at iteration 27 of 60 (64 GPUs, checkpoint "
              "every 10):\n");
  TablePrinter table({"model", "ideal", "total", "ckpt ovh", "replay",
                      "replace", "rejoin bcast"});
  for (const char* model : {"resnet50", "vgg16", "bert-large"}) {
    trainer::ElasticSpec spec;
    spec.model_name = model;
    spec.topology = trainer::MakeTopology(64);
    spec.batch_per_gpu = std::string(model) == "bert-large" ? 8 : 64;
    spec.total_iterations = 60;
    spec.checkpoint_interval = 10;
    spec.fail_at_iteration = 27;
    const auto r = trainer::SimulateElasticTraining(spec);
    auto& metrics = telemetry::MetricsRegistry::Global();
    metrics.GetCounter("elastic.cases").Add();
    metrics.GetGauge(telemetry::Scoped("elastic.total_time_s", model))
        .Set(r.total_time);
    metrics.GetGauge(telemetry::Scoped("elastic.replay_overhead_s", model))
        .Set(r.replay_overhead);
    table.AddRow({model, FormatDouble(r.ideal_time, 1) + " s",
                  FormatDouble(r.total_time, 1) + " s",
                  FormatDouble(r.checkpoint_overhead, 2) + " s",
                  FormatDouble(r.replay_overhead, 2) + " s",
                  FormatDouble(r.replacement_overhead, 1) + " s",
                  FormatDouble(r.rejoin_broadcast_time, 3) + " s"});
  }
  table.Print();

  // Checkpoint-interval trade-off on ResNet-50.
  std::printf("\ncheckpoint-interval trade-off (ResNet-50, failure @27):\n");
  TablePrinter tradeoff({"interval", "ckpt overhead", "replayed iters",
                         "total time"});
  for (int interval : {0, 5, 10, 20, 30}) {
    trainer::ElasticSpec spec;
    spec.model_name = "resnet50";
    spec.topology = trainer::MakeTopology(64);
    spec.total_iterations = 60;
    spec.checkpoint_interval = interval;
    spec.fail_at_iteration = 27;
    const auto r = trainer::SimulateElasticTraining(spec);
    tradeoff.AddRow({interval == 0 ? "none" : std::to_string(interval),
                     FormatDouble(r.checkpoint_overhead, 2) + " s",
                     std::to_string(r.iterations_replayed),
                     FormatDouble(r.total_time, 1) + " s"});
  }
  tradeoff.Print();

  // Gray failures: link-bandwidth degradation windows ("flaps") that slow
  // training without killing a rank — the failure detector never fires, but
  // throughput drops for the duration of the window.
  std::printf("\nlink flaps (VGG-16, 64 GPUs, no node failure):\n");
  TablePrinter flaps({"flap window", "bandwidth", "ideal", "total",
                      "degradation ovh"});
  struct FlapCase {
    const char* label;
    trainer::LinkFlap flap;
  };
  const FlapCase cases[] = {
      {"none", {0, 0, 1.0}},
      {"[20, 30) x0.5", {20, 30, 0.5}},
      {"[20, 30) x0.1", {20, 30, 0.1}},
      {"[10, 50) x0.5", {10, 50, 0.5}},
  };
  for (const FlapCase& c : cases) {
    trainer::ElasticSpec spec;
    spec.model_name = "vgg16";
    spec.topology = trainer::MakeTopology(64);
    spec.total_iterations = 60;
    spec.checkpoint_interval = 0;
    if (c.flap.to_iteration > c.flap.from_iteration) spec.flaps = {c.flap};
    const auto r = trainer::SimulateElasticTraining(spec);
    flaps.AddRow({c.label,
                  "x" + FormatDouble(c.flap.bandwidth_factor, 1),
                  FormatDouble(r.ideal_time, 1) + " s",
                  FormatDouble(r.total_time, 1) + " s",
                  FormatDouble(r.degradation_overhead, 2) + " s"});
  }
  flaps.Print();

  // A sample timeline.
  std::printf("\ntimeline (ResNet-50, interval 10, failure @27):\n");
  trainer::ElasticSpec spec;
  spec.model_name = "resnet50";
  spec.topology = trainer::MakeTopology(64);
  spec.total_iterations = 60;
  spec.checkpoint_interval = 10;
  spec.fail_at_iteration = 27;
  const auto sample = trainer::SimulateElasticTraining(spec);
  for (const auto& e : sample.timeline) {
    std::printf("  t=%8.2fs  %s\n", e.time, e.what.c_str());
  }

  // The simulated timeline renders through the same Chrome trace-event
  // emitter as the runtime tracer: each event opens a phase span that lasts
  // until the next event, plus a point marker at the transition.
  if (!trace_path.empty()) {
    std::vector<telemetry::SpanEvent> spans;
    std::vector<telemetry::InstantEvent> instants;
    const auto& tl = sample.timeline;
    for (std::size_t i = 0; i < tl.size(); ++i) {
      const double end =
          i + 1 < tl.size() ? tl[i + 1].time : sample.total_time;
      if (end > tl[i].time) {
        spans.push_back(
            {"recovery", tl[i].what, tl[i].time, end, "elastic", "", 0});
      }
      instants.push_back(
          {"recovery", tl[i].what, tl[i].time, "elastic", "", 0});
    }
    const Status st =
        telemetry::WriteChromeTrace(trace_path, spans, instants);
    if (!st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("\ntrace: %zu spans -> %s\n", spans.size(),
                trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    const std::string json =
        telemetry::MetricsRegistry::Global().Snapshot().ToJson();
    if (metrics_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(metrics_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
        return 1;
      }
      std::fputs(json.c_str(), f);
      std::fclose(f);
    }
  }
  return 0;
}
