// Hot-path microbench: quantifies the three zero-allocation optimizations
// against the legacy behaviour, in one binary, on identical workloads:
//
//   * payload pooling   — Comm.pool = BufferPool vs nullptr (alloc+copy);
//   * targeted wakeups  — WakeMode::kTargeted (per-slot CVs) vs kSharedHerd
//                         (one CV per mailbox, notify_all per send);
//   * persistent rings  — MultiChannelAllReduce on the process-wide worker
//                         pool (thread count reported to show reuse).
//
// Reported: ring all-reduce msgs/sec (baseline vs optimized), multi-channel
// all-reduce GB/s, steady-state payload allocations per iteration, and
// futile wakeups per 1k messages. `--json` prints a machine-readable
// summary; `--smoke` runs a small configuration and exits non-zero unless
// the pooled steady state performed *zero* payload allocations AND the
// depth-4 pipelined ring moves at least as many msgs/s as depth 1 on a
// large-payload round (wired into ctest). `--pipeline-sweep` replaces the
// standard phases with a Comm::pipeline_depth sweep over {1, 2, 4, 8} on
// the pooled/targeted ring, reporting per-depth msgs/s, per-all-reduce
// latency, and the latency speedup against depth 1 (the checked-in
// BENCH_hotpath.json baseline comes from this mode under `release-bench`).
// Read the two metrics together: a depth-d round intentionally moves d
// times as many (d-times-smaller) messages for the same reduction, so
// msgs/s scales with depth by construction — the latency column is the
// honest overlap signal. `--trace FILE` records a phase-level wall-clock
// trace of the whole run (Chrome trace-event JSON, opens in Perfetto) and
// prints a per-category summary table; `--metrics-json FILE` dumps the
// process metrics registry after the run (`-` = stdout). Quote numbers
// from the `release-bench` preset (-O3 -DNDEBUG).
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "collective/threaded.h"
#include "common/buffer_pool.h"
#include "common/logging.h"
#include "core/threaded_engine.h"
#include "telemetry/merge.h"
#include "telemetry/metrics.h"
#include "telemetry/tracer.h"
#include "transport/inproc.h"

namespace {

using aiacc::common::BufferPool;
using aiacc::telemetry::MetricsRegistry;
using aiacc::telemetry::RuntimeTracer;

struct BenchConfig {
  int world = 8;
  std::size_t ring_elems = 1u << 20;  // 4 MiB of gradients per rank
  int ring_warmup = 3;
  int ring_iters = 20;
  std::size_t mc_elems = 1u << 20;
  int mc_channels = 4;
  int mc_iters = 10;
};

struct PhaseResult {
  double seconds = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t payload_allocs = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t futile_wakeups = 0;

  [[nodiscard]] double MsgsPerSec() const {
    return seconds > 0 ? static_cast<double>(messages) / seconds : 0.0;
  }
  [[nodiscard]] double FutilePerKiloMsg() const {
    return messages > 0 ? 1e3 * static_cast<double>(futile_wakeups) /
                              static_cast<double>(messages)
                        : 0.0;
  }
};

/// Payload allocations in the measured window: the legacy (pool-less) path
/// counts through the registry's `hotpath.payload_allocs` counter; the
/// pooled path's only allocations are pool misses.
std::uint64_t PayloadAllocs(const BufferPool* pool) {
  std::uint64_t n = MetricsRegistry::Global()
                        .GetCounter("hotpath.payload_allocs")
                        .Value();
  if (pool != nullptr) n += pool->stats().misses;
  return n;
}

/// Drive `world` rank threads through `iters` timed rounds of `op` after
/// `warmup` untimed rounds; counters are sampled on the start and finish
/// lines so the deltas cover exactly the measured window.
template <typename RankOp>
PhaseResult TimeRanks(aiacc::transport::InProcTransport& tr,
                      const BufferPool* pool, int world, int warmup,
                      int iters, RankOp op) {
  std::barrier<> gate(static_cast<std::ptrdiff_t>(world) + 1);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      for (int i = 0; i < warmup; ++i) op(r);
      gate.arrive_and_wait();  // warmed up; main samples counters
      gate.arrive_and_wait();  // start line
      for (int i = 0; i < iters; ++i) op(r);
      gate.arrive_and_wait();  // finish line
    });
  }
  gate.arrive_and_wait();
  const std::uint64_t allocs0 = PayloadAllocs(pool);
  const std::uint64_t msgs0 = tr.TotalMessages();
  const std::uint64_t wire0 = tr.TotalPayloadBytes();
  const auto wake0 = tr.wake_counters();
  const auto t0 = std::chrono::steady_clock::now();
  gate.arrive_and_wait();
  gate.arrive_and_wait();
  const auto t1 = std::chrono::steady_clock::now();
  for (auto& t : threads) t.join();

  PhaseResult result;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.messages = tr.TotalMessages() - msgs0;
  result.wire_bytes = tr.TotalPayloadBytes() - wire0;
  result.payload_allocs = PayloadAllocs(pool) - allocs0;
  const auto wake1 = tr.wake_counters();
  result.wakeups = wake1.wakeups - wake0.wakeups;
  result.futile_wakeups = wake1.futile_wakeups - wake0.futile_wakeups;
  return result;
}

PhaseResult RunRing(aiacc::transport::WakeMode mode, BufferPool* pool,
                    const BenchConfig& cfg, int pipeline_depth = 1) {
  aiacc::transport::InProcTransport tr(cfg.world, mode);
  return TimeRanks(
      tr, pool, cfg.world, cfg.ring_warmup, cfg.ring_iters, [&](int r) {
        thread_local std::vector<float> data;
        data.assign(cfg.ring_elems, static_cast<float>(r + 1));
        aiacc::collective::Comm comm{&tr,  r, cfg.world, /*tag_base=*/1,
                                     /*timeout_ms=*/0, pool,
                                     pipeline_depth};
        const aiacc::Status st = aiacc::collective::RingAllReduce(
            comm, data, aiacc::collective::ReduceOp::kSum);
        if (!st.ok()) {
          std::fprintf(stderr, "ring all-reduce failed: %s\n",
                       st.ToString().c_str());
          std::exit(2);
        }
      });
}

struct DepthResult {
  int depth = 1;
  PhaseResult phase;
};

/// Pooled/targeted ring at every pipeline depth, identical workload.
std::vector<DepthResult> RunPipelineSweep(BufferPool* pool,
                                          const BenchConfig& cfg) {
  std::vector<DepthResult> out;
  for (int depth : {1, 2, 4, 8}) {
    out.push_back({depth, RunRing(aiacc::transport::WakeMode::kTargeted,
                                  pool, cfg, depth)});
  }
  return out;
}

PhaseResult RunMultiChannel(BufferPool* pool, const BenchConfig& cfg) {
  aiacc::transport::InProcTransport tr(
      cfg.world, aiacc::transport::WakeMode::kTargeted);
  return TimeRanks(
      tr, pool, cfg.world, /*warmup=*/2, cfg.mc_iters, [&](int r) {
        thread_local std::vector<float> data;
        data.assign(cfg.mc_elems, static_cast<float>(r + 1));
        aiacc::collective::Comm comm{&tr,  r, cfg.world, /*tag_base=*/1,
                                     /*timeout_ms=*/0, pool};
        const aiacc::Status st = aiacc::collective::MultiChannelAllReduce(
            comm, data, aiacc::collective::ReduceOp::kAvg, cfg.mc_channels);
        if (!st.ok()) {
          std::fprintf(stderr, "multi-channel all-reduce failed: %s\n",
                       st.ToString().c_str());
          std::exit(2);
        }
      });
}

/// Multi-rank observability smoke (`--trace-dir DIR`): run a 4-rank,
/// 2-stream traced engine phase with message stamping forced on and a
/// known synthetic clock skew per rank, then write per-rank traces
/// (`trace.r<k>.json`, each shifted by its rank's skew so the files look
/// like they came from machines with disagreeing clocks) plus the aligned
/// `trace.merged.json` recovered by telemetry::MergeTraces from the
/// cross-rank flow edges alone. Exits non-zero when no flow edges were
/// captured or the merged timeline still has a causality violation beyond
/// the estimator's tolerance — this is what the `observability` ctest and
/// CI lane consume (tools/trace_analyze.py + tools/trace_lint.py read the
/// files afterwards).
int RunTraceSmoke(const std::string& dir) {
  using aiacc::telemetry::ChromeTraceDoc;
  using aiacc::telemetry::TraceLevel;
  constexpr int kWorld = 4;
  constexpr int kIters = 6;
  constexpr std::size_t kElems = 4096;
  constexpr std::size_t kTensors = 4;
  // Synthetic per-rank clock offsets (seconds): what MergeTraces must
  // recover. Millisecond-scale, both signs, rank 0 pinned at zero.
  const std::vector<double> skew_s = {0.0, 1.5e-3, -0.8e-3, 2.2e-3};

  auto& tracer = RuntimeTracer::Global();
  tracer.Clear();
  tracer.Enable(TraceLevel::kPhase);

  aiacc::core::CommConfig config;
  config.num_streams = 2;           // >= 2 comm channels per rank
  config.granularity_bytes = 8192;  // several units per iteration
  config.pipeline_depth = 2;
  aiacc::core::FailureConfig failure;
  failure.trace_messages = 1;  // stamp even if the tracer flips off early
  failure.trace_rank_skew_ns.resize(kWorld);
  for (int r = 0; r < kWorld; ++r) {
    failure.trace_rank_skew_ns[static_cast<std::size_t>(r)] =
        static_cast<std::int64_t>(skew_s[static_cast<std::size_t>(r)] * 1e9);
  }

  std::atomic<bool> failed{false};
  {
    aiacc::core::ThreadedAiaccEngine engine(kWorld, config, failure);
    std::vector<std::thread> threads;
    threads.reserve(kWorld);
    for (int r = 0; r < kWorld; ++r) {
      threads.emplace_back([&, r] {
        aiacc::SetThreadLogContext(r, "worker");
        auto& worker = engine.worker(r);
        std::vector<std::vector<float>> tensors(
            kTensors, std::vector<float>(kElems, static_cast<float>(r + 1)));
        for (std::size_t t = 0; t < kTensors; ++t) {
          char name[32];
          std::snprintf(name, sizeof(name), "grad%03zu", t);
          if (!worker.Register(name, tensors[t]).ok()) {
            failed.store(true);
            return;
          }
        }
        worker.Finalize();
        for (int it = 0; it < kIters; ++it) {
          aiacc::telemetry::TraceSpan iteration(
              tracer, TraceLevel::kPhase, "engine.iteration", "iteration",
              it);
          {
            // "Backward pass": real writes, so compute time is not zero.
            aiacc::telemetry::TraceSpan compute(tracer, TraceLevel::kPhase,
                                                "compute", "compute", it);
            for (auto& tensor : tensors) {
              for (std::size_t i = 0; i < tensor.size(); ++i) {
                tensor[i] = static_cast<float>(r + 1) +
                            static_cast<float>(i % 7) * 0.125f;
              }
            }
          }
          worker.PushAll();
          if (!worker.WaitIteration().ok()) {
            failed.store(true);
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    engine.Shutdown();
  }
  tracer.Disable();
  if (failed.load()) {
    std::fprintf(stderr, "trace smoke: engine iteration failed\n");
    return 1;
  }

  ChromeTraceDoc doc;
  tracer.Collect(&doc);
  auto by_rank = aiacc::telemetry::SplitByRankLabel(doc);
  std::vector<aiacc::telemetry::RankTrace> traces;
  traces.reserve(kWorld);
  for (int r = 0; r < kWorld; ++r) {
    ChromeTraceDoc rank_doc = std::move(by_rank[r]);
    // Skew this rank's clock: the per-rank files really disagree, and the
    // merge has real offsets to recover.
    aiacc::telemetry::ShiftTimes(rank_doc,
                                 skew_s[static_cast<std::size_t>(r)]);
    const std::string path =
        dir + "/trace.r" + std::to_string(r) + ".json";
    const aiacc::Status st =
        aiacc::telemetry::WriteChromeTrace(path, rank_doc);
    if (!st.ok()) {
      std::fprintf(stderr, "trace smoke: %s: %s\n", path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    traces.push_back({r, std::move(rank_doc)});
  }
  const aiacc::telemetry::MergeReport report =
      aiacc::telemetry::MergeTraces(traces);
  const std::string merged_path = dir + "/trace.merged.json";
  const aiacc::Status st =
      aiacc::telemetry::WriteChromeTrace(merged_path, report.merged);
  if (!st.ok()) {
    std::fprintf(stderr, "trace smoke: %s: %s\n", merged_path.c_str(),
                 st.ToString().c_str());
    return 1;
  }

  std::printf("trace smoke: %d ranks, %d iters -> %s\n", kWorld, kIters,
              dir.c_str());
  std::printf("  flow edges matched: %zu  (unmatched halves: %zu)\n",
              report.flow_edges, report.unmatched_flows);
  for (int r = 0; r < kWorld; ++r) {
    std::printf("  rank %d: injected skew %+8.3f ms, recovered offset "
                "%+8.3f ms\n",
                r, 1e3 * skew_s[static_cast<std::size_t>(r)],
                1e3 * report.offset_seconds[static_cast<std::size_t>(r)]);
  }
  std::printf("  max causality violation after correction: %.1f us\n",
              1e6 * report.max_causality_violation);

  if (report.flow_edges == 0) {
    std::fprintf(stderr,
                 "TRACE SMOKE FAILURE: no cross-rank flow edges captured\n");
    return 1;
  }
  // The injected skews are milliseconds; the estimator should leave at
  // most in-process scheduling noise. 1ms of residual means it failed.
  if (report.max_causality_violation > 1e-3) {
    std::fprintf(stderr,
                 "TRACE SMOKE FAILURE: %.1f us causality violation after "
                 "skew correction\n",
                 1e6 * report.max_causality_violation);
    return 1;
  }
  return 0;
}

int WriteText(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fputs(text.c_str(), f);
  std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  bool pipeline_sweep = false;
  std::string trace_path;
  std::string trace_dir;
  std::string metrics_path;
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--pipeline-sweep") == 0) {
      pipeline_sweep = true;
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      cfg.ring_iters = std::atoi(argv[++i]);
      cfg.mc_iters = cfg.ring_iters;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-dir") == 0 && i + 1 < argc) {
      trace_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--smoke] [--pipeline-sweep] "
                   "[--iters N] [--trace FILE] [--trace-dir DIR] "
                   "[--metrics-json FILE|-]\n",
                   argv[0]);
      return 1;
    }
  }
  if (!trace_dir.empty()) {
    // Standalone mode: the multi-rank causal-trace smoke replaces the
    // standard phases (DIR must exist; files land as trace.r<k>.json and
    // trace.merged.json).
    return RunTraceSmoke(trace_dir);
  }
  if (smoke) {
    cfg.world = 4;
    cfg.ring_elems = 8192;
    cfg.ring_iters = 5;
    cfg.mc_elems = 8192;
    cfg.mc_channels = 2;
    cfg.mc_iters = 3;
  }

  if (!trace_path.empty()) {
    RuntimeTracer::Global().Enable(aiacc::telemetry::TraceLevel::kPhase);
  }

  // Bench-local pool: the alloc counters then cover exactly this workload.
  BufferPool pool;

  std::vector<DepthResult> sweep;
  PhaseResult baseline;
  PhaseResult pooled;
  if (pipeline_sweep) {
    sweep = RunPipelineSweep(&pool, cfg);
    const double lat1_us =
        1e6 * sweep.front().phase.seconds / cfg.ring_iters;
    if (json) {
      std::printf("{\"world\": %d, \"ring_elems\": %zu, \"ring_iters\": %d,\n"
                  " \"pipeline_sweep\": [\n",
                  cfg.world, cfg.ring_elems, cfg.ring_iters);
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        const DepthResult& r = sweep[i];
        const double lat_us = 1e6 * r.phase.seconds / cfg.ring_iters;
        std::printf("  {\"depth\": %d, \"msgs_per_sec\": %.0f, "
                    "\"unit_latency_us\": %.1f, "
                    "\"latency_speedup_vs_depth1\": %.2f, "
                    "\"wire_bytes\": %llu}%s\n",
                    r.depth, r.phase.MsgsPerSec(), lat_us,
                    lat_us > 0 ? lat1_us / lat_us : 0.0,
                    static_cast<unsigned long long>(r.phase.wire_bytes),
                    i + 1 < sweep.size() ? "," : "");
      }
      std::printf(" ]}\n");
    } else {
      std::printf("pipeline-depth sweep: %d ranks, %zu floats, %d iters "
                  "(pooled, targeted wakeups)\n",
                  cfg.world, cfg.ring_elems, cfg.ring_iters);
      for (const DepthResult& r : sweep) {
        const double lat_us = 1e6 * r.phase.seconds / cfg.ring_iters;
        std::printf("  depth %d: %12.0f msgs/s  %10.1f us/all-reduce  "
                    "(%.2fx vs depth 1)\n",
                    r.depth, r.phase.MsgsPerSec(), lat_us,
                    lat_us > 0 ? lat1_us / lat_us : 0.0);
      }
    }
  } else {
    // Baseline = the pre-optimization hot path: shared-CV herd wakeups and
    // a fresh heap allocation + copy per ring step.
    baseline = RunRing(aiacc::transport::WakeMode::kSharedHerd, nullptr, cfg);
    pooled = RunRing(aiacc::transport::WakeMode::kTargeted, &pool, cfg);

    const PhaseResult mc = RunMultiChannel(&pool, cfg);
    const double mc_gb_per_sec =
        mc.seconds > 0
            ? static_cast<double>(cfg.mc_iters) *
                  static_cast<double>(cfg.mc_elems) * sizeof(float) /
                  mc.seconds / 1e9
            : 0.0;

    const double speedup = baseline.MsgsPerSec() > 0
                               ? pooled.MsgsPerSec() / baseline.MsgsPerSec()
                               : 0.0;
    const double allocs_per_iter =
        static_cast<double>(pooled.payload_allocs) / cfg.ring_iters;

    if (json) {
      std::printf(
          "{\"world\": %d, \"ring_elems\": %zu, \"ring_iters\": %d,\n"
          " \"baseline_msgs_per_sec\": %.0f, \"pooled_msgs_per_sec\": %.0f,\n"
          " \"speedup\": %.2f,\n"
          " \"baseline_allocs_per_iter\": %.1f, \"pooled_allocs_per_iter\": "
          "%.1f,\n"
          " \"baseline_futile_wakeups_per_1k_msgs\": %.1f, "
          "\"pooled_futile_wakeups_per_1k_msgs\": %.1f,\n"
          " \"baseline_wire_bytes\": %llu, \"pooled_wire_bytes\": %llu,\n"
          " \"multichannel_gb_per_sec\": %.3f, "
          "\"multichannel_workers\": %d}\n",
          cfg.world, cfg.ring_elems, cfg.ring_iters, baseline.MsgsPerSec(),
          pooled.MsgsPerSec(), speedup,
          static_cast<double>(baseline.payload_allocs) / cfg.ring_iters,
          allocs_per_iter, baseline.FutilePerKiloMsg(),
          pooled.FutilePerKiloMsg(),
          static_cast<unsigned long long>(baseline.wire_bytes),
          static_cast<unsigned long long>(pooled.wire_bytes), mc_gb_per_sec,
          aiacc::collective::MultiChannelWorkerCount());
    } else {
      std::printf("hot path bench: %d ranks, %zu floats, %d iters\n",
                  cfg.world, cfg.ring_elems, cfg.ring_iters);
      std::printf("  ring all-reduce, baseline (herd CV, alloc+copy): %10.0f "
                  "msgs/s  (%.1f allocs/iter, %.1f futile wakes/1k msgs)\n",
                  baseline.MsgsPerSec(),
                  static_cast<double>(baseline.payload_allocs) /
                      cfg.ring_iters,
                  baseline.FutilePerKiloMsg());
      std::printf("  ring all-reduce, optimized (slot CV, pooled):     "
                  "%10.0f msgs/s  (%.1f allocs/iter, %.1f futile wakes/1k "
                  "msgs)\n",
                  pooled.MsgsPerSec(), allocs_per_iter,
                  pooled.FutilePerKiloMsg());
      std::printf("  speedup: %.2fx\n", speedup);
      std::printf("  wire bytes (measured window): baseline %llu, pooled "
                  "%llu\n",
                  static_cast<unsigned long long>(baseline.wire_bytes),
                  static_cast<unsigned long long>(pooled.wire_bytes));
      std::printf("  multi-channel all-reduce (%d channels): %.3f GB/s on %d "
                  "persistent workers\n",
                  cfg.mc_channels, mc_gb_per_sec,
                  aiacc::collective::MultiChannelWorkerCount());
    }
  }

  if (!trace_path.empty()) {
    auto& tracer = RuntimeTracer::Global();
    tracer.Disable();  // every recording thread joined above: safe to flush
    const aiacc::Status st = tracer.WriteTo(trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::vector<aiacc::telemetry::SpanEvent> spans;
    std::vector<aiacc::telemetry::InstantEvent> instants;
    tracer.Collect(&spans, &instants);
    std::printf("trace: %zu spans, %zu instants, %llu dropped -> %s\n",
                spans.size(), instants.size(),
                static_cast<unsigned long long>(tracer.dropped()),
                trace_path.c_str());
    std::fputs(
        aiacc::telemetry::SummaryTable(aiacc::telemetry::SummarizeSpans(spans))
            .c_str(),
        stdout);
  }
  if (!metrics_path.empty()) {
    const int rc = WriteText(
        metrics_path, MetricsRegistry::Global().Snapshot().ToJson());
    if (rc != 0) return rc;
  }

  if (smoke) {
    if (!pipeline_sweep && pooled.payload_allocs != 0) {
      std::fprintf(stderr,
                   "SMOKE FAILURE: pooled steady state performed %llu payload "
                   "allocations (want 0)\n",
                   static_cast<unsigned long long>(pooled.payload_allocs));
      return 1;
    }
    // Pipelining must never lose message throughput on a large payload:
    // depth 4 moves 4x the messages for the same reduction, so even heavy
    // per-slice overhead leaves msgs/s(depth 4) >= msgs/s(depth 1). A
    // timing inversion therefore only means scheduling noise on a loaded
    // machine — re-measure a couple of times before declaring failure.
    BenchConfig big = cfg;
    if (!pipeline_sweep) {
      big.ring_elems = 1u << 16;  // large enough that slices stay SIMD-sized
      big.ring_warmup = 1;
      big.ring_iters = 3;
    }
    bool depth_ok = false;
    PhaseResult d1;
    PhaseResult d4;
    for (int attempt = 0; attempt < 3 && !depth_ok; ++attempt) {
      if (pipeline_sweep && attempt == 0) {
        for (const DepthResult& r : sweep) {
          if (r.depth == 1) d1 = r.phase;
          if (r.depth == 4) d4 = r.phase;
        }
      } else {
        d1 = RunRing(aiacc::transport::WakeMode::kTargeted, &pool, big, 1);
        d4 = RunRing(aiacc::transport::WakeMode::kTargeted, &pool, big, 4);
      }
      depth_ok = d4.MsgsPerSec() >= d1.MsgsPerSec();
    }
    if (!depth_ok) {
      std::fprintf(stderr,
                   "SMOKE FAILURE: pipelined depth-4 ring moved %.0f msgs/s, "
                   "below the depth-1 baseline's %.0f msgs/s\n",
                   d4.MsgsPerSec(), d1.MsgsPerSec());
      return 1;
    }
  }
  return 0;
}
