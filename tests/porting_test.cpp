// Source-to-source translator tests (paper §IV): Horovod one-line port,
// full sequential-to-distributed conversion, idempotence, and conservative
// behaviour on patterns the tool does not recognize.
#include <gtest/gtest.h>

#include "porting/translator.h"

namespace aiacc::porting {
namespace {

bool HasEdit(const TranslationResult& r, Edit::Kind kind) {
  for (const Edit& e : r.edits) {
    if (e.kind == kind) return true;
  }
  return false;
}

TEST(HorovodPortTest, SwapsImportKeepingAlias) {
  const std::string script =
      "import torch\n"
      "import horovod.torch as hvd\n"
      "\n"
      "hvd.init()\n"
      "optimizer = hvd.DistributedOptimizer(optimizer)\n";
  const auto result = PortHorovodScript(script);
  EXPECT_FALSE(result.already_ported);
  ASSERT_EQ(result.edits.size(), 1u);
  EXPECT_EQ(result.edits[0].kind, Edit::Kind::kImportSwap);
  EXPECT_EQ(result.edits[0].line, 2);
  // The import now pulls Perseus, but the alias (and thus the rest of the
  // program) is untouched — the paper's "changing one line" port.
  EXPECT_NE(result.source.find("import perseus.torch as hvd"),
            std::string::npos);
  EXPECT_NE(result.source.find("hvd.init()"), std::string::npos);
  EXPECT_EQ(result.source.find("import horovod"), std::string::npos);
}

TEST(HorovodPortTest, FromImportForm) {
  const auto result =
      PortHorovodScript("from horovod.tensorflow import keras as hvd_keras\n");
  EXPECT_NE(result.source.find("from perseus.tensorflow"), std::string::npos);
}

TEST(HorovodPortTest, AlreadyPortedIsNoOp) {
  const std::string script = "import perseus.torch as hvd\nhvd.init()\n";
  const auto result = PortHorovodScript(script);
  EXPECT_TRUE(result.already_ported);
  EXPECT_EQ(result.source, script);
  EXPECT_TRUE(result.edits.empty());
}

constexpr const char* kSequentialScript =
    "import torch\n"
    "import torch.nn as nn\n"
    "from torch.utils.data import DataLoader\n"
    "\n"
    "model = ResNet50()\n"
    "loader = DataLoader(train_dataset, batch_size=64, shuffle=True)\n"
    "optimizer = torch.optim.SGD(model.parameters(), lr=0.1, momentum=0.9)\n"
    "\n"
    "for epoch in range(90):\n"
    "    for x, y in loader:\n"
    "        loss = criterion(model(x), y)\n"
    "        loss.backward()\n"
    "        optimizer.step()\n"
    "    torch.save(model.state_dict(), 'ckpt.pt')\n";

TEST(SequentialPortTest, AppliesAllSixTransformations) {
  const auto result = PortSequentialScript(kSequentialScript);
  EXPECT_FALSE(result.already_ported);
  EXPECT_TRUE(HasEdit(result, Edit::Kind::kInsertInit));
  EXPECT_TRUE(HasEdit(result, Edit::Kind::kBroadcastParams));
  EXPECT_TRUE(HasEdit(result, Edit::Kind::kShardDataLoader));
  EXPECT_TRUE(HasEdit(result, Edit::Kind::kWrapOptimizer));
  EXPECT_TRUE(HasEdit(result, Edit::Kind::kScaleLearningRate));
  EXPECT_TRUE(HasEdit(result, Edit::Kind::kGuardCheckpoint));
}

TEST(SequentialPortTest, GeneratedSourceHasExpectedLines) {
  const auto result = PortSequentialScript(kSequentialScript);
  const std::string& s = result.source;
  EXPECT_NE(s.find("import perseus.torch as perseus"), std::string::npos);
  EXPECT_NE(s.find("perseus.init()"), std::string::npos);
  EXPECT_NE(s.find("perseus.broadcast_parameters(model.state_dict(), "
                   "root_rank=0)"),
            std::string::npos);
  EXPECT_NE(s.find("sampler=perseus.DistributedSampler(train_dataset"),
            std::string::npos);
  EXPECT_NE(s.find("optimizer = perseus.DistributedOptimizer(optimizer)"),
            std::string::npos);
  EXPECT_NE(s.find("lr=0.1 * perseus.size()"), std::string::npos);
  EXPECT_NE(s.find("if perseus.rank() == 0:"), std::string::npos);
}

TEST(SequentialPortTest, InitInsertedAfterImports) {
  const auto result = PortSequentialScript(kSequentialScript);
  const std::size_t init = result.source.find("perseus.init()");
  const std::size_t model = result.source.find("model = ResNet50()");
  ASSERT_NE(init, std::string::npos);
  ASSERT_NE(model, std::string::npos);
  EXPECT_LT(init, model);
}

TEST(SequentialPortTest, CheckpointGuardPreservesIndentation) {
  const auto result = PortSequentialScript(kSequentialScript);
  // The save was indented by 4 inside the epoch loop; the guard must keep
  // that indentation and nest the save one level deeper.
  EXPECT_NE(result.source.find("    if perseus.rank() == 0:\n"
                               "        torch.save("),
            std::string::npos);
}

TEST(SequentialPortTest, Idempotent) {
  const auto once = PortSequentialScript(kSequentialScript);
  const auto twice = PortSequentialScript(once.source);
  EXPECT_TRUE(twice.already_ported);
  EXPECT_EQ(twice.source, once.source);
}

TEST(SequentialPortTest, NonLiteralLearningRateLeftAlone) {
  const std::string script =
      "import torch\n"
      "optimizer = torch.optim.SGD(model.parameters(), lr=args.lr)\n";
  const auto result = PortSequentialScript(script);
  EXPECT_FALSE(HasEdit(result, Edit::Kind::kScaleLearningRate));
  EXPECT_TRUE(HasEdit(result, Edit::Kind::kWrapOptimizer));
  EXPECT_EQ(result.source.find("args.lr * perseus.size()"),
            std::string::npos);
}

TEST(SequentialPortTest, ExistingSamplerNotDuplicated) {
  const std::string script =
      "import torch\n"
      "loader = DataLoader(ds, sampler=my_sampler)\n";
  const auto result = PortSequentialScript(script);
  EXPECT_FALSE(HasEdit(result, Edit::Kind::kShardDataLoader));
}

TEST(SequentialPortTest, OnlyFirstOptimizerWrapped) {
  const std::string script =
      "import torch\n"
      "optimizer = torch.optim.SGD(p, lr=0.1)\n"
      "optimizer = torch.optim.Adam(p, lr=0.001)\n";
  const auto result = PortSequentialScript(script);
  int wraps = 0;
  for (const Edit& e : result.edits) {
    if (e.kind == Edit::Kind::kWrapOptimizer) ++wraps;
  }
  EXPECT_EQ(wraps, 1);
}

TEST(SequentialPortTest, EditKindsHaveNames) {
  for (int k = 0; k <= static_cast<int>(Edit::Kind::kGuardCheckpoint); ++k) {
    EXPECT_NE(ToString(static_cast<Edit::Kind>(k)), "?");
  }
}

}  // namespace
}  // namespace aiacc::porting
