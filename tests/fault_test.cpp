// Fault-injection and failure-recovery tests.
//
// Layer by layer: the seeded FaultyTransport decorator (deterministic
// schedules, lossless perturbations, drops, crashes, stragglers), heartbeat
// failure detection in ThreadedAiaccEngine, and finally the chaos matrix —
// a grid of seeded fault schedules driven through end-to-end MLP training
// with checkpoint/restore recovery, asserting exact-or-non-OK semantics and
// bounded wall-clock (the test binary's ctest TIMEOUT is the bound).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/threaded_engine.h"
#include "dnn/mlp.h"
#include "trainer/recovery.h"
#include "transport/faulty.h"
#include "transport/inproc.h"

namespace aiacc::transport {
namespace {

// ------------------------------------------------ FaultyTransport unit ---

TEST(FaultyTransportTest, NoFaultsIsTransparent) {
  InProcTransport inner(2);
  FaultyTransport tr(inner, FaultSpec{});
  tr.Send(0, 1, 5, {1.0f, 2.0f});
  auto p = tr.Recv(1, 0, 5);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, (Payload{1.0f, 2.0f}));
  const FaultStats s = tr.stats();
  EXPECT_EQ(s.dropped + s.duplicated + s.reordered + s.delayed + s.blackholed,
            0u);
}

TEST(FaultyTransportTest, SameSeedSameSchedule) {
  FaultSpec spec;
  spec.seed = 99;
  spec.all_links.drop_prob = 0.2;
  spec.all_links.dup_prob = 0.2;
  spec.all_links.reorder_prob = 0.2;
  auto run = [&] {
    InProcTransport inner(2);
    FaultyTransport tr(inner, spec);
    for (int i = 0; i < 300; ++i) {
      tr.Send(0, 1, 0, {static_cast<float>(i)});
    }
    return tr.stats();
  };
  const FaultStats a = run();
  const FaultStats b = run();
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.reordered, b.reordered);
  EXPECT_GT(a.dropped, 0u);
  EXPECT_GT(a.duplicated, 0u);
  EXPECT_GT(a.reordered, 0u);
}

TEST(FaultyTransportTest, LosslessFaultsDeliverExactStream) {
  // Duplication + reordering + delay but no drops: the strict receiver must
  // reassemble the exact sent stream.
  FaultSpec spec;
  spec.seed = 7;
  spec.all_links.dup_prob = 0.3;
  spec.all_links.reorder_prob = 0.3;
  spec.all_links.delay_prob = 0.2;
  spec.all_links.max_delay_ms = 1.0;
  InProcTransport inner(2);
  FaultyTransport tr(inner, spec);
  constexpr int kMessages = 200;
  std::thread sender([&] {
    for (int i = 0; i < kMessages; ++i) {
      tr.Send(0, 1, 3, {static_cast<float>(i)});
    }
  });
  for (int i = 0; i < kMessages; ++i) {
    auto p = tr.RecvFor(1, 0, 3, std::chrono::milliseconds(5000));
    ASSERT_TRUE(p.ok()) << "message " << i << ": " << p.status().message();
    ASSERT_EQ((*p)[0], static_cast<float>(i)) << "stream corrupted at " << i;
  }
  sender.join();
  const FaultStats s = tr.stats();
  EXPECT_GT(s.duplicated, 0u);
  EXPECT_GT(s.reordered, 0u);
  EXPECT_GT(s.delayed, 0u);
  EXPECT_EQ(s.dropped, 0u);
}

TEST(FaultyTransportTest, DropMakesStrictReceiverTimeOut) {
  FaultSpec spec;
  spec.seed = 3;
  spec.all_links.drop_prob = 1.0;
  InProcTransport inner(2);
  FaultyTransport tr(inner, spec);
  tr.Send(0, 1, 0, {1.0f});
  auto p = tr.RecvFor(1, 0, 0, std::chrono::milliseconds(30));
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(tr.stats().dropped, 1u);
}

TEST(FaultyTransportTest, TryRecvSkipsGapsLikeADatagram) {
  FaultSpec spec;
  spec.seed = 17;
  spec.all_links.drop_prob = 0.5;
  InProcTransport inner(2);
  FaultyTransport tr(inner, spec);
  constexpr int kMessages = 40;
  for (int i = 0; i < kMessages; ++i) {
    tr.Send(0, 1, 0, {static_cast<float>(i)});
  }
  const FaultStats s = tr.stats();
  ASSERT_GT(s.dropped, 0u);
  ASSERT_LT(s.dropped, static_cast<std::uint64_t>(kMessages));
  float last = -1.0f;
  int delivered = 0;
  while (auto p = tr.TryRecv(1, 0, 0)) {
    EXPECT_GT((*p)[0], last) << "datagram delivery went backwards";
    last = (*p)[0];
    ++delivered;
  }
  EXPECT_EQ(delivered,
            kMessages - static_cast<int>(s.dropped));
}

TEST(FaultyTransportTest, CrashBlackholesBothDirections) {
  InProcTransport inner(3);
  FaultyTransport tr(inner, FaultSpec{});
  tr.CrashRank(1);
  EXPECT_TRUE(tr.IsCrashed(1));
  EXPECT_FALSE(tr.IsCrashed(0));
  tr.Send(0, 1, 0, {1.0f});  // into the crashed rank
  tr.Send(1, 0, 0, {2.0f});  // out of the crashed rank
  tr.Send(0, 2, 0, {3.0f});  // healthy pair still works
  EXPECT_FALSE(tr.TryRecv(1, 0, 0).has_value());
  EXPECT_FALSE(tr.TryRecv(0, 1, 0).has_value());
  auto p = tr.Recv(2, 0, 0);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)[0], 3.0f);
  EXPECT_EQ(tr.stats().blackholed, 2u);
}

TEST(FaultyTransportTest, ScheduledCrashFiresAfterSendBudget) {
  FaultSpec spec;
  spec.crash_rank = 0;
  spec.crash_after_sends = 3;
  InProcTransport inner(2);
  FaultyTransport tr(inner, spec);
  for (int i = 0; i < 6; ++i) {
    tr.Send(0, 1, 0, {static_cast<float>(i)});
  }
  EXPECT_TRUE(tr.IsCrashed(0));
  int delivered = 0;
  while (tr.TryRecv(1, 0, 0).has_value()) ++delivered;
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(tr.stats().blackholed, 3u);
}

TEST(FaultyTransportTest, StragglerSlowsItsSends) {
  FaultSpec spec;
  spec.straggler_rank = 0;
  spec.straggler_delay_ms = 30.0;
  InProcTransport inner(2);
  FaultyTransport tr(inner, spec);
  const auto t0 = std::chrono::steady_clock::now();
  tr.Send(0, 1, 0, {1.0f});
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
  EXPECT_GE(tr.stats().delayed, 1u);
  // The other direction is unaffected.
  const auto t1 = std::chrono::steady_clock::now();
  tr.Send(1, 0, 0, {2.0f});
  EXPECT_LT(std::chrono::steady_clock::now() - t1,
            std::chrono::milliseconds(20));
}

}  // namespace
}  // namespace aiacc::transport

namespace aiacc::core {
namespace {

// ------------------------------------------- engine failure detection ----

TEST(FailureDetectionTest, HeartbeatDetectsCrashedRank) {
  const int world = 3;
  CommConfig config;
  config.num_streams = 2;
  config.granularity_bytes = 256;
  FailureConfig failure;
  failure.detect_failures = true;
  failure.heartbeat_interval_ms = 2.0;
  failure.heartbeat_timeout_ms = 600.0;
  failure.faults = transport::FaultSpec{};  // injector on, no faults yet
  ThreadedAiaccEngine engine(world, config, failure);

  std::vector<std::thread> threads;
  std::vector<Status> last(world, Status::Ok());
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      auto& worker = engine.worker(r);
      std::vector<float> grad(64, static_cast<float>(r));
      ASSERT_TRUE(worker.Register("g", grad).ok());
      worker.Finalize();
      for (int iter = 0; iter < 1'000'000; ++iter) {
        worker.PushAll();
        const Status st = worker.WaitIteration();
        if (!st.ok()) {
          last[static_cast<std::size_t>(r)] = st;
          return;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.fault_injector()->CrashRank(1);
  for (auto& t : threads) t.join();

  EXPECT_TRUE(engine.aborted());
  EXPECT_FALSE(engine.health().ok());
  for (int r = 0; r < world; ++r) {
    EXPECT_FALSE(last[static_cast<std::size_t>(r)].ok())
        << "rank " << r << " never saw the failure";
  }
  EXPECT_EQ(engine.SuspectedRanks(), (std::vector<int>{1}));
  engine.Shutdown();
}

TEST(FailureDetectionTest, CollectiveDeadlineAbortsWithoutHeartbeats) {
  // Heartbeats off; the per-message collective deadline alone must turn a
  // blackholed peer into an abort instead of a hang.
  const int world = 2;
  CommConfig config;
  config.num_streams = 1;
  config.granularity_bytes = 1 << 20;
  FailureConfig failure;
  failure.collective_timeout_ms = 100;
  transport::FaultSpec faults;
  faults.crash_rank = 1;
  faults.crash_after_sends = 0;  // dead on arrival
  failure.faults = faults;
  ThreadedAiaccEngine engine(world, config, failure);

  std::vector<std::thread> threads;
  std::vector<Status> last(world, Status::Ok());
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      auto& worker = engine.worker(r);
      std::vector<float> grad(16, 1.0f);
      ASSERT_TRUE(worker.Register("g", grad).ok());
      worker.Finalize();
      worker.PushAll();
      last[static_cast<std::size_t>(r)] = worker.WaitIteration();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(engine.aborted());
  for (int r = 0; r < world; ++r) {
    EXPECT_FALSE(last[static_cast<std::size_t>(r)].ok());
  }
  engine.Shutdown();
}

TEST(FailureDetectionTest, HealthyRunStaysHealthyWithDetectionOn) {
  const int world = 2;
  CommConfig config;
  config.num_streams = 2;
  config.granularity_bytes = 128;
  FailureConfig failure;
  failure.detect_failures = true;
  failure.heartbeat_interval_ms = 2.0;
  failure.heartbeat_timeout_ms = 500.0;
  ThreadedAiaccEngine engine(world, config, failure);

  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      auto& worker = engine.worker(r);
      std::vector<float> grad(64, static_cast<float>(r + 1));
      ASSERT_TRUE(worker.Register("g", grad).ok());
      worker.Finalize();
      for (int iter = 0; iter < 20; ++iter) {
        std::fill(grad.begin(), grad.end(), static_cast<float>(r + 1));
        worker.PushAll();
        ASSERT_TRUE(worker.WaitIteration().ok());
        // kAvg over ranks 1 and 2.
        EXPECT_FLOAT_EQ(grad[0], 1.5f);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(engine.aborted());
  EXPECT_TRUE(engine.health().ok());
  engine.Shutdown();
}

}  // namespace
}  // namespace aiacc::core

namespace aiacc::trainer {
namespace {

// ------------------------------------------------------- chaos matrix ----

RecoverySpec BaseSpec() {
  RecoverySpec spec;
  spec.layer_sizes = {6, 12, 2};
  spec.model_seed = 42;
  spec.num_samples = 24;  // divisible by 4 and by 3 (post-crash world)
  spec.data_seed = 7;
  spec.world_size = 4;
  spec.total_iterations = 30;
  spec.learning_rate = 0.1f;
  spec.comm.num_streams = 2;
  spec.comm.granularity_bytes = 128;
  spec.checkpoint_interval = 2;
  return spec;
}

void ExpectParamsNear(const std::vector<std::vector<float>>& got,
                      const std::vector<std::vector<float>>& want,
                      float tol) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t t = 0; t < got.size(); ++t) {
    ASSERT_EQ(got[t].size(), want[t].size());
    for (std::size_t i = 0; i < got[t].size(); ++i) {
      ASSERT_NEAR(got[t][i], want[t][i], tol)
          << "tensor " << t << " element " << i;
    }
  }
}

std::vector<std::vector<float>> FaultFreeBaseline() {
  const RecoveryReport clean = TrainWithRecovery(BaseSpec());
  EXPECT_TRUE(clean.final_status.ok()) << clean.final_status.message();
  EXPECT_EQ(clean.recoveries, 0);
  return clean.final_parameters;
}

TEST(ChaosMatrixTest, LosslessSchedulesMatchFaultFreeExactly) {
  const auto baseline = FaultFreeBaseline();
  // Delay-only and dup+reorder schedules across several seeds: training
  // must complete bit-identically to the fault-free run (the reliability
  // layer hides every perturbation).
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    for (const bool with_reorder : {false, true}) {
      RecoverySpec spec = BaseSpec();
      transport::FaultSpec faults;
      faults.seed = seed;
      faults.all_links.delay_prob = 0.05;
      faults.all_links.max_delay_ms = 2.0;
      if (with_reorder) {
        faults.all_links.dup_prob = 0.05;
        faults.all_links.reorder_prob = 0.05;
      }
      spec.failure.faults = faults;
      const RecoveryReport report = TrainWithRecovery(spec);
      ASSERT_TRUE(report.final_status.ok())
          << "seed " << seed << ": " << report.final_status.message();
      EXPECT_EQ(report.recoveries, 0);
      ExpectParamsNear(report.final_parameters, baseline, 0.0f);
    }
  }
}

TEST(ChaosMatrixTest, DropSchedulesFailCleanlyOrMatchExactly) {
  const auto baseline = FaultFreeBaseline();
  // Message loss with a collective deadline: a dropped message makes the
  // strict receiver miss its deadline — the run must either complete
  // exactly (nothing essential was dropped) or return non-OK in bounded
  // time. No hangs, no silent corruption.
  for (const std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    RecoverySpec spec = BaseSpec();
    transport::FaultSpec faults;
    faults.seed = seed;
    faults.all_links.drop_prob = 0.01;
    spec.failure.faults = faults;
    spec.failure.collective_timeout_ms = 200;
    spec.max_recoveries = 0;  // no rank died, nothing to evict
    const RecoveryReport report = TrainWithRecovery(spec);
    if (report.final_status.ok()) {
      ExpectParamsNear(report.final_parameters, baseline, 0.0f);
    } else {
      EXPECT_TRUE(report.final_status.code() ==
                      StatusCode::kDeadlineExceeded ||
                  report.final_status.code() == StatusCode::kUnavailable)
          << report.final_status.message();
    }
  }
}

TEST(ChaosMatrixTest, MidTrainingCrashRecoversViaCheckpoint) {
  const auto baseline = FaultFreeBaseline();
  // A rank dies mid-training (blackholed after a send budget): heartbeats
  // detect it, the engine aborts, the trainer rebuilds over the 3
  // survivors, restores the last checkpoint and replays. Equal shards keep
  // the run on the full-batch trajectory, so the recovered parameters must
  // match fault-free training to float tolerance.
  for (const std::uint64_t send_budget : {150u, 400u}) {
    RecoverySpec spec = BaseSpec();
    transport::FaultSpec faults;
    faults.seed = 31;
    faults.crash_rank = 2;
    faults.crash_after_sends = send_budget;
    spec.failure.faults = faults;
    spec.failure.detect_failures = true;
    spec.failure.heartbeat_interval_ms = 2.0;
    spec.failure.heartbeat_timeout_ms = 600.0;
    const RecoveryReport report = TrainWithRecovery(spec);
    ASSERT_TRUE(report.final_status.ok())
        << "budget " << send_budget << ": " << report.final_status.message();
    EXPECT_EQ(report.recoveries, 1);
    EXPECT_EQ(report.attempts, 2);
    EXPECT_EQ(report.failed_ranks, (std::vector<int>{2}));
    EXPECT_EQ(report.final_world_size, 3);
    ExpectParamsNear(report.final_parameters, baseline, 5e-3f);
    // The timeline tells the whole recovery story.
    ASSERT_GE(report.timeline.size(), 4u);
    EXPECT_NE(report.timeline[1].find("ABORTED"), std::string::npos);
  }
}

TEST(ChaosMatrixTest, CrashBeyondRecoveryBudgetGivesUpCleanly) {
  RecoverySpec spec = BaseSpec();
  transport::FaultSpec faults;
  faults.seed = 41;
  faults.crash_rank = 1;
  faults.crash_after_sends = 300;
  spec.failure.faults = faults;
  spec.failure.detect_failures = true;
  spec.failure.heartbeat_interval_ms = 2.0;
  spec.failure.heartbeat_timeout_ms = 600.0;
  spec.max_recoveries = 0;
  const RecoveryReport report = TrainWithRecovery(spec);
  EXPECT_FALSE(report.final_status.ok());
  EXPECT_EQ(report.recoveries, 1);  // attempted, then over budget
  EXPECT_TRUE(report.final_parameters.empty());
}

}  // namespace
}  // namespace aiacc::trainer
