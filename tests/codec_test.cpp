// Gradient-compression codec tests: exhaustive fp16/bf16 scalar roundtrips
// (NaN/Inf/denormal-safe), cast wire packing at odd lengths, 1-bit and
// top-k wire-format units including malformed-record rejection, the
// error-feedback residual property, a ring bit-exactness matrix over
// codec x op x world x odd lengths x pipeline depth x channels, the
// chaos/reliable-transport composition, steady-state allocation checks,
// codec-aware unit packing, the CommConfig codec axis + tuning-cache v3
// round-trip, the per-tensor codec bandit, and end-to-end MLP training
// parity through the threaded engine under every codec family.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "autotune/tuning_cache.h"
#include "collective/threaded.h"
#include "common/buffer_pool.h"
#include "common/rng.h"
#include "compress/codec.h"
#include "compress/scalar.h"
#include "compress/tuner.h"
#include "core/config.h"
#include "core/packing.h"
#include "core/threaded_engine.h"
#include "dnn/mlp.h"
#include "dnn/zoo.h"
#include "transport/faulty.h"
#include "transport/inproc.h"
#include "transport/reliable.h"

namespace aiacc {
namespace {

using compress::CodecKind;
using compress::CodecSpec;

bool IsNanHalf(std::uint16_t h) {
  return (h & 0x7C00u) == 0x7C00u && (h & 0x03FFu) != 0;
}
bool IsNanBf16(std::uint16_t b) {
  return (b & 0x7F80u) == 0x7F80u && (b & 0x007Fu) != 0;
}

// ------------------------------------------------------- scalar casts ----

// half -> float -> half is the identity for every non-NaN pattern
// (float32 represents every half exactly); NaN patterns must stay NaN with
// the sign preserved (the payload may be canonicalized).
TEST(ScalarCastTest, Fp16ExhaustiveRoundtrip) {
  for (std::uint32_t h = 0; h <= 0xFFFFu; ++h) {
    const auto half = static_cast<std::uint16_t>(h);
    const float f = compress::HalfToFloat(half);
    const std::uint16_t back = compress::FloatToHalf(f);
    if (IsNanHalf(half)) {
      EXPECT_TRUE(std::isnan(f)) << "half 0x" << std::hex << h;
      EXPECT_TRUE(IsNanHalf(back)) << "half 0x" << std::hex << h;
      EXPECT_EQ(back & 0x8000u, half & 0x8000u) << "half 0x" << std::hex << h;
    } else {
      EXPECT_EQ(back, half) << "half 0x" << std::hex << h;
    }
  }
}

TEST(ScalarCastTest, Bf16ExhaustiveRoundtrip) {
  for (std::uint32_t b = 0; b <= 0xFFFFu; ++b) {
    const auto bf = static_cast<std::uint16_t>(b);
    const float f = compress::Bf16ToFloat(bf);
    const std::uint16_t back = compress::FloatToBf16(f);
    if (IsNanBf16(bf)) {
      EXPECT_TRUE(std::isnan(f)) << "bf16 0x" << std::hex << b;
      EXPECT_TRUE(IsNanBf16(back)) << "bf16 0x" << std::hex << b;
      EXPECT_EQ(back & 0x8000u, bf & 0x8000u) << "bf16 0x" << std::hex << b;
    } else {
      EXPECT_EQ(back, bf) << "bf16 0x" << std::hex << b;
    }
  }
}

TEST(ScalarCastTest, Fp16DirectedValues) {
  // Signed zero survives.
  EXPECT_EQ(compress::FloatToHalf(0.0f), 0x0000u);
  EXPECT_EQ(compress::FloatToHalf(-0.0f), 0x8000u);
  // Infinities survive; overflow saturates to infinity.
  EXPECT_EQ(compress::FloatToHalf(INFINITY), 0x7C00u);
  EXPECT_EQ(compress::FloatToHalf(-INFINITY), 0xFC00u);
  EXPECT_EQ(compress::FloatToHalf(65536.0f), 0x7C00u);
  EXPECT_EQ(compress::FloatToHalf(1e30f), 0x7C00u);
  // Largest finite half.
  EXPECT_EQ(compress::FloatToHalf(65504.0f), 0x7BFFu);
  // Subnormal halves roundtrip through float exactly (exhaustive test
  // covers them all; spot-check the smallest).
  EXPECT_EQ(compress::FloatToHalf(compress::HalfToFloat(0x0001u)), 0x0001u);
  // NaN stays NaN (payload may change, never becomes a number).
  EXPECT_TRUE(IsNanHalf(compress::FloatToHalf(std::nanf(""))));
}

TEST(ScalarCastTest, Bf16RoundsToNearestEven) {
  // upper even, round bit set, sticky clear -> ties to even (down).
  EXPECT_EQ(compress::FloatToBf16(std::bit_cast<float>(0x3F808000u)),
            0x3F80u);
  // upper odd, round bit set, sticky clear -> ties to even (up).
  EXPECT_EQ(compress::FloatToBf16(std::bit_cast<float>(0x3F818000u)),
            0x3F82u);
  // round bit set, sticky set -> always up.
  EXPECT_EQ(compress::FloatToBf16(std::bit_cast<float>(0x3F808001u)),
            0x3F81u);
  // round bit clear -> truncate.
  EXPECT_EQ(compress::FloatToBf16(std::bit_cast<float>(0x3F807FFFu)),
            0x3F80u);
  // Signed zero and infinities.
  EXPECT_EQ(compress::FloatToBf16(-0.0f), 0x8000u);
  EXPECT_EQ(compress::FloatToBf16(INFINITY), 0x7F80u);
  EXPECT_TRUE(IsNanBf16(compress::FloatToBf16(std::nanf(""))));
}

// ---------------------------------------------------- cast wire format ----

TEST(CastWireTest, RoundtripAtOddLengths) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{7}, std::size_t{8},
                              std::size_t{1023}}) {
    std::vector<float> src(n);
    Rng rng(static_cast<std::uint64_t>(n));
    for (float& x : src) x = static_cast<float>(rng.Uniform(-4.0, 4.0));
    for (const CodecKind kind : {CodecKind::kFp16, CodecKind::kBf16}) {
      std::vector<float> wire(compress::CastWireFloats(n), -1.0f);
      std::vector<float> out(n, -99.0f);
      compress::CastEncode(kind, src, wire);
      compress::CastDecode(kind, wire, out, n);
      for (std::size_t i = 0; i < n; ++i) {
        const float want =
            kind == CodecKind::kFp16
                ? compress::HalfToFloat(compress::FloatToHalf(src[i]))
                : compress::Bf16ToFloat(compress::FloatToBf16(src[i]));
        EXPECT_EQ(out[i], want) << "kind=" << static_cast<int>(kind)
                                << " n=" << n << " i=" << i;
      }
    }
  }
}

// ------------------------------------------------- sparse wire formats ----

TEST(SparseWireTest, OneBitEncodeDecode) {
  common::BufferPool pool;
  const std::vector<float> src = {2.0f, -1.0f, 0.0f, 4.0f, -3.0f};
  const CodecSpec spec{CodecKind::kOneBit};
  std::vector<float> wire(compress::MaxWireFloats(spec, src.size()));
  const std::size_t wn = compress::SparseEncode(spec, src, wire, pool);
  // Header (2) + one mask word for 5 elements.
  ASSERT_EQ(wn, 3u);
  const float pos_mean = wire[0];  // mean of {2, 4}
  const float neg_mean = wire[1];  // mean of {-1, 0, -3}
  EXPECT_FLOAT_EQ(pos_mean, 3.0f);
  EXPECT_FLOAT_EQ(neg_mean, -4.0f / 3.0f);
  std::vector<float> out(src.size(), 0.0f);
  ASSERT_TRUE(compress::SparseDecodeAccumulate(
                  spec, std::span<const float>(wire.data(), wn), out)
                  .ok());
  EXPECT_FLOAT_EQ(out[0], pos_mean);
  EXPECT_FLOAT_EQ(out[1], neg_mean);
  EXPECT_FLOAT_EQ(out[2], neg_mean);
  EXPECT_FLOAT_EQ(out[3], pos_mean);
  EXPECT_FLOAT_EQ(out[4], neg_mean);
  // Truncated record is rejected without touching dst.
  EXPECT_FALSE(compress::SparseDecodeAccumulate(
                   spec, std::span<const float>(wire.data(), wn - 1), out)
                   .ok());
}

TEST(SparseWireTest, TopKEncodeDecode) {
  common::BufferPool pool;
  std::vector<float> src(100, 0.0f);
  src[7] = 5.0f;
  src[42] = -9.0f;
  src[99] = 3.0f;
  const CodecSpec spec{CodecKind::kTopK, 0.03f};  // k = 3
  std::vector<float> wire(compress::MaxWireFloats(spec, src.size()));
  const std::size_t wn = compress::SparseEncode(spec, src, wire, pool);
  ASSERT_EQ(wn, 1u + 2u * 3u);
  EXPECT_EQ(std::bit_cast<std::uint32_t>(wire[0]), 3u);
  // (index, value) pairs in ascending index order.
  EXPECT_EQ(std::bit_cast<std::uint32_t>(wire[1]), 7u);
  EXPECT_FLOAT_EQ(wire[2], 5.0f);
  EXPECT_EQ(std::bit_cast<std::uint32_t>(wire[3]), 42u);
  EXPECT_FLOAT_EQ(wire[4], -9.0f);
  EXPECT_EQ(std::bit_cast<std::uint32_t>(wire[5]), 99u);
  EXPECT_FLOAT_EQ(wire[6], 3.0f);
  std::vector<float> out(src.size(), 0.0f);
  ASSERT_TRUE(compress::SparseDecodeAccumulate(
                  spec, std::span<const float>(wire.data(), wn), out)
                  .ok());
  EXPECT_EQ(out, src);
}

TEST(SparseWireTest, TopKTiesResolveByIndexOrder) {
  common::BufferPool pool;
  std::vector<float> src(10, 1.0f);  // every magnitude ties
  const CodecSpec spec{CodecKind::kTopK, 0.3f};  // k = 3
  std::vector<float> wire(compress::MaxWireFloats(spec, src.size()));
  const std::size_t wn = compress::SparseEncode(spec, src, wire, pool);
  ASSERT_EQ(wn, 7u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(wire[1 + 2 * i]),
              static_cast<std::uint32_t>(i));
  }
}

TEST(SparseWireTest, TopKRejectsMalformedRecords) {
  common::BufferPool pool;
  std::vector<float> src(16, 1.0f);
  const CodecSpec spec{CodecKind::kTopK, 0.25f};  // k = 4
  std::vector<float> wire(compress::MaxWireFloats(spec, src.size()));
  const std::size_t wn = compress::SparseEncode(spec, src, wire, pool);
  std::vector<float> out(src.size(), 0.0f);

  // Length does not match the header's k.
  EXPECT_FALSE(compress::SparseDecodeAccumulate(
                   spec, std::span<const float>(wire.data(), wn - 2), out)
                   .ok());
  // Out-of-range index.
  std::vector<float> bad(wire.begin(), wire.begin() + static_cast<long>(wn));
  bad[1] = std::bit_cast<float>(std::uint32_t{999});
  EXPECT_FALSE(
      compress::SparseDecodeAccumulate(spec, bad, out).ok());
  // Non-ascending (duplicate) index.
  bad.assign(wire.begin(), wire.begin() + static_cast<long>(wn));
  bad[3] = bad[1];
  EXPECT_FALSE(
      compress::SparseDecodeAccumulate(spec, bad, out).ok());
  // k larger than the destination.
  std::vector<float> tiny(2, 0.0f);
  EXPECT_FALSE(compress::SparseDecodeAccumulate(
                   spec, std::span<const float>(wire.data(), wn), tiny)
                   .ok());
  // Empty record.
  EXPECT_FALSE(compress::SparseDecodeAccumulate(
                   spec, std::span<const float>(), out)
                   .ok());
}

TEST(SparseWireTest, TopKCountClamps) {
  EXPECT_EQ(compress::TopKCount(0, 0.01f), 0u);
  EXPECT_EQ(compress::TopKCount(10, 0.0f), 1u);   // floor at 1
  EXPECT_EQ(compress::TopKCount(10, 1.0f), 10u);  // ceiling at n
  EXPECT_EQ(compress::TopKCount(1000, 0.01f), 10u);
}

// ------------------------------------------------------ error feedback ----

// With error feedback, the running average of the decoded (transmitted)
// gradients converges to the true gradient even though every single step is
// heavily quantized — the residual re-injects exactly what was dropped.
TEST(ErrorFeedbackTest, RunningAverageConvergesToTrueGradient) {
  for (const CodecSpec spec :
       {CodecSpec{CodecKind::kOneBit}, CodecSpec{CodecKind::kTopK, 0.05f}}) {
    common::BufferPool pool;
    const std::size_t n = 512;
    std::vector<float> g(n);
    Rng rng(7);
    for (float& x : g) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
    double g_norm = 0.0;
    for (float x : g) g_norm += static_cast<double>(x) * x;
    g_norm = std::sqrt(g_norm);

    std::vector<float> residual(n, 0.0f);
    std::vector<float> compensated(n);
    std::vector<double> sum_decoded(n, 0.0);
    std::vector<float> wire(compress::MaxWireFloats(spec, n));
    auto avg_error_after = [&](int steps, int start) {
      for (int t = start; t < steps; ++t) {
        for (std::size_t i = 0; i < n; ++i) {
          compensated[i] = g[i] + residual[i];
        }
        const std::size_t wn =
            compress::SparseEncode(spec, compensated, wire, pool);
        std::vector<float> decoded(n, 0.0f);
        EXPECT_TRUE(compress::SparseDecodeAccumulate(
                        spec, std::span<const float>(wire.data(), wn),
                        decoded)
                        .ok());
        for (std::size_t i = 0; i < n; ++i) {
          residual[i] = compensated[i] - decoded[i];
          sum_decoded[i] += static_cast<double>(decoded[i]);
        }
      }
      double err = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double d =
            sum_decoded[i] / steps - static_cast<double>(g[i]);
        err += d * d;
      }
      return std::sqrt(err) / g_norm;
    };
    auto residual_norm = [&] {
      double r2 = 0.0;
      for (float r : residual) r2 += static_cast<double>(r) * r;
      return std::sqrt(r2);
    };
    const double early = avg_error_after(5, 0);
    const double late = avg_error_after(100, 5);
    // The residual keeps what every step dropped, so the time-averaged
    // transmitted gradient closes in on the truth.
    EXPECT_LT(late, early * 0.5) << compress::ToString(spec);
    // And the residual saturates rather than growing without bound: after
    // it reaches steady state (top-k revisits every coordinate once per
    // ~n/k steps), another 100 steps barely move its norm.
    const double r_mid = residual_norm();
    avg_error_after(200, 100);
    EXPECT_LT(residual_norm(), 1.25 * r_mid + 1e-3 * g_norm)
        << compress::ToString(spec);
  }
}

// --------------------------------------------------- ring bit-exactness ----

/// All-reduce `data[r]` on every rank over a fresh transport; returns
/// per-rank results.
std::vector<std::vector<float>> RunRing(const CodecSpec& spec, int world,
                                        std::vector<std::vector<float>> data,
                                        collective::ReduceOp op, int depth,
                                        int channels = 1) {
  transport::InProcTransport tr(world);
  common::BufferPool pool;
  std::vector<std::thread> threads;
  std::vector<std::vector<float>> residuals(
      static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      auto& vec = data[static_cast<std::size_t>(r)];
      collective::Comm comm{&tr, r, world, /*tag_base=*/1,
                            /*timeout_ms=*/20000, &pool, depth};
      comm.codec = spec;
      Status st;
      if (compress::IsSparse(spec.kind) && channels == 1) {
        auto& res = residuals[static_cast<std::size_t>(r)];
        res.assign(vec.size(), 0.0f);
        st = collective::CompressedAllReduce(comm, vec, op,
                                             std::span<float>(res));
      } else if (channels > 1) {
        st = collective::MultiChannelAllReduce(comm, vec, op, channels);
      } else {
        st = collective::RingAllReduce(comm, vec, op);
      }
      EXPECT_TRUE(st.ok()) << st.ToString();
    });
  }
  for (auto& t : threads) t.join();
  return data;
}

std::vector<std::vector<float>> MakeRankData(int world, std::size_t len,
                                             std::uint64_t seed) {
  std::vector<std::vector<float>> data(static_cast<std::size_t>(world));
  Rng rng(seed);
  for (auto& v : data) {
    v.resize(len);
    for (float& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return data;
}

// Every codec, odd lengths, several worlds and depths: all replicas must be
// bit-identical, and the cast codecs must stay near the exact average.
TEST(RingCodecMatrixTest, ReplicasBitIdenticalAndCastAccurate) {
  const std::vector<CodecSpec> codecs = {
      CodecSpec{CodecKind::kFp16}, CodecSpec{CodecKind::kBf16},
      CodecSpec{CodecKind::kOneBit}, CodecSpec{CodecKind::kTopK, 0.1f}};
  for (const CodecSpec& spec : codecs) {
    for (const int world : {2, 3, 4}) {
      for (const std::size_t len :
           {std::size_t{1}, std::size_t{5}, std::size_t{63},
            std::size_t{130}}) {
        for (const int depth : {1, 4}) {
          const auto inputs = MakeRankData(
              world, len,
              1000 + static_cast<std::uint64_t>(world) * 10 + len);
          const auto out = RunRing(spec, world, inputs,
                                   collective::ReduceOp::kAvg, depth);
          for (int r = 1; r < world; ++r) {
            ASSERT_EQ(out[static_cast<std::size_t>(r)], out[0])
                << compress::ToString(spec) << " world=" << world
                << " len=" << len << " depth=" << depth << " rank=" << r;
          }
          if (compress::IsCast(spec.kind)) {
            const float tol =
                spec.kind == CodecKind::kFp16 ? 0.01f : 0.08f;
            for (std::size_t i = 0; i < len; ++i) {
              double exact = 0.0;
              for (int r = 0; r < world; ++r) {
                exact += static_cast<double>(
                    inputs[static_cast<std::size_t>(r)][i]);
              }
              exact /= world;
              EXPECT_NEAR(out[0][i], static_cast<float>(exact), tol)
                  << compress::ToString(spec) << " world=" << world
                  << " len=" << len << " depth=" << depth << " i=" << i;
            }
          }
        }
      }
    }
  }
}

// kSum must also hold (the engine retries use it via FinalizeAvg skipping).
TEST(RingCodecMatrixTest, SumOpBitIdentical) {
  const auto inputs = MakeRankData(3, 130, 99);
  for (const CodecSpec spec :
       {CodecSpec{CodecKind::kFp16}, CodecSpec{CodecKind::kTopK, 0.1f}}) {
    const auto out =
        RunRing(spec, 3, inputs, collective::ReduceOp::kSum, 2);
    EXPECT_EQ(out[1], out[0]) << compress::ToString(spec);
    EXPECT_EQ(out[2], out[0]) << compress::ToString(spec);
  }
}

// Top-k with a shared sparse support (<= k per rank's union) is lossless:
// the all-reduce equals the exact average to fp32 rounding.
TEST(RingCodecMatrixTest, TopKLosslessOnSharedSparseSupport) {
  const int world = 4;
  const std::size_t len = 1000;
  std::vector<std::vector<float>> inputs(world);
  Rng rng(5);
  for (int r = 0; r < world; ++r) {
    inputs[static_cast<std::size_t>(r)].assign(len, 0.0f);
  }
  for (std::size_t i = 0; i < len; i += 125) {  // 8 hot rows, k = 10
    for (int r = 0; r < world; ++r) {
      inputs[static_cast<std::size_t>(r)][i] =
          static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
  }
  const auto out = RunRing(CodecSpec{CodecKind::kTopK, 0.01f}, world, inputs,
                           collective::ReduceOp::kAvg, 1);
  for (std::size_t i = 0; i < len; ++i) {
    double exact = 0.0;
    for (int r = 0; r < world; ++r) {
      exact += static_cast<double>(inputs[static_cast<std::size_t>(r)][i]);
    }
    EXPECT_NEAR(out[0][i], static_cast<float>(exact / world), 1e-6f) << i;
  }
}

// Codecs compose with the multi-channel splitter: every channel's sub-ring
// inherits the codec, replicas stay bit-identical.
TEST(RingCodecMatrixTest, MultiChannelComposition) {
  for (const CodecSpec spec :
       {CodecSpec{CodecKind::kFp16}, CodecSpec{CodecKind::kTopK, 0.1f}}) {
    const auto inputs = MakeRankData(3, 4096, 21);
    const auto out = RunRing(spec, 3, inputs, collective::ReduceOp::kAvg,
                             /*depth=*/2, /*channels=*/2);
    EXPECT_EQ(out[1], out[0]) << compress::ToString(spec);
    EXPECT_EQ(out[2], out[0]) << compress::ToString(spec);
  }
}

// Codec wire formats survive the reliable layer over drop/dup/reorder/
// corrupt chaos: the result is bit-identical to a clean-transport run.
TEST(RingCodecMatrixTest, ChaosReliableComposition) {
  const int world = 3;
  const std::size_t len = 1024;
  for (const CodecSpec spec :
       {CodecSpec{CodecKind::kFp16}, CodecSpec{CodecKind::kTopK, 0.05f}}) {
    auto run = [&](transport::Transport& tr) {
      auto data = MakeRankData(world, len, 321);
      common::BufferPool pool;
      std::vector<std::thread> threads;
      for (int r = 0; r < world; ++r) {
        threads.emplace_back([&, r] {
          auto& vec = data[static_cast<std::size_t>(r)];
          collective::Comm comm{&tr, r, world, /*tag_base=*/1,
                                /*timeout_ms=*/20000, &pool, 2};
          comm.codec = spec;
          std::vector<float> res;
          Status st;
          if (compress::IsSparse(spec.kind)) {
            res.assign(len, 0.0f);
            st = collective::CompressedAllReduce(
                comm, vec, collective::ReduceOp::kAvg,
                std::span<float>(res));
          } else {
            st = collective::RingAllReduce(comm, vec,
                                           collective::ReduceOp::kAvg);
          }
          EXPECT_TRUE(st.ok()) << st.ToString();
        });
      }
      for (auto& t : threads) t.join();
      return data;
    };

    transport::InProcTransport clean(world);
    const auto ref = run(clean);

    transport::FaultSpec fault;
    fault.seed = 4242;
    fault.delivery = transport::FaultDelivery::kRaw;
    fault.all_links.drop_prob = 0.03;
    fault.all_links.dup_prob = 0.03;
    fault.all_links.reorder_prob = 0.03;
    fault.all_links.corrupt_prob = 0.01;
    transport::InProcTransport inner(world);
    transport::FaultyTransport faulty(inner, fault);
    transport::ReliableTransport rel(faulty);
    const auto chaotic = run(rel);

    for (int r = 0; r < world; ++r) {
      ASSERT_EQ(chaotic[static_cast<std::size_t>(r)],
                ref[static_cast<std::size_t>(r)])
          << compress::ToString(spec) << " rank=" << r;
    }
  }
}

// After one warmup round, compressed collectives run entirely out of the
// buffer pool: no payload allocations, no pool misses.
TEST(RingCodecMatrixTest, ZeroSteadyStateAllocations) {
  for (const CodecSpec spec :
       {CodecSpec{CodecKind::kFp16}, CodecSpec{CodecKind::kTopK, 0.1f}}) {
    const int world = 2;
    const std::size_t len = 1000;
    transport::InProcTransport tr(world);
    common::BufferPool pool;
    auto round = [&] {
      auto data = MakeRankData(world, len, 77);
      std::vector<std::thread> threads;
      for (int r = 0; r < world; ++r) {
        threads.emplace_back([&, r] {
          collective::Comm comm{&tr, r, world, /*tag_base=*/1,
                                /*timeout_ms=*/20000, &pool, 2};
          comm.codec = spec;
          auto& vec = data[static_cast<std::size_t>(r)];
          std::vector<float> res;
          Status st;
          if (compress::IsSparse(spec.kind)) {
            res.assign(len, 0.0f);
            st = collective::CompressedAllReduce(
                comm, vec, collective::ReduceOp::kAvg,
                std::span<float>(res));
          } else {
            st = collective::RingAllReduce(comm, vec,
                                           collective::ReduceOp::kAvg);
          }
          EXPECT_TRUE(st.ok()) << st.ToString();
        });
      }
      for (auto& t : threads) t.join();
    };
    round();  // warmup populates the pool's size classes
    const std::uint64_t misses0 = pool.stats().misses;
    for (int i = 0; i < 4; ++i) round();
    EXPECT_EQ(pool.stats().misses, misses0) << compress::ToString(spec);
  }
}

// ------------------------------------------------- codec-aware packing ----

TEST(PackingCodecTest, CodecChangeClosesUnit) {
  core::StreamingPacker packer(/*granularity_bytes=*/1024);
  packer.Add(0, 100, CodecSpec{CodecKind::kFp16});
  packer.Add(1, 100, CodecSpec{CodecKind::kTopK, 0.01f});
  packer.Flush();
  ASSERT_EQ(packer.ReadyUnits(), 2u);
  const auto a = packer.PopReadyUnit();
  const auto b = packer.PopReadyUnit();
  EXPECT_EQ(a.codec, (CodecSpec{CodecKind::kFp16}));
  EXPECT_EQ(b.codec, (CodecSpec{CodecKind::kTopK, 0.01f}));
}

TEST(PackingCodecTest, SameCodecStillMerges) {
  core::StreamingPacker packer(1024);
  packer.Add(0, 100, CodecSpec{CodecKind::kFp16});
  packer.Add(1, 100, CodecSpec{CodecKind::kFp16});
  packer.Flush();
  ASSERT_EQ(packer.ReadyUnits(), 1u);
  EXPECT_EQ(packer.PopReadyUnit().segments.size(), 2u);
}

TEST(PackingCodecTest, SplitGradientStampsEveryUnit) {
  core::StreamingPacker packer(1024);
  packer.Add(0, 3000, CodecSpec{CodecKind::kOneBit});
  packer.Flush();
  ASSERT_EQ(packer.ReadyUnits(), 3u);
  while (packer.HasReadyUnit()) {
    EXPECT_EQ(packer.PopReadyUnit().codec, (CodecSpec{CodecKind::kOneBit}));
  }
}

// ------------------------------------------- config axis + cache v3 ----

TEST(ConfigCodecTest, CodecAxisFollowsDepthInFlatIndex) {
  core::CommConfigSpace space;
  const std::size_t base = space.stream_options.size() *
                           space.granularity_options.size() *
                           space.algorithm_options.size() *
                           space.pipeline_depth_options.size();
  EXPECT_EQ(space.NumPoints(), base * space.codec_options.size() *
                                   space.priority_urgent_options.size() *
                                   space.priority_aging_options.size());
  // Indices below the codec-free space size keep their old meaning
  // (codec = kNone and FIFO dispatch, exactly how those configs ran before
  // the newer axes existed), so persisted flat indices stay valid.
  for (const std::size_t i : {std::size_t{0}, base / 2, base - 1}) {
    EXPECT_EQ(space.ConfigAt(i).codec.kind, CodecKind::kNone) << i;
    EXPECT_EQ(space.ConfigAt(i).priority_urgent_fraction,
              space.priority_urgent_options[0])
        << i;
    EXPECT_EQ(space.ConfigAt(i).priority_aging_ms,
              space.priority_aging_options[0])
        << i;
  }
  EXPECT_EQ(space.ConfigAt(base).codec.kind, space.codec_options[1].kind);
  // The priority axes are appended after codec: the first index past the
  // codec-extended space flips urgent_fraction, not any older axis.
  const std::size_t codec_space = base * space.codec_options.size();
  EXPECT_EQ(space.ConfigAt(codec_space).codec.kind, CodecKind::kNone);
  EXPECT_EQ(space.ConfigAt(codec_space).priority_urgent_fraction,
            space.priority_urgent_options[1]);
}

TEST(ConfigCodecTest, CodecForResolvesOverrides) {
  core::CommConfig cfg;
  cfg.codec = CodecSpec{CodecKind::kFp16};
  cfg.codec_overrides.emplace_back("embedding",
                                   CodecSpec{CodecKind::kTopK, 0.02f});
  EXPECT_EQ(cfg.CodecFor("embedding"), (CodecSpec{CodecKind::kTopK, 0.02f}));
  EXPECT_EQ(cfg.CodecFor("conv1"), (CodecSpec{CodecKind::kFp16}));
  EXPECT_NE(cfg.ToString().find("codec=fp16"), std::string::npos);
}

TEST(ConfigCodecTest, TuningCacheV3RoundTripsCodec) {
  autotune::TuningCache cache;
  net::Topology topo{4, 8, net::TransportKind::kTcp};
  core::CommConfig cfg;
  cfg.num_streams = 12;
  cfg.codec = CodecSpec{CodecKind::kTopK, 0.02f};
  cfg.codec_overrides.emplace_back("dense", CodecSpec{CodecKind::kFp16});
  cfg.codec_overrides.emplace_back("emb",
                                   CodecSpec{CodecKind::kTopK, 0.05f});
  cache.Store(dnn::MakeResNet50(), topo, cfg, 42.0);

  autotune::TuningCache restored;
  ASSERT_TRUE(restored.Deserialize(cache.Serialize()).ok());
  auto hit = restored.LookupSimilar(dnn::MakeResNet50(), topo);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, cfg);
}

// ------------------------------------------------- per-tensor bandit ----

TEST(CodecTunerTest, SeparatesDenseFromSparse) {
  compress::PerTensorCodecTuner tuner;
  const std::size_t dense = tuner.RegisterTensor("conv1");
  const std::size_t sparse = tuner.RegisterTensor("embedding");
  EXPECT_EQ(tuner.RegisterTensor("conv1"), dense);  // idempotent
  EXPECT_EQ(tuner.NumTensors(), 2u);

  common::BufferPool pool;
  const std::size_t n = 4096;
  std::vector<float> dense_g(n);
  std::vector<float> sparse_g(n, 0.0f);
  Rng rng(13);
  for (float& x : dense_g) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (std::size_t i = 0; i < n; i += 128) {  // 0.8% hot
    sparse_g[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }

  auto observe = [&](std::size_t id, std::span<const float> g) {
    const CodecSpec pick = tuner.Choose(id);
    std::size_t wire = g.size();
    double err = 0.0;
    if (pick.kind != CodecKind::kNone) {
      std::vector<float> w(compress::MaxWireFloats(pick, g.size()));
      std::vector<float> d(g.size(), 0.0f);
      if (compress::IsCast(pick.kind)) {
        wire = compress::CastWireFloats(g.size());
        compress::CastEncode(pick.kind, g, w);
        compress::CastDecode(pick.kind, w, d, g.size());
      } else {
        wire = compress::SparseEncode(pick, g, w, pool);
        ASSERT_TRUE(compress::SparseDecodeAccumulate(
                        pick, std::span<const float>(w.data(), wire), d)
                        .ok());
      }
      double e2 = 0.0;
      double r2 = 0.0;
      for (std::size_t i = 0; i < g.size(); ++i) {
        const double diff =
            static_cast<double>(d[i]) - static_cast<double>(g[i]);
        e2 += diff * diff;
        r2 += static_cast<double>(g[i]) * static_cast<double>(g[i]);
      }
      err = r2 > 0 ? std::sqrt(e2 / r2) : 0.0;
    }
    tuner.Observe(id, wire, g.size(), err);
  };
  const int rounds = 40;
  for (int t = 0; t < rounds; ++t) {
    observe(dense, dense_g);
    observe(sparse, sparse_g);
  }
  EXPECT_EQ(tuner.Plays(dense), static_cast<std::uint64_t>(rounds));
  EXPECT_EQ(tuner.Best(dense).kind, CodecKind::kFp16);
  EXPECT_EQ(tuner.Best(sparse).kind, CodecKind::kTopK);
  EXPECT_EQ(tuner.NameOf(sparse), "embedding");
}

// ------------------------------------------ engine end-to-end parity ----

constexpr int kIn = 6;
constexpr int kOut = 2;

dnn::Mlp TrainSequential(const dnn::SyntheticDataset& ds, int steps,
                         float lr) {
  dnn::Mlp model({kIn, 12, kOut}, 42);
  for (int s = 0; s < steps; ++s) {
    model.Forward(ds.inputs, ds.num_samples);
    model.Backward(ds.inputs, ds.targets, ds.num_samples);
    model.SgdStep(lr);
  }
  return model;
}

std::vector<std::unique_ptr<dnn::Mlp>> TrainDistributed(
    const dnn::SyntheticDataset& ds, int world, int steps, float lr,
    core::CommConfig config) {
  core::ThreadedAiaccEngine engine(world, config);
  const int shard = ds.num_samples / world;
  std::vector<std::unique_ptr<dnn::Mlp>> replicas(
      static_cast<std::size_t>(world));
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      auto& worker = engine.worker(r);
      auto model =
          std::make_unique<dnn::Mlp>(std::vector<int>{kIn, 12, kOut}, 42);
      auto grads = model->GradientTensors();
      for (std::size_t t = 0; t < grads.size(); ++t) {
        char name[32];
        std::snprintf(name, sizeof(name), "grad%03zu", t);
        ASSERT_TRUE(worker.Register(name, grads[t]).ok());
      }
      worker.Finalize();
      std::vector<float> x(ds.inputs.begin() + r * shard * kIn,
                           ds.inputs.begin() + (r + 1) * shard * kIn);
      std::vector<float> y(ds.targets.begin() + r * shard * kOut,
                           ds.targets.begin() + (r + 1) * shard * kOut);
      for (int s = 0; s < steps; ++s) {
        model->Forward(x, shard);
        model->Backward(x, y, shard);
        worker.PushAll();
        ASSERT_TRUE(worker.WaitIteration().ok());
        model->SgdStep(lr);
      }
      replicas[static_cast<std::size_t>(r)] = std::move(model);
    });
  }
  for (auto& t : threads) t.join();
  return replicas;
}

float LossOf(const dnn::Mlp& model, const dnn::SyntheticDataset& ds) {
  // Forward is const-incorrect for caching reasons; evaluate on a copy.
  dnn::Mlp copy = model;
  return dnn::Mlp::MseLoss(copy.Forward(ds.inputs, ds.num_samples),
                           ds.targets);
}

// fp16 wire: replicas stay bit-identical to each other, land near the fp32
// reference, and training matches the reference loss closely.
TEST(EngineCodecTest, Fp16ConvergenceParity) {
  const auto ds = dnn::MakeSyntheticDataset(32, kIn, kOut, 7);
  const dnn::Mlp reference = TrainSequential(ds, 8, 0.2f);
  core::CommConfig config;
  config.num_streams = 2;
  config.granularity_bytes = 256;
  config.codec = CodecSpec{CodecKind::kFp16};
  const auto replicas = TrainDistributed(ds, 4, 8, 0.2f, config);
  for (std::size_t r = 1; r < replicas.size(); ++r) {
    EXPECT_TRUE(replicas[r]->ParametersEqual(*replicas[0], 0.0f))
        << "rank " << r << " diverged";
  }
  EXPECT_TRUE(replicas[0]->ParametersEqual(reference, 0.05f));
  const float ref_loss = LossOf(reference, ds);
  const float got_loss = LossOf(*replicas[0], ds);
  EXPECT_NEAR(got_loss, ref_loss, std::max(0.02f, 0.25f * ref_loss));
}

// Sparse codecs with error feedback: replicas stay bit-identical and the
// loss still goes down substantially (EF makes quantized SGD converge).
TEST(EngineCodecTest, SparseCodecsConvergeWithErrorFeedback) {
  const auto ds = dnn::MakeSyntheticDataset(32, kIn, kOut, 7);
  const float initial_loss =
      LossOf(dnn::Mlp({kIn, 12, kOut}, 42), ds);
  for (const CodecSpec spec :
       {CodecSpec{CodecKind::kOneBit}, CodecSpec{CodecKind::kTopK, 0.25f}}) {
    core::CommConfig config;
    config.num_streams = 2;
    config.granularity_bytes = 256;
    config.codec = spec;
    const auto replicas = TrainDistributed(ds, 4, 30, 0.1f, config);
    for (std::size_t r = 1; r < replicas.size(); ++r) {
      EXPECT_TRUE(replicas[r]->ParametersEqual(*replicas[0], 0.0f))
          << compress::ToString(spec) << " rank " << r << " diverged";
    }
    const float final_loss = LossOf(*replicas[0], ds);
    EXPECT_LT(final_loss, 0.5f * initial_loss) << compress::ToString(spec);
  }
}

// Per-tensor overrides route different units through different codecs in
// the same iteration; determinism across ranks must survive the mix.
TEST(EngineCodecTest, PerTensorOverridesStayDeterministic) {
  const auto ds = dnn::MakeSyntheticDataset(24, kIn, kOut, 11);
  core::CommConfig config;
  config.num_streams = 2;
  config.granularity_bytes = 128;
  config.codec_overrides.emplace_back("grad000",
                                      CodecSpec{CodecKind::kFp16});
  config.codec_overrides.emplace_back("grad001",
                                      CodecSpec{CodecKind::kTopK, 0.5f});
  const auto replicas = TrainDistributed(ds, 4, 6, 0.1f, config);
  for (std::size_t r = 1; r < replicas.size(); ++r) {
    EXPECT_TRUE(replicas[r]->ParametersEqual(*replicas[0], 0.0f))
        << "rank " << r << " diverged";
  }
}

}  // namespace
}  // namespace aiacc
