// IEEE binary16 codec tests: exact values, rounding mode, specials,
// subnormals, property sweep, and the end-to-end fp16-wire training check.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "core/compression.h"
#include "core/perseus.h"
#include "dnn/mlp.h"

namespace aiacc::core {
namespace {

TEST(HalfCodecTest, ExactlyRepresentableValues) {
  // Powers of two, small integers and fractions are exact in binary16.
  for (float v : {0.0f, 1.0f, -1.0f, 2.0f, 0.5f, 0.25f, 1024.0f, -0.375f,
                  65504.0f /* max normal half */}) {
    EXPECT_EQ(HalfToFloat(FloatToHalf(v)), v) << v;
  }
}

TEST(HalfCodecTest, KnownBitPatterns) {
  EXPECT_EQ(FloatToHalf(0.0f), 0x0000);
  EXPECT_EQ(FloatToHalf(-0.0f), 0x8000);
  EXPECT_EQ(FloatToHalf(1.0f), 0x3C00);
  EXPECT_EQ(FloatToHalf(-2.0f), 0xC000);
  EXPECT_EQ(FloatToHalf(65504.0f), 0x7BFF);
  EXPECT_EQ(HalfToFloat(0x3C00), 1.0f);
  EXPECT_EQ(HalfToFloat(0x7C00), std::numeric_limits<float>::infinity());
}

TEST(HalfCodecTest, OverflowBecomesInfinity) {
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(1e6f))));
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(-1e6f))));
  EXPECT_LT(HalfToFloat(FloatToHalf(-1e6f)), 0.0f);
}

TEST(HalfCodecTest, NanAndInfPreserved) {
  EXPECT_TRUE(std::isnan(HalfToFloat(FloatToHalf(std::nanf("")))));
  EXPECT_EQ(HalfToFloat(FloatToHalf(std::numeric_limits<float>::infinity())),
            std::numeric_limits<float>::infinity());
}

TEST(HalfCodecTest, SubnormalsRoundTrip) {
  // Smallest positive subnormal half = 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(HalfToFloat(FloatToHalf(tiny)), tiny);
  // Below half of the smallest subnormal -> flush to zero.
  EXPECT_EQ(HalfToFloat(FloatToHalf(std::ldexp(1.0f, -26))), 0.0f);
  // Largest subnormal half.
  const float big_sub = std::ldexp(1023.0f, -24);
  EXPECT_EQ(HalfToFloat(FloatToHalf(big_sub)), big_sub);
}

TEST(HalfCodecTest, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1 + 2^-10):
  // ties go to even (mantissa ...0), i.e. 1.0.
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(HalfToFloat(FloatToHalf(halfway)), 1.0f);
  // Just above the halfway point rounds up.
  const float above = 1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -13);
  EXPECT_EQ(HalfToFloat(FloatToHalf(above)), 1.0f + std::ldexp(1.0f, -10));
}

TEST(HalfCodecTest, RelativeErrorBoundProperty) {
  Rng rng(99);
  for (int i = 0; i < 100000; ++i) {
    const float v = static_cast<float>(rng.Uniform(-100.0, 100.0));
    const float rt = HalfToFloat(FloatToHalf(v));
    if (std::fabs(v) > 1e-3f) {
      EXPECT_LE(std::fabs(rt - v), std::fabs(v) * kHalfRelativeError * 1.01f)
          << v;
    }
  }
}

TEST(HalfCodecTest, RoundTripIsIdempotent) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const float v = static_cast<float>(rng.Normal(0.0, 10.0));
    const float once = HalfToFloat(FloatToHalf(v));
    const float twice = HalfToFloat(FloatToHalf(once));
    EXPECT_EQ(once, twice);
  }
}

TEST(HalfCodecTest, MonotonicOnSamples) {
  // Quantization must preserve order.
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const float a = static_cast<float>(rng.Uniform(-50.0, 50.0));
    const float b = static_cast<float>(rng.Uniform(-50.0, 50.0));
    const float qa = HalfToFloat(FloatToHalf(a));
    const float qb = HalfToFloat(FloatToHalf(b));
    if (a < b) EXPECT_LE(qa, qb);
  }
}

TEST(HalfCodecTest, BulkEncodeDecode) {
  std::vector<float> values = {1.5f, -2.25f, 0.0f, 100.0f};
  const auto halfs = CompressToHalf(values);
  ASSERT_EQ(halfs.size(), values.size());
  std::vector<float> back(values.size());
  DecompressFromHalf(halfs, back);
  EXPECT_EQ(back, values);  // all exactly representable
}

TEST(Fp16WireTest, DistributedTrainingStillConverges) {
  // End-to-end: data-parallel training with fp16 gradient wire compression
  // must still reduce the loss (quantization noise is tolerable).
  const int world = 4;
  const auto ds = dnn::MakeSyntheticDataset(32, 6, 2, 13);
  const int shard = ds.num_samples / world;
  std::vector<float> final_loss(world, -1.0f);
  perseus::RunRanks(world, [&](perseus::Session& session) {
    dnn::Mlp model({6, 12, 2}, 42);
    const int rank = session.rank();
    std::vector<float> x(ds.inputs.begin() + rank * shard * 6,
                         ds.inputs.begin() + (rank + 1) * shard * 6);
    std::vector<float> y(ds.targets.begin() + rank * shard * 2,
                         ds.targets.begin() + (rank + 1) * shard * 2);
    float first = 0.0f;
    for (int s = 0; s < 60; ++s) {
      auto pred = model.Forward(x, shard);
      if (s == 0) first = dnn::Mlp::MseLoss(pred, y);
      model.Backward(x, y, shard);
      for (auto g : model.GradientTensors()) {
        session.AllReduceFp16(g, /*num_channels=*/2);
      }
      model.SgdStep(0.3f);
    }
    const float last = dnn::Mlp::MseLoss(model.Forward(x, shard), y);
    EXPECT_LT(last, first * 0.5f) << "rank " << rank;
    // Evaluate on the *full* dataset so replicas are comparable: identical
    // parameters must give identical full-data loss.
    final_loss[static_cast<std::size_t>(rank)] = dnn::Mlp::MseLoss(
        model.Forward(ds.inputs, ds.num_samples), ds.targets);
  });
  // All replicas agree (they quantized identically).
  for (int r = 1; r < world; ++r) {
    EXPECT_EQ(final_loss[static_cast<std::size_t>(r)], final_loss[0]);
  }
}

}  // namespace
}  // namespace aiacc::core
