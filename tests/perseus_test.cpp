// Direct tests of the Perseus public API (the Horovod-compatible surface of
// §IV): rank/size, all-reduce ops and channel counts, fp16 all-reduce,
// parameter broadcast, barriers, tag lockstep across mixed operation
// sequences, and NaN-skip behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "common/rng.h"
#include "core/perseus.h"

namespace aiacc::perseus {
namespace {

TEST(PerseusTest, RankAndSize) {
  std::atomic<int> rank_sum{0};
  RunRanks(4, [&](Session& s) {
    EXPECT_EQ(s.size(), 4);
    rank_sum.fetch_add(s.rank());
  });
  EXPECT_EQ(rank_sum.load(), 0 + 1 + 2 + 3);
}

TEST(PerseusTest, AllReduceAveragesByDefault) {
  const int world = 3;
  std::vector<std::vector<float>> data(world);
  RunRanks(world, [&](Session& s) {
    std::vector<float> v = {static_cast<float>(s.rank()),
                            static_cast<float>(s.rank() * 10)};
    s.AllReduce(v);
    data[static_cast<std::size_t>(s.rank())] = v;
  });
  for (int r = 0; r < world; ++r) {
    EXPECT_FLOAT_EQ(data[static_cast<std::size_t>(r)][0], 1.0f);   // (0+1+2)/3
    EXPECT_FLOAT_EQ(data[static_cast<std::size_t>(r)][1], 10.0f);
  }
}

TEST(PerseusTest, AllReduceSumMinMax) {
  const int world = 4;
  std::vector<float> sums(world), mins(world), maxs(world);
  RunRanks(world, [&](Session& s) {
    std::vector<float> a = {static_cast<float>(s.rank() + 1)};
    s.AllReduce(a, 2, collective::ReduceOp::kSum);
    sums[static_cast<std::size_t>(s.rank())] = a[0];
    std::vector<float> b = {static_cast<float>(s.rank() + 1)};
    s.AllReduce(b, 2, collective::ReduceOp::kMin);
    mins[static_cast<std::size_t>(s.rank())] = b[0];
    std::vector<float> c = {static_cast<float>(s.rank() + 1)};
    s.AllReduce(c, 2, collective::ReduceOp::kMax);
    maxs[static_cast<std::size_t>(s.rank())] = c[0];
  });
  for (int r = 0; r < world; ++r) {
    EXPECT_FLOAT_EQ(sums[static_cast<std::size_t>(r)], 10.0f);
    EXPECT_FLOAT_EQ(mins[static_cast<std::size_t>(r)], 1.0f);
    EXPECT_FLOAT_EQ(maxs[static_cast<std::size_t>(r)], 4.0f);
  }
}

TEST(PerseusTest, MixedOperationSequenceStaysInLockstep) {
  // Interleave all-reduces with different channel counts, broadcasts and
  // barriers: tag namespaces must never collide (the regression this guards
  // is cross-operation message mismatch).
  const int world = 4;
  std::vector<float> results(world, 0.0f);
  RunRanks(world, [&](Session& s) {
    Rng rng(5);  // same on all ranks
    float acc = 0.0f;
    for (int round = 0; round < 10; ++round) {
      const int channels = 1 + static_cast<int>(rng.UniformInt(0, 3));
      std::vector<float> v(64, static_cast<float>(s.rank() + round));
      s.AllReduce(v, channels);
      acc += v[0];
      if (round % 3 == 0) {
        std::vector<float> p(16, static_cast<float>(s.rank()));
        std::vector<std::span<float>> params;
        params.emplace_back(p);
        s.BroadcastParameters(params, /*root=*/round % world);
        acc += p[0];  // == root's rank
      }
      if (round % 4 == 0) s.Barrier();
    }
    results[static_cast<std::size_t>(s.rank())] = acc;
  });
  for (int r = 1; r < world; ++r) {
    EXPECT_FLOAT_EQ(results[static_cast<std::size_t>(r)], results[0]);
  }
}

TEST(PerseusTest, Fp16AllReduceQuantizesButAverages) {
  const int world = 2;
  std::vector<std::vector<float>> data(world);
  RunRanks(world, [&](Session& s) {
    // 0.1 is not representable in binary16: expect avg of quantized values.
    std::vector<float> v = {0.1f, 2048.5f};
    s.AllReduceFp16(v);
    data[static_cast<std::size_t>(s.rank())] = v;
  });
  EXPECT_EQ(data[0], data[1]);
  EXPECT_NEAR(data[0][0], 0.1f, 0.1f / 1000.0f);
  EXPECT_NE(data[0][0], 0.1f);           // quantization visible
  EXPECT_FLOAT_EQ(data[0][1], 2048.0f);  // 2048.5 rounds to 2048 in half
}

TEST(PerseusTest, BroadcastParametersMultiTensor) {
  const int world = 3;
  // Not vector<bool>: rank threads write distinct indices concurrently, and
  // bit-packing would make those writes share a word.
  std::vector<char> ok(world, 0);
  RunRanks(world, [&](Session& s) {
    std::vector<float> t0(8, static_cast<float>(s.rank()));
    std::vector<float> t1(3, static_cast<float>(s.rank() * 100));
    std::vector<std::span<float>> params;
    params.emplace_back(t0);
    params.emplace_back(t1);
    s.BroadcastParameters(params, /*root=*/2);
    bool good = true;
    for (float v : t0) good &= v == 2.0f;
    for (float v : t1) good &= v == 200.0f;
    ok[static_cast<std::size_t>(s.rank())] = good;
  });
  for (int r = 0; r < world; ++r) EXPECT_TRUE(ok[static_cast<std::size_t>(r)]);
}

TEST(PerseusTest, NanSkipKeepsRanksAligned) {
  // One tensor has a NaN: aggregation is skipped on every rank (all see the
  // same data) and a subsequent clean all-reduce still works — tags stayed
  // aligned.
  const int world = 2;
  std::vector<float> after(world);
  RunRanks(world, [&](Session& s) {
    std::vector<float> bad = {std::nanf(""), 1.0f};
    std::vector<std::span<float>> grads;
    grads.emplace_back(bad);
    auto report = s.AllReduceGradients(grads);
    EXPECT_FALSE(report.Clean());
    std::vector<float> good = {static_cast<float>(s.rank())};
    s.AllReduce(good);
    after[static_cast<std::size_t>(s.rank())] = good[0];
  });
  EXPECT_FLOAT_EQ(after[0], 0.5f);
  EXPECT_FLOAT_EQ(after[1], 0.5f);
}

TEST(PerseusTest, SingleRankWorld) {
  RunRanks(1, [&](Session& s) {
    std::vector<float> v = {3.0f};
    s.AllReduce(v);
    EXPECT_FLOAT_EQ(v[0], 3.0f);
    s.Barrier();
  });
}

TEST(PerseusTest, LargeTensorManyChannels) {
  const int world = 4;
  const std::size_t len = 100000;
  std::vector<double> checksums(world);
  RunRanks(world, [&](Session& s) {
    Rng rng(static_cast<std::uint64_t>(s.rank()) + 1);
    std::vector<float> v(len);
    for (float& x : v) x = static_cast<float>(rng.Uniform(-1, 1));
    s.AllReduce(v, /*num_channels=*/8);
    double sum = 0.0;
    for (float x : v) sum += x;
    checksums[static_cast<std::size_t>(s.rank())] = sum;
  });
  for (int r = 1; r < world; ++r) {
    EXPECT_DOUBLE_EQ(checksums[static_cast<std::size_t>(r)], checksums[0]);
  }
}

}  // namespace
}  // namespace aiacc::perseus
