// Model-zoo descriptor tests (parameter counts vs Table I, backward
// schedules, profiles) and numeric MLP gradient checks.
#include <gtest/gtest.h>

#include <cmath>

#include "dnn/mlp.h"
#include "dnn/sampler.h"
#include "dnn/model.h"
#include "dnn/zoo.h"
#include "gpu/gpu_model.h"

namespace aiacc::dnn {
namespace {

double Millions(std::int64_t n) { return static_cast<double>(n) / 1e6; }

// Table I parameter counts (paper) with our analytic tolerance. We construct
// the published architectures exactly, so CNNs land within a couple percent
// (BN/bias bookkeeping); see EXPERIMENTS.md for the per-model comparison.
TEST(ZooTest, Vgg16ParametersMatchTable1) {
  const auto m = MakeVgg16();
  EXPECT_NEAR(Millions(m.TotalParameters()), 138.3, 1.5);
}

TEST(ZooTest, ResNet50ParametersMatchTable1) {
  const auto m = MakeResNet50();
  EXPECT_NEAR(Millions(m.TotalParameters()), 25.6, 1.0);
}

TEST(ZooTest, ResNet101ParametersNearReference) {
  // Table I lists 29.4M for ResNet-101; the published architecture has
  // 44.5M. We build the published one and record the discrepancy in
  // EXPERIMENTS.md.
  const auto m = MakeResNet101();
  EXPECT_NEAR(Millions(m.TotalParameters()), 44.5, 2.0);
}

TEST(ZooTest, TransformerParametersMatchTable1) {
  const auto m = MakeTransformerBase();
  EXPECT_NEAR(Millions(m.TotalParameters()), 66.5, 6.0);
}

TEST(ZooTest, BertLargeParametersMatchTable1) {
  const auto m = MakeBertLarge();
  EXPECT_NEAR(Millions(m.TotalParameters()), 302.2, 2.0);
}

TEST(ZooTest, Gpt2XlParametersNearPublished) {
  const auto m = MakeGpt2Xl();
  EXPECT_NEAR(Millions(m.TotalParameters()), 1558.0, 40.0);
}

TEST(ZooTest, Vgg16FlopsMatchTable1) {
  // 31 GFLOPs/image under the 2*MAC convention.
  const auto m = MakeVgg16();
  EXPECT_NEAR(m.FwdFlopsPerSample() / 1e9, 31.0, 2.0);
}

TEST(ZooTest, BertLargeFlopsMatchTable1) {
  const auto m = MakeBertLarge();
  EXPECT_NEAR(m.FwdFlopsPerSample() / 1e9, 232.0, 25.0);
}

TEST(ZooTest, CtrModelHasThousandsOfSmallGradients) {
  const auto m = MakeCtrModel();
  EXPECT_GT(m.NumGradients(), 2000);
  // Median gradient is small (the PS/negotiation-bound profile).
  std::vector<std::size_t> sizes;
  for (const auto& g : m.gradients()) sizes.push_back(g.ByteSize());
  std::sort(sizes.begin(), sizes.end());
  EXPECT_LT(sizes[sizes.size() / 2], 300u << 10);
}

TEST(ZooTest, AllModelsHaveConsistentDescriptors) {
  for (const auto& m : AllZooModels()) {
    SCOPED_TRACE(m.name());
    EXPECT_GT(m.TotalParameters(), 0);
    EXPECT_GT(m.FwdFlopsPerSample(), 0.0);
    EXPECT_EQ(static_cast<int>(m.gradients().size()), m.NumGradients());
    EXPECT_EQ(m.backward_order().size(), m.gradients().size());
    // backward_order is a permutation of gradient ids.
    std::vector<bool> seen(m.gradients().size(), false);
    for (int id : m.backward_order()) {
      ASSERT_GE(id, 0);
      ASSERT_LT(id, m.NumGradients());
      EXPECT_FALSE(seen[static_cast<std::size_t>(id)]);
      seen[static_cast<std::size_t>(id)] = true;
    }
    // Sum of gradient elements equals total parameters.
    std::int64_t total = 0;
    for (const auto& g : m.gradients()) total += g.NumElements();
    EXPECT_EQ(total, m.TotalParameters());
  }
}

TEST(ZooTest, MakeModelByNameRoundTrips) {
  for (const char* name :
       {"vgg16", "resnet50", "resnet101", "transformer", "bert-large",
        "gpt2-xl", "ctr", "insightface-r100"}) {
    EXPECT_EQ(MakeModelByName(name).name(), name);
  }
}

TEST(ModelTest, BackwardOrderIsReverseLayerOrder) {
  const auto m = MakeVgg16();
  // First gradient produced belongs to the last layer.
  const int first = m.backward_order().front();
  EXPECT_EQ(m.gradients()[static_cast<std::size_t>(first)].layer_index,
            static_cast<int>(m.layers().size()) - 1);
  const int last = m.backward_order().back();
  EXPECT_EQ(m.gradients()[static_cast<std::size_t>(last)].layer_index, 0);
}

TEST(ModelTest, ProfileReadyTimesMonotoneInBackwardOrder) {
  const auto m = MakeResNet50();
  gpu::GpuModel gpu;
  const auto profile = m.Profile(gpu, 64);
  EXPECT_GT(profile.forward_time, 0.0);
  EXPECT_NEAR(profile.backward_time, 2.0 * profile.forward_time, 1e-9);
  double prev = 0.0;
  for (int id : m.backward_order()) {
    const double t = profile.ready_time[static_cast<std::size_t>(id)];
    EXPECT_GE(t, prev - 1e-12);
    prev = t;
  }
  // The last gradient is ready exactly at backward end.
  EXPECT_NEAR(prev, profile.backward_time, 1e-9);
}

TEST(ModelTest, ProfileScalesLinearlyWithBatch) {
  const auto m = MakeResNet50();
  gpu::GpuModel gpu;
  const auto p1 = m.Profile(gpu, 32);
  const auto p2 = m.Profile(gpu, 64);
  EXPECT_NEAR(p2.forward_time, 2.0 * p1.forward_time, 1e-9);
}

TEST(ModelTest, GraphFingerprintMatchesLayers) {
  const auto m = MakeResNet50();
  const auto fp = m.GraphFingerprint();
  EXPECT_EQ(fp.size(), m.layers().size());
  EXPECT_EQ(fp.front().kind, LayerKind::kConv);
  EXPECT_EQ(fp.back().kind, LayerKind::kDense);
}

TEST(GpuModelTest, CalibratedResNet50Throughput) {
  // ~360 images/s on a V100 at batch 64 (fwd+bwd = 3x fwd FLOPs).
  const auto m = MakeResNet50();
  gpu::GpuModel gpu;
  const auto profile = m.Profile(gpu, 64);
  const double imgs_per_sec =
      64.0 / (profile.forward_time + profile.backward_time);
  EXPECT_GT(imgs_per_sec, 280.0);
  EXPECT_LT(imgs_per_sec, 480.0);
}

TEST(GpuModelTest, UsableCommStreams) {
  gpu::GpuModel gpu;
  // Idle GPU: plenty of slots. Busy GPU: few. Never below 1.
  EXPECT_GE(gpu.UsableCommStreams(0.0), 24);
  EXPECT_LE(gpu.UsableCommStreams(0.9), 4);
  EXPECT_GE(gpu.UsableCommStreams(1.0), 1);
  EXPECT_GT(gpu.UsableCommStreams(0.5), gpu.UsableCommStreams(0.9));
}

// --------------------------------------------------------------- Sampler ---

TEST(DistributedSamplerTest, DisjointCoverWithoutShuffle) {
  const int n = 20;
  const int world = 4;
  std::vector<bool> seen(n, false);
  for (int r = 0; r < world; ++r) {
    DistributedSampler sampler(n, world, r, 0, /*shuffle=*/false);
    for (int idx : sampler.Indices()) {
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, n);
      EXPECT_FALSE(seen[static_cast<std::size_t>(idx)]);
      seen[static_cast<std::size_t>(idx)] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(DistributedSamplerTest, PadsToEqualSizes) {
  // 10 samples over 4 ranks -> 3 per rank, 2 wrap-around duplicates.
  const int world = 4;
  std::size_t total = 0;
  std::vector<int> count(10, 0);
  for (int r = 0; r < world; ++r) {
    DistributedSampler sampler(10, world, r, 0, /*shuffle=*/false);
    const auto idx = sampler.Indices();
    EXPECT_EQ(static_cast<int>(idx.size()), sampler.SamplesPerRank());
    EXPECT_EQ(idx.size(), 3u);
    total += idx.size();
    for (int i : idx) ++count[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(total, 12u);
  for (int c : count) EXPECT_GE(c, 1);  // everything still covered
}

TEST(DistributedSamplerTest, ShuffleIsEpochSeededAndRankConsistent) {
  DistributedSampler a(100, 4, 0, 7);
  DistributedSampler b(100, 4, 0, 7);
  a.SetEpoch(3);
  b.SetEpoch(3);
  EXPECT_EQ(a.Indices(), b.Indices());
  b.SetEpoch(4);
  EXPECT_NE(a.Indices(), b.Indices());

  // Across ranks, the same epoch's shards are disjoint (same permutation).
  std::vector<bool> seen(100, false);
  for (int r = 0; r < 4; ++r) {
    DistributedSampler s(100, 4, r, 7);
    s.SetEpoch(3);
    for (int idx : s.Indices()) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(idx)]);
      seen[static_cast<std::size_t>(idx)] = true;
    }
  }
}

TEST(DistributedSamplerTest, SingleWorkerSeesEverything) {
  DistributedSampler s(17, 1, 0, 0, /*shuffle=*/true);
  auto idx = s.Indices();
  std::sort(idx.begin(), idx.end());
  for (int i = 0; i < 17; ++i) EXPECT_EQ(idx[static_cast<std::size_t>(i)], i);
}

// ------------------------------------------------------------------- MLP ---

TEST(MlpTest, ForwardShapesAndDeterminism) {
  Mlp a({4, 8, 2}, 7);
  Mlp b({4, 8, 2}, 7);
  std::vector<float> x(4 * 3, 0.5f);
  EXPECT_EQ(a.Forward(x, 3), b.Forward(x, 3));
  EXPECT_EQ(a.Forward(x, 3).size(), 6u);
}

TEST(MlpTest, NumericalGradientCheck) {
  // Central-difference check of dLoss/dParam on a tiny network.
  Mlp mlp({3, 5, 2}, 11);
  auto ds = MakeSyntheticDataset(4, 3, 2, 99);
  mlp.Forward(ds.inputs, 4);
  mlp.Backward(ds.inputs, ds.targets, 4);
  auto params = mlp.ParameterTensors();
  auto grads = mlp.GradientTensors();
  const float eps = 1e-3f;
  for (std::size_t t = 0; t < params.size(); ++t) {
    for (std::size_t i = 0; i < std::min<std::size_t>(params[t].size(), 4);
         ++i) {
      const float saved = params[t][i];
      params[t][i] = saved + eps;
      const float up = Mlp::MseLoss(mlp.Forward(ds.inputs, 4), ds.targets);
      params[t][i] = saved - eps;
      const float down = Mlp::MseLoss(mlp.Forward(ds.inputs, 4), ds.targets);
      params[t][i] = saved;
      const float numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(grads[t][i], numeric, 5e-3)
          << "tensor " << t << " element " << i;
    }
  }
}

TEST(MlpTest, SgdTrainingReducesLoss) {
  Mlp mlp({6, 16, 2}, 3);
  auto ds = MakeSyntheticDataset(64, 6, 2, 5);
  const float initial = Mlp::MseLoss(mlp.Forward(ds.inputs, 64), ds.targets);
  for (int step = 0; step < 200; ++step) {
    mlp.Forward(ds.inputs, 64);
    mlp.Backward(ds.inputs, ds.targets, 64);
    mlp.SgdStep(0.5f);
  }
  const float trained = Mlp::MseLoss(mlp.Forward(ds.inputs, 64), ds.targets);
  EXPECT_LT(trained, initial * 0.3f);
}

TEST(MlpTest, GradientIsAverageOverBatch) {
  // Full-batch gradient equals the average of per-sample gradients — the
  // property data-parallel averaging relies on.
  Mlp mlp({3, 4, 1}, 17);
  auto ds = MakeSyntheticDataset(2, 3, 1, 23);
  mlp.Forward(ds.inputs, 2);
  mlp.Backward(ds.inputs, ds.targets, 2);
  std::vector<std::vector<float>> full;
  for (auto g : mlp.GradientTensors()) full.emplace_back(g.begin(), g.end());

  // Per-sample gradients averaged by hand.
  std::vector<std::vector<float>> avg;
  for (int s = 0; s < 2; ++s) {
    std::vector<float> x(ds.inputs.begin() + s * 3,
                         ds.inputs.begin() + (s + 1) * 3);
    std::vector<float> y(ds.targets.begin() + s, ds.targets.begin() + s + 1);
    Mlp clone({3, 4, 1}, 17);
    clone.Forward(x, 1);
    clone.Backward(x, y, 1);
    auto grads = clone.GradientTensors();
    if (avg.empty()) {
      for (auto g : grads) avg.emplace_back(g.size(), 0.0f);
    }
    for (std::size_t t = 0; t < grads.size(); ++t) {
      for (std::size_t i = 0; i < grads[t].size(); ++i) {
        avg[t][i] += grads[t][i] / 2.0f;
      }
    }
  }
  for (std::size_t t = 0; t < full.size(); ++t) {
    for (std::size_t i = 0; i < full[t].size(); ++i) {
      ASSERT_NEAR(full[t][i], avg[t][i], 1e-5);
    }
  }
}

TEST(MlpTest, ParametersEqualDetectsDifference) {
  Mlp a({3, 4, 1}, 1);
  Mlp b({3, 4, 1}, 1);
  EXPECT_TRUE(a.ParametersEqual(b, 0.0f));
  auto ds = MakeSyntheticDataset(4, 3, 1, 2);
  a.Forward(ds.inputs, 4);
  a.Backward(ds.inputs, ds.targets, 4);
  a.SgdStep(0.1f);
  EXPECT_FALSE(a.ParametersEqual(b, 1e-9f));
}

}  // namespace
}  // namespace aiacc::dnn
