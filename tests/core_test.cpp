// Core-module unit tests: gradient registry, packing planner (merge/split
// round-trips, property sweeps), sync protocols' cost structure, optimizers'
// math, NaN detection, checkpoint round-trips and corruption handling.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/config.h"
#include "core/optimizer.h"
#include "core/packing.h"
#include "core/registry.h"
#include "core/sync.h"
#include "dnn/zoo.h"

namespace aiacc::core {
namespace {

// -------------------------------------------------------------- Registry ---

TEST(RegistryTest, AssignsSortedDenseIds) {
  GradientRegistry reg;
  ASSERT_TRUE(reg.Register("zeta", 100).ok());
  ASSERT_TRUE(reg.Register("alpha", 200).ok());
  ASSERT_TRUE(reg.Register("mid", 300).ok());
  reg.Finalize();
  EXPECT_EQ(reg.size(), 3);
  EXPECT_EQ(reg.Get(0).name, "alpha");
  EXPECT_EQ(reg.Get(1).name, "mid");
  EXPECT_EQ(reg.Get(2).name, "zeta");
  EXPECT_EQ(*reg.IdOf("zeta"), 2);
  EXPECT_EQ(reg.TotalBytes(), 600u);
}

TEST(RegistryTest, RejectsDuplicatesAndZeroSize) {
  GradientRegistry reg;
  ASSERT_TRUE(reg.Register("a", 10).ok());
  EXPECT_EQ(reg.Register("a", 10).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(reg.Register("b", 0).code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, RejectsRegistrationAfterFinalize) {
  GradientRegistry reg;
  ASSERT_TRUE(reg.Register("a", 10).ok());
  reg.Finalize();
  EXPECT_EQ(reg.Register("b", 10).code(), StatusCode::kFailedPrecondition);
}

TEST(RegistryTest, FromModelCoversAllGradients) {
  const auto model = dnn::MakeResNet50();
  const auto reg = GradientRegistry::FromModel(model);
  EXPECT_EQ(reg.size(), model.NumGradients());
  EXPECT_EQ(reg.TotalBytes(), model.TotalParameterBytes());
  EXPECT_EQ(reg.SyncVectorBytes(),
            (static_cast<std::size_t>(model.NumGradients()) + 7) / 8);
}

TEST(RegistryTest, IdOfMissingGradient) {
  GradientRegistry reg;
  ASSERT_TRUE(reg.Register("a", 10).ok());
  reg.Finalize();
  EXPECT_FALSE(reg.IdOf("missing").ok());
}

// --------------------------------------------------------------- Packing ---

GradientRegistry MakeRegistry(const std::vector<std::size_t>& sizes) {
  GradientRegistry reg;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    // Zero-pad names so sorting preserves the input order.
    char name[32];
    std::snprintf(name, sizeof(name), "g%04zu", i);
    EXPECT_TRUE(reg.Register(name, sizes[i]).ok());
  }
  reg.Finalize();
  return reg;
}

TEST(PackingTest, MergesSmallGradients) {
  auto reg = MakeRegistry({100, 100, 100, 100});
  PackingPlanner planner(400);
  auto units = planner.Pack(reg, {0, 1, 2, 3});
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].segments.size(), 4u);
  EXPECT_EQ(units[0].TotalBytes(), 400u);
}

TEST(PackingTest, SplitsLargeGradient) {
  auto reg = MakeRegistry({1000});
  PackingPlanner planner(256);
  auto units = planner.Pack(reg, {0});
  ASSERT_EQ(units.size(), 4u);  // 256+256+256+232
  EXPECT_EQ(units[0].TotalBytes(), 256u);
  EXPECT_EQ(units[3].TotalBytes(), 232u);
  // Offsets are contiguous.
  std::size_t offset = 0;
  for (const auto& u : units) {
    for (const auto& seg : u.segments) {
      EXPECT_EQ(seg.gradient_id, 0);
      EXPECT_EQ(seg.offset, offset);
      offset += seg.length;
    }
  }
  EXPECT_EQ(offset, 1000u);
}

TEST(PackingTest, MixedMergeAndSplit) {
  auto reg = MakeRegistry({50, 500, 60});
  PackingPlanner planner(200);
  auto units = planner.Pack(reg, {0, 1, 2});
  // Every byte exactly once.
  std::vector<std::size_t> covered(3, 0);
  for (const auto& u : units) {
    EXPECT_LE(u.TotalBytes(), 200u);
    for (const auto& seg : u.segments) {
      covered[static_cast<std::size_t>(seg.gradient_id)] += seg.length;
    }
  }
  EXPECT_EQ(covered, (std::vector<std::size_t>{50, 500, 60}));
}

TEST(PackingTest, AlignmentKeepsElementBoundaries) {
  auto reg = MakeRegistry({10, 10});  // not multiples of granularity
  PackingPlanner planner(16);
  auto units = planner.Pack(reg, {0, 1}, /*alignment=*/4);
  for (const auto& u : units) {
    for (const auto& seg : u.segments) {
      EXPECT_EQ(seg.offset % 4, 0u);
      // Interior slices stay aligned; the final slice of a tensor may carry
      // the (element-aligned) remainder.
    }
  }
}

TEST(PackingTest, RespectsReadySubset) {
  auto reg = MakeRegistry({100, 100, 100});
  PackingPlanner planner(1000);
  auto units = planner.Pack(reg, {0, 2});
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].segments.size(), 2u);
  EXPECT_EQ(units[0].segments[0].gradient_id, 0);
  EXPECT_EQ(units[0].segments[1].gradient_id, 2);
}

TEST(PackingTest, UnitIdsAreUniqueAcrossCalls) {
  auto reg = MakeRegistry({100});
  PackingPlanner planner(50);
  auto u1 = planner.Pack(reg, {0});
  auto u2 = planner.Pack(reg, {0});
  std::vector<std::uint64_t> ids;
  for (const auto& u : u1) ids.push_back(u.unit_id);
  for (const auto& u : u2) ids.push_back(u.unit_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

class PackingPropertyP
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(PackingPropertyP, EveryByteExactlyOnceAndOrdered) {
  const auto [n_grads, granularity] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n_grads) * 31 + granularity);
  std::vector<std::size_t> sizes;
  for (int i = 0; i < n_grads; ++i) {
    sizes.push_back(static_cast<std::size_t>(rng.UniformInt(4, 100000)) & ~3u);
  }
  auto reg = MakeRegistry(sizes);
  PackingPlanner planner(granularity);
  std::vector<int> ready(static_cast<std::size_t>(n_grads));
  std::iota(ready.begin(), ready.end(), 0);
  auto units = planner.Pack(reg, ready);

  std::vector<std::size_t> covered(sizes.size(), 0);
  std::size_t total = 0;
  int last_grad = -1;
  for (const auto& u : units) {
    for (const auto& seg : u.segments) {
      // Id order is preserved (workers implicitly agree on order).
      EXPECT_GE(seg.gradient_id, last_grad);
      last_grad = seg.gradient_id;
      covered[static_cast<std::size_t>(seg.gradient_id)] += seg.length;
      total += seg.length;
    }
  }
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(covered[i], sizes[i]);
  }
  EXPECT_EQ(total, reg.TotalBytes());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackingPropertyP,
    ::testing::Combine(::testing::Values(1, 3, 10, 50),
                       ::testing::Values(std::size_t{64}, std::size_t{4096},
                                         std::size_t{1} << 20)));

TEST(StreamingPackerTest, ClosesUnitsExactlyAtGranularity) {
  StreamingPacker packer(100);
  packer.Add(/*id=*/0, 250);
  EXPECT_EQ(packer.ReadyUnits(), 2u);   // 100 + 100
  EXPECT_EQ(packer.PendingBytes(), 50u);
  packer.Add(1, 30);
  EXPECT_EQ(packer.ReadyUnits(), 2u);   // 80 pending
  packer.Add(2, 20);
  EXPECT_EQ(packer.ReadyUnits(), 3u);   // filled to exactly 100
  EXPECT_EQ(packer.PendingBytes(), 0u);
}

TEST(StreamingPackerTest, PartialOnlyEmittedOnFlush) {
  StreamingPacker packer(1000);
  packer.Add(0, 300);
  packer.Add(1, 300);
  EXPECT_FALSE(packer.HasReadyUnit());
  packer.Flush();
  ASSERT_TRUE(packer.HasReadyUnit());
  const auto unit = packer.PopReadyUnit();
  EXPECT_EQ(unit.TotalBytes(), 600u);
  EXPECT_EQ(unit.segments.size(), 2u);
}

TEST(StreamingPackerTest, SplitGradientHasContiguousOffsets) {
  StreamingPacker packer(64);
  packer.Add(7, 200);
  packer.Flush();
  std::size_t offset = 0;
  while (packer.HasReadyUnit()) {
    const auto unit = packer.PopReadyUnit();
    for (const auto& seg : unit.segments) {
      EXPECT_EQ(seg.gradient_id, 7);
      EXPECT_EQ(seg.offset, offset);
      offset += seg.length;
    }
  }
  EXPECT_EQ(offset, 200u);
}

TEST(StreamingPackerTest, CrossRoundFusion) {
  // Gradients arriving in different sync rounds fuse into one unit — the
  // behaviour that distinguishes streaming packing from per-round packing.
  StreamingPacker packer(1 << 20);
  packer.Add(0, 300 << 10);  // round 1
  packer.Add(1, 300 << 10);  // round 2
  packer.Add(2, 300 << 10);  // round 3
  EXPECT_FALSE(packer.HasReadyUnit());
  packer.Add(3, 300 << 10);  // round 4: crosses 1 MiB
  EXPECT_EQ(packer.ReadyUnits(), 1u);
  const auto unit = packer.PopReadyUnit();
  EXPECT_EQ(unit.TotalBytes(), std::size_t{1} << 20);
  EXPECT_EQ(unit.segments.size(), 4u);  // all four gradients contribute
}

TEST(StreamingPackerTest, UnitIdsMonotone) {
  StreamingPacker packer(10);
  packer.Add(0, 35);
  packer.Flush();
  std::uint64_t prev = 0;
  while (packer.HasReadyUnit()) {
    const auto unit = packer.PopReadyUnit();
    EXPECT_GT(unit.unit_id, prev);
    prev = unit.unit_id;
  }
}

TEST(StreamingPackerTest, ResetDropsEverything) {
  StreamingPacker packer(100);
  packer.Add(0, 250);
  packer.Reset();
  EXPECT_FALSE(packer.HasReadyUnit());
  EXPECT_EQ(packer.PendingBytes(), 0u);
}

TEST(StreamingPackerTest, AlignmentPreserved) {
  StreamingPacker packer(10, /*alignment=*/4);
  packer.Add(0, 26);
  packer.Flush();
  std::size_t total = 0;
  while (packer.HasReadyUnit()) {
    const auto unit = packer.PopReadyUnit();
    for (const auto& seg : unit.segments) {
      EXPECT_EQ(seg.offset % 4, 0u);
      total += seg.length;
    }
  }
  EXPECT_EQ(total, 26u);
}

TEST(PackingTest, GatherScatterRoundTrip) {
  auto reg = MakeRegistry({32, 64, 16});
  PackingPlanner planner(48);
  auto units = planner.Pack(reg, {0, 1, 2});

  std::vector<std::vector<std::byte>> grads = {
      std::vector<std::byte>(32), std::vector<std::byte>(64),
      std::vector<std::byte>(16)};
  Rng rng(9);
  for (auto& g : grads) {
    for (auto& b : g) b = static_cast<std::byte>(rng.UniformInt(0, 255));
  }
  auto original = grads;

  std::vector<std::span<const std::byte>> const_views(grads.begin(),
                                                      grads.end());
  std::vector<std::vector<std::byte>> staged;
  for (const auto& u : units) {
    staged.emplace_back(u.TotalBytes());
    GatherUnit(u, const_views, staged.back());
  }
  // Wipe and scatter back.
  for (auto& g : grads) std::fill(g.begin(), g.end(), std::byte{0});
  std::vector<std::span<std::byte>> mut_views(grads.begin(), grads.end());
  for (std::size_t i = 0; i < units.size(); ++i) {
    ScatterUnit(units[i], staged[i], mut_views);
  }
  EXPECT_EQ(grads, original);
}

// ------------------------------------------------------------------ Sync ---

TEST(SyncTest, DecentralizedRoundCostScalesWithHosts) {
  sim::Engine engine;
  net::CloudFabric f2(engine, net::Topology{2, 8, net::TransportKind::kTcp},
                      net::FabricParams{});
  DecentralizedSync s2(f2);
  sim::Engine engine2;
  net::CloudFabric f8(engine2, net::Topology{8, 8, net::TransportKind::kTcp},
                      net::FabricParams{});
  DecentralizedSync s8(f8);
  EXPECT_LT(s2.RoundCost(100), s8.RoundCost(100));
  // But far below a linear-in-world-size master incast.
  EXPECT_LT(s8.RoundCost(100), 1e-2);
}

TEST(SyncTest, DecentralizedDeliversAgreedVector) {
  sim::Engine engine;
  net::CloudFabric fabric(engine, net::Topology{2, 2, net::TransportKind::kTcp},
                          net::FabricParams{});
  DecentralizedSync sync(fabric);
  BitVector ready(10);
  ready.Set(3);
  ready.Set(7);
  BitVector agreed;
  sync.StartRound(ready, [&](BitVector v) { agreed = std::move(v); });
  engine.Run();
  EXPECT_EQ(agreed, ready);
  EXPECT_EQ(sync.RoundsCompleted(), 1u);
}

TEST(SyncTest, MasterProcessingScalesWithWorldAndTensors) {
  sim::Engine engine;
  net::CloudFabric small(engine, net::Topology{2, 8, net::TransportKind::kTcp},
                         net::FabricParams{});
  MasterSync sync_small(small);
  sim::Engine engine2;
  net::CloudFabric big(engine2, net::Topology{32, 8, net::TransportKind::kTcp},
                       net::FabricParams{});
  MasterSync sync_big(big);
  EXPECT_GT(sync_big.MasterProcessingCost(10),
            10.0 * sync_small.MasterProcessingCost(10));
  EXPECT_GT(sync_big.MasterProcessingCost(2000),
            sync_big.MasterProcessingCost(10));
}

TEST(SyncTest, MasterSerializesConcurrentRounds) {
  sim::Engine engine;
  net::CloudFabric fabric(engine,
                          net::Topology{8, 8, net::TransportKind::kTcp},
                          net::FabricParams{});
  SyncParams params;
  MasterSync sync(fabric, params);
  BitVector ready(100);
  for (std::size_t i = 0; i < 100; ++i) ready.Set(i);
  std::vector<double> completions;
  for (int r = 0; r < 4; ++r) {
    sync.StartRound(ready, [&](BitVector) {
      completions.push_back(engine.Now());
    });
  }
  engine.Run();
  ASSERT_EQ(completions.size(), 4u);
  // Rounds queue behind the serialized master: completions are spaced by at
  // least the processing cost.
  const double spacing = sync.MasterProcessingCost(100);
  for (std::size_t i = 1; i < completions.size(); ++i) {
    EXPECT_GE(completions[i] - completions[i - 1], spacing * 0.99);
  }
}

TEST(SyncTest, DecentralizedBeatsMasterAtScale) {
  // The §VIII-C story: at many hosts and many tensors, the decentralized
  // bit-vector round is far cheaper than the master's serialized handling.
  sim::Engine engine;
  net::CloudFabric fabric(engine,
                          net::Topology{16, 8, net::TransportKind::kTcp},
                          net::FabricParams{});
  DecentralizedSync dec(fabric);
  MasterSync mas(fabric);
  EXPECT_LT(dec.RoundCost(2000 / 8), mas.MasterProcessingCost(2000));
}

// ------------------------------------------------------------- Optimizer ---

TEST(LrScheduleTest, LinearDecay) {
  LinearDecay lr(1.0, 100);
  EXPECT_DOUBLE_EQ(lr.LearningRate(0), 1.0);
  EXPECT_DOUBLE_EQ(lr.LearningRate(50), 0.5);
  EXPECT_DOUBLE_EQ(lr.LearningRate(100), 0.0);
  EXPECT_DOUBLE_EQ(lr.LearningRate(1000), 0.0);
  LinearDecay floored(1.0, 100, 0.1);
  EXPECT_DOUBLE_EQ(floored.LearningRate(100), 0.1);
}

TEST(LrScheduleTest, StepDecay) {
  StepDecay lr(1.0, 30, 0.1);
  EXPECT_DOUBLE_EQ(lr.LearningRate(0), 1.0);
  EXPECT_DOUBLE_EQ(lr.LearningRate(29), 1.0);
  EXPECT_DOUBLE_EQ(lr.LearningRate(30), 0.1);
  EXPECT_NEAR(lr.LearningRate(60), 0.01, 1e-12);
}

std::vector<std::span<float>> Views(std::vector<std::vector<float>>& ts) {
  std::vector<std::span<float>> out;
  for (auto& t : ts) out.emplace_back(t);
  return out;
}
std::vector<std::span<const float>> ConstViews(
    std::vector<std::vector<float>>& ts) {
  std::vector<std::span<const float>> out;
  for (auto& t : ts) out.emplace_back(t);
  return out;
}

TEST(OptimizerTest, SgdMomentumMatchesManualComputation) {
  std::vector<std::vector<float>> params = {{1.0f, 2.0f}};
  std::vector<std::vector<float>> grads = {{0.5f, -0.5f}};
  SgdOptimizer sgd(0.9);
  sgd.Step(Views(params), ConstViews(grads), 0.1);
  // v = g, p -= lr*v.
  EXPECT_NEAR(params[0][0], 1.0f - 0.05f, 1e-6);
  EXPECT_NEAR(params[0][1], 2.0f + 0.05f, 1e-6);
  sgd.Step(Views(params), ConstViews(grads), 0.1);
  // v = 0.9*g + g = 0.95; p -= 0.095.
  EXPECT_NEAR(params[0][0], 0.95f - 0.095f, 1e-6);
}

TEST(OptimizerTest, AdamFirstStepIsLrSized) {
  std::vector<std::vector<float>> params = {{0.0f}};
  std::vector<std::vector<float>> grads = {{0.3f}};
  AdamOptimizer adam;
  adam.Step(Views(params), ConstViews(grads), 0.01);
  // Bias-corrected first Adam step is ~lr * sign(g).
  EXPECT_NEAR(params[0][0], -0.01f, 1e-4);
}

TEST(OptimizerTest, AdamStateRoundTrip) {
  std::vector<std::vector<float>> params = {{1.0f, -1.0f}, {0.5f}};
  std::vector<std::vector<float>> grads = {{0.1f, 0.2f}, {-0.3f}};
  AdamOptimizer a;
  a.Step(Views(params), ConstViews(grads), 0.01);
  auto state = a.ExportState();

  AdamOptimizer b;
  b.ImportState(state);
  auto params_a = params;
  auto params_b = params;
  a.Step(Views(params_a), ConstViews(grads), 0.01);
  b.Step(Views(params_b), ConstViews(grads), 0.01);
  EXPECT_EQ(params_a, params_b);
}

TEST(OptimizerTest, HybridStepHasSgdMagnitude) {
  std::vector<std::vector<float>> params = {std::vector<float>(64, 1.0f)};
  std::vector<std::vector<float>> grads = {std::vector<float>(64, 0.0f)};
  Rng rng(4);
  for (auto& g : grads[0]) g = static_cast<float>(rng.Normal(0.0, 1.0));
  auto before = params;
  HybridAdamSgdOptimizer hybrid;
  hybrid.Step(Views(params), ConstViews(grads), 0.01);
  double step_norm = 0.0;
  double grad_norm = 0.0;
  for (std::size_t i = 0; i < 64; ++i) {
    const double d = params[0][i] - before[0][i];
    step_norm += d * d;
    grad_norm += double{grads[0][i]} * grads[0][i];
  }
  EXPECT_NEAR(std::sqrt(step_norm), 0.01 * std::sqrt(grad_norm), 1e-6);
}

TEST(OptimizerTest, OptimizersReduceQuadraticLoss) {
  // Minimize f(p) = ||p||^2 from a fixed start; all three optimizers should
  // make progress.
  for (const char* kind_cstr : {"sgd", "adam", "hybrid"}) {
    const std::string kind(kind_cstr);
    std::unique_ptr<Optimizer> opt;
    if (kind == "sgd") opt = std::make_unique<SgdOptimizer>();
    if (kind == "adam") opt = std::make_unique<AdamOptimizer>();
    if (kind == "hybrid") opt = std::make_unique<HybridAdamSgdOptimizer>();
    std::vector<std::vector<float>> params = {std::vector<float>(64, 2.0f)};
    for (int step = 0; step < 100; ++step) {
      std::vector<std::vector<float>> grads = {params[0]};  // df/dp = 2p ~ p
      opt->Step(Views(params), ConstViews(grads), 0.05);
    }
    double norm = 0.0;
    for (float p : params[0]) norm += double{p} * p;
    EXPECT_LT(std::sqrt(norm), 2.0) << kind;
  }
}

TEST(NanCheckTest, FindsNanAndInf) {
  std::vector<std::vector<float>> grads = {
      {1.0f, 2.0f},
      {std::nanf(""), 1.0f, std::numeric_limits<float>::infinity()}};
  auto report = CheckForNan(ConstViews(grads));
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_EQ(report.entries[0].tensor_index, 1u);
  EXPECT_EQ(report.entries[0].element_index, 0u);
  EXPECT_EQ(report.entries[1].element_index, 2u);
  EXPECT_FALSE(report.Clean());
}

TEST(NanCheckTest, CleanGradients) {
  std::vector<std::vector<float>> grads = {{1.0f, -2.0f, 0.0f}};
  EXPECT_TRUE(CheckForNan(ConstViews(grads)).Clean());
}

// ------------------------------------------------------------ Checkpoint ---

Checkpoint MakeTestCheckpoint() {
  Checkpoint ckpt;
  ckpt.iteration = 1234;
  ckpt.learning_rate = 0.05;
  ckpt.parameters = {{1.0f, 2.0f, 3.0f}, {4.0f}};
  ckpt.optimizer_state = {{9.0f}, {0.5f, 0.25f}};
  return ckpt;
}

TEST(CheckpointTest, SerializeRoundTrip) {
  const Checkpoint ckpt = MakeTestCheckpoint();
  auto bytes = SerializeCheckpoint(ckpt);
  auto restored = DeserializeCheckpoint(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->iteration, 1234);
  EXPECT_DOUBLE_EQ(restored->learning_rate, 0.05);
  EXPECT_EQ(restored->parameters, ckpt.parameters);
  EXPECT_EQ(restored->optimizer_state, ckpt.optimizer_state);
}

TEST(CheckpointTest, DetectsCorruption) {
  auto bytes = SerializeCheckpoint(MakeTestCheckpoint());
  bytes[bytes.size() / 2] ^= 0xFF;
  auto restored = DeserializeCheckpoint(bytes);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss);
}

TEST(CheckpointTest, DetectsTruncation) {
  auto bytes = SerializeCheckpoint(MakeTestCheckpoint());
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DeserializeCheckpoint(bytes).ok());
}

TEST(CheckpointTest, RejectsBadMagic) {
  auto bytes = SerializeCheckpoint(MakeTestCheckpoint());
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(DeserializeCheckpoint(bytes).ok());
}

TEST(CheckpointTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/aiacc_ckpt_test.bin";
  ASSERT_TRUE(SaveCheckpoint(MakeTestCheckpoint(), path).ok());
  auto restored = LoadCheckpoint(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->iteration, 1234);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  auto r = LoadCheckpoint("/nonexistent/path/ckpt.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------- Config ---

TEST(ConfigTest, SpaceEnumeratesAllPoints) {
  CommConfigSpace space;
  const auto all = space.AllConfigs();
  EXPECT_EQ(all.size(), space.NumPoints());
  // Every (streams, granularity, algorithm) combination appears exactly once.
  std::set<std::string> seen;
  for (const auto& c : all) seen.insert(c.ToString());
  EXPECT_EQ(seen.size(), all.size());
}

TEST(ConfigTest, ToStringIsReadable) {
  CommConfig cfg;
  cfg.num_streams = 8;
  cfg.granularity_bytes = 8u << 20;
  EXPECT_NE(cfg.ToString().find("streams=8"), std::string::npos);
  EXPECT_NE(cfg.ToString().find("granularity=8MiB"), std::string::npos);
}

}  // namespace
}  // namespace aiacc::core
