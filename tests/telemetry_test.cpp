// Telemetry layer tests: metrics registry (registration, snapshots, scope
// aggregation, reset), histogram bucket semantics and quantiles, the
// wall-clock tracer (span nesting, ring drain, multi-threaded record under
// the tsan preset), the zero-allocation contract of disabled and
// steady-state tracing (counter-verified via a replaced operator new), env
// parsing, and the threaded-engine integration twin of the simulator's
// comm/compute overlap check (paper Fig. 5).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "core/threaded_engine.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_events.h"
#include "telemetry/tracer.h"

// Allocation counter for the zero-overhead tests: every path through global
// operator new (the array/aligned forms funnel here by default) bumps it.
static std::atomic<std::uint64_t> g_allocations{0};

// GCC flags free() on memory from a replaced operator new even though the
// matching operator delete is replaced too — both sides use malloc/free.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n > 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace aiacc {
namespace {

using telemetry::MetricsRegistry;
using telemetry::RuntimeTracer;
using telemetry::TraceLevel;
using telemetry::TraceSpan;

// ------------------------------------------------------- metrics registry --

TEST(MetricsRegistryTest, HandlesAreIdempotentAndSnapshotsSeeThem) {
  MetricsRegistry reg;
  telemetry::Counter& c = reg.GetCounter("layer.count");
  EXPECT_EQ(&c, &reg.GetCounter("layer.count"));
  c.Add();
  c.Add(4);
  reg.GetGauge("layer.level").Set(2.5);

  const auto snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("layer.count"), 5u);
  EXPECT_EQ(snap.CounterValue("no.such.metric"), 0u);
  bool saw_gauge = false;
  for (const auto& m : snap.metrics) {
    if (m.name == "layer.level") {
      saw_gauge = true;
      EXPECT_EQ(m.kind, telemetry::MetricSnapshot::Kind::kGauge);
      EXPECT_DOUBLE_EQ(m.gauge, 2.5);
    }
  }
  EXPECT_TRUE(saw_gauge);
}

TEST(MetricsRegistryTest, CallbackMetricsTrackExternalState) {
  MetricsRegistry reg;
  std::uint64_t external = 7;
  reg.AttachCallback("ext.value", [&external] { return external; });
  EXPECT_EQ(reg.Snapshot().CounterValue("ext.value"), 7u);
  external = 9;
  EXPECT_EQ(reg.Snapshot().CounterValue("ext.value"), 9u);
  reg.Reset();  // callbacks are external state: Reset must not zero them
  EXPECT_EQ(reg.Snapshot().CounterValue("ext.value"), 9u);
}

TEST(MetricsRegistryTest, AggregateMergesScopesAndResetZeroes) {
  MetricsRegistry reg;
  reg.GetCounter(telemetry::RankScoped("engine.sync_rounds", 0)).Add(3);
  reg.GetCounter(telemetry::RankScoped("engine.sync_rounds", 1)).Add(5);
  reg.GetGauge(telemetry::Scoped("tuner.best", "grid")).Set(1.0);
  reg.GetGauge(telemetry::Scoped("tuner.best", "anneal")).Set(4.0);

  const auto merged = reg.Snapshot().Aggregate();
  EXPECT_EQ(merged.CounterValue("engine.sync_rounds"), 8u);
  for (const auto& m : merged.metrics) {
    if (m.name == "tuner.best") {
      EXPECT_DOUBLE_EQ(m.gauge, 4.0);  // max wins
    }
  }

  reg.Reset();
  EXPECT_EQ(reg.Snapshot()
                .Aggregate()
                .CounterValue("engine.sync_rounds"),
            0u);
}

TEST(MetricsRegistryTest, ExportsRenderTableAndJson) {
  MetricsRegistry reg;
  reg.GetCounter("a.count").Add(2);
  reg.GetHistogram("a.lat", {1.0, 2.0}).Record(1.5);
  const auto snap = reg.Snapshot();
  const std::string table = snap.ToTable();
  EXPECT_NE(table.find("a.count"), std::string::npos);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
}

// -------------------------------------------------------------- histogram --

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  telemetry::Histogram h({1.0, 2.0, 4.0});
  h.Record(0.5);  // bucket 0 (<= 1)
  h.Record(1.0);  // bucket 0 (edges are inclusive)
  h.Record(1.5);  // bucket 1
  h.Record(4.0);  // bucket 2
  h.Record(9.0);  // overflow
  const auto snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(HistogramTest, QuantilesLandInTheRightBucket) {
  telemetry::Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 10; ++i) h.Record(0.5);
  for (int i = 0; i < 10; ++i) h.Record(1.5);
  for (int i = 0; i < 10; ++i) h.Record(3.0);
  const auto snap = h.Snapshot();
  const double p50 = snap.Quantile(50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  const double p99 = snap.Quantile(99);
  EXPECT_GT(p99, 2.0);
  EXPECT_LE(p99, 4.0);
  h.Record(100.0);  // overflow clamps to the last finite edge
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(100), 4.0);
}

TEST(HistogramTest, ExponentialBoundsDouble) {
  const auto bounds = telemetry::ExponentialBounds(1e-6, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1e-6);
  EXPECT_DOUBLE_EQ(bounds[3], 8e-6);
}

// ------------------------------------------------------- percentile helper --

TEST(PercentileInPlaceTest, MatchesCopyingPercentileAndSkipsResort) {
  std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  const double p50_copy = Percentile(xs, 50.0);
  std::vector<double> ys{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(PercentileInPlace(ys, 50.0), p50_copy);
  EXPECT_TRUE(std::is_sorted(ys.begin(), ys.end()));
  // Second call on the now-sorted vector is a pure lookup.
  EXPECT_DOUBLE_EQ(PercentileInPlace(ys, 100.0), 5.0);
}

// ----------------------------------------------------------------- tracer --

TEST(TracerTest, NestedSpansStayContainedAndCollectPortably) {
  RuntimeTracer tracer;
  tracer.Enable(TraceLevel::kPhase);
  {
    TraceSpan outer(tracer, TraceLevel::kPhase, "test", "outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      TraceSpan inner(tracer, TraceLevel::kPhase, "test", "inner", 3);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  tracer.RecordInstant("test", "mark");

  std::vector<telemetry::SpanEvent> spans;
  std::vector<telemetry::InstantEvent> instants;
  tracer.Collect(&spans, &instants);
  ASSERT_EQ(spans.size(), 2u);
  ASSERT_EQ(instants.size(), 1u);
  const auto& inner =
      spans[0].name.find("inner") != std::string::npos ? spans[0] : spans[1];
  const auto& outer =
      spans[0].name.find("inner") != std::string::npos ? spans[1] : spans[0];
  EXPECT_EQ(inner.name, "inner#3");  // index is rendered into the name
  EXPECT_GE(inner.begin, outer.begin);
  EXPECT_LE(inner.end, outer.end);
  EXPECT_EQ(inner.track, outer.track);  // same recording thread, same lane
  EXPECT_EQ(inner.cat, "test");
  EXPECT_EQ(tracer.dropped(), 0u);

  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);

  tracer.Clear();
  spans.clear();
  instants.clear();
  tracer.Collect(&spans, &instants);
  EXPECT_TRUE(spans.empty());
  EXPECT_TRUE(instants.empty());
}

TEST(TracerTest, DisabledSpansRecordNothing) {
  RuntimeTracer tracer;  // never enabled
  {
    TraceSpan span(tracer, TraceLevel::kPhase, "test", "ghost");
  }
  std::vector<telemetry::SpanEvent> spans;
  std::vector<telemetry::InstantEvent> instants;
  tracer.Collect(&spans, &instants);
  EXPECT_TRUE(spans.empty());

  // Level gating: a kPhase tracer must drop verbose-only events.
  tracer.Enable(TraceLevel::kPhase);
  EXPECT_TRUE(tracer.enabled(TraceLevel::kPhase));
  EXPECT_FALSE(tracer.enabled(TraceLevel::kVerbose));
}

TEST(TracerOverheadTest, DisabledSpansAllocateNothing) {
  RuntimeTracer tracer;  // disabled
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span(tracer, TraceLevel::kPhase, "test", "off");
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
}

TEST(TracerOverheadTest, SteadyStateRecordingAllocatesNothing) {
  RuntimeTracer tracer;
  tracer.Enable(TraceLevel::kVerbose);
  tracer.RecordInstant("test", "warmup");  // registers this thread's ring
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    tracer.RecordSpan("test", "hot", i, i + 1);
    tracer.RecordInstant("test", "tick");
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
}

TEST(TracerTest, RingWrapsCountDroppedEventsInsteadOfGrowing) {
  RuntimeTracer::Options options;
  options.ring_capacity = 16;
  RuntimeTracer tracer(options);
  tracer.Enable(TraceLevel::kPhase);
  for (int i = 0; i < 40; ++i) tracer.RecordSpan("test", "s", i, i + 1);
  std::vector<telemetry::SpanEvent> spans;
  std::vector<telemetry::InstantEvent> instants;
  tracer.Collect(&spans, &instants);
  EXPECT_EQ(spans.size(), 16u);
  EXPECT_EQ(tracer.dropped(), 24u);
}

// Runs under the tsan preset: concurrent recording threads against one
// tracer must be race-free and lose nothing while the rings have room.
TEST(TracerTest, ConcurrentRecordingFromManyThreads) {
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 5000;
  RuntimeTracer tracer;
  tracer.Enable(TraceLevel::kVerbose);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        tracer.RecordSpan("stress", "span", i, i + 1);
        tracer.RecordInstant("stress", "mark");
      }
    });
  }
  for (auto& th : threads) th.join();

  std::vector<telemetry::SpanEvent> spans;
  std::vector<telemetry::InstantEvent> instants;
  tracer.Collect(&spans, &instants);
  EXPECT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads) * kEventsPerThread);
  EXPECT_EQ(instants.size(),
            static_cast<std::size_t>(kThreads) * kEventsPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// ------------------------------------------------------------ env parsing --

TEST(TelemetryEnvTest, ParsesAllKnobs) {
  const auto opts = telemetry::ParseEnvOptions([](const char* key)
                                                   -> const char* {
    if (std::strcmp(key, "AIACC_TRACE") == 0) return "/tmp/out.json";
    if (std::strcmp(key, "AIACC_TRACE_LEVEL") == 0) return "verbose";
    if (std::strcmp(key, "AIACC_METRICS_DUMP") == 0) return "stderr";
    if (std::strcmp(key, "AIACC_METRICS_PERIOD_MS") == 0) return "250";
    return nullptr;
  });
  EXPECT_EQ(opts.trace_path, "/tmp/out.json");
  EXPECT_EQ(opts.trace_level, TraceLevel::kVerbose);
  EXPECT_EQ(opts.metrics_dump, "stderr");
  EXPECT_EQ(opts.metrics_period_ms, 250);
}

TEST(TelemetryEnvTest, DefaultsAndOffLevel) {
  const auto off = telemetry::ParseEnvOptions(
      [](const char* key) -> const char* {
        if (std::strcmp(key, "AIACC_TRACE") == 0) return "t.json";
        if (std::strcmp(key, "AIACC_TRACE_LEVEL") == 0) return "off";
        return nullptr;
      });
  EXPECT_EQ(off.trace_level, TraceLevel::kOff);
  const auto none =
      telemetry::ParseEnvOptions([](const char*) -> const char* {
        return nullptr;
      });
  EXPECT_TRUE(none.trace_path.empty());
  EXPECT_EQ(none.trace_level, TraceLevel::kPhase);
  EXPECT_EQ(none.metrics_period_ms, 0);
}

// ----------------------------------------- engine integration (Fig. 5 twin) --

// The threaded counterpart of the simulator's overlap assertion: with
// gradients produced incrementally (backward in progress), real collective
// spans must run concurrently with the producing window — communication
// hides inside compute.
TEST(EngineTelemetryTest, CommSpansOverlapBackwardCompute) {
  auto& tracer = RuntimeTracer::Global();
  tracer.Clear();
  tracer.Enable(TraceLevel::kPhase);

  constexpr int kWorld = 2;
  constexpr int kGrads = 3;
  constexpr std::size_t kLen = 2048;
  std::vector<std::pair<std::int64_t, std::int64_t>> compute_windows(kWorld);
  {
    core::CommConfig config;
    config.num_streams = 2;
    config.granularity_bytes = 1024;  // several units per iteration
    core::ThreadedAiaccEngine engine(kWorld, config);
    std::vector<std::thread> threads;
    for (int r = 0; r < kWorld; ++r) {
      threads.emplace_back([&, r] {
        auto& worker = engine.worker(r);
        std::vector<std::vector<float>> grads(
            kGrads, std::vector<float>(kLen, static_cast<float>(r + 1)));
        for (int g = 0; g < kGrads; ++g) {
          ASSERT_TRUE(
              worker.Register("grad" + std::to_string(g), grads[g]).ok());
        }
        worker.Finalize();
        // Staggered production: the engine starts sync rounds and unit
        // all-reduces while "backward" is still producing later gradients.
        const std::int64_t begin = tracer.NowNs();
        for (int g = 0; g < kGrads; ++g) {
          worker.Push("grad" + std::to_string(g));
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        compute_windows[r] = {begin, tracer.NowNs()};
        tracer.RecordSpan("compute", "backward", begin, tracer.NowNs());
        worker.FlushIteration();
        ASSERT_TRUE(worker.WaitIteration().ok());
      });
    }
    for (auto& t : threads) t.join();
    engine.Shutdown();  // quiesce every recording thread before Collect

    // Engine stats flowed through the registry handles.
    const auto merged = engine.metrics().Snapshot().Aggregate();
    EXPECT_GE(merged.CounterValue("engine.sync_rounds"),
              static_cast<std::uint64_t>(kWorld));
    EXPECT_GT(merged.CounterValue("engine.units_reduced"), 0u);
    EXPECT_GT(merged.CounterValue("engine.bytes_reduced"), 0u);
  }

  std::vector<telemetry::SpanEvent> spans;
  std::vector<telemetry::InstantEvent> instants;
  tracer.Collect(&spans, &instants);
  tracer.Disable();
  tracer.Clear();

  double comm_overlap = 0.0;
  for (const auto& s : spans) {
    if (s.cat != "comm" && s.cat != "engine") continue;
    for (const auto& [b_ns, e_ns] : compute_windows) {
      const double b = static_cast<double>(b_ns) * 1e-9;
      const double e = static_cast<double>(e_ns) * 1e-9;
      const double lo = std::max(s.begin, b);
      const double hi = std::min(s.end, e);
      if (hi > lo) comm_overlap += hi - lo;
    }
  }
  EXPECT_GT(comm_overlap, 0.0)
      << "no collective span overlapped the gradient-producing window";
  bool saw_grad_ready = false;
  for (const auto& i : instants) {
    if (i.name == "grad-ready") saw_grad_ready = true;
  }
  EXPECT_TRUE(saw_grad_ready);
}

}  // namespace
}  // namespace aiacc
