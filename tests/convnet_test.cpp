// ConvNet numeric tests: central-difference gradient checks through conv /
// ReLU / max-pool / dense / softmax-CE, training convergence, and the
// distributed CV path — data-parallel ConvNet training through the real
// threaded AIACC engine must match sequential full-batch training.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/threaded_engine.h"
#include "dnn/convnet.h"

namespace aiacc::dnn {
namespace {

ConvNetConfig SmallConfig() {
  ConvNetConfig cfg;
  cfg.input_channels = 1;
  cfg.input_hw = 12;
  cfg.conv_channels = {3, 4};
  cfg.num_classes = 3;
  return cfg;
}

TEST(ConvNetTest, ShapesAndDeterminism) {
  ConvNet a(SmallConfig(), 7);
  ConvNet b(SmallConfig(), 7);
  const auto ds = MakeSyntheticImages(4, 12, 3, 1);
  EXPECT_EQ(a.Forward(ds.images, 4), b.Forward(ds.images, 4));
  EXPECT_EQ(a.Forward(ds.images, 4).size(), 12u);  // 4 x 3 classes
  EXPECT_GT(a.NumParameters(), 0u);
  EXPECT_EQ(a.ParameterTensors().size(), a.NumTensors());
  EXPECT_EQ(a.GradientTensors().size(), a.NumTensors());
}

TEST(ConvNetTest, SoftmaxLossSane) {
  ConvNet net(SmallConfig(), 3);
  const auto ds = MakeSyntheticImages(8, 12, 3, 2);
  net.Forward(ds.images, 8);
  const float loss = net.Loss(ds.labels);
  // Untrained: near ln(3).
  EXPECT_GT(loss, 0.3f);
  EXPECT_LT(loss, 3.0f);
}

TEST(ConvNetTest, NumericalGradientCheck) {
  // Central differences through the entire network. Max-pool/ReLU kinks can
  // break finite differences at crossing points, so check several elements
  // per tensor and require the vast majority to match tightly.
  ConvNet net(SmallConfig(), 11);
  const auto ds = MakeSyntheticImages(3, 12, 3, 5);
  net.Forward(ds.images, 3);
  net.Backward(ds.images, ds.labels, 3);
  auto params = net.ParameterTensors();
  // Copy analytic gradients before probing (Forward overwrites state).
  std::vector<std::vector<float>> analytic;
  for (auto g : net.GradientTensors()) analytic.emplace_back(g.begin(), g.end());

  const float eps = 1e-3f;
  int checked = 0;
  int mismatched = 0;
  for (std::size_t t = 0; t < params.size(); ++t) {
    const std::size_t stride = std::max<std::size_t>(1, params[t].size() / 5);
    for (std::size_t i = 0; i < params[t].size(); i += stride) {
      const float saved = params[t][i];
      params[t][i] = saved + eps;
      net.Forward(ds.images, 3);
      const float up = net.Loss(ds.labels);
      params[t][i] = saved - eps;
      net.Forward(ds.images, 3);
      const float down = net.Loss(ds.labels);
      params[t][i] = saved;
      const float numeric = (up - down) / (2 * eps);
      ++checked;
      if (std::fabs(analytic[t][i] - numeric) >
          5e-3f + 0.05f * std::fabs(numeric)) {
        ++mismatched;
      }
    }
  }
  EXPECT_GE(checked, 20);
  // Allow a few kink crossings, nothing systematic.
  EXPECT_LE(mismatched, checked / 10);
}

TEST(ConvNetTest, LearnsSyntheticPatterns) {
  // Single conv stage keeps a wide feature map (6 x 5 x 5 = 150 features)
  // so the stripe patterns are separable.
  ConvNetConfig cfg = SmallConfig();
  cfg.conv_channels = {6};
  ConvNet net(cfg, 21);
  const auto ds = MakeSyntheticImages(48, 12, 3, 9);
  net.Forward(ds.images, ds.num_samples);
  const float initial = net.Loss(ds.labels);
  for (int step = 0; step < 60; ++step) {
    net.Forward(ds.images, ds.num_samples);
    net.Backward(ds.images, ds.labels, ds.num_samples);
    net.SgdStep(0.1f);
  }
  net.Forward(ds.images, ds.num_samples);
  EXPECT_LT(net.Loss(ds.labels), initial * 0.5f);
  EXPECT_GT(net.Accuracy(ds.labels), 0.85);
}

TEST(ConvNetTest, DistributedTrainingMatchesSequential) {
  // The CV analogue of the MLP end-to-end test: 4 data-parallel ConvNet
  // replicas through the real threaded AIACC engine == sequential
  // full-batch training.
  const int world = 4;
  const int steps = 5;
  const float lr = 0.1f;
  const auto ds = MakeSyntheticImages(32, 12, 3, 13);
  const int shard = ds.num_samples / world;
  const int img = 12 * 12;

  ConvNet reference(SmallConfig(), 42);
  for (int s = 0; s < steps; ++s) {
    reference.Forward(ds.images, ds.num_samples);
    reference.Backward(ds.images, ds.labels, ds.num_samples);
    reference.SgdStep(lr);
  }

  core::CommConfig config;
  config.num_streams = 2;
  config.granularity_bytes = 512;
  core::ThreadedAiaccEngine engine(world, config);
  std::vector<std::unique_ptr<ConvNet>> replicas(
      static_cast<std::size_t>(world));
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      auto& worker = engine.worker(r);
      auto net = std::make_unique<ConvNet>(SmallConfig(), 42);
      auto grads = net->GradientTensors();
      for (std::size_t t = 0; t < grads.size(); ++t) {
        char name[32];
        std::snprintf(name, sizeof(name), "t%02zu", t);
        ASSERT_TRUE(worker.Register(name, grads[t]).ok());
      }
      worker.Finalize();
      std::vector<float> x(ds.images.begin() + r * shard * img,
                           ds.images.begin() + (r + 1) * shard * img);
      std::vector<int> y(ds.labels.begin() + r * shard,
                         ds.labels.begin() + (r + 1) * shard);
      for (int s = 0; s < steps; ++s) {
        net->Forward(x, shard);
        net->Backward(x, y, shard);
        worker.PushAll();
        ASSERT_TRUE(worker.WaitIteration().ok());
        net->SgdStep(lr);
      }
      replicas[static_cast<std::size_t>(r)] = std::move(net);
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& replica : replicas) {
    EXPECT_TRUE(replica->ParametersEqual(reference, 5e-4f));
  }
}

TEST(ConvNetTest, DatasetIsBalancedAndLearnable) {
  const auto ds = MakeSyntheticImages(300, 12, 3, 77);
  std::vector<int> counts(3, 0);
  for (int label : ds.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 3);
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int c : counts) EXPECT_GT(c, 50);
}

}  // namespace
}  // namespace aiacc::dnn
