// Tests for the discrete-event engine: ordering, cancellation, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"

namespace aiacc::sim {
namespace {

TEST(SimEngineTest, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.ScheduleAt(3.0, [&] { order.push_back(3); });
  engine.ScheduleAt(1.0, [&] { order.push_back(1); });
  engine.ScheduleAt(2.0, [&] { order.push_back(2); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.Now(), 3.0);
}

TEST(SimEngineTest, FifoAmongEqualTimes) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  engine.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimEngineTest, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  double fired_at = -1.0;
  engine.ScheduleAt(5.0, [&] {
    engine.ScheduleAfter(2.5, [&] { fired_at = engine.Now(); });
  });
  engine.Run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimEngineTest, CancelPreventsExecution) {
  Engine engine;
  bool ran = false;
  const EventId id = engine.ScheduleAt(1.0, [&] { ran = true; });
  EXPECT_TRUE(engine.Cancel(id));
  EXPECT_FALSE(engine.Cancel(id));  // double-cancel reports failure
  engine.Run();
  EXPECT_FALSE(ran);
}

TEST(SimEngineTest, CancelAfterFireFails) {
  Engine engine;
  const EventId id = engine.ScheduleAt(1.0, [] {});
  engine.Run();
  EXPECT_FALSE(engine.Cancel(id));
}

TEST(SimEngineTest, RunUntilStopsAtDeadline) {
  Engine engine;
  std::vector<double> fired;
  engine.ScheduleAt(1.0, [&] { fired.push_back(1.0); });
  engine.ScheduleAt(2.0, [&] { fired.push_back(2.0); });
  engine.ScheduleAt(5.0, [&] { fired.push_back(5.0); });
  engine.RunUntil(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(engine.Now(), 3.0);
  EXPECT_EQ(engine.PendingEvents(), 1u);
  engine.Run();
  EXPECT_EQ(fired.back(), 5.0);
}

TEST(SimEngineTest, EventsScheduledDuringRunExecute) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) engine.ScheduleAfter(0.1, recurse);
  };
  engine.ScheduleAfter(0.1, recurse);
  engine.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_NEAR(engine.Now(), 10.0, 1e-9);
}

TEST(SimEngineTest, ExecutedEventsCounts) {
  Engine engine;
  for (int i = 0; i < 7; ++i) engine.ScheduleAt(i, [] {});
  engine.Run();
  EXPECT_EQ(engine.ExecutedEvents(), 7u);
}

TEST(SimEngineTest, StepReturnsFalseWhenEmpty) {
  Engine engine;
  EXPECT_FALSE(engine.Step());
}

}  // namespace
}  // namespace aiacc::sim
