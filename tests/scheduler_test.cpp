// DAG-scheduler suite (ctest label "scheduler"): ready-set dispatch order,
// aging/starvation-freedom, cooperative preemption mid-bulk-transfer, the
// bit-exactness matrix across priority x streams x depth x codec, the
// zero-allocation steady state of the scheduler hot path, and the
// optimizer/comm-overlap exactness guarantee (engine-applied StepTensor ==
// barriered Step, bitwise).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

#include "collective/threaded.h"
#include "core/optimizer.h"
#include "core/scheduler.h"
#include "core/threaded_engine.h"
#include "transport/inproc.h"

// Allocation counter for the zero-allocation steady-state test: every path
// through global operator new bumps it.
static std::atomic<std::uint64_t> g_allocations{0};

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n > 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace aiacc::core {
namespace {

AllReduceUnit MakeUnit(int gradient_id, std::size_t bytes = 1024) {
  AllReduceUnit unit;
  unit.unit_id = static_cast<std::uint64_t>(gradient_id);
  unit.segments.push_back(UnitSegment{gradient_id, 0, bytes});
  unit.priority = gradient_id;
  return unit;
}

// ------------------------------------------------------- dispatch order --

TEST(SchedulerDispatchTest, PriorityStreamPopsMostUrgentFirst) {
  ReadySetScheduler sched(SchedulerPolicy{0.5f, 1000, 8});  // cutoff = 4
  sched.Push(MakeUnit(6));
  sched.Push(MakeUnit(5));
  sched.Push(MakeUnit(2));

  auto first = sched.PopFor(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->priority, 2);  // most urgent, despite being pushed last
  EXPECT_TRUE(sched.last_pop().urgent);
  EXPECT_EQ(sched.stats().priority_pops, 1u);

  // With the urgent class drained, bulk dispatches strictly FIFO — push
  // order, NOT priority order (6 before 5). Priority ordering is confined
  // to the urgent class to keep bulk dispatch rank-consistent.
  auto second = sched.PopFor(1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->priority, 6);
  auto third = sched.PopFor(1);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->priority, 5);
  EXPECT_EQ(sched.stats().pops, 3u);
}

TEST(SchedulerDispatchTest, StreamZeroAlwaysPopsPushOrder) {
  // Stream 0 is the deadlock-freedom anchor: strictly FIFO even when a far
  // more urgent unit is queued.
  ReadySetScheduler sched(SchedulerPolicy{0.5f, 1000, 8});
  sched.Push(MakeUnit(7));
  sched.Push(MakeUnit(0));
  auto first = sched.PopFor(0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->priority, 7);
  auto second = sched.PopFor(0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->priority, 0);
}

TEST(SchedulerDispatchTest, DisabledPolicyIsFifoOnEveryStream) {
  // urgent_fraction = 0 is the scheduler-off A/B arm: pure FIFO, no
  // priority accounting.
  ReadySetScheduler sched(SchedulerPolicy{0.0f, 50, 8});
  sched.Push(MakeUnit(7));
  sched.Push(MakeUnit(0));
  auto first = sched.PopFor(3);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->priority, 7);
  EXPECT_EQ(sched.stats().priority_pops, 0u);
  EXPECT_FALSE(sched.UrgentWaiting(100));
}

TEST(SchedulerDispatchTest, DerivesPriorityFromSegmentsWhenUnstamped) {
  ReadySetScheduler sched(SchedulerPolicy{0.5f, 1000, 8});
  AllReduceUnit unit;
  unit.segments.push_back(UnitSegment{5, 0, 64});
  unit.segments.push_back(UnitSegment{3, 0, 64});
  unit.priority = -1;  // unstamped
  sched.Push(std::move(unit));
  auto popped = sched.PopFor(1);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(sched.last_pop().priority, 3);
}

TEST(SchedulerDispatchTest, InversionCountedWhenUrgentPopsAfterBypass) {
  ReadySetScheduler sched(SchedulerPolicy{0.5f, 1000, 8});  // cutoff = 4
  sched.Push(MakeUnit(6));  // seq 0, bulk
  sched.Push(MakeUnit(1));  // seq 1, urgent
  // Stream 0 pops FIFO -> the bulk unit overtakes the waiting urgent one.
  auto bulk = sched.PopFor(0);
  ASSERT_TRUE(bulk.has_value());
  EXPECT_EQ(bulk->priority, 6);
  auto urgent = sched.PopFor(0);
  ASSERT_TRUE(urgent.has_value());
  EXPECT_EQ(urgent->priority, 1);
  EXPECT_EQ(sched.last_pop().bypassed, 1u);
  EXPECT_EQ(sched.stats().inversions, 1u);
}

TEST(SchedulerDispatchTest, UrgentWaitingHintTracksQueueContents) {
  ReadySetScheduler sched(SchedulerPolicy{0.25f, 1000, 16});  // cutoff = 4
  EXPECT_FALSE(sched.UrgentWaiting(100));
  sched.Push(MakeUnit(9));  // non-urgent: hint stays clear
  EXPECT_FALSE(sched.UrgentWaiting(100));
  sched.Push(MakeUnit(2));  // urgent
  EXPECT_TRUE(sched.UrgentWaiting(9));
  EXPECT_FALSE(sched.UrgentWaiting(2));  // not *strictly* more urgent
  EXPECT_FALSE(sched.UrgentWaiting(0));
  (void)sched.PopFor(1);  // takes the urgent unit
  EXPECT_FALSE(sched.UrgentWaiting(9));
  sched.Shutdown();
}

// --------------------------------------------------- aging & starvation --

TEST(SchedulerAgingTest, AgedBulkOutranksFreshUrgent) {
  ReadySetScheduler sched(SchedulerPolicy{0.5f, /*aging_ms=*/1, 8});
  sched.Push(MakeUnit(7));  // bulk
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sched.Push(MakeUnit(0));  // urgent but fresh
  auto first = sched.PopFor(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->priority, 7);  // age beats priority on streams >= 1
  EXPECT_GE(sched.stats().aged_pops, 1u);
}

TEST(SchedulerAgingTest, BulkNeverStarvesUnderUrgentFlood) {
  // A continuous stream of urgent units must not starve the first-pushed
  // bulk unit: stream 0's FIFO rule (and aging on stream 1) guarantee it
  // drains. Consumers mimic the engine's comm streams.
  constexpr int kUrgent = 200;
  ReadySetScheduler sched(SchedulerPolicy{0.5f, /*aging_ms=*/10, 1000});
  std::atomic<bool> bulk_popped{false};
  std::atomic<int> total_popped{0};

  std::vector<std::thread> consumers;
  for (int stream = 0; stream < 2; ++stream) {
    consumers.emplace_back([&, stream] {
      while (auto unit = sched.PopFor(stream)) {
        if (unit->priority == 999) bulk_popped.store(true);
        total_popped.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  sched.Push(MakeUnit(999));  // the bulk unit (non-urgent, pushed first)
  for (int i = 0; i < kUrgent; ++i) {
    sched.Push(MakeUnit(i % 100));  // all urgent (cutoff = 500)
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // Drain: PopFor after Shutdown still empties the queue.
  sched.Shutdown();
  for (auto& t : consumers) t.join();
  EXPECT_TRUE(bulk_popped.load());
  EXPECT_EQ(total_popped.load(), kUrgent + 1);
}

TEST(SchedulerLifecycleTest, ShutdownDrainsThenReturnsNullopt) {
  ReadySetScheduler sched(SchedulerPolicy{0.5f, 50, 8});
  sched.Push(MakeUnit(3));
  sched.Push(MakeUnit(1));
  sched.Shutdown();
  EXPECT_TRUE(sched.PopFor(1).has_value());
  EXPECT_TRUE(sched.PopFor(1).has_value());
  EXPECT_FALSE(sched.PopFor(1).has_value());
  sched.Push(MakeUnit(2));  // no-op after shutdown
  EXPECT_EQ(sched.Size(), 0u);
}

// ------------------------------------------------ zero-alloc steady state --

TEST(SchedulerHotPathTest, SteadyStatePushPopPerformsNoAllocations) {
  ReadySetScheduler sched(SchedulerPolicy{0.5f, 50, 8});
  // Warm up: first pushes may grow the entries vector / segment storage.
  AllReduceUnit unit = MakeUnit(2);
  for (int i = 0; i < 16; ++i) {
    sched.Push(std::move(unit));
    auto popped = sched.PopFor(1);
    ASSERT_TRUE(popped.has_value());
    unit = std::move(*popped);
  }
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 10000; ++i) {
    sched.Push(std::move(unit));
    auto popped = sched.PopFor(i % 4);
    ASSERT_TRUE(popped.has_value());
    unit = std::move(*popped);
  }
  EXPECT_EQ(g_allocations.load() - before, 0u)
      << "scheduler steady state must not allocate";
}

// -------------------------------------------- preemption mid-bulk-transfer --

TEST(PreemptionTest, SliceYieldHookFiresDuringPipelinedRing) {
  // The cooperative-preemption hook must be invoked between pipeline
  // slices of an in-flight collective — that is the preemption granularity
  // the engine relies on to pause bulk transfers.
  constexpr int kWorld = 2;
  transport::InProcTransport tr(kWorld);
  std::atomic<int> yields{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kWorld; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> data(1u << 14, static_cast<float>(r + 1));
      collective::Comm comm{&tr, r, kWorld, /*tag_base=*/1,
                            /*timeout_ms=*/0, nullptr,
                            /*pipeline_depth=*/4};
      comm.slice_yield = [](void* ctx) {
        static_cast<std::atomic<int>*>(ctx)->fetch_add(1);
      };
      comm.slice_yield_ctx = &yields;
      ASSERT_TRUE(collective::RingAllReduce(comm, data,
                                            collective::ReduceOp::kSum)
                      .ok());
      // The transfer itself must be unaffected by the yields.
      for (float v : data) ASSERT_FLOAT_EQ(v, 3.0f);
    });
  }
  for (auto& t : threads) t.join();
  // depth 4, two phases, world-1 steps each: many slice boundaries per rank.
  EXPECT_GE(yields.load(), 2 * kWorld);
}

// --------------------------------------------------- engine bit-exactness --

/// Run a full engine workload (staggered backward, layer-wise forward
/// consumption, engine-applied SGD) and return rank 0's final parameters.
std::vector<std::vector<float>> RunEngine(const CommConfig& config,
                                          bool bind_optimizer = true,
                                          int iters = 3) {
  constexpr int kWorld = 4;
  constexpr std::size_t kTensors = 8;
  constexpr std::size_t kElems = 2048;
  std::vector<std::vector<float>> result;
  std::atomic<bool> failed{false};
  {
    ThreadedAiaccEngine engine(kWorld, config);
    std::vector<std::thread> threads;
    for (int r = 0; r < kWorld; ++r) {
      threads.emplace_back([&, r] {
        auto& worker = engine.worker(r);
        SgdOptimizer sgd(0.9);
        std::vector<std::vector<float>> grads(kTensors);
        std::vector<std::vector<float>> params(kTensors);
        for (std::size_t t = 0; t < kTensors; ++t) {
          grads[t].resize(kElems);
          params[t].assign(kElems, 1.0f);
          char name[32];
          std::snprintf(name, sizeof(name), "g%02zu", t);
          if (!worker.Register(name, grads[t]).ok()) {
            failed.store(true);
            return;
          }
          if (bind_optimizer) worker.BindParameter(name, params[t]);
        }
        if (bind_optimizer) worker.BindOptimizer(&sgd, 0.05);
        worker.Finalize();
        for (int it = 0; it < iters; ++it) {
          for (std::size_t t = kTensors; t-- > 0;) {  // backward order
            for (std::size_t i = 0; i < kElems; ++i) {
              grads[t][i] = 0.25f * static_cast<float>(r + 1) +
                            0.5f * static_cast<float>((t + i +
                                                       static_cast<std::size_t>(
                                                           it)) %
                                                      5);
            }
            char name[32];
            std::snprintf(name, sizeof(name), "g%02zu", t);
            worker.Push(name);
          }
          worker.FlushIteration();
          for (std::size_t t = 0; t < kTensors; ++t) {  // forward order
            char name[32];
            std::snprintf(name, sizeof(name), "g%02zu", t);
            if (!worker.WaitGradient(name).ok()) {
              failed.store(true);
              return;
            }
          }
          if (!worker.WaitIteration().ok()) {
            failed.store(true);
            return;
          }
          if (!bind_optimizer) {
            // Barriered reference: classic Step after the iteration.
            std::vector<std::span<float>> p(params.begin(), params.end());
            std::vector<std::span<const float>> g(grads.begin(), grads.end());
            sgd.Step(p, g, 0.05);
          }
        }
        if (r == 0) result = params;
      });
    }
    for (auto& t : threads) t.join();
    engine.Shutdown();
  }
  EXPECT_FALSE(failed.load());
  return result;
}

bool BitIdentical(const std::vector<std::vector<float>>& a,
                  const std::vector<std::vector<float>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size() ||
        std::memcmp(a[i].data(), b[i].data(),
                    a[i].size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(SchedulerExactnessTest, EveryPriorityConfigIsBitIdentical) {
  // The matrix the scheduler must not perturb: for each (streams, depth,
  // codec) point, priority dispatch on (both fractions) must reproduce the
  // FIFO arm's parameters bit-for-bit — the scheduler reorders dispatch,
  // never bytes.
  for (int streams : {1, 3}) {
    for (int depth : {1, 4}) {
      for (compress::CodecKind codec :
           {compress::CodecKind::kNone, compress::CodecKind::kFp16}) {
        CommConfig config;
        config.num_streams = streams;
        config.granularity_bytes = 8192;  // several units per iteration
        config.pipeline_depth = depth;
        config.codec.kind = codec;
        config.priority_urgent_fraction = 0.0f;
        const auto fifo = RunEngine(config);
        ASSERT_FALSE(fifo.empty());
        for (float fraction : {0.25f, 0.5f}) {
          config.priority_urgent_fraction = fraction;
          const auto sched = RunEngine(config);
          EXPECT_TRUE(BitIdentical(fifo, sched))
              << "streams=" << streams << " depth=" << depth
              << " codec=" << static_cast<int>(codec)
              << " urgent=" << fraction;
        }
      }
    }
  }
}

TEST(SchedulerExactnessTest, OverlappedOptimizerMatchesBarrieredStep) {
  // Optimizer/comm overlap (engine-applied StepTensor as collectives land)
  // must be bitwise identical to the classic barriered Step-after-wait.
  CommConfig config;
  config.num_streams = 3;
  config.granularity_bytes = 8192;
  config.priority_urgent_fraction = 0.25f;
  const auto overlapped = RunEngine(config, /*bind_optimizer=*/true);
  const auto barriered = RunEngine(config, /*bind_optimizer=*/false);
  ASSERT_FALSE(overlapped.empty());
  EXPECT_TRUE(BitIdentical(overlapped, barriered));
}

TEST(SchedulerExactnessTest, WaitGradientUnblocksAndDeliversAverage) {
  // WaitGradient on a single-gradient workload: the averaged value is
  // visible as soon as the wait returns, before WaitIteration.
  constexpr int kWorld = 2;
  CommConfig config;
  config.num_streams = 2;
  std::atomic<bool> failed{false};
  ThreadedAiaccEngine engine(kWorld, config);
  std::vector<std::thread> threads;
  for (int r = 0; r < kWorld; ++r) {
    threads.emplace_back([&, r] {
      auto& worker = engine.worker(r);
      std::vector<float> grad(512, static_cast<float>(r == 0 ? 2 : 4));
      if (!worker.Register("g", grad).ok()) {
        failed.store(true);
        return;
      }
      worker.Finalize();
      worker.Push("g");
      worker.FlushIteration();
      if (!worker.WaitGradient("g").ok()) {
        failed.store(true);
        return;
      }
      for (float v : grad) {
        if (v != 3.0f) {
          failed.store(true);
          return;
        }
      }
      if (!worker.WaitIteration().ok()) failed.store(true);
    });
  }
  for (auto& t : threads) t.join();
  engine.Shutdown();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace aiacc::core
