// Elastic / fault-tolerance simulation tests (paper §IV): checkpoint
// cadence, failure replay accounting, rejoin broadcast, and the
// no-checkpoint restart-from-scratch edge case.
#include <gtest/gtest.h>

#include "trainer/elastic.h"
#include "trainer/harness.h"

namespace aiacc::trainer {
namespace {

ElasticSpec BaseSpec() {
  ElasticSpec spec;
  spec.model_name = "resnet50";
  spec.topology = MakeTopology(16);
  spec.total_iterations = 40;
  spec.checkpoint_interval = 10;
  spec.replacement_delay = 30.0;
  return spec;
}

TEST(ElasticTest, HealthyRunHasOnlyCheckpointOverhead) {
  ElasticSpec spec = BaseSpec();
  spec.fail_at_iteration = -1;
  const auto report = SimulateElasticTraining(spec);
  EXPECT_EQ(report.iterations_replayed, 0);
  EXPECT_EQ(report.replay_overhead, 0.0);
  EXPECT_EQ(report.replacement_overhead, 0.0);
  EXPECT_EQ(report.checkpoints_written, 3);  // @10, @20, @30 (not @40 = end)
  EXPECT_NEAR(report.total_time,
              report.ideal_time + report.checkpoint_overhead, 1e-9);
}

TEST(ElasticTest, FailureReplaysSinceLastCheckpoint) {
  ElasticSpec spec = BaseSpec();
  spec.fail_at_iteration = 27;  // last checkpoint @20 -> replay 7
  const auto report = SimulateElasticTraining(spec);
  EXPECT_EQ(report.iterations_replayed, 7);
  EXPECT_GT(report.replay_overhead, 0.0);
  EXPECT_EQ(report.replacement_overhead, 30.0);
  EXPECT_GT(report.rejoin_broadcast_time, 0.0);
  // Total = ideal + checkpoints + replay + replacement + rejoin.
  EXPECT_NEAR(report.total_time,
              report.ideal_time + report.checkpoint_overhead +
                  report.replay_overhead + report.replacement_overhead +
                  report.rejoin_broadcast_time,
              1e-6);
}

TEST(ElasticTest, FailureAtCheckpointBoundaryReplaysNothing) {
  ElasticSpec spec = BaseSpec();
  spec.fail_at_iteration = 20;  // exactly at the checkpoint
  const auto report = SimulateElasticTraining(spec);
  EXPECT_EQ(report.iterations_replayed, 0);
  // Still pays the half-iteration that was in flight.
  EXPECT_GT(report.replay_overhead, 0.0);
}

TEST(ElasticTest, NoCheckpointingMeansFullRestart) {
  ElasticSpec spec = BaseSpec();
  spec.checkpoint_interval = 0;
  spec.fail_at_iteration = 25;
  const auto report = SimulateElasticTraining(spec);
  EXPECT_EQ(report.iterations_replayed, 25);
  EXPECT_EQ(report.checkpoints_written, 0);
  EXPECT_EQ(report.checkpoint_overhead, 0.0);
}

TEST(ElasticTest, TighterCheckpointsTradeOverheadForReplay) {
  ElasticSpec frequent = BaseSpec();
  frequent.checkpoint_interval = 5;
  frequent.fail_at_iteration = 29;
  ElasticSpec sparse = BaseSpec();
  sparse.checkpoint_interval = 20;
  sparse.fail_at_iteration = 29;

  const auto f = SimulateElasticTraining(frequent);
  const auto s = SimulateElasticTraining(sparse);
  EXPECT_GT(f.checkpoint_overhead, s.checkpoint_overhead);
  EXPECT_LT(f.replay_overhead, s.replay_overhead);
  EXPECT_LT(f.iterations_replayed, s.iterations_replayed);
}

TEST(ElasticTest, TimelineIsChronologicalAndComplete) {
  ElasticSpec spec = BaseSpec();
  spec.fail_at_iteration = 15;
  const auto report = SimulateElasticTraining(spec);
  ASSERT_GE(report.timeline.size(), 5u);
  for (std::size_t i = 1; i < report.timeline.size(); ++i) {
    EXPECT_GE(report.timeline[i].time, report.timeline[i - 1].time);
  }
  bool saw_failure = false;
  bool saw_rejoin = false;
  bool saw_complete = false;
  for (const auto& e : report.timeline) {
    if (e.what.find("NODE FAILURE") != std::string::npos) saw_failure = true;
    if (e.what.find("broadcast") != std::string::npos) saw_rejoin = true;
    if (e.what.find("complete") != std::string::npos) saw_complete = true;
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_rejoin);
  EXPECT_TRUE(saw_complete);
}

TEST(ElasticTest, RejoinBroadcastScalesWithModelSize) {
  ElasticSpec small = BaseSpec();
  small.model_name = "resnet50";  // ~100 MB
  small.fail_at_iteration = 15;
  ElasticSpec big = BaseSpec();
  big.model_name = "bert-large";  // ~1.2 GB
  big.batch_per_gpu = 8;
  big.fail_at_iteration = 15;
  const auto s = SimulateElasticTraining(small);
  const auto b = SimulateElasticTraining(big);
  EXPECT_GT(b.rejoin_broadcast_time, s.rejoin_broadcast_time * 5);
}

TEST(ElasticTest, LinkFlapAddsDegradationOverhead) {
  ElasticSpec spec = BaseSpec();
  spec.fail_at_iteration = -1;
  spec.flaps.push_back(LinkFlap{/*from=*/10, /*to=*/20,
                                /*bandwidth_factor=*/0.25});
  const auto report = SimulateElasticTraining(spec);
  EXPECT_GT(report.degradation_overhead, 0.0);
  // Total = ideal + checkpoints + degradation (nothing failed).
  EXPECT_NEAR(report.total_time,
              report.ideal_time + report.checkpoint_overhead +
                  report.degradation_overhead,
              1e-6);

  ElasticSpec clean = BaseSpec();
  clean.fail_at_iteration = -1;
  const auto baseline = SimulateElasticTraining(clean);
  EXPECT_GT(report.total_time, baseline.total_time);
  EXPECT_EQ(baseline.degradation_overhead, 0.0);
}

TEST(ElasticTest, DeeperFlapHurtsMore) {
  ElasticSpec mild = BaseSpec();
  mild.fail_at_iteration = -1;
  mild.flaps.push_back(LinkFlap{5, 15, 0.5});
  ElasticSpec severe = BaseSpec();
  severe.fail_at_iteration = -1;
  severe.flaps.push_back(LinkFlap{5, 15, 0.1});
  const auto m = SimulateElasticTraining(mild);
  const auto s = SimulateElasticTraining(severe);
  EXPECT_GT(s.degradation_overhead, m.degradation_overhead);
}

TEST(ElasticTest, FlapTimelineHasBeginAndEnd) {
  ElasticSpec spec = BaseSpec();
  spec.fail_at_iteration = -1;
  spec.flaps.push_back(LinkFlap{10, 20, 0.25});
  const auto report = SimulateElasticTraining(spec);
  bool saw_begin = false;
  bool saw_end = false;
  for (const auto& e : report.timeline) {
    if (e.what.find("LINK FLAP begins") != std::string::npos) saw_begin = true;
    if (e.what.find("LINK FLAP ends") != std::string::npos) saw_end = true;
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
}

}  // namespace
}  // namespace aiacc::trainer
