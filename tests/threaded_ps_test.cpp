// Functional parameter-server tests: averaging semantics, equivalence with
// ring all-reduce, key partitioning across server threads, multi-iteration
// reuse, and PS-based data-parallel training matching sequential training.
#include <gtest/gtest.h>

#include <thread>

#include "baselines/threaded_ps.h"
#include "collective/threaded.h"
#include "common/rng.h"
#include "dnn/mlp.h"

namespace aiacc::baselines {
namespace {

TEST(ThreadedPsTest, AveragesAcrossWorkers) {
  const int workers = 3;
  ThreadedParameterServer ps(workers, 2, {4, 2});
  std::vector<std::vector<float>> key0 = {
      {1, 2, 3, 4}, {2, 3, 4, 5}, {3, 4, 5, 6}};
  std::vector<std::vector<float>> key1 = {{10, 20}, {30, 40}, {50, 60}};
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      ps.PushPull(w, 0, key0[static_cast<std::size_t>(w)]);
      ps.PushPull(w, 1, key1[static_cast<std::size_t>(w)]);
    });
  }
  for (auto& t : threads) t.join();
  for (int w = 0; w < workers; ++w) {
    EXPECT_EQ(key0[static_cast<std::size_t>(w)],
              (std::vector<float>{2, 3, 4, 5}));
    EXPECT_EQ(key1[static_cast<std::size_t>(w)],
              (std::vector<float>{30, 40}));
  }
  EXPECT_EQ(ps.PushesServed(), 6u);  // 2 keys x 3 workers
}

TEST(ThreadedPsTest, MatchesRingAllReduce) {
  const int workers = 4;
  const std::vector<std::size_t> sizes = {33, 7, 129};
  ThreadedParameterServer ps(workers, 3, sizes);
  Rng rng(8);
  // Identical inputs go through PS and through a ring all-reduce.
  std::vector<std::vector<std::vector<float>>> ps_data(workers);
  std::vector<std::vector<float>> ring_data(workers);
  for (int w = 0; w < workers; ++w) {
    for (std::size_t k = 0; k < sizes.size(); ++k) {
      std::vector<float> v(sizes[k]);
      for (float& x : v) x = static_cast<float>(rng.Uniform(-3, 3));
      ps_data[static_cast<std::size_t>(w)].push_back(v);
      ring_data[static_cast<std::size_t>(w)].insert(
          ring_data[static_cast<std::size_t>(w)].end(), v.begin(), v.end());
    }
  }
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      for (std::size_t k = 0; k < sizes.size(); ++k) {
        ps.PushPull(w, static_cast<int>(k),
                    ps_data[static_cast<std::size_t>(w)][k]);
      }
    });
  }
  for (auto& t : threads) t.join();

  transport::InProcTransport tr(workers);
  std::vector<std::thread> ring_threads;
  for (int w = 0; w < workers; ++w) {
    ring_threads.emplace_back([&, w] {
      collective::Comm comm{&tr, w, workers, 0};
      EXPECT_TRUE(collective::RingAllReduce(
                      comm, ring_data[static_cast<std::size_t>(w)],
                      collective::ReduceOp::kAvg)
                      .ok());
    });
  }
  for (auto& t : ring_threads) t.join();

  for (int w = 0; w < workers; ++w) {
    std::size_t offset = 0;
    for (std::size_t k = 0; k < sizes.size(); ++k) {
      for (std::size_t i = 0; i < sizes[k]; ++i) {
        ASSERT_NEAR(ps_data[static_cast<std::size_t>(w)][k][i],
                    ring_data[static_cast<std::size_t>(w)][offset + i], 1e-4)
            << "worker " << w << " key " << k << " elem " << i;
      }
      offset += sizes[k];
    }
  }
}

TEST(ThreadedPsTest, ManyIterationsStayConsistent) {
  const int workers = 2;
  ThreadedParameterServer ps(workers, 1, {8});
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      std::vector<float> v(8);
      for (int iter = 0; iter < 50; ++iter) {
        for (std::size_t i = 0; i < v.size(); ++i) {
          v[i] = static_cast<float>(w + iter);
        }
        ps.PushPull(w, 0, v);
        // Average of (0 + iter) and (1 + iter) = iter + 0.5.
        for (float x : v) {
          ASSERT_FLOAT_EQ(x, static_cast<float>(iter) + 0.5f);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST(ThreadedPsTest, PushThenDeferredPull) {
  // BytePS pipelines pushes: all keys pushed first, then pulled.
  const int workers = 2;
  ThreadedParameterServer ps(workers, 2, {3, 3, 3, 3});
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      std::vector<std::vector<float>> data(4, std::vector<float>(3));
      for (int k = 0; k < 4; ++k) {
        for (auto& x : data[static_cast<std::size_t>(k)]) {
          x = static_cast<float>(k * 10 + w);
        }
        ps.Push(w, k, data[static_cast<std::size_t>(k)]);
      }
      for (int k = 0; k < 4; ++k) {
        ps.Pull(w, k, data[static_cast<std::size_t>(k)]);
        for (float x : data[static_cast<std::size_t>(k)]) {
          ASSERT_FLOAT_EQ(x, static_cast<float>(k * 10) + 0.5f);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

TEST(ThreadedPsTest, PsTrainingMatchesSequential) {
  // Data-parallel MLP training with PS aggregation == sequential full-batch
  // (the same contract the all-reduce engines satisfy).
  const int world = 4;
  const int steps = 6;
  const float lr = 0.2f;
  const auto ds = dnn::MakeSyntheticDataset(32, 6, 2, 7);
  const int shard = ds.num_samples / world;

  dnn::Mlp reference({6, 12, 2}, 42);
  for (int s = 0; s < steps; ++s) {
    reference.Forward(ds.inputs, ds.num_samples);
    reference.Backward(ds.inputs, ds.targets, ds.num_samples);
    reference.SgdStep(lr);
  }

  // Key sizes from the model's gradient tensors.
  dnn::Mlp proto({6, 12, 2}, 42);
  std::vector<std::size_t> key_sizes;
  for (auto g : proto.GradientTensors()) key_sizes.push_back(g.size());
  ThreadedParameterServer ps(world, 2, key_sizes);

  std::vector<std::unique_ptr<dnn::Mlp>> replicas(
      static_cast<std::size_t>(world));
  std::vector<std::thread> threads;
  for (int w = 0; w < world; ++w) {
    threads.emplace_back([&, w] {
      auto model = std::make_unique<dnn::Mlp>(std::vector<int>{6, 12, 2}, 42);
      std::vector<float> x(ds.inputs.begin() + w * shard * 6,
                           ds.inputs.begin() + (w + 1) * shard * 6);
      std::vector<float> y(ds.targets.begin() + w * shard * 2,
                           ds.targets.begin() + (w + 1) * shard * 2);
      for (int s = 0; s < steps; ++s) {
        model->Forward(x, shard);
        model->Backward(x, y, shard);
        auto grads = model->GradientTensors();
        for (std::size_t k = 0; k < grads.size(); ++k) {
          ps.Push(w, static_cast<int>(k), grads[k]);
        }
        for (std::size_t k = 0; k < grads.size(); ++k) {
          ps.Pull(w, static_cast<int>(k), grads[k]);
        }
        model->SgdStep(lr);
      }
      replicas[static_cast<std::size_t>(w)] = std::move(model);
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& replica : replicas) {
    EXPECT_TRUE(replica->ParametersEqual(reference, 2e-4f));
  }
}

}  // namespace
}  // namespace aiacc::baselines
