// Hot-path regression tests: the size-classed BufferPool, the vectorized /
// fused reduction kernels, the zero-allocation steady state of the pooled
// collectives, the persistent multi-channel worker pool, and the shared
// tag-namespace layout. Runs under the tsan preset (the pool and worker
// pool are cross-thread by design).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "collective/tags.h"
#include "collective/threaded.h"
#include "common/buffer_pool.h"
#include "common/rng.h"
#include "common/stats.h"
#include "telemetry/metrics.h"
#include "transport/inproc.h"

namespace aiacc {
namespace {

using collective::Comm;
using collective::ReduceOp;
using common::BufferPool;

// ------------------------------------------------------------ BufferPool --

TEST(BufferPoolTest, AcquireSizesAndClassCapacities) {
  BufferPool pool;
  // ANALYZER-OK(pool-leak: sizing test only inspects capacities — dropped)
  auto tiny = pool.Acquire(1);
  EXPECT_EQ(tiny.size(), 1u);
  EXPECT_EQ(tiny.capacity(), 64u);  // min class
  auto mid = pool.Acquire(65);  // ANALYZER-OK(pool-leak: dropped on purpose)
  EXPECT_EQ(mid.size(), 65u);
  EXPECT_EQ(mid.capacity(), 128u);  // ceil to next power of two
  auto exact = pool.Acquire(1024);  // ANALYZER-OK(pool-leak: dropped on purpose)
  EXPECT_EQ(exact.size(), 1024u);
  EXPECT_EQ(exact.capacity(), 1024u);  // power of two stays in its class
}

TEST(BufferPoolTest, ReleaseThenAcquireHitsSameClass) {
  BufferPool pool;
  auto buffer = pool.Acquire(100);  // class capacity 128
  const float* data_ptr = buffer.data();
  pool.Release(std::move(buffer));
  EXPECT_EQ(pool.FreeBuffers(), 1u);
  // Any request whose class rounds to 128 reuses the same storage.
  auto again = pool.Acquire(128);  // ANALYZER-OK(pool-leak: dropped on purpose)
  EXPECT_EQ(again.data(), data_ptr);
  EXPECT_EQ(pool.FreeBuffers(), 0u);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.returns, 1u);
}

TEST(BufferPoolTest, AcquireKeepsBufferInItsClassForever) {
  BufferPool pool;
  // A buffer acquired at the class boundary then released and re-acquired
  // at a *smaller* size must keep its class capacity (no shrink, no drift).
  auto buffer = pool.Acquire(4096);
  pool.Release(std::move(buffer));
  // ANALYZER-OK(pool-leak: dropped on purpose — class-retention test)
  auto small = pool.Acquire(3000);  // same class (4096)
  EXPECT_EQ(small.capacity(), 4096u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, ForeignBuffersAreFiledByCapacity) {
  BufferPool pool;
  std::vector<float> foreign;
  foreign.reserve(200);  // between classes 128 and 256: files under 128
  foreign.resize(10);
  pool.Release(std::move(foreign));
  EXPECT_EQ(pool.FreeBuffers(), 1u);
  // ANALYZER-OK(pool-leak: dropped on purpose — foreign-buffer reuse test)
  auto reused = pool.Acquire(128);  // fits: 200 >= 128
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_GE(reused.capacity(), 128u);
}

TEST(BufferPoolTest, TooSmallToServeAnyClassIsDiscarded) {
  BufferPool pool;
  std::vector<float> tiny(8);  // capacity < 64: cannot serve any class
  tiny.shrink_to_fit();
  pool.Release(std::move(tiny));
  EXPECT_EQ(pool.FreeBuffers(), 0u);
  EXPECT_EQ(pool.stats().discarded, 1u);
}

TEST(BufferPoolTest, MaxFreePerClassBoundsRetention) {
  BufferPool pool(/*max_free_per_class=*/2);
  std::vector<BufferPool::Buffer> held;
  for (int i = 0; i < 5; ++i) held.push_back(pool.Acquire(64));
  for (auto& buffer : held) pool.Release(std::move(buffer));
  EXPECT_EQ(pool.FreeBuffers(), 2u);
  EXPECT_EQ(pool.stats().discarded, 3u);
}

TEST(BufferPoolTest, ConcurrentAcquireReleaseStress) {
  BufferPool pool;
  constexpr int kThreads = 8;
  constexpr int kRounds = 2000;
  std::atomic<std::uint64_t> churn{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(1000 + t));
      std::vector<BufferPool::Buffer> held;
      for (int i = 0; i < kRounds; ++i) {
        const std::size_t n =
            1 + static_cast<std::size_t>(rng.Uniform(0.0, 5000.0));
        auto buffer = pool.Acquire(n);
        ASSERT_EQ(buffer.size(), n);
        buffer[0] = static_cast<float>(t);
        buffer[n - 1] = static_cast<float>(i);
        churn.fetch_add(1, std::memory_order_relaxed);
        if (i % 3 == 0 && !held.empty()) {
          pool.Release(std::move(held.back()));
          held.pop_back();
        }
        held.push_back(std::move(buffer));
        if (held.size() > 4) {
          pool.Release(std::move(held.front()));
          held.erase(held.begin());
        }
      }
      for (auto& buffer : held) pool.Release(std::move(buffer));
    });
  }
  for (auto& t : threads) t.join();
  const auto stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, churn.load());
  EXPECT_EQ(churn.load(),
            static_cast<std::uint64_t>(kThreads) * kRounds);
}

// ------------------------------------------- vectorized reduction kernels --

float ScalarReduce(float a, float b, ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
    case ReduceOp::kAvg:
      return a + b;
    case ReduceOp::kMin:
      return std::min(a, b);
    case ReduceOp::kMax:
      return std::max(a, b);
    case ReduceOp::kBitAnd:
      return std::bit_cast<float>(std::bit_cast<std::uint32_t>(a) &
                                  std::bit_cast<std::uint32_t>(b));
  }
  return 0.0f;
}

class AccumulateP : public ::testing::TestWithParam<ReduceOp> {};

TEST_P(AccumulateP, MatchesScalarReferenceOnUnalignedOddSpans) {
  const ReduceOp op = GetParam();
  Rng rng(42);
  std::vector<float> acc(1003);
  std::vector<float> in(1003);
  for (auto& x : acc) x = static_cast<float>(rng.Uniform(-100.0, 100.0));
  for (auto& x : in) x = static_cast<float>(rng.Uniform(-100.0, 100.0));

  // Odd offsets and odd lengths: exercises the unrolled body *and* the
  // scalar tail at unaligned starting addresses.
  for (const std::size_t offset : {0u, 1u, 3u, 7u}) {
    for (const std::size_t len : {0u, 1u, 5u, 8u, 9u, 63u, 64u, 65u, 991u}) {
      if (offset + len > acc.size()) continue;
      std::vector<float> expected(acc.begin(), acc.end());
      for (std::size_t i = 0; i < len; ++i) {
        expected[offset + i] =
            ScalarReduce(expected[offset + i], in[offset + i], op);
      }
      std::vector<float> actual(acc.begin(), acc.end());
      collective::Accumulate(std::span<float>(actual).subspan(offset, len),
                             std::span<const float>(in).subspan(offset, len),
                             op);
      // Bitwise agreement: the vector kernel must not reassociate.
      ASSERT_EQ(std::memcmp(actual.data(), expected.data(),
                            actual.size() * sizeof(float)),
                0)
          << "offset " << offset << " len " << len;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, AccumulateP,
                         ::testing::Values(ReduceOp::kSum, ReduceOp::kAvg,
                                           ReduceOp::kMin, ReduceOp::kMax,
                                           ReduceOp::kBitAnd));

TEST(AccumulateTest, EmptySpansAreANoOp) {
  collective::Accumulate({}, {}, ReduceOp::kSum);  // must not crash
  std::vector<float> acc{1.0f, 2.0f};
  collective::Accumulate(std::span<float>(acc).subspan(0, 0),
                         std::span<const float>(), ReduceOp::kMax);
  EXPECT_EQ(acc[0], 1.0f);
  EXPECT_EQ(acc[1], 2.0f);
}

TEST(RecvReduceTest, FusesCheckAndAccumulate) {
  std::vector<float> acc{1.0f, 2.0f, 3.0f};
  std::vector<float> received{10.0f, 20.0f, 30.0f};
  EXPECT_TRUE(collective::RecvReduce(acc, received, ReduceOp::kSum).ok());
  EXPECT_EQ(acc[0], 11.0f);
  EXPECT_EQ(acc[2], 33.0f);
}

TEST(RecvReduceTest, SizeMismatchIsInternalError) {
  std::vector<float> acc{1.0f, 2.0f};
  std::vector<float> received{1.0f};
  const Status st = collective::RecvReduce(acc, received, ReduceOp::kSum);
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(acc[0], 1.0f);  // untouched on mismatch
}

// ---------------------------------------------- zero-allocation steady state

TEST(ZeroAllocTest, PooledRingSteadyStatePerformsNoPayloadAllocations) {
  const int world = 4;
  const std::size_t len = 4096;
  transport::InProcTransport tr(world);
  BufferPool pool;

  auto run_iteration = [&] {
    std::vector<std::thread> threads;
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        std::vector<float> data(len, static_cast<float>(r));
        Comm comm{&tr, r, world, /*tag_base=*/1, /*timeout_ms=*/0, &pool};
        ASSERT_TRUE(collective::RingAllReduce(comm, data, ReduceOp::kSum).ok());
      });
    }
    for (auto& t : threads) t.join();
  };

  run_iteration();  // warm the pool (all misses land here)
  run_iteration();
  // Steady-state allocations = legacy-path allocs (registry counter, must
  // not move: every rank passes a pool) + pool misses (every Acquire must
  // hit a recycled buffer).
  auto& legacy_allocs =
      telemetry::MetricsRegistry::Global().GetCounter("hotpath.payload_allocs");
  const std::uint64_t allocs0 = legacy_allocs.Value();
  const auto pool0 = pool.stats();
  for (int i = 0; i < 3; ++i) run_iteration();
  EXPECT_EQ(legacy_allocs.Value() - allocs0, 0u)
      << "pooled ranks must never take the legacy alloc+copy path";
  const auto pool1 = pool.stats();
  EXPECT_EQ(pool1.misses - pool0.misses, 0u)
      << "steady-state pooled ring must recycle every payload buffer";
  EXPECT_GT(pool1.hits - pool0.hits, 0u);
}

TEST(ZeroAllocTest, PipelinedRingSteadyStateAlsoAllocatesNothing) {
  // Depth > 1 keeps several slices in flight per step; the slice carry
  // window must still recycle every received payload into the next send —
  // zero steady-state allocations survives the pipelining.
  const int world = 4;
  const std::size_t len = 4096;
  transport::InProcTransport tr(world);
  BufferPool pool;

  auto run_iteration = [&] {
    std::vector<std::thread> threads;
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        std::vector<float> data(len, static_cast<float>(r));
        Comm comm{&tr,   r, world, /*tag_base=*/1, /*timeout_ms=*/0,
                  &pool, /*pipeline_depth=*/4};
        ASSERT_TRUE(collective::RingAllReduce(comm, data, ReduceOp::kSum).ok());
      });
    }
    for (auto& t : threads) t.join();
  };

  run_iteration();  // warm the pool (all misses land here)
  run_iteration();
  auto& legacy_allocs =
      telemetry::MetricsRegistry::Global().GetCounter("hotpath.payload_allocs");
  const std::uint64_t allocs0 = legacy_allocs.Value();
  const auto pool0 = pool.stats();
  for (int i = 0; i < 3; ++i) run_iteration();
  EXPECT_EQ(legacy_allocs.Value() - allocs0, 0u)
      << "pipelined pooled ranks must never take the legacy alloc+copy path";
  const auto pool1 = pool.stats();
  EXPECT_EQ(pool1.misses - pool0.misses, 0u)
      << "steady-state pipelined ring must recycle every slice buffer";
  EXPECT_GT(pool1.hits - pool0.hits, 0u);
}

TEST(ZeroAllocTest, LegacyPathCountsOneAllocationPerSend) {
  const int world = 4;
  transport::InProcTransport tr(world);
  auto& legacy_allocs =
      telemetry::MetricsRegistry::Global().GetCounter("hotpath.payload_allocs");
  const std::uint64_t allocs0 = legacy_allocs.Value();
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> data(512, 1.0f);
      Comm comm{&tr, r, world, /*tag_base=*/1, /*timeout_ms=*/0,
                /*pool=*/nullptr};
      ASSERT_TRUE(collective::RingAllReduce(comm, data, ReduceOp::kSum).ok());
    });
  }
  for (auto& t : threads) t.join();
  // Ring all-reduce sends 2(n-1) messages per rank, each a fresh allocation
  // on the legacy path.
  EXPECT_EQ(legacy_allocs.Value() - allocs0,
            static_cast<std::uint64_t>(world) * 2u * (world - 1));
}

// ------------------------------------------ persistent multi-channel pool --

TEST(MultiChannelWorkersTest, RepeatedCallsReuseWorkersInsteadOfSpawning) {
  const int world = 4;
  const int channels = 3;
  const std::size_t len = 1024;

  auto run_once = [&] {
    transport::InProcTransport tr(world);
    std::vector<std::thread> threads;
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        std::vector<float> data(len, static_cast<float>(r + 1));
        Comm comm{&tr, r, world, /*tag_base=*/1};
        ASSERT_TRUE(collective::MultiChannelAllReduce(comm, data,
                                                      ReduceOp::kSum, channels)
                        .ok());
      });
    }
    for (auto& t : threads) t.join();
  };

  run_once();
  const int workers_after_first = collective::MultiChannelWorkerCount();
  // world ranks, channels-1 pool tasks each (channel 0 runs on the caller).
  EXPECT_GE(workers_after_first, world * (channels - 1));
  for (int i = 0; i < 5; ++i) run_once();
  // The pool never grows for a workload already at its peak concurrency —
  // repeated invocations reuse the same workers, no per-call spawning.
  EXPECT_EQ(collective::MultiChannelWorkerCount(), workers_after_first);
}

TEST(PipelinedStressTest, ChannelsTimesDepthInFlightUnderRepetition) {
  // num_channels x pipeline_depth slice payloads in flight per rank, many
  // iterations back to back — the tsan preset runs this to shake races in
  // the in-flight window bookkeeping and the gauge updates.
  const int world = 4;
  const int channels = 2;
  const std::size_t len = 2048;
  transport::InProcTransport tr(world);
  BufferPool pool;
  const std::vector<float> expected(
      len, static_cast<float>(world * (world + 1) / 2));
  for (int iter = 0; iter < 25; ++iter) {
    std::vector<std::thread> threads;
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        std::vector<float> data(len, static_cast<float>(r + 1));
        Comm comm{&tr,   r, world, /*tag_base=*/1, /*timeout_ms=*/0,
                  &pool, /*pipeline_depth=*/4};
        ASSERT_TRUE(collective::MultiChannelAllReduce(comm, data,
                                                      ReduceOp::kSum, channels)
                        .ok());
        ASSERT_EQ(std::memcmp(data.data(), expected.data(),
                              len * sizeof(float)),
                  0);
      });
    }
    for (auto& t : threads) t.join();
  }
}

// --------------------------------------------------- tag namespace layout --

TEST(TagLayoutTest, ChannelNamespacesAreDisjointAndAvoidHeartbeat) {
  // Static guarantees live in collective/tags.h; spot-check the arithmetic.
  for (int base : {collective::kSyncTag, collective::kUnitTagBase, 777}) {
    for (int c = 0; c < 64; ++c) {
      const int channel_base = collective::ChannelTagBase(base, c);
      EXPECT_NE(channel_base, collective::kHeartbeatTag);
      EXPECT_GT(channel_base, base);
      // A whole collective fits before the next channel starts.
      EXPECT_GE(collective::ChannelTagBase(base, c + 1),
                channel_base + collective::kTagsPerCollective);
    }
  }
  EXPECT_GT(collective::kChannelTagStride, collective::kTagsPerCollective);
  EXPECT_GT(collective::kUnitTagStride, collective::kTagsPerCollective);
}

}  // namespace
}  // namespace aiacc
