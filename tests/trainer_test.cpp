// Harness-level tests: topology construction, scaling sweeps, hybrid
// parallelism, and the auto-tuned engine path end to end.
#include <gtest/gtest.h>

#include "trainer/harness.h"

namespace aiacc::trainer {
namespace {

TEST(TopologyBuilderTest, SmallCountsStayOnOneHost) {
  for (int gpus : {1, 2, 4, 8}) {
    const auto topo = MakeTopology(gpus);
    EXPECT_EQ(topo.num_hosts, 1);
    EXPECT_EQ(topo.gpus_per_host, gpus);
    EXPECT_EQ(topo.WorldSize(), gpus);
  }
}

TEST(TopologyBuilderTest, LargeCountsUseFullHosts) {
  const auto topo = MakeTopology(64);
  EXPECT_EQ(topo.num_hosts, 8);
  EXPECT_EQ(topo.gpus_per_host, 8);
  EXPECT_TRUE(topo.IsMultiNode());
}

TEST(TopologyBuilderTest, RankMapping) {
  const auto topo = MakeTopology(32);
  EXPECT_EQ(topo.HostOfRank(0), 0);
  EXPECT_EQ(topo.HostOfRank(7), 0);
  EXPECT_EQ(topo.HostOfRank(8), 1);
  EXPECT_EQ(topo.LocalIndexOfRank(13), 5);
  EXPECT_TRUE(topo.SameHost(8, 15));
  EXPECT_FALSE(topo.SameHost(7, 8));
}

TEST(ScalingSweepTest, EfficiencyInUnitRangeAndMonotoneDecline) {
  RunSpec spec;
  spec.model_name = "resnet50";
  spec.topology = MakeTopology(64);
  spec.engine = EngineKind::kHorovod;
  spec.warmup_iterations = 1;
  spec.measure_iterations = 3;
  const auto points = ScalingSweep(spec, {8, 16, 64});
  ASSERT_EQ(points.size(), 3u);
  double prev_eff = 1.1;
  for (const auto& p : points) {
    EXPECT_GT(p.scaling_efficiency, 0.0);
    EXPECT_LE(p.scaling_efficiency, 1.02);
    EXPECT_LE(p.scaling_efficiency, prev_eff + 1e-9);
    prev_eff = p.scaling_efficiency;
  }
  EXPECT_GT(points[2].throughput, points[0].throughput);
}

TEST(HybridTest, AiaccBeatsKvStoreBaselineMultiNode) {
  HybridSpec spec;
  spec.model_name = "resnet50";
  spec.topology = MakeTopology(32);
  spec.model_shards = 2;
  spec.measure_iterations = 3;
  spec.use_aiacc = true;
  const double aiacc = RunHybrid(spec);
  spec.use_aiacc = false;
  const double kv = RunHybrid(spec);
  EXPECT_GT(aiacc, kv * 1.2);
}

TEST(HybridTest, MoreShardsMeansLessGradientTrafficPerGroup) {
  // 4-way model parallelism still completes and produces sane throughput.
  HybridSpec spec;
  spec.model_name = "resnet50";
  spec.topology = MakeTopology(32);
  spec.model_shards = 4;
  spec.measure_iterations = 3;
  spec.use_aiacc = true;
  const double thr = RunHybrid(spec);
  EXPECT_GT(thr, 0.0);
}

TEST(AutotunedRunTest, FindsConfigAtLeastAsGoodAsDefault) {
  RunSpec tuned;
  tuned.model_name = "vgg16";
  tuned.topology = MakeTopology(32);
  tuned.engine = EngineKind::kAiaccAutotuned;
  tuned.tune_budget = 24;
  tuned.warmup_iterations = 1;
  tuned.measure_iterations = 3;
  const auto tuned_result = ::aiacc::trainer::Run(tuned);

  RunSpec fixed = tuned;
  fixed.engine = EngineKind::kAiacc;
  const auto fixed_result = ::aiacc::trainer::Run(fixed);

  EXPECT_GE(tuned_result.throughput, fixed_result.throughput * 0.98);
  ASSERT_TRUE(tuned_result.tuning.has_value());
  EXPECT_EQ(static_cast<int>(tuned_result.tuning->history.size()), 24);
  EXPECT_EQ(tuned_result.chosen_config,
            tuned_result.tuning->best_config);
}

TEST(AutotunedRunTest, CacheSeedsSecondDeployment) {
  autotune::TuningCache cache;
  RunSpec first;
  first.model_name = "resnet50";
  first.topology = MakeTopology(32);
  first.engine = EngineKind::kAiaccAutotuned;
  first.tune_budget = 16;
  first.warmup_iterations = 1;
  first.measure_iterations = 2;
  first.tuning_cache = &cache;
  (void)::aiacc::trainer::Run(first);
  EXPECT_EQ(cache.size(), 1u);

  // A similar deployment (same model, twice the hosts) starts from the
  // cached configuration.
  RunSpec second = first;
  second.topology = MakeTopology(64);
  const auto r = ::aiacc::trainer::Run(second);
  ASSERT_TRUE(r.tuning.has_value());
  EXPECT_TRUE(r.tuning->seeded_from_cache);
  EXPECT_EQ(r.tuning->history.front().searcher, "cache-seed");
}

TEST(EngineNameTest, AllKindsStringify) {
  for (auto kind : {EngineKind::kAiacc, EngineKind::kAiaccAutotuned,
                    EngineKind::kHorovod, EngineKind::kPytorchDdp,
                    EngineKind::kByteps, EngineKind::kMxnetKvstore}) {
    EXPECT_NE(ToString(kind), "?");
  }
}

}  // namespace
}  // namespace aiacc::trainer
