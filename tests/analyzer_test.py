#!/usr/bin/env python3
"""Self-tests for tools/aiacc_analyzer.

Four layers:
  1. Fixture goldens: each check, run in isolation over its known-bad /
     known-good fixture pair, must report exactly the findings in
     tests/analyzer_fixtures/expected_findings.json and nothing on the
     good file.
  2. Suppression: inline ANALYZER-OK annotations silence findings (same
     line and line-above placements).
  3. Degraded mode: --frontend clang without libclang must skip cleanly
     (exit 0, "SKIPPED" in the output) rather than fail the build —
     forced here via AIACC_ANALYZER_FORCE_NO_LIBCLANG so the test is
     deterministic on hosts that do have libclang.
  4. Frontend agreement: when libclang IS available, the clang frontend
     must reproduce the lite frontend's golden findings (check,file,line)
     over the same fixtures.
  5. Header-lane audit: the tag-collision check cross-checks the tracing
     stamp magic (src/telemetry/trace_context.h) against the reliable
     layer's frame-kind lanes (src/transport/reliable.cpp). A synthetic
     repo whose magic equals a kind value must be flagged; the repaired
     repo must pass.

Exit 0 on success, 1 with a failure list otherwise.
"""
import json
import os
import shutil
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ANALYZE = os.path.join(REPO, "tools", "aiacc_analyzer", "analyze.py")
FIXDIR = os.path.join("tests", "analyzer_fixtures")

CHECK_STEMS = {
    "dropped-status": "dropped_status",
    "pool-leak": "pool_leak",
    "blocking-under-lock": "blocking_under_lock",
    "tag-collision": "tag_collision",
    "codec-record-validation": "codec_validation",
    "priority-ordering": "priority_ordering",
}

failures: list[str] = []


def fail(msg: str) -> None:
    failures.append(msg)
    print("FAIL:", msg)


def run(args, env_extra=None):
    env = dict(os.environ)
    env.update(env_extra or {})
    return subprocess.run([sys.executable, ANALYZE] + args,
                          capture_output=True, text=True, env=env, cwd=REPO)


def findings_of(json_path):
    with open(json_path, encoding="utf-8") as f:
        data = json.load(f)
    return sorted(f"{x['file']}:{x['line']}" for x in data["findings"])


def golden_pass(frontend: str) -> None:
    with open(os.path.join(REPO, FIXDIR, "expected_findings.json"),
              encoding="utf-8") as f:
        expected = {k: sorted(v) for k, v in json.load(f).items()
                    if not k.startswith("_")}
    for check, stem in CHECK_STEMS.items():
        bad = os.path.join(FIXDIR, f"{stem}_bad.cc")
        good = os.path.join(FIXDIR, f"{stem}_good.cc")
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tf:
            out_json = tf.name
        try:
            p = run(["--frontend", frontend, "--no-baseline",
                     "--check", check, "--json", out_json, bad, good])
            if p.returncode != 1:
                fail(f"[{frontend}] {check}: expected exit 1 over bad+good "
                     f"fixtures, got {p.returncode}\n{p.stdout}{p.stderr}")
                continue
            got = findings_of(out_json)
            if got != expected[check]:
                fail(f"[{frontend}] {check}: findings mismatch\n"
                     f"  want: {expected[check]}\n  got:  {got}")
            p_good = run(["--frontend", frontend, "--no-baseline",
                          "--check", check, good])
            if p_good.returncode != 0:
                fail(f"[{frontend}] {check}: good fixture not clean "
                     f"(exit {p_good.returncode})\n"
                     f"{p_good.stdout}{p_good.stderr}")
        finally:
            os.unlink(out_json)


# --- 1. fixture goldens (lite frontend: always available) ---------------
golden_pass("lite")

# --- 2. inline suppression ----------------------------------------------
p = run(["--frontend", "lite", "--no-baseline", "--check", "dropped-status",
         os.path.join(FIXDIR, "suppressed.cc")])
if p.returncode != 0 or "suppressed" not in p.stdout + p.stderr:
    fail(f"suppressed.cc: expected clean exit with suppression note, got "
         f"exit {p.returncode}\n{p.stdout}{p.stderr}")

# --- 3. degraded mode ----------------------------------------------------
p = run(["--frontend", "clang", os.path.join(FIXDIR, "dropped_status_bad.cc")],
        env_extra={"AIACC_ANALYZER_FORCE_NO_LIBCLANG": "1"})
if p.returncode != 0 or "SKIPPED" not in p.stdout + p.stderr:
    fail(f"degraded mode: expected exit 0 + SKIPPED, got exit "
         f"{p.returncode}\n{p.stdout}{p.stderr}")


def header_lane_audit_pass(fake_repo: str) -> None:
    """Layer 5: synthetic repo — real tags.h (so the tag relations stay
    green), a minimal reliable.cpp, and a trace_context.h whose stamp
    magic varies per sub-case. The audit keys off repo files, not the
    analyzed translation units, so any clean .cc probe works as input."""
    os.makedirs(os.path.join(fake_repo, "src", "collective"))
    os.makedirs(os.path.join(fake_repo, "src", "transport"))
    os.makedirs(os.path.join(fake_repo, "src", "telemetry"))
    open(os.path.join(fake_repo, "ROADMAP.md"), "w").close()  # pins repo root
    shutil.copy(os.path.join(REPO, "src", "collective", "tags.h"),
                os.path.join(fake_repo, "src", "collective", "tags.h"))
    with open(os.path.join(fake_repo, "src", "transport", "reliable.cpp"),
              "w", encoding="utf-8") as f:
        f.write("constexpr std::size_t kHeaderLanes = 4;\n"
                "constexpr float kKindData = 1.0f;\n"
                "constexpr float kKindAck = 2.0f;\n")
    stamp_h = os.path.join(fake_repo, "src", "telemetry", "trace_context.h")
    probe = os.path.join(fake_repo, "probe.cc")
    with open(probe, "w", encoding="utf-8") as f:
        f.write("int Probe() { return 0; }\n")

    def write_stamp(magic: str) -> None:
        with open(stamp_h, "w", encoding="utf-8") as f:
            f.write("inline constexpr std::size_t kStampLanes = 8;\n"
                    f"inline constexpr std::uint32_t kStampMagic = {magic};\n")

    write_stamp("2")  # collides with kKindAck
    p = run(["--repo", fake_repo, "--frontend", "lite", "--no-baseline",
             "--check", "tag-collision", probe])
    if p.returncode != 1 or "masquerade" not in p.stdout + p.stderr:
        fail(f"header-lane audit: expected exit 1 + masquerade finding for "
             f"colliding stamp magic, got exit {p.returncode}\n"
             f"{p.stdout}{p.stderr}")

    write_stamp("0x2000000")  # disjoint from the kinds but not float-exact
    p = run(["--repo", fake_repo, "--frontend", "lite", "--no-baseline",
             "--check", "tag-collision", probe])
    if p.returncode != 1 or "float-representable" not in p.stdout + p.stderr:
        fail(f"header-lane audit: expected exit 1 + float-representable "
             f"finding for wide stamp magic, got exit {p.returncode}\n"
             f"{p.stdout}{p.stderr}")

    write_stamp("0xA1ACC")  # the real layout: disjoint and exact
    p = run(["--repo", fake_repo, "--frontend", "lite", "--no-baseline",
             "--check", "tag-collision", probe])
    if p.returncode != 0:
        fail(f"header-lane audit: repaired repo not clean "
             f"(exit {p.returncode})\n{p.stdout}{p.stderr}")

# --- 4. frontend agreement when libclang is present ----------------------
sys.path.insert(0, os.path.join(REPO, "tools", "aiacc_analyzer"))
import frontend_clang  # noqa: E402

if frontend_clang.available():
    golden_pass("clang")
else:
    print("note: libclang not available; frontend-agreement layer skipped")

# --- 5. header-lane audit -------------------------------------------------
with tempfile.TemporaryDirectory() as td:
    header_lane_audit_pass(td)

if failures:
    print(f"\n{len(failures)} analyzer self-test failure(s)")
    sys.exit(1)
print("analyzer self-tests passed")
