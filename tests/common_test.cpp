// Unit tests for the common substrate: status/result, bit vector, queues,
// thread pool, RNG determinism, stats, serialization.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/bitvector.h"
#include "common/queues.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace aiacc {
namespace {

// ---------------------------------------------------------------- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = InvalidArgument("bad size");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.ToString(), "INVALID_ARGUMENT: bad size");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDeadlineExceeded); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

// ------------------------------------------------------------- BitVector ---

TEST(BitVectorTest, SetTestClear) {
  BitVector v(130);
  EXPECT_TRUE(v.None());
  v.Set(0);
  v.Set(64);
  v.Set(129);
  EXPECT_TRUE(v.Test(0));
  EXPECT_TRUE(v.Test(64));
  EXPECT_TRUE(v.Test(129));
  EXPECT_FALSE(v.Test(1));
  EXPECT_EQ(v.Count(), 3u);
  v.Clear(64);
  EXPECT_FALSE(v.Test(64));
  EXPECT_EQ(v.Count(), 2u);
}

TEST(BitVectorTest, MinCombineIsIntersection) {
  BitVector a(10);
  BitVector b(10);
  a.Set(1); a.Set(3); a.Set(5);
  b.Set(3); b.Set(5); b.Set(7);
  a.MinCombine(b);
  EXPECT_EQ(a.SetIndices(), (std::vector<std::size_t>{3, 5}));
}

TEST(BitVectorTest, AllAndReset) {
  BitVector v(65);
  for (std::size_t i = 0; i < 65; ++i) v.Set(i);
  EXPECT_TRUE(v.All());
  v.Reset();
  EXPECT_TRUE(v.None());
  EXPECT_EQ(v.size(), 65u);
}

TEST(BitVectorTest, SetIndicesAscending) {
  BitVector v(200);
  const std::vector<std::size_t> want = {0, 63, 64, 65, 127, 128, 199};
  for (std::size_t i : want) v.Set(i);
  EXPECT_EQ(v.SetIndices(), want);
}

TEST(BitVectorTest, ToStringRendersBits) {
  BitVector v(4);
  v.Set(1);
  v.Set(3);
  EXPECT_EQ(v.ToString(), "0101");
}

// ---------------------------------------------------------------- Queues ---

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 3);
}

TEST(BlockingQueueTest, ShutdownDrainsThenNullopt) {
  BlockingQueue<int> q;
  q.Push(7);
  q.Shutdown();
  EXPECT_EQ(q.Pop(), 7);
  EXPECT_EQ(q.Pop(), std::nullopt);
}

TEST(BlockingQueueTest, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.Push(99);
  });
  EXPECT_EQ(q.Pop(), 99);
  producer.join();
}

TEST(BoundedQueueTest, PushBlocksWhenFull) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(3);
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(BoundedQueueTest, ShutdownUnblocksProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&] { EXPECT_FALSE(q.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Shutdown();
  producer.join();
}

TEST(SpscRingTest, PushPopRoundTrip) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(8));  // full
  for (int i = 0; i < 8; ++i) EXPECT_EQ(ring.TryPop(), i);
  EXPECT_EQ(ring.TryPop(), std::nullopt);
}

TEST(SpscRingTest, ConcurrentProducerConsumer) {
  SpscRing<int> ring(64);
  constexpr int kCount = 5000;
  std::thread producer([&] {
    for (int i = 0; i < kCount;) {
      if (ring.TryPush(i)) {
        ++i;
      } else {
        std::this_thread::yield();  // single-core CI: let the consumer run
      }
    }
  });
  long long sum = 0;
  for (int received = 0; received < kCount;) {
    if (auto v = ring.TryPop()) {
      sum += *v;
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

// ------------------------------------------------------------ ThreadPool ---

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitWithResultReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.SubmitWithResult([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, WaitIdleWithNoWorkReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
}

// ------------------------------------------------------------------- RNG ---

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

// ----------------------------------------------------------------- Stats ---

TEST(StatsTest, RunningStatsBasic) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(StatsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(GeometricMean({2.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0.0);
}

TEST(StatsTest, Percentile) {
  std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.0);
}

TEST(StatsTest, TablePrinterAligns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 22    |"), std::string::npos);
}

TEST(StatsTest, Formatters) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatBytes(2048), "2.00 KiB");
  // 3.75 GB/s = 30 Gbps.
  EXPECT_EQ(FormatRate(30e9 / 8.0), "30.00 Gbps");
}

// ------------------------------------------------------------- Serialize ---

TEST(SerializeTest, RoundTripScalars) {
  ByteWriter w;
  w.WriteU32(7);
  w.WriteI64(-42);
  w.WriteF64(2.5);
  w.WriteString("hello");
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadU32(), 7u);
  EXPECT_EQ(*r.ReadI64(), -42);
  EXPECT_EQ(*r.ReadF64(), 2.5);
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, RoundTripFloatVector) {
  ByteWriter w;
  w.WriteF32Vector({1.5f, -2.5f, 3.5f});
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadF32Vector(), (std::vector<float>{1.5f, -2.5f, 3.5f}));
}

TEST(SerializeTest, TruncationReported) {
  ByteWriter w;
  w.WriteU64(1000);  // claims a long payload that is not there
  ByteReader r(w.bytes());
  auto s = r.ReadString();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kDataLoss);
}

TEST(SerializeTest, EmptyReaderReportsTruncation) {
  std::vector<std::uint8_t> empty;
  ByteReader r(empty);
  EXPECT_FALSE(r.ReadU32().ok());
}

}  // namespace
}  // namespace aiacc
