// End-to-end integration tests exercising the *numeric* training path:
//
//  1. Perseus threaded backend: data-parallel MLP training (real threads,
//     real multi-channel ring all-reduce) must match sequential full-batch
//     training to float tolerance.
//  2. The packing pipeline on real bytes: gradients -> units -> simulated
//     all-reduce with real payloads -> scatter back.
//  3. Fault tolerance: checkpoint/restore resumes training identically;
//     elastic deployment seeds a new worker via parameter broadcast.
//  4. NaN debugging path.
#include <gtest/gtest.h>

#include <cstdio>

#include "collective/simulated.h"
#include "common/sync.h"
#include "core/checkpoint.h"
#include "core/packing.h"
#include "core/perseus.h"
#include "dnn/mlp.h"

namespace aiacc {
namespace {

constexpr int kIn = 6;
constexpr int kOut = 2;

/// Sequential reference: full-batch SGD on the whole dataset.
dnn::Mlp TrainSequential(const dnn::SyntheticDataset& ds, int steps,
                         float lr) {
  dnn::Mlp model({kIn, 12, kOut}, /*seed=*/42);
  for (int s = 0; s < steps; ++s) {
    model.Forward(ds.inputs, ds.num_samples);
    model.Backward(ds.inputs, ds.targets, ds.num_samples);
    model.SgdStep(lr);
  }
  return model;
}

TEST(PerseusIntegrationTest, DataParallelMatchesSequential) {
  const int world = 4;
  const int steps = 10;
  const float lr = 0.2f;
  const auto ds = dnn::MakeSyntheticDataset(32, kIn, kOut, 7);
  const int shard = ds.num_samples / world;

  const dnn::Mlp reference = TrainSequential(ds, steps, lr);

  std::vector<std::unique_ptr<dnn::Mlp>> replicas(world);
  perseus::RunRanks(world, [&](perseus::Session& session) {
    // Every worker starts from the same seed (Horovod: broadcast initial
    // parameters; identical seeding is equivalent here).
    auto model = std::make_unique<dnn::Mlp>(
        std::vector<int>{kIn, 12, kOut}, 42);
    const int rank = session.rank();
    std::vector<float> x(
        ds.inputs.begin() + rank * shard * kIn,
        ds.inputs.begin() + (rank + 1) * shard * kIn);
    std::vector<float> y(
        ds.targets.begin() + rank * shard * kOut,
        ds.targets.begin() + (rank + 1) * shard * kOut);
    for (int s = 0; s < steps; ++s) {
      model->Forward(x, shard);
      model->Backward(x, y, shard);
      // Multi-streamed gradient aggregation (averaged): per-worker
      // per-shard gradients average to the full-batch gradient.
      auto report = session.AllReduceGradients(model->GradientTensors(),
                                               /*num_channels=*/3);
      ASSERT_TRUE(report.Clean());
      model->SgdStep(lr);
    }
    replicas[static_cast<std::size_t>(rank)] = std::move(model);
  });

  for (int r = 0; r < world; ++r) {
    EXPECT_TRUE(replicas[static_cast<std::size_t>(r)]->ParametersEqual(
        reference, 2e-4f))
        << "rank " << r << " diverged from sequential training";
  }
}

TEST(PerseusIntegrationTest, ReplicasStayInSync) {
  // Regardless of the reference, all replicas must hold bit-identical
  // parameters after synchronized steps.
  const int world = 3;
  const auto ds = dnn::MakeSyntheticDataset(30, kIn, kOut, 11);
  const int shard = ds.num_samples / world;
  std::vector<std::unique_ptr<dnn::Mlp>> replicas(world);
  perseus::RunRanks(world, [&](perseus::Session& session) {
    auto model =
        std::make_unique<dnn::Mlp>(std::vector<int>{kIn, 10, kOut}, 1);
    const int rank = session.rank();
    std::vector<float> x(ds.inputs.begin() + rank * shard * kIn,
                         ds.inputs.begin() + (rank + 1) * shard * kIn);
    std::vector<float> y(ds.targets.begin() + rank * shard * kOut,
                         ds.targets.begin() + (rank + 1) * shard * kOut);
    for (int s = 0; s < 5; ++s) {
      model->Forward(x, shard);
      model->Backward(x, y, shard);
      session.AllReduceGradients(model->GradientTensors(), 2);
      model->SgdStep(0.1f);
    }
    replicas[static_cast<std::size_t>(rank)] = std::move(model);
  });
  for (int r = 1; r < world; ++r) {
    EXPECT_TRUE(replicas[static_cast<std::size_t>(r)]->ParametersEqual(
        *replicas[0], 0.0f));
  }
}

TEST(PerseusIntegrationTest, ElasticWorkerJoinsViaBroadcast) {
  // Elastic deployment (§IV): a new worker receives the current parameters
  // from rank 0 before joining training.
  const int world = 4;
  std::vector<bool> matched(world, false);
  perseus::RunRanks(world, [&](perseus::Session& session) {
    // Rank 0 is the trained survivor; other ranks are "new" workers with
    // different (stale) parameters.
    dnn::Mlp model({kIn, 8, kOut},
                   session.rank() == 0 ? 42u : 1000u + session.rank());
    session.BroadcastParameters(model.ParameterTensors(), /*root=*/0);
    dnn::Mlp reference({kIn, 8, kOut}, 42);
    matched[static_cast<std::size_t>(session.rank())] =
        model.ParametersEqual(reference, 0.0f);
  });
  for (int r = 0; r < world; ++r) EXPECT_TRUE(matched[static_cast<std::size_t>(r)]);
}

TEST(PerseusIntegrationTest, NanGradientSkipsAggregation) {
  const int world = 2;
  common::Mutex mu{"test-nan-reports"};
  int nan_reports = 0;
  perseus::RunRanks(world, [&](perseus::Session& session) {
    std::vector<float> good = {1.0f, 2.0f};
    std::vector<float> bad = {std::nanf(""), 1.0f};
    std::vector<std::span<float>> grads;
    grads.emplace_back(good);
    grads.emplace_back(bad);
    auto report = session.AllReduceGradients(grads);
    if (!report.Clean()) {
      common::MutexLock lock(mu);
      ++nan_reports;
    }
  });
  EXPECT_EQ(nan_reports, world);
}

TEST(CheckpointIntegrationTest, ResumeReproducesUninterruptedRun) {
  const auto ds = dnn::MakeSyntheticDataset(16, kIn, kOut, 3);
  const float lr = 0.1f;

  // Uninterrupted: 10 steps.
  dnn::Mlp full = TrainSequential(ds, 10, lr);

  // Interrupted: 6 steps, checkpoint, restore into a fresh model, 4 more.
  dnn::Mlp first = TrainSequential(ds, 6, lr);
  core::Checkpoint ckpt;
  ckpt.iteration = 6;
  for (auto t : first.ParameterTensors()) {
    ckpt.parameters.emplace_back(t.begin(), t.end());
  }
  const std::string path = ::testing::TempDir() + "/resume_test.ckpt";
  ASSERT_TRUE(core::SaveCheckpoint(ckpt, path).ok());

  auto restored = core::LoadCheckpoint(path);
  ASSERT_TRUE(restored.ok());
  dnn::Mlp resumed({kIn, 12, kOut}, /*seed=*/999);  // wrong init, then restore
  auto tensors = resumed.ParameterTensors();
  ASSERT_EQ(tensors.size(), restored->parameters.size());
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    ASSERT_EQ(tensors[i].size(), restored->parameters[i].size());
    std::copy(restored->parameters[i].begin(), restored->parameters[i].end(),
              tensors[i].begin());
  }
  for (int s = 0; s < 4; ++s) {
    resumed.Forward(ds.inputs, ds.num_samples);
    resumed.Backward(ds.inputs, ds.targets, ds.num_samples);
    resumed.SgdStep(lr);
  }
  EXPECT_TRUE(resumed.ParametersEqual(full, 0.0f));
  std::remove(path.c_str());
}

TEST(PackedSimulatedPipelineTest, RealBytesThroughUnitsAndSimRings) {
  // Full AIACC data path on real bytes: per-worker gradient tensors are
  // packed into all-reduce units, each unit's bytes flow through a
  // *simulated* ring all-reduce carrying real payloads, results scatter
  // back — and equal the plain average.
  const int world = 4;
  const std::vector<std::size_t> tensor_elems = {37, 501, 8, 129};

  core::GradientRegistry registry;
  for (std::size_t t = 0; t < tensor_elems.size(); ++t) {
    char name[16];
    std::snprintf(name, sizeof(name), "g%02zu", t);
    ASSERT_TRUE(registry.Register(name, tensor_elems[t] * sizeof(float)).ok());
  }
  registry.Finalize();

  // Per-worker gradient data.
  Rng rng(77);
  std::vector<std::vector<std::vector<float>>> grads(world);
  for (int w = 0; w < world; ++w) {
    for (std::size_t t = 0; t < tensor_elems.size(); ++t) {
      std::vector<float> v(tensor_elems[t]);
      for (float& x : v) x = static_cast<float>(rng.Uniform(-5.0, 5.0));
      grads[static_cast<std::size_t>(w)].push_back(std::move(v));
    }
  }
  // Expected averages.
  std::vector<std::vector<float>> expected;
  for (std::size_t t = 0; t < tensor_elems.size(); ++t) {
    std::vector<float> avg(tensor_elems[t], 0.0f);
    for (int w = 0; w < world; ++w) {
      for (std::size_t i = 0; i < avg.size(); ++i) {
        avg[i] += grads[static_cast<std::size_t>(w)][t][i] / world;
      }
    }
    expected.push_back(std::move(avg));
  }

  core::PackingPlanner planner(600);  // forces merge AND split
  std::vector<int> ready = {0, 1, 2, 3};
  auto units = planner.Pack(registry, ready);
  ASSERT_GT(units.size(), 1u);

  sim::Engine engine;
  net::CloudFabric fabric(engine, net::Topology{2, 2, net::TransportKind::kTcp},
                          net::FabricParams{});
  collective::SimCollectives collectives(fabric);

  // Stage per-worker unit buffers, run simulated all-reduces, scatter back.
  std::vector<std::vector<std::vector<float>>> staged(units.size());
  for (std::size_t u = 0; u < units.size(); ++u) {
    staged[u].resize(static_cast<std::size_t>(world));
    collective::SimCollectives::Unit sim_unit;
    sim_unit.bytes_per_rank = static_cast<double>(units[u].TotalBytes());
    for (int w = 0; w < world; ++w) {
      auto& buf = staged[u][static_cast<std::size_t>(w)];
      buf.resize(units[u].TotalBytes() / sizeof(float));
      std::vector<std::span<const std::byte>> views;
      for (auto& g : grads[static_cast<std::size_t>(w)]) {
        views.emplace_back(std::as_bytes(std::span<const float>(g)));
      }
      core::GatherUnit(units[u], views, std::as_writable_bytes(
                                            std::span<float>(buf)));
      sim_unit.buffers.emplace_back(buf);
    }
    collectives.Start(std::move(sim_unit));
  }
  engine.Run();

  for (int w = 0; w < world; ++w) {
    std::vector<std::span<std::byte>> views;
    for (auto& g : grads[static_cast<std::size_t>(w)]) {
      views.emplace_back(std::as_writable_bytes(std::span<float>(g)));
    }
    for (std::size_t u = 0; u < units.size(); ++u) {
      core::ScatterUnit(units[u],
                        std::as_bytes(std::span<const float>(
                            staged[u][static_cast<std::size_t>(w)])),
                        views);
    }
    for (std::size_t t = 0; t < tensor_elems.size(); ++t) {
      for (std::size_t i = 0; i < tensor_elems[t]; ++i) {
        ASSERT_NEAR(grads[static_cast<std::size_t>(w)][t][i],
                    expected[t][i], 1e-4)
            << "worker " << w << " tensor " << t << " elem " << i;
      }
    }
  }
}

}  // namespace
}  // namespace aiacc
