// Tests for the flow-level network simulator: single-flow timing, max-min
// fair sharing, per-stream caps (the paper's §III utilization behaviour),
// multi-link paths, cancellation, and the CloudFabric link graph.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/fabric.h"
#include "net/network.h"
#include "sim/engine.h"

namespace aiacc::net {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  sim::Engine engine;
  Network network{engine};
};

TEST_F(NetworkTest, SingleFlowTransfersAtCapacity) {
  const LinkIndex link = network.AddLink("l0", 100.0);  // 100 B/s
  double done_at = -1.0;
  network.StartFlow({{link}, 1000.0, Network::kUncapped, 0.0,
                     [&] { done_at = engine.Now(); }});
  engine.Run();
  EXPECT_NEAR(done_at, 10.0, 1e-6);
}

TEST_F(NetworkTest, RateCapLimitsSingleFlow) {
  const LinkIndex link = network.AddLink("l0", 100.0);
  double done_at = -1.0;
  // Cap at 30% of the link: the paper's single-TCP-stream ceiling.
  network.StartFlow({{link}, 300.0, 30.0, 0.0,
                     [&] { done_at = engine.Now(); }});
  engine.Run();
  EXPECT_NEAR(done_at, 10.0, 1e-6);
  EXPECT_NEAR(network.AverageUtilization(link, 0.0, 10.0), 0.30, 1e-6);
}

TEST_F(NetworkTest, ConcurrentCappedStreamsFillTheLink) {
  // 4 streams at cap 0.3 of capacity: link saturates at 100 (max-min gives
  // each 25 < cap 30 ... so actually each gets 25 and the link is full).
  const LinkIndex link = network.AddLink("l0", 100.0);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    network.StartFlow({{link}, 250.0, 30.0, 0.0, [&] { ++done; }});
  }
  engine.Run();
  EXPECT_EQ(done, 4);
  // 4 * 250 bytes over a 100 B/s link = 10 s.
  EXPECT_NEAR(engine.Now(), 10.0, 1e-6);
  EXPECT_NEAR(network.AverageUtilization(link, 0.0, 10.0), 1.0, 1e-6);
}

TEST_F(NetworkTest, ThreeCappedStreamsReachNinetyPercent) {
  // 3 streams capped at 30 on a 100-capacity link: total rate 90.
  const LinkIndex link = network.AddLink("l0", 100.0);
  for (int i = 0; i < 3; ++i) {
    network.StartFlow({{link}, 270.0, 30.0, 0.0, nullptr});
  }
  engine.Run();
  EXPECT_NEAR(engine.Now(), 9.0, 1e-6);  // 270/30
  EXPECT_NEAR(network.AverageUtilization(link, 0.0, 9.0), 0.9, 1e-6);
}

TEST_F(NetworkTest, MaxMinFairnessEqualSplit) {
  const LinkIndex link = network.AddLink("l0", 100.0);
  std::vector<double> done_at(2, -1.0);
  network.StartFlow({{link}, 500.0, Network::kUncapped, 0.0,
                     [&] { done_at[0] = engine.Now(); }});
  network.StartFlow({{link}, 500.0, Network::kUncapped, 0.0,
                     [&] { done_at[1] = engine.Now(); }});
  engine.Run();
  // Both at 50 B/s -> both finish at 10 s.
  EXPECT_NEAR(done_at[0], 10.0, 1e-6);
  EXPECT_NEAR(done_at[1], 10.0, 1e-6);
}

TEST_F(NetworkTest, ShortFlowFreesBandwidthForLongFlow) {
  const LinkIndex link = network.AddLink("l0", 100.0);
  double long_done = -1.0;
  network.StartFlow({{link}, 150.0, Network::kUncapped, 0.0, nullptr});
  network.StartFlow({{link}, 850.0, Network::kUncapped, 0.0,
                     [&] { long_done = engine.Now(); }});
  engine.Run();
  // Phase 1: both at 50 until the short one finishes at t=3 (150/50).
  // Phase 2: long flow has 850-150=700 left at 100 B/s -> finishes t=10.
  EXPECT_NEAR(long_done, 10.0, 1e-6);
}

TEST_F(NetworkTest, MultiLinkPathBottleneckedByTightestLink) {
  const LinkIndex a = network.AddLink("a", 100.0);
  const LinkIndex b = network.AddLink("b", 40.0);
  double done_at = -1.0;
  network.StartFlow({{a, b}, 400.0, Network::kUncapped, 0.0,
                     [&] { done_at = engine.Now(); }});
  engine.Run();
  EXPECT_NEAR(done_at, 10.0, 1e-6);
}

TEST_F(NetworkTest, CrossTrafficOnSharedLinkOnly) {
  // Flow 1 uses links {a, shared}; flow 2 uses {shared}. The shared link
  // splits fairly; link a is not the bottleneck.
  const LinkIndex a = network.AddLink("a", 1000.0);
  const LinkIndex shared = network.AddLink("shared", 100.0);
  double f1 = -1.0;
  double f2 = -1.0;
  network.StartFlow({{a, shared}, 500.0, Network::kUncapped, 0.0,
                     [&] { f1 = engine.Now(); }});
  network.StartFlow({{shared}, 500.0, Network::kUncapped, 0.0,
                     [&] { f2 = engine.Now(); }});
  engine.Run();
  EXPECT_NEAR(f1, 10.0, 1e-6);
  EXPECT_NEAR(f2, 10.0, 1e-6);
}

TEST_F(NetworkTest, StartDelayDefersTransfer) {
  const LinkIndex link = network.AddLink("l0", 100.0);
  double done_at = -1.0;
  network.StartFlow({{link}, 100.0, Network::kUncapped, 2.0,
                     [&] { done_at = engine.Now(); }});
  engine.Run();
  EXPECT_NEAR(done_at, 3.0, 1e-6);
}

TEST_F(NetworkTest, ZeroByteFlowCompletesAfterDelay) {
  double done_at = -1.0;
  (void)network.AddLink("l0", 100.0);
  network.StartFlow({{0}, 0.0, Network::kUncapped, 0.5,
                     [&] { done_at = engine.Now(); }});
  engine.Run();
  EXPECT_NEAR(done_at, 0.5, 1e-9);
}

TEST_F(NetworkTest, CancelFlowDropsCallback) {
  const LinkIndex link = network.AddLink("l0", 100.0);
  bool fired = false;
  const FlowId id = network.StartFlow(
      {{link}, 1000.0, Network::kUncapped, 0.0, [&] { fired = true; }});
  bool other_done = false;
  network.StartFlow({{link}, 100.0, Network::kUncapped, 0.0,
                     [&] { other_done = true; }});
  engine.ScheduleAt(1.0, [&] { EXPECT_TRUE(network.CancelFlow(id)); });
  engine.Run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(other_done);
  // After cancellation the remaining flow gets the full link: it had moved
  // 50 bytes by t=1, finishing (100-50)/100 later => t = 1.5.
  EXPECT_NEAR(engine.Now(), 1.5, 1e-6);
}

TEST_F(NetworkTest, FlowRateReflectsFairShare) {
  const LinkIndex link = network.AddLink("l0", 100.0);
  const FlowId f1 = network.StartFlow(
      {{link}, 1000.0, Network::kUncapped, 0.0, nullptr});
  EXPECT_NEAR(network.FlowRate(f1), 100.0, 1e-9);
  network.StartFlow({{link}, 1000.0, Network::kUncapped, 0.0, nullptr});
  EXPECT_NEAR(network.FlowRate(f1), 50.0, 1e-9);
  engine.Run();
  EXPECT_EQ(network.FlowRate(f1), 0.0);  // finished
}

// ----------------------------------------------------------- CloudFabric ---

TEST_F(NetworkTest, SetLinkCapacityRescalesInFlightFlow) {
  const LinkIndex link = network.AddLink("l0", 100.0);
  double done_at = -1.0;
  network.StartFlow({{link}, 1000.0, Network::kUncapped, 0.0,
                     [&] { done_at = engine.Now(); }});
  // Halve the capacity at t=5 (500 bytes already moved): the remaining 500
  // bytes crawl at 50 B/s -> 10 more seconds.
  engine.ScheduleAfter(5.0, [&] { network.SetLinkCapacity(link, 50.0); });
  engine.Run();
  EXPECT_NEAR(done_at, 15.0, 1e-6);
  EXPECT_NEAR(network.LinkCapacity(link), 50.0, 1e-12);
}

TEST_F(NetworkTest, DegradationWindowSlowsThenRecovers) {
  const LinkIndex link = network.AddLink("l0", 100.0);
  double done_at = -1.0;
  network.StartFlow({{link}, 1000.0, Network::kUncapped, 0.0,
                     [&] { done_at = engine.Now(); }});
  // Flap: [2, 6) at 25% bandwidth. Progress: 200 B by t=2, then 4 s at
  // 25 B/s = 100 B, then 700 B at full rate -> done at 6 + 7 = 13.
  network.ScheduleDegradation(link, /*after=*/2.0, /*duration=*/4.0,
                              /*factor=*/0.25);
  engine.Run();
  EXPECT_NEAR(done_at, 13.0, 1e-6);
  // Capacity fully restored after the window.
  EXPECT_NEAR(network.LinkCapacity(link), 100.0, 1e-9);
}

TEST_F(NetworkTest, OverlappingDegradationsCompose) {
  const LinkIndex link = network.AddLink("l0", 100.0);
  network.ScheduleDegradation(link, 0.0, 10.0, 0.5);
  network.ScheduleDegradation(link, 2.0, 4.0, 0.5);
  double probe = -1.0;
  engine.ScheduleAfter(3.0, [&] { probe = network.LinkCapacity(link); });
  engine.Run();
  EXPECT_NEAR(probe, 25.0, 1e-9);  // both windows active at t=3
  EXPECT_NEAR(network.LinkCapacity(link), 100.0, 1e-9);
}

TEST(CloudFabricTest, BuildsFourLinksPerHost) {
  sim::Engine engine;
  Topology topo{4, 8, TransportKind::kTcp};
  CloudFabric fabric(engine, topo, FabricParams{});
  EXPECT_EQ(fabric.network().NumLinks(), 16);
  EXPECT_EQ(fabric.network().LinkName(fabric.EgressLink(2)), "host2.egress");
}

TEST(CloudFabricTest, PathsIntraVsInter) {
  sim::Engine engine;
  Topology topo{2, 8, TransportKind::kTcp};
  CloudFabric fabric(engine, topo, FabricParams{});
  // Ranks 0 and 3 share host 0.
  EXPECT_EQ(fabric.PathBetween(0, 3),
            (std::vector<LinkIndex>{fabric.NvlinkLink(0)}));
  // Ranks 3 and 8 cross hosts.
  EXPECT_EQ(fabric.PathBetween(3, 8),
            (std::vector<LinkIndex>{fabric.EgressLink(0),
                                    fabric.IngressLink(1)}));
}

TEST(CloudFabricTest, StreamCapMatchesParams) {
  sim::Engine engine;
  FabricParams params;
  CloudFabric tcp(engine, Topology{2, 8, TransportKind::kTcp}, params);
  EXPECT_DOUBLE_EQ(tcp.InterNodeStreamCap(),
                   params.tcp_single_stream_cap * params.tcp_nic_bandwidth);
  sim::Engine engine2;
  CloudFabric rdma(engine2, Topology{2, 8, TransportKind::kRdma}, params);
  EXPECT_DOUBLE_EQ(rdma.InterNodeStreamCap(),
                   params.rdma_single_stream_cap * params.rdma_nic_bandwidth);
  EXPECT_GT(rdma.NicBandwidth(), tcp.NicBandwidth());
}

TEST(CloudFabricTest, SendMessageLatencyAndTransfer) {
  sim::Engine engine;
  FabricParams params;
  CloudFabric fabric(engine, Topology{2, 1, TransportKind::kTcp}, params);
  double done_at = -1.0;
  const double bytes = 1e6;
  fabric.SendMessage(0, 1, bytes, [&] { done_at = engine.Now(); });
  engine.Run();
  const double expected =
      fabric.InterNodeHopCost() + bytes / fabric.InterNodeStreamCap();
  EXPECT_NEAR(done_at, expected, 1e-9);
}

TEST(CloudFabricTest, AllHostsRingPathCoversEveryNic) {
  sim::Engine engine;
  Topology topo{3, 8, TransportKind::kTcp};
  CloudFabric fabric(engine, topo, FabricParams{});
  const auto path = fabric.AllHostsRingPath();
  for (int h = 0; h < 3; ++h) {
    EXPECT_NE(std::find(path.begin(), path.end(), fabric.EgressLink(h)),
              path.end());
    EXPECT_NE(std::find(path.begin(), path.end(), fabric.IngressLink(h)),
              path.end());
  }
}

TEST(CloudFabricTest, SingleStreamUtilizationIsThirtyPercent) {
  // The paper's motivating measurement: one TCP stream drives at most ~30%
  // of the NIC.
  sim::Engine engine;
  FabricParams params;
  CloudFabric fabric(engine, Topology{2, 1, TransportKind::kTcp}, params);
  const double bytes = 1e9;
  double done_at = -1.0;
  Network::FlowSpec spec;
  spec.path = fabric.PathBetween(0, 1);
  spec.bytes = bytes;
  spec.rate_cap = fabric.InterNodeStreamCap();
  spec.on_complete = [&] { done_at = engine.Now(); };
  fabric.network().StartFlow(std::move(spec));
  engine.Run();
  const double utilization =
      fabric.network().AverageUtilization(fabric.EgressLink(0), 0.0, done_at);
  EXPECT_NEAR(utilization, 0.30, 1e-6);
}

}  // namespace
}  // namespace aiacc::net
