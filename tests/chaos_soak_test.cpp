// Chaos-soak: long randomized fault schedules driven through the whole
// three-tier fault stack — tier 1 in-band retransmission
// (transport/reliable.h), tier 2 channel quarantine / rebalance / probation
// (collective/channel_health.h), tier 2.5 engine degradation + unit retries
// (core/degradation.h, threaded_engine.cpp) — asserting bit-exact results
// throughout, with *no* checkpoint recovery involved.
//
// Every schedule is seeded; when a soak cell fails, its FaultSpec is
// serialized to JSON (AIACC_FAULT_DUMP_DIR or the test temp dir) so the
// exact schedule replays under a debugger via transport/fault_schedule.h.
// The seed sweep is bounded by AIACC_CHAOS_SEEDS (CI sets it).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "collective/channel_health.h"
#include "collective/tags.h"
#include "collective/threaded.h"
#include "common/rng.h"
#include "core/degradation.h"
#include "core/threaded_engine.h"
#include "transport/fault_schedule.h"
#include "transport/faulty.h"
#include "transport/inproc.h"
#include "transport/reliable.h"

namespace aiacc {
namespace {

using collective::ChannelHealthTracker;
using collective::ChannelTagBase;
using collective::MultiChannelAllReduce;
using core::CommConfig;
using core::DegradationController;
using core::FailureConfig;
using core::ThreadedAiaccEngine;
using transport::FaultDelivery;
using transport::FaultSpec;
using transport::FaultyTransport;
using transport::InProcTransport;
using transport::LinkFaults;
using transport::ReliableTransport;
using transport::TagFaults;

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

/// Serialize a failing cell's schedule for replay and point at it from the
/// test output (CI uploads the dump dir as an artifact).
void DumpSchedule(const FaultSpec& spec, const std::string& cell) {
  const char* dir = std::getenv("AIACC_FAULT_DUMP_DIR");
  const std::string path = (dir != nullptr && *dir != '\0'
                                ? std::string(dir) + "/"
                                : ::testing::TempDir()) +
                           "fault_schedule_" + cell + ".json";
  const Status st = transport::WriteFaultSchedule(path, spec);
  ADD_FAILURE() << "chaos cell '" << cell << "' failed; schedule "
                << (st.ok() ? "saved to " + path
                            : "dump failed: " + st.ToString());
}

std::vector<std::vector<float>> MakeRankData(int world, std::size_t len,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> data(static_cast<std::size_t>(world));
  for (auto& v : data) {
    v.resize(len);
    for (float& x : v) x = static_cast<float>(rng.Uniform(-6.0, 6.0));
  }
  return data;
}

/// One soak cell: `iters` health-tracked multi-channel all-reduces over the
/// given transport, each compared bit-exactly against the same sequence on
/// a clean transport. Returns false on any mismatch or non-OK status.
bool RunTrackedSequence(transport::Transport& tr, int world, int channels,
                        int depth, int iters, std::uint64_t data_seed,
                        std::int64_t timeout_ms) {
  ChannelHealthTracker::Options hopt;
  hopt.world_size = world;
  ChannelHealthTracker health(hopt);
  std::atomic<bool> all_ok{true};
  for (int it = 0; it < iters && all_ok.load(); ++it) {
    auto ref = MakeRankData(world, 2048, data_seed + static_cast<std::uint64_t>(it));
    {
      InProcTransport clean(world);
      ChannelHealthTracker::Options copt;
      copt.world_size = world;
      ChannelHealthTracker clean_health(copt);
      std::vector<std::thread> threads;
      for (int r = 0; r < world; ++r) {
        threads.emplace_back([&, r] {
          collective::Comm comm{&clean, r, world, collective::kSyncTag, 0};
          comm.pipeline_depth = depth;
          const Status st =
              MultiChannelAllReduce(comm, ref[static_cast<std::size_t>(r)],
                                    collective::ReduceOp::kAvg, channels,
                                    &clean_health);
          if (!st.ok()) all_ok.store(false);
        });
      }
      for (auto& t : threads) t.join();
    }
    auto data =
        MakeRankData(world, 2048, data_seed + static_cast<std::uint64_t>(it));
    std::vector<std::thread> threads;
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        collective::Comm comm{&tr, r, world, collective::kSyncTag, timeout_ms};
        comm.pipeline_depth = depth;
        const Status st =
            MultiChannelAllReduce(comm, data[static_cast<std::size_t>(r)],
                                  collective::ReduceOp::kAvg, channels,
                                  &health);
        if (!st.ok()) all_ok.store(false);
      });
    }
    for (auto& t : threads) t.join();
    if (data != ref) all_ok.store(false);
  }
  return all_ok.load();
}

// ------------------------------------------------------- the soak matrix --

TEST(ChaosSoakTest, CollectiveSoakMatrix) {
  const int seeds = EnvInt("AIACC_CHAOS_SEEDS", 2);
  const int world = 3;
  const struct {
    int channels;
    int depth;
  } shapes[] = {{1, 1}, {2, 4}, {4, 8}};
  for (int s = 0; s < seeds; ++s) {
    for (const double rate : {0.002, 0.01, 0.05}) {
      for (const auto& shape : shapes) {
        FaultSpec spec;
        spec.seed = 9000 + static_cast<std::uint64_t>(s) * 131 +
                    static_cast<std::uint64_t>(rate * 1000) * 7 +
                    static_cast<std::uint64_t>(shape.channels);
        spec.delivery = FaultDelivery::kRaw;
        spec.all_links.drop_prob = rate;
        spec.all_links.dup_prob = rate;
        spec.all_links.reorder_prob = rate;
        spec.all_links.corrupt_prob = rate / 4.0;
        InProcTransport inner(world);
        FaultyTransport faulty(inner, spec);
        ReliableTransport rel(faulty);
        if (!RunTrackedSequence(rel, world, shape.channels, shape.depth,
                                /*iters=*/4, /*data_seed=*/spec.seed,
                                /*timeout_ms=*/30000)) {
          DumpSchedule(spec, "soak_s" + std::to_string(s) + "_r" +
                                 std::to_string(rate) + "_c" +
                                 std::to_string(shape.channels) + "_d" +
                                 std::to_string(shape.depth));
          return;
        }
      }
    }
  }
}

// ------------------------------------- quarantine / probation lifecycle --

// A channel whose tag window goes 100% lossy mid-run is retried in-call
// (correct results throughout), quarantined after repeated failures (plans
// exclude it; its chunks rebalance onto survivors), and — once the faults
// clear — re-admitted through probation.
TEST(ChaosSoakTest, QuarantineAndReadmissionMidRun) {
  const int world = 2;
  const int channels = 3;
  const std::size_t len = 960;
  InProcTransport inner(world);
  FaultSpec spec;  // strict delivery: loss surfaces as a recv deadline
  spec.seed = 31;
  FaultyTransport faulty(inner, spec);

  ChannelHealthTracker::Options hopt;
  hopt.world_size = world;
  hopt.initial_cooldown = 1;
  hopt.probation_successes = 1;
  ChannelHealthTracker health(hopt);

  // Kill channel 1's tags (never channel 0: it is quarantine-exempt). A
  // failed channel relocates to a fresh epoch home per agreed failure, so a
  // fault that models a *persistently bad channel* — not a poisoned tag —
  // must cover its home at every epoch it can reach during the window.
  std::vector<TagFaults> windows;
  auto kill = [&](int lo) {
    TagFaults w;
    w.tag_lo = lo;
    w.tag_hi = lo + collective::kTagsPerCollective - 1;
    w.faults.drop_prob = 1.0;
    windows.push_back(w);
  };
  kill(ChannelTagBase(collective::kSyncTag, 1));
  for (int epoch = 1; epoch <= 16; ++epoch) {
    kill(collective::ChannelEpochTagBase(1, epoch));
  }
  faulty.SetDynamicTagFaults(windows);

  bool saw_quarantine = false;
  auto one_round = [&](int it) {
    auto ref = MakeRankData(world, len, 500 + static_cast<std::uint64_t>(it));
    auto data = ref;
    // Expected: plain average (kAvg over identical per-rank data layouts is
    // deterministic; compute the reference on a clean transport).
    {
      InProcTransport clean(world);
      std::vector<std::thread> threads;
      for (int r = 0; r < world; ++r) {
        threads.emplace_back([&, r] {
          collective::Comm comm{&clean, r, world, collective::kSyncTag, 0};
          const Status st =
              MultiChannelAllReduce(comm, ref[static_cast<std::size_t>(r)],
                                    collective::ReduceOp::kAvg, channels);
          EXPECT_TRUE(st.ok()) << st.ToString();
        });
      }
      for (auto& t : threads) t.join();
    }
    std::vector<std::thread> threads;
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        collective::Comm comm{&faulty, r, world, collective::kSyncTag, 250};
        const Status st =
            MultiChannelAllReduce(comm, data[static_cast<std::size_t>(r)],
                                  collective::ReduceOp::kAvg, channels,
                                  &health);
        EXPECT_TRUE(st.ok()) << "iteration " << it << ": " << st.ToString();
      });
    }
    for (auto& t : threads) t.join();
    // The retry path restores a failed channel's chunk from the snapshot
    // and re-runs it on a fresh namespace: results stay exact even while
    // the channel is actively failing.
    EXPECT_EQ(data, ref) << "iteration " << it;
  };

  for (int it = 0; it < 4; ++it) {
    one_round(it);
    if (health.states()[1].state ==
        ChannelHealthTracker::ChannelState::kQuarantined) {
      saw_quarantine = true;
      break;
    }
  }
  EXPECT_TRUE(saw_quarantine) << "persistent failures never quarantined";

  // Heal the channel; quarantine cooldown -> probation -> full re-admission.
  faulty.ClearDynamicTagFaults();
  bool readmitted = false;
  for (int it = 10; it < 22 && !readmitted; ++it) {
    one_round(it);
    readmitted = health.states()[1].state ==
                 ChannelHealthTracker::ChannelState::kHealthy;
  }
  EXPECT_TRUE(readmitted) << "healed channel never re-admitted";
}

// Quarantine / re-admission decisions racing in-flight slices: a toggler
// thread flips a channel's fault window every few milliseconds while the
// ranks hammer health-tracked collectives. Exercises the tracker's
// plan/report rendezvous against concurrent ring traffic under TSan.
TEST(ChaosSoakTest, QuarantineRaceStress) {
  const int world = 3;
  const int channels = 4;
  const std::size_t len = 512;
  InProcTransport inner(world);
  FaultSpec spec;
  spec.seed = 57;
  FaultyTransport faulty(inner, spec);
  ChannelHealthTracker::Options hopt;
  hopt.world_size = world;
  hopt.initial_cooldown = 1;
  hopt.probation_successes = 1;
  ChannelHealthTracker health(hopt);

  // Follow channel 2 across the epoch homes it relocates to as it fails.
  std::vector<TagFaults> windows;
  auto kill = [&](int lo) {
    TagFaults w;
    w.tag_lo = lo;
    w.tag_hi = lo + collective::kTagsPerCollective - 1;
    w.faults.drop_prob = 1.0;
    windows.push_back(w);
  };
  kill(ChannelTagBase(collective::kSyncTag, 2));
  for (int epoch = 1; epoch <= 32; ++epoch) {
    kill(collective::ChannelEpochTagBase(2, epoch));
  }

  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    bool on = false;
    while (!stop.load()) {
      on = !on;
      if (on) {
        faulty.SetDynamicTagFaults(windows);
      } else {
        faulty.ClearDynamicTagFaults();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
  });

  const int iters = 25;
  for (int it = 0; it < iters; ++it) {
    auto data = MakeRankData(world, len, 700 + static_cast<std::uint64_t>(it));
    auto ref = data;
    {
      InProcTransport clean(world);
      std::vector<std::thread> threads;
      for (int r = 0; r < world; ++r) {
        threads.emplace_back([&, r] {
          collective::Comm comm{&clean, r, world, collective::kSyncTag, 0};
          const Status st =
              MultiChannelAllReduce(comm, ref[static_cast<std::size_t>(r)],
                                    collective::ReduceOp::kAvg, channels);
          EXPECT_TRUE(st.ok()) << st.ToString();
        });
      }
      for (auto& t : threads) t.join();
    }
    std::vector<std::thread> threads;
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        collective::Comm comm{&faulty, r, world, collective::kSyncTag, 150};
        const Status st =
            MultiChannelAllReduce(comm, data[static_cast<std::size_t>(r)],
                                  collective::ReduceOp::kAvg, channels,
                                  &health);
        EXPECT_TRUE(st.ok()) << "iteration " << it << ": " << st.ToString();
      });
    }
    for (auto& t : threads) t.join();
    // Quarantine rebalances chunks onto the survivors, which regroups the
    // ring reductions — so the result may differ from the fixed-plan clean
    // reference by rounding, but never by more, and every rank must agree
    // on it bit-exactly.
    for (int r = 1; r < world; ++r) {
      EXPECT_EQ(data[static_cast<std::size_t>(r)], data[0])
          << "iteration " << it << ": ranks 0 and " << r << " diverged";
    }
    int off = 0;
    for (std::size_t i = 0; i < len; ++i) {
      const float want = ref[0][i];
      const float tol = 1e-4f * std::max(1.0f, std::abs(want));
      if (std::abs(data[0][i] - want) > tol) ++off;
    }
    EXPECT_EQ(off, 0) << "iteration " << it
                      << ": values beyond rounding tolerance";
  }
  stop.store(true);
  toggler.join();
}

// ------------------------------------------------- engine through chaos --

/// Run `iters` iterations of the threaded engine with two per-rank gradient
/// tensors filled from a deterministic (rank, iteration) pattern; returns
/// each rank's final tensor contents (averages scattered in place). Any
/// non-OK WaitIteration stops the run; `*failed` reports it.
std::vector<std::vector<float>> RunEngine(
    int world, CommConfig config, FailureConfig failure, int iters,
    bool* failed,
    const std::function<void(ThreadedAiaccEngine&)>& inspect = {}) {
  static constexpr std::size_t kLenA = 600, kLenB = 130;
  auto engine =
      std::make_unique<ThreadedAiaccEngine>(world, config, failure);
  std::vector<std::vector<float>> out(static_cast<std::size_t>(world));
  std::atomic<bool> any_failed{false};
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> a(kLenA), b(kLenB);
      auto& worker = engine->worker(r);
      ASSERT_TRUE(worker.Register("grad_a", a).ok());
      ASSERT_TRUE(worker.Register("grad_b", b).ok());
      worker.Finalize();
      for (int it = 0; it < iters; ++it) {
        for (std::size_t i = 0; i < a.size(); ++i) {
          a[i] = static_cast<float>(r + 1) * 0.5f +
                 static_cast<float>(it) * 0.125f +
                 static_cast<float>(i) * 0.25f;
        }
        for (std::size_t i = 0; i < b.size(); ++i) {
          b[i] = static_cast<float>(r + 1) * -0.75f +
                 static_cast<float>(it * 3 + static_cast<int>(i)) * 0.0625f;
        }
        worker.PushAll();
        const Status st = worker.WaitIteration();
        if (!st.ok()) {
          any_failed.store(true);
          break;
        }
      }
      auto& result = out[static_cast<std::size_t>(r)];
      result = a;
      result.insert(result.end(), b.begin(), b.end());
    });
  }
  for (auto& t : threads) t.join();
  *failed = any_failed.load();
  if (inspect) inspect(*engine);
  return out;
}

// The acceptance contrast: at a drop rate where the strict seed engine
// aborts, the reliable stack completes every iteration bit-exactly.
TEST(ChaosSoakTest, EngineSurvivesDropChaosWhereSeedAborts) {
  const int world = 2;
  const int iters = 30;
  CommConfig config;
  config.num_streams = 2;
  config.granularity_bytes = 1024;  // several units per iteration

  // Reference: clean engine.
  bool failed = false;
  const auto clean = RunEngine(world, config, FailureConfig{}, iters, &failed);
  ASSERT_FALSE(failed);

  FaultSpec spec;
  spec.seed = 61;
  spec.all_links.drop_prob = 0.01;

  // Seed behaviour (no reliable layer): strict loss -> recv deadline ->
  // abort. This is what the reliability tier exists to prevent.
  FailureConfig fragile;
  fragile.faults = spec;
  fragile.collective_timeout_ms = 300;
  RunEngine(world, config, fragile, iters, &failed);
  EXPECT_TRUE(failed) << "expected the unprotected engine to abort at 1% drop";

  // Reliable + degradation stack: same chaos, full completion, exact data.
  // A short iteration burst can outrun the default 10ms retransmit timer
  // (a drop in the final rto window is repaired after the run ends), so
  // run the full 30-iteration schedule with a tight rto — every drop is
  // then provably repaired in-band, inside the run.
  FailureConfig robust;
  robust.faults = spec;
  robust.collective_timeout_ms = 10000;
  robust.reliable_transport = true;
  robust.reliable_options.rto_initial_ms = 1;
  robust.reliable_options.rto_max_ms = 8;
  robust.degrade_before_abort = true;
  std::uint64_t retransmits = 0;
  std::uint64_t dropped = 0;
  const auto survived =
      RunEngine(world, config, robust, iters, &failed,
                [&](ThreadedAiaccEngine& engine) {
                  ASSERT_NE(engine.reliable_layer(), nullptr);
                  retransmits = engine.reliable_layer()->stats().retransmits;
                  dropped = engine.fault_injector()->stats().dropped;
                });
  EXPECT_FALSE(failed) << "reliable engine aborted under 1% drop";
  EXPECT_EQ(survived, clean) << "repaired traffic changed the numerics";
  EXPECT_GT(dropped, 0u) << "the schedule never dropped a frame";
  EXPECT_GT(retransmits, 0u) << "chaos never exercised the retransmit path";
}

// Tier 2.5: units whose primary tag namespace is blackholed are retried on
// fresh epoch tags at degraded depth; the degradation level rises under the
// pressure and walks back down after clean iterations — and the results
// stay bit-exact throughout (retries re-gather from untouched tensors).
TEST(ChaosSoakTest, EngineDegradesRetriesAndRestores) {
  const int world = 2;
  const int iters = 6;
  CommConfig config;
  config.num_streams = 2;
  config.granularity_bytes = 4096;
  config.pipeline_depth = 4;

  bool failed = false;
  const auto clean = RunEngine(world, config, FailureConfig{}, iters, &failed);
  ASSERT_FALSE(failed);

  // Blackhole the *primary* unit namespace only: first attempts time out,
  // epoch-1 retry tags (collective::kUnitRetryTagBase) are clean.
  FaultSpec spec;
  spec.seed = 62;
  TagFaults window;
  window.tag_lo = collective::kUnitTagBase;
  window.tag_hi = collective::kUnitRetryTagBase - 1;
  window.faults.drop_prob = 1.0;
  spec.per_tag.push_back(window);

  FailureConfig failure;
  failure.faults = spec;
  failure.collective_timeout_ms = 200;
  failure.degrade_before_abort = true;
  failure.degradation.recover_after = 2;
  std::uint64_t pressure = 0;
  int final_level = -1;
  const auto result =
      RunEngine(world, config, failure, iters, &failed,
                [&](ThreadedAiaccEngine& engine) {
                  pressure = engine.FaultPressure();
                  final_level = engine.degradation_level();
                });
  EXPECT_FALSE(failed) << "engine aborted instead of retrying units";
  EXPECT_EQ(result, clean) << "unit retries changed the numerics";
  // The first iteration's failures were repaired in-band...
  EXPECT_GT(pressure, 0u) << "no retries recorded";
  // ...and the clean iterations afterwards walked the level back to zero.
  EXPECT_EQ(final_level, 0);
}

// ----------------------------------------------- degradation controller --

TEST(DegradationControllerTest, LadderRisesCapsAndRestores) {
  DegradationController::Options opt;
  opt.max_level = 2;
  opt.recover_after = 3;
  DegradationController c(opt);
  EXPECT_EQ(c.level(), 0);
  EXPECT_EQ(c.EffectiveDepth(8), 8);
  EXPECT_EQ(c.EffectiveStreams(4), 4);

  c.RecordFailure();
  EXPECT_EQ(c.level(), 1);
  EXPECT_EQ(c.EffectiveDepth(8), 4);
  EXPECT_EQ(c.EffectiveStreams(4), 2);
  c.RecordFailure();
  c.RecordFailure();  // capped
  EXPECT_EQ(c.level(), 2);
  EXPECT_EQ(c.EffectiveDepth(8), 2);
  EXPECT_EQ(c.EffectiveDepth(1), 1);  // floor

  c.RecordSuccess();
  c.RecordSuccess();
  EXPECT_EQ(c.level(), 2) << "restored before the success streak completed";
  c.RecordSuccess();
  EXPECT_EQ(c.level(), 1);
  // A failure resets the streak.
  c.RecordSuccess();
  c.RecordFailure();
  EXPECT_EQ(c.level(), 2);
  for (int i = 0; i < 6; ++i) c.RecordSuccess();
  EXPECT_EQ(c.level(), 0);
  EXPECT_EQ(DegradationController::DepthAt(8, 3), 1);
}

}  // namespace
}  // namespace aiacc
