// Tests of the observability tier (DESIGN.md §7): the wire trace context
// and hybrid logical clocks, the causal tracing transport decorator,
// multi-rank trace merging with clock-skew recovery, and the fault flight
// recorder — including the end-to-end contracts the ISSUE gates on: merged
// flow edges are causally consistent after skew correction, and an
// injected-fault engine run leaves a flight dump naming the failing
// rank/tag.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include "collective/channel_health.h"
#include "collective/tags.h"
#include "collective/threaded.h"
#include "common/buffer_pool.h"
#include "common/logging.h"
#include "core/threaded_engine.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/merge.h"
#include "telemetry/trace_context.h"
#include "transport/faulty.h"
#include "transport/inproc.h"
#include "transport/tracing.h"

namespace aiacc {
namespace {

using telemetry::ChromeTraceDoc;
using telemetry::FlightRecorder;
using telemetry::FlightSeverity;
using telemetry::HybridLogicalClock;
using telemetry::RuntimeTracer;
using telemetry::TraceLevel;
using telemetry::TraceStamp;

// ------------------------------------------------------------ trace context

TEST(TraceContextTest, StampRoundTripAndMagicRejection) {
  TraceStamp stamp;
  stamp.origin = 3;
  stamp.msg_id = 0xBEEF1234u;
  stamp.hlc = 1234567890123456789LL;
  float lanes[telemetry::kStampLanes];
  telemetry::WriteStamp(lanes, stamp);
  const auto parsed = telemetry::ParseStamp(lanes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->origin, 3);
  EXPECT_EQ(parsed->msg_id, 0xBEEF1234u);
  EXPECT_EQ(parsed->hlc, 1234567890123456789LL);

  lanes[0] += 1.0f;  // magic off by one: must not parse
  EXPECT_FALSE(telemetry::ParseStamp(lanes).has_value());
}

TEST(TraceContextTest, StripStampShrinksInPlaceAndLeavesBodyIntact) {
  TraceStamp stamp;
  stamp.origin = 1;
  stamp.msg_id = 42;
  stamp.hlc = 777;
  std::vector<float> frame = {1.0f, 2.0f, 3.0f};
  frame.resize(3 + telemetry::kStampLanes);
  telemetry::WriteStamp(frame.data() + 3, stamp);

  const auto parsed = telemetry::StripStamp(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->msg_id, 42u);
  ASSERT_EQ(frame.size(), 3u);
  EXPECT_EQ(frame[2], 3.0f);

  // An unstamped frame (too short, or trailer does not verify) is left
  // untouched.
  std::vector<float> plain = {4.0f, 5.0f, 6.0f};
  EXPECT_FALSE(telemetry::StripStamp(plain).has_value());
  EXPECT_EQ(plain.size(), 3u);
}

TEST(TraceContextTest, FlowIdsAreUniquePerOriginAndMessage) {
  EXPECT_NE(telemetry::FlowId(0, 7), telemetry::FlowId(1, 7));
  EXPECT_NE(telemetry::FlowId(2, 7), telemetry::FlowId(2, 8));
  // origin -1 would collide with origin 0's namespace if ranks were not
  // offset by one inside FlowId.
  EXPECT_NE(telemetry::FlowId(0, 0), 0u);
}

TEST(TraceContextTest, HlcRunsPastObservedRemoteStamps) {
  HybridLogicalClock clock;
  const std::int64_t t1 = clock.Tick(1000);
  EXPECT_GE(t1, 1000);
  // A remote stamp far ahead of the local physical clock drags the HLC
  // forward: causal order survives clock skew.
  const std::int64_t t2 = clock.Observe(500, 99999);
  EXPECT_GT(t2, 99999);
  // And the clock never runs backward even when physical time reads 0.
  EXPECT_GT(clock.Tick(0), t2);
}

// -------------------------------------------------------- tracing transport

TEST(TracingTransportTest, BindsRecvToSendViaFlowEvents) {
  RuntimeTracer tracer;
  tracer.Enable(TraceLevel::kPhase);
  transport::InProcTransport inner(2);
  transport::TracingOptions opts;
  opts.tracer = &tracer;
  transport::TracingTransport tr(inner, opts);

  tr.Send(0, 1, 7, {1.0f, 2.0f, 3.0f});
  const auto got = tr.Recv(1, 0, 7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (transport::Payload{1.0f, 2.0f, 3.0f}));

  const auto stats = tr.stats();
  EXPECT_EQ(stats.stamped, 1u);
  EXPECT_EQ(stats.stripped, 1u);
  EXPECT_EQ(stats.parse_failures, 0u);
  EXPECT_GT(tr.HlcNow(0), 0);
  EXPECT_GT(tr.HlcNow(1), 0);

  tracer.Disable();
  ChromeTraceDoc doc;
  tracer.Collect(&doc);
  ASSERT_EQ(doc.flows.size(), 2u);
  const auto& a = doc.flows[0];
  const auto& b = doc.flows[1];
  EXPECT_EQ(a.id, b.id);  // both ends derived the id from the stamp alone
  EXPECT_NE(a.start, b.start);
}

TEST(TracingTransportTest, UnstampedStackIsPurePassThrough) {
  RuntimeTracer tracer;
  transport::InProcTransport inner(2);
  transport::TracingOptions opts;
  opts.stamp = false;
  opts.tracer = &tracer;
  transport::TracingTransport tr(inner, opts);
  EXPECT_FALSE(tr.stamping());

  tr.Send(0, 1, 3, {9.0f});
  const auto got = tr.Recv(1, 0, 3);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, transport::Payload{9.0f});
  const auto stats = tr.stats();
  EXPECT_EQ(stats.stamped, 0u);
  EXPECT_EQ(stats.stripped, 0u);
  EXPECT_EQ(stats.parse_failures, 0u);
}

TEST(TracingTransportTest, SteadyStateRecyclesBothSizeClasses) {
  // The stamped wire copy and the released body must both cycle through
  // the pool: after warmup, a fixed communication pattern performs no
  // payload allocations (pool misses stay flat) even with stamping on.
  common::BufferPool pool;
  RuntimeTracer tracer;  // disabled: measures the wire-format cost alone
  transport::InProcTransport inner(2);
  transport::TracingOptions opts;
  opts.pool = &pool;
  opts.tracer = &tracer;
  transport::TracingTransport tr(inner, opts);

  constexpr std::size_t kElems = 256;
  auto round = [&] {
    transport::Payload body = pool.Acquire(kElems);
    std::fill(body.begin(), body.end(), 1.0f);
    tr.Send(0, 1, 5, std::move(body));
    auto got = tr.Recv(1, 0, 5);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), kElems);
    pool.Release(std::move(*got));
  };
  for (int i = 0; i < 4; ++i) round();  // warm both size classes
  const auto warm = pool.stats();
  for (int i = 0; i < 64; ++i) round();
  const auto steady = pool.stats();
  EXPECT_EQ(steady.misses, warm.misses)
      << "tracing steady state allocated fresh buffers";
}

TEST(TracingTransportTest, EngineStacksTracingLayerPerTriState) {
  core::CommConfig config;
  config.num_streams = 1;
  {
    core::FailureConfig failure;
    failure.trace_messages = 0;  // never stamp
    core::ThreadedAiaccEngine engine(2, config, failure);
    EXPECT_EQ(engine.tracing_layer(), nullptr);
    engine.Shutdown();
  }
  {
    core::FailureConfig failure;
    failure.trace_messages = 1;  // always stamp, even with the tracer off
    core::ThreadedAiaccEngine engine(2, config, failure);
    ASSERT_NE(engine.tracing_layer(), nullptr);
    EXPECT_TRUE(engine.tracing_layer()->stamping());
    engine.Shutdown();
  }
}

// ------------------------------------------------------- merged multi-rank

TEST(MergedTraceTest, FlowEdgesRecoverSkewAndStayCausallyConsistent) {
  constexpr int kWorld = 3;
  constexpr int kIters = 3;
  constexpr std::size_t kElems = 1024;
  // Millisecond-scale offsets of both signs; rank 0 pinned at zero.
  const std::vector<double> skew_s = {0.0, 2.0e-3, -1.0e-3};

  auto& tracer = RuntimeTracer::Global();
  tracer.Clear();
  tracer.Enable(TraceLevel::kPhase);

  core::CommConfig config;
  config.num_streams = 2;
  config.granularity_bytes = 1024;
  core::FailureConfig failure;
  failure.trace_messages = 1;
  failure.trace_rank_skew_ns.resize(kWorld);
  for (int r = 0; r < kWorld; ++r) {
    failure.trace_rank_skew_ns[static_cast<std::size_t>(r)] =
        static_cast<std::int64_t>(skew_s[static_cast<std::size_t>(r)] * 1e9);
  }
  {
    core::ThreadedAiaccEngine engine(kWorld, config, failure);
    std::vector<std::thread> threads;
    for (int r = 0; r < kWorld; ++r) {
      threads.emplace_back([&, r] {
        SetThreadLogContext(r, "worker");
        auto& worker = engine.worker(r);
        std::vector<std::vector<float>> tensors(
            2, std::vector<float>(kElems, static_cast<float>(r + 1)));
        for (std::size_t t = 0; t < tensors.size(); ++t) {
          char name[32];
          std::snprintf(name, sizeof(name), "grad%03zu", t);
          ASSERT_TRUE(worker.Register(name, tensors[t]).ok());
        }
        worker.Finalize();
        for (int it = 0; it < kIters; ++it) {
          telemetry::TraceSpan iteration(tracer, TraceLevel::kPhase,
                                         "engine.iteration", "iteration", it);
          worker.PushAll();
          ASSERT_TRUE(worker.WaitIteration().ok());
        }
      });
    }
    for (auto& t : threads) t.join();
    engine.Shutdown();
  }
  tracer.Disable();

  ChromeTraceDoc doc;
  tracer.Collect(&doc);
  EXPECT_EQ(tracer.dropped(), 0u);
  auto by_rank = telemetry::SplitByRankLabel(doc);
  std::vector<telemetry::RankTrace> traces;
  for (int r = 0; r < kWorld; ++r) {
    ChromeTraceDoc rank_doc = std::move(by_rank[r]);
    telemetry::ShiftTimes(rank_doc, skew_s[static_cast<std::size_t>(r)]);
    traces.push_back({r, std::move(rank_doc)});
  }
  const telemetry::MergeReport report = telemetry::MergeTraces(traces);

  EXPECT_GT(report.flow_edges, 0u);
  EXPECT_EQ(report.unmatched_flows, 0u);
  ASSERT_EQ(report.offset_seconds.size(), static_cast<std::size_t>(kWorld));
  for (int r = 0; r < kWorld; ++r) {
    EXPECT_NEAR(report.offset_seconds[static_cast<std::size_t>(r)],
                skew_s[static_cast<std::size_t>(r)], 5e-4)
        << "rank " << r << " offset not recovered";
  }
  // The corrected flow graph is causally consistent: no recv precedes its
  // send by more than the estimator's residual tolerance — which also
  // makes the per-message dependency graph acyclic (every edge moves
  // forward in merged time, up to that residual).
  EXPECT_LE(report.max_causality_violation, 1e-3);
  std::map<std::uint64_t, double> start_ts;
  for (const auto& flow : report.merged.flows) {
    if (flow.start) start_ts.emplace(flow.id, flow.time);
  }
  std::size_t checked = 0;
  for (const auto& flow : report.merged.flows) {
    if (flow.start) continue;
    const auto it = start_ts.find(flow.id);
    ASSERT_NE(it, start_ts.end()) << "dangling flow end in merged trace";
    EXPECT_GE(flow.time, it->second - 1e-3);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

// ---------------------------------------------------------- flight recorder

TEST(FlightRecorderTest, RingKeepsMostRecentEvents) {
  FlightRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    recorder.Record(FlightSeverity::kWarn, "test", "evt", /*rank=*/i);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 7u);
  EXPECT_EQ(events.back().seq, 10u);
  EXPECT_EQ(events.back().rank, 9);
  EXPECT_STREQ(events.back().component, "test");
}

TEST(FlightRecorderTest, ToJsonCarriesTheTaxonomy) {
  FlightRecorder recorder(8);
  recorder.Record(FlightSeverity::kError, "collective.channel", "quarantine",
                  /*rank=*/2, /*channel=*/1, /*tag=*/4096);
  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"component\":\"collective.channel\""),
            std::string::npos);
  EXPECT_NE(json.find("\"channel\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tag\":4096"), std::string::npos);
}

TEST(FlightRecorderTest, EnvDumpFirstFaultWins) {
  const std::string dir = ::testing::TempDir() + "obs_flight_env";
  std::filesystem::create_directories(dir);
  ASSERT_EQ(setenv("AIACC_FLIGHT_DIR", dir.c_str(), 1), 0);
  FlightRecorder recorder(8);
  recorder.Record(FlightSeverity::kFatal, "test", "boom");
  EXPECT_TRUE(recorder.DumpToEnvDir("first").ok());
  EXPECT_TRUE(std::filesystem::exists(dir + "/flight-first.json"));
  // Later faults are echoes of the first: no second file.
  EXPECT_TRUE(recorder.DumpToEnvDir("second").ok());
  EXPECT_FALSE(std::filesystem::exists(dir + "/flight-second.json"));
  unsetenv("AIACC_FLIGHT_DIR");
}

TEST(FlightRecorderTest, ChannelFaultsRecordFailingChannelAndTag) {
  // A multi-channel collective whose channel 1 goes 100% lossy must leave
  // "collective.channel" events in the global ring naming the failing
  // channel and the tag namespace it failed on (the post-mortem the dump
  // carries when such a failure escalates).
  const int world = 2;
  const int channels = 3;
  const std::size_t len = 960;
  transport::InProcTransport inner(world);
  transport::FaultSpec spec;  // strict delivery: loss -> recv deadline
  spec.seed = 31;
  transport::FaultyTransport faulty(inner, spec);

  collective::ChannelHealthTracker::Options hopt;
  hopt.world_size = world;
  hopt.initial_cooldown = 1;
  hopt.probation_successes = 1;
  collective::ChannelHealthTracker health(hopt);

  // Kill channel 1's tags at its home and every epoch it can relocate to
  // (channel 0 is quarantine-exempt).
  std::vector<transport::TagFaults> windows;
  auto kill = [&](int lo) {
    transport::TagFaults w;
    w.tag_lo = lo;
    w.tag_hi = lo + collective::kTagsPerCollective - 1;
    w.faults.drop_prob = 1.0;
    windows.push_back(w);
  };
  kill(collective::ChannelTagBase(collective::kSyncTag, 1));
  for (int epoch = 1; epoch <= 16; ++epoch) {
    kill(collective::ChannelEpochTagBase(1, epoch));
  }
  faulty.SetDynamicTagFaults(windows);

  const std::uint64_t seq0 = FlightRecorder::Global().recorded();
  for (int it = 0; it < 4; ++it) {
    std::vector<std::vector<float>> data(
        static_cast<std::size_t>(world),
        std::vector<float>(len, static_cast<float>(it + 1)));
    std::vector<std::thread> threads;
    for (int r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        collective::Comm comm{&faulty, r, world, collective::kSyncTag, 250};
        const Status st = collective::MultiChannelAllReduce(
            comm, data[static_cast<std::size_t>(r)],
            collective::ReduceOp::kAvg, channels, &health);
        EXPECT_TRUE(st.ok()) << "iteration " << it << ": " << st.ToString();
      });
    }
    for (auto& t : threads) t.join();
    if (health.states()[1].state ==
        collective::ChannelHealthTracker::ChannelState::kQuarantined) {
      break;
    }
  }

  bool named = false;
  for (const auto& event : FlightRecorder::Global().Snapshot()) {
    if (event.seq <= seq0) continue;
    if (std::string_view(event.component) == "collective.channel" &&
        event.channel == 1 && event.tag >= 0) {
      named = true;
      break;
    }
  }
  EXPECT_TRUE(named)
      << "no collective.channel flight event names channel 1 and its tag";
}

TEST(FlightRecorderTest, InjectedFaultAbortLeavesDumpNamingFailure) {
  const std::string dir = ::testing::TempDir() + "obs_flight_abort";
  std::filesystem::create_directories(dir);
  ASSERT_EQ(setenv("AIACC_FLIGHT_DIR", dir.c_str(), 1), 0);

  const int world = 2;
  core::CommConfig config;
  config.num_streams = 1;
  core::FailureConfig failure;
  failure.collective_timeout_ms = 100;
  // Kill the whole unit tag namespace (sync rounds, below kUnitTagBase,
  // stay healthy): the first unit all-reduce deterministically times out,
  // records unit-failed with its tag, and escalates to an engine abort.
  transport::FaultSpec faults;
  transport::TagFaults window;
  window.tag_lo = collective::kUnitTagBase;
  window.tag_hi = collective::kChannelEpochTagBase - 1;
  window.faults.drop_prob = 1.0;
  faults.per_tag.push_back(window);
  failure.faults = faults;
  core::ThreadedAiaccEngine engine(world, config, failure);

  std::vector<std::thread> threads;
  std::vector<Status> last(world, Status::Ok());
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      auto& worker = engine.worker(r);
      std::vector<float> grad(16, 1.0f);
      ASSERT_TRUE(worker.Register("g", grad).ok());
      worker.Finalize();
      worker.PushAll();
      last[static_cast<std::size_t>(r)] = worker.WaitIteration();
    });
  }
  for (auto& t : threads) t.join();
  engine.Shutdown();
  unsetenv("AIACC_FLIGHT_DIR");

  EXPECT_TRUE(engine.aborted());
  for (int r = 0; r < world; ++r) {
    EXPECT_FALSE(last[static_cast<std::size_t>(r)].ok());
  }

  // The abort dumped the ring; the post-mortem names the fatal abort and
  // the failing unit collective with its rank and tag.
  const std::string path = dir + "/flight-abort.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no flight dump at " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"severity\":\"fatal\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"what\":\"abort\""), std::string::npos) << json;
  const std::size_t unit_failed = json.find("\"what\":\"unit-failed\"");
  ASSERT_NE(unit_failed, std::string::npos) << json;
  const std::size_t rank_pos = json.find("\"rank\":", unit_failed);
  ASSERT_NE(rank_pos, std::string::npos);
  EXPECT_GE(std::atoi(json.c_str() + rank_pos + 7), 0)
      << "unit-failed event does not name the failing rank: " << json;
  const std::size_t tag_pos = json.find("\"tag\":", unit_failed);
  ASSERT_NE(tag_pos, std::string::npos);
  EXPECT_GT(std::atoi(json.c_str() + tag_pos + 6), 0)
      << "unit-failed event does not name the failing tag: " << json;
}

}  // namespace
}  // namespace aiacc
