// Auto-tuner tests: each searcher improves over random on a synthetic
// throughput surface, the MAB meta-solver allocates budget sensibly (AUC
// credit + exploration), and the tuning cache's graph-edit-distance lookup
// seeds similar deployments.
#include <gtest/gtest.h>

#include <cmath>

#include "autotune/autotuner.h"
#include "autotune/meta_solver.h"
#include "autotune/searcher.h"
#include "autotune/tuning_cache.h"
#include "dnn/zoo.h"

namespace aiacc::autotune {
namespace {

/// Synthetic objective with a unique optimum at (streams=8, granularity=8MB,
/// ring): smooth in log-space, so model-based searchers can exploit it.
double SyntheticScore(const core::CommConfig& c) {
  const double s = std::log2(static_cast<double>(c.num_streams));
  const double g = std::log2(static_cast<double>(c.granularity_bytes >> 20));
  double score = 100.0;
  score -= (s - 3.0) * (s - 3.0) * 4.0;   // optimum at streams=8
  score -= (g - 3.0) * (g - 3.0) * 3.0;   // optimum at 8 MiB
  if (c.algorithm == collective::Algorithm::kHierarchical) score -= 5.0;
  return score;
}

TEST(SearcherTest, GridCoversSpaceWithoutRepeats) {
  core::CommConfigSpace space;
  GridSearcher grid(space);
  Rng rng(1);
  std::set<std::string> seen;
  for (std::size_t i = 0; i < space.NumPoints(); ++i) {
    seen.insert(grid.Propose(rng).ToString());
  }
  EXPECT_EQ(seen.size(), space.NumPoints());
}

TEST(SearcherTest, GridEarlyProposalsSpanTheSpace) {
  core::CommConfigSpace space;
  GridSearcher grid(space);
  Rng rng(1);
  std::set<int> streams;
  for (int i = 0; i < 16; ++i) streams.insert(grid.Propose(rng).num_streams);
  EXPECT_GE(streams.size(), 4u);  // stratified, not crawling one axis
}

template <typename S>
double RunSearcher(int budget, std::uint64_t seed) {
  core::CommConfigSpace space;
  S searcher(space);
  Rng rng(seed);
  double best = -1e18;
  for (int i = 0; i < budget; ++i) {
    const core::CommConfig cfg = searcher.Propose(rng);
    const double score = SyntheticScore(cfg);
    searcher.Observe({cfg, score});
    best = std::max(best, score);
  }
  return best;
}

TEST(SearcherTest, AllSearchersApproachOptimum) {
  // Optimum is 100; each technique should get close within 40 evaluations.
  EXPECT_GT(RunSearcher<GridSearcher>(40, 2), 80.0);
  EXPECT_GT(RunSearcher<PbtSearcher>(40, 2), 80.0);
  EXPECT_GT(RunSearcher<BayesSearcher>(40, 2), 90.0);
  EXPECT_GT(RunSearcher<HyperbandSearcher>(40, 2), 80.0);
}

TEST(SearcherTest, BayesExploitsSmoothSurface) {
  // With enough observations, Bayesian optimization should find the exact
  // optimum on this smooth surface.
  core::CommConfigSpace space;
  BayesSearcher bayes(space);
  Rng rng(3);
  double best = -1e18;
  core::CommConfig best_cfg;
  for (int i = 0; i < 30; ++i) {
    const core::CommConfig cfg = bayes.Propose(rng);
    const double score = SyntheticScore(cfg);
    bayes.Observe({cfg, score});
    if (score > best) {
      best = score;
      best_cfg = cfg;
    }
  }
  EXPECT_EQ(best_cfg.num_streams, 8);
  EXPECT_EQ(best_cfg.granularity_bytes, 8u << 20);
}

TEST(SearcherTest, RandomAndAnnealingAlsoImprove) {
  EXPECT_GT(RunSearcher<RandomSearcher>(40, 2), 75.0);
  EXPECT_GT(RunSearcher<AnnealingSearcher>(40, 2), 80.0);
}

TEST(MetaSolverTest, ExtendedEnsemblePlugsIn) {
  // §VI: "other search techniques can be added" — the meta-solver handles
  // any arm count; with six arms every one is still exercised.
  core::CommConfigSpace space;
  MetaSolverParams params;
  params.budget = 60;
  MetaSolver solver(MakeExtendedEnsemble(space), params);
  EXPECT_EQ(solver.NumSearchers(), 6);
  while (auto step = solver.NextStep()) {
    solver.Report(*step, SyntheticScore(step->config));
  }
  for (int count : solver.UsageCounts()) EXPECT_GE(count, 1);
  EXPECT_GT(solver.BestScore(), 90.0);
}

TEST(MetaSolverTest, RespectsBudget) {
  core::CommConfigSpace space;
  MetaSolverParams params;
  params.budget = 25;
  MetaSolver solver(MakeDefaultEnsemble(space), params);
  int steps = 0;
  while (auto step = solver.NextStep()) {
    solver.Report(*step, SyntheticScore(step->config));
    ++steps;
  }
  EXPECT_EQ(steps, 25);
  EXPECT_TRUE(solver.BudgetExhausted());
  EXPECT_EQ(solver.NextStep(), std::nullopt);
}

TEST(MetaSolverTest, TriesEveryArmAtLeastOnce) {
  core::CommConfigSpace space;
  MetaSolverParams params;
  params.budget = 30;
  MetaSolver solver(MakeDefaultEnsemble(space), params);
  while (auto step = solver.NextStep()) {
    solver.Report(*step, SyntheticScore(step->config));
  }
  for (int count : solver.UsageCounts()) EXPECT_GE(count, 1);
}

TEST(MetaSolverTest, FindsNearOptimalConfig) {
  core::CommConfigSpace space;
  MetaSolverParams params;
  params.budget = 100;  // the paper's default warm-up budget
  MetaSolver solver(MakeDefaultEnsemble(space), params);
  while (auto step = solver.NextStep()) {
    solver.Report(*step, SyntheticScore(step->config));
  }
  EXPECT_GT(solver.BestScore(), 95.0);
  EXPECT_EQ(solver.BestConfig().num_streams, 8);
}

TEST(MetaSolverTest, AucRewardsImprovingArm) {
  // Arm 0 always improves (monotone scores); arm 1 never does. The AUC
  // credit must favour arm 0.
  core::CommConfigSpace space;
  std::vector<std::unique_ptr<Searcher>> searchers;
  searchers.push_back(std::make_unique<GridSearcher>(space));
  searchers.push_back(std::make_unique<GridSearcher>(space));
  MetaSolverParams params;
  params.budget = 40;
  MetaSolver solver(std::move(searchers), params);
  double score = 0.0;
  for (int i = 0; i < 20; ++i) {
    auto step = solver.NextStep();
    ASSERT_TRUE(step.has_value());
    // Arm 0 delivers steadily rising scores; arm 1 flat zero.
    const double s = step->searcher_index == 0 ? (score += 1.0) : 0.0;
    solver.Report(*step, s);
  }
  EXPECT_GT(solver.Auc(0), solver.Auc(1));
  EXPECT_GT(solver.UsageCounts()[0], solver.UsageCounts()[1]);
}

TEST(MetaSolverTest, ExplorationBonusShrinksWithUse) {
  core::CommConfigSpace space;
  MetaSolverParams params;
  params.budget = 50;
  MetaSolver solver(MakeDefaultEnsemble(space), params);
  // Feed flat scores: priorities reduce to the exploration term, so the
  // solver round-robins all arms instead of fixating.
  while (auto step = solver.NextStep()) {
    solver.Report(*step, 1.0);
  }
  const auto& usage = solver.UsageCounts();
  const int max_use = *std::max_element(usage.begin(), usage.end());
  const int min_use = *std::min_element(usage.begin(), usage.end());
  EXPECT_LE(max_use - min_use, 30);
  EXPECT_GE(min_use, 3);
}

// ------------------------------------------------------------ TuningCache --

TEST(GraphDistanceTest, IdenticalGraphsZero) {
  const auto g = dnn::MakeResNet50().GraphFingerprint();
  EXPECT_DOUBLE_EQ(GraphDistance(g, g), 0.0);
}

TEST(GraphDistanceTest, SimilarModelsCloserThanDifferent) {
  const auto r50 = dnn::MakeResNet50().GraphFingerprint();
  const auto r101 = dnn::MakeResNet101().GraphFingerprint();
  const auto bert = dnn::MakeBertLarge().GraphFingerprint();
  EXPECT_LT(GraphDistance(r50, r101), GraphDistance(r50, bert));
}

TEST(GraphDistanceTest, NormalizedToUnitRange) {
  const auto r50 = dnn::MakeResNet50().GraphFingerprint();
  const auto bert = dnn::MakeBertLarge().GraphFingerprint();
  const double d = GraphDistance(r50, bert);
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST(TopologyDistanceTest, TransportMismatchDominates) {
  net::Topology tcp{4, 8, net::TransportKind::kTcp};
  net::Topology rdma{4, 8, net::TransportKind::kRdma};
  net::Topology bigger_tcp{8, 8, net::TransportKind::kTcp};
  EXPECT_GT(TopologyDistance(tcp, rdma), TopologyDistance(tcp, bigger_tcp));
  EXPECT_DOUBLE_EQ(TopologyDistance(tcp, tcp), 0.0);
}

TEST(TuningCacheTest, ExactHitReturnsStoredConfig) {
  TuningCache cache;
  const auto model = dnn::MakeResNet50();
  net::Topology topo{4, 8, net::TransportKind::kTcp};
  core::CommConfig cfg;
  cfg.num_streams = 12;
  cache.Store(model, topo, cfg, 100.0);
  auto hit = cache.LookupSimilar(model, topo);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->num_streams, 12);
}

TEST(TuningCacheTest, SimilarModelHits) {
  TuningCache cache;
  net::Topology topo{4, 8, net::TransportKind::kTcp};
  core::CommConfig cfg;
  cfg.num_streams = 16;
  cache.Store(dnn::MakeResNet50(), topo, cfg, 100.0);
  // ResNet-101 on a slightly larger cluster is "similar".
  net::Topology topo2{8, 8, net::TransportKind::kTcp};
  auto hit = cache.LookupSimilar(dnn::MakeResNet101(), topo2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->num_streams, 16);
}

TEST(TuningCacheTest, DissimilarModelMisses) {
  TuningCache cache;
  net::Topology topo{4, 8, net::TransportKind::kTcp};
  cache.Store(dnn::MakeResNet50(), topo, core::CommConfig{}, 100.0);
  net::Topology rdma{32, 8, net::TransportKind::kRdma};
  EXPECT_FALSE(cache.LookupSimilar(dnn::MakeBertLarge(), rdma).has_value());
}

TEST(TuningCacheTest, StoreKeepsBestScore) {
  TuningCache cache;
  const auto model = dnn::MakeResNet50();
  net::Topology topo{4, 8, net::TransportKind::kTcp};
  core::CommConfig good;
  good.num_streams = 8;
  core::CommConfig bad;
  bad.num_streams = 1;
  cache.Store(model, topo, good, 100.0);
  cache.Store(model, topo, bad, 50.0);  // worse: must not replace
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.LookupSimilar(model, topo)->num_streams, 8);
}

TEST(TuningCacheTest, SerializeRoundTrip) {
  TuningCache cache;
  net::Topology topo{4, 8, net::TransportKind::kTcp};
  core::CommConfig cfg;
  cfg.num_streams = 12;
  cfg.granularity_bytes = 16u << 20;
  cfg.algorithm = collective::Algorithm::kHierarchical;
  cache.Store(dnn::MakeResNet50(), topo, cfg, 123.0);
  cache.Store(dnn::MakeBertLarge(),
              net::Topology{32, 8, net::TransportKind::kRdma},
              core::CommConfig{}, 77.0);

  TuningCache restored;
  ASSERT_TRUE(restored.Deserialize(cache.Serialize()).ok());
  ASSERT_EQ(restored.size(), 2u);
  auto hit = restored.LookupSimilar(dnn::MakeResNet50(), topo);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->num_streams, 12);
  EXPECT_EQ(hit->granularity_bytes, 16u << 20);
  EXPECT_EQ(hit->algorithm, collective::Algorithm::kHierarchical);
}

TEST(TuningCacheTest, FileRoundTripAndCorruptionRejected) {
  TuningCache cache;
  cache.Store(dnn::MakeResNet50(),
              net::Topology{4, 8, net::TransportKind::kTcp},
              core::CommConfig{}, 10.0);
  const std::string path = ::testing::TempDir() + "/tuning_cache_test.bin";
  ASSERT_TRUE(cache.SaveTo(path).ok());
  TuningCache loaded;
  ASSERT_TRUE(loaded.LoadFrom(path).ok());
  EXPECT_EQ(loaded.size(), 1u);
  std::remove(path.c_str());

  auto bytes = cache.Serialize();
  bytes[0] ^= 0xFF;  // bad magic
  TuningCache corrupt;
  EXPECT_FALSE(corrupt.Deserialize(bytes).ok());
  bytes = cache.Serialize();
  bytes.resize(bytes.size() / 2);  // truncated
  EXPECT_FALSE(corrupt.Deserialize(bytes).ok());
}

TEST(TuningCacheTest, SerializeRoundTripPreservesPriorityAxes) {
  TuningCache cache;
  net::Topology topo{4, 8, net::TransportKind::kTcp};
  core::CommConfig cfg;
  cfg.num_streams = 8;
  cfg.priority_urgent_fraction = 0.5f;
  cfg.priority_aging_ms = 200;
  cache.Store(dnn::MakeResNet50(), topo, cfg, 90.0);

  TuningCache restored;
  ASSERT_TRUE(restored.Deserialize(cache.Serialize()).ok());
  auto hit = restored.LookupSimilar(dnn::MakeResNet50(), topo);
  ASSERT_TRUE(hit.has_value());
  EXPECT_FLOAT_EQ(hit->priority_urgent_fraction, 0.5f);
  EXPECT_EQ(hit->priority_aging_ms, 200);
}

namespace {

/// Hand-builds the common per-entry prefix shared by every readable cache
/// version: name, graph, topology, and the v2-era config fields.
void WriteEntryPrefix(ByteWriter& w, const dnn::ModelDescriptor& model) {
  w.WriteString(model.name());
  const auto graph = model.GraphFingerprint();
  w.WriteU64(graph.size());
  for (const auto& node : graph) {
    w.WriteU8(static_cast<std::uint8_t>(node.kind));
    w.WriteI64(node.param_elements);
  }
  w.WriteI64(4);  // num_hosts
  w.WriteI64(8);  // gpus_per_host
  w.WriteU8(static_cast<std::uint8_t>(net::TransportKind::kTcp));
  w.WriteI64(12);                          // num_streams
  w.WriteU64(16u << 20);                   // granularity_bytes
  w.WriteU8(static_cast<std::uint8_t>(collective::Algorithm::kRing));
  w.WriteU64(1u << 20);                    // min_bucket_bytes
  w.WriteI64(2);                           // pipeline_depth
}

}  // namespace

// Caches written before the scheduler existed (v3: codec but no priority
// axes) must still load — with priority dispatch OFF, because that is the
// dispatch policy their scores were measured under.
TEST(TuningCacheTest, LoadsVersion3EntriesWithFifoDispatch) {
  const auto model = dnn::MakeResNet50();
  ByteWriter w;
  w.WriteU32(0xA1ACCCA5);  // kCacheMagic
  w.WriteU32(3);
  w.WriteU64(1);
  WriteEntryPrefix(w, model);
  w.WriteU8(static_cast<std::uint8_t>(compress::CodecKind::kFp16));
  w.WriteF64(0.01);  // codec.topk_ratio
  w.WriteU64(0);     // no codec overrides
  w.WriteF64(42.0);  // score

  TuningCache cache;
  ASSERT_TRUE(cache.Deserialize(std::move(w).Take()).ok());
  net::Topology topo{4, 8, net::TransportKind::kTcp};
  auto hit = cache.LookupSimilar(model, topo);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->num_streams, 12);
  EXPECT_EQ(hit->codec.kind, compress::CodecKind::kFp16);
  EXPECT_FLOAT_EQ(hit->priority_urgent_fraction, 0.0f);  // FIFO migration
}

// v2 predates both the codec and the scheduler: entries load with the
// uncompressed wire format and FIFO dispatch.
TEST(TuningCacheTest, LoadsVersion2EntriesWithDefaults) {
  const auto model = dnn::MakeResNet50();
  ByteWriter w;
  w.WriteU32(0xA1ACCCA5);  // kCacheMagic
  w.WriteU32(2);
  w.WriteU64(1);
  WriteEntryPrefix(w, model);
  w.WriteF64(42.0);  // score

  TuningCache cache;
  ASSERT_TRUE(cache.Deserialize(std::move(w).Take()).ok());
  net::Topology topo{4, 8, net::TransportKind::kTcp};
  auto hit = cache.LookupSimilar(model, topo);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->codec.kind, compress::CodecKind::kNone);
  EXPECT_FLOAT_EQ(hit->priority_urgent_fraction, 0.0f);
}

TEST(TuningCacheTest, RejectsUnknownFutureVersion) {
  ByteWriter w;
  w.WriteU32(0xA1ACCCA5);
  w.WriteU32(99);
  w.WriteU64(0);
  TuningCache cache;
  const auto st = cache.Deserialize(std::move(w).Take());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnimplemented);
}

TEST(TuningCacheTest, MissingFileIsNotFound) {
  TuningCache cache;
  const auto st = cache.LoadFrom("/nonexistent/cache.bin");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

// -------------------------------------------------------------- Autotune --

TEST(AutotuneTest, TuneFindsGoodConfigAndRecordsHistory) {
  AutotuneOptions options;
  options.solver.budget = 60;
  const auto result = Tune(SyntheticScore, options);
  EXPECT_GT(result.best_score, 90.0);
  EXPECT_EQ(result.history.size(), 60u);
  EXPECT_EQ(result.searcher_names.size(), 4u);
  // History records the running best.
  double best = -1e18;
  for (const auto& rec : result.history) {
    if (rec.new_best) EXPECT_GT(rec.score, best);
    best = std::max(best, rec.score);
  }
}

TEST(AutotuneTest, CacheSeedEvaluatedFirst) {
  TuningCache cache;
  const auto model = dnn::MakeResNet50();
  net::Topology topo{4, 8, net::TransportKind::kTcp};
  core::CommConfig seed;
  seed.num_streams = 8;
  seed.granularity_bytes = 8u << 20;
  cache.Store(model, topo, seed, 1.0);

  AutotuneOptions options;
  options.solver.budget = 10;
  options.cache = &cache;
  options.model = &model;
  options.topology = topo;
  const auto result = Tune(SyntheticScore, options);
  EXPECT_TRUE(result.seeded_from_cache);
  EXPECT_EQ(result.history.front().searcher, "cache-seed");
  EXPECT_EQ(result.history.front().config.num_streams, 8);
  // The seed is the synthetic optimum, so it should win.
  EXPECT_EQ(result.best_config.num_streams, 8);
}

TEST(AutotuneTest, DeterministicAcrossRuns) {
  AutotuneOptions options;
  options.solver.budget = 30;
  const auto a = Tune(SyntheticScore, options);
  const auto b = Tune(SyntheticScore, options);
  EXPECT_EQ(a.best_config, b.best_config);
  EXPECT_EQ(a.best_score, b.best_score);
}

}  // namespace
}  // namespace aiacc::autotune
