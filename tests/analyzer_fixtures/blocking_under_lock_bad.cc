// Known-bad fixture for the blocking-under-lock check.
#include "support.h"

namespace fixtures {

common::Status RecvUnderLock(transport::Transport& tr, common::Mutex* mu) {
  common::MutexLock lock(mu);
  auto r = tr.Recv(0, 1, 2);  // BAD: blocking Recv while `lock` is held
  if (!r.ok()) {
    return r.status();
  }
  return common::Status::Ok();
}

void WaitWithUnrelatedGuard(common::Mutex* a, common::Mutex* b,
                            common::CondVar& cv) {
  common::MutexLock lock_a(a);
  common::MutexLock lock_b(b);
  cv.Wait(lock_b);  // BAD: sleeps while the unrelated lock_a stays held
}

void Helper(transport::Transport& tr) {
  common::Status st = tr.Barrier();
  if (!st.ok()) {
    return;
  }
}

void HelperUnderLock(transport::Transport& tr, common::Mutex* mu) {
  common::MutexLock lock(mu);
  Helper(tr);  // BAD: Helper reaches a blocking Barrier under `lock`
}

}  // namespace fixtures
