// Known-good fixture for the dropped-status check: every Status/Result is
// inspected, explicitly void-discarded, or returned.
#include "support.h"

common::Status DoWork();

namespace fixtures {

common::Status AllInspected(transport::Transport& tr, transport::Payload p) {
  common::Status st = tr.Send(0, 1, 2, std::move(p));
  if (!st.ok()) {
    return st;
  }
  (void)DoWork();  // explicit discard is visible intent
  st = DoWork();   // fine: previous value was inspected above
  return st;
}

common::Status ResultFlow(transport::Transport& tr) {
  auto r = tr.Recv(0, 1, 2);
  if (!r.ok()) {
    return r.status();
  }
  return common::Status::Ok();
}

}  // namespace fixtures
