// Known-good counterpart to priority_ordering_bad.cc: every unit goes
// through the ReadySetScheduler API, and queues of non-unit types stay
// fair game.
#include "support.h"

#include <functional>
#include <utility>

namespace fixtures {

class ScheduledEngine {
 public:
  void Submit(core::AllReduceUnit unit) {
    scheduler_.Push(std::move(unit));  // OK: the sanctioned dispatch path
  }

  bool NextUnit(int stream, core::AllReduceUnit& out) {
    return scheduler_.PopFor(stream, out);  // OK
  }

  void Defer(std::function<void()> task) {
    tasks_.Push(std::move(task));  // OK: not a unit queue
  }

 private:
  core::ReadySetScheduler scheduler_;
  common::BlockingQueue<std::function<void()>> tasks_;
};

}  // namespace fixtures
