// Known-bad fixture for the codec-record-validation check (the check
// keys on "codec" in the filename / src/compress paths).
#include "support.h"

namespace fixtures {

void UseBeforeCheck(const std::vector<float>& wire, std::vector<float>& dst) {
  common::Status st = compress::SparseDecodeAccumulate(0, wire, dst);
  dst[0] += 1.0f;  // BAD: payload touched before st is inspected
  if (!st.ok()) {
    return;
  }
}

void DroppedValidation(const std::vector<float>& wire,
                       std::vector<float>& dst) {
  compress::SparseDecodeAccumulate(0, wire, dst);  // BAD: Status dropped
}

}  // namespace fixtures
