// Known-bad fixture for the priority-ordering check (the check keys on
// "priority_ordering" in the filename / src/core paths): ready-set
// dispatch that bypasses ReadySetScheduler::Push/PopFor.
#include "support.h"

#include <utility>

namespace fixtures {

class FifoEngine {
 public:
  void Submit(core::AllReduceUnit unit) {
    unit_queue_.Push(std::move(unit));  // BAD: FIFO push, no priority
  }

  bool NextUnit(core::AllReduceUnit& out) {
    return unit_queue_.Pop(out);  // BAD: pop outside the ready set
  }

 private:
  common::BlockingQueue<core::AllReduceUnit> unit_queue_;  // BAD: raw queue
};

void SideQueue(core::AllReduceUnit unit,
               common::BlockingQueue<core::AllReduceUnit>* unit_queue) {
  unit_queue->Push(std::move(unit));  // BAD: dispatch through a raw pointer
}

}  // namespace fixtures
