// Known-good fixture for the pool-leak check — mirrors the repo's real
// buffer disciplines (threaded.cpp): reuse-then-pool with move-out via
// return, conditional acquire paired with conditional release (the
// 3-state lattice must treat this as MAYBE, not a leak), and release
// through a bound helper lambda.
#include "support.h"

namespace fixtures {

common::Buffer MoveOutViaReturn(common::BufferPool* pool, std::size_t n) {
  common::Buffer reuse = pool->Acquire(n);
  reuse[0] = 0.0f;
  return reuse;  // ownership transferred to the caller
}

void ConditionalAcquireRelease(common::BufferPool* pool, bool big) {
  common::Buffer scratch;
  if (big) {
    scratch = pool->Acquire(4096);
  }
  if (big) {
    pool->Release(std::move(scratch));
  }
}

void MoveIntoCall(common::BufferPool* pool) {
  common::Buffer buf = pool->Acquire(16);
  pool->Release(std::move(buf));
  buf = pool->Acquire(32);  // re-acquire into the moved-from local is fine
  pool->Release(std::move(buf));
}

void ReleaseViaLambda(common::BufferPool* pool) {
  common::Buffer buf = pool->Acquire(16);
  auto release_all = [&] { pool->Release(std::move(buf)); };
  release_all();
}

}  // namespace fixtures
