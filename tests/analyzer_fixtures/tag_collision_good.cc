// Known-good fixture for the tag-collision check: offsets stay inside
// one collective's block, and runtime-dependent offsets are out of scope
// for symbolic evaluation.
#include "support.h"

namespace fixtures {

common::Status OffsetsInRange(transport::Transport& tr, int tag_base,
                              transport::Payload a, transport::Payload b) {
  common::Status st = tr.Send(0, 1, tag_base + 1, std::move(a));
  if (!st.ok()) {
    return st;
  }
  st = tr.Send(0, 1, tag_base + (2 - 1) + 1, std::move(b));
  return st;
}

common::Status RuntimeOffset(transport::Transport& tr, int tag_base,
                             int step, transport::Payload p) {
  // `step` is not a constant: the symbolic evaluator must skip, not flag.
  common::Status st = tr.Send(0, 1, tag_base + step, std::move(p));
  return st;
}

}  // namespace fixtures
