// Fixture for inline suppression: the same dropped-Status shapes as the
// bad fixture, silenced with ANALYZER-OK annotations (same line and
// line-above placements both must work).
#include "support.h"

common::Status DoWork();

namespace fixtures {

void SuppressedSameLine(transport::Transport& tr, transport::Payload p) {
  DoWork();  // ANALYZER-OK(dropped-status: fire-and-forget warmup probe)
  // ANALYZER-OK(dropped-status: send result intentionally ignored here)
  tr.Send(0, 1, 2, std::move(p));
}

}  // namespace fixtures
