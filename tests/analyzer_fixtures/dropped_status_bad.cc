// Known-bad fixture for the dropped-status check.
#include "support.h"

common::Status DoWork();

namespace fixtures {

void BareDiscards(transport::Transport& tr, transport::Payload p) {
  DoWork();                        // BAD: Status discarded
  tr.Send(0, 1, 2, std::move(p));  // BAD: Status discarded
}

void OverwrittenBeforeInspection() {
  common::Status st = DoWork();
  st = DoWork();  // BAD: previous Status never inspected
  if (!st.ok()) {
    return;
  }
}

}  // namespace fixtures
