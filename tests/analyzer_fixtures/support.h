// Minimal self-contained stubs mirroring the repo's idioms so analyzer
// fixtures compile standalone under the clang frontend (no repo headers,
// no link step). The lite frontend never needs this header — it resolves
// Send/Recv/Acquire/... signatures from the real src/ tree — but the
// names and return types here MUST stay in sync with src/common and
// src/transport or the two frontends would disagree on the fixtures.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace common {

class Status {
 public:
  Status() = default;
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] int code() const { return 0; }
  static Status Ok() { return Status(); }

 private:
  bool ok_ = true;
};

template <typename T>
class Result {
 public:
  Result(T v) : value_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  [[nodiscard]] bool ok() const { return true; }
  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] T& value() { return value_; }

 private:
  Status status_;
  T value_;
};

using Buffer = std::vector<float>;

class BufferPool {
 public:
  [[nodiscard]] Buffer Acquire(std::size_t n) { return Buffer(n); }
  void Release(Buffer&& b) { b.clear(); }
};

// Same queue shape as src/common/queues.h; only the operations the
// priority-ordering check keys on.
template <typename T>
class BlockingQueue {
 public:
  void Push(T value) { (void)value; }
  bool Pop(T& out) {
    (void)out;
    return false;
  }
};

class Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu) : mu_(mu) {}
  void Unlock() { mu_ = nullptr; }

 private:
  Mutex* mu_;
};

class CondVar {
 public:
  void Wait(MutexLock& lock) { (void)lock; }
  void NotifyAll() {}
};

}  // namespace common

namespace transport {

using Payload = std::vector<float>;

class Transport {
 public:
  common::Status Send(int src, int dst, int tag, Payload p);
  common::Result<Payload> Recv(int rank, int src, int tag);
  common::Status Barrier();
};

}  // namespace transport

namespace core {

// Mirrors src/core/packing.h's dispatch unit closely enough for the
// priority-ordering fixtures.
struct AllReduceUnit {
  std::vector<float> payload;
};

// The sanctioned dispatch surface (src/core/scheduler.h): the good
// fixture routes every unit through it.
class ReadySetScheduler {
 public:
  void Push(AllReduceUnit unit) { (void)unit; }
  bool PopFor(int stream, AllReduceUnit& out) {
    (void)stream;
    (void)out;
    return false;
  }
};

}  // namespace core

namespace compress {

// Same validation-Status shape as src/compress/codec.h.
common::Status SparseDecodeAccumulate(int spec,
                                      const std::vector<float>& wire,
                                      std::vector<float>& dst);

}  // namespace compress
