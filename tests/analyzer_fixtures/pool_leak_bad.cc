// Known-bad fixture for the pool-leak check.
#include "support.h"

namespace fixtures {

void DefiniteLeak(common::BufferPool* pool) {
  common::Buffer buf = pool->Acquire(64);
  buf[0] = 1.0f;
}  // BAD: buf held on every path out of its scope

void LeakOnEarlyReturn(common::BufferPool* pool, bool flag) {
  common::Buffer buf = pool->Acquire(64);
  if (flag) {
    return;  // BAD: early return while buf is still held
  }
  pool->Release(std::move(buf));
}

void DoubleRelease(common::BufferPool* pool) {
  common::Buffer buf = pool->Acquire(8);
  pool->Release(std::move(buf));
  pool->Release(std::move(buf));  // BAD: moved-from buffer released again
}

}  // namespace fixtures
