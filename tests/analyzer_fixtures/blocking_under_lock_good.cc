// Known-good fixture for the blocking-under-lock check: guard scopes end
// before the transport call, early Unlock(), waiting on the guard the
// CondVar was given, and lambdas as separate lock scopes.
#include "support.h"

namespace fixtures {

common::Status RecvAfterScope(transport::Transport& tr, common::Mutex* mu,
                              int* counter) {
  {
    common::MutexLock lock(mu);
    ++*counter;
  }
  auto r = tr.Recv(0, 1, 2);  // guard already dead
  if (!r.ok()) {
    return r.status();
  }
  return common::Status::Ok();
}

common::Status UnlockThenSend(transport::Transport& tr, common::Mutex* mu,
                              transport::Payload p) {
  common::MutexLock lock(mu);
  lock.Unlock();
  common::Status st = tr.Send(0, 1, 2, std::move(p));
  return st;
}

void WaitOnOwnGuard(common::Mutex* mu, common::CondVar& cv) {
  common::MutexLock lock(mu);
  cv.Wait(lock);  // waiting on the guard it was handed: fine
}

void LambdaIsItsOwnScope(transport::Transport& tr, common::Mutex* mu) {
  common::MutexLock lock(mu);
  // The lambda body runs later, without this guard: not a finding here.
  auto deferred = [&tr] {
    common::Status st = tr.Barrier();
    if (!st.ok()) {
      return;
    }
  };
  lock.Unlock();
  deferred();
}

}  // namespace fixtures
