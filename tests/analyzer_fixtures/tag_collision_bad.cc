// Known-bad fixture for the tag-collision check: constant-foldable
// `tag_base + expr` offsets that spill past kTagsPerCollective (= 3 in
// src/collective/tags.h) into the next channel's namespace.
#include "support.h"

namespace fixtures {

common::Status OffsetTooLarge(transport::Transport& tr, int tag_base,
                              transport::Payload p) {
  common::Status st = tr.Send(0, 1, tag_base + 3, std::move(p));  // BAD
  return st;
}

common::Status FoldedOffsetTooLarge(transport::Transport& tr, int tag_base,
                                    transport::Payload p) {
  common::Status st = tr.Send(0, 1, tag_base + 2 * 2, std::move(p));  // BAD
  return st;
}

}  // namespace fixtures
