// Known-good fixture for the codec-record-validation check: the
// validation Status gates every touch of the decoded payload, including
// the repo's decode-in-loop-condition idiom.
#include "support.h"

namespace fixtures {

common::Status CheckThenUse(const std::vector<float>& wire,
                            std::vector<float>& dst) {
  common::Status st = compress::SparseDecodeAccumulate(0, wire, dst);
  if (!st.ok()) {
    return st;
  }
  dst[0] += 1.0f;
  return common::Status::Ok();
}

common::Status ReturnDirectly(const std::vector<float>& wire,
                              std::vector<float>& dst) {
  return compress::SparseDecodeAccumulate(0, wire, dst);
}

common::Status LoopConditionChecks(const std::vector<float>& wire,
                                   std::vector<float>& dst) {
  common::Status st;
  for (int i = 0; i < 4 && st.ok(); ++i) {
    st = compress::SparseDecodeAccumulate(0, wire, dst);
  }
  return st;
}

}  // namespace fixtures
