// ReliableTransport tests: exactly-once in-order delivery through every
// fault mix the chaos layer can throw (drop/dup/reorder/corrupt/straggler,
// separately and combined), bidirectional traffic on one tag, strict
// TryRecv, deadline hand-off to the upper tiers, zero steady-state buffer
// allocations, collectives running bit-exact through chaos at every
// pipeline depth and channel count, and the fault-schedule JSON replay
// round-trip.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "collective/tags.h"
#include "collective/threaded.h"
#include "common/buffer_pool.h"
#include "common/rng.h"
#include "transport/fault_schedule.h"
#include "transport/faulty.h"
#include "transport/inproc.h"
#include "transport/reliable.h"

namespace aiacc::transport {
namespace {

Payload MakeBody(int i, std::size_t lanes) {
  Payload body(lanes);
  for (std::size_t j = 0; j < lanes; ++j) {
    body[j] = static_cast<float>(i) + 0.25f * static_cast<float>(j);
  }
  return body;
}

/// Send `n` bodies 0 -> 1 through Reliable(Faulty-raw(spec)) and require the
/// receiver to observe exactly the sent stream, in order. Returns the
/// reliable layer's stats for mix-specific assertions.
ReliableStats RunStream(FaultSpec spec, int n, ReliableOptions opts = {}) {
  spec.delivery = FaultDelivery::kRaw;
  InProcTransport inner(2);
  FaultyTransport faulty(inner, spec);
  ReliableTransport rel(faulty, opts);
  const std::size_t lanes = 8;
  std::thread sender([&] {
    for (int i = 0; i < n; ++i) {
      rel.Send(0, 1, 3, MakeBody(i, lanes));
    }
  });
  [&]() {
    for (int i = 0; i < n; ++i) {
      auto p = rel.Recv(1, 0, 3);
      ASSERT_TRUE(p.ok()) << "message " << i << ": " << p.status().ToString();
      EXPECT_EQ(*p, MakeBody(i, lanes)) << "message " << i;
    }
  }();
  sender.join();
  // Nothing extra may ever surface (exactly-once).
  EXPECT_EQ(rel.TryRecv(1, 0, 3), std::nullopt);
  const ReliableStats s = rel.stats();
  EXPECT_EQ(s.delivered, static_cast<std::uint64_t>(n));
  return s;
}

TEST(ReliableTransportTest, CleanChannelIsTransparent) {
  const ReliableStats s = RunStream(FaultSpec{}, 50);
  EXPECT_EQ(s.retransmits, 0u);
  EXPECT_EQ(s.crc_failures, 0u);
  EXPECT_EQ(s.duplicates_discarded, 0u);
}

TEST(ReliableTransportTest, ExactlyOnceUnderDrops) {
  FaultSpec spec;
  spec.seed = 11;
  spec.all_links.drop_prob = 0.25;
  const ReliableStats s = RunStream(spec, 300);
  EXPECT_GT(s.retransmits, 0u);
}

TEST(ReliableTransportTest, ExactlyOnceUnderDuplication) {
  FaultSpec spec;
  spec.seed = 12;
  spec.all_links.dup_prob = 0.3;
  const ReliableStats s = RunStream(spec, 300);
  EXPECT_GT(s.duplicates_discarded, 0u);
}

TEST(ReliableTransportTest, ExactlyOnceUnderReordering) {
  FaultSpec spec;
  spec.seed = 13;
  spec.all_links.reorder_prob = 0.3;
  RunStream(spec, 300);
}

TEST(ReliableTransportTest, ExactlyOnceUnderCorruption) {
  FaultSpec spec;
  spec.seed = 14;
  spec.all_links.corrupt_prob = 0.2;
  const ReliableStats s = RunStream(spec, 300);
  // A flipped bit must be caught by the CRC and healed by retransmission.
  EXPECT_GT(s.crc_failures, 0u);
  EXPECT_GT(s.retransmits, 0u);
}

TEST(ReliableTransportTest, ExactlyOnceUnderStraggler) {
  FaultSpec spec;
  spec.seed = 15;
  spec.straggler_rank = 0;
  spec.straggler_delay_ms = 1.0;
  RunStream(spec, 60);
}

TEST(ReliableTransportTest, ExactlyOnceUnderCombinedChaos) {
  FaultSpec spec;
  spec.seed = 16;
  spec.all_links.drop_prob = 0.1;
  spec.all_links.dup_prob = 0.1;
  spec.all_links.reorder_prob = 0.1;
  spec.all_links.corrupt_prob = 0.05;
  const ReliableStats s = RunStream(spec, 400);
  EXPECT_GT(s.retransmits, 0u);
}

// AllToAll runs both directions of a rank pair on one tag; the kind lane
// must demux each side's acks from the other side's data.
TEST(ReliableTransportTest, BidirectionalTrafficOnOneTag) {
  FaultSpec spec;
  spec.seed = 21;
  spec.delivery = FaultDelivery::kRaw;
  spec.all_links.drop_prob = 0.15;
  spec.all_links.dup_prob = 0.1;
  InProcTransport inner(2);
  FaultyTransport faulty(inner, spec);
  ReliableTransport rel(faulty);
  const int n = 150;
  auto side = [&](int me, int peer) {
    std::thread sender([&, me, peer] {
      for (int i = 0; i < n; ++i) rel.Send(me, peer, 9, MakeBody(i, 6));
    });
    for (int i = 0; i < n; ++i) {
      auto p = rel.Recv(me, peer, 9);
      ASSERT_TRUE(p.ok());
      EXPECT_EQ(*p, MakeBody(i, 6));
    }
    sender.join();
  };
  std::thread t0([&] { side(0, 1); });
  std::thread t1([&] { side(1, 0); });
  t0.join();
  t1.join();
}

// Reliable TryRecv never skips a gap: a dropped-but-retransmitting frame
// stalls delivery rather than letting a later frame jump the queue.
TEST(ReliableTransportTest, TryRecvStaysStrictlyOrdered) {
  FaultSpec spec;
  spec.seed = 22;
  spec.delivery = FaultDelivery::kRaw;
  spec.all_links.drop_prob = 0.3;
  spec.all_links.reorder_prob = 0.3;
  InProcTransport inner(2);
  FaultyTransport faulty(inner, spec);
  ReliableTransport rel(faulty);
  const int n = 100;
  for (int i = 0; i < n; ++i) rel.Send(0, 1, 4, MakeBody(i, 5));
  int got = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (got < n) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    auto p = rel.TryRecv(1, 0, 4);
    if (!p.has_value()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    EXPECT_EQ(*p, MakeBody(got, 5)) << "message " << got;
    ++got;
  }
  EXPECT_EQ(rel.TryRecv(1, 0, 4), std::nullopt);
}

// Tier-1 gives up after the message deadline; the loss surfaces as the
// *receiver's* RecvFor deadline (the hand-off to tiers 2/3).
TEST(ReliableTransportTest, MessageDeadlineHandsOffToUpperTiers) {
  FaultSpec spec;
  spec.seed = 23;
  spec.delivery = FaultDelivery::kRaw;
  spec.all_links.drop_prob = 1.0;  // nothing ever arrives
  InProcTransport inner(2);
  FaultyTransport faulty(inner, spec);
  ReliableOptions opts;
  opts.rto_initial_ms = 1;
  opts.rto_max_ms = 4;
  opts.message_deadline_ms = 30;
  ReliableTransport rel(faulty, opts);
  rel.Send(0, 1, 2, MakeBody(0, 4));
  auto p = rel.RecvFor(1, 0, 2, std::chrono::milliseconds(100));
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kDeadlineExceeded);
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rel.stats().delivery_failures == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(rel.stats().retransmits, 1u);
}

// Retransmit copies, wire frames, acks, and delivered bodies all cycle
// through the BufferPool: once the communication pattern's buffer classes
// are warm, a retransmitting steady state allocates nothing. (Delay faults
// rather than drops: a *dropped* frame is destroyed inside the chaos
// decorator — a test-only device that consumes buffers a real wire would
// never have owned — while delays exercise the genuine retransmit +
// duplicate-discard path with every buffer eventually returning home.)
TEST(ReliableTransportTest, ZeroSteadyStateAllocations) {
  FaultSpec spec;
  spec.seed = 24;
  spec.delivery = FaultDelivery::kRaw;
  spec.all_links.delay_prob = 0.3;
  spec.all_links.max_delay_ms = 15.0;  // >> rto: forces retransmits
  InProcTransport inner(2);
  FaultyTransport faulty(inner, spec);
  common::BufferPool pool;
  // Deep-prime the (single) size class the reliable path uses: when the
  // consumer thread is starved by a loaded machine, the daemon keeps
  // cloning retransmits every rto, so the transient buffer population can
  // burst well past what serial warm-up pings would populate.
  {
    std::vector<Payload> prime;
    for (int i = 0; i < 128; ++i) prime.push_back(pool.Acquire(12));
    for (auto& p : prime) pool.Release(std::move(p));
  }
  ReliableOptions opts;
  opts.pool = &pool;
  opts.rto_initial_ms = 2;
  opts.rto_max_ms = 8;
  ReliableTransport rel(faulty, opts);
  auto ping = [&](int i) {
    Payload body = pool.Acquire(8);
    for (std::size_t j = 0; j < body.size(); ++j) {
      body[j] = static_cast<float>(i + static_cast<int>(j));
    }
    rel.Send(0, 1, 6, std::move(body));
    auto p = rel.Recv(1, 0, 6);
    ASSERT_TRUE(p.ok());
    pool.Release(std::move(*p));
  };
  for (int i = 0; i < 200; ++i) ping(i);  // warm the classes
  const std::uint64_t misses_before = pool.stats().misses;
  for (int i = 0; i < 300; ++i) ping(i);
  EXPECT_EQ(pool.stats().misses, misses_before)
      << "steady-state retransmission allocated fresh buffers";
  EXPECT_GT(rel.stats().retransmits, 0u)
      << "delays never forced a retransmit; the assertion proved nothing";
}

// --------------------------------- collectives through the chaos stack ---

// Every collective must complete *bit-exactly* through seeded
// drop/dup/reorder/corrupt chaos, at every pipeline depth and channel
// count, without any checkpoint recovery — tier 1 alone repairs the wire.
TEST(ReliableCollectiveTest, MultiChannelAllReduceBitExactThroughChaos) {
  const int world = 3;
  const std::size_t len = 4096;
  for (const int channels : {1, 2, 4}) {
    for (const int depth : {1, 2, 4, 8}) {
      auto make_data = [&] {
        std::vector<std::vector<float>> data(world);
        Rng rng(77);
        for (auto& v : data) {
          v.resize(len);
          for (float& x : v) x = static_cast<float>(rng.Uniform(-8.0, 8.0));
        }
        return data;
      };
      auto run = [&](Transport& tr, std::vector<std::vector<float>>& data) {
        std::vector<std::thread> threads;
        for (int r = 0; r < world; ++r) {
          threads.emplace_back([&, r] {
            collective::Comm comm{&tr, r, world, collective::kSyncTag, 20000};
            comm.pipeline_depth = depth;
            const Status st = collective::MultiChannelAllReduce(
                comm, data[static_cast<std::size_t>(r)],
                collective::ReduceOp::kAvg, channels);
            EXPECT_TRUE(st.ok()) << st.ToString();
          });
        }
        for (auto& t : threads) t.join();
      };

      // Reference: clean transport, identical schedule parameters.
      auto ref = make_data();
      InProcTransport clean(world);
      run(clean, ref);

      // Chaos run: drop/dup/reorder/corrupt under the reliable layer.
      FaultSpec spec;
      spec.seed = 1000 + static_cast<std::uint64_t>(channels * 10 + depth);
      spec.delivery = FaultDelivery::kRaw;
      spec.all_links.drop_prob = 0.03;
      spec.all_links.dup_prob = 0.03;
      spec.all_links.reorder_prob = 0.03;
      spec.all_links.corrupt_prob = 0.01;
      auto chaotic = make_data();
      InProcTransport inner(world);
      FaultyTransport faulty(inner, spec);
      ReliableTransport rel(faulty);
      run(rel, chaotic);

      for (int r = 0; r < world; ++r) {
        ASSERT_EQ(chaotic[static_cast<std::size_t>(r)],
                  ref[static_cast<std::size_t>(r)])
            << "channels=" << channels << " depth=" << depth << " rank=" << r;
      }
    }
  }
}

// ------------------------------------------- fault-schedule JSON replay ---

TEST(FaultScheduleTest, JsonRoundTripPreservesEveryField) {
  FaultSpec spec;
  spec.seed = 424242;
  spec.delivery = FaultDelivery::kRaw;
  spec.all_links.drop_prob = 0.125;
  spec.all_links.dup_prob = 0.0625;
  spec.all_links.reorder_prob = 0.25;
  spec.all_links.corrupt_prob = 0.03125;
  spec.all_links.delay_prob = 0.5;
  spec.all_links.max_delay_ms = 7.5;
  LinkFaults lossy;
  lossy.drop_prob = 1.0;
  spec.per_link[{0, 2}] = lossy;
  spec.per_link[{2, 1}] = LinkFaults{};
  TagFaults window;
  window.tag_lo = 33;
  window.tag_hi = 48;
  window.faults.corrupt_prob = 0.75;
  spec.per_tag.push_back(window);
  spec.crash_rank = 2;
  spec.crash_after_sends = 900;
  spec.straggler_rank = 1;
  spec.straggler_delay_ms = 3.25;

  const std::string json = FaultScheduleToJson(spec);
  auto parsed = FaultScheduleFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seed, spec.seed);
  EXPECT_EQ(parsed->delivery, spec.delivery);
  EXPECT_EQ(parsed->all_links, spec.all_links);
  EXPECT_EQ(parsed->per_link, spec.per_link);
  EXPECT_EQ(parsed->per_tag, spec.per_tag);
  EXPECT_EQ(parsed->crash_rank, spec.crash_rank);
  EXPECT_EQ(parsed->crash_after_sends, spec.crash_after_sends);
  EXPECT_EQ(parsed->straggler_rank, spec.straggler_rank);
  EXPECT_EQ(parsed->straggler_delay_ms, spec.straggler_delay_ms);

  // And the round-tripped schedule replays the identical fault sequence.
  FaultSpec simple;
  simple.seed = 5;
  simple.all_links.drop_prob = 0.2;
  auto replay = FaultScheduleFromJson(FaultScheduleToJson(simple));
  ASSERT_TRUE(replay.ok());
  auto run_with = [&](const FaultSpec& s) {
    InProcTransport inner(2);
    FaultyTransport tr(inner, s);
    for (int i = 0; i < 200; ++i) tr.Send(0, 1, 0, {static_cast<float>(i)});
    return tr.stats().dropped;
  };
  EXPECT_EQ(run_with(simple), run_with(*replay));
}

TEST(FaultScheduleTest, FileRoundTripAndErrors) {
  FaultSpec spec;
  spec.seed = 7;
  spec.all_links.drop_prob = 0.5;
  const std::string path =
      ::testing::TempDir() + "reliable_test_schedule.json";
  ASSERT_TRUE(WriteFaultSchedule(path, spec).ok());
  auto loaded = LoadFaultSchedule(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->seed, 7u);
  EXPECT_EQ(loaded->all_links.drop_prob, 0.5);
  std::remove(path.c_str());

  EXPECT_FALSE(FaultScheduleFromJson("not json").ok());
  EXPECT_FALSE(FaultScheduleFromJson("{\"unknown_key\": 1}").ok());
  EXPECT_FALSE(LoadFaultSchedule("/nonexistent/schedule.json").ok());
}

}  // namespace
}  // namespace aiacc::transport
