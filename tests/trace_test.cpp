// Execution-trace tests: the tracer's JSON rendering and busy-time math,
// plus the engine integration — the trace must show communication genuinely
// overlapping backward compute (the paper's Fig. 5).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/aiacc_engine.h"
#include "dnn/zoo.h"
#include "sim/trace.h"
#include "trainer/harness.h"

namespace aiacc::sim {
namespace {

TEST(TracerTest, SpansAndInstantsRecorded) {
  Tracer tracer;
  tracer.AddSpan("compute", "forward", 0.0, 1.0);
  tracer.AddSpan("compute", "backward", 1.0, 3.0);
  tracer.AddInstant("compute", "done", 3.5);
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.instants().size(), 1u);
  tracer.Clear();
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(TracerTest, BusyTimeMergesOverlaps) {
  Tracer tracer;
  tracer.AddSpan("s", "a", 0.0, 2.0);
  tracer.AddSpan("s", "b", 1.0, 3.0);   // overlaps a
  tracer.AddSpan("s", "c", 5.0, 6.0);   // disjoint
  tracer.AddSpan("t", "x", 0.0, 100.0); // other track, ignored
  EXPECT_DOUBLE_EQ(tracer.BusyTime("s"), 4.0);
  EXPECT_DOUBLE_EQ(tracer.BusyTime("missing"), 0.0);
}

TEST(TracerTest, ChromeJsonWellFormed) {
  Tracer tracer;
  tracer.AddSpan("compute", "fwd \"quoted\"", 0.0, 0.001);
  tracer.AddInstant("sync", "round", 0.002);
  const std::string json = tracer.ToChromeJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);  // escaped
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  int depth = 0;
  bool in_string = false;
  char prev = 0;
  for (char c : json) {
    if (c == '"' && prev != '\\') in_string = !in_string;
    if (!in_string) {
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') --depth;
      EXPECT_GE(depth, 0);
    }
    prev = c;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(TracerTest, WriteToFile) {
  Tracer tracer;
  tracer.AddSpan("s", "a", 0.0, 1.0);
  const std::string path = ::testing::TempDir() + "/trace_test.json";
  ASSERT_TRUE(tracer.WriteTo(path).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, tracer.ToChromeJson());
  std::remove(path.c_str());
}

TEST(TracerTest, EngineEmitsOverlappingCommAndCompute) {
  // Build a traced AIACC deployment and verify the paper's Fig. 5 picture:
  // communication spans overlap the backward-compute span.
  Tracer tracer;
  dnn::ModelDescriptor model = dnn::MakeResNet50();
  sim::Engine engine;
  net::CloudFabric fabric(engine, trainer::MakeTopology(16),
                          net::FabricParams{});
  collective::SimCollectives collectives(fabric);
  core::WorkloadSetup setup;
  setup.fabric = &fabric;
  setup.collectives = &collectives;
  setup.model = &model;
  setup.batch_per_gpu = 64;
  setup.tracer = &tracer;
  core::AiaccEngine ddl(setup, core::CommConfig{});
  const auto stats = ddl.RunIterations(2);

  // Span counts line up with the engine's own statistics.
  int units = 0;
  int syncs = 0;
  double backward_begin = -1.0;
  double backward_end = -1.0;
  for (const auto& span : tracer.spans()) {
    if (span.track.rfind("stream ", 0) == 0) ++units;
    if (span.track == "sync") ++syncs;
    if (span.name == "backward" && backward_begin < 0) {
      backward_begin = span.begin;
      backward_end = span.end;
    }
  }
  int expected_units = 0;
  int expected_syncs = 0;
  for (const auto& s : stats) {
    expected_units += s.allreduce_units;
    expected_syncs += s.sync_rounds;
  }
  EXPECT_EQ(units, expected_units);
  EXPECT_EQ(syncs, expected_syncs);
  EXPECT_EQ(tracer.instants().size(), 2u);  // one per iteration

  // Overlap: at least one communication span starts inside backward.
  bool overlapped = false;
  for (const auto& span : tracer.spans()) {
    if (span.track.rfind("stream ", 0) == 0 && span.begin < backward_end &&
        span.begin >= backward_begin) {
      overlapped = true;
      break;
    }
  }
  EXPECT_TRUE(overlapped)
      << "no all-reduce unit overlapped backward compute";
}

TEST(TracerTest, StreamSlotsNeverDoubleBooked) {
  Tracer tracer;
  dnn::ModelDescriptor model = dnn::MakeVgg16();
  sim::Engine engine;
  net::CloudFabric fabric(engine, trainer::MakeTopology(16),
                          net::FabricParams{});
  collective::SimCollectives collectives(fabric);
  core::WorkloadSetup setup;
  setup.fabric = &fabric;
  setup.collectives = &collectives;
  setup.model = &model;
  setup.batch_per_gpu = 64;
  setup.tracer = &tracer;
  core::AiaccEngine ddl(setup, core::CommConfig{});
  (void)ddl.RunIterations(1);

  // Spans within one stream track must not overlap (a slot is one stream).
  std::map<std::string, std::vector<std::pair<double, double>>> by_track;
  for (const auto& span : tracer.spans()) {
    if (span.track.rfind("stream ", 0) == 0) {
      by_track[span.track].emplace_back(span.begin, span.end);
    }
  }
  EXPECT_FALSE(by_track.empty());
  for (auto& [track, intervals] : by_track) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first, intervals[i - 1].second - 1e-12)
          << track << " double-booked";
    }
  }
}

}  // namespace
}  // namespace aiacc::sim
