// Tests for the annotated synchronization layer (common/sync.h): basic
// Mutex/MutexLock/CondVar behaviour, and the debug lock-order detector —
// the inversion and self-deadlock paths must *abort with both lock names*
// rather than deadlock, and consistently ordered acquisition must never
// trip it.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/sync.h"

namespace aiacc::common {
namespace {

TEST(SyncTest, MutexProvidesExclusion) {
  Mutex mu{"test-counter"};
  int counter GUARDED_BY(mu) = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, 40000);
}

TEST(SyncTest, MutexLockEarlyUnlockReleases) {
  Mutex mu{"test-early-unlock"};
  MutexLock lock(mu);
  lock.Unlock();
  // Re-acquiring on the same thread must not self-deadlock-abort: the
  // tracker saw the release.
  MutexLock again(mu);
}

TEST(SyncTest, CondVarWakesWaiter) {
  Mutex mu{"test-cv"};
  CondVar cv;
  bool ready GUARDED_BY(mu) = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(lock);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
}

TEST(SyncTest, CondVarWaitForTimesOut) {
  Mutex mu{"test-cv-timeout"};
  CondVar cv;
  MutexLock lock(mu);
  const auto verdict = cv.WaitFor(lock, std::chrono::milliseconds(5));
  EXPECT_EQ(verdict, std::cv_status::timeout);
}

TEST(SyncTest, NamesAndRanksAreVisible) {
  Mutex mu{"test-named", lock_rank::kQueue};
  EXPECT_STREQ(mu.name(), "test-named");
  EXPECT_EQ(mu.rank(), lock_rank::kQueue);
  Mutex unranked{"test-unranked"};
  EXPECT_EQ(unranked.rank(), kNoRank);
}

// Acquiring in ascending rank order — the documented hierarchy — must be
// silent, including reacquisition after full release and unranked leaves
// under ranked locks.
TEST(SyncTest, ConsistentOrderingDoesNotTrip) {
  Mutex outer{"test-outer", lock_rank::kEngineState};
  Mutex inner{"test-inner", lock_rank::kTransport};
  Mutex leaf{"test-leaf"};  // kNoRank: exempt from ordering
  for (int i = 0; i < 3; ++i) {
    MutexLock a(outer);
    MutexLock b(inner);
    MutexLock c(leaf);
  }
  {
    MutexLock b(inner);  // inner alone is fine too
  }
  {
    MutexLock a(outer);
    MutexLock b(inner);
  }
}

#if !defined(AIACC_NO_LOCK_ORDER_CHECKS) && defined(GTEST_HAS_DEATH_TEST)

// The detector must abort — naming BOTH locks — when a thread acquires a
// lower-ranked mutex while holding a higher-ranked one. This is the
// regression test for the diagnostic itself: if the rank hierarchy in
// common/sync.h is violated anywhere in the engine, this is the message a
// developer gets instead of a rare production deadlock.
TEST(SyncDeathTest, LockOrderInversionAbortsWithBothNames) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex low{"inversion-low", lock_rank::kEngineState};
  Mutex high{"inversion-high", lock_rank::kTransport};
  EXPECT_DEATH(
      {
        MutexLock a(high);
        MutexLock b(low);  // rank 100 after rank 500: inversion
      },
      "lock-order inversion.*inversion-low.*inversion-high");
}

TEST(SyncDeathTest, SameRankNestingAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex first{"same-rank-first", lock_rank::kQueue};
  Mutex second{"same-rank-second", lock_rank::kQueue};
  EXPECT_DEATH(
      {
        MutexLock a(first);
        MutexLock b(second);  // equal ranks: ordering is undefined -> abort
      },
      "same-rank-second.*same-rank-first");
}

TEST(SyncDeathTest, SelfDeadlockAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex mu{"self-deadlock-mu"};
  EXPECT_DEATH(
      {
        mu.Lock();
        mu.Lock();  // would block forever on a plain std::mutex
      },
      "self-deadlock.*self-deadlock-mu");
}

#endif  // !AIACC_NO_LOCK_ORDER_CHECKS && GTEST_HAS_DEATH_TEST

}  // namespace
}  // namespace aiacc::common
