// Property-based suites: invariants that must hold across the whole
// (model x engine x topology) grid, not just at hand-picked points.
//
//   * physicality: cluster throughput never exceeds the linear ideal;
//   * conservation: all-reduce engines move ~2*S*(n-1)/n bytes per NIC
//     per iteration, independent of engine strategy;
//   * dominance: AIACC is never slower than the single-stream all-reduce
//     baselines on multi-node topologies;
//   * monotonicity: more streams never hurt AIACC (up to jitter), larger
//     batches increase per-iteration samples;
//   * network: link byte accounting matches flow payloads exactly.
#include <gtest/gtest.h>

#include <span>
#include <thread>
#include <tuple>
#include <vector>

#include "collective/threaded.h"
#include "common/rng.h"
#include "dnn/zoo.h"
#include "net/network.h"
#include "trainer/harness.h"
#include "transport/faulty.h"

namespace aiacc::trainer {
namespace {

using GridParam = std::tuple<const char*, int>;  // model, gpus

class EngineGridP : public ::testing::TestWithParam<GridParam> {};

RunSpec SpecFor(const char* model, int gpus, EngineKind engine) {
  RunSpec spec;
  spec.model_name = model;
  spec.topology = MakeTopology(gpus);
  spec.engine = engine;
  spec.batch_per_gpu = std::string(model) == "bert-large" ? 8 : 64;
  spec.warmup_iterations = 1;
  spec.measure_iterations = 3;
  return spec;
}

TEST_P(EngineGridP, ThroughputWithinPhysicalBounds) {
  const auto [model, gpus] = GetParam();
  const double single = ::aiacc::trainer::Run(SpecFor(model, 1, EngineKind::kAiacc)).throughput;
  for (EngineKind engine :
       {EngineKind::kAiacc, EngineKind::kHorovod, EngineKind::kPytorchDdp,
        EngineKind::kByteps, EngineKind::kMxnetKvstore}) {
    const double thr = ::aiacc::trainer::Run(SpecFor(model, gpus, engine)).throughput;
    EXPECT_GT(thr, 0.0) << ToString(engine);
    // Never better than linear scaling of the single-GPU compute bound.
    EXPECT_LE(thr, single * gpus * 1.02) << ToString(engine);
  }
}

TEST_P(EngineGridP, AiaccDominatesSingleStreamBaselines) {
  const auto [model, gpus] = GetParam();
  if (gpus <= 8) GTEST_SKIP() << "single host: engines tie";
  const double aiacc = ::aiacc::trainer::Run(SpecFor(model, gpus, EngineKind::kAiacc)).throughput;
  const double horovod =
      ::aiacc::trainer::Run(SpecFor(model, gpus, EngineKind::kHorovod)).throughput;
  const double ddp =
      ::aiacc::trainer::Run(SpecFor(model, gpus, EngineKind::kPytorchDdp)).throughput;
  EXPECT_GE(aiacc, horovod * 0.99);
  EXPECT_GE(aiacc, ddp * 0.99);
}

TEST_P(EngineGridP, AllReduceWireVolumeMatchesTheory) {
  const auto [model, gpus] = GetParam();
  if (gpus <= 8) GTEST_SKIP() << "single host: NVLink only";
  const auto descriptor = dnn::MakeModelByName(model);
  const double s = static_cast<double>(descriptor.TotalParameterBytes());
  const int n = gpus;
  const double expected = 2.0 * s * (n - 1) / n;
  for (EngineKind engine : {EngineKind::kAiacc, EngineKind::kHorovod,
                            EngineKind::kPytorchDdp}) {
    const auto result = ::aiacc::trainer::Run(SpecFor(model, gpus, engine));
    EXPECT_NEAR(result.last_iteration.comm_bytes_per_nic, expected,
                expected * 0.02)
        << ToString(engine);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineGridP,
    ::testing::Values(GridParam{"resnet50", 8}, GridParam{"resnet50", 32},
                      GridParam{"resnet50", 128}, GridParam{"vgg16", 32},
                      GridParam{"resnet101", 32}, GridParam{"bert-large", 32},
                      GridParam{"transformer", 32}));

class StreamMonotonicityP : public ::testing::TestWithParam<const char*> {};

TEST_P(StreamMonotonicityP, MoreStreamsNeverHurt) {
  const char* model = GetParam();
  double prev = 0.0;
  for (int streams : {1, 2, 4, 8, 16}) {
    RunSpec spec = SpecFor(model, 32, EngineKind::kAiacc);
    spec.aiacc_config.num_streams = streams;
    const double thr = ::aiacc::trainer::Run(spec).throughput;
    EXPECT_GE(thr, prev * 0.99) << streams << " streams";
    prev = thr;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, StreamMonotonicityP,
                         ::testing::Values("resnet50", "vgg16", "bert-large"));

TEST(EnginePropertyTest, DeterministicAcrossRuns) {
  const RunSpec spec = SpecFor("resnet50", 32, EngineKind::kAiacc);
  const double a = ::aiacc::trainer::Run(spec).throughput;
  const double b = ::aiacc::trainer::Run(spec).throughput;
  EXPECT_EQ(a, b);
}

TEST(EnginePropertyTest, RdmaNeverSlowerThanTcp) {
  for (const char* model : {"resnet50", "bert-large", "gpt2-xl"}) {
    RunSpec tcp = SpecFor(model, 32, EngineKind::kAiacc);
    RunSpec rdma = tcp;
    rdma.topology = MakeTopology(32, 8, net::TransportKind::kRdma);
    EXPECT_GE(::aiacc::trainer::Run(rdma).throughput, ::aiacc::trainer::Run(tcp).throughput * 0.999) << model;
  }
}

TEST(EnginePropertyTest, Fp16WireNeverSlowerWhenGranularityScaled) {
  for (const char* model : {"resnet50", "bert-large"}) {
    RunSpec f32 = SpecFor(model, 64, EngineKind::kAiacc);
    RunSpec f16 = f32;
    f16.wire_dtype = dnn::DType::kF16;
    f16.aiacc_config.granularity_bytes /= 2;
    f16.aiacc_config.min_bucket_bytes /= 2;
    EXPECT_GE(::aiacc::trainer::Run(f16).throughput, ::aiacc::trainer::Run(f32).throughput * 0.995) << model;
  }
}

TEST(EnginePropertyTest, JitteredRunsVaryButGeomeanIsStable) {
  // §VII-D methodology: the paper measures each setup 5 times and reports
  // the geometric mean. With 2% log-normal compute jitter, individual
  // repeats differ but the 5-run geomean stays within a tight band of the
  // deterministic result.
  RunSpec base = SpecFor("resnet50", 32, EngineKind::kAiacc);
  const double deterministic = ::aiacc::trainer::Run(base).throughput;

  RunSpec jittered = base;
  jittered.compute_jitter_sigma = 0.02;
  const double single_a = ::aiacc::trainer::Run(jittered).throughput;
  RunSpec jittered_b = jittered;
  jittered_b.repeats = 1;
  // Different seed path: use repeats>1 to force distinct seeds.
  RunSpec five = jittered;
  five.repeats = 5;
  const double geomean = ::aiacc::trainer::Run(five).throughput;

  EXPECT_NE(single_a, deterministic);  // jitter is really applied
  EXPECT_NEAR(geomean, deterministic, deterministic * 0.03);
}

TEST(EnginePropertyTest, EngineOrderingStableUnderJitter) {
  // The paper's conclusions survive measurement noise: with 3% jitter the
  // AIACC > Horovod ordering at 32 GPUs holds for every seed.
  for (int seed_round = 0; seed_round < 3; ++seed_round) {
    RunSpec aiacc_spec = SpecFor("vgg16", 32, EngineKind::kAiacc);
    aiacc_spec.compute_jitter_sigma = 0.03;
    aiacc_spec.repeats = 3;
    RunSpec horovod_spec = SpecFor("vgg16", 32, EngineKind::kHorovod);
    horovod_spec.compute_jitter_sigma = 0.03;
    horovod_spec.repeats = 3;
    EXPECT_GT(::aiacc::trainer::Run(aiacc_spec).throughput,
              ::aiacc::trainer::Run(horovod_spec).throughput);
  }
}

TEST(EnginePropertyTest, CongestionDegradesThroughputMonotonically) {
  // §V-B: foreign traffic on one NIC slows training; more load, more slow.
  double prev = 1e18;
  for (double load : {0.0, 0.5, 0.7, 0.85}) {
    RunSpec spec = SpecFor("vgg16", 32, EngineKind::kAiacc);
    spec.background_load = load;
    const double thr = ::aiacc::trainer::Run(spec).throughput;
    EXPECT_LE(thr, prev * 1.001) << "load " << load;
    EXPECT_GT(thr, 0.0);
    prev = thr;
  }
}

TEST(EnginePropertyTest, TreeAllReduceMoreRobustUnderCongestion) {
  // §V-B: the hierarchical algorithm "is useful when some of the physical
  // network links become congested".
  RunSpec ring = SpecFor("vgg16", 32, EngineKind::kAiacc);
  ring.background_load = 0.7;
  RunSpec tree = ring;
  tree.aiacc_config.algorithm = collective::Algorithm::kHierarchical;
  EXPECT_GT(::aiacc::trainer::Run(tree).throughput,
            ::aiacc::trainer::Run(ring).throughput);
}

// ----------------------------------------------------- network invariants --

TEST(NetworkPropertyTest, LinkAccountingMatchesPayloads) {
  // Whatever the arrival pattern, total bytes carried by a single link must
  // equal the sum of payloads that traversed it.
  sim::Engine engine;
  net::Network network(engine);
  const auto link = network.AddLink("l", 1000.0);
  Rng rng(17);
  double expected = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double bytes = rng.Uniform(10.0, 5000.0);
    const double start = rng.Uniform(0.0, 20.0);
    const double cap = rng.Chance(0.5) ? 300.0 : net::Network::kUncapped;
    expected += bytes;
    engine.ScheduleAt(start, [&network, link, bytes, cap] {
      network.StartFlow({{link}, bytes, cap, 0.0, nullptr});
    });
  }
  engine.Run();
  // Completion uses a 1-byte epsilon (float-drift guard), so each flow may
  // under-account by at most one byte.
  EXPECT_NEAR(network.Stats(link).bytes_carried, expected, 50.0);
  EXPECT_EQ(network.ActiveFlows(), 0u);
}

TEST(NetworkPropertyTest, CompletionOrderRespectsSizeAtEqualShare) {
  // Uncapped flows on one link starting together finish in size order.
  sim::Engine engine;
  net::Network network(engine);
  const auto link = network.AddLink("l", 100.0);
  std::vector<int> order;
  const double sizes[] = {100.0, 300.0, 200.0};
  for (int i = 0; i < 3; ++i) {
    network.StartFlow({{link},
                       sizes[i],
                       net::Network::kUncapped,
                       0.0,
                       [&order, i] { order.push_back(i); }});
  }
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(NetworkPropertyTest, AggregateRateNeverExceedsCapacity) {
  sim::Engine engine;
  net::Network network(engine);
  const auto link = network.AddLink("l", 100.0);
  Rng rng(23);
  for (int i = 0; i < 20; ++i) {
    network.StartFlow({{link}, rng.Uniform(50.0, 500.0),
                       rng.Uniform(5.0, 200.0), rng.Uniform(0.0, 3.0),
                       nullptr});
  }
  // Sample instantaneous aggregate rate at several times.
  for (double t : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    engine.RunUntil(t);
    double total = 0.0;
    // FlowRate is only exposed per id; recompute via utilization over a
    // window instead: check busy integral does not exceed capacity * time.
    total = network.Stats(link).busy_integral;
    EXPECT_LE(total, 100.0 * t * (1.0 + 1e-9));
  }
  engine.Run();
}

}  // namespace
}  // namespace aiacc::trainer

// ----------------------------------------------- fault-schedule property --

namespace aiacc::collective {
namespace {

// Under any randomized seeded fault schedule without crashes, a collective
// with a deadline must terminate in bounded time on every rank, and the
// outcome is all-or-nothing sound: if every rank reports Ok the results are
// exactly correct; otherwise at least one rank reported a non-OK status.
// (Lossless schedules — no drops — must always land in the first bucket.)
struct FaultScheduleOutcome {
  bool all_ok = true;
  int non_ok = 0;
};

template <typename CollectiveFn>
FaultScheduleOutcome RunUnderSchedule(int world,
                                      const transport::FaultSpec& faults,
                                      std::vector<std::vector<float>>& data,
                                      const CollectiveFn& op) {
  transport::InProcTransport inner(world);
  transport::FaultyTransport tr(inner, faults);
  std::vector<Status> status(static_cast<std::size_t>(world), Status::Ok());
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      Comm comm{&tr, r, world, 0, /*timeout_ms=*/500};
      status[static_cast<std::size_t>(r)] =
          op(comm, data[static_cast<std::size_t>(r)]);
    });
  }
  for (auto& t : threads) t.join();
  FaultScheduleOutcome outcome;
  for (const Status& st : status) {
    if (!st.ok()) {
      outcome.all_ok = false;
      ++outcome.non_ok;
    }
  }
  return outcome;
}

transport::FaultSpec RandomSchedule(std::uint64_t seed, bool allow_drops) {
  Rng rng(seed * 7919 + 13);
  transport::FaultSpec faults;
  faults.seed = seed;
  faults.all_links.dup_prob = rng.Uniform(0.0, 0.2);
  faults.all_links.reorder_prob = rng.Uniform(0.0, 0.2);
  faults.all_links.delay_prob = rng.Uniform(0.0, 0.1);
  faults.all_links.max_delay_ms = 2.0;
  if (allow_drops && rng.Chance(0.5)) {
    faults.all_links.drop_prob = rng.Uniform(0.005, 0.02);
  }
  return faults;
}

TEST(FaultScheduleProperty, RingAllReduceExactOrNonOkNeverHangs) {
  const int world = 4;
  const std::size_t len = 96;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const transport::FaultSpec faults = RandomSchedule(seed, true);
    Rng rng(seed);
    std::vector<std::vector<float>> data(world);
    std::vector<float> expected(len, 0.0f);
    for (auto& v : data) {
      v.resize(len);
      for (float& x : v) x = static_cast<float>(rng.Uniform(-4.0, 4.0));
      for (std::size_t i = 0; i < len; ++i) expected[i] += v[i];
    }
    const auto outcome = RunUnderSchedule(
        world, faults, data, [](const Comm& c, std::span<float> d) {
          return RingAllReduce(c, d, ReduceOp::kSum);
        });
    if (outcome.all_ok) {
      for (int r = 0; r < world; ++r) {
        for (std::size_t i = 0; i < len; ++i) {
          ASSERT_NEAR(data[static_cast<std::size_t>(r)][i], expected[i], 1e-3)
              << "seed " << seed << " rank " << r << " element " << i;
        }
      }
    } else {
      EXPECT_GE(outcome.non_ok, 1);
    }
    if (faults.all_links.drop_prob == 0.0) {
      EXPECT_TRUE(outcome.all_ok)
          << "lossless schedule " << seed << " must succeed";
    }
  }
}

TEST(FaultScheduleProperty, HierarchicalAllReduceExactOrNonOkNeverHangs) {
  const int world = 4;
  const std::size_t len = 64;
  for (std::uint64_t seed = 101; seed <= 108; ++seed) {
    const transport::FaultSpec faults = RandomSchedule(seed, true);
    Rng rng(seed);
    std::vector<std::vector<float>> data(world);
    std::vector<float> expected(len, 0.0f);
    for (auto& v : data) {
      v.resize(len);
      for (float& x : v) x = static_cast<float>(rng.Uniform(-4.0, 4.0));
      for (std::size_t i = 0; i < len; ++i) expected[i] += v[i];
    }
    const auto outcome = RunUnderSchedule(
        world, faults, data, [](const Comm& c, std::span<float> d) {
          return HierarchicalAllReduce(c, /*gpus_per_host=*/2, d,
                                       ReduceOp::kSum);
        });
    if (outcome.all_ok) {
      for (int r = 0; r < world; ++r) {
        for (std::size_t i = 0; i < len; ++i) {
          ASSERT_NEAR(data[static_cast<std::size_t>(r)][i], expected[i], 1e-3)
              << "seed " << seed << " rank " << r << " element " << i;
        }
      }
    } else {
      EXPECT_GE(outcome.non_ok, 1);
    }
    if (faults.all_links.drop_prob == 0.0) {
      EXPECT_TRUE(outcome.all_ok)
          << "lossless schedule " << seed << " must succeed";
    }
  }
}

}  // namespace
}  // namespace aiacc::collective
