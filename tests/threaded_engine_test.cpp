// Tests of the real-concurrency AIACC runtime (Fig. 4-6 with actual
// threads): numeric correctness against sequential training, multi-stream
// configurations, split/merged units on odd tensor sizes, multi-iteration
// stability, and protocol statistics.
#include <gtest/gtest.h>

#include <thread>

#include "core/sync_bits.h"
#include "core/threaded_engine.h"
#include "dnn/mlp.h"

namespace aiacc::core {
namespace {

constexpr int kIn = 6;
constexpr int kOut = 2;

dnn::Mlp TrainSequential(const dnn::SyntheticDataset& ds, int steps,
                         float lr) {
  dnn::Mlp model({kIn, 12, kOut}, 42);
  for (int s = 0; s < steps; ++s) {
    model.Forward(ds.inputs, ds.num_samples);
    model.Backward(ds.inputs, ds.targets, ds.num_samples);
    model.SgdStep(lr);
  }
  return model;
}

/// Train `world` data-parallel replicas through the threaded engine and
/// return the per-rank models.
std::vector<std::unique_ptr<dnn::Mlp>> TrainDistributed(
    const dnn::SyntheticDataset& ds, int world, int steps, float lr,
    CommConfig config) {
  ThreadedAiaccEngine engine(world, config);
  const int shard = ds.num_samples / world;
  std::vector<std::unique_ptr<dnn::Mlp>> replicas(
      static_cast<std::size_t>(world));
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      auto& worker = engine.worker(r);
      auto model =
          std::make_unique<dnn::Mlp>(std::vector<int>{kIn, 12, kOut}, 42);
      // Register every gradient tensor (names sort identically everywhere).
      auto grads = model->GradientTensors();
      for (std::size_t t = 0; t < grads.size(); ++t) {
        char name[32];
        std::snprintf(name, sizeof(name), "grad%03zu", t);
        ASSERT_TRUE(worker.Register(name, grads[t]).ok());
      }
      worker.Finalize();

      std::vector<float> x(ds.inputs.begin() + r * shard * kIn,
                           ds.inputs.begin() + (r + 1) * shard * kIn);
      std::vector<float> y(ds.targets.begin() + r * shard * kOut,
                           ds.targets.begin() + (r + 1) * shard * kOut);
      for (int s = 0; s < steps; ++s) {
        model->Forward(x, shard);
        model->Backward(x, y, shard);
        worker.PushAll();  // gradients enter the engine
        // Averaged in place across ranks.
        ASSERT_TRUE(worker.WaitIteration().ok());
        model->SgdStep(lr);
      }
      replicas[static_cast<std::size_t>(r)] = std::move(model);
    });
  }
  for (auto& t : threads) t.join();
  return replicas;
}

TEST(ThreadedEngineTest, MatchesSequentialTraining) {
  const auto ds = dnn::MakeSyntheticDataset(32, kIn, kOut, 7);
  const dnn::Mlp reference = TrainSequential(ds, 8, 0.2f);
  CommConfig config;
  config.num_streams = 2;
  config.granularity_bytes = 256;  // forces several units per iteration
  const auto replicas = TrainDistributed(ds, 4, 8, 0.2f, config);
  for (const auto& replica : replicas) {
    EXPECT_TRUE(replica->ParametersEqual(reference, 2e-4f));
  }
}

class ThreadedEngineConfigP
    : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {};

TEST_P(ThreadedEngineConfigP, ReplicasStayIdenticalAcrossConfigs) {
  const auto [world, streams, granularity] = GetParam();
  const auto ds = dnn::MakeSyntheticDataset(24, kIn, kOut, 11);
  CommConfig config;
  config.num_streams = streams;
  config.granularity_bytes = granularity;
  const auto replicas = TrainDistributed(ds, world, 4, 0.1f, config);
  for (std::size_t r = 1; r < replicas.size(); ++r) {
    EXPECT_TRUE(replicas[r]->ParametersEqual(*replicas[0], 0.0f))
        << "rank " << r << " diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThreadedEngineConfigP,
    ::testing::Values(std::tuple{1, 1, std::size_t{1} << 20},
                      std::tuple{2, 1, std::size_t{64}},
                      std::tuple{3, 2, std::size_t{128}},
                      std::tuple{4, 4, std::size_t{64}},
                      std::tuple{4, 2, std::size_t{1} << 20},
                      std::tuple{6, 3, std::size_t{256}}));

TEST(ThreadedEngineTest, ManyIterationsRemainStable) {
  const auto ds = dnn::MakeSyntheticDataset(16, kIn, kOut, 3);
  CommConfig config;
  config.num_streams = 3;
  config.granularity_bytes = 96;
  const auto replicas = TrainDistributed(ds, 4, 30, 0.05f, config);
  for (std::size_t r = 1; r < replicas.size(); ++r) {
    EXPECT_TRUE(replicas[r]->ParametersEqual(*replicas[0], 0.0f));
  }
}

TEST(ThreadedEngineTest, StatsReflectProtocolActivity) {
  const auto ds = dnn::MakeSyntheticDataset(16, kIn, kOut, 5);
  CommConfig config;
  config.num_streams = 2;
  config.granularity_bytes = 128;
  const int steps = 5;
  ThreadedAiaccEngine engine(2, config);
  std::vector<std::thread> threads;
  const int shard = ds.num_samples / 2;
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      auto& worker = engine.worker(r);
      dnn::Mlp model({kIn, 12, kOut}, 42);
      auto grads = model.GradientTensors();
      for (std::size_t t = 0; t < grads.size(); ++t) {
        ASSERT_TRUE(worker.Register("g" + std::to_string(t), grads[t]).ok());
      }
      worker.Finalize();
      std::vector<float> x(ds.inputs.begin() + r * shard * kIn,
                           ds.inputs.begin() + (r + 1) * shard * kIn);
      std::vector<float> y(ds.targets.begin() + r * shard * kOut,
                           ds.targets.begin() + (r + 1) * shard * kOut);
      for (int s = 0; s < steps; ++s) {
        model.Forward(x, shard);
        model.Backward(x, y, shard);
        worker.PushAll();
        ASSERT_TRUE(worker.WaitIteration().ok());
        model.SgdStep(0.1f);
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::size_t n_grads =
      dnn::Mlp({kIn, 12, kOut}, 42).GradientTensors().size();
  for (int r = 0; r < 2; ++r) {
    const auto& stats = engine.worker(r).stats();
    EXPECT_EQ(stats.iterations, static_cast<std::uint64_t>(steps));
    EXPECT_GE(stats.sync_rounds, static_cast<std::uint64_t>(steps));
    // 4 tensors, 128-byte units: multiple units per iteration.
    EXPECT_GE(stats.units_reduced, static_cast<std::uint64_t>(steps) * 2);
    EXPECT_GT(stats.bytes_reduced, 0u);
    // Bit-packed sync rounds: every round ships exactly SyncWordCount(n)
    // floats (32 readiness bits per float), not one float per gradient.
    EXPECT_EQ(engine.metrics()
                  .GetCounter(
                      telemetry::RankScoped("engine.sync_payload_floats", r))
                  .Value(),
              stats.sync_rounds * SyncWordCount(n_grads));
  }
}

TEST(ThreadedEngineTest, RegistrationValidation) {
  ThreadedAiaccEngine engine(1, CommConfig{});
  auto& worker = engine.worker(0);
  std::vector<float> tensor(8);
  EXPECT_TRUE(worker.Register("a", tensor).ok());
  EXPECT_EQ(worker.Register("a", tensor).code(),
            StatusCode::kAlreadyExists);
}

TEST(ThreadedEngineTest, HierarchicalAlgorithmAlsoCorrect) {
  const auto ds = dnn::MakeSyntheticDataset(32, kIn, kOut, 9);
  const dnn::Mlp reference = TrainSequential(ds, 5, 0.1f);
  CommConfig config;
  config.num_streams = 2;
  config.granularity_bytes = 200;
  config.algorithm = collective::Algorithm::kHierarchical;
  const auto replicas = TrainDistributed(ds, 4, 5, 0.1f, config);
  for (const auto& replica : replicas) {
    EXPECT_TRUE(replica->ParametersEqual(reference, 2e-4f));
  }
}

}  // namespace
}  // namespace aiacc::core
