// In-process transport tests: (src, tag) matching, FIFO per channel,
// blocking receive semantics, barrier, shutdown, and concurrent stress.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "transport/inproc.h"

namespace aiacc::transport {
namespace {

TEST(InProcTransportTest, DeliversToMatchingSourceAndTag) {
  InProcTransport tr(3);
  tr.Send(0, 2, /*tag=*/7, {1.0f});
  tr.Send(1, 2, /*tag=*/7, {2.0f});
  tr.Send(0, 2, /*tag=*/9, {3.0f});
  EXPECT_EQ((*tr.Recv(2, 0, 7))[0], 1.0f);
  EXPECT_EQ((*tr.Recv(2, 1, 7))[0], 2.0f);
  EXPECT_EQ((*tr.Recv(2, 0, 9))[0], 3.0f);
}

TEST(InProcTransportTest, FifoWithinChannel) {
  InProcTransport tr(2);
  for (int i = 0; i < 100; ++i) {
    tr.Send(0, 1, 0, {static_cast<float>(i)});
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ((*tr.Recv(1, 0, 0))[0], static_cast<float>(i));
  }
}

TEST(InProcTransportTest, RecvBlocksUntilSend) {
  InProcTransport tr(2);
  std::atomic<bool> got{false};
  std::thread receiver([&] {
    auto p = tr.Recv(1, 0, 5);
    ASSERT_TRUE(p.ok());
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  tr.Send(0, 1, 5, {42.0f});
  receiver.join();
  EXPECT_TRUE(got.load());
}

TEST(InProcTransportTest, DifferentTagsDoNotCross) {
  InProcTransport tr(2);
  tr.Send(0, 1, /*tag=*/1, {1.0f});
  std::atomic<bool> wrong_tag_received{false};
  std::thread receiver([&] {
    auto p = tr.Recv(1, 0, /*tag=*/2);  // must NOT match tag 1
    if (p.ok()) wrong_tag_received.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(wrong_tag_received.load());
  tr.Shutdown();
  receiver.join();
  EXPECT_FALSE(wrong_tag_received.load());
}

TEST(InProcTransportTest, ShutdownUnblocksReceivers) {
  InProcTransport tr(2);
  std::thread receiver([&] {
    auto p = tr.Recv(1, 0, 0);
    EXPECT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), StatusCode::kUnavailable);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  tr.Shutdown();
  receiver.join();
}

TEST(InProcTransportTest, BarrierSynchronizesAllRanks) {
  const int world = 4;
  InProcTransport tr(world);
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      EXPECT_TRUE(tr.Barrier().ok());
      // Every rank must observe all `before` increments post-barrier.
      EXPECT_EQ(before.load(), world);
      after.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(after.load(), world);
}

TEST(InProcTransportTest, BarrierReusable) {
  const int world = 3;
  InProcTransport tr(world);
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        sum.fetch_add(1);
        EXPECT_TRUE(tr.Barrier().ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sum.load(), world * 10);
}

TEST(InProcTransportTest, RecvForTimesOutOnSilence) {
  InProcTransport tr(2);
  const auto t0 = std::chrono::steady_clock::now();
  auto p = tr.RecvFor(1, 0, 0, std::chrono::milliseconds(30));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
}

TEST(InProcTransportTest, RecvForDeliversWithinDeadline) {
  InProcTransport tr(2);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    tr.Send(0, 1, 3, {7.0f});
  });
  auto p = tr.RecvFor(1, 0, 3, std::chrono::milliseconds(2000));
  sender.join();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)[0], 7.0f);
}

TEST(InProcTransportTest, RecvForShutdownBeatsDeadline) {
  InProcTransport tr(2);
  std::thread receiver([&] {
    auto p = tr.RecvFor(1, 0, 0, std::chrono::milliseconds(10000));
    EXPECT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), StatusCode::kUnavailable);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  tr.Shutdown();
  receiver.join();
}

TEST(InProcTransportTest, TryRecvNeverBlocks) {
  InProcTransport tr(2);
  EXPECT_FALSE(tr.TryRecv(1, 0, 0).has_value());
  tr.Send(0, 1, 0, {1.0f});
  tr.Send(0, 1, 0, {2.0f});
  auto first = tr.TryRecv(1, 0, 0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ((*first)[0], 1.0f);
  auto second = tr.TryRecv(1, 0, 0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ((*second)[0], 2.0f);
  EXPECT_FALSE(tr.TryRecv(1, 0, 0).has_value());
}

TEST(InProcTransportTest, BarrierReturnsUnavailableOnShutdown) {
  const int world = 3;
  InProcTransport tr(world);
  // Only 2 of 3 ranks arrive: the barrier cannot complete, so Shutdown must
  // wake the waiters with a non-OK status (not a spurious "success").
  std::vector<std::thread> threads;
  std::atomic<int> non_ok{0};
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      const Status st = tr.Barrier();
      if (!st.ok()) {
        EXPECT_EQ(st.code(), StatusCode::kUnavailable);
        non_ok.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  tr.Shutdown();
  for (auto& t : threads) t.join();
  EXPECT_EQ(non_ok.load(), 2);
}

TEST(InProcTransportTest, MessageCounter) {
  InProcTransport tr(2);
  EXPECT_EQ(tr.TotalMessages(), 0u);
  tr.Send(0, 1, 0, {});
  tr.Send(1, 0, 0, {});
  EXPECT_EQ(tr.TotalMessages(), 2u);
}

TEST(InProcTransportTest, ReceiveAndByteCountersCoverBothRecvPaths) {
  InProcTransport tr(2);
  tr.Send(0, 1, 0, {1.0f, 2.0f, 3.0f});
  tr.Send(0, 1, 0, {4.0f});
  EXPECT_EQ(tr.TotalPayloadBytes(), 4 * sizeof(float));
  EXPECT_EQ(tr.wake_counters().receives, 0u);
  // TryRecv must account for a delivery exactly like the blocking path (it
  // used to skip the counters entirely).
  ASSERT_TRUE(tr.TryRecv(1, 0, 0).has_value());
  EXPECT_EQ(tr.wake_counters().receives, 1u);
  ASSERT_TRUE(tr.Recv(1, 0, 0).ok());
  EXPECT_EQ(tr.wake_counters().receives, 2u);
  // An empty-handed TryRecv is not a delivery.
  EXPECT_FALSE(tr.TryRecv(1, 0, 0).has_value());
  EXPECT_EQ(tr.wake_counters().receives, 2u);
  // Bytes are counted on the send side; receiving does not change them.
  EXPECT_EQ(tr.TotalPayloadBytes(), 4 * sizeof(float));
}

TEST(InProcTransportTest, ConcurrentStress) {
  // Two rank pairs exchange on independent channels concurrently; all
  // payload sums must survive.
  InProcTransport tr(4);
  constexpr int kMessages = 2000;
  std::vector<std::thread> threads;
  std::atomic<long long> received_sum{0};
  for (int pair = 0; pair < 2; ++pair) {
    const int sender = pair * 2;
    const int receiver = pair * 2 + 1;
    threads.emplace_back([&tr, sender, receiver] {
      for (int i = 0; i < kMessages; ++i) {
        tr.Send(sender, receiver, i % 4, {static_cast<float>(i)});
      }
    });
    threads.emplace_back([&tr, sender, receiver, &received_sum] {
      long long sum = 0;
      // Per-tag FIFOs: drain each tag's expected share.
      for (int tag = 0; tag < 4; ++tag) {
        for (int i = 0; i < kMessages / 4; ++i) {
          auto p = tr.Recv(receiver, sender, tag);
          ASSERT_TRUE(p.ok());
          sum += static_cast<long long>((*p)[0]);
        }
      }
      received_sum.fetch_add(sum);
    });
  }
  for (auto& t : threads) t.join();
  const long long expected =
      2LL * (static_cast<long long>(kMessages) * (kMessages - 1) / 2);
  EXPECT_EQ(received_sum.load(), expected);
}

// ------------------------------------------------------- wakeup protocol --

TEST(WakeModeTest, TargetedSendWakesOnlyTheMatchingReceiver) {
  InProcTransport tr(2, WakeMode::kTargeted);
  ASSERT_EQ(tr.wake_mode(), WakeMode::kTargeted);
  constexpr int kReceivers = 3;
  std::vector<std::thread> receivers;
  for (int tag = 0; tag < kReceivers; ++tag) {
    receivers.emplace_back([&tr, tag] {
      auto p = tr.Recv(1, 0, tag);
      ASSERT_TRUE(p.ok());
      EXPECT_EQ((*p)[0], static_cast<float>(tag));
    });
  }
  // Let all three receivers block on their private slot CVs, then deliver
  // to just one tag: only that receiver may wake.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  tr.Send(0, 1, /*tag=*/1, {1.0f});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(tr.wake_counters().futile_wakeups, 0u);
  tr.Send(0, 1, /*tag=*/0, {0.0f});
  tr.Send(0, 1, /*tag=*/2, {2.0f});
  for (auto& t : receivers) t.join();
  const auto counters = tr.wake_counters();
  EXPECT_EQ(counters.notifies, 3u);
  EXPECT_EQ(counters.futile_wakeups, 0u);
}

TEST(WakeModeTest, SharedHerdWakesEveryBlockedReceiver) {
  InProcTransport tr(2, WakeMode::kSharedHerd);
  constexpr int kReceivers = 3;
  std::vector<std::thread> receivers;
  for (int tag = 0; tag < kReceivers; ++tag) {
    receivers.emplace_back([&tr, tag] {
      auto p = tr.Recv(1, 0, tag);
      ASSERT_TRUE(p.ok());
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  tr.Send(0, 1, /*tag=*/1, {1.0f});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // One delivery, notify_all on the shared CV: the two receivers blocked on
  // the other tags wake, find their slots empty, and go back to sleep.
  EXPECT_GE(tr.wake_counters().futile_wakeups, 2u);
  tr.Send(0, 1, /*tag=*/0, {0.0f});
  tr.Send(0, 1, /*tag=*/2, {2.0f});
  for (auto& t : receivers) t.join();
}

}  // namespace
}  // namespace aiacc::transport
