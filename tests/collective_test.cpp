// Collective-library tests.
//
// Threaded (functional): real threads, real payloads — ring/hierarchical
// all-reduce, reduce-scatter, all-gather, broadcast, multi-channel, across a
// sweep of world sizes and buffer lengths (parameterized).
//
// Simulated (timed): analytic estimates, fluid-vs-detailed agreement, the
// multi-stream bandwidth win, and real-payload reductions through the
// simulated rings.
#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <optional>
#include <thread>
#include <tuple>
#include <vector>

#include "collective/simulated.h"
#include "collective/threaded.h"
#include "common/buffer_pool.h"
#include "common/rng.h"
#include "common/sync.h"
#include "core/sync_bits.h"
#include "transport/faulty.h"

namespace aiacc::collective {
namespace {

std::vector<std::vector<float>> MakeRankData(int world, std::size_t len,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> data(static_cast<std::size_t>(world));
  for (auto& v : data) {
    v.resize(len);
    for (float& x : v) x = static_cast<float>(rng.Uniform(-10.0, 10.0));
  }
  return data;
}

std::vector<float> ExpectedSum(const std::vector<std::vector<float>>& data) {
  std::vector<float> sum(data[0].size(), 0.0f);
  for (const auto& v : data) {
    for (std::size_t i = 0; i < v.size(); ++i) sum[i] += v[i];
  }
  return sum;
}

void RunAllRanks(int world, const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) threads.emplace_back([&body, r] { body(r); });
  for (auto& t : threads) t.join();
}

// ------------------------------------------------ threaded: parameterized --

struct RingCase {
  int world;
  std::size_t len;
};

class RingAllReduceP : public ::testing::TestWithParam<RingCase> {};

TEST_P(RingAllReduceP, MatchesSequentialSum) {
  const auto [world, len] = GetParam();
  transport::InProcTransport tr(world);
  auto data = MakeRankData(world, len, 1000 + world * 17 + len);
  const auto expected = ExpectedSum(data);
  RunAllRanks(world, [&](int rank) {
    Comm comm{&tr, rank, world, 0};
    EXPECT_TRUE(
        RingAllReduce(comm, data[static_cast<std::size_t>(rank)],
                      ReduceOp::kSum).ok());
  });
  for (int r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_NEAR(data[static_cast<std::size_t>(r)][i], expected[i], 1e-3)
          << "rank " << r << " element " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RingAllReduceP,
    ::testing::Values(RingCase{1, 16}, RingCase{2, 16}, RingCase{3, 7},
                      RingCase{4, 64}, RingCase{5, 1}, RingCase{4, 1023},
                      RingCase{8, 256}, RingCase{7, 97}, RingCase{2, 2},
                      RingCase{6, 6}));

class HierarchicalAllReduceP
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HierarchicalAllReduceP, MatchesSequentialAvg) {
  const auto [hosts, gpus] = GetParam();
  const int world = hosts * gpus;
  const std::size_t len = 128;
  transport::InProcTransport tr(world);
  auto data = MakeRankData(world, len, 77 + world);
  auto expected = ExpectedSum(data);
  for (float& x : expected) x /= static_cast<float>(world);
  RunAllRanks(world, [&](int rank) {
    Comm comm{&tr, rank, world, 0};
    EXPECT_TRUE(
        HierarchicalAllReduce(comm, gpus, data[static_cast<std::size_t>(rank)],
                              ReduceOp::kAvg).ok());
  });
  for (int r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_NEAR(data[static_cast<std::size_t>(r)][i], expected[i], 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HierarchicalAllReduceP,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 4)));

TEST(ThreadedCollectiveTest, MinAndMaxOps) {
  const int world = 4;
  const std::size_t len = 32;
  transport::InProcTransport tr(world);
  auto data = MakeRankData(world, len, 5);
  auto data_max = data;
  std::vector<float> expected_min(len);
  std::vector<float> expected_max(len);
  for (std::size_t i = 0; i < len; ++i) {
    float lo = data[0][i];
    float hi = data[0][i];
    for (int r = 1; r < world; ++r) {
      lo = std::min(lo, data[static_cast<std::size_t>(r)][i]);
      hi = std::max(hi, data[static_cast<std::size_t>(r)][i]);
    }
    expected_min[i] = lo;
    expected_max[i] = hi;
  }
  RunAllRanks(world, [&](int rank) {
    Comm comm{&tr, rank, world, 0};
    EXPECT_TRUE(
        RingAllReduce(comm, data[static_cast<std::size_t>(rank)],
                      ReduceOp::kMin).ok());
  });
  transport::InProcTransport tr2(world);
  RunAllRanks(world, [&](int rank) {
    Comm comm{&tr2, rank, world, 0};
    EXPECT_TRUE(
        RingAllReduce(comm, data_max[static_cast<std::size_t>(rank)],
                      ReduceOp::kMax).ok());
  });
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(data[static_cast<std::size_t>(r)], expected_min);
    EXPECT_EQ(data_max[static_cast<std::size_t>(r)], expected_max);
  }
}

TEST(ThreadedCollectiveTest, BitVectorMinSyncSemantics) {
  // The decentralized sync protocol: readiness vectors (0/1) min-allreduce
  // to their intersection.
  const int world = 3;
  transport::InProcTransport tr(world);
  std::vector<std::vector<float>> ready = {
      {1, 1, 0, 1, 0}, {1, 0, 1, 1, 0}, {1, 1, 1, 1, 0}};
  RunAllRanks(world, [&](int rank) {
    Comm comm{&tr, rank, world, 0};
    EXPECT_TRUE(
        RingAllReduce(comm, ready[static_cast<std::size_t>(rank)],
                      ReduceOp::kMin).ok());
  });
  const std::vector<float> expected = {1, 0, 0, 1, 0};
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(ready[static_cast<std::size_t>(r)], expected);
  }
}

TEST(ThreadedCollectiveTest, ReduceScatterOwnsReducedChunk) {
  const int world = 4;
  const std::size_t len = 16;
  transport::InProcTransport tr(world);
  auto data = MakeRankData(world, len, 9);
  const auto expected = ExpectedSum(data);
  RunAllRanks(world, [&](int rank) {
    Comm comm{&tr, rank, world, 0};
    EXPECT_TRUE(
        ReduceScatter(comm, data[static_cast<std::size_t>(rank)],
                      ReduceOp::kSum).ok());
  });
  for (int r = 0; r < world; ++r) {
    const std::size_t b = ChunkBegin(len, world, r);
    const std::size_t e = ChunkBegin(len, world, r + 1);
    for (std::size_t i = b; i < e; ++i) {
      ASSERT_NEAR(data[static_cast<std::size_t>(r)][i], expected[i], 1e-3);
    }
  }
}

TEST(ThreadedCollectiveTest, ReduceScatterThenAllGatherEqualsAllReduce) {
  const int world = 4;
  const std::size_t len = 64;
  transport::InProcTransport tr(world);
  auto data = MakeRankData(world, len, 21);
  const auto expected = ExpectedSum(data);
  RunAllRanks(world, [&](int rank) {
    Comm comm{&tr, rank, world, 0};
    EXPECT_TRUE(
        ReduceScatter(comm, data[static_cast<std::size_t>(rank)],
                      ReduceOp::kSum).ok());
    Comm comm2{&tr, rank, world, 100};
    EXPECT_TRUE(AllGather(comm2, data[static_cast<std::size_t>(rank)]).ok());
  });
  for (int r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_NEAR(data[static_cast<std::size_t>(r)][i], expected[i], 1e-3);
    }
  }
}

TEST(ThreadedCollectiveTest, BroadcastFromEveryRoot) {
  const int world = 5;
  const std::size_t len = 33;
  for (int root = 0; root < world; ++root) {
    transport::InProcTransport tr(world);
    auto data = MakeRankData(world, len, 31 + root);
    const auto want = data[static_cast<std::size_t>(root)];
    RunAllRanks(world, [&](int rank) {
      Comm comm{&tr, rank, world, 0};
      EXPECT_TRUE(
          Broadcast(comm, root, data[static_cast<std::size_t>(rank)]).ok());
    });
    for (int r = 0; r < world; ++r) {
      EXPECT_EQ(data[static_cast<std::size_t>(r)], want) << "root " << root;
    }
  }
}

class MultiChannelP : public ::testing::TestWithParam<int> {};

TEST_P(MultiChannelP, MatchesSingleChannel) {
  const int channels = GetParam();
  const int world = 4;
  const std::size_t len = 1000;
  transport::InProcTransport tr(world);
  auto data = MakeRankData(world, len, 55);
  auto expected = ExpectedSum(data);
  for (float& x : expected) x /= world;
  RunAllRanks(world, [&](int rank) {
    Comm comm{&tr, rank, world, 0};
    EXPECT_TRUE(
        MultiChannelAllReduce(comm, data[static_cast<std::size_t>(rank)],
                              ReduceOp::kAvg, channels).ok());
  });
  for (int r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_NEAR(data[static_cast<std::size_t>(r)][i], expected[i], 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Channels, MultiChannelP,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ThreadedCollectiveTest, RingMessageCount) {
  // Each rank sends exactly 2(n-1) messages in a ring all-reduce.
  const int world = 4;
  transport::InProcTransport tr(world);
  auto data = MakeRankData(world, 64, 3);
  RunAllRanks(world, [&](int rank) {
    Comm comm{&tr, rank, world, 0};
    EXPECT_TRUE(
        RingAllReduce(comm, data[static_cast<std::size_t>(rank)],
                      ReduceOp::kSum).ok());
  });
  EXPECT_EQ(tr.TotalMessages(),
            static_cast<std::uint64_t>(world) * 2 * (world - 1));
}

TEST(ThreadedCollectiveTest, ReduceToRootOnly) {
  const int world = 4;
  const std::size_t len = 20;
  for (int root = 0; root < world; ++root) {
    transport::InProcTransport tr(world);
    auto data = MakeRankData(world, len, 41 + root);
    const auto original = data;
    const auto expected = ExpectedSum(data);
    RunAllRanks(world, [&](int rank) {
      Comm comm{&tr, rank, world, 0};
      EXPECT_TRUE(
          Reduce(comm, root, data[static_cast<std::size_t>(rank)],
                 ReduceOp::kSum).ok());
    });
    for (int r = 0; r < world; ++r) {
      if (r == root) {
        for (std::size_t i = 0; i < len; ++i) {
          ASSERT_NEAR(data[static_cast<std::size_t>(r)][i], expected[i],
                      1e-3);
        }
      } else {
        EXPECT_EQ(data[static_cast<std::size_t>(r)],
                  original[static_cast<std::size_t>(r)])
            << "non-root buffer modified";
      }
    }
  }
}

TEST(ThreadedCollectiveTest, GatherCollectsRankMajor) {
  const int world = 3;
  const std::size_t len = 5;
  transport::InProcTransport tr(world);
  auto data = MakeRankData(world, len, 51);
  std::vector<float> gathered(world * len);
  RunAllRanks(world, [&](int rank) {
    Comm comm{&tr, rank, world, 0};
    EXPECT_TRUE(
        Gather(comm, /*root=*/1,
               data[static_cast<std::size_t>(rank)],
               rank == 1 ? std::span<float>(gathered) : std::span<float>())
            .ok());
  });
  for (int r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_EQ(gathered[static_cast<std::size_t>(r) * len + i],
                data[static_cast<std::size_t>(r)][i]);
    }
  }
}

TEST(ThreadedCollectiveTest, ScatterDistributesRankMajor) {
  const int world = 3;
  const std::size_t len = 4;
  transport::InProcTransport tr(world);
  std::vector<float> source(world * len);
  for (std::size_t i = 0; i < source.size(); ++i) {
    source[i] = static_cast<float>(i);
  }
  std::vector<std::vector<float>> chunks(world, std::vector<float>(len));
  RunAllRanks(world, [&](int rank) {
    Comm comm{&tr, rank, world, 0};
    EXPECT_TRUE(
        Scatter(comm, /*root=*/0,
                rank == 0 ? std::span<const float>(source)
                          : std::span<const float>(),
                chunks[static_cast<std::size_t>(rank)])
            .ok());
  });
  for (int r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_EQ(chunks[static_cast<std::size_t>(r)][i],
                source[static_cast<std::size_t>(r) * len + i]);
    }
  }
}

TEST(ThreadedCollectiveTest, ScatterThenGatherRoundTrips) {
  const int world = 4;
  const std::size_t len = 6;
  transport::InProcTransport tr(world);
  std::vector<float> source(world * len);
  Rng rng(61);
  for (float& v : source) v = static_cast<float>(rng.Uniform(-1, 1));
  std::vector<float> back(world * len);
  RunAllRanks(world, [&](int rank) {
    std::vector<float> chunk(len);
    Comm comm{&tr, rank, world, 0};
    EXPECT_TRUE(
        Scatter(comm, 0,
                rank == 0 ? std::span<const float>(source)
                          : std::span<const float>(),
                chunk)
            .ok());
    Comm comm2{&tr, rank, world, 8};
    EXPECT_TRUE(
        Gather(comm2, 0, chunk,
               rank == 0 ? std::span<float>(back) : std::span<float>())
            .ok());
  });
  EXPECT_EQ(back, source);
}

TEST(ThreadedCollectiveTest, AllToAllTransposesBlocks) {
  const int world = 4;
  const std::size_t block = 3;
  transport::InProcTransport tr(world);
  // send[r][d*block + i] = r * 100 + d * 10 + i.
  std::vector<std::vector<float>> send(world);
  std::vector<std::vector<float>> recv(world,
                                       std::vector<float>(world * block));
  for (int r = 0; r < world; ++r) {
    for (int d = 0; d < world; ++d) {
      for (std::size_t i = 0; i < block; ++i) {
        send[static_cast<std::size_t>(r)].push_back(
            static_cast<float>(r * 100 + d * 10 + static_cast<int>(i)));
      }
    }
  }
  RunAllRanks(world, [&](int rank) {
    Comm comm{&tr, rank, world, 0};
    EXPECT_TRUE(
        AllToAll(comm, send[static_cast<std::size_t>(rank)],
                 recv[static_cast<std::size_t>(rank)]).ok());
  });
  // recv[d][s*block + i] must equal send[s][d*block + i].
  for (int d = 0; d < world; ++d) {
    for (int s = 0; s < world; ++s) {
      for (std::size_t i = 0; i < block; ++i) {
        EXPECT_EQ(recv[static_cast<std::size_t>(d)]
                      [static_cast<std::size_t>(s) * block + i],
                  static_cast<float>(s * 100 + d * 10 + static_cast<int>(i)));
      }
    }
  }
}

TEST(ChunkBeginTest, CoversBufferExactly) {
  for (std::size_t len : {0u, 1u, 7u, 64u, 1000u}) {
    for (int n : {1, 2, 3, 7, 16}) {
      EXPECT_EQ(ChunkBegin(len, n, 0), 0u);
      EXPECT_EQ(ChunkBegin(len, n, n), len);
      for (int c = 0; c < n; ++c) {
        EXPECT_LE(ChunkBegin(len, n, c), ChunkBegin(len, n, c + 1));
      }
    }
  }
}

// ------------------------------------------------------------- simulated --

class SimCollectiveTest : public ::testing::Test {
 protected:
  void Build(int hosts, int gpus, net::TransportKind kind) {
    fabric = std::make_unique<net::CloudFabric>(
        engine, net::Topology{hosts, gpus, kind}, net::FabricParams{});
    coll = std::make_unique<SimCollectives>(*fabric);
  }
  sim::Engine engine;
  std::unique_ptr<net::CloudFabric> fabric;
  std::unique_ptr<SimCollectives> coll;
};

TEST_F(SimCollectiveTest, RingTimeMatchesAnalyticEstimate) {
  Build(4, 8, net::TransportKind::kTcp);
  const double bytes = 64e6;
  double done_at = -1.0;
  SimCollectives::Unit unit;
  unit.bytes_per_rank = bytes;
  unit.on_done = [&](double t) { done_at = t; };
  coll->Start(std::move(unit));
  engine.Run();
  EXPECT_NEAR(done_at, coll->EstimateTime(bytes, Algorithm::kRing),
              done_at * 0.01);
}

TEST_F(SimCollectiveTest, HierarchicalTimeMatchesEstimate) {
  Build(4, 8, net::TransportKind::kTcp);
  const double bytes = 64e6;
  double done_at = -1.0;
  SimCollectives::Unit unit;
  unit.bytes_per_rank = bytes;
  unit.algorithm = Algorithm::kHierarchical;
  unit.on_done = [&](double t) { done_at = t; };
  coll->Start(std::move(unit));
  engine.Run();
  EXPECT_NEAR(done_at, coll->EstimateTime(bytes, Algorithm::kHierarchical),
              done_at * 0.01);
}

TEST_F(SimCollectiveTest, FluidAgreesWithDetailedRing) {
  // The macro-flow (fluid) model and the step-level ring must agree on an
  // otherwise idle network (within the latency-folding approximation).
  Build(4, 2, net::TransportKind::kTcp);
  const double bytes = 32e6;
  double fluid = -1.0;
  {
    SimCollectives::Unit unit;
    unit.bytes_per_rank = bytes;
    unit.on_done = [&](double t) { fluid = t; };
    coll->Start(std::move(unit));
    engine.Run();
  }
  sim::Engine engine2;
  net::CloudFabric fabric2(engine2, net::Topology{4, 2, net::TransportKind::kTcp},
                           net::FabricParams{});
  SimCollectives coll2(fabric2);
  double detailed_done = -1.0;
  double detailed_start = engine2.Now();
  {
    SimCollectives::Unit unit;
    unit.bytes_per_rank = bytes;
    unit.on_done = [&](double t) { detailed_done = t; };
    coll2.StartDetailedRing(std::move(unit));
    engine2.Run();
  }
  const double detailed = detailed_done - detailed_start;
  EXPECT_NEAR(fluid, detailed, detailed * 0.15);
}

TEST_F(SimCollectiveTest, MultiStreamSpeedsUpLargeTransfer) {
  // One 96MB unit vs four concurrent 24MB units: the four streams multiplex
  // the NIC past the single-stream cap, finishing ~3x faster (cap is 30%).
  Build(2, 8, net::TransportKind::kTcp);
  const double total = 96e6;
  double single_done = -1.0;
  {
    SimCollectives::Unit unit;
    unit.bytes_per_rank = total;
    unit.on_done = [&](double t) { single_done = t; };
    coll->Start(std::move(unit));
    engine.Run();
  }
  sim::Engine engine2;
  net::CloudFabric fabric2(engine2, net::Topology{2, 8, net::TransportKind::kTcp},
                           net::FabricParams{});
  SimCollectives coll2(fabric2);
  int done = 0;
  double multi_done = -1.0;
  for (int s = 0; s < 4; ++s) {
    SimCollectives::Unit unit;
    unit.bytes_per_rank = total / 4;
    unit.on_done = [&](double t) {
      if (++done == 4) multi_done = t;
    };
    coll2.Start(std::move(unit));
  }
  engine2.Run();
  ASSERT_GT(single_done, 0.0);
  ASSERT_GT(multi_done, 0.0);
  const double speedup = single_done / multi_done;
  EXPECT_GT(speedup, 2.5);
  EXPECT_LT(speedup, 3.5);
}

TEST_F(SimCollectiveTest, PayloadsAreReducedForReal) {
  Build(2, 2, net::TransportKind::kTcp);
  const int world = 4;
  auto data = MakeRankData(world, 50, 123);
  auto expected = ExpectedSum(data);
  for (float& x : expected) x /= world;
  SimCollectives::Unit unit;
  unit.bytes_per_rank = 50 * sizeof(float);
  for (auto& v : data) unit.buffers.emplace_back(v);
  bool done = false;
  unit.on_done = [&](double) { done = true; };
  coll->Start(std::move(unit));
  engine.Run();
  ASSERT_TRUE(done);
  for (int r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < 50; ++i) {
      ASSERT_NEAR(data[static_cast<std::size_t>(r)][i], expected[i], 1e-4);
    }
  }
}

TEST_F(SimCollectiveTest, SubgroupAllReduceOnlyTouchesItsHosts) {
  Build(4, 2, net::TransportKind::kTcp);
  // Group spans hosts 0 and 1 only.
  SimCollectives::Unit unit;
  unit.bytes_per_rank = 8e6;
  unit.ranks = {0, 1, 2, 3};  // hosts 0,1
  bool done = false;
  unit.on_done = [&](double) { done = true; };
  coll->Start(std::move(unit));
  engine.Run();
  ASSERT_TRUE(done);
  EXPECT_GT(fabric->network().Stats(fabric->EgressLink(0)).bytes_carried, 0.0);
  EXPECT_GT(fabric->network().Stats(fabric->EgressLink(1)).bytes_carried, 0.0);
  EXPECT_EQ(fabric->network().Stats(fabric->EgressLink(2)).bytes_carried, 0.0);
  EXPECT_EQ(fabric->network().Stats(fabric->EgressLink(3)).bytes_carried, 0.0);
}

TEST_F(SimCollectiveTest, SingleRankCompletesImmediately) {
  Build(1, 1, net::TransportKind::kTcp);
  bool done = false;
  SimCollectives::Unit unit;
  unit.bytes_per_rank = 1e6;
  unit.on_done = [&](double) { done = true; };
  coll->Start(std::move(unit));
  engine.Run();
  EXPECT_TRUE(done);
  EXPECT_LT(engine.Now(), 1e-3);
}

TEST_F(SimCollectiveTest, TimedBroadcastDeliversAndScales) {
  Build(4, 8, net::TransportKind::kTcp);
  double small_done = -1.0;
  coll->Broadcast(8e6, /*root=*/0, {}, [&](double t) { small_done = t; });
  engine.Run();
  ASSERT_GT(small_done, 0.0);

  sim::Engine engine2;
  net::CloudFabric fabric2(engine2,
                           net::Topology{4, 8, net::TransportKind::kTcp},
                           net::FabricParams{});
  SimCollectives coll2(fabric2);
  double big_done = -1.0;
  coll2.Broadcast(80e6, 0, {}, [&](double t) { big_done = t; });
  engine2.Run();
  // 10x the bytes: close to 10x the time (latency is small here).
  EXPECT_GT(big_done, small_done * 8.0);
  EXPECT_LT(big_done, small_done * 12.0);
}

TEST_F(SimCollectiveTest, TimedBroadcastSingleRankImmediate) {
  Build(1, 1, net::TransportKind::kTcp);
  bool done = false;
  coll->Broadcast(1e6, 0, {}, [&](double) { done = true; });
  engine.Run();
  EXPECT_TRUE(done);
  EXPECT_LT(engine.Now(), 1e-3);
}

TEST_F(SimCollectiveTest, TimedBroadcastSubgroupTouchesOnlyItsHosts) {
  Build(4, 2, net::TransportKind::kTcp);
  bool done = false;
  coll->Broadcast(8e6, /*root=*/0, {0, 1, 2, 3},  // hosts 0 and 1
                  [&](double) { done = true; });
  engine.Run();
  ASSERT_TRUE(done);
  EXPECT_GT(fabric->network().Stats(fabric->EgressLink(0)).bytes_carried,
            0.0);
  EXPECT_EQ(fabric->network().Stats(fabric->EgressLink(3)).bytes_carried,
            0.0);
}

TEST_F(SimCollectiveTest, RdmaFasterThanTcp) {
  Build(4, 8, net::TransportKind::kTcp);
  const double bytes = 128e6;
  const double tcp = coll->EstimateTime(bytes, Algorithm::kRing);
  sim::Engine engine2;
  net::CloudFabric rdma_fabric(
      engine2, net::Topology{4, 8, net::TransportKind::kRdma},
      net::FabricParams{});
  SimCollectives rdma_coll(rdma_fabric);
  const double rdma = rdma_coll.EstimateTime(bytes, Algorithm::kRing);
  EXPECT_LT(rdma, tcp);
}

// ------------------------------------- threaded: shutdown robustness ------

// Run the collective on every rank except `missing`, so it can never
// complete; fire Shutdown mid-algorithm. Every participating thread must
// return (join = no deadlock) and whoever was blocked must report non-OK.
// Ranks that legitimately finish before the missing rank matters (e.g.
// early pipeline stages) may return Ok — we require at least one observer.
void ExpectUnblocksOnShutdown(int world, int missing,
                              const std::function<Status(const Comm&)>& op) {
  transport::InProcTransport tr(world);
  std::vector<Status> status(static_cast<std::size_t>(world), Status::Ok());
  std::vector<std::thread> threads;
  for (int r = 0; r < world; ++r) {
    if (r == missing) continue;
    threads.emplace_back([&, r] {
      Comm comm{&tr, r, world, 0};
      status[static_cast<std::size_t>(r)] = op(comm);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  tr.Shutdown();
  for (auto& t : threads) t.join();
  int non_ok = 0;
  for (int r = 0; r < world; ++r) {
    if (r != missing && !status[static_cast<std::size_t>(r)].ok()) ++non_ok;
  }
  EXPECT_GE(non_ok, 1) << "no rank observed the shutdown";
}

TEST(ShutdownUnblocksTest, RingAllReduce) {
  ExpectUnblocksOnShutdown(4, 3, [](const Comm& c) {
    std::vector<float> d(32, 1.0f);
    return RingAllReduce(c, d, ReduceOp::kSum);
  });
}

TEST(ShutdownUnblocksTest, HierarchicalAllReduce) {
  ExpectUnblocksOnShutdown(4, 3, [](const Comm& c) {
    std::vector<float> d(32, 1.0f);
    return HierarchicalAllReduce(c, /*gpus_per_host=*/2, d, ReduceOp::kAvg);
  });
}

TEST(ShutdownUnblocksTest, ReduceScatter) {
  ExpectUnblocksOnShutdown(4, 3, [](const Comm& c) {
    std::vector<float> d(32, 1.0f);
    return ReduceScatter(c, d, ReduceOp::kSum);
  });
}

TEST(ShutdownUnblocksTest, AllGather) {
  ExpectUnblocksOnShutdown(4, 3, [](const Comm& c) {
    std::vector<float> d(32, 1.0f);
    return AllGather(c, d);
  });
}

TEST(ShutdownUnblocksTest, BroadcastFromMissingRoot) {
  ExpectUnblocksOnShutdown(4, 3, [](const Comm& c) {
    std::vector<float> d(32, 1.0f);
    return Broadcast(c, /*root=*/3, d);
  });
}

TEST(ShutdownUnblocksTest, ReduceToRoot) {
  ExpectUnblocksOnShutdown(4, 3, [](const Comm& c) {
    std::vector<float> d(32, 1.0f);
    return Reduce(c, /*root=*/0, d, ReduceOp::kSum);
  });
}

TEST(ShutdownUnblocksTest, GatherMissingContribution) {
  ExpectUnblocksOnShutdown(4, 3, [](const Comm& c) {
    std::vector<float> mine(8, 1.0f);
    std::vector<float> gathered(c.rank == 0 ? 32 : 0);
    return Gather(c, /*root=*/0, mine, gathered);
  });
}

TEST(ShutdownUnblocksTest, ScatterFromMissingRoot) {
  ExpectUnblocksOnShutdown(4, 3, [](const Comm& c) {
    std::vector<float> chunk(8);
    return Scatter(c, /*root=*/3, {}, chunk);
  });
}

TEST(ShutdownUnblocksTest, AllToAll) {
  ExpectUnblocksOnShutdown(4, 3, [](const Comm& c) {
    std::vector<float> send(32, 1.0f);
    std::vector<float> recv(32);
    return AllToAll(c, send, recv);
  });
}

TEST(ShutdownUnblocksTest, MultiChannelAllReduce) {
  ExpectUnblocksOnShutdown(4, 3, [](const Comm& c) {
    std::vector<float> d(64, 1.0f);
    return MultiChannelAllReduce(c, d, ReduceOp::kSum, /*num_channels=*/3);
  });
}

// --------------------------------------- pooled hot path: bit-exactness --
//
// The zero-allocation rewrite (buffer pooling, payload forwarding, fused
// RecvReduce) must not change a single bit of any result: the pooled path
// performs the same elementwise operations in the same order as the legacy
// copy path, so results are compared with exact float equality, not a
// tolerance.

std::vector<std::vector<float>> RunPipeline(transport::Transport& tr,
                                            int world, std::size_t len,
                                            ReduceOp op,
                                            common::BufferPool* pool,
                                            std::uint64_t seed) {
  auto data = MakeRankData(world, len, seed);
  RunAllRanks(world, [&](int rank) {
    Comm comm{&tr, rank, world, /*tag_base=*/0, /*timeout_ms=*/0, pool};
    EXPECT_TRUE(
        RingAllReduce(comm, data[static_cast<std::size_t>(rank)], op).ok());
  });
  return data;
}

void ExpectBitIdentical(const std::vector<std::vector<float>>& legacy,
                        const std::vector<std::vector<float>>& pooled) {
  ASSERT_EQ(legacy.size(), pooled.size());
  for (std::size_t r = 0; r < legacy.size(); ++r) {
    ASSERT_EQ(legacy[r].size(), pooled[r].size());
    if (legacy[r].empty()) continue;  // data() may be null: UB for memcmp
    ASSERT_EQ(std::memcmp(legacy[r].data(), pooled[r].data(),
                          legacy[r].size() * sizeof(float)),
              0)
        << "rank " << r << " diverged from the legacy copy path";
  }
}

class PooledBitExactP
    : public ::testing::TestWithParam<std::tuple<int, std::size_t, ReduceOp>> {
};

TEST_P(PooledBitExactP, PooledRingAllReduceMatchesLegacyBitwise) {
  const auto [world, len, op] = GetParam();
  const std::uint64_t seed = 9000 + static_cast<std::uint64_t>(world) * 131 +
                             len * 7 + static_cast<std::uint64_t>(op);
  transport::InProcTransport legacy_tr(world);
  const auto legacy =
      RunPipeline(legacy_tr, world, len, op, /*pool=*/nullptr, seed);
  transport::InProcTransport pooled_tr(world);
  common::BufferPool pool;
  const auto pooled = RunPipeline(pooled_tr, world, len, op, &pool, seed);
  ExpectBitIdentical(legacy, pooled);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PooledBitExactP,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),   // world 1..8
                       ::testing::Values(std::size_t{1}, std::size_t{7},
                                         std::size_t{97},
                                         std::size_t{1023}),  // odd sizes
                       ::testing::Values(ReduceOp::kSum, ReduceOp::kAvg,
                                         ReduceOp::kMin, ReduceOp::kMax)));

TEST(PooledBitExactTest, OtherCollectivesMatchLegacyBitwise) {
  const int world = 5;
  const std::size_t len = 35;    // odd per-rank chunk
  const std::size_t full = len * world;
  const auto data = MakeRankData(world, full, 4242);

  // Broadcast, reduce-scatter (own chunk only — scratch regions are
  // unspecified), all-gather, reduce, gather, scatter and all-to-all, each
  // run once per path on identical inputs.
  struct PathResult {
    std::vector<std::vector<float>> bcast, rs_chunk, ag, red, gat, sct, a2a;
  };
  auto run_path = [&](common::BufferPool* pool) {
    PathResult out;
    out.bcast = data;
    out.rs_chunk.assign(world, {});
    out.ag = data;  // chunk r of rank r's buffer seeds the all-gather
    out.red = data;
    out.gat.assign(world, std::vector<float>());
    out.gat[0].resize(full);
    out.sct.assign(world, std::vector<float>(len));
    out.a2a.assign(world, std::vector<float>(full));
    transport::InProcTransport tr(world);
    RunAllRanks(world, [&](int rank) {
      const auto r = static_cast<std::size_t>(rank);
      Comm comm{&tr, rank, world, /*tag_base=*/0, /*timeout_ms=*/0, pool};
      EXPECT_TRUE(Broadcast(comm, /*root=*/2, out.bcast[r]).ok());
      std::vector<float> rs = data[r];
      EXPECT_TRUE(ReduceScatter(comm, rs, ReduceOp::kSum).ok());
      const std::size_t lo = ChunkBegin(full, world, rank);
      const std::size_t hi = ChunkBegin(full, world, rank + 1);
      out.rs_chunk[r].assign(rs.begin() + static_cast<std::ptrdiff_t>(lo),
                             rs.begin() + static_cast<std::ptrdiff_t>(hi));
      EXPECT_TRUE(AllGather(comm, out.ag[r]).ok());
      EXPECT_TRUE(Reduce(comm, /*root=*/1, out.red[r], ReduceOp::kAvg).ok());
      EXPECT_TRUE(Gather(comm, /*root=*/0,
                         std::span<const float>(data[r]).subspan(0, len),
                         out.gat[r])
                      .ok());
      const std::span<const float> to_scatter =
          rank == 3 ? std::span<const float>(data[3])
                    : std::span<const float>();
      EXPECT_TRUE(Scatter(comm, /*root=*/3, to_scatter, out.sct[r]).ok());
      EXPECT_TRUE(AllToAll(comm, data[r], out.a2a[r]).ok());
    });
    return out;
  };

  common::BufferPool pool;
  const PathResult legacy = run_path(nullptr);
  const PathResult pooled = run_path(&pool);
  ExpectBitIdentical(legacy.bcast, pooled.bcast);
  ExpectBitIdentical(legacy.rs_chunk, pooled.rs_chunk);
  ExpectBitIdentical(legacy.ag, pooled.ag);
  ExpectBitIdentical(legacy.red, pooled.red);
  ExpectBitIdentical(legacy.gat, pooled.gat);
  ExpectBitIdentical(legacy.sct, pooled.sct);
  ExpectBitIdentical(legacy.a2a, pooled.a2a);
}

TEST(PooledChaosTest, BitIdenticalUnderLosslessFaultSchedule) {
  // Duplication, reordering and delay — but no drops — over the pooled
  // path: the strict Recv framing de-duplicates and re-orders, so the
  // result must still be bitwise identical to a clean legacy run.
  const int world = 4;
  const std::size_t len = 257;
  for (const ReduceOp op : {ReduceOp::kSum, ReduceOp::kAvg, ReduceOp::kMin,
                            ReduceOp::kMax}) {
    const std::uint64_t seed = 31337 + static_cast<std::uint64_t>(op);
    transport::InProcTransport clean_tr(world);
    const auto clean =
        RunPipeline(clean_tr, world, len, op, /*pool=*/nullptr, seed);

    transport::InProcTransport inner(world);
    transport::FaultSpec spec;
    spec.seed = 99 + static_cast<std::uint64_t>(op);
    spec.all_links.dup_prob = 0.15;
    spec.all_links.reorder_prob = 0.15;
    spec.all_links.delay_prob = 0.25;
    spec.all_links.max_delay_ms = 2.0;
    transport::FaultyTransport chaotic(inner, spec);
    common::BufferPool pool;
    const auto chaos = RunPipeline(chaotic, world, len, op, &pool, seed);

    ExpectBitIdentical(clean, chaos);
    const transport::FaultStats stats = chaotic.stats();
    EXPECT_GT(stats.duplicated + stats.reordered + stats.delayed, 0u)
        << "fault schedule did not fire; chaos coverage is vacuous";
    EXPECT_EQ(stats.dropped, 0u);
  }
}

// -------------------------------------------------- pipelined ring slices --
// Depth-d slicing changes only the message framing: every rank still reduces
// the same elements in the same order, so any depth must be bitwise
// identical to the depth-1 baseline (exact equality, no tolerance). Lengths
// are chosen so MultiChannelAllReduce's depth-aware small-payload fallback
// decides the same way at every depth — 7 falls back everywhere, 257/1023
// never do (the largest threshold here is 4 channels x 8 ranks x depth 8 =
// 256 floats) — otherwise the two runs would legitimately decompose (and
// round) differently.

std::vector<std::vector<float>> RunPipelined(int world, std::size_t len,
                                             ReduceOp op, int depth,
                                             int channels,
                                             common::BufferPool* pool,
                                             std::uint64_t seed) {
  transport::InProcTransport tr(world);
  auto data = MakeRankData(world, len, seed);
  RunAllRanks(world, [&](int rank) {
    Comm comm{&tr,  rank, world, /*tag_base=*/0, /*timeout_ms=*/0,
              pool, depth};
    EXPECT_TRUE(MultiChannelAllReduce(comm, data[static_cast<std::size_t>(rank)],
                                      op, channels)
                    .ok());
  });
  return data;
}

class PipelinedBitExactP
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, std::size_t, ReduceOp>> {};

TEST_P(PipelinedBitExactP, AnyDepthMatchesDepthOneBitwise) {
  const auto [depth, channels, world, len, op] = GetParam();
  const std::uint64_t seed = 77000 + static_cast<std::uint64_t>(depth) * 1009 +
                             static_cast<std::uint64_t>(channels) * 131 +
                             static_cast<std::uint64_t>(world) * 17 + len * 7 +
                             static_cast<std::uint64_t>(op);
  // Baseline: depth 1 on the legacy (pool-less) path; pipelined: depth d on
  // the pooled path — one comparison covers both axes at once.
  const auto base =
      RunPipelined(world, len, op, /*depth=*/1, channels, nullptr, seed);
  common::BufferPool pool;
  const auto piped = RunPipelined(world, len, op, depth, channels, &pool, seed);
  ExpectBitIdentical(base, piped);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelinedBitExactP,
    ::testing::Combine(::testing::Values(2, 4, 8),        // pipeline depth
                       ::testing::Values(1, 4),           // channels
                       ::testing::Values(1, 2, 3, 5, 8),  // world
                       ::testing::Values(std::size_t{7}, std::size_t{257},
                                         std::size_t{1023}),
                       ::testing::Values(ReduceOp::kSum, ReduceOp::kAvg,
                                         ReduceOp::kMin, ReduceOp::kMax)));

TEST(PipelinedBitExactTest, HierarchicalMatchesDepthOneBitwise) {
  // Slicing threads through both nested rings (intra-host + leaders).
  const int hosts = 2;
  const int gpus = 2;
  const int world = hosts * gpus;
  const std::size_t len = 128;
  auto run = [&](int depth, common::BufferPool* pool) {
    transport::InProcTransport tr(world);
    auto data = MakeRankData(world, len, 5150);
    RunAllRanks(world, [&](int rank) {
      Comm comm{&tr,  rank, world, /*tag_base=*/0, /*timeout_ms=*/0,
                pool, depth};
      EXPECT_TRUE(HierarchicalAllReduce(comm, gpus,
                                        data[static_cast<std::size_t>(rank)],
                                        ReduceOp::kSum)
                      .ok());
    });
    return data;
  };
  common::BufferPool pool;
  ExpectBitIdentical(run(1, nullptr), run(4, &pool));
}

TEST(PipelinedChaosTest, BitIdenticalUnderLosslessFaultSchedule) {
  // Duplication, reordering and delay across a depth-4 pipelined run: the
  // strict per-(src,tag) FIFO framing must keep the in-flight slice window
  // coherent, matching a clean depth-1 legacy run bit for bit.
  const int world = 4;
  const std::size_t len = 257;
  for (const ReduceOp op : {ReduceOp::kSum, ReduceOp::kAvg, ReduceOp::kMin,
                            ReduceOp::kMax}) {
    const std::uint64_t seed = 86000 + static_cast<std::uint64_t>(op);
    transport::InProcTransport clean_tr(world);
    const auto clean =
        RunPipeline(clean_tr, world, len, op, /*pool=*/nullptr, seed);

    transport::InProcTransport inner(world);
    transport::FaultSpec spec;
    spec.seed = 4242 + static_cast<std::uint64_t>(op);
    spec.all_links.dup_prob = 0.15;
    spec.all_links.reorder_prob = 0.15;
    spec.all_links.delay_prob = 0.25;
    spec.all_links.max_delay_ms = 2.0;
    transport::FaultyTransport chaotic(inner, spec);
    common::BufferPool pool;
    auto data = MakeRankData(world, len, seed);
    RunAllRanks(world, [&](int rank) {
      Comm comm{&chaotic, rank,  world, /*tag_base=*/0, /*timeout_ms=*/0,
                &pool,    /*pipeline_depth=*/4};
      EXPECT_TRUE(
          RingAllReduce(comm, data[static_cast<std::size_t>(rank)], op).ok());
    });

    ExpectBitIdentical(clean, data);
    const transport::FaultStats stats = chaotic.stats();
    EXPECT_GT(stats.duplicated + stats.reordered + stats.delayed, 0u)
        << "fault schedule did not fire; chaos coverage is vacuous";
    EXPECT_EQ(stats.dropped, 0u);
  }
}

TEST(ThreadedCollectiveTest, PipelinedRingMessageCount) {
  // Depth-d slicing multiplies each rank's 2(n-1) chunk sends into
  // 2(n-1)*d_eff slice sends, where d_eff clamps to the per-step chunk size.
  const int world = 4;
  {
    transport::InProcTransport tr(world);
    auto data = MakeRankData(world, 64, 21);  // chunks of 16: depth 4 fits
    RunAllRanks(world, [&](int rank) {
      Comm comm{&tr,     rank, world, /*tag_base=*/0, /*timeout_ms=*/0,
                nullptr, /*pipeline_depth=*/4};
      EXPECT_TRUE(
          RingAllReduce(comm, data[static_cast<std::size_t>(rank)],
                        ReduceOp::kSum).ok());
    });
    EXPECT_EQ(tr.TotalMessages(),
              static_cast<std::uint64_t>(world) * 2 * (world - 1) * 4);
  }
  {
    transport::InProcTransport tr(world);
    auto data = MakeRankData(world, 6, 22);  // 1-float chunks: d_eff = 1
    RunAllRanks(world, [&](int rank) {
      Comm comm{&tr,     rank, world, /*tag_base=*/0, /*timeout_ms=*/0,
                nullptr, /*pipeline_depth=*/8};
      EXPECT_TRUE(
          RingAllReduce(comm, data[static_cast<std::size_t>(rank)],
                        ReduceOp::kSum).ok());
    });
    EXPECT_EQ(tr.TotalMessages(),
              static_cast<std::uint64_t>(world) * 2 * (world - 1));
  }
}

// ------------------------------------------------ bit-packed sync rounds --

TEST(ReduceOpTest, BitAndIsExactBitwiseIntersection) {
  // Arbitrary 32-bit lane patterns — quiet/signalling NaNs, denormals, -0,
  // all-ones — must AND exactly: no lane may be canonicalized on the way
  // through Accumulate.
  const std::uint32_t pa[] = {0xFFFFFFFFu, 0x7FC00001u, 0x7F800001u,
                              0x00000001u, 0x80000000u, 0xDEADBEEFu,
                              0x00000000u, 0x3F800000u, 0x00400000u,
                              0xFFFFFFFFu, 0x12345678u};
  const std::uint32_t pb[] = {0x12345678u, 0xFFC00003u, 0xFF800001u,
                              0x00000003u, 0xFFFFFFFFu, 0xBEEFDEADu,
                              0xFFFFFFFFu, 0x3F800000u, 0x00C00000u,
                              0x7FFFFFFFu, 0x87654321u};
  const std::size_t n = std::size(pa);  // > 8: vector body plus scalar tail
  std::vector<float> a(n);
  std::vector<float> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = std::bit_cast<float>(pa[i]);
    b[i] = std::bit_cast<float>(pb[i]);
  }
  Accumulate(a, b, ReduceOp::kBitAnd);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(a[i]), pa[i] & pb[i])
        << "lane " << i;
  }
}

TEST(ThreadedCollectiveTest, PackedSyncBitsMatchLegacyMinEncoding) {
  // The bit-packed sync round (kBitAnd over 32-bit lanes) must compute the
  // exact readiness intersection the legacy one-float-per-gradient kMin
  // encoding did, while moving 1/32 the payload bytes per round.
  const int world = 4;
  const std::size_t n_bits = 2048;  // divisible by 32: exact 32x shrink
  Rng rng(97531);
  std::vector<BitVector> ready(static_cast<std::size_t>(world),
                               BitVector(n_bits));
  std::vector<std::vector<float>> legacy(
      static_cast<std::size_t>(world), std::vector<float>(n_bits));
  for (int r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < n_bits; ++i) {
      const bool bit = rng.Uniform(0.0, 1.0) < 0.8;
      ready[static_cast<std::size_t>(r)].Assign(i, bit);
      legacy[static_cast<std::size_t>(r)][i] = bit ? 1.0f : 0.0f;
    }
  }

  transport::InProcTransport legacy_tr(world);
  RunAllRanks(world, [&](int rank) {
    Comm comm{&legacy_tr, rank, world, 0};
    EXPECT_TRUE(RingAllReduce(comm, legacy[static_cast<std::size_t>(rank)],
                              ReduceOp::kMin)
                    .ok());
  });

  const std::size_t words = core::SyncWordCount(n_bits);
  ASSERT_EQ(words, n_bits / 32);
  std::vector<std::vector<float>> packed(
      static_cast<std::size_t>(world), std::vector<float>(words));
  transport::InProcTransport packed_tr(world);
  RunAllRanks(world, [&](int rank) {
    const auto r = static_cast<std::size_t>(rank);
    core::PackSyncBits(ready[r], packed[r]);
    Comm comm{&packed_tr, rank, world, 0};
    EXPECT_TRUE(RingAllReduce(comm, packed[r], ReduceOp::kBitAnd).ok());
  });

  for (int r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < n_bits; ++i) {
      ASSERT_EQ(core::SyncBitSet(packed[static_cast<std::size_t>(r)], i),
                legacy[static_cast<std::size_t>(r)][i] == 1.0f)
          << "rank " << r << " bit " << i;
    }
  }
  // Same message count, 1/32 the floats per message: exactly 32x fewer
  // payload bytes over the wire.
  EXPECT_EQ(legacy_tr.TotalMessages(), packed_tr.TotalMessages());
  EXPECT_EQ(legacy_tr.TotalPayloadBytes(),
            32 * packed_tr.TotalPayloadBytes());
}

// ------------------------------------------- gather: completion-order drain

/// Transport decorator recording, per receiving rank, the source order of
/// successful receives — lets the test observe which peer the Gather root
/// actually consumed first.
class RecvOrderRecorder final : public transport::Transport {
 public:
  explicit RecvOrderRecorder(transport::Transport& inner) : inner_(inner) {}

  [[nodiscard]] int world_size() const noexcept override {
    return inner_.world_size();
  }
  void Send(int src, int dst, int tag, transport::Payload payload) override {
    inner_.Send(src, dst, tag, std::move(payload));
  }
  Result<transport::Payload> Recv(int rank, int src, int tag) override {
    auto result = inner_.Recv(rank, src, tag);
    if (result.ok()) Record(rank, src);
    return result;
  }
  Result<transport::Payload> RecvFor(
      int rank, int src, int tag, std::chrono::milliseconds timeout) override {
    auto result = inner_.RecvFor(rank, src, tag, timeout);
    if (result.ok()) Record(rank, src);
    return result;
  }
  std::optional<transport::Payload> TryRecv(int rank, int src,
                                            int tag) override {
    auto result = inner_.TryRecv(rank, src, tag);
    if (result.has_value()) Record(rank, src);
    return result;
  }
  void Shutdown() override { inner_.Shutdown(); }
  [[nodiscard]] bool IsShutdown() const noexcept override {
    return inner_.IsShutdown();
  }
  Status Barrier() override { return inner_.Barrier(); }
  [[nodiscard]] std::uint64_t TotalMessages() const override {
    return inner_.TotalMessages();
  }

  std::vector<int> OrderAtRank(int rank) const {
    common::MutexLock lock(mu_);
    std::vector<int> order;
    for (const auto& [r, src] : receives_) {
      if (r == rank) order.push_back(src);
    }
    return order;
  }

 private:
  void Record(int rank, int src) {
    common::MutexLock lock(mu_);
    receives_.emplace_back(rank, src);
  }

  transport::Transport& inner_;
  mutable common::Mutex mu_{"test-recv-order"};
  std::vector<std::pair<int, int>> receives_ GUARDED_BY(mu_);
};

TEST(GatherOrderTest, RootDrainsPeersInCompletionOrder) {
  // Rank 1 is a straggler: it enters the gather ~80ms late. A root that
  // drains peers in rank order would sit blocked on rank 1 the whole time;
  // the completion-order drain must consume rank 2's ready contribution
  // first.
  const int world = 3;
  const std::size_t len = 16;
  transport::InProcTransport inner(world);
  RecvOrderRecorder tr(inner);
  const auto data = MakeRankData(world, len, 808);
  std::vector<float> gathered(len * world);
  RunAllRanks(world, [&](int rank) {
    if (rank == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(80));
    }
    Comm comm{&tr, rank, world, 0};
    std::span<float> out =
        rank == 0 ? std::span<float>(gathered) : std::span<float>();
    EXPECT_TRUE(
        Gather(comm, /*root=*/0,
               data[static_cast<std::size_t>(rank)], out)
            .ok());
  });
  for (int r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(gathered[static_cast<std::size_t>(r) * len + i],
                data[static_cast<std::size_t>(r)][i]);
    }
  }
  EXPECT_EQ(tr.OrderAtRank(0), (std::vector<int>{2, 1}));
}

}  // namespace
}  // namespace aiacc::collective
