// Integration tests of the simulated DDL engines: AIACC vs baselines on
// identical substrates must reproduce the paper's qualitative results —
// AIACC fastest at multi-node scale, near-linear AIACC scaling efficiency,
// Horovod/DDP mid-pack, parameter servers last, growing AIACC advantage
// with GPU count, bigger wins on small batches and on RDMA.
#include <gtest/gtest.h>

#include "dnn/zoo.h"
#include "trainer/harness.h"

namespace aiacc::trainer {
namespace {

RunSpec BaseSpec(const std::string& model, int gpus, EngineKind engine,
                 int batch = 64) {
  RunSpec spec;
  spec.model_name = model;
  spec.topology = MakeTopology(gpus);
  spec.engine = engine;
  spec.batch_per_gpu = batch;
  spec.warmup_iterations = 2;
  spec.measure_iterations = 5;
  return spec;
}

double Throughput(const std::string& model, int gpus, EngineKind engine,
                  int batch = 64) {
  return Run(BaseSpec(model, gpus, engine, batch)).throughput;
}

TEST(EngineTest, SingleGpuAllEnginesAgree) {
  // With one GPU there is no communication: every engine's throughput is
  // compute-bound and nearly identical.
  const double aiacc = Throughput("resnet50", 1, EngineKind::kAiacc);
  const double horovod = Throughput("resnet50", 1, EngineKind::kHorovod);
  const double ddp = Throughput("resnet50", 1, EngineKind::kPytorchDdp);
  EXPECT_NEAR(horovod / aiacc, 1.0, 0.1);
  EXPECT_NEAR(ddp / aiacc, 1.0, 0.1);
  EXPECT_GT(aiacc, 280.0);
  EXPECT_LT(aiacc, 500.0);
}

TEST(EngineTest, AiaccBeatsHorovodAt32GpusResNet50) {
  // §III: 1.3x over Horovod on ResNet-50 with 32 GPUs.
  const double aiacc = Throughput("resnet50", 32, EngineKind::kAiacc);
  const double horovod = Throughput("resnet50", 32, EngineKind::kHorovod);
  const double ratio = aiacc / horovod;
  EXPECT_GT(ratio, 1.1);
  EXPECT_LT(ratio, 1.8);
}

TEST(EngineTest, AiaccBeatsHorovodMoreOnVgg16) {
  // §III: 1.8x on VGG-16 at 32 GPUs (bigger model, comm-bound).
  const double aiacc = Throughput("vgg16", 32, EngineKind::kAiacc);
  const double horovod = Throughput("vgg16", 32, EngineKind::kHorovod);
  const double vgg_ratio = aiacc / horovod;
  const double resnet_ratio = Throughput("resnet50", 32, EngineKind::kAiacc) /
                              Throughput("resnet50", 32, EngineKind::kHorovod);
  EXPECT_GT(vgg_ratio, resnet_ratio);
  EXPECT_GT(vgg_ratio, 1.4);
}

TEST(EngineTest, AiaccScalingEfficiencyHigh) {
  // §III: AIACC scaling efficiency > 0.9 at 32 GPUs on ResNet-50.
  RunSpec spec = BaseSpec("resnet50", 32, EngineKind::kAiacc);
  const auto points = ScalingSweep(spec, {8, 32});
  EXPECT_GT(points[1].scaling_efficiency, 0.90);
}

TEST(EngineTest, HorovodScalingEfficiencyDegrades) {
  // Fig. 2: Horovod at ~75-85% with 32 GPUs on ResNet-50.
  RunSpec spec = BaseSpec("resnet50", 32, EngineKind::kHorovod);
  const auto points = ScalingSweep(spec, {32});
  EXPECT_LT(points[0].scaling_efficiency, 0.92);
  EXPECT_GT(points[0].scaling_efficiency, 0.6);
}

TEST(EngineTest, AdvantageGrowsWithScale) {
  // §VIII-A: the AIACC advantage over Horovod grows with GPU count.
  const double r16 = Throughput("resnet50", 16, EngineKind::kAiacc) /
                     Throughput("resnet50", 16, EngineKind::kHorovod);
  const double r64 = Throughput("resnet50", 64, EngineKind::kAiacc) /
                     Throughput("resnet50", 64, EngineKind::kHorovod);
  EXPECT_GE(r64, r16 * 0.98);
}

TEST(EngineTest, BytepsSlowestMultiNode) {
  // Fig. 9: BytePS trails the all-reduce engines in the no-extra-CPU-server
  // setup.
  const double byteps = Throughput("resnet50", 32, EngineKind::kByteps);
  const double horovod = Throughput("resnet50", 32, EngineKind::kHorovod);
  const double aiacc = Throughput("resnet50", 32, EngineKind::kAiacc);
  EXPECT_LT(byteps, horovod);
  EXPECT_LT(byteps, aiacc);
}

TEST(EngineTest, MxnetKvstoreWorstOfAll) {
  // Fig. 12: the PS KVStore without local aggregation trails everything.
  const double kv = Throughput("resnet50", 32, EngineKind::kMxnetKvstore);
  const double byteps = Throughput("resnet50", 32, EngineKind::kByteps);
  EXPECT_LT(kv, byteps);
}

TEST(EngineTest, SmallBatchesFavorAiaccMore) {
  // Fig. 14: speedup over Horovod shrinks as batch size grows.
  const double small = Throughput("bert-large", 16, EngineKind::kAiacc, 4) /
                       Throughput("bert-large", 16, EngineKind::kHorovod, 4);
  const double large = Throughput("bert-large", 16, EngineKind::kAiacc, 32) /
                       Throughput("bert-large", 16, EngineKind::kHorovod, 32);
  EXPECT_GT(small, large);
  EXPECT_GT(small, 1.2);
}

TEST(EngineTest, RdmaGptSpeedupOverDdp) {
  // Fig. 15: large speedup over PyTorch-DDP on GPT-2 with RDMA (paper:
  // 9.8x at 64 GPUs; our simulated substrate should land in that region).
  RunSpec aiacc = BaseSpec("gpt2-xl", 64, EngineKind::kAiacc, 2);
  aiacc.topology = MakeTopology(64, 8, net::TransportKind::kRdma);
  aiacc.aiacc_config.num_streams = 24;
  RunSpec ddp = BaseSpec("gpt2-xl", 64, EngineKind::kPytorchDdp, 2);
  ddp.topology = MakeTopology(64, 8, net::TransportKind::kRdma);
  const double ratio = ::aiacc::trainer::Run(aiacc).throughput / ::aiacc::trainer::Run(ddp).throughput;
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 15.0);
}

TEST(EngineTest, CtrMasterBottleneck) {
  // §VIII-C: thousands of small tensors make Horovod's master-coordinated
  // negotiation the bottleneck; AIACC wins by a large factor at 128 GPUs.
  const double aiacc = Throughput("ctr", 128, EngineKind::kAiacc, 512);
  const double horovod = Throughput("ctr", 128, EngineKind::kHorovod, 512);
  EXPECT_GT(aiacc / horovod, 4.0);
}

TEST(EngineTest, IterationStatsArepopulated) {
  RunSpec spec = BaseSpec("resnet50", 16, EngineKind::kAiacc);
  const auto result = ::aiacc::trainer::Run(spec);
  EXPECT_GT(result.last_iteration.allreduce_units, 0);
  EXPECT_GT(result.last_iteration.sync_rounds, 0);
  EXPECT_GT(result.last_iteration.max_concurrent_streams, 1);
  EXPECT_GT(result.last_iteration.comm_bytes_per_nic, 0.0);
  EXPECT_GT(result.iteration_time, 0.0);
}

TEST(EngineTest, MoreStreamsHelpUpToNicSaturation) {
  auto with_streams = [&](int streams) {
    RunSpec spec = BaseSpec("vgg16", 16, EngineKind::kAiacc);
    spec.aiacc_config.num_streams = streams;
    return ::aiacc::trainer::Run(spec).throughput;
  };
  const double s1 = with_streams(1);
  const double s4 = with_streams(4);
  const double s16 = with_streams(16);
  EXPECT_GT(s4, s1 * 1.2);
  EXPECT_GE(s16, s4 * 0.95);  // saturates, must not regress much
}

TEST(EngineTest, HierarchicalCompetitiveAtManyHosts) {
  // Tree all-reduce is an alternative the tuner may pick; it should be in
  // the same ballpark as ring (not an order of magnitude off).
  RunSpec ring = BaseSpec("resnet50", 64, EngineKind::kAiacc);
  RunSpec tree = ring;
  tree.aiacc_config.algorithm = collective::Algorithm::kHierarchical;
  const double r = ::aiacc::trainer::Run(ring).throughput;
  const double t = ::aiacc::trainer::Run(tree).throughput;
  EXPECT_GT(t, r * 0.5);
  EXPECT_LT(t, r * 2.0);
}

TEST(EngineTest, CpuOptimizerOffloadCostsAreVisible) {
  // §IX extension: offloading the update to the CPU pays a CPU pass + PCIe
  // upload; the paper's caution ("care must be taken to make sure the
  // CPU-GPU data transfer does not become a bottleneck") must show up as a
  // measurable, bounded slowdown.
  RunSpec gpu_spec = BaseSpec("resnet50", 32, EngineKind::kAiacc);
  RunSpec cpu_spec = gpu_spec;
  cpu_spec.cpu_optimizer_offload = true;
  const double gpu = ::aiacc::trainer::Run(gpu_spec).throughput;
  const double cpu = ::aiacc::trainer::Run(cpu_spec).throughput;
  EXPECT_LT(cpu, gpu);
  EXPECT_GT(cpu, gpu * 0.8);  // bounded: it's an update, not a retrain
}

TEST(EngineTest, DdpBucketLayoutCoversModel) {
  sim::Engine sim;
  net::CloudFabric fabric(sim, MakeTopology(8), net::FabricParams{});
  collective::SimCollectives coll(fabric);
  auto model = dnn::MakeResNet50();
  core::WorkloadSetup setup;
  setup.fabric = &fabric;
  setup.collectives = &coll;
  setup.model = &model;
  setup.batch_per_gpu = 64;
  baselines::DdpLikeEngine ddp(setup, {});
  std::size_t grads = 0;
  for (const auto& bucket : ddp.buckets()) grads += bucket.size();
  EXPECT_EQ(grads, static_cast<std::size_t>(model.NumGradients()));
  EXPECT_GT(ddp.buckets().size(), 1u);
}

}  // namespace
}  // namespace aiacc::trainer
