#!/usr/bin/env python3
"""Iteration critical-path analyzer for merged AIACC traces.

Consumes a (merged, multi-rank) Chrome trace-event JSON — normally
`trace.merged.json` from `bench_hotpath --trace-dir` or any
telemetry::MergeTraces output — walks the span + flow-event graph, and
reports, per iteration and overall:

  * wall-time attribution per rank: every microsecond of the rank's
    iteration window lands in exactly one of {compute, overlapped comm
    (comm under compute), exposed comm (comm with no compute running),
    sync/idle} — the four buckets always sum to 100% of the window;
  * per-channel and per-ring-step utilization (busy fraction of the
    iteration window, from "comm.channel" / "comm.phase" spans);
  * the longest cross-rank dependency chain ending at the iteration's last
    finishing span (blame spans, walked backwards over flow edges and
    same-lane ordering);
  * per-rank straggler scores (how far behind the earliest rank each rank
    finishes, normalized by iteration duration);
  * per-iteration priority-dispatch stats from the ready-set scheduler's
    "engine.sched" events: unit push-to-pop wait times ("unit.wait" spans,
    priority in args) and priority inversions ("sched.inversion" instants
    — an urgent unit popped only after lower-priority in-flight transfers
    overtook it, args carry the bypass count).

With --flight, merges one or more flight-recorder dumps
(telemetry::FlightRecorder::ToJson, e.g. $AIACC_FLIGHT_DIR/flight-*.json)
into a post-mortem section naming the failing component/channel/tag.

--check turns the report into a gate (wired as a lint-labeled ctest):
non-zero exit unless at least one iteration was found, every rank's
attribution covers >= 95% of its window, and the critical path is
non-empty.

Usage: trace_analyze.py TRACE.json [--json OUT.json] [--flight DUMP...]
                        [--check] [--top N]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field

COMM_CATS = ("comm", "comm.phase", "comm.channel", "comm.flow")
COMPUTE_CAT = "compute"
ITERATION_CAT = "engine.iteration"


@dataclass
class Span:
    lane: str
    rank: int
    name: str
    cat: str
    ts: float  # microseconds
    dur: float
    args: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.ts + self.dur


@dataclass
class Instant:
    lane: str
    rank: int
    name: str
    cat: str
    ts: float
    args: dict = field(default_factory=dict)


@dataclass
class Flow:
    flow_id: int
    lane: str
    rank: int
    ts: float
    start: bool


@dataclass
class Trace:
    spans: list[Span] = field(default_factory=list)
    instants: list[Instant] = field(default_factory=list)
    flows: list[Flow] = field(default_factory=list)
    dropped_events: int = 0


def parse_flow_id(raw: object) -> int | None:
    if isinstance(raw, int) and not isinstance(raw, bool):
        return raw
    if isinstance(raw, str):
        try:
            return int(raw, 0)
        except ValueError:
            return None
    return None


def rank_of(lane: str, process: str) -> int:
    """Rank from a "rank N" process_name, else a "r<N>/..." lane label."""
    if process.startswith("rank "):
        try:
            return int(process[5:])
        except ValueError:
            pass
    if lane.startswith("r"):
        head = lane.split("/", 1)[0][1:]
        if head.isdigit():
            return int(head)
    return -1


def load_trace(path: str) -> Trace:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents", [])
    lanes: dict[tuple[int, int], str] = {}
    processes: dict[int, str] = {}
    for ev in events:
        if ev.get("ph") != "M":
            continue
        if ev.get("name") == "thread_name":
            lanes[(ev.get("pid", 1), ev["tid"])] = ev["args"]["name"]
        elif ev.get("name") == "process_name":
            processes[ev.get("pid", 1)] = ev["args"]["name"]
    trace = Trace()
    other = doc.get("otherData", {})
    if isinstance(other, dict):
        dropped = other.get("dropped_events", 0)
        if isinstance(dropped, int) and not isinstance(dropped, bool):
            trace.dropped_events = dropped
    for ev in events:
        ph = ev.get("ph")
        if ph not in ("X", "i", "s", "f"):
            continue
        key = (ev.get("pid", 1), ev.get("tid", 0))
        lane = lanes.get(key, f"pid{key[0]}/tid{key[1]}")
        rank = rank_of(lane, processes.get(key[0], ""))
        ev_args = ev.get("args") if isinstance(ev.get("args"), dict) else {}
        if ph == "X":
            trace.spans.append(
                Span(
                    lane=lane,
                    rank=rank,
                    name=ev.get("name", ""),
                    cat=ev.get("cat", ""),
                    ts=float(ev.get("ts", 0.0)),
                    dur=float(ev.get("dur", 0.0)),
                    args=ev_args,
                )
            )
        elif ph == "i":
            trace.instants.append(
                Instant(
                    lane=lane,
                    rank=rank,
                    name=ev.get("name", ""),
                    cat=ev.get("cat", ""),
                    ts=float(ev.get("ts", 0.0)),
                    args=ev_args,
                )
            )
        else:
            flow_id = parse_flow_id(ev.get("id"))
            if flow_id is None:
                continue
            trace.flows.append(
                Flow(
                    flow_id=flow_id,
                    lane=lane,
                    rank=rank,
                    ts=float(ev.get("ts", 0.0)),
                    start=(ph == "s"),
                )
            )
    return trace


def union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by the union of [begin, end) intervals."""
    total = 0.0
    last_end = float("-inf")
    for begin, end in sorted(intervals):
        if end <= last_end:
            continue
        total += end - max(begin, last_end)
        last_end = end
    return total


def clip(
    intervals: list[tuple[float, float]], lo: float, hi: float
) -> list[tuple[float, float]]:
    out = []
    for begin, end in intervals:
        b, e = max(begin, lo), min(end, hi)
        if e > b:
            out.append((b, e))
    return out


def intersect(
    a: list[tuple[float, float]], b: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Pairwise intersection of two interval sets (each first unioned)."""
    out = []
    a = merged(a)
    b = merged(b)
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            out.append((lo, hi))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out


def merged(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    out: list[tuple[float, float]] = []
    for begin, end in sorted(intervals):
        if out and begin <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], end))
        else:
            out.append((begin, end))
    return out


def subtract(
    a: list[tuple[float, float]], b: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """a minus b, both treated as unions."""
    out = []
    b = merged(b)
    for begin, end in merged(a):
        cursor = begin
        for b0, b1 in b:
            if b1 <= cursor or b0 >= end:
                continue
            if b0 > cursor:
                out.append((cursor, b0))
            cursor = max(cursor, b1)
            if cursor >= end:
                break
        if cursor < end:
            out.append((cursor, end))
    return out


def iteration_index(name: str) -> int | None:
    """Spans are named "iteration#<i>" (RuntimeTracer's index suffix)."""
    if "#" in name:
        tail = name.rsplit("#", 1)[1]
        if tail.isdigit():
            return int(tail)
    return None


def analyze_iterations(trace: Trace) -> list[dict]:
    iters: dict[int, dict[int, Span]] = {}
    for s in trace.spans:
        if s.cat != ITERATION_CAT:
            continue
        idx = iteration_index(s.name)
        if idx is None or s.rank < 0:
            continue
        iters.setdefault(idx, {})[s.rank] = s

    # Per-rank comm / compute interval pools (iteration windows clip them).
    comm_by_rank: dict[int, list[tuple[float, float]]] = {}
    compute_by_rank: dict[int, list[tuple[float, float]]] = {}
    for s in trace.spans:
        if s.rank < 0:
            continue
        if s.cat in COMM_CATS:
            comm_by_rank.setdefault(s.rank, []).append((s.ts, s.end))
        elif s.cat == COMPUTE_CAT:
            compute_by_rank.setdefault(s.rank, []).append((s.ts, s.end))

    out = []
    for idx in sorted(iters):
        ranks = iters[idx]
        starts = [s.ts for s in ranks.values()]
        ends = [s.end for s in ranks.values()]
        record = {
            "iteration": idx,
            "begin_us": min(starts),
            "end_us": max(ends),
            "wall_us": max(ends) - min(starts),
            "ranks": {},
        }
        earliest_end = min(ends)
        for rank in sorted(ranks):
            span = ranks[rank]
            window = span.dur
            comm = clip(comm_by_rank.get(rank, []), span.ts, span.end)
            compute = clip(compute_by_rank.get(rank, []), span.ts, span.end)
            overlapped = union_length(intersect(comm, compute))
            exposed = union_length(subtract(comm, compute))
            compute_only = union_length(subtract(compute, comm))
            idle = window - compute_only - overlapped - exposed
            record["ranks"][str(rank)] = {
                "window_us": window,
                "compute_us": compute_only,
                "overlapped_comm_us": overlapped,
                "exposed_comm_us": exposed,
                "sync_idle_us": max(0.0, idle),
                "attributed_fraction": 1.0 if window > 0 else 0.0,
                "behind_earliest_us": span.end - earliest_end,
            }
        out.append(record)
    return out


def analyze_channels(trace: Trace, iterations: list[dict]) -> dict:
    if not iterations:
        return {}
    begin = min(i["begin_us"] for i in iterations)
    end = max(i["end_us"] for i in iterations)
    wall = max(end - begin, 1e-9)
    channels: dict[str, list[tuple[float, float]]] = {}
    steps: dict[str, list[tuple[float, float]]] = {}
    for s in trace.spans:
        if s.cat == "comm.channel":
            channels.setdefault(s.name, []).append((s.ts, s.end))
        elif s.cat == "comm.phase":
            steps.setdefault(s.name, []).append((s.ts, s.end))
    return {
        "window_us": wall,
        "channels": {
            name: {
                "busy_us": union_length(clip(iv, begin, end)),
                "utilization": union_length(clip(iv, begin, end)) / wall,
                "spans": len(iv),
            }
            for name, iv in sorted(channels.items())
        },
        "steps": {
            name: {
                "busy_us": union_length(clip(iv, begin, end)),
                "utilization": union_length(clip(iv, begin, end)) / wall,
                "spans": len(iv),
            }
            for name, iv in sorted(steps.items())
        },
    }


def critical_path(trace: Trace, iteration: dict) -> list[dict]:
    """Longest dependency chain ending at the iteration's last span.

    Walk backwards from the last span to finish inside the iteration
    window: the predecessor of a span is the sender span behind the
    latest inbound flow edge it contains, or — when no flow edge feeds
    it — the previous span on its own lane. Each chain element's blame
    is the wall time it personally contributed (its end minus its
    predecessor's end)."""
    lo, hi = iteration["begin_us"], iteration["end_us"]
    spans = [
        s
        for s in trace.spans
        if s.ts < hi and s.end > lo and s.cat != ITERATION_CAT
    ]
    if not spans:
        return []
    by_lane: dict[str, list[Span]] = {}
    for s in spans:
        by_lane.setdefault(s.lane, []).append(s)
    for lane_spans in by_lane.values():
        lane_spans.sort(key=lambda s: (s.ts, s.end))

    starts = {f.flow_id: f for f in trace.flows if f.start}
    # Inbound flow edges per lane, sorted by end-time (the recv side).
    ends_by_lane: dict[str, list[Flow]] = {}
    for f in trace.flows:
        if not f.start and lo <= f.ts <= hi:
            ends_by_lane.setdefault(f.lane, []).append(f)
    for lst in ends_by_lane.values():
        lst.sort(key=lambda f: f.ts)

    def enclosing(lane: str, ts: float) -> Span | None:
        best = None
        for s in by_lane.get(lane, []):
            if s.ts <= ts <= s.end:
                # Innermost (shortest) span enclosing ts wins the blame.
                if best is None or s.dur < best.dur:
                    best = s
        return best

    def previous_on_lane(span: Span) -> Span | None:
        best = None
        for s in by_lane.get(span.lane, []):
            if s is span:
                continue
            if s.end <= span.ts and (best is None or s.end > best.end):
                best = s
        return best

    current = max(spans, key=lambda s: s.end)
    chain = [current]
    seen = {id(current)}
    for _ in range(10_000):
        # Latest inbound flow edge landing inside `current`.
        pred: Span | None = None
        via = "start"
        latest_ts = float("-inf")
        for f in ends_by_lane.get(current.lane, []):
            if current.ts <= f.ts <= current.end:
                start = starts.get(f.flow_id)
                if start is None:
                    continue
                sender = enclosing(start.lane, start.ts)
                if sender is not None and start.ts > latest_ts:
                    latest_ts = start.ts
                    pred = sender
                    via = "flow"
        if pred is None:
            pred = previous_on_lane(current)
            via = "lane"
        if pred is None or id(pred) in seen:
            break
        chain.append(pred)
        seen.add(id(pred))
        current = pred
    chain.reverse()
    out = []
    for i, s in enumerate(chain):
        blame_begin = chain[i - 1].end if i > 0 else s.ts
        out.append(
            {
                "rank": s.rank,
                "lane": s.lane,
                "name": s.name,
                "cat": s.cat,
                "begin_us": s.ts,
                "end_us": s.end,
                "blame_us": max(0.0, s.end - max(s.ts, blame_begin)),
            }
        )
    return out


SCHED_CAT = "engine.sched"


def _int_arg(args: dict, key: str) -> int:
    val = args.get(key, 0)
    return val if isinstance(val, int) and not isinstance(val, bool) else 0


def analyze_priority(trace: Trace, iterations: list[dict]) -> dict:
    """Per-iteration priority-dispatch stats from the scheduler's trace
    events (core/scheduler.h): "unit.wait" spans carry each unit's
    push-to-pop wall time and its priority in args; a "sched.inversion"
    instant marks an urgent unit popped only after `bypassed` less-urgent
    units overtook it — the unit waited behind lower-priority in-flight
    transfers. Attaches a "priority" record to every iteration (a wait
    span belongs to the iteration whose window contains its end, the pop
    time) and returns the whole-trace summary. All-zero when the
    scheduler ran FIFO (policy disabled) or tracing was below kPhase."""
    waits = [
        s
        for s in trace.spans
        if s.cat == SCHED_CAT and s.name.startswith("unit.wait")
    ]
    inversions = [
        i
        for i in trace.instants
        if i.cat == SCHED_CAT and i.name.startswith("sched.inversion")
    ]
    for it in iterations:
        lo, hi = it["begin_us"], it["end_us"]
        it_waits = [s for s in waits if lo <= s.end <= hi]
        it_invs = [i for i in inversions if lo <= i.ts <= hi]
        wait_us = [s.dur for s in it_waits]
        it["priority"] = {
            "unit_waits": len(it_waits),
            "mean_wait_us": sum(wait_us) / len(wait_us) if wait_us else 0.0,
            "max_wait_us": max(wait_us, default=0.0),
            "inversions": len(it_invs),
            "bypassed_total": sum(_int_arg(i.args, "bypassed")
                                  for i in it_invs),
        }
    return {
        "unit_waits": len(waits),
        "inversions": len(inversions),
        "bypassed_total": sum(_int_arg(i.args, "bypassed")
                              for i in inversions),
    }


def straggler_scores(iterations: list[dict]) -> dict:
    per_rank: dict[str, list[float]] = {}
    for it in iterations:
        wall = max(it["wall_us"], 1e-9)
        for rank, rec in it["ranks"].items():
            per_rank.setdefault(rank, []).append(
                rec["behind_earliest_us"] / wall
            )
    return {
        rank: {
            "mean_behind_fraction": sum(v) / len(v),
            "max_behind_fraction": max(v),
        }
        for rank, v in sorted(per_rank.items(), key=lambda kv: int(kv[0]))
    }


def load_flight(paths: list[str]) -> dict:
    events = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                dump = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            events.append({"error": f"{path}: {e}"})
            continue
        for ev in dump.get("events", []):
            ev = dict(ev)
            ev["file"] = path
            events.append(ev)
    events.sort(key=lambda e: (e.get("t_ns", 0), e.get("seq", 0)))
    failing = [
        e
        for e in events
        if e.get("severity") in ("error", "fatal") and "error" not in e
    ]
    verdict = {}
    if failing:
        last = failing[-1]
        verdict = {
            "component": last.get("component"),
            "what": last.get("what"),
            "rank": last.get("rank"),
            "channel": last.get("channel"),
            "tag": last.get("tag"),
        }
    return {"events": events, "first_failure_chain": failing, "verdict": verdict}


def render_table(report: dict) -> str:
    lines = []
    iterations = report["iterations"]
    lines.append(
        f"{'iter':>4} {'rank':>4} {'window':>10} {'compute':>10} "
        f"{'overlap':>10} {'exposed':>10} {'idle':>10}  (us)"
    )
    for it in iterations:
        for rank, rec in sorted(it["ranks"].items(), key=lambda kv: int(kv[0])):
            lines.append(
                f"{it['iteration']:>4} {rank:>4} "
                f"{rec['window_us']:>10.1f} {rec['compute_us']:>10.1f} "
                f"{rec['overlapped_comm_us']:>10.1f} "
                f"{rec['exposed_comm_us']:>10.1f} "
                f"{rec['sync_idle_us']:>10.1f}"
            )
    util = report.get("utilization", {})
    if util.get("channels"):
        lines.append("")
        lines.append("channel utilization over the traced window:")
        for name, rec in util["channels"].items():
            lines.append(
                f"  {name:<16} {100.0 * rec['utilization']:>6.1f}%  "
                f"({rec['spans']} spans, {rec['busy_us']:.1f} us busy)"
            )
    if util.get("steps"):
        lines.append("ring-step utilization:")
        for name, rec in util["steps"].items():
            lines.append(
                f"  {name:<16} {100.0 * rec['utilization']:>6.1f}%  "
                f"({rec['spans']} spans)"
            )
    cp = report.get("critical_path", [])
    if cp:
        lines.append("")
        total = sum(s["blame_us"] for s in cp)
        lines.append(
            f"critical path, last iteration ({len(cp)} spans, "
            f"{total:.1f} us blamed):"
        )
        shown = cp if len(cp) <= 12 else cp[:6] + cp[-6:]
        for s in shown:
            lines.append(
                f"  r{s['rank']} {s['lane']:<14} {s['cat']}/{s['name']:<20} "
                f"blame {s['blame_us']:>8.1f} us"
            )
        if len(cp) > 12:
            lines.insert(-6, f"  ... {len(cp) - 12} more ...")
    pr = report.get("priority_inversions", {})
    if pr.get("unit_waits") or pr.get("inversions"):
        lines.append("")
        lines.append(
            "priority dispatch (engine.sched): unit wait + inversions "
            "per iteration:"
        )
        for it in iterations:
            rec = it.get("priority")
            if not rec:
                continue
            lines.append(
                f"  iter {it['iteration']:>3}: {rec['unit_waits']:>4} waits "
                f"(mean {rec['mean_wait_us']:>9.1f} us, "
                f"max {rec['max_wait_us']:>9.1f} us), "
                f"{rec['inversions']:>4} inversions, "
                f"{rec['bypassed_total']:>5} bulk pops overtook urgent"
            )
    stragglers = report.get("stragglers", {})
    if stragglers:
        lines.append("")
        lines.append("straggler scores (fraction of iteration spent behind):")
        for rank, rec in stragglers.items():
            lines.append(
                f"  rank {rank}: mean {rec['mean_behind_fraction']:.3f}  "
                f"max {rec['max_behind_fraction']:.3f}"
            )
    pm = report.get("post_mortem")
    if pm:
        lines.append("")
        verdict = pm.get("verdict") or {}
        if verdict:
            lines.append(
                f"post-mortem: {verdict.get('component')}/"
                f"{verdict.get('what')} at rank {verdict.get('rank')} "
                f"channel {verdict.get('channel')} tag {verdict.get('tag')}"
            )
        lines.append(f"  {len(pm.get('events', []))} flight events merged")
        for ev in pm.get("events", [])[-8:]:
            if "error" in ev:
                lines.append(f"  ! {ev['error']}")
                continue
            lines.append(
                f"  [{ev.get('severity', '?'):<5}] t+{ev.get('t_ns', 0) / 1e6:.3f}ms "
                f"{ev.get('component')}/{ev.get('what')} rank={ev.get('rank')} "
                f"channel={ev.get('channel')} tag={ev.get('tag')}"
            )
    if report.get("dropped_events"):
        lines.append("")
        lines.append(
            f"WARNING: {report['dropped_events']} trace events dropped "
            f"(ring overwrites) — attribution is a lower bound"
        )
    return "\n".join(lines) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="merged Chrome trace-event JSON")
    parser.add_argument("--json", dest="json_out", help="write report JSON")
    parser.add_argument(
        "--flight",
        nargs="+",
        default=[],
        help="flight-recorder dump(s) to merge into a post-mortem",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate mode: fail unless iterations were found, attribution "
        "covers >= 95%% per rank, and the critical path is non-empty",
    )
    args = parser.parse_args()

    trace = load_trace(args.trace)
    iterations = analyze_iterations(trace)
    priority_summary = analyze_priority(trace, iterations)
    report = {
        "trace": args.trace,
        "iterations": iterations,
        "utilization": analyze_channels(trace, iterations),
        "critical_path": critical_path(trace, iterations[-1])
        if iterations
        else [],
        "stragglers": straggler_scores(iterations),
        "priority_inversions": priority_summary,
        "dropped_events": trace.dropped_events,
        "flow_edges": sum(1 for f in trace.flows if not f.start),
    }
    if args.flight:
        report["post_mortem"] = load_flight(args.flight)

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=1)
            f.write("\n")
    sys.stdout.write(render_table(report))

    if args.check:
        failures = []
        if not iterations:
            failures.append("no engine.iteration spans found")
        for it in iterations:
            for rank, rec in it["ranks"].items():
                window = rec["window_us"]
                if window <= 0:
                    continue
                covered = (
                    rec["compute_us"]
                    + rec["overlapped_comm_us"]
                    + rec["exposed_comm_us"]
                    + rec["sync_idle_us"]
                )
                if covered < 0.95 * window:
                    failures.append(
                        f"iteration {it['iteration']} rank {rank}: only "
                        f"{100.0 * covered / window:.1f}% of the window "
                        f"attributed"
                    )
        if not report["critical_path"]:
            failures.append("critical path is empty")
        if failures:
            for f in failures:
                print(f"trace_analyze CHECK FAILURE: {f}", file=sys.stderr)
            return 1
        print(
            f"trace_analyze: priority inversions: "
            f"{priority_summary['inversions']} across {len(iterations)} "
            f"iteration(s) ({priority_summary['bypassed_total']} bulk pops "
            f"overtook urgent units; {priority_summary['unit_waits']} unit "
            f"waits traced)"
        )
        print("trace_analyze: checks OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
