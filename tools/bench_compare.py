#!/usr/bin/env python3
"""Bench-trajectory compare: fresh `bench_hotpath --pipeline-sweep --json`
output against the checked-in BENCH_hotpath.json baseline.

Absolute msgs/s depends on the runner hardware (core count, clocks, noisy
neighbours) and moves 2-5x between machines, so comparing raw throughput
against a checked-in number would only test the CI fleet. What is stable
across machines is the *trajectory*: how throughput scales with pipeline
depth relative to the same run's depth-1 point (a depth-d round moves d
times as many d-times-smaller messages by construction, and the latency
speedup rides on top). This tool therefore normalizes each sweep by its
own depth-1 msgs/s and compares the per-depth ratios — a regression in
pipelining (lost overlap, a serialization bug, per-slice overhead blowup)
bends the fresh trajectory away from the baseline's even when both
machines differ wildly in absolute speed.

Checks, per depth present in the baseline:
  * the fresh sweep measured the same depth;
  * fresh ratio (msgs/s vs own depth 1) within --tolerance (default 15%)
    of the baseline ratio;
  * fresh latency_speedup_vs_depth1 within --tolerance of baseline
    (absolute difference, since the values cluster around 1.0).

Usage: bench_compare.py BASELINE.json FRESH.json [--tolerance 0.15]
FRESH may be "-" to read the bench's stdout from stdin.
Exit 0 = within tolerance, 1 = trajectory regressed (details printed).
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    if path == "-":
        return json.load(sys.stdin)
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def sweep_by_depth(doc: dict, label: str) -> dict[int, dict]:
    sweep = doc.get("pipeline_sweep")
    if not isinstance(sweep, list) or not sweep:
        raise SystemExit(f"bench_compare: {label}: no pipeline_sweep array")
    out = {}
    for point in sweep:
        out[int(point["depth"])] = point
    if 1 not in out:
        raise SystemExit(f"bench_compare: {label}: sweep has no depth-1 point")
    return out


def ratios(points: dict[int, dict]) -> dict[int, float]:
    base = float(points[1]["msgs_per_sec"])
    if base <= 0:
        raise SystemExit("bench_compare: depth-1 msgs_per_sec is zero")
    return {d: float(p["msgs_per_sec"]) / base for d, p in points.items()}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="checked-in BENCH_hotpath.json")
    parser.add_argument("fresh", help="fresh --pipeline-sweep --json ('-' = stdin)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed relative deviation per depth (default 0.15)",
    )
    args = parser.parse_args()

    base = sweep_by_depth(load(args.baseline), "baseline")
    fresh = sweep_by_depth(load(args.fresh), "fresh")
    base_ratio = ratios(base)
    fresh_ratio = ratios(fresh)

    failures: list[str] = []
    print(
        f"{'depth':>5} {'base msgs/s':>12} {'fresh msgs/s':>12} "
        f"{'base traj':>10} {'fresh traj':>10} {'dev':>7} "
        f"{'base spd':>9} {'fresh spd':>9}"
    )
    for depth in sorted(base):
        if depth not in fresh:
            failures.append(f"depth {depth}: missing from fresh sweep")
            continue
        b, f = base_ratio[depth], fresh_ratio[depth]
        dev = abs(f - b) / b if b > 0 else float("inf")
        b_spd = float(base[depth].get("latency_speedup_vs_depth1", 1.0))
        f_spd = float(fresh[depth].get("latency_speedup_vs_depth1", 1.0))
        print(
            f"{depth:>5} {float(base[depth]['msgs_per_sec']):>12.0f} "
            f"{float(fresh[depth]['msgs_per_sec']):>12.0f} "
            f"{b:>10.2f} {f:>10.2f} {100.0 * dev:>6.1f}% "
            f"{b_spd:>9.2f} {f_spd:>9.2f}"
        )
        if dev > args.tolerance:
            failures.append(
                f"depth {depth}: msgs/s trajectory {f:.2f} deviates "
                f"{100.0 * dev:.1f}% from baseline {b:.2f} "
                f"(tolerance {100.0 * args.tolerance:.0f}%)"
            )
        if abs(f_spd - b_spd) > args.tolerance:
            failures.append(
                f"depth {depth}: latency speedup {f_spd:.2f} vs baseline "
                f"{b_spd:.2f} exceeds {args.tolerance:.2f} absolute "
                f"tolerance"
            )
    if failures:
        for line in failures:
            print(f"bench_compare FAILURE: {line}", file=sys.stderr)
        return 1
    print("bench_compare: trajectory within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
