#!/usr/bin/env python3
"""Bench-trajectory compare: fresh bench JSON against a checked-in baseline.

Two document kinds are understood, auto-detected from the baseline's keys:

pipeline_sweep (bench_hotpath --pipeline-sweep --json vs BENCH_hotpath.json)
  Absolute msgs/s depends on the runner hardware (core count, clocks, noisy
  neighbours) and moves 2-5x between machines, so comparing raw throughput
  against a checked-in number would only test the CI fleet. What is stable
  across machines is the *trajectory*: how throughput scales with pipeline
  depth relative to the same run's depth-1 point (a depth-d round moves d
  times as many d-times-smaller messages by construction, and the latency
  speedup rides on top). This tool therefore normalizes each sweep by its
  own depth-1 msgs/s and compares the per-depth ratios — a regression in
  pipelining (lost overlap, a serialization bug, per-slice overhead blowup)
  bends the fresh trajectory away from the baseline's even when both
  machines differ wildly in absolute speed.

  Checks, per depth present in the baseline:
    * the fresh sweep measured the same depth;
    * fresh ratio (msgs/s vs own depth 1) within --tolerance (default 15%)
      of the baseline ratio;
    * fresh latency_speedup_vs_depth1 within --tolerance of baseline
      (absolute difference, since the values cluster around 1.0).

scheduler_ab (bench_fig10_nlp --json vs BENCH_scheduler.json)
  The FIFO-vs-priority-dispatch speedup is already a within-run ratio, so
  it is machine-stable the same way the trajectory ratios are. Absolute
  iteration times are ignored. Checks, per model in the baseline:
    * the fresh run measured the same model;
    * bit_identical is true (dispatch order must never change results —
      a hard failure regardless of tolerance);
    * fresh speedup >= 1.0 (scheduler-on must not lose to FIFO);
    * fresh speedup within --tolerance (absolute) of the baseline's, since
      speedups cluster around 1.x;
    * priority dispatch actually engaged (priority_pops > 0) whenever the
      baseline's did — a zero means the A/B silently measured FIFO twice.

Usage: bench_compare.py BASELINE.json FRESH.json [--tolerance 0.15]
FRESH may be "-" to read the bench's stdout from stdin.
Exit 0 = within tolerance, 1 = regressed (details printed).
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    if path == "-":
        return json.load(sys.stdin)
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def sweep_by_depth(doc: dict, label: str) -> dict[int, dict]:
    sweep = doc.get("pipeline_sweep")
    if not isinstance(sweep, list) or not sweep:
        raise SystemExit(f"bench_compare: {label}: no pipeline_sweep array")
    out = {}
    for point in sweep:
        out[int(point["depth"])] = point
    if 1 not in out:
        raise SystemExit(f"bench_compare: {label}: sweep has no depth-1 point")
    return out


def ratios(points: dict[int, dict]) -> dict[int, float]:
    base = float(points[1]["msgs_per_sec"])
    if base <= 0:
        raise SystemExit("bench_compare: depth-1 msgs_per_sec is zero")
    return {d: float(p["msgs_per_sec"]) / base for d, p in points.items()}


def compare_pipeline(base_doc: dict, fresh_doc: dict, tolerance: float) -> int:
    base = sweep_by_depth(base_doc, "baseline")
    fresh = sweep_by_depth(fresh_doc, "fresh")
    base_ratio = ratios(base)
    fresh_ratio = ratios(fresh)

    failures: list[str] = []
    print(
        f"{'depth':>5} {'base msgs/s':>12} {'fresh msgs/s':>12} "
        f"{'base traj':>10} {'fresh traj':>10} {'dev':>7} "
        f"{'base spd':>9} {'fresh spd':>9}"
    )
    for depth in sorted(base):
        if depth not in fresh:
            failures.append(f"depth {depth}: missing from fresh sweep")
            continue
        b, f = base_ratio[depth], fresh_ratio[depth]
        dev = abs(f - b) / b if b > 0 else float("inf")
        b_spd = float(base[depth].get("latency_speedup_vs_depth1", 1.0))
        f_spd = float(fresh[depth].get("latency_speedup_vs_depth1", 1.0))
        print(
            f"{depth:>5} {float(base[depth]['msgs_per_sec']):>12.0f} "
            f"{float(fresh[depth]['msgs_per_sec']):>12.0f} "
            f"{b:>10.2f} {f:>10.2f} {100.0 * dev:>6.1f}% "
            f"{b_spd:>9.2f} {f_spd:>9.2f}"
        )
        if dev > tolerance:
            failures.append(
                f"depth {depth}: msgs/s trajectory {f:.2f} deviates "
                f"{100.0 * dev:.1f}% from baseline {b:.2f} "
                f"(tolerance {100.0 * tolerance:.0f}%)"
            )
        if abs(f_spd - b_spd) > tolerance:
            failures.append(
                f"depth {depth}: latency speedup {f_spd:.2f} vs baseline "
                f"{b_spd:.2f} exceeds {tolerance:.2f} absolute "
                f"tolerance"
            )
    if failures:
        for line in failures:
            print(f"bench_compare FAILURE: {line}", file=sys.stderr)
        return 1
    print("bench_compare: trajectory within tolerance")
    return 0


def ab_by_model(doc: dict, label: str) -> dict[str, dict]:
    rows = doc.get("scheduler_ab")
    if not isinstance(rows, list) or not rows:
        raise SystemExit(f"bench_compare: {label}: no scheduler_ab array")
    return {str(row["model"]): row for row in rows}


def compare_scheduler(base_doc: dict, fresh_doc: dict, tolerance: float) -> int:
    base = ab_by_model(base_doc, "baseline")
    fresh = ab_by_model(fresh_doc, "fresh")

    failures: list[str] = []
    print(
        f"{'model':<14} {'base spd':>9} {'fresh spd':>10} {'dev':>7} "
        f"{'fresh prio pops':>16} {'bit-identical':>14}"
    )
    for model in sorted(base):
        if model not in fresh:
            failures.append(f"model {model}: missing from fresh run")
            continue
        b_spd = float(base[model]["speedup"])
        f_spd = float(fresh[model]["speedup"])
        dev = abs(f_spd - b_spd)
        f_pops = int(fresh[model].get("priority_pops", 0))
        b_pops = int(base[model].get("priority_pops", 0))
        identical = bool(fresh[model].get("bit_identical", False))
        print(
            f"{model:<14} {b_spd:>9.3f} {f_spd:>10.3f} {dev:>7.3f} "
            f"{f_pops:>16} {str(identical).lower():>14}"
        )
        if not identical:
            failures.append(
                f"model {model}: FIFO and priority dispatch produced "
                f"different parameters (bit_identical false)"
            )
        if f_spd < 1.0:
            failures.append(
                f"model {model}: scheduler-on speedup {f_spd:.3f} lost to "
                f"FIFO (must stay >= 1.0)"
            )
        if dev > tolerance:
            failures.append(
                f"model {model}: speedup {f_spd:.3f} vs baseline "
                f"{b_spd:.3f} exceeds {tolerance:.2f} absolute tolerance"
            )
        if b_pops > 0 and f_pops == 0:
            failures.append(
                f"model {model}: priority dispatch never engaged "
                f"(priority_pops 0, baseline {b_pops}) — the A/B measured "
                f"FIFO twice"
            )
    if failures:
        for line in failures:
            print(f"bench_compare FAILURE: {line}", file=sys.stderr)
        return 1
    print("bench_compare: scheduler A/B within tolerance")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="checked-in BENCH_*.json baseline")
    parser.add_argument("fresh", help="fresh bench --json output ('-' = stdin)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed deviation (relative for trajectories, absolute for "
        "speedups; default 0.15)",
    )
    args = parser.parse_args()

    base_doc = load(args.baseline)
    fresh_doc = load(args.fresh)
    if "scheduler_ab" in base_doc:
        return compare_scheduler(base_doc, fresh_doc, args.tolerance)
    return compare_pipeline(base_doc, fresh_doc, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
