"""Lexical utilities shared by the aiacc-analyzer frontends.

Everything here operates on plain text and is careful about the C++
lexical grammar the repo actually uses: //, /* */ comments, ordinary
string/char literals with escapes, and raw string literals
(R"delim( ... )delim") — the last being exactly what regex-based lints
historically mishandled (see tools/check_invariants.py history).
"""

from __future__ import annotations

import re

# Keywords that look like calls to a naive `ident (` scanner.
NOT_A_CALL = frozenset(
    """if for while switch return sizeof alignof alignas decltype
    static_cast dynamic_cast const_cast reinterpret_cast new delete
    throw catch noexcept assert defined co_await co_yield co_return
    """.split()
)

RAW_STRING_OPEN = re.compile(r'R"([^()\\ \t\n]{0,16})\(')


def strip_comments_and_strings(text: str, blank_strings: bool = True) -> str:
    """Blank out comments (always) and string/char literal *contents*
    (when `blank_strings`), preserving line structure so offsets map 1:1
    onto the original text. Raw string literals R"d( ... )d" are handled:
    their contents never leak into "code" state (a `//` or an unbalanced
    brace inside a raw string must not derail structural scanning).
    """
    out = list(text)

    def blank(i: int, j: int) -> None:
        for k in range(i, j):
            if out[k] != "\n":
                out[k] = " "

    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            blank(i, j)
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            blank(i, j)
            i = j
        elif c == "R" and nxt == '"':
            m = RAW_STRING_OPEN.match(text, i)
            if m is None:
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, m.end())
            j = n if j == -1 else j + len(close)
            if blank_strings:
                # Keep the opening/closing quotes so downstream scanners
                # still see "a string was here".
                blank(i + 1, j - 1)
                out[i + 1] = '"'
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            j = min(j + 1, n)
            if blank_strings:
                blank(i + 1, j - 1)
            i = j
        else:
            i += 1
    return "".join(out)


def match_delim(text: str, i: int) -> int:
    """Index of the delimiter matching text[i] (one of ([{); text must be
    pre-stripped so literals cannot confuse the count. Returns len(text)
    when unbalanced."""
    opener = text[i]
    closer = {"(": ")", "[": "]", "{": "}"}[opener]
    depth = 0
    for j in range(i, len(text)):
        c = text[j]
        if c == opener:
            depth += 1
        elif c == closer:
            depth -= 1
            if depth == 0:
                return j
    return len(text)


def line_of(text: str, pos: int) -> int:
    """1-based line number of `pos` in `text`."""
    return text.count("\n", 0, pos) + 1


def skip_ws_back(text: str, i: int) -> int:
    """Greatest j <= i such that text[j] is non-whitespace (or -1)."""
    while i >= 0 and text[i].isspace():
        i -= 1
    return i


IDENT = re.compile(r"[A-Za-z_]\w*")


def ident_ending_at(text: str, i: int) -> str:
    """The identifier whose last character is text[i] ('' if none)."""
    j = i
    while j >= 0 and (text[j].isalnum() or text[j] == "_"):
        j -= 1
    word = text[j + 1 : i + 1]
    return word if word and not word[0].isdigit() else ""
