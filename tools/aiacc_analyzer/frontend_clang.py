"""libclang frontend: lowers real clang ASTs (Python clang.cindex over the
CMake-exported compile_commands.json) to the analyzer IR.

This is the full-fidelity frontend CI runs (the `analyzer` job installs
libclang). It must stay import-safe on machines without libclang:
`available()` is the only sanctioned probe, and analyze.py SKIPs cleanly
when it returns False. Findings must agree with frontend_lite on the
fixture corpus — tests/analyzer_test.py asserts this whenever libclang is
present.
"""

from __future__ import annotations

import json
import os
import re
import shlex

from ir import (BLOCK, BREAK, CONTINUE, DECL, EXPR, IF, LOOP, RETURN, SWITCH,
                Call, FileIR, FunctionIR, ProjectIR, Stmt)

_cindex = None


def _load_cindex():
    global _cindex
    if _cindex is not None:
        return _cindex
    import clang.cindex as cindex  # noqa: PLC0415

    if not cindex.Config.loaded:
        # Let an explicit override win; otherwise probe the usual SONAMEs.
        override = os.environ.get("AIACC_LIBCLANG")
        candidates = [override] if override else [
            None,  # default search
            "libclang.so", "libclang-14.so.1", "libclang.so.1",
            "/usr/lib/llvm-14/lib/libclang.so.1",
            "/usr/lib/llvm-15/lib/libclang.so.1",
            "/usr/lib/llvm-16/lib/libclang.so.1",
        ]
        for cand in candidates:
            try:
                if cand:
                    cindex.Config.set_library_file(cand)
                cindex.Index.create()
                break
            except Exception:
                cindex.Config.loaded = False
                continue
    _cindex = cindex
    return cindex


def available() -> bool:
    if os.environ.get("AIACC_ANALYZER_FORCE_NO_LIBCLANG"):
        return False
    try:
        cindex = _load_cindex()
        cindex.Index.create()
        return True
    except Exception:
        return False


# --------------------------------------------------------------------------


def _join(tokens) -> str:
    s = " ".join(tokens)
    s = re.sub(r"\s*(::|->|[.,;()\[\]])\s*", r"\1", s)
    s = re.sub(r"\s*([<>])\s*", r"\1", s)
    return s


def _tokens(cursor) -> str:
    try:
        return _join(t.spelling for t in cursor.get_tokens())
    except Exception:
        return ""


def _compile_args(repo: str, build_dir: str) -> dict[str, list[str]]:
    """file(abs) -> compiler args from compile_commands.json."""
    ccpath = os.path.join(repo, build_dir, "compile_commands.json")
    args_by_file: dict[str, list[str]] = {}
    try:
        with open(ccpath, encoding="utf-8") as f:
            db = json.load(f)
    except (OSError, ValueError):
        return args_by_file
    for entry in db:
        fpath = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        if "arguments" in entry:
            argv = list(entry["arguments"])
        else:
            argv = shlex.split(entry.get("command", ""))
        # Strip compiler, source file, -c/-o pairs.
        out: list[str] = []
        skip = False
        for a in argv[1:]:
            if skip:
                skip = False
                continue
            if a in ("-c", fpath, entry["file"]):
                continue
            if a == "-o":
                skip = True
                continue
            out.append(a)
        args_by_file[fpath] = out
    return args_by_file


def _default_args(repo: str) -> list[str]:
    return ["-std=c++17", "-x", "c++", f"-I{repo}/src", f"-I{repo}",
            f"-I{repo}/tests"]


_STATUS_TYPE = re.compile(r"\bStatus\b|\bResult<")


class _Lowerer:
    def __init__(self, cindex, rel: str):
        self.ck = cindex.CursorKind
        self.rel = rel

    # -- calls --------------------------------------------------------------

    def _collect_calls(self, cursor, calls: list[Call],
                       lambdas: list[FunctionIR]) -> None:
        ck = self.ck
        if cursor.kind == ck.LAMBDA_EXPR:
            lambdas.append(self.lower_lambda(cursor, bound_to=""))
            return
        if cursor.kind in (ck.CALL_EXPR,):
            call = self._lower_call(cursor)
            if call is not None:
                calls.append(call)
        for child in cursor.get_children():
            self._collect_calls(child, calls, lambdas)

    def _lower_call(self, cursor):
        name = cursor.spelling or ""
        if not name:
            return None
        recv = ""
        children = list(cursor.get_children())
        if children:
            callee = children[0]
            if callee.kind == self.ck.MEMBER_REF_EXPR:
                base = list(callee.get_children())
                if base:
                    recv = _tokens(base[0])
        args = [_tokens(c) for c in children[1:]]
        rtype = ""
        try:
            rtype = cursor.type.spelling or ""
        except Exception:
            pass
        return Call(name=name, recv=recv, args=args,
                    line=cursor.location.line,
                    returns_status=bool(_STATUS_TYPE.search(rtype)))

    def _stmt_calls(self, cursor) -> tuple[list[Call], list[FunctionIR]]:
        calls: list[Call] = []
        lambdas: list[FunctionIR] = []
        self._collect_calls(cursor, calls, lambdas)
        return calls, lambdas

    # -- statements ---------------------------------------------------------

    def lower_block(self, cursor) -> Stmt:
        children = [self.lower_stmt(c) for c in cursor.get_children()]
        return Stmt(kind=BLOCK, line=cursor.location.line,
                    children=[c for c in children if c is not None])

    def _as_block(self, cursor) -> Stmt:
        if cursor.kind == self.ck.COMPOUND_STMT:
            return self.lower_block(cursor)
        st = self.lower_stmt(cursor)
        return Stmt(kind=BLOCK, line=cursor.location.line,
                    children=[st] if st is not None else [])

    def lower_stmt(self, cursor):
        ck = self.ck
        kind = cursor.kind
        line = cursor.location.line
        if kind == ck.COMPOUND_STMT:
            return self.lower_block(cursor)
        if kind == ck.IF_STMT:
            kids = list(cursor.get_children())
            st = Stmt(kind=IF, line=line)
            if kids:
                st.cond = _tokens(kids[0])
                st.calls, st.lambdas = self._stmt_calls(kids[0])
            if len(kids) > 1:
                st.children.append(self._as_block(kids[1]))
            if len(kids) > 2:
                st.children.append(self._as_block(kids[2]))
            return st
        if kind in (ck.FOR_STMT, ck.WHILE_STMT, ck.DO_STMT,
                    ck.CXX_FOR_RANGE_STMT):
            kids = list(cursor.get_children())
            st = Stmt(kind=LOOP, line=line)
            if kids:
                body = kids[0] if kind == ck.DO_STMT else kids[-1]
                head = [k for k in kids if k is not body]
                st.cond = " ".join(filter(None, (_tokens(k) for k in head)))
                for k in head:
                    c, l = self._stmt_calls(k)
                    st.calls.extend(c)
                    st.lambdas.extend(l)
                st.children.append(self._as_block(body))
            return st
        if kind == ck.SWITCH_STMT:
            kids = list(cursor.get_children())
            st = Stmt(kind=SWITCH, line=line)
            if kids:
                st.cond = _tokens(kids[0])
                st.calls, st.lambdas = self._stmt_calls(kids[0])
                st.children.append(self._as_block(kids[-1]))
            return st
        if kind in (ck.CASE_STMT, ck.DEFAULT_STMT, ck.LABEL_STMT):
            kids = list(cursor.get_children())
            return self.lower_stmt(kids[-1]) if kids else None
        if kind == ck.RETURN_STMT:
            calls, lambdas = self._stmt_calls(cursor)
            return Stmt(kind=RETURN, line=line, text=_tokens(cursor),
                        calls=calls, lambdas=lambdas)
        if kind == ck.BREAK_STMT:
            return Stmt(kind=BREAK, line=line)
        if kind == ck.CONTINUE_STMT:
            return Stmt(kind=CONTINUE, line=line)
        if kind == ck.DECL_STMT:
            kids = [k for k in cursor.get_children()
                    if k.kind == ck.VAR_DECL]
            calls, lambdas = self._stmt_calls(cursor)
            st = Stmt(kind=DECL, line=line, text=_tokens(cursor),
                      calls=calls, lambdas=lambdas)
            if kids:
                var = kids[0]
                st.decl_name = var.spelling
                try:
                    st.decl_type = var.type.spelling
                except Exception:
                    st.decl_type = ""
                init = list(var.get_children())
                if init:
                    st.init = _tokens(init[-1])
                for lam in st.lambdas:
                    if not lam.bound_to:
                        lam.bound_to = var.spelling
            return st
        if kind in (ck.NULL_STMT,):
            return None
        # Everything else: an expression statement (or a statement kind we
        # don't model — its calls still matter).
        calls, lambdas = self._stmt_calls(cursor)
        return Stmt(kind=EXPR, line=line, text=_tokens(cursor),
                    calls=calls, lambdas=lambdas)

    # -- functions ----------------------------------------------------------

    def lower_lambda(self, cursor, bound_to: str) -> FunctionIR:
        body = None
        for c in cursor.get_children():
            if c.kind == self.ck.COMPOUND_STMT:
                body = c
        block = self.lower_block(body) if body is not None else Stmt(
            kind=BLOCK, line=cursor.location.line)
        return FunctionIR(name="<lambda>", qual_name="<lambda>",
                          file=self.rel, line=cursor.location.line,
                          body=block, is_lambda=True, bound_to=bound_to)

    def lower_function(self, cursor) -> FunctionIR | None:
        body = None
        for c in cursor.get_children():
            if c.kind == self.ck.COMPOUND_STMT:
                body = c
        if body is None:
            return None
        qual = cursor.spelling
        parent = cursor.semantic_parent
        try:
            if parent is not None and parent.kind in (
                    self.ck.CLASS_DECL, self.ck.STRUCT_DECL,
                    self.ck.CLASS_TEMPLATE):
                qual = f"{parent.spelling}::{qual}"
        except Exception:
            pass
        rtype = ""
        try:
            rtype = cursor.result_type.spelling
        except Exception:
            pass
        return FunctionIR(name=cursor.spelling, qual_name=qual,
                          file=self.rel, line=cursor.location.line,
                          body=self.lower_block(body), return_type=rtype)


def load_project(repo: str, files: list[str], build_dir: str) -> ProjectIR:
    cindex = _load_cindex()
    ck = cindex.CursorKind
    index = cindex.Index.create()
    args_by_file = _compile_args(repo, build_dir)
    fallback = _default_args(repo)
    fn_kinds = (ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR,
                ck.DESTRUCTOR, ck.FUNCTION_TEMPLATE, ck.CONVERSION_FUNCTION)

    project = ProjectIR(frontend="clang")
    for rel in files:
        abspath = os.path.normpath(os.path.join(repo, rel))
        args = args_by_file.get(abspath, fallback)
        fir = FileIR(path=rel)
        try:
            tu = index.parse(abspath, args=args)
        except Exception as err:  # unparsable: surface, don't crash the run
            raise RuntimeError(f"libclang failed to parse {rel}: {err}")
        lower = _Lowerer(cindex, rel)

        def visit(cursor):
            for child in cursor.get_children():
                loc = child.location
                if loc.file is None or os.path.normpath(
                        loc.file.name) != abspath:
                    continue
                if child.kind in fn_kinds and child.is_definition():
                    fn = lower.lower_function(child)
                    if fn is not None:
                        fir.functions.append(fn)
                elif child.kind in (ck.NAMESPACE, ck.CLASS_DECL,
                                    ck.STRUCT_DECL, ck.CLASS_TEMPLATE,
                                    ck.UNEXPOSED_DECL, ck.LINKAGE_SPEC):
                    visit(child)

        visit(tu.cursor)
        project.files.append(fir)
    return project
