"""Finding record, text/JSON emitters, baseline, inline suppressions.

The JSON artifact format is shared with tools/run_clang_tidy.py
(--fix-notes) so CI consumes one findings shape from both linters:

    {"version": 1, "tool": "...", "frontend": "...",
     "findings": [{"check","file","line","message","symbol"}...]}

Baselines match on (check, file, symbol, message) — never on line, so
unrelated edits above a baselined finding don't resurrect it.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass

FORMAT_VERSION = 1

SUPPRESS_RE = re.compile(r"ANALYZER-OK\(\s*([\w-]+)\s*(?::[^)]*)?\)")


@dataclass(frozen=True)
class Finding:
    check: str
    file: str  # repo-relative
    line: int
    message: str
    symbol: str = ""  # enclosing function, for stable baseline keys

    def text(self) -> str:
        return f"{self.file}:{self.line}: {self.check}: {self.message}"

    def baseline_key(self) -> tuple:
        return (self.check, self.file, self.symbol, self.message)


def to_json(findings: list[Finding], tool: str, frontend: str) -> str:
    return json.dumps(
        {
            "version": FORMAT_VERSION,
            "tool": tool,
            "frontend": frontend,
            "findings": [asdict(f) for f in findings],
        },
        indent=2,
    ) + "\n"


def load_baseline(path: str) -> set[tuple]:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError):
        return set()
    keys = set()
    for item in data.get("findings", []):
        keys.add((item.get("check", ""), item.get("file", ""),
                  item.get("symbol", ""), item.get("message", "")))
    return keys


def write_baseline(path: str, findings: list[Finding]) -> None:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(
            {
                "version": FORMAT_VERSION,
                "findings": [
                    {"check": x.check, "file": x.file, "symbol": x.symbol,
                     "message": x.message}
                    for x in findings
                ],
            },
            f, indent=2)
        f.write("\n")


def inline_suppressions(raw_text: str) -> dict[int, set[str]]:
    """line number -> suppressed check names, from
    `// ANALYZER-OK(check: reason)` comments in the raw (unstripped)
    file text. A comment suppresses findings on its own line and the
    line below it."""
    supp: dict[int, set[str]] = {}
    for lineno, line in enumerate(raw_text.splitlines(), 1):
        for m in SUPPRESS_RE.finditer(line):
            supp.setdefault(lineno, set()).add(m.group(1))
    return supp


def is_suppressed(f: Finding, supp: dict[int, set[str]]) -> bool:
    for line in (f.line, f.line - 1):
        checks = supp.get(line)
        if checks and (f.check in checks or "all" in checks):
            return True
    return False
