"""The analyzer IR: a function-granular statement tree both frontends
lower to, and the only shape the checks ever see.

The IR is deliberately small — it models exactly what the five checks
need: statement structure (blocks / branches / loops / returns), the
calls each statement makes (callee name, receiver text, argument texts),
and local declarations with their spelled type. The clang frontend
(frontend_clang.py) fills it from real AST cursors; the lite frontend
(frontend_lite.py) from a structural scan. Checks must therefore treat
fields as best-effort spellings, not resolved semantics — with one
exception: `Call.returns_status`, which the clang frontend resolves from
the callee's real result type and the lite frontend from the repo-wide
signature index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

# Statement kinds.
EXPR = "expr"
DECL = "decl"
RETURN = "return"
IF = "if"
LOOP = "loop"
SWITCH = "switch"
BLOCK = "block"
BREAK = "break"
CONTINUE = "continue"


@dataclass
class Call:
    """One call expression inside a statement."""

    name: str  # unqualified callee spelling, e.g. "Acquire"
    recv: str  # receiver text before ./->, "" for free calls
    args: list[str]  # raw argument texts (top-level comma split)
    line: int
    # Resolved by the frontend where possible: does the callee return
    # Status / Result<T>? None = unknown.
    returns_status: Optional[bool] = None

    @property
    def full(self) -> str:
        return f"{self.recv}.{self.name}" if self.recv else self.name


@dataclass
class Stmt:
    """One statement. `children` nesting by kind:
    IF      -> [then-block, else-block?]
    LOOP    -> [body-block]
    SWITCH  -> [body-block]
    BLOCK   -> statements
    others  -> []
    `lambdas` holds the bodies of lambda literals that appeared textually
    inside this statement; their calls are NOT in `calls` (a lambda's body
    runs when invoked, not where it is written).
    """

    kind: str
    line: int
    text: str = ""  # statement text with lambda bodies blanked
    cond: str = ""  # if/loop/switch controlling expression text
    calls: list[Call] = field(default_factory=list)
    children: list["Stmt"] = field(default_factory=list)
    lambdas: list["FunctionIR"] = field(default_factory=list)
    # DECL extras
    decl_type: str = ""
    decl_name: str = ""
    init: str = ""

    def walk(self):
        yield self
        for ch in self.children:
            yield from ch.walk()


@dataclass
class FunctionIR:
    """A function (or lambda) body."""

    name: str  # unqualified name; lambdas get "<lambda>"
    qual_name: str  # as-spelled qualified name (Cls::Fn) when known
    file: str  # repo-relative path
    line: int
    body: Stmt  # kind == BLOCK
    return_type: str = ""
    is_lambda: bool = False
    # Name of the variable a lambda was bound to (`auto f = [..]{..}`),
    # "" for unbound lambdas. Lets checks model calls through the local.
    bound_to: str = ""

    def all_stmts(self):
        yield from self.body.walk()

    def all_lambdas(self):
        for st in self.all_stmts():
            for lam in st.lambdas:
                yield lam
                yield from lam.all_lambdas()


@dataclass
class FileIR:
    path: str  # repo-relative
    functions: list[FunctionIR] = field(default_factory=list)


@dataclass
class ProjectIR:
    files: list[FileIR] = field(default_factory=list)
    # function name -> "status" | "result" for every function the project
    # declares with a Status / Result<T> return type (lite-frontend
    # fallback for Call.returns_status).
    signature_index: dict = field(default_factory=dict)
    frontend: str = "lite"

    def functions(self):
        for f in self.files:
            for fn in f.functions:
                yield fn
                for lam in fn.all_lambdas():
                    yield lam
