"""Structural (non-libclang) frontend.

Lowers the repo's C++ to the analyzer IR with a brace/paren-driven scan:
no preprocessor, no templates instantiation, no overload resolution —
just the statement structure, calls, and declarations the checks need.
It exists so the analyzer runs (and its fixtures test) on machines
without libclang; frontend_clang.py is the full-fidelity twin and CI's
canonical frontend. Both must produce the same findings on the fixture
corpus (tests/analyzer_test.py asserts this for whichever is available).

Known, accepted approximations:
  * `Call.returns_status` comes from a repo-wide signature index (any
    function *name* declared anywhere with a Status/Result return). A
    name declared with both Status and non-Status returns is treated as
    ambiguous and dropped from the index (never flagged).
  * Statement texts are spellings; type names are spellings.
"""

from __future__ import annotations

import os
import re

from ir import (BLOCK, BREAK, CONTINUE, DECL, EXPR, IF, LOOP, RETURN, SWITCH,
                Call, FileIR, FunctionIR, ProjectIR, Stmt)
from lexer import (NOT_A_CALL, ident_ending_at, line_of, match_delim,
                   skip_ws_back, strip_comments_and_strings)

CPP_EXTS = (".h", ".hpp", ".cc", ".cpp")

# --------------------------------------------------------------------------
# Signature index: function name -> "status" | "result".
# --------------------------------------------------------------------------

SIG_RE = re.compile(
    r"(?:^|[;{}]|\bvirtual\b|\bstatic\b|\binline\b|\bconstexpr\b|"
    r"\[\[nodiscard\]\])\s*"
    r"(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+|static\s+|inline\s+|friend\s+)*"
    r"(?P<ret>(?:::)?(?:\w+::)*(?:Status\b|Result\s*<[^;(){}=]*>))\s*[&]?\s+"
    r"(?:\w+(?:<[^;(){}]*>)?::)*"  # optional Class:: qualifier on definitions
    r"(?P<name>[A-Za-z_]\w*)\s*\(",
    re.M,
)

# Any other return type followed by the same name: used to spot ambiguity.
ANY_SIG_RE = re.compile(
    r"(?:^|[;{}])\s*(?:\[\[nodiscard\]\]\s*)?(?:virtual\s+|static\s+|inline\s+)*"
    r"(?P<ret>(?:const\s+)?(?:unsigned\s+)?[A-Za-z_][\w:]*(?:\s*<[^;(){}=]*>)?"
    r"[&*\s]+)"
    r"(?P<name>[A-Za-z_]\w*)\s*\(",
    re.M,
)

CONTROL_BEFORE_PAREN = frozenset(("if", "for", "while", "switch", "return"))


def build_signature_index(texts: dict[str, str],
                          with_others: bool = False):
    """texts: repo-relative path -> raw file contents. Two passes: first
    every Status/Result declaration, then every other declaration — a
    name declared with both a Status-ish and a non-Status return anywhere
    in the project is ambiguous and dropped (never flagged). With
    `with_others`, also return the set of names seen with a non-Status
    return (so a caller can mask a broader index with local negatives)."""
    stripped = {p: strip_comments_and_strings(raw)
                for p, raw in sorted(texts.items())}
    status_names: dict[str, str] = {}
    other_names: set[str] = set()
    for code in stripped.values():
        for m in SIG_RE.finditer(code):
            ret = m.group("ret")
            kind = "result" if "Result" in ret else "status"
            name = m.group("name")
            prev = status_names.get(name)
            if prev is not None and prev != kind:
                other_names.add(name)  # Status vs Result under one name
            status_names[name] = kind
    for code in stripped.values():
        for m in ANY_SIG_RE.finditer(code):
            ret = m.group("ret").strip()
            name = m.group("name")
            if name in CONTROL_BEFORE_PAREN or not ret:
                continue
            if re.search(r"\bStatus\b|\bResult\b", ret):
                continue
            if ret in ("return", "else", "new", "delete", "case", "do",
                       "const", "co_return"):
                continue
            if name in status_names:
                other_names.add(name)
    if with_others:
        ambiguous = {n for n in other_names if n in status_names}
        for name in ambiguous:
            status_names.pop(name)
        return status_names, other_names - ambiguous
    for name in other_names:
        status_names.pop(name, None)
    return status_names


# --------------------------------------------------------------------------
# Function discovery.
# --------------------------------------------------------------------------

_CTRL_OR_EXPR = frozenset(("if", "for", "while", "switch", "return",
                           "catch", "do", "else", "constexpr"))
_EXPR_KEYWORDS = frozenset(("return", "new", "else", "case", "delete",
                            "throw", "do", "co_return", "goto"))
_QUAL_KEYWORDS = frozenset(("const", "noexcept", "override", "final",
                            "mutable", "try"))
_MACRO_NAME = re.compile(r"[A-Z][A-Z0-9_]*")
# What a declaration head (return type + specifiers) may contain.
_DECL_HEAD_OK = re.compile(r"^[\w\s:<>,&*\[\]~]*$")
_DECL_HEAD_BAD_WORDS = re.compile(
    r"\b(?:return|new|delete|else|case|throw|do|co_return|goto|sizeof)\b")


def _match_back(code: str, j: int, opener: str, closer: str) -> int:
    depth = 0
    while j >= 0:
        c = code[j]
        if c == closer:
            depth += 1
        elif c == opener:
            depth -= 1
            if depth == 0:
                return j
        j -= 1
    return -1


def _consume_trailing_return(code: str, j: int, limit: int = 100):
    """`j` sits on the last char of a trailing return type (`-> T<U>&`).
    Return the position just before the `->`, or None."""
    start = j
    while j >= 0 and start - j < limit:
        c = code[j]
        if c == ">" and j >= 1 and code[j - 1] == "-":
            return skip_ws_back(code, j - 2)
        if c == ">":
            k = _match_back(code, j, "<", ">")
            if k < 0:
                return None
            j = k - 1
            continue
        if c.isalnum() or c in "_:&* \t\n":
            j -= 1
            continue
        return None
    return None


def _function_head(code: str, brace: int):
    """For a '{' at `brace`: (name, open_paren) of the function definition
    whose body it opens, or None. Understands qualifier keywords,
    ALL_CAPS macro qualifiers (REQUIRES(mu), AIACC_*), trailing return
    types, and constructor member-initializer lists. Rejects control
    flow, lambdas (the statement parser owns those), initializer braces,
    and class/namespace bodies."""
    j = skip_ws_back(code, brace - 1)
    for _ in range(40):
        if j < 0:
            return None
        c = code[j]
        if c == "]":
            return None  # lambda literal
        if c in ")}":
            opener = "(" if c == ")" else "{"
            k = _match_back(code, j, opener, c)
            if k < 0:
                return None
            p = skip_ws_back(code, k - 1)
            name = ident_ending_at(code, p)
            if not name:
                return None
            if c == ")" and _MACRO_NAME.fullmatch(name):
                before = skip_ws_back(code, p - len(name))
                if before < 0 or code[before] in ";}{":
                    # The macro call IS the definition head — gtest-style
                    # TEST(Suite, Name) { ... } bodies are functions too.
                    return name, k
                # Qualifier macro (EXCLUDES(mu_), AIACC_NO_TSAN(..)).
                j = before
                continue
            q = skip_ws_back(code, p - len(name))
            sep = code[q] if q >= 0 else ""
            if sep in ",:" and not (sep == ":" and q >= 1
                                    and code[q - 1] == ":"):
                # `name(args)` / `name{args}` is a member initializer —
                # keep walking toward the real parameter list.
                j = skip_ws_back(code, q - 1)
                continue
            if c == "}":
                return None  # `Type x{init};` or a block — not a head
            if name in _CTRL_OR_EXPR:
                return None
            return name, k
        ident = ident_ending_at(code, j)
        if ident in _QUAL_KEYWORDS:
            j = skip_ws_back(code, j - len(ident))
            continue
        if ident in _EXPR_KEYWORDS:
            return None
        if ident or c in ">&*:":
            # Possibly a trailing return type `) -> T {`.
            r = _consume_trailing_return(code, j)
            if r is None:
                return None
            j = r
            continue
        return None
    return None


def _qualified_name(code: str, op: int, name: str) -> tuple[str, int]:
    """Expand `name` (param list opens at `op`) to `Ns::Cls::name`;
    returns (qual_name, index before the full qualified name)."""
    qual = name
    k = skip_ws_back(code, op - 1) - len(name)
    if k >= 0 and code[k] == "~":  # destructor
        qual = "~" + qual
        k -= 1
    while k >= 1 and code[k - 1 : k + 1] == "::":
        k -= 2
        if k >= 0 and code[k] == ">":  # Cls<T>::
            k = _match_back(code, k, "<", ">") - 1
            if k < -1:
                return qual, k
        part = ident_ending_at(code, k)
        if not part:
            break
        qual = part + "::" + qual
        k -= len(part)
    return qual, k


def _head_is_declaration(code: str, before_name: int) -> bool:
    """Validate the text between the previous statement/body boundary and
    the function name: it must look like specifiers + a return type, not
    an expression (which would make the paren a call, not a head)."""
    start = before_name
    while start >= 0 and code[start] not in ";{}":
        start -= 1
    seg = code[start + 1 : before_name + 1]
    seg = re.sub(r"\[\[[^\]]*\]\]", " ", seg)  # [[nodiscard]] etc.
    if _DECL_HEAD_BAD_WORDS.search(seg):
        return False
    return _DECL_HEAD_OK.match(seg) is not None


def _return_type_before(code: str, name_start: int) -> str:
    start = max(0, name_start - 120)
    seg = code[start:name_start]
    seg = re.sub(r"\[\[[^\]]*\]\]", " ", seg)
    for kw in ("virtual", "static", "inline", "constexpr", "explicit",
               "friend"):
        seg = re.sub(r"\b" + kw + r"\b", " ", seg)
    # Last line-ish fragment only.
    seg = re.split(r"[;{}]", seg)[-1]
    return " ".join(seg.split())[-80:]


def find_function_bodies(code: str):
    """Yield (name, qual, sig_open, body_open, body_close) for every
    function definition body in stripped text, outermost only (nested
    lambdas are parsed by the statement parser)."""
    i = 0
    n = len(code)
    while i < n:
        if code[i] != "{":
            i += 1
            continue
        head = _function_head(code, i)
        if head is None:
            # Not a function head (class/namespace/enum/init-list body) —
            # step inside and keep scanning (methods live inside class
            # braces). Lambdas are parsed by the statement parser.
            i += 1
            continue
        name, op = head
        qual, before = _qualified_name(code, op, name)
        if not _head_is_declaration(code, before):
            i += 1
            continue
        if _MACRO_NAME.fullmatch(name):
            # TEST(Suite, Name)-style head: fold the args into the symbol
            # so findings in different tests stay distinguishable.
            close_paren = match_delim(code, op)
            args = re.sub(r"\s+", " ", code[op + 1:close_paren]).strip()
            qual = f"{name}({args})"
        close = match_delim(code, i)
        yield name, qual, op, i, close
        i = close + 1


# --------------------------------------------------------------------------
# Statement parsing.
# --------------------------------------------------------------------------

_WORD = re.compile(r"[A-Za-z_]\w*")

DECL_RE = re.compile(
    r"^\s*(?:const\s+|constexpr\s+|static\s+|mutable\s+)*"
    r"(?P<type>(?:typename\s+)?[A-Za-z_][\w:]*(?:\s*<[^;=]*?>)?"
    r"(?:\s*[&*]+|\s+))\s*"
    r"(?P<name>[A-Za-z_]\w*)\s*(?P<init>=[^;]*|\([^;]*\)|\{[^;]*\})?\s*;?\s*$",
    re.S,
)

_DECL_TYPE_NOT = frozenset((
    "return", "delete", "case", "goto", "new", "throw", "else", "do",
    "break", "continue", "using", "typedef", "public", "private",
    "protected", "template", "operator", "sizeof", "co_return",
))


class _Parser:
    def __init__(self, code: str, rel: str):
        self.code = code  # stripped whole-file text
        self.rel = rel

    def parse_function(self, name: str, qual: str, body_open: int,
                       body_close: int, return_type: str,
                       is_lambda: bool = False,
                       bound_to: str = "") -> FunctionIR:
        block = self.parse_block(body_open + 1, body_close)
        block.line = line_of(self.code, body_open)
        return FunctionIR(
            name=name, qual_name=qual, file=self.rel,
            line=line_of(self.code, body_open), body=block,
            return_type=return_type, is_lambda=is_lambda, bound_to=bound_to)

    # -- block/statement scanning ------------------------------------------

    def parse_block(self, start: int, end: int) -> Stmt:
        code = self.code
        stmts: list[Stmt] = []
        i = start
        while i < end:
            c = code[i]
            if c.isspace() or c == ";":
                i += 1
                continue
            if c == "}":
                break
            word_m = _WORD.match(code, i)
            word = word_m.group(0) if word_m else ""
            if word in ("case", "default"):
                # Label colon = first ':' that is not part of a '::'.
                j = i
                colon = -1
                while True:
                    colon = code.find(":", j, end)
                    if colon != -1 and code[colon + 1 : colon + 2] == ":":
                        j = colon + 2
                        continue
                    break
                i = (colon + 1) if colon != -1 else end
                continue
            if word in ("public", "private", "protected"):
                i = code.find(":", i, end) + 1
                continue
            if word == "if":
                st, i = self.parse_if(i, end)
                stmts.append(st)
            elif word in ("for", "while"):
                st, i = self.parse_loop(i, end, word)
                stmts.append(st)
            elif word == "do":
                st, i = self.parse_do(i, end)
                stmts.append(st)
            elif word == "switch":
                st, i = self.parse_switch(i, end)
                stmts.append(st)
            elif word in ("break", "continue"):
                semi = code.find(";", i, end)
                stmts.append(Stmt(kind=BREAK if word == "break" else CONTINUE,
                                  line=line_of(code, i)))
                i = (semi + 1) if semi != -1 else end
            elif c == "{":
                close = match_delim(code, i)
                blk = self.parse_block(i + 1, min(close, end))
                blk.line = line_of(code, i)
                stmts.append(blk)
                i = close + 1
            else:
                st, i = self.parse_simple(i, end)
                if st is not None:
                    stmts.append(st)
        return Stmt(kind=BLOCK, line=line_of(code, start), children=stmts)

    def _paren_after(self, i: int, end: int) -> tuple[str, int, int]:
        """Controlling '(...)' after a keyword at i: (text, open, after)."""
        op = self.code.find("(", i, end)
        if op == -1:
            return "", i, end
        close = match_delim(self.code, op)
        return self.code[op + 1 : close], op, close + 1

    def parse_substmt(self, i: int, end: int) -> tuple[Stmt, int]:
        """A single statement or braced block (if/else/loop body)."""
        code = self.code
        while i < end and code[i].isspace():
            i += 1
        if i < end and code[i] == "{":
            close = match_delim(code, i)
            blk = self.parse_block(i + 1, min(close, end))
            blk.line = line_of(code, i)
            return blk, close + 1
        # Single statement: bound it FIRST, then parse just that span
        # (parsing the rest of the function and discarding it would be
        # exponential on if-return ladders).
        nxt = self._stmt_end(i, end)
        blk = self.parse_block(i, nxt)
        blk.line = line_of(code, i)
        return blk, nxt

    def _stmt_end(self, i: int, end: int) -> int:
        """Position just after the first full statement starting at i.
        Pure position scan — builds no Stmt objects."""
        code = self.code
        while i < end and code[i].isspace():
            i += 1
        if i >= end:
            return end
        if code[i] == "{":
            return min(match_delim(code, i) + 1, end)
        word_m = _WORD.match(code, i)
        word = word_m.group(0) if word_m else ""
        if word == "if":
            _, _, after = self._paren_after(i, end)
            after = self._stmt_end(after, end)
            j = after
            while j < end and code[j].isspace():
                j += 1
            if code[j : j + 4] == "else" and not (
                    code[j + 4 : j + 5].isalnum() or code[j + 4 : j + 5] == "_"):
                after = self._stmt_end(j + 4, end)
            return after
        if word in ("for", "while", "switch"):
            _, _, after = self._paren_after(i, end)
            return self._stmt_end(after, end)
        if word == "do":
            after = self._stmt_end(i + 2, end)
            j = code.find("while", after, end)
            if j != -1:
                _, _, after2 = self._paren_after(j, end)
                semi = code.find(";", after2, end)
                return (semi + 1) if semi != -1 else after2
            return after
        # Simple statement: to the ';' at delimiter depth 0.
        j = i
        while j < end:
            c = code[j]
            if c in "([{":
                j = match_delim(code, j)
            elif c == ";":
                return j + 1
            elif c == "}":
                return j
            j += 1
        return end

    def parse_if(self, i: int, end: int) -> tuple[Stmt, int]:
        code = self.code
        cond, _, after = self._paren_after(i, end)
        then_blk, after = self.parse_substmt(after, end)
        st = Stmt(kind=IF, line=line_of(code, i), cond=cond,
                  children=[then_blk])
        st.calls, st.lambdas = self._calls_in(cond, i)
        j = after
        while j < end and code[j].isspace():
            j += 1
        if code[j : j + 4] == "else" and not (code[j + 4 : j + 5].isalnum()
                                              or code[j + 4 : j + 5] == "_"):
            else_blk, after = self.parse_substmt(j + 4, end)
            st.children.append(else_blk)
        return st, after

    def parse_loop(self, i: int, end: int, kw: str) -> tuple[Stmt, int]:
        code = self.code
        cond, _, after = self._paren_after(i, end)
        body, after = self.parse_substmt(after, end)
        st = Stmt(kind=LOOP, line=line_of(code, i), cond=cond,
                  children=[body])
        st.calls, st.lambdas = self._calls_in(cond, i)
        return st, after

    def parse_do(self, i: int, end: int) -> tuple[Stmt, int]:
        code = self.code
        body, after = self.parse_substmt(i + 2, end)
        st = Stmt(kind=LOOP, line=line_of(code, i), children=[body])
        # Trailing `while (...)`;
        j = code.find("while", after, end)
        if j != -1:
            cond, _, after2 = self._paren_after(j, end)
            st.cond = cond
            st.calls, st.lambdas = self._calls_in(cond, j)
            semi = code.find(";", after2, end)
            after = (semi + 1) if semi != -1 else after2
        return st, after

    def parse_switch(self, i: int, end: int) -> tuple[Stmt, int]:
        code = self.code
        cond, _, after = self._paren_after(i, end)
        body, after = self.parse_substmt(after, end)
        st = Stmt(kind=SWITCH, line=line_of(code, i), cond=cond,
                  children=[body])
        st.calls, st.lambdas = self._calls_in(cond, i)
        return st, after

    def parse_simple(self, i: int, end: int) -> tuple[Stmt | None, int]:
        code = self.code
        after = self._stmt_end(i, end)
        # Statement text minus the trailing ';'.
        text = code[i:after].rstrip()
        if text.endswith(";"):
            text = text[:-1]
        if not text.strip():
            return None, after
        line = line_of(code, i)
        calls, lambdas = self._calls_in(text, i)
        blanked = self._blank_lambdas(text)
        kind = EXPR
        st = Stmt(kind=kind, line=line, text=blanked, calls=calls,
                  lambdas=lambdas)
        word_m = _WORD.match(blanked.lstrip())
        word = word_m.group(0) if word_m else ""
        if word == "return":
            st.kind = RETURN
            return st, after
        m = DECL_RE.match(blanked)
        if m is not None and m.group("type") is not None:
            tname = m.group("type").strip().rstrip("&*").strip()
            head = tname.split("<")[0].split("::")[-1].strip()
            if (head not in _DECL_TYPE_NOT and _WORD.fullmatch(head)
                    and "=" not in tname and "(" not in m.group("type")):
                init = (m.group("init") or "").lstrip("=").strip()
                # `foo = bar` parses as type=foo name=bar with no init —
                # reject: a decl with neither init nor a multi-token type
                # whose name is immediately preceded by '=' is assignment.
                st.kind = DECL
                st.decl_type = m.group("type").strip()
                st.decl_name = m.group("name")
                st.init = self._blank_lambdas(init)
                if not m.group("init") and "=" in blanked:
                    st.kind = EXPR
                    st.decl_type = st.decl_name = st.init = ""
        return st, after

    # -- calls & lambdas ----------------------------------------------------

    def _lambda_spans(self, text: str) -> list[tuple[int, int, int]]:
        """(bracket_open, body_open, body_close) of lambda literals in
        `text` (relative offsets), outermost only."""
        spans = []
        i = 0
        n = len(text)
        while i < n:
            if text[i] != "[":
                i += 1
                continue
            # Previous non-space char decides lambda vs indexing.
            p = skip_ws_back(text, i - 1)
            prev = text[p] if p >= 0 else ""
            if prev.isalnum() or prev in ("_", ")", "]"):
                i += 1
                continue
            cb = match_delim(text, i)
            if cb >= n:
                i += 1
                continue
            j = cb + 1
            while j < n and text[j].isspace():
                j += 1
            if j < n and text[j] == "(":
                j = match_delim(text, j) + 1
                # Skip qualifiers / trailing return.
                while j < n:
                    while j < n and text[j].isspace():
                        j += 1
                    m = re.match(r"(?:mutable|noexcept|->\s*[\w:<>,&*\s]+?)\s*(?=\{)",
                                 text[j:])
                    if m and m.end() > 0:
                        j += m.end()
                        break
                    break
            while j < n and text[j].isspace():
                j += 1
            if j < n and text[j] == "{":
                close = match_delim(text, j)
                spans.append((i, j, close))
                i = close + 1
            else:
                i += 1
        return spans

    def _blank_lambdas(self, text: str) -> str:
        out = list(text)
        for _, bo, bc in self._lambda_spans(text):
            for k in range(bo + 1, min(bc, len(out))):
                if out[k] != "\n":
                    out[k] = " "
        return "".join(out)

    def _calls_in(self, text: str, abs_pos: int) -> tuple[list[Call],
                                                          list[FunctionIR]]:
        """Calls in `text` (lambda bodies excluded) and the lambda bodies
        parsed as FunctionIRs. abs_pos = offset of text[0] in self.code."""
        lambdas: list[FunctionIR] = []
        for br, bo, bc in self._lambda_spans(text):
            bound = ""
            eq = text.rfind("=", 0, br)
            if eq > 0:
                bound = ident_ending_at(text, skip_ws_back(text, eq - 1))
            lam = self.parse_function(
                "<lambda>", "<lambda>", abs_pos + bo, abs_pos + bc, "",
                is_lambda=True, bound_to=bound)
            lambdas.append(lam)
        blanked = self._blank_lambdas(text)
        calls: list[Call] = []
        for m in _WORD.finditer(blanked):
            name = m.group(0)
            j = m.end()
            while j < len(blanked) and blanked[j].isspace():
                j += 1
            # Template argument list directly after the name.
            if j < len(blanked) and blanked[j] == "<":
                tc = self._match_angle(blanked, j)
                if tc != -1:
                    j = tc + 1
                    while j < len(blanked) and blanked[j].isspace():
                        j += 1
            if j >= len(blanked) or blanked[j] != "(":
                continue
            if name in NOT_A_CALL:
                continue
            close = match_delim(blanked, j)
            args = self._split_args(blanked[j + 1 : close])
            # Receiver: walk back over `recv.` / `recv->` / `Ns::`.
            p = m.start() - 1
            recv = ""
            if p >= 0 and blanked[max(0, p - 1) : p + 1] in ("::",):
                pass
            if p >= 1 and blanked[p - 1 : p + 1] == "::":
                q = skip_ws_back(blanked, p - 2)
                recv = ident_ending_at(blanked, q)
            elif p >= 0 and blanked[p] == ".":
                q = skip_ws_back(blanked, p - 1)
                recv = self._recv_chain(blanked, q)
            elif p >= 1 and blanked[p - 1 : p + 1] == "->":
                q = skip_ws_back(blanked, p - 2)
                recv = self._recv_chain(blanked, q)
            calls.append(Call(name=name, recv=recv, args=args,
                              line=line_of(self.code,
                                           abs_pos + m.start())))
        return calls, lambdas

    @staticmethod
    def _match_angle(text: str, i: int) -> int:
        """Match a template argument list starting at '<'; -1 when it is
        really a comparison (heuristic: hit ';', '&&', '||' first)."""
        depth = 0
        for j in range(i, min(len(text), i + 200)):
            c = text[j]
            if c == "<":
                depth += 1
            elif c == ">":
                depth -= 1
                if depth == 0:
                    return j
            elif c in ";{}":
                return -1
            elif c == "&" and j + 1 < len(text) and text[j + 1] == "&":
                return -1
        return -1

    @staticmethod
    def _recv_chain(text: str, i: int) -> str:
        """Receiver text ending at i: `obj`, `a.b`, `arr[0]`, `f(x)`."""
        j = i
        while j >= 0:
            c = text[j]
            if c.isalnum() or c == "_":
                j -= 1
            elif c in ")]":
                depth = 0
                while j >= 0:
                    if text[j] in ")]":
                        depth += 1
                    elif text[j] in "([":
                        depth -= 1
                        if depth == 0:
                            j -= 1
                            break
                    j -= 1
            elif c == "." or c == ":":
                j -= 1
            elif c == ">" and j >= 1 and text[j - 1] == "-":
                j -= 2
            elif c == "*" or c == "&":
                j -= 1
                break
            else:
                break
        return text[j + 1 : i + 1].strip().lstrip("*&")

    @staticmethod
    def _split_args(argtext: str) -> list[str]:
        args = []
        depth = 0
        cur = []
        for c in argtext:
            if c in "([{<":
                depth += 1
            elif c in ")]}>":
                depth = max(0, depth - 1)
            if c == "," and depth == 0:
                args.append("".join(cur).strip())
                cur = []
            else:
                cur.append(c)
        tail = "".join(cur).strip()
        if tail:
            args.append(tail)
        return args


# --------------------------------------------------------------------------
# Project loading.
# --------------------------------------------------------------------------

def load_project(repo: str, files: list[str]) -> ProjectIR:
    """files: repo-relative paths to analyze. The signature index is
    built from the full src/ tree regardless, so cross-file return types
    resolve even for partial runs."""
    texts: dict[str, str] = {}
    src_root = os.path.join(repo, "src")
    for dirpath, _, names in os.walk(src_root):
        for name in sorted(names):
            if name.endswith(CPP_EXTS):
                p = os.path.join(dirpath, name)
                rel = os.path.relpath(p, repo)
                with open(p, encoding="utf-8", errors="replace") as f:
                    texts[rel] = f.read()
    # Files outside src/ (fixtures, tests, benches) resolve return types
    # against a TU-like local view first — the file itself plus the
    # headers sitting next to it — so a self-contained fixture stub wins
    # over a same-named symbol elsewhere in the repo.
    outside_src: set[str] = set()
    for rel in files:
        if rel not in texts:
            with open(os.path.join(repo, rel), encoding="utf-8",
                      errors="replace") as f:
                texts[rel] = f.read()
            outside_src.add(rel)

    dir_header_cache: dict[str, dict[str, str]] = {}

    def _dir_headers(rel: str) -> dict[str, str]:
        d = os.path.dirname(os.path.join(repo, rel))
        if d not in dir_header_cache:
            hdrs: dict[str, str] = {}
            for name in sorted(os.listdir(d)):
                if name.endswith((".h", ".hpp")):
                    p = os.path.join(d, name)
                    with open(p, encoding="utf-8", errors="replace") as f:
                        hdrs[os.path.relpath(p, repo)] = f.read()
            dir_header_cache[d] = hdrs
        return dir_header_cache[d]

    project = ProjectIR(frontend="lite")
    project.signature_index = build_signature_index(texts)
    for rel in files:
        raw = texts[rel]
        code = strip_comments_and_strings(raw)
        parser = _Parser(code, rel)
        fir = FileIR(path=rel)
        for name, qual, op, bo, bc in find_function_bodies(code):
            name_start = skip_ws_back(code, op - 1) - len(name) + 1
            ret = _return_type_before(code, name_start)
            fn = parser.parse_function(name, qual, bo, bc, ret)
            fir.functions.append(fn)
        project.files.append(fir)

    # Resolve returns_status: local TU-like view first (out-of-src files
    # only), then the repo-wide index.
    for fir in project.files:
        local_status: dict[str, str] = {}
        local_others: set[str] = set()
        if fir.path in outside_src:
            local = dict(_dir_headers(fir.path))
            local[fir.path] = texts[fir.path]
            local_status, local_others = build_signature_index(
                local, with_others=True)

        def resolve(name: str) -> bool:
            if name in local_status:
                return True
            if name in local_others:
                return False
            return project.signature_index.get(name) is not None

        for fn in fir.functions:
            for f in (fn, *fn.all_lambdas()):
                for st in f.all_stmts():
                    for call in st.calls:
                        if call.returns_status is None:
                            call.returns_status = resolve(call.name)
    return project
