#!/usr/bin/env python3
"""aiacc-analyzer — AST-level protocol & resource checks for the repo.

Six checks regex cannot express (see DESIGN.md "Static analysis"):
  dropped-status            Status/Result values discarded or overwritten
                            before inspection
  pool-leak                 BufferPool::Acquire without Release/move-out on
                            every path; double release/move
  blocking-under-lock       transport Recv/RecvFor/Send/Barrier (or a local
                            function reaching one) while a common::Mutex
                            guard is live; CondVar waits holding an
                            unrelated guard
  tag-collision             tags.h layout relations + symbolic evaluation
                            of `tag_base + expr` offsets against
                            kTagsPerCollective
  codec-record-validation   decode Status must be checked before decoded
                            payloads are touched (src/compress/)
  priority-ordering         unit dispatch in src/core/ must go through
                            ReadySetScheduler::Push/PopFor — a raw
                            BlockingQueue<AllReduceUnit> (or Push/Pop on
                            one) bypasses priority order, aging, and
                            preemption

Frontends:
  clang  libclang (Python clang.cindex) over build/compile_commands.json —
         the full-fidelity frontend CI runs. If libclang is missing the
         tool SKIPs cleanly (exit 0) so dev boxes without clang never
         fail the lint lane.
  lite   dependency-free structural frontend lowering to the same IR —
         always available, used for local runs and the fixture self-test.
  auto   clang when importable, else lite (default).

Usage:
  python3 tools/aiacc_analyzer/analyze.py                 # all of src/
  python3 tools/aiacc_analyzer/analyze.py src/compress    # a subtree
  python3 tools/aiacc_analyzer/analyze.py --json out.json --frontend lite
  python3 tools/aiacc_analyzer/analyze.py --update-baseline

Exit codes: 0 clean (or skipped), 1 findings, 2 usage/internal error.
Suppressions: `// ANALYZER-OK(check: reason)` on the finding's line or the
line above; checked-in waivers live in tools/aiacc_analyzer/baseline.json.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import checks as checks_mod  # noqa: E402
import findings as findings_mod  # noqa: E402

TOOL = "aiacc-analyzer"
DEFAULT_BASELINE = os.path.join("tools", "aiacc_analyzer", "baseline.json")


def repo_root(start: str) -> str:
    d = os.path.abspath(start)
    while d != os.path.dirname(d):
        if os.path.isdir(os.path.join(d, ".git")) or os.path.isfile(
                os.path.join(d, "ROADMAP.md")):
            return d
        d = os.path.dirname(d)
    return os.path.abspath(start)


def collect_files(repo: str, paths: list[str]) -> list[str]:
    exts = (".h", ".hpp", ".cc", ".cpp")
    rels: list[str] = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(repo, p)
        if os.path.isdir(ap):
            for dirpath, dirnames, names in os.walk(ap):
                # Fixture trees are intentionally full of violations; they
                # are only analyzed when a file is named explicitly.
                dirnames[:] = [d for d in dirnames
                               if d != "analyzer_fixtures"]
                for name in sorted(names):
                    if name.endswith(exts):
                        rels.append(os.path.relpath(
                            os.path.join(dirpath, name), repo))
        elif os.path.isfile(ap):
            rels.append(os.path.relpath(ap, repo))
        else:
            print(f"{TOOL}: error: no such path: {p}", file=sys.stderr)
            raise SystemExit(2)
    return sorted(set(rels))


def clang_available() -> bool:
    if os.environ.get("AIACC_ANALYZER_FORCE_NO_LIBCLANG"):
        return False
    try:
        import frontend_clang  # noqa: F401
        return frontend_clang.available()
    except Exception:
        return False


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog=TOOL, description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", default=None,
                    help="files/dirs to analyze (default: src/)")
    ap.add_argument("--repo", default=None, help="repository root")
    ap.add_argument("--build-dir", default="build",
                    help="build dir holding compile_commands.json "
                         "(clang frontend)")
    ap.add_argument("--frontend", choices=("auto", "clang", "lite"),
                    default="auto")
    ap.add_argument("--check", action="append", default=None,
                    metavar="NAME", help="run only this check (repeatable)")
    ap.add_argument("--json", default=None, metavar="OUT",
                    help="write the findings JSON artifact here")
    ap.add_argument("--baseline", default=None,
                    help=f"baseline file (default: {DEFAULT_BASELINE})")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline file")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline to waive current findings")
    args = ap.parse_args(argv)

    if args.check:
        unknown = set(args.check) - set(checks_mod.ALL_CHECKS)
        if unknown:
            print(f"{TOOL}: error: unknown check(s): "
                  f"{', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    repo = repo_root(args.repo or os.getcwd())
    files = collect_files(repo, args.paths or ["src"])
    if not files:
        print(f"{TOOL}: no C++ files to analyze")
        return 0

    # -- frontend selection -------------------------------------------------
    frontend = args.frontend
    if frontend == "auto":
        frontend = "clang" if clang_available() else "lite"
    if frontend == "clang" and not clang_available():
        print(f"{TOOL}: SKIPPED: libclang (python clang.cindex) is not "
              f"available on this machine; install libclang or rerun with "
              f"--frontend lite")
        return 0

    if frontend == "clang":
        import frontend_clang
        project = frontend_clang.load_project(repo, files, args.build_dir)
    else:
        import frontend_lite
        project = frontend_lite.load_project(repo, files)

    ctx = checks_mod.Context(repo)
    all_findings = checks_mod.run_checks(project, ctx, only=args.check)

    # -- inline suppressions ------------------------------------------------
    supp_cache: dict[str, dict] = {}
    kept: list = []
    suppressed = 0
    for f in all_findings:
        if f.file not in supp_cache:
            try:
                with open(os.path.join(repo, f.file), encoding="utf-8",
                          errors="replace") as fh:
                    supp_cache[f.file] = findings_mod.inline_suppressions(
                        fh.read())
            except OSError:
                supp_cache[f.file] = {}
        if findings_mod.is_suppressed(f, supp_cache[f.file]):
            suppressed += 1
        else:
            kept.append(f)

    # -- baseline -----------------------------------------------------------
    baseline_path = os.path.join(
        repo, args.baseline or DEFAULT_BASELINE)
    if args.update_baseline:
        findings_mod.write_baseline(baseline_path, kept)
        print(f"{TOOL}: baseline updated with {len(kept)} finding(s) at "
              f"{os.path.relpath(baseline_path, repo)}")
        kept = []
    elif not args.no_baseline:
        waived = findings_mod.load_baseline(baseline_path)
        before = len(kept)
        kept = [f for f in kept if f.baseline_key() not in waived]
        suppressed += before - len(kept)

    # -- report -------------------------------------------------------------
    for f in kept:
        print(f.text())
    if args.json:
        out_path = args.json if os.path.isabs(args.json) else os.path.join(
            os.getcwd(), args.json)
        with open(out_path, "w", encoding="utf-8") as fh:
            fh.write(findings_mod.to_json(kept, TOOL, frontend))

    note = f" ({suppressed} suppressed/baselined)" if suppressed else ""
    if kept:
        print(f"{TOOL}: {len(kept)} finding(s) over {len(files)} file(s) "
              f"[frontend={frontend}]{note}", file=sys.stderr)
        return 1
    print(f"{TOOL}: clean over {len(files)} file(s) "
          f"[frontend={frontend}]{note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
