"""The six aiacc-analyzer checks, all operating on the frontend IR.

Each check is a function `(project, ctx) -> list[Finding]`. `ctx` carries
repo paths and the parsed tag-layout environment. Checks must be
frontend-agnostic: they see only ir.py shapes and treat type/receiver
fields as spellings.
"""

from __future__ import annotations

import os
import re

from findings import Finding
from ir import DECL, EXPR, IF, LOOP, RETURN, SWITCH, BLOCK, FunctionIR, Stmt
from lexer import match_delim, strip_comments_and_strings


class Context:
    def __init__(self, repo: str):
        self.repo = repo
        self.tag_env = parse_tag_env(repo)


def word_in(word: str, text: str) -> bool:
    return re.search(r"\b" + re.escape(word) + r"\b", text) is not None


def _all_text(st: Stmt) -> str:
    return " ".join(filter(None, (st.text, st.cond, st.init)))


# ==========================================================================
# Check 1: dropped-Status
# ==========================================================================

_TOP_CALL = re.compile(r"^\s*(?:\(void\)\s*)?(?:[\w:]+(?:\.|->))*"
                       r"(?:\w+\s*::\s*)*([A-Za-z_]\w*)\s*[(<]")
_ASSIGN_HEAD = re.compile(r"^\s*(?:[\w:]+(?:\.|->))*([A-Za-z_]\w*)\s*=[^=]")

# How a held Status/Result variable counts as "inspected".
_INSPECT_METHODS = ("ok", "code", "message", "status", "value", "value_or",
                    "has_value", "Update")


def _is_inspection(st: Stmt, var: str) -> bool:
    """Does `st` look at `var` in any way (condition, method call, return,
    passed to another call / macro, moved)?"""
    if st.cond and word_in(var, st.cond):
        return True
    text = _all_text(st)
    if not word_in(var, text):
        return False
    if st.kind == RETURN:
        return True
    # Any mention besides a plain overwrite counts: method access, being
    # an argument (AIACC_CHECK(st.ok(), ...)), std::move, streaming, ...
    overwrite = re.match(r"^\s*" + re.escape(var) + r"\s*=[^=]", st.text or "")
    if overwrite:
        # `v = v.status()` style self-uses still inspect.
        rhs = (st.text or "").split("=", 1)[1]
        return word_in(var, rhs)
    return True


def check_dropped_status(project, ctx) -> list[Finding]:
    out: list[Finding] = []
    for fn in project.functions():
        out.extend(_dropped_in_block(fn.body, fn))
    return out


def _whole_text_call(text: str):
    """Callee name when `text` (an expression/initializer) is exactly one
    call — nothing before it but a receiver chain, nothing after its
    closing paren. Returns '' otherwise."""
    text = (text or "").strip().rstrip(";").rstrip()
    m = _TOP_CALL.match(text)
    if m is None:
        return ""
    op = text.find("(", m.end() - 1)
    if op == -1:
        return ""
    close = match_delim(text, op)
    if close >= len(text) or text[close + 1 :].strip():
        return ""
    return m.group(1)


def _status_call_of(st: Stmt):
    """The Status/Result-returning call a statement's value comes from,
    when the whole statement RHS / decl init IS that call."""
    text = st.init if st.kind == DECL else st.text
    if st.kind == EXPR and text:
        m = _ASSIGN_HEAD.match(text)
        if m is None:
            return None
        text = text.split("=", 1)[1]
    name = _whole_text_call(text)
    if not name:
        return None
    for call in st.calls:
        if call.name == name and call.returns_status:
            return call
    return None


def _dropped_in_block(block: Stmt, fn: FunctionIR) -> list[Finding]:
    out: list[Finding] = []
    # Pass 1: expression-statements that are a bare Status-returning call.
    for st in fn.all_stmts():
        if st.kind != EXPR or not st.text:
            continue
        if _ASSIGN_HEAD.match(st.text):
            continue
        if re.match(r"^\s*\(\s*void\s*\)", st.text):
            continue  # explicit discard — visible intent, compiler-blessed
        name = _whole_text_call(st.text)
        if not name:
            continue
        for call in st.calls:
            if call.name == name and call.returns_status and \
                    call.line == st.line:
                out.append(Finding(
                    check="dropped-status", file=fn.file, line=st.line,
                    symbol=fn.qual_name,
                    message=f"result of Status/Result-returning call "
                            f"'{call.full}' is discarded"))
                break
    # Pass 2: overwritten-before-inspection, per straight-line block.
    def scan(block: Stmt) -> None:
        held: dict[str, int] = {}  # var -> line of the uninspected store
        for st in block.children:
            call = _status_call_of(st)
            target = ""
            if st.kind == DECL and call is not None:
                target = st.decl_name
            elif st.kind == EXPR and call is not None:
                m = _ASSIGN_HEAD.match(st.text or "")
                target = m.group(1) if m else ""
            # Inspections clear held vars.
            for var in list(held):
                if var != target and _is_inspection(st, var):
                    del held[var]
            if target:
                if target in held:
                    out.append(Finding(
                        check="dropped-status", file=fn.file, line=st.line,
                        symbol=fn.qual_name,
                        message=f"'{target}' holds an unchecked Status from "
                                f"line {held[target]} and is overwritten "
                                f"before inspection"))
                held[target] = st.line
            # Control flow: conditions inspect; bodies may inspect — be
            # conservative and clear anything the subtree mentions.
            if st.kind in (IF, LOOP, SWITCH, BLOCK):
                for var in list(held):
                    if any(word_in(var, _all_text(s)) for s in st.walk()):
                        del held[var]
                for ch in st.children:
                    scan(ch)
            # Lambda bodies are separate FunctionIRs yielded by
            # project.functions() — not rescanned here.
        # Held-at-block-end is NOT flagged: destructors of Status are
        # benign; only overwrite loses the error.
    scan(block)
    return out


# ==========================================================================
# Check 2: pool-leak
# ==========================================================================

HELD, CONSUMED, MAYBE = "held", "consumed", "maybe"

_ACQUIRE_NAMES = ("Acquire",)


def _acquire_lambda_names(fn: FunctionIR) -> set[str]:
    """Local lambdas that wrap pool Acquire and hand the buffer out
    (threaded.cpp's `acquire`): calls through them count as acquires."""
    names = set()
    for lam in fn.all_lambdas():
        if not lam.bound_to:
            continue
        has_acquire = any(
            c.name in _ACQUIRE_NAMES for s in lam.all_stmts() for c in s.calls)
        releases = any(
            c.name in ("Release", "ReleasePayload")
            for s in lam.all_stmts() for c in s.calls)
        if has_acquire and not releases:
            names.add(lam.bound_to)
    return names


def check_pool_leak(project, ctx) -> list[Finding]:
    out: list[Finding] = []
    for fn in project.functions():
        if fn.is_lambda:
            continue  # scanned from within their parent (capture-aware)
        acquire_fns = set(_ACQUIRE_NAMES) | _acquire_lambda_names(fn)
        _pool_scan_block(fn.body, {}, fn, acquire_fns, out, top=True)
    return out


def _acquires_in(st: Stmt, acquire_fns: set[str]) -> bool:
    return any(c.name in acquire_fns for c in st.calls)


def _consumes(st: Stmt, var: str) -> bool:
    text = _all_text(st)
    if re.search(r"std\s*::\s*move\s*\(\s*" + re.escape(var) + r"\s*\)", text):
        return True
    if st.kind == RETURN and word_in(var, text):
        return True
    if re.search(r"\bswap\s*\([^()]*\b" + re.escape(var) + r"\b", text):
        return True
    return False


def _release_use(st: Stmt, var: str) -> bool:
    """A second release/move of an already-consumed var."""
    text = _all_text(st)
    if re.search(r"std\s*::\s*move\s*\(\s*" + re.escape(var) + r"\s*\)", text):
        return True
    for c in st.calls:
        if c.name in ("Release", "ReleasePayload") and any(
                word_in(var, a) for a in c.args):
            return True
    return False


def _merge(a: dict, b: dict) -> dict:
    merged = {}
    for var in set(a) | set(b):
        sa, sb = a.get(var), b.get(var)
        merged[var] = sa if sa == sb else MAYBE
        if merged[var] is None:
            del merged[var]
    return merged


def _pool_scan_block(block: Stmt, state: dict, fn: FunctionIR,
                     acquire_fns: set[str], out: list[Finding],
                     top: bool = False, lines: dict | None = None) -> dict:
    """Abstract-interpret one block; returns the post-state. `state` maps
    var -> HELD/CONSUMED/MAYBE for pooled buffers in scope; `lines` maps
    var -> acquire line so leak reports anchor where the buffer was
    taken (and an ANALYZER-OK there can silence them)."""
    if lines is None:
        lines = {}
    declared_here: list[str] = []
    for st in block.children:
        # Lambdas: their bodies run elsewhere; a lambda capturing a
        # tracked var by reference may release it -> demote to MAYBE.
        for lam in st.lambdas:
            for var in state:
                if any(word_in(var, _all_text(s)) for s in lam.all_stmts()):
                    state[var] = MAYBE
            _pool_scan_block(lam.body, {}, fn, acquire_fns, out, lines=lines)

        if st.kind == DECL and _acquires_in(st, acquire_fns):
            state[st.decl_name] = HELD
            lines[st.decl_name] = st.line
            declared_here.append(st.decl_name)
            continue
        if st.kind == EXPR and _acquires_in(st, acquire_fns):
            m = _ASSIGN_HEAD.match(st.text or "")
            if m:
                state[m.group(1)] = HELD
                lines[m.group(1)] = st.line
                continue
        # Consumption / double-release, in evaluation order.
        for var in list(state):
            if state[var] == CONSUMED and _release_use(st, var):
                out.append(Finding(
                    check="pool-leak", file=fn.file, line=st.line,
                    symbol=fn.qual_name,
                    message=f"pooled buffer '{var}' is released/moved again "
                            f"after already being moved out"))
                state[var] = MAYBE
            elif state[var] in (HELD, MAYBE) and _consumes(st, var):
                state[var] = CONSUMED
            elif st.kind in (EXPR, DECL) and re.match(
                    r"^\s*" + re.escape(var) + r"\s*=[^=]", st.text or ""):
                # Overwritten by a non-acquire value: stop tracking (the
                # repo reuses moved-from vectors as plain locals).
                if state[var] == HELD:
                    out.append(Finding(
                        check="pool-leak", file=fn.file, line=st.line,
                        symbol=fn.qual_name,
                        message=f"pooled buffer '{var}' is overwritten while "
                                f"still held — the pooled storage leaks"))
                del state[var]

        if st.kind == RETURN:
            for var, s in state.items():
                if s == HELD and not word_in(var, _all_text(st)):
                    out.append(Finding(
                        check="pool-leak", file=fn.file, line=st.line,
                        symbol=fn.qual_name,
                        message=f"return while pooled buffer '{var}' is "
                                f"still held — release or move it first"))
                    state[var] = MAYBE  # report once per path
        elif st.kind == IF:
            then_state = _pool_scan_block(
                st.children[0], dict(state), fn, acquire_fns, out,
                lines=lines)
            if len(st.children) > 1:
                else_state = _pool_scan_block(
                    st.children[1], dict(state), fn, acquire_fns, out,
                    lines=lines)
            else:
                else_state = dict(state)
            state = _merge(then_state, else_state)
        elif st.kind in (LOOP, SWITCH):
            body_state = _pool_scan_block(
                st.children[0], dict(state), fn, acquire_fns, out,
                lines=lines)
            state = _merge(state, body_state)
        elif st.kind == BLOCK:
            state = _pool_scan_block(st, dict(state), fn, acquire_fns, out,
                                     lines=lines)

    for var in declared_here:
        if state.get(var) == HELD:
            out.append(Finding(
                check="pool-leak", file=fn.file,
                line=lines.get(var, block.line), symbol=fn.qual_name,
                message=f"pooled buffer '{var}' acquired in this scope is "
                        f"never released or moved out on some path"))
        state.pop(var, None)
    return state


# ==========================================================================
# Check 3: blocking-under-lock
# ==========================================================================

BLOCKING_CALLS = frozenset(("Recv", "RecvFor", "Send", "Barrier"))
WAIT_CALLS = frozenset(("Wait", "WaitFor", "WaitUntil"))
_GUARD_TYPE = re.compile(r"\bMutexLock\b")


def _fn_blocks(fn: FunctionIR) -> bool:
    """Does this function directly make a blocking transport call
    (outside its lambdas)?"""
    return any(c.name in BLOCKING_CALLS
               for s in fn.all_stmts() for c in s.calls)


def _blocking_closure(file_fns: list[FunctionIR]) -> set[str]:
    """TU-local fixpoint: names of same-file functions that (transitively)
    make a blocking transport call."""
    blocking = {fn.name for fn in file_fns if not fn.is_lambda
                and _fn_blocks(fn)}
    defined = {fn.name for fn in file_fns if not fn.is_lambda}
    changed = True
    while changed:
        changed = False
        for fn in file_fns:
            if fn.is_lambda or fn.name in blocking:
                continue
            for s in fn.all_stmts():
                for c in s.calls:
                    if c.name in blocking and c.name in defined and not c.recv:
                        blocking.add(fn.name)
                        changed = True
                        break
    return blocking


def check_blocking_under_lock(project, ctx) -> list[Finding]:
    out: list[Finding] = []
    for fir in project.files:
        blocking_fns = _blocking_closure(fir.functions)
        for fn in fir.functions:
            _lock_scan(fn.body, [], fn, blocking_fns, out)
            for lam in fn.all_lambdas():
                _lock_scan(lam.body, [], lam, blocking_fns, out)
    return out


def _first_ident(text: str) -> str:
    m = re.search(r"[A-Za-z_]\w*", text or "")
    return m.group(0) if m else ""


def _lock_scan(block: Stmt, guards: list[str], fn: FunctionIR,
               blocking_fns: set[str], out: list[Finding]) -> None:
    guards = list(guards)  # guards opened here die at block end (RAII)
    for st in block.children:
        # Calls evaluated in this statement (conditions included; lambda
        # bodies excluded — they run elsewhere and are scanned separately).
        for c in st.calls:
            if guards and c.name in BLOCKING_CALLS:
                out.append(Finding(
                    check="blocking-under-lock", file=fn.file, line=c.line,
                    symbol=fn.qual_name,
                    message=f"blocking transport call '{c.full}' while "
                            f"mutex guard '{guards[-1]}' is held"))
            elif guards and c.name in WAIT_CALLS and c.recv:
                lock_arg = _first_ident(c.args[0]) if c.args else ""
                others = [g for g in guards if g != lock_arg]
                if others:
                    out.append(Finding(
                        check="blocking-under-lock", file=fn.file,
                        line=c.line, symbol=fn.qual_name,
                        message=f"'{c.full}' can sleep while unrelated "
                                f"guard '{others[-1]}' stays held"))
            elif guards and c.name in blocking_fns and not c.recv:
                out.append(Finding(
                    check="blocking-under-lock", file=fn.file, line=c.line,
                    symbol=fn.qual_name,
                    message=f"'{c.name}' reaches a blocking transport call "
                            f"while mutex guard '{guards[-1]}' is held"))
            elif c.name == "Unlock" and c.recv in guards:
                guards.remove(c.recv)

        if st.kind == DECL and _GUARD_TYPE.search(st.decl_type or ""):
            guards.append(st.decl_name)
        elif st.kind == BLOCK:
            _lock_scan(st, guards, fn, blocking_fns, out)
        elif st.kind in (IF, LOOP, SWITCH):
            for ch in st.children:
                _lock_scan(ch, guards, fn, blocking_fns, out)


# ==========================================================================
# Check 4: tag-collision
# ==========================================================================

_TAG_CONST = re.compile(r"constexpr\s+int\s+(k\w+)\s*=\s*([^;]+);")


def parse_tag_env(repo: str) -> dict[str, int]:
    path = os.path.join(repo, "src", "collective", "tags.h")
    try:
        text = strip_comments_and_strings(open(path, encoding="utf-8").read())
    except OSError:
        return {}
    env: dict[str, int] = {}
    for m in _TAG_CONST.finditer(text):
        val = _eval_const(m.group(2), env)
        if val is not None:
            env[m.group(1)] = val
    return env


_EXPR_TOKEN = re.compile(r"\s*(\d+|[A-Za-z_]\w*|<<|>>|[()+\-*/%])")


def _eval_const(expr: str, env: dict[str, int]):
    """Evaluate an integer constant expression over +,-,*,/,%,<<,>>,()
    and names in `env`. None when anything is unknown."""
    tokens = []
    i = 0
    expr = expr.strip()
    while i < len(expr):
        m = _EXPR_TOKEN.match(expr, i)
        if m is None:
            return None
        tokens.append(m.group(1))
        i = m.end()

    pos = 0

    def peek():
        return tokens[pos] if pos < len(tokens) else None

    def parse_primary():
        nonlocal pos
        t = peek()
        if t is None:
            return None
        if t == "(":
            pos += 1
            v = parse_shift()
            if peek() != ")":
                return None
            pos += 1
            return v
        if t == "-":
            pos += 1
            v = parse_primary()
            return None if v is None else -v
        pos += 1
        if t.isdigit():
            return int(t)
        return env.get(t)

    def parse_mul():
        nonlocal pos
        v = parse_primary()
        while v is not None and peek() in ("*", "/", "%"):
            op = peek()
            pos += 1
            rhs = parse_primary()
            if rhs is None or (op in ("/", "%") and rhs == 0):
                return None
            v = v * rhs if op == "*" else (v // rhs if op == "/" else v % rhs)
        return v

    def parse_add():
        nonlocal pos
        v = parse_mul()
        while v is not None and peek() in ("+", "-"):
            op = peek()
            pos += 1
            rhs = parse_mul()
            if rhs is None:
                return None
            v = v + rhs if op == "+" else v - rhs
        return v

    def parse_shift():
        nonlocal pos
        v = parse_add()
        while v is not None and peek() in ("<<", ">>"):
            op = peek()
            pos += 1
            rhs = parse_add()
            if rhs is None:
                return None
            v = v << rhs if op == "<<" else v >> rhs
        return v

    v = parse_shift()
    return v if pos == len(tokens) else None


_TAG_ARITH = re.compile(r"\btag_base\s*\+\s*")

_TAGS_REL = os.path.join("src", "collective", "tags.h")

# Lane-layout constants live next to the framing code, not in tags.h:
# the reliable layer's header lanes (frame kind in lane 0) and the
# tracing layer's stamp trailer (magic in its lane 0). Both identify
# themselves by an in-band lane value, so the values must be disjoint.
_RELIABLE_REL = os.path.join("src", "transport", "reliable.cpp")
_STAMP_REL = os.path.join("src", "telemetry", "trace_context.h")

_LANE_CONST = re.compile(r"constexpr\s+(?:std::)?\w+\s+(k\w+)\s*=\s*([^;]+);")


def _parse_lane_consts(repo: str, rel: str):
    """Integer-valued lane constants from `rel`: plain ints, hex magics
    (0xA1ACC), and whole-valued float kind lanes (1.0f). None when the
    file is absent (that layer is not built in this tree)."""
    path = os.path.join(repo, rel)
    try:
        text = strip_comments_and_strings(open(path, encoding="utf-8").read())
    except OSError:
        return None
    env: dict[str, int] = {}
    for m in _LANE_CONST.finditer(text):
        raw = m.group(2).strip().rstrip("fF")
        try:
            val = int(raw, 0)
        except ValueError:
            try:
                fval = float(raw)
            except ValueError:
                continue
            if fval != int(fval):
                continue
            val = int(fval)
        env[m.group(1)] = val
    return env


def _header_lane_audit(repo: str) -> list[Finding]:
    """The tracing stamp is a float-lane trailer whose first lane holds
    kStampMagic; a reliable frame is float lanes whose first lane holds a
    kind (kKindData/kKindAck). If the magic ever equaled a kind value, a
    stamp misread as a header — layers stripped in the wrong order, a
    truncated frame — would silently parse as a valid reliable frame
    instead of being rejected. Cross-check the two layouts whenever the
    tracing layer exists."""
    out: list[Finding] = []
    stamp = _parse_lane_consts(repo, _STAMP_REL)
    if stamp is None:  # no tracing layer in this tree: nothing to collide
        return out
    missing = [n for n in ("kStampLanes", "kStampMagic") if n not in stamp]
    if missing:
        out.append(Finding(
            check="tag-collision", file=_STAMP_REL, line=1,
            symbol="trace_context.h",
            message="could not parse lane constants: " + ", ".join(missing)))
        return out
    magic = stamp["kStampMagic"]
    if magic >= (1 << 24):
        out.append(Finding(
            check="tag-collision", file=_STAMP_REL, line=1,
            symbol="kStampMagic",
            message=f"kStampMagic ({magic:#x}) is not exactly "
                    f"float-representable (>= 2^24) — the magic lane would "
                    f"quantize on the wire and stamps would never verify"))
    reliable = _parse_lane_consts(repo, _RELIABLE_REL)
    if reliable is None:
        return out
    for kind_name in ("kKindData", "kKindAck"):
        kind = reliable.get(kind_name)
        if kind is not None and kind == magic:
            out.append(Finding(
                check="tag-collision", file=_STAMP_REL, line=1,
                symbol="kStampMagic",
                message=f"kStampMagic ({magic}) equals the reliable layer's "
                        f"{kind_name} ({kind}) — a trace-stamp trailer "
                        f"could masquerade as a reliable frame header"))
    return out


def check_tag_collision(project, ctx) -> list[Finding]:
    out: list[Finding] = _header_lane_audit(ctx.repo)
    env = ctx.tag_env
    required = ("kHeartbeatTag", "kSyncTag", "kTagsPerCollective",
                "kChannelTagStride", "kUnitTagBase", "kUnitTagStride")
    missing = [n for n in required if n not in env]
    if missing:
        out.append(Finding(
            check="tag-collision", file=_TAGS_REL, line=1, symbol="tags.h",
            message="could not parse constants: " + ", ".join(missing)))
        return out

    # Layout relations (supersedes check_invariants.py check 2): the
    # namespace carve-up must nest without overlap.
    def relation(cond: bool, msg: str) -> None:
        if not cond:
            out.append(Finding(check="tag-collision", file=_TAGS_REL, line=1,
                               symbol="tags.h",
                               message="tag layout violated: " + msg))

    c = env
    relation(c["kChannelTagStride"] > c["kTagsPerCollective"],
             "kChannelTagStride must exceed kTagsPerCollective or "
             "per-channel collectives share tags")
    relation(c["kUnitTagStride"] > c["kTagsPerCollective"],
             "kUnitTagStride must exceed kTagsPerCollective or unit "
             "collectives share tags")
    relation(c["kSyncTag"] > c["kHeartbeatTag"],
             "sync rounds must not reuse the heartbeat tag")
    relation(c["kUnitTagBase"] > c["kSyncTag"] + c["kTagsPerCollective"],
             "unit channels must start above the sync collective's block")
    if "kUnitRetryTagBase" in c:
        relation(c["kUnitRetryTagBase"] > c["kUnitTagBase"],
                 "unit retry epochs must sit above the unit namespace")
    if "kChannelRetryTagBase" in c and "kUnitRetryTagBase" in c:
        relation(c["kChannelRetryTagBase"] > c["kUnitRetryTagBase"],
                 "channel retry rings must sit above unit retries")
    if "kChannelEpochTagBase" in c and "kChannelRetryTagBase" in c:
        relation(c["kChannelEpochTagBase"] > c["kChannelRetryTagBase"],
                 "channel epoch homes must sit above the retry rings")

    # Symbolic audit of every `tag_base + <expr>` offset: the expression,
    # folded over the tags.h environment, must stay < kTagsPerCollective
    # or the call aliases the next channel's tags.
    limit = env["kTagsPerCollective"]
    seen: set[tuple] = set()
    for fn in project.functions():
        for st in fn.all_stmts():
            # A DECL's text contains its init — scan only the init there,
            # or every offset would be reported twice.
            texts = (st.init, st.cond) if st.kind == "decl" \
                else (st.text, st.cond)
            for text in texts:
                if not text or "tag_base" not in text:
                    continue
                for m in _TAG_ARITH.finditer(text):
                    expr = _addend_after(text, m.end())
                    val = _eval_const(expr, env)
                    if val is None:
                        continue  # runtime-dependent offset: out of scope
                    if val >= limit:
                        key = (fn.file, st.line, expr.strip())
                        if key in seen:
                            continue
                        seen.add(key)
                        out.append(Finding(
                            check="tag-collision", file=fn.file, line=st.line,
                            symbol=fn.qual_name,
                            message=f"tag offset 'tag_base + {expr.strip()}'"
                                    f" = {val} >= kTagsPerCollective "
                                    f"({limit}) — collides with the next "
                                    f"channel's namespace"))
    return out


def _addend_after(text: str, i: int) -> str:
    """The addend expression starting at i: up to a top-level ',', ')',
    ';', comparison, or end."""
    depth = 0
    j = i
    while j < len(text):
        ch = text[j]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            if depth == 0:
                break
            depth -= 1
        elif depth == 0 and ch in ",;<>?:&|=":
            break
        j += 1
    return text[i:j]


# ==========================================================================
# Check 5: codec-record-validation
# ==========================================================================

_DECODE_NAME = re.compile(r"Decode")


def _codec_scope(path: str) -> bool:
    norm = path.replace("\\", "/")
    return norm.startswith("src/compress/") or "codec" in os.path.basename(norm)


def check_codec_record_validation(project, ctx) -> list[Finding]:
    out: list[Finding] = []
    for fir in project.files:
        if not _codec_scope(fir.path):
            continue
        for fn in fir.functions:
            _codec_scan(fn.body, fn, out)
            for lam in fn.all_lambdas():
                _codec_scan(lam.body, lam, out)
    return out


def _codec_scan(block: Stmt, fn: FunctionIR, out: list[Finding]) -> None:
    # pending: status-var -> (line, dst-ident) for decode results whose
    # Status has not been inspected yet.
    pending: dict[str, tuple[int, str]] = {}
    for st in block.children:
        decode_call = None
        for c in st.calls:
            if _DECODE_NAME.search(c.name) and c.returns_status:
                decode_call = c
                break
        # Inspection / violation bookkeeping first (statement may both
        # inspect an old status and produce a new one).
        for var in list(pending):
            line, dst = pending[var]
            if _is_inspection(st, var) or (st.cond and word_in(var, st.cond)):
                del pending[var]
                continue
            if dst and word_in(dst, _all_text(st)) and st is not None and \
                    decode_call is None:
                out.append(Finding(
                    check="codec-record-validation", file=fn.file,
                    line=st.line, symbol=fn.qual_name,
                    message=f"decoded payload '{dst}' is used before the "
                            f"validation Status '{var}' from line {line} "
                            f"is checked"))
                del pending[var]

        if decode_call is not None:
            status_var = ""
            if st.kind == DECL:
                status_var = st.decl_name
            else:
                m = _ASSIGN_HEAD.match(st.text or "")
                status_var = m.group(1) if m else ""
            text = _all_text(st)
            inline_checked = (
                st.kind in (IF, LOOP, RETURN)
                or (st.cond and word_in(decode_call.name, st.cond))
                or re.search(r"\bAIACC_(RETURN_IF_ERROR|CHECK)\b",
                             text or "")
                # The call's Status inspected in the same expression:
                # `Decode(...).ok()`, usually under EXPECT_/ASSERT_TRUE.
                or re.search(r"\)\s*\.\s*(?:ok|code)\s*\(", text or ""))
            if not status_var and not inline_checked:
                out.append(Finding(
                    check="codec-record-validation", file=fn.file,
                    line=st.line, symbol=fn.qual_name,
                    message=f"validation Status of '{decode_call.full}' is "
                            f"dropped — malformed records would be "
                            f"accumulated"))
            elif status_var and not inline_checked:
                dst = _first_ident(decode_call.args[-1]) if decode_call.args \
                    else ""
                pending[status_var] = (st.line, dst)

        # Descend. Loop conditions mentioning the status var count as
        # inspection (handled above via st.cond); clear pending vars the
        # subtree inspects before recursing to avoid double reports.
        if st.kind in (IF, LOOP, SWITCH, BLOCK):
            for ch in st.children:
                _codec_scan(ch, fn, out)
            for var in list(pending):
                if any(word_in(var, _all_text(s)) for s in st.walk()):
                    del pending[var]


# ==========================================================================
# Check 6: priority-ordering
# ==========================================================================

# A declaration whose type is a queue of AllReduceUnit: the shape the old
# FIFO engine used before core/scheduler.h. Template arguments never
# contain ; { } ( ) in the repo's spellings, so the bracket body can be
# matched non-greedily without a real parser.
_UNIT_QUEUE_DECL = re.compile(
    r"\bBlockingQueue\s*<[^;{}()]*\bAllReduceUnit\b[^;{}()]*>\s*[*&]?\s*"
    r"([A-Za-z_]\w*)")

# Dispatch operations that must only happen inside the scheduler: pushing
# a unit into / popping one out of a raw queue.
_QUEUE_OPS = frozenset(("Push", "Pop", "PopFor", "TryPop", "Emplace"))

# The scheduler implementation itself legitimately owns the underlying
# containers; everything else in the engine layer must go through its API.
_SCHEDULER_FILES = frozenset(("scheduler.h", "scheduler.cpp"))


def _priority_scope(path: str) -> bool:
    norm = path.replace("\\", "/")
    base = os.path.basename(norm)
    if base in _SCHEDULER_FILES:
        return False
    return norm.startswith("src/core/") or "priority_ordering" in base


def _recv_tail(recv: str) -> str:
    """Last identifier of a receiver chain: `state.unit_queue` -> unit_queue."""
    m = re.search(r"([A-Za-z_]\w*)\s*$", recv or "")
    return m.group(1) if m else ""


def check_priority_ordering(project, ctx) -> list[Finding]:
    """Ready-set dispatch must go through ReadySetScheduler::Push/PopFor
    (core/scheduler.h). A raw BlockingQueue<AllReduceUnit> — or Push/Pop
    straight on one — resurrects the old FIFO unit_queue: units dispatch
    in arrival order, the priority/aging/preemption machinery and the
    SchedulerStats counters are silently bypassed, and the bench A/B
    measures FIFO twice."""
    out: list[Finding] = []
    for fir in project.files:
        if not _priority_scope(fir.path):
            continue
        # The canonical name always counts: `unit_queue->Push(...)` through
        # a pointer/reference parameter is a bypass even when the queue's
        # declaration lives in another TU.
        queue_vars = {"unit_queue", "unit_queue_"}
        # Raw-text pass for declarations: class members never appear in the
        # function IR, so the IR alone cannot see the queue come into
        # existence.
        try:
            with open(os.path.join(ctx.repo, fir.path),
                      encoding="utf-8") as fh:
                text = strip_comments_and_strings(fh.read())
        except OSError:
            text = ""
        for lineno, line in enumerate(text.splitlines(), 1):
            m = _UNIT_QUEUE_DECL.search(line)
            if m is None:
                continue
            queue_vars.add(m.group(1))
            out.append(Finding(
                check="priority-ordering", file=fir.path, line=lineno,
                symbol=m.group(1),
                message=f"raw BlockingQueue<AllReduceUnit> '{m.group(1)}' "
                        f"bypasses the ready-set scheduler — route dispatch "
                        f"through ReadySetScheduler::Push/PopFor "
                        f"(core/scheduler.h)"))
        # IR pass for operations on a known unit queue.
        for fn in fir.functions:
            for scope_fn in [fn, *fn.all_lambdas()]:
                for st in scope_fn.all_stmts():
                    for c in st.calls:
                        if c.name not in _QUEUE_OPS:
                            continue
                        if _recv_tail(c.recv) not in queue_vars:
                            continue
                        out.append(Finding(
                            check="priority-ordering", file=fir.path,
                            line=c.line, symbol=scope_fn.qual_name,
                            message=f"direct '{c.full}' dispatches a unit "
                                    f"outside the scheduler API — priority "
                                    f"order, aging, and preemption are "
                                    f"bypassed"))
    return out


# ==========================================================================

ALL_CHECKS = {
    "dropped-status": check_dropped_status,
    "pool-leak": check_pool_leak,
    "blocking-under-lock": check_blocking_under_lock,
    "tag-collision": check_tag_collision,
    "codec-record-validation": check_codec_record_validation,
    "priority-ordering": check_priority_ordering,
}


def run_checks(project, ctx, only=None) -> list[Finding]:
    findings: list[Finding] = []
    for name, fn in ALL_CHECKS.items():
        if only and name not in only:
            continue
        findings.extend(fn(project, ctx))
    findings.sort(key=lambda f: (f.file, f.line, f.check, f.message))
    return findings
