#!/usr/bin/env python3
"""Static concurrency-invariant checks for the AIACC-Training repo.

Run as a ctest (label: lint). Three checks, all plain-text so they work
without a compiler or libclang:

  1. raw-primitive ban: `std::mutex` / `std::condition_variable` /
     `std::recursive_mutex` / `std::shared_mutex` / `notify_one(` /
     `notify_all(` may appear only in src/common/sync.h (the annotated
     wrapper layer). Everything else must use common::Mutex / CondVar so
     the lock-order detector and Clang thread-safety analysis see every
     lock in the process.

  2. (moved) the tag-layout cross-check now lives in
     tools/aiacc_analyzer as the `tag-collision` check, which evaluates
     arbitrary constant `tag_base + expr` arithmetic instead of only
     literal offsets.

  3. guarded-member audit: any class/struct in src/ that owns a
     common::Mutex member must annotate its mutable data members with
     GUARDED_BY(...) or carry an explicit `NOLOCK(reason)` comment on the
     member's line. Catches "added a field, forgot the lock" drift that
     GCC builds (no thread-safety analysis) would never see.

  4. legacy-counter ban: the HotPathCounters struct was replaced by the
     telemetry metrics registry (src/telemetry/metrics.h); any reappearance
     of `HotPathCounters` / `GlobalHotPathCounters` in src/, tests/, or
     bench/ is a regression to the pre-registry side-channel. The legacy
     alloc count lives on as the registry counter `hotpath.payload_allocs`
     (a string, which this token scan does not match).

  5. hot-path raw-alloc ban: `new` / `malloc` / `calloc` / `realloc` may
     not appear in src/transport/ or src/compress/. Every payload and codec
     scratch buffer there must come from common::BufferPool so the
     reliability layer and the compression codecs stay allocation-free in
     steady state (the zero-alloc chaos and codec assertions depend on it).
     Deliberate exceptions carry a `NOALLOC(reason)` comment on the line.

Exit code 0 = clean, 1 = violations (printed one per line as
`file:line: message`).
"""

from __future__ import annotations

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SCAN_DIRS = ("src", "tests", "bench", "examples")
CPP_EXTS = (".h", ".hpp", ".cc", ".cpp")
SYNC_HEADER = os.path.join("src", "common", "sync.h")

FORBIDDEN = (
    "std::mutex",
    "std::recursive_mutex",
    "std::shared_mutex",
    "std::condition_variable",
    "notify_one(",
    "notify_all(",
)


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments and string literals, preserving
    line structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "R" and nxt == '"' and not (
                    i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_")):
                # Raw string literal R"delim( ... )delim": no escapes, may
                # contain quotes and //-lookalikes; blank the body but
                # keep line structure.
                m = re.match(r'R"([^()\\ \t\n]{0,16})\(', text[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    end = text.find(close, i + m.end())
                    if end < 0:
                        end = n - len(close)
                    out.append('R"')
                    for ch in text[i + 2:end + len(close) - 1]:
                        out.append(ch if ch == "\n" else " ")
                    out.append('"')
                    i = end + len(close)
                    continue
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def cpp_files(*dirs: str):
    for d in dirs:
        root = os.path.join(REPO, d)
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith(CPP_EXTS):
                    yield os.path.join(dirpath, name)


def relpath(path: str) -> str:
    return os.path.relpath(path, REPO)


# --- check 1: raw-primitive ban -------------------------------------------

def check_raw_primitives(errors: list[str]) -> None:
    for path in cpp_files(*SCAN_DIRS):
        rel = relpath(path)
        if rel == SYNC_HEADER:
            continue
        code = strip_comments(open(path, encoding="utf-8").read())
        for lineno, line in enumerate(code.splitlines(), 1):
            for token in FORBIDDEN:
                if token in line:
                    errors.append(
                        f"{rel}:{lineno}: raw '{token.rstrip('(')}' outside "
                        f"{SYNC_HEADER}; use common::Mutex / common::CondVar"
                    )


# Check 2 (tag-layout cross-check) moved to tools/aiacc_analyzer — the
# `tag-collision` check there folds arbitrary constant expressions over
# the tags.h environment instead of only literal `tag_base + N` offsets.


# --- check 4: legacy hot-path counter ban ---------------------------------

LEGACY_COUNTER = re.compile(r"\b(?:Global)?HotPathCounters\b")


def check_legacy_counters(errors: list[str]) -> None:
    for path in cpp_files("src", "tests", "bench"):
        code = strip_comments(open(path, encoding="utf-8").read())
        for lineno, line in enumerate(code.splitlines(), 1):
            if LEGACY_COUNTER.search(line):
                errors.append(
                    f"{relpath(path)}:{lineno}: HotPathCounters was replaced "
                    f"by the telemetry metrics registry — use "
                    f"MetricsRegistry handles (src/telemetry/metrics.h)"
                )


# --- check 5: transport raw-alloc ban --------------------------------------

RAW_ALLOC = re.compile(r"\bnew\b|\b(?:malloc|calloc|realloc)\s*\(")


# Directories on the steady-state hot path: every payload / scratch buffer
# must come from common::BufferPool. src/compress/ joined the list when the
# codec layer landed — encode/decode scratch is acquired per collective.
RAW_ALLOC_DIRS = (
    os.path.join("src", "transport"),
    os.path.join("src", "compress"),
)


def check_transport_allocs(errors: list[str]) -> None:
    for alloc_dir in RAW_ALLOC_DIRS:
        for path in cpp_files(alloc_dir):
            raw = open(path, encoding="utf-8").read()
            raw_lines = raw.splitlines()
            code = strip_comments(raw)
            for lineno, line in enumerate(code.splitlines(), 1):
                m = RAW_ALLOC.search(line)
                if not m:
                    continue
                raw_line = (
                    raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
                )
                if re.search(r"NOALLOC\([^)]+\)", raw_line):
                    continue
                errors.append(
                    f"{relpath(path)}:{lineno}: raw "
                    f"'{m.group(0).rstrip('(').strip()}' "
                    f"in {alloc_dir}/ — payload buffers must come from "
                    f"common::BufferPool (steady-state zero-alloc invariant); "
                    f"mark deliberate exceptions with NOLOCK-style "
                    f"NOALLOC(reason)"
                )


# --- check 3: guarded-member audit ----------------------------------------

MEMBER_SKIP = re.compile(
    r"^\s*(?:"
    r"static\b|using\b|typedef\b|friend\b|public:|private:|protected:|"
    r"template\b|enum\b|struct\b|class\b|return\b|if\b|for\b|while\b|"
    r"switch\b|case\b|#"
    r")"
)

# A data member is "synchronization-exempt" when its type is itself a
# synchronization primitive, an atomic, or it is const (immutable after
# construction).
EXEMPT_TYPE = re.compile(
    r"^\s*(?:mutable\s+)?(?:"
    r"(?:common::|aiacc::common::)?(?:Mutex|CondVar|MutexLock)\b|"
    r"std::atomic\b|"
    r"const\b|"
    r"(?:[\w:<>,\s*&]+\s)?const\s+[\w:]+\s*(?:\*\s*)?const\b"
    r")"
)

MEMBER_DECL = re.compile(
    r"^\s*(?:mutable\s+)?[\w:<>,\s*&\[\]~]+?[\s*&]"
    r"(\w+)\s*(?:\{[^;]*\}|=[^;]*)?;"
)


def find_mutex_classes(text: str):
    """Yield (class_start_line, member_lines) for every class/struct body
    that declares a common::Mutex member. member_lines holds only the lines
    at the class body's top level (brace depth exactly one inside the class,
    zero unclosed parentheses at line start) — method bodies, nested
    structs, and wrapped parameter lists are excluded. Brace tracking; good
    enough for this codebase's clang-format style."""
    lines = text.splitlines()
    opener = re.compile(r"^\s*(?:class|struct)\s+\w+[^;{]*\{")
    stack = []  # [start_line_idx, depth_at_open, member_lines]
    depth = 0
    parens = 0
    bodies = []
    for idx, line in enumerate(lines):
        if opener.match(line) and line.count("}") == 0 and parens == 0:
            stack.append([idx, depth, []])
        else:
            for s in stack:
                # Top level of this class body only.
                if depth == s[1] + 1 and parens == 0:
                    s[2].append((idx, line))
        depth += line.count("{") - line.count("}")
        parens += line.count("(") - line.count(")")
        while stack and depth <= stack[-1][1]:
            bodies.append(stack.pop())
    for start, _, members in bodies:
        body_text = "\n".join(l for _, l in members)
        if re.search(r"\b(?:common::)?Mutex\s+\w+", body_text):
            yield start, members


def check_guarded_members(errors: list[str]) -> None:
    for path in cpp_files("src"):
        rel = relpath(path)
        if rel == SYNC_HEADER:
            continue
        raw = open(path, encoding="utf-8").read()
        code = strip_comments(raw)
        raw_lines = raw.splitlines()
        if "Mutex" not in code:
            continue
        for _, body in find_mutex_classes(code):
            for idx, line in body:
                if MEMBER_SKIP.match(line):
                    continue
                if "operator" in line:
                    continue  # deleted/declared copy & assignment operators
                if re.search(r"\)\s*(?:const\s*)?"
                             r"(?:noexcept\s*)?(?:override\s*)?"
                             r"(?:=\s*(?:default|delete|0)\s*)?;",
                             line):
                    continue  # function declaration
                m = MEMBER_DECL.match(line)
                if not m:
                    continue
                if EXEMPT_TYPE.match(line):
                    continue
                if "GUARDED_BY" in line or "PT_GUARDED_BY" in line:
                    continue
                raw_line = raw_lines[idx] if idx < len(raw_lines) else ""
                if re.search(r"NOLOCK\([^)]+\)", raw_line):
                    continue
                # Multi-line declarations: GUARDED_BY may sit on the next
                # physical line (clang-format wraps long annotations).
                context = "\n".join(
                    l for _, l in body if abs(_ - idx) <= 1
                )
                if f"{m.group(1)} GUARDED_BY" in context:
                    continue
                errors.append(
                    f"{rel}:{idx + 1}: member '{m.group(1)}' in a "
                    f"Mutex-owning class lacks GUARDED_BY(...) — annotate "
                    f"it or mark the line with NOLOCK(reason)"
                )


def main() -> int:
    errors: list[str] = []
    check_raw_primitives(errors)
    check_guarded_members(errors)
    check_legacy_counters(errors)
    check_transport_allocs(errors)
    if errors:
        for e in errors:
            print(e)
        print(f"\ncheck_invariants: {len(errors)} violation(s)")
        return 1
    print("check_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
