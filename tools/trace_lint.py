#!/usr/bin/env python3
"""Schema lint for AIACC telemetry output (ctest label: lint).

Validates the two JSON artifacts the runtime emits so that a trace written
by either producer (sim::Tracer or telemetry::RuntimeTracer) is guaranteed
to open in chrome://tracing / Perfetto, and a metrics dump is guaranteed to
be machine-consumable:

  trace file (Chrome trace-event format):
    * top level is {"traceEvents": [...]} (an "otherData" object is allowed)
    * every event has ph in {X, i, M, s, f}, an integer tid, and a
      non-empty name
    * pid is 1 (single-process trace), or — in a merged multi-rank trace —
      any pid that has a process_name metadata record (ph=M) naming it
    * complete spans (ph=X) have ts >= 0 and dur >= 0; instants (ph=i)
      have ts >= 0
    * flow events: every start (ph=s) has a well-formed unique id; every
      end (ph=f) carries bp="e", references an id with exactly one start,
      and happens no earlier than its start minus --flow-slack-us; a
      dangling flow end (no start anywhere) is a violation (a dangling
      start is not — the message may still have been in flight when the
      trace was collected)
    * every (pid, tid) referenced by an event has a thread_name metadata
      record (ph=M) naming its lane
    * trace_dropped_events metadata records carry a non-negative integer
      args.count
    * categories, when present, start with a known prefix (comm, engine,
      transport, autotune, elastic, compute, test, stress)

  metrics file (--metrics, RegistrySnapshot::ToJson):
    * top level is {"metrics": [...]}
    * names match <layer>.<metric> with an optional @scope suffix
    * counters have a non-negative integer value
    * histograms: bounds strictly increasing, len(buckets) ==
      len(bounds) + 1, sum(buckets) == count

Usage: trace_lint.py TRACE.json [--metrics METRICS.json]
                     [--flow-slack-us US]
Exit code 0 = clean, 1 = violations (printed one per line).
"""

from __future__ import annotations

import argparse
import json
import re
import sys

KNOWN_CAT_PREFIXES = (
    "comm",
    "engine",
    "transport",
    "autotune",
    "elastic",
    "compute",
    "test",
    "stress",
)

METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+(?:@[\w.\-]+)?$")


def parse_flow_id(raw: object) -> int | None:
    """Chrome flow ids: an int, or a (usually hex) string of one."""
    if isinstance(raw, bool):
        return None
    if isinstance(raw, int):
        return raw
    if isinstance(raw, str):
        try:
            return int(raw, 0)
        except ValueError:
            return None
    return None


def lint_trace(path: str, errors: list[str], flow_slack_us: float) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: unreadable or invalid JSON: {e}")
        return
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        errors.append(f"{path}: top level must be {{\"traceEvents\": [...]}}")
        return
    events = doc["traceEvents"]
    if not isinstance(events, list):
        errors.append(f"{path}: traceEvents must be a list")
        return

    used_lanes: set[tuple[int, int]] = set()
    named_lanes: set[tuple[int, int]] = set()
    used_pids: set[int] = set()
    named_pids: set[int] = set()
    # flow id -> list of (event index, ts) per half
    flow_starts: dict[int, list[tuple[int, float]]] = {}
    flow_ends: dict[int, list[tuple[int, float]]] = {}
    for n, ev in enumerate(events):
        where = f"{path}: event {n}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M", "s", "f"):
            errors.append(
                f"{where}: ph must be X, i, M, s, or f (got {ph!r})"
            )
            continue
        pid = ev.get("pid", 1)
        if not isinstance(pid, int) or isinstance(pid, bool) or pid < 1:
            errors.append(
                f"{where}: pid must be a positive integer (got {pid!r})"
            )
            continue
        tid = ev.get("tid")
        if not isinstance(tid, int) or isinstance(tid, bool):
            errors.append(f"{where}: tid must be an integer (got {tid!r})")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing or empty name")
        if ph == "M":
            if name == "thread_name":
                lane = ev.get("args", {}).get("name")
                if not isinstance(lane, str) or not lane:
                    errors.append(f"{where}: thread_name without args.name")
                named_lanes.add((pid, tid))
            elif name == "process_name":
                label = ev.get("args", {}).get("name")
                if not isinstance(label, str) or not label:
                    errors.append(f"{where}: process_name without args.name")
                named_pids.add(pid)
            elif name == "trace_dropped_events":
                count = ev.get("args", {}).get("count")
                if (
                    not isinstance(count, int)
                    or isinstance(count, bool)
                    or count < 0
                ):
                    errors.append(
                        f"{where}: trace_dropped_events args.count must be "
                        f"a non-negative integer (got {count!r})"
                    )
            continue
        used_lanes.add((pid, tid))
        used_pids.add(pid)
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts must be a number >= 0 (got {ts!r})")
            ts = 0.0
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(
                    f"{where}: dur must be a number >= 0 (got {dur!r})"
                )
        if ph in ("s", "f"):
            flow_id = parse_flow_id(ev.get("id"))
            if flow_id is None:
                errors.append(
                    f"{where}: flow event without a parseable id "
                    f"(got {ev.get('id')!r})"
                )
            elif ph == "s":
                flow_starts.setdefault(flow_id, []).append((n, float(ts)))
            else:
                if ev.get("bp") != "e":
                    errors.append(
                        f"{where}: flow end must carry bp=\"e\" (else "
                        f"viewers bind it to the next slice, not the "
                        f"enclosing one)"
                    )
                flow_ends.setdefault(flow_id, []).append((n, float(ts)))
        cat = ev.get("cat")
        if cat is not None:
            if not isinstance(cat, str) or not cat.startswith(
                KNOWN_CAT_PREFIXES
            ):
                errors.append(f"{where}: unknown category {cat!r}")

    for pid, tid in sorted(used_lanes - named_lanes):
        errors.append(
            f"{path}: pid {pid} tid {tid} has events but no thread_name "
            f"metadata record"
        )
    multi_process = used_pids != {1} and bool(used_pids)
    if multi_process:
        for pid in sorted(used_pids - named_pids):
            errors.append(
                f"{path}: pid {pid} has events but no process_name "
                f"metadata record (required in a merged multi-rank trace)"
            )

    # Flow graph: ids bind exactly one start to its ends; ends never dangle
    # and never precede their start by more than the allowed slack (the
    # skew-correction residual in a merged trace).
    for flow_id, starts in sorted(flow_starts.items()):
        if len(starts) > 1:
            positions = ", ".join(str(i) for i, _ in starts)
            errors.append(
                f"{path}: flow id {flow_id:#x} has {len(starts)} start "
                f"events (events {positions}); bind ids must be unique"
            )
    for flow_id, ends in sorted(flow_ends.items()):
        starts = flow_starts.get(flow_id)
        if not starts:
            positions = ", ".join(str(i) for i, _ in ends)
            errors.append(
                f"{path}: flow id {flow_id:#x} has {len(ends)} dangling "
                f"end(s) with no start (events {positions})"
            )
            continue
        start_ts = min(ts for _, ts in starts)
        for n, end_ts in ends:
            if end_ts < start_ts - flow_slack_us:
                errors.append(
                    f"{path}: event {n}: flow id {flow_id:#x} ends "
                    f"{start_ts - end_ts:.1f}us before its start "
                    f"(allowed slack {flow_slack_us:.1f}us)"
                )


def lint_metrics(path: str, errors: list[str]) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: unreadable or invalid JSON: {e}")
        return
    if not isinstance(doc, dict) or "metrics" not in doc:
        errors.append(f"{path}: top level must be {{\"metrics\": [...]}}")
        return
    for n, m in enumerate(doc["metrics"]):
        where = f"{path}: metric {n}"
        if not isinstance(m, dict):
            errors.append(f"{where}: not an object")
            continue
        name = m.get("name", "")
        if not isinstance(name, str) or not METRIC_NAME.match(name):
            errors.append(
                f"{where}: name {name!r} does not match "
                f"<layer>.<metric>[@scope]"
            )
        mtype = m.get("type")
        if mtype == "counter":
            v = m.get("value")
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                errors.append(
                    f"{where} ({name}): counter value must be a "
                    f"non-negative integer (got {v!r})"
                )
        elif mtype == "gauge":
            if not isinstance(m.get("value"), (int, float)):
                errors.append(f"{where} ({name}): gauge value must be a number")
        elif mtype == "histogram":
            bounds = m.get("bounds", [])
            buckets = m.get("buckets", [])
            count = m.get("count")
            if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
                errors.append(
                    f"{where} ({name}): bounds must be strictly increasing"
                )
            if len(buckets) != len(bounds) + 1:
                errors.append(
                    f"{where} ({name}): expected {len(bounds) + 1} buckets, "
                    f"got {len(buckets)}"
                )
            if count != sum(buckets):
                errors.append(
                    f"{where} ({name}): bucket sum {sum(buckets)} != "
                    f"count {count!r}"
                )
        else:
            errors.append(f"{where} ({name}): unknown type {mtype!r}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--metrics", help="RegistrySnapshot::ToJson metrics file"
    )
    parser.add_argument(
        "--flow-slack-us",
        type=float,
        default=2000.0,
        help="how much earlier than its start a flow end may appear "
        "(microseconds; absorbs the skew-correction residual of a merged "
        "multi-rank trace)",
    )
    args = parser.parse_args()

    errors: list[str] = []
    lint_trace(args.trace, errors, args.flow_slack_us)
    if args.metrics:
        lint_metrics(args.metrics, errors)
    if errors:
        for e in errors:
            print(e)
        print(f"\ntrace_lint: {len(errors)} violation(s)")
        return 1
    print("trace_lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
