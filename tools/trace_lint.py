#!/usr/bin/env python3
"""Schema lint for AIACC telemetry output (ctest label: lint).

Validates the two JSON artifacts the runtime emits so that a trace written
by either producer (sim::Tracer or telemetry::RuntimeTracer) is guaranteed
to open in chrome://tracing / Perfetto, and a metrics dump is guaranteed to
be machine-consumable:

  trace file (Chrome trace-event format):
    * top level is {"traceEvents": [...]}
    * every event has ph in {X, i, M}, pid == 1, an integer tid, and a
      non-empty name
    * complete spans (ph=X) have ts >= 0 and dur >= 0; instants (ph=i)
      have ts >= 0
    * every tid referenced by a span/instant has a thread_name metadata
      record (ph=M) naming its lane
    * categories, when present, start with a known prefix (comm, engine,
      transport, autotune, elastic, compute, test, stress)

  metrics file (--metrics, RegistrySnapshot::ToJson):
    * top level is {"metrics": [...]}
    * names match <layer>.<metric> with an optional @scope suffix
    * counters have a non-negative integer value
    * histograms: bounds strictly increasing, len(buckets) ==
      len(bounds) + 1, sum(buckets) == count

Usage: trace_lint.py TRACE.json [--metrics METRICS.json]
Exit code 0 = clean, 1 = violations (printed one per line).
"""

from __future__ import annotations

import argparse
import json
import re
import sys

KNOWN_CAT_PREFIXES = (
    "comm",
    "engine",
    "transport",
    "autotune",
    "elastic",
    "compute",
    "test",
    "stress",
)

METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+(?:@[\w.\-]+)?$")


def lint_trace(path: str, errors: list[str]) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: unreadable or invalid JSON: {e}")
        return
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        errors.append(f"{path}: top level must be {{\"traceEvents\": [...]}}")
        return
    events = doc["traceEvents"]
    if not isinstance(events, list):
        errors.append(f"{path}: traceEvents must be a list")
        return

    used_tids: set[int] = set()
    named_tids: set[int] = set()
    for n, ev in enumerate(events):
        where = f"{path}: event {n}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            errors.append(f"{where}: ph must be X, i, or M (got {ph!r})")
            continue
        if ev.get("pid") != 1:
            errors.append(f"{where}: pid must be 1 (got {ev.get('pid')!r})")
        tid = ev.get("tid")
        if not isinstance(tid, int) or isinstance(tid, bool):
            errors.append(f"{where}: tid must be an integer (got {tid!r})")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing or empty name")
        if ph == "M":
            if name == "thread_name":
                lane = ev.get("args", {}).get("name")
                if not isinstance(lane, str) or not lane:
                    errors.append(f"{where}: thread_name without args.name")
                named_tids.add(tid)
            continue
        used_tids.add(tid)
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts must be a number >= 0 (got {ts!r})")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(
                    f"{where}: dur must be a number >= 0 (got {dur!r})"
                )
        cat = ev.get("cat")
        if cat is not None:
            if not isinstance(cat, str) or not cat.startswith(
                KNOWN_CAT_PREFIXES
            ):
                errors.append(f"{where}: unknown category {cat!r}")

    for tid in sorted(used_tids - named_tids):
        errors.append(
            f"{path}: tid {tid} has events but no thread_name metadata record"
        )


def lint_metrics(path: str, errors: list[str]) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"{path}: unreadable or invalid JSON: {e}")
        return
    if not isinstance(doc, dict) or "metrics" not in doc:
        errors.append(f"{path}: top level must be {{\"metrics\": [...]}}")
        return
    for n, m in enumerate(doc["metrics"]):
        where = f"{path}: metric {n}"
        if not isinstance(m, dict):
            errors.append(f"{where}: not an object")
            continue
        name = m.get("name", "")
        if not isinstance(name, str) or not METRIC_NAME.match(name):
            errors.append(
                f"{where}: name {name!r} does not match "
                f"<layer>.<metric>[@scope]"
            )
        mtype = m.get("type")
        if mtype == "counter":
            v = m.get("value")
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                errors.append(
                    f"{where} ({name}): counter value must be a "
                    f"non-negative integer (got {v!r})"
                )
        elif mtype == "gauge":
            if not isinstance(m.get("value"), (int, float)):
                errors.append(f"{where} ({name}): gauge value must be a number")
        elif mtype == "histogram":
            bounds = m.get("bounds", [])
            buckets = m.get("buckets", [])
            count = m.get("count")
            if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
                errors.append(
                    f"{where} ({name}): bounds must be strictly increasing"
                )
            if len(buckets) != len(bounds) + 1:
                errors.append(
                    f"{where} ({name}): expected {len(bounds) + 1} buckets, "
                    f"got {len(buckets)}"
                )
            if count != sum(buckets):
                errors.append(
                    f"{where} ({name}): bucket sum {sum(buckets)} != "
                    f"count {count!r}"
                )
        else:
            errors.append(f"{where} ({name}): unknown type {mtype!r}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--metrics", help="RegistrySnapshot::ToJson metrics file"
    )
    args = parser.parse_args()

    errors: list[str] = []
    lint_trace(args.trace, errors)
    if args.metrics:
        lint_metrics(args.metrics, errors)
    if errors:
        for e in errors:
            print(e)
        print(f"\ntrace_lint: {len(errors)} violation(s)")
        return 1
    print("trace_lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
