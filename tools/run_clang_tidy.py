#!/usr/bin/env python3
"""Run clang-tidy (config: .clang-tidy at the repo root) over the library
sources using the build tree's compile_commands.json. Registered as the
`clang_tidy` ctest when a clang-tidy binary exists; CI's lint job is the
canonical runner.

`--fix-notes OUT.json` additionally writes every diagnostic in the
findings-JSON format shared with tools/aiacc_analyzer (version 1,
`findings: [{check, file, line, message, symbol}]`), so downstream
tooling can merge both linters' output into one burn-down list.

Exit 0 when every file is clean, 1 otherwise (diagnostics pass through).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# path:line:col: severity: message [check-name]
_DIAG_RE = re.compile(
    r"^(?P<file>[^\s:][^:]*):(?P<line>\d+):\d+:\s+"
    r"(?:warning|error):\s+(?P<msg>.*?)\s+\[(?P<check>[\w.,-]+)\]\s*$")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--build-dir", default=os.path.join(REPO, "build"))
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--fix-notes", metavar="OUT.json",
                        help="write diagnostics as aiacc-analyzer-format "
                             "findings JSON")
    args = parser.parse_args()

    compdb = os.path.join(args.build_dir, "compile_commands.json")
    if not os.path.exists(compdb):
        print(f"error: {compdb} not found — configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON first", file=sys.stderr)
        return 1

    with open(compdb, encoding="utf-8") as f:
        entries = json.load(f)
    src_prefix = os.path.join(REPO, "src") + os.sep
    files = sorted({e["file"] for e in entries
                    if e["file"].startswith(src_prefix)})
    if not files:
        print("error: no src/ entries in compile_commands.json",
              file=sys.stderr)
        return 1

    print(f"clang-tidy: {len(files)} files, {args.jobs} jobs")
    failures = 0
    notes: list[dict] = []
    running: list[tuple[str, subprocess.Popen]] = []

    def collect_notes(out: str) -> None:
        for line in out.splitlines():
            m = _DIAG_RE.match(line)
            if m:
                rel = os.path.relpath(m.group("file"), REPO)
                notes.append({"check": m.group("check"), "file": rel,
                              "line": int(m.group("line")),
                              "message": m.group("msg"), "symbol": ""})

    def drain(block: bool) -> None:
        nonlocal failures
        still = []
        for name, proc in running:
            if block or proc.poll() is not None:
                out, _ = proc.communicate()
                if proc.returncode != 0:
                    failures += 1
                    sys.stdout.write(out)
                    print(f"FAILED: {name}")
                    collect_notes(out)
            else:
                still.append((name, proc))
        running[:] = still

    for path in files:
        while len(running) >= args.jobs:
            drain(block=False)
            if len(running) >= args.jobs:
                time.sleep(0.05)
        running.append((os.path.relpath(path, REPO), subprocess.Popen(
            [args.clang_tidy, "-p", args.build_dir, "--quiet", path],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)))
    drain(block=True)

    if args.fix_notes:
        with open(args.fix_notes, "w", encoding="utf-8") as f:
            json.dump({"version": 1, "tool": "clang-tidy",
                       "frontend": "clang-tidy", "findings": notes},
                      f, indent=2)
            f.write("\n")
        print(f"clang-tidy: {len(notes)} note(s) -> {args.fix_notes}")

    if failures:
        print(f"clang-tidy: {failures} file(s) with diagnostics")
        return 1
    print("clang-tidy: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
