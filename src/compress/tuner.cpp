#include "compress/tuner.h"

#include <cmath>

#include "common/logging.h"

namespace aiacc::compress {

PerTensorCodecTuner::PerTensorCodecTuner() : PerTensorCodecTuner(Options{}) {}

PerTensorCodecTuner::PerTensorCodecTuner(Options options)
    : options_(std::move(options)) {
  if (options_.candidates.empty()) {
    options_.candidates = {
        CodecSpec{CodecKind::kNone},
        CodecSpec{CodecKind::kFp16},
        CodecSpec{CodecKind::kOneBit},
        CodecSpec{CodecKind::kTopK, 0.01f},
    };
  }
}

std::size_t PerTensorCodecTuner::RegisterTensor(const std::string& name) {
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    if (arms_[i].name == name) return i;
  }
  TensorState state;
  state.name = name;
  state.arms.resize(options_.candidates.size());
  arms_.push_back(std::move(state));
  return arms_.size() - 1;
}

CodecSpec PerTensorCodecTuner::Choose(std::size_t id) {
  AIACC_CHECK(id < arms_.size());
  TensorState& state = arms_[id];
  // Play every arm once before trusting any mean.
  for (std::size_t a = 0; a < state.arms.size(); ++a) {
    if (state.arms[a].plays == 0) {
      state.last_choice = a;
      return options_.candidates[a];
    }
  }
  const double log_total =
      std::log(static_cast<double>(state.total_plays) + 1.0);
  std::size_t best = 0;
  double best_score = -1e300;
  for (std::size_t a = 0; a < state.arms.size(); ++a) {
    const Arm& arm = state.arms[a];
    const double mean =
        arm.total_reward / static_cast<double>(arm.plays);
    const double bonus = options_.explore *
                         std::sqrt(log_total / static_cast<double>(arm.plays));
    const double score = mean + bonus;
    if (score > best_score) {
      best_score = score;
      best = a;
    }
  }
  state.last_choice = best;
  return options_.candidates[best];
}

void PerTensorCodecTuner::Observe(std::size_t id, std::size_t wire_floats,
                                  std::size_t raw_floats,
                                  double relative_error) {
  AIACC_CHECK(id < arms_.size());
  TensorState& state = arms_[id];
  const double saved =
      raw_floats == 0
          ? 0.0
          : 1.0 - static_cast<double>(wire_floats) /
                      static_cast<double>(raw_floats);
  const double reward = saved - options_.error_weight * relative_error;
  Arm& arm = state.arms[state.last_choice];
  ++arm.plays;
  arm.total_reward += reward;
  ++state.total_plays;
}

CodecSpec PerTensorCodecTuner::Best(std::size_t id) const {
  AIACC_CHECK(id < arms_.size());
  const TensorState& state = arms_[id];
  std::size_t best = 0;
  double best_mean = -1e300;
  for (std::size_t a = 0; a < state.arms.size(); ++a) {
    const Arm& arm = state.arms[a];
    if (arm.plays == 0) continue;
    const double mean = arm.total_reward / static_cast<double>(arm.plays);
    if (mean > best_mean) {
      best_mean = mean;
      best = a;
    }
  }
  return options_.candidates[best];
}

const std::string& PerTensorCodecTuner::NameOf(std::size_t id) const {
  AIACC_CHECK(id < arms_.size());
  return arms_[id].name;
}

std::uint64_t PerTensorCodecTuner::Plays(std::size_t id) const {
  AIACC_CHECK(id < arms_.size());
  return arms_[id].total_plays;
}

}  // namespace aiacc::compress
