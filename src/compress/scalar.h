// Scalar 16-bit float conversions for the gradient codec layer: IEEE 754
// binary16 ("fp16") and bfloat16 ("bf16"). Both round to nearest even and
// handle every edge case without undefined behaviour: subnormals round
// correctly, overflow saturates to infinity, and NaNs keep their sign and
// gain a quiet bit so a payload that truncates to zero can never turn into
// an infinity. The fp16 implementation is the canonical one for the whole
// repo — core/compression.h forwards to it so the legacy Perseus fp16 wire
// path and the codec layer quantize identically.
#pragma once

#include <cstdint>

namespace aiacc::compress {

/// float -> IEEE 754 binary16 (round to nearest even; overflow -> inf).
std::uint16_t FloatToHalf(float value) noexcept;

/// IEEE 754 binary16 -> float (exact).
float HalfToFloat(std::uint16_t half) noexcept;

/// float -> bfloat16 (round to nearest even on the dropped 16 mantissa
/// bits; overflow -> inf; NaN keeps sign + quiet bit).
std::uint16_t FloatToBf16(float value) noexcept;

/// bfloat16 -> float (exact: bf16 is the top half of a float).
float Bf16ToFloat(std::uint16_t b) noexcept;

/// Largest relative error binary16 introduces for normal values (2^-11).
inline constexpr float kHalfRelativeError = 1.0f / 2048.0f;
/// Largest relative error bfloat16 introduces for normal values (2^-8).
inline constexpr float kBf16RelativeError = 1.0f / 256.0f;

}  // namespace aiacc::compress
