#include "compress/scalar.h"

#include <bit>

namespace aiacc::compress {

std::uint16_t FloatToHalf(float value) noexcept {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t exponent = (bits >> 23) & 0xFFu;
  std::uint32_t mantissa = bits & 0x7FFFFFu;

  if (exponent == 0xFF) {
    // Inf / NaN: preserve NaN-ness with a quiet-bit payload.
    return static_cast<std::uint16_t>(
        sign | 0x7C00u | (mantissa != 0 ? 0x200u : 0u));
  }
  // Re-bias 127 -> 15.
  const int new_exp = static_cast<int>(exponent) - 127 + 15;
  if (new_exp >= 0x1F) {
    return static_cast<std::uint16_t>(sign | 0x7C00u);  // overflow -> inf
  }
  if (new_exp <= 0) {
    // Subnormal half (or underflow to zero). Shift the mantissa (with the
    // implicit leading 1) right and round to nearest even.
    if (new_exp < -10) return static_cast<std::uint16_t>(sign);  // -> +-0
    mantissa |= 0x800000u;  // make the leading 1 explicit
    const int shift = 14 - new_exp;  // 14..24
    std::uint32_t half_mant = mantissa >> shift;
    const std::uint32_t remainder = mantissa & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (remainder > halfway ||
        (remainder == halfway && (half_mant & 1u) != 0)) {
      ++half_mant;  // round to nearest even; may promote to normal (correct)
    }
    return static_cast<std::uint16_t>(sign | half_mant);
  }
  // Normal half: round mantissa 23 -> 10 bits, nearest even.
  std::uint32_t half = sign | (static_cast<std::uint32_t>(new_exp) << 10) |
                       (mantissa >> 13);
  const std::uint32_t round_bit = mantissa & 0x1000u;
  const std::uint32_t sticky = mantissa & 0x0FFFu;
  if (round_bit && (sticky || (half & 1u))) {
    ++half;  // may carry into the exponent; that is correct (e.g. inf)
  }
  return static_cast<std::uint16_t>(half);
}

float HalfToFloat(std::uint16_t half) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half) & 0x8000u)
                             << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1Fu;
  std::uint32_t mantissa = half & 0x3FFu;

  std::uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // +-0
    } else {
      // Subnormal half -> normalized float.
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | ((127 - 15 - e) << 23) | ((m & 0x3FFu) << 13);
    }
  } else if (exponent == 0x1F) {
    bits = sign | 0x7F800000u | (mantissa << 13);  // inf / NaN
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(bits);
}

std::uint16_t FloatToBf16(float value) noexcept {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  if ((bits & 0x7F800000u) == 0x7F800000u && (bits & 0x7FFFFFu) != 0) {
    // NaN: keep the sign and the top payload bits, and force the quiet bit
    // so a payload living only in the dropped low 16 bits cannot truncate
    // into an infinity pattern.
    return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
  }
  // Round to nearest even on the dropped low 16 bits. The carry may
  // propagate mantissa -> exponent; that is exactly IEEE behaviour (values
  // above the largest finite bf16 round to inf, subnormals round within
  // the subnormal range or up into the smallest normal).
  const std::uint32_t round_bit = bits & 0x8000u;
  const std::uint32_t sticky = bits & 0x7FFFu;
  std::uint32_t upper = bits >> 16;
  if (round_bit && (sticky || (upper & 1u))) ++upper;
  return static_cast<std::uint16_t>(upper);
}

float Bf16ToFloat(std::uint16_t b) noexcept {
  return std::bit_cast<float>(static_cast<std::uint32_t>(b) << 16);
}

}  // namespace aiacc::compress
