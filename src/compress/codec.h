// Gradient compression codecs for the collective wire path.
//
// Two codec families with different fusion points:
//
//  * Cast codecs (fp16 / bf16) are *dense* and element-wise, so they fuse
//    directly into the sliced ring pipeline: each hop ships a slice as two
//    16-bit lanes packed per 32-bit float word (`CastWireFloats(n)` words on
//    the wire), the receiver decodes into pooled scratch, reduces, and
//    re-encodes before forwarding. Halved bytes per hop, same message count.
//
//  * Sparse codecs (1-bit sign quantization, top-k) change the wire format
//    shape (variable length, header + payload), so they take a dedicated
//    all-gather style collective (`collective::CompressedAllReduce`): every
//    rank encodes its compensated gradient once, the n compressed records
//    circulate around the ring, and every rank decode-accumulates them in
//    rank order 0..n-1 so replicas stay bit-identical. Both sparse codecs
//    carry per-tensor error-feedback residuals (Dryden et al. 2016): the
//    quantization error of this step is added back into the next step's
//    gradient, which is what makes 1-bit/top-k SGD converge.
//
// Wire formats (all lanes are 32-bit float words; 16-bit values are packed
// two per word via bit_cast, never type-punned):
//
//   fp16/bf16:  ceil(n/2) words, element 2i in the low 16 bits of word i,
//               element 2i+1 in the high 16 bits. No header: the decoded
//               length is supplied by the caller (slice sizes are part of
//               the collective's deterministic schedule).
//   1-bit:      [pos_mean, neg_mean] + ceil(n/32) sign-mask words.
//               Element i decodes to pos_mean when bit (i%32) of mask word
//               i/32 is set, neg_mean otherwise. The means are the average
//               positive / non-positive magnitudes of the encoded tensor.
//   top-k:      [bit_cast<float>(uint32 k)] + k (bit_cast index, value)
//               pairs in ascending index order. k = clamp(round(ratio*n),
//               1, n); ties at the k-th largest magnitude are broken by
//               index order, so the selection is deterministic.
//
// All scratch is acquired from a common::BufferPool — the codec layer
// preserves the repo's zero-steady-state-allocation guarantee (the raw-alloc
// lint ban in tools/check_invariants.py covers this directory).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/buffer_pool.h"
#include "common/status.h"

namespace aiacc::compress {

enum class CodecKind : std::uint8_t {
  kNone = 0,   // raw fp32, the pre-codec wire format
  kFp16 = 1,   // IEEE binary16 cast, fused per ring hop
  kBf16 = 2,   // bfloat16 cast, fused per ring hop
  kOneBit = 3, // 1-bit sign quantization + error feedback, sparse collective
  kTopK = 4,   // top-k magnitude sparsification + error feedback
};

/// Per-tensor codec choice. `topk_ratio` is the fraction of elements kept by
/// kTopK (ignored by the other kinds, kept at its default so equality and
/// serialization stay well-defined).
struct CodecSpec {
  CodecKind kind = CodecKind::kNone;
  float topk_ratio = 0.01f;

  friend bool operator==(const CodecSpec& a, const CodecSpec& b) noexcept {
    return a.kind == b.kind &&
           (a.kind != CodecKind::kTopK || a.topk_ratio == b.topk_ratio);
  }
  friend bool operator!=(const CodecSpec& a, const CodecSpec& b) noexcept {
    return !(a == b);
  }
};

[[nodiscard]] std::string_view ToString(CodecKind kind) noexcept;
[[nodiscard]] std::string ToString(const CodecSpec& spec);

/// Cast codecs ship dense 16-bit lanes through the regular ring phases.
[[nodiscard]] constexpr bool IsCast(CodecKind kind) noexcept {
  return kind == CodecKind::kFp16 || kind == CodecKind::kBf16;
}

/// Sparse codecs need the CompressedAllReduce collective (variable-length
/// records, decode-accumulate semantics).
[[nodiscard]] constexpr bool IsSparse(CodecKind kind) noexcept {
  return kind == CodecKind::kOneBit || kind == CodecKind::kTopK;
}

/// Sparse codecs are lossy in a way that requires error-feedback residuals
/// to converge; cast codecs round once per hop and do not accumulate error.
[[nodiscard]] constexpr bool UsesErrorFeedback(CodecKind kind) noexcept {
  return IsSparse(kind);
}

/// Wire words for a cast-encoded span of `n` floats: two 16-bit lanes per
/// 32-bit word.
[[nodiscard]] constexpr std::size_t CastWireFloats(std::size_t n) noexcept {
  return (n + 1) / 2;
}

/// Number of kept elements for a top-k encode of `n` floats.
[[nodiscard]] std::size_t TopKCount(std::size_t n, float ratio) noexcept;

/// Upper bound on the wire words any encode of `n` floats with `spec` can
/// produce — callers size pooled scratch with this.
[[nodiscard]] std::size_t MaxWireFloats(const CodecSpec& spec,
                                        std::size_t n) noexcept;

/// Encode `src` as packed 16-bit lanes into `dst` (size >=
/// CastWireFloats(src.size())). `kind` must be a cast codec.
void CastEncode(CodecKind kind, std::span<const float> src,
                std::span<float> dst) noexcept;

/// Decode `CastWireFloats(count)` packed words from `src` into the first
/// `count` elements of `dst`. `kind` must be a cast codec.
void CastDecode(CodecKind kind, std::span<const float> src,
                std::span<float> dst, std::size_t count) noexcept;

/// Encode `src` with a sparse codec into `wire` (sized via MaxWireFloats).
/// Returns the number of wire words actually written. `pool` provides
/// scratch for the top-k magnitude partition (returned before exit).
[[nodiscard]] std::size_t SparseEncode(const CodecSpec& spec,
                                       std::span<const float> src,
                                       std::span<float> wire,
                                       common::BufferPool& pool);

/// Decode a sparse record and *add* its contribution into `dst` (which the
/// caller zeroed or pre-seeded). Validates the record against dst.size();
/// malformed records (bad length, out-of-range index) return an error
/// without touching any out-of-range memory.
[[nodiscard]] Status SparseDecodeAccumulate(const CodecSpec& spec,
                                            std::span<const float> wire,
                                            std::span<float> dst) noexcept;

/// Telemetry: record raw vs wire footprint of one encode so benches can
/// report the end-to-end compression ratio (`compress.raw_floats` /
/// `compress.wire_floats` counters).
void RecordWireFootprint(std::size_t raw_floats,
                         std::size_t wire_floats) noexcept;

}  // namespace aiacc::compress
