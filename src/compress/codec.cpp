#include "compress/codec.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "compress/scalar.h"
#include "telemetry/metrics.h"

namespace aiacc::compress {
namespace {

/// Cached registry handles: the hot path pays one static-init guard check,
/// not a registry lookup per encode.
telemetry::Counter& RawFloatsCounter() {
  static telemetry::Counter& counter =
      telemetry::MetricsRegistry::Global().GetCounter("compress.raw_floats");
  return counter;
}

telemetry::Counter& WireFloatsCounter() {
  static telemetry::Counter& counter =
      telemetry::MetricsRegistry::Global().GetCounter("compress.wire_floats");
  return counter;
}

/// Two 16-bit lanes packed into one 32-bit wire word. Always assembled /
/// disassembled through uint32 + bit_cast — never type-punned — so the
/// packing is identical on every platform and survives any float-preserving
/// transport.
constexpr std::uint32_t PackLanes(std::uint16_t lo, std::uint16_t hi) {
  return static_cast<std::uint32_t>(lo) |
         (static_cast<std::uint32_t>(hi) << 16);
}

std::uint16_t EncodeScalar(CodecKind kind, float v) noexcept {
  return kind == CodecKind::kFp16 ? FloatToHalf(v) : FloatToBf16(v);
}

float DecodeScalar(CodecKind kind, std::uint16_t v) noexcept {
  return kind == CodecKind::kFp16 ? HalfToFloat(v) : Bf16ToFloat(v);
}

/// 1-bit wire layout: [pos_mean, neg_mean, mask words...].
constexpr std::size_t kOneBitHeader = 2;

constexpr std::size_t OneBitMaskWords(std::size_t n) noexcept {
  return (n + 31) / 32;
}

std::size_t OneBitEncode(std::span<const float> src, std::span<float> wire) {
  const std::size_t n = src.size();
  const std::size_t words = kOneBitHeader + OneBitMaskWords(n);
  double pos_sum = 0.0, neg_sum = 0.0;
  std::size_t pos_count = 0;
  for (std::size_t w = 0; w < OneBitMaskWords(n); ++w) {
    std::uint32_t mask = 0;
    const std::size_t base = w * 32;
    const std::size_t limit = std::min<std::size_t>(32, n - base);
    for (std::size_t b = 0; b < limit; ++b) {
      const float v = src[base + b];
      if (v > 0.0f) {
        mask |= (1u << b);
        pos_sum += v;
        ++pos_count;
      } else {
        neg_sum += v;
      }
    }
    wire[kOneBitHeader + w] = std::bit_cast<float>(mask);
  }
  const std::size_t neg_count = n - pos_count;
  wire[0] = pos_count > 0
                ? static_cast<float>(pos_sum / static_cast<double>(pos_count))
                : 0.0f;
  wire[1] = neg_count > 0
                ? static_cast<float>(neg_sum / static_cast<double>(neg_count))
                : 0.0f;
  return words;
}

Status OneBitDecodeAccumulate(std::span<const float> wire,
                              std::span<float> dst) noexcept {
  const std::size_t n = dst.size();
  if (wire.size() != kOneBitHeader + OneBitMaskWords(n)) {
    return InvalidArgument("1-bit record length mismatch");
  }
  const float pos_mean = wire[0];
  const float neg_mean = wire[1];
  for (std::size_t w = 0; w < OneBitMaskWords(n); ++w) {
    const auto mask = std::bit_cast<std::uint32_t>(wire[kOneBitHeader + w]);
    const std::size_t base = w * 32;
    const std::size_t limit = std::min<std::size_t>(32, n - base);
    for (std::size_t b = 0; b < limit; ++b) {
      dst[base + b] += (mask & (1u << b)) ? pos_mean : neg_mean;
    }
  }
  return Status::Ok();
}

/// top-k wire layout: [bit_cast count, (bit_cast index, value) * k].
std::size_t TopKEncode(const CodecSpec& spec, std::span<const float> src,
                       std::span<float> wire, common::BufferPool& pool) {
  const std::size_t n = src.size();
  const std::size_t k = TopKCount(n, spec.topk_ratio);
  wire[0] = std::bit_cast<float>(static_cast<std::uint32_t>(k));
  if (k == 0) return 1;

  // Find the k-th largest magnitude via a pooled partial sort, then select
  // in ascending index order: every |v| strictly above the threshold, plus
  // enough threshold-ties (taken in index order) to reach exactly k. This
  // keeps the selection deterministic and the wire indices ascending.
  auto scratch = pool.Acquire(n);
  for (std::size_t i = 0; i < n; ++i) scratch[i] = std::fabs(src[i]);
  std::nth_element(scratch.begin(), scratch.begin() + (k - 1), scratch.end(),
                   std::greater<float>());
  const float threshold = scratch[k - 1];
  std::size_t above = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::fabs(src[i]) > threshold) ++above;
  }
  pool.Release(std::move(scratch));

  std::size_t ties_allowed = k - above;
  std::size_t out = 1;
  std::size_t emitted = 0;
  for (std::size_t i = 0; i < n && emitted < k; ++i) {
    const float mag = std::fabs(src[i]);
    bool keep = mag > threshold;
    if (!keep && mag == threshold && ties_allowed > 0) {
      keep = true;
      --ties_allowed;
    }
    if (keep) {
      wire[out++] = std::bit_cast<float>(static_cast<std::uint32_t>(i));
      wire[out++] = src[i];
      ++emitted;
    }
  }
  return out;
}

Status TopKDecodeAccumulate(std::span<const float> wire,
                            std::span<float> dst) noexcept {
  if (wire.empty()) return InvalidArgument("top-k record missing header");
  const auto k = std::bit_cast<std::uint32_t>(wire[0]);
  if (wire.size() != 1 + 2 * static_cast<std::size_t>(k)) {
    return InvalidArgument("top-k record length mismatch");
  }
  if (k > dst.size()) {
    return InvalidArgument("top-k record keeps more elements than the tensor");
  }
  std::uint32_t prev_index = 0;
  for (std::uint32_t j = 0; j < k; ++j) {
    const auto index = std::bit_cast<std::uint32_t>(wire[1 + 2 * j]);
    if (index >= dst.size()) {
      return InvalidArgument("top-k record index out of range");
    }
    if (j > 0 && index <= prev_index) {
      return InvalidArgument("top-k record indices not strictly ascending");
    }
    prev_index = index;
    dst[index] += wire[2 + 2 * j];
  }
  return Status::Ok();
}

}  // namespace

std::string_view ToString(CodecKind kind) noexcept {
  switch (kind) {
    case CodecKind::kNone:
      return "none";
    case CodecKind::kFp16:
      return "fp16";
    case CodecKind::kBf16:
      return "bf16";
    case CodecKind::kOneBit:
      return "onebit";
    case CodecKind::kTopK:
      return "topk";
  }
  return "unknown";
}

std::string ToString(const CodecSpec& spec) {
  std::string out{ToString(spec.kind)};
  if (spec.kind == CodecKind::kTopK) {
    out += "@";
    out += std::to_string(spec.topk_ratio);
  }
  return out;
}

std::size_t TopKCount(std::size_t n, float ratio) noexcept {
  if (n == 0) return 0;
  const double want = std::round(static_cast<double>(ratio) *
                                 static_cast<double>(n));
  const auto k = want < 1.0 ? std::size_t{1} : static_cast<std::size_t>(want);
  return std::min(k, n);
}

std::size_t MaxWireFloats(const CodecSpec& spec, std::size_t n) noexcept {
  switch (spec.kind) {
    case CodecKind::kNone:
      return n;
    case CodecKind::kFp16:
    case CodecKind::kBf16:
      return CastWireFloats(n);
    case CodecKind::kOneBit:
      return kOneBitHeader + OneBitMaskWords(n);
    case CodecKind::kTopK:
      return 1 + 2 * TopKCount(n, spec.topk_ratio);
  }
  return n;
}

void CastEncode(CodecKind kind, std::span<const float> src,
                std::span<float> dst) noexcept {
  const std::size_t n = src.size();
  const std::size_t pairs = n / 2;
  for (std::size_t i = 0; i < pairs; ++i) {
    dst[i] = std::bit_cast<float>(PackLanes(EncodeScalar(kind, src[2 * i]),
                                            EncodeScalar(kind, src[2 * i + 1])));
  }
  if (n % 2 != 0) {
    dst[pairs] =
        std::bit_cast<float>(PackLanes(EncodeScalar(kind, src[n - 1]), 0));
  }
}

void CastDecode(CodecKind kind, std::span<const float> src,
                std::span<float> dst, std::size_t count) noexcept {
  const std::size_t pairs = count / 2;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto word = std::bit_cast<std::uint32_t>(src[i]);
    dst[2 * i] = DecodeScalar(kind, static_cast<std::uint16_t>(word & 0xFFFFu));
    dst[2 * i + 1] = DecodeScalar(kind, static_cast<std::uint16_t>(word >> 16));
  }
  if (count % 2 != 0) {
    const auto word = std::bit_cast<std::uint32_t>(src[pairs]);
    dst[count - 1] =
        DecodeScalar(kind, static_cast<std::uint16_t>(word & 0xFFFFu));
  }
}

std::size_t SparseEncode(const CodecSpec& spec, std::span<const float> src,
                         std::span<float> wire, common::BufferPool& pool) {
  switch (spec.kind) {
    case CodecKind::kOneBit:
      return OneBitEncode(src, wire);
    case CodecKind::kTopK:
      return TopKEncode(spec, src, wire, pool);
    default:
      break;
  }
  return 0;
}

Status SparseDecodeAccumulate(const CodecSpec& spec,
                              std::span<const float> wire,
                              std::span<float> dst) noexcept {
  switch (spec.kind) {
    case CodecKind::kOneBit:
      return OneBitDecodeAccumulate(wire, dst);
    case CodecKind::kTopK:
      return TopKDecodeAccumulate(wire, dst);
    default:
      break;
  }
  return InvalidArgument("not a sparse codec");
}

void RecordWireFootprint(std::size_t raw_floats,
                         std::size_t wire_floats) noexcept {
  RawFloatsCounter().Add(raw_floats);
  WireFloatsCounter().Add(wire_floats);
}

}  // namespace aiacc::compress
