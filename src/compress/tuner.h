// Per-tensor codec selection as a multi-armed bandit.
//
// The grid/PBT/Bayes autotuner in src/autotune searches one global
// CommConfig (streams, granularity, algorithm, depth, default codec). Codec
// choice, however, is the one dimension where the optimum is *per tensor*:
// a 10M-row embedding gradient with a handful of touched rows wants top-k
// sparsification, while a dense conv/MLP gradient wants a cheap fp16 cast.
// Searching the cross product per-tensor x global would blow up the config
// space, so per-tensor codec choice runs as its own UCB1 bandit layered on
// top of whatever global config the outer tuner picked.
//
// Reward per observation = (1 - wire/raw) - error_weight * relative_error:
// bytes saved, minus a penalty for the reconstruction error the codec
// introduced this step. With the default error_weight, top-k on a
// 99%-sparse tensor scores ~0.99 - eps while on a dense tensor its error
// term dominates and fp16 (tiny error, 0.5 savings) wins — exactly the
// split the paper's CTR workloads want. Converged choices are exported as
// `CommConfig::codec_overrides` and persisted in the tuning cache (v3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "compress/codec.h"

namespace aiacc::compress {

/// UCB1 bandit choosing a codec per registered tensor. Not thread-safe;
/// drive it from the engine's single tuning thread (matching
/// autotune::Searcher usage).
class PerTensorCodecTuner {
 public:
  struct Options {
    /// Arms of the bandit. Defaults to {none, fp16, onebit, topk@1%}.
    std::vector<CodecSpec> candidates;
    /// Weight of relative reconstruction error against bytes saved.
    double error_weight = 2.0;
    /// UCB exploration constant (sqrt-log bonus multiplier).
    double explore = 0.5;
  };

  PerTensorCodecTuner();
  explicit PerTensorCodecTuner(Options options);

  /// Register a tensor by name; returns its dense id. Re-registering an
  /// existing name returns the same id.
  std::size_t RegisterTensor(const std::string& name);

  /// The codec to try this round for tensor `id` (UCB1: any unplayed arm
  /// first, then highest mean + exploration bonus).
  [[nodiscard]] CodecSpec Choose(std::size_t id);

  /// Report the outcome of the last Choose for `id`: wire vs raw footprint
  /// and the relative reconstruction error of this step's encode.
  void Observe(std::size_t id, std::size_t wire_floats,
               std::size_t raw_floats, double relative_error);

  /// Best arm by observed mean reward (ties to the earlier candidate).
  [[nodiscard]] CodecSpec Best(std::size_t id) const;

  /// Name the tensor `id` was registered under.
  [[nodiscard]] const std::string& NameOf(std::size_t id) const;

  [[nodiscard]] std::size_t NumTensors() const { return arms_.size(); }
  [[nodiscard]] const Options& options() const { return options_; }

  /// Total observations recorded for tensor `id` across all arms.
  [[nodiscard]] std::uint64_t Plays(std::size_t id) const;

 private:
  struct Arm {
    std::uint64_t plays = 0;
    double total_reward = 0.0;
  };
  struct TensorState {
    std::string name;
    std::vector<Arm> arms;
    std::size_t last_choice = 0;
    std::uint64_t total_plays = 0;
  };

  Options options_;
  std::vector<TensorState> arms_;
};

}  // namespace aiacc::compress
