#include "baselines/horovod_like.h"

#include <algorithm>

#include "common/logging.h"

namespace aiacc::baselines {

HorovodLikeEngine::HorovodLikeEngine(core::WorkloadSetup setup,
                                     HorovodParams params)
    : DdlEngine(setup),
      params_(params),
      registry_(core::GradientRegistry::FromModel(*setup.model,
                                                  setup.wire_dtype)),
      sync_(*setup.fabric, params.sync),
      packer_(params.fusion_buffer_bytes) {
  ready_offset_.assign(static_cast<std::size_t>(registry_.size()), 0.0);
  for (const dnn::GradientSpec& g : setup_.model->gradients()) {
    auto id = registry_.IdOf(g.name);
    AIACC_CHECK(id.ok());
    ready_offset_[static_cast<std::size_t>(*id)] =
        profile_.ready_time[static_cast<std::size_t>(g.id)];
  }
  reduced_bytes_.assign(static_cast<std::size_t>(registry_.size()), 0);
}

void HorovodLikeEngine::RunIteration(
    std::function<void(core::IterationStats)> on_done) {
  AIACC_CHECK(iter_.on_done == nullptr);
  iter_ = IterationState{};
  iter_.start_time = Sim().Now();
  iter_.on_done = std::move(on_done);
  iter_.local_ready = BitVector(static_cast<std::size_t>(registry_.size()));
  iter_.gradients_remaining = registry_.size();
  packer_.Reset();
  std::fill(reduced_bytes_.begin(), reduced_bytes_.end(), 0);

  const double jitter = NextComputeJitter();
  const double backward_start =
      iter_.start_time + profile_.forward_time * jitter;
  iter_.backward_end = backward_start + profile_.backward_time * jitter;
  for (int id = 0; id < registry_.size(); ++id) {
    Sim().ScheduleAt(
        backward_start + ready_offset_[static_cast<std::size_t>(id)] * jitter,
        [this, id] { OnGradientReady(id); });
  }
  Sim().ScheduleAt(iter_.backward_end, [this] {
    iter_.backward_done = true;
    MaybeNegotiate();
  });
}

void HorovodLikeEngine::OnGradientReady(int registry_id) {
  iter_.local_ready.Set(static_cast<std::size_t>(registry_id));
  MaybeNegotiate();
}

void HorovodLikeEngine::MaybeNegotiate() {
  // Horovod coordinates at every cycle tick: any locally-ready tensors are
  // announced to the master; only one negotiation is in flight at a time
  // (responses are cycle-batched).
  if (iter_.negotiation_in_flight) return;
  if (iter_.local_ready.None()) return;
  iter_.negotiation_in_flight = true;
  ++iter_.stats.sync_rounds;
  BitVector announced = iter_.local_ready;
  iter_.local_ready.Reset();
  sync_.StartRound(announced, [this](BitVector agreed) {
    iter_.negotiation_in_flight = false;
    OnNegotiated(agreed);
    MaybeNegotiate();
  });
}

void HorovodLikeEngine::OnNegotiated(const BitVector& agreed) {
  // Tensor fusion: negotiated tensors stream into the fusion buffer; a
  // complete 64 MB unit dispatches, the partial tail waits for the next
  // negotiation response (or the final one).
  for (std::size_t i : agreed.SetIndices()) {
    const int id = static_cast<int>(i);
    packer_.Add(id, registry_.Get(id).bytes);
    ++iter_.negotiated_gradients;
  }
  if (iter_.negotiated_gradients == registry_.size()) packer_.Flush();
  Dispatch();
}

void HorovodLikeEngine::Dispatch() {
  // Single NCCL stream: one all-reduce at a time.
  if (iter_.stream_busy || !packer_.HasReadyUnit()) return;
  iter_.stream_busy = true;
  iter_.stats.max_concurrent_streams = 1;
  ++iter_.stats.allreduce_units;
  core::AllReduceUnit unit = packer_.PopReadyUnit();

  const std::size_t unit_bytes = unit.TotalBytes();
  collective::SimCollectives::Unit sim_unit;
  sim_unit.bytes_per_rank = static_cast<double>(unit_bytes);
  sim_unit.op = collective::ReduceOp::kAvg;
  sim_unit.algorithm = collective::Algorithm::kRing;
  sim_unit.on_done = [this, unit_bytes, segments = unit.segments](double) {
    int whole = 0;
    for (const core::UnitSegment& seg : segments) {
      auto& done = reduced_bytes_[static_cast<std::size_t>(seg.gradient_id)];
      done += seg.length;
      if (done == registry_.Get(seg.gradient_id).bytes) ++whole;
    }
    OnUnitComplete(unit_bytes, whole);
  };
  Sim().ScheduleAfter(setup_.gpu.params().kernel_launch_overhead,
                      [this, u = std::move(sim_unit)]() mutable {
                        setup_.collectives->Start(std::move(u));
                      });
}

void HorovodLikeEngine::OnUnitComplete(std::size_t unit_bytes,
                                       int num_whole_gradients) {
  iter_.stream_busy = false;
  iter_.gradients_remaining -= num_whole_gradients;
  const int n = WorldSize();
  iter_.stats.comm_bytes_per_nic +=
      2.0 * static_cast<double>(unit_bytes) * (n - 1) / std::max(1, n);
  Dispatch();
  MaybeFinishIteration();
}

void HorovodLikeEngine::MaybeFinishIteration() {
  if (iter_.done_fired) return;
  if (!iter_.backward_done || iter_.gradients_remaining > 0) return;
  iter_.done_fired = true;
  const double update = setup_.gpu.OptimizerUpdateTime(
      static_cast<double>(setup_.model->TotalParameterBytes()));
  Sim().ScheduleAfter(update, [this] {
    iter_.stats.duration = Sim().Now() - iter_.start_time;
    auto done = std::move(iter_.on_done);
    iter_.on_done = nullptr;
    done(iter_.stats);
  });
}

}  // namespace aiacc::baselines
