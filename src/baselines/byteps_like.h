// Parameter-server baselines.
//
// BytePS-like (v0.2, colocated mode — no extra CPU machines, as evaluated in
// the paper): gradients are split into fixed-size partitions, each assigned
// to a server process on one of the worker hosts. Per partition:
//   1. local aggregation across the host's GPUs over PCIe (BytePS stages
//      through CPU memory),
//   2. push to the owning server (point-to-point TCP flows),
//   3. serialized CPU summation at the server,
//   4. pull of the aggregated partition back to every host, and local
//      broadcast to the GPUs.
// The paper observes BytePS "gives poor performance because it requires
// additional CPU servers to minimize the bottleneck overhead of the
// parameter servers" (§VIII-A) — with colocated servers, the CPU summation
// and the incast at each server NIC are the bottleneck.
//
// MXNet-KVStore-like: the same push/pull structure *without* local
// aggregation — every GPU pushes its own copy, multiplying wire traffic by
// the GPUs-per-host factor (the dist_sync KVStore device mode of Fig. 12).
#pragma once

#include "core/ddl_engine.h"
#include "core/registry.h"

namespace aiacc::baselines {

struct PsParams {
  /// Partition granularity (BYTEPS_PARTITION_BYTES default 4 MB).
  std::size_t partition_bytes = 4u << 20;
  /// Server-side CPU summation rate, bytes/sec per server host (one
  /// summation pipeline per server process). Colocated servers share the
  /// host CPU with the training input pipeline and the kernel network
  /// stack, which is why BytePS "requires additional CPU servers" to shine;
  /// ~1.2 GB/s of effective sum+emit throughput matches that contention.
  double server_sum_rate = 0.9e9;
  /// Per-partition request handling overhead at the server.
  double server_request_overhead = 20e-6;
  /// Aggregate gradients across the host's GPUs before pushing (BytePS yes,
  /// MXNet-KVStore device-mode no).
  bool local_aggregation = true;
  /// Cap on concurrent in-flight partitions per iteration, bounding the
  /// simulator's flow count at large scales (BytePS similarly bounds
  /// outstanding push/pulls with credit-based flow control).
  int max_inflight_partitions = 32;
};

class PsLikeEngine final : public core::DdlEngine {
 public:
  PsLikeEngine(core::WorkloadSetup setup, PsParams params, std::string name);

  [[nodiscard]] std::string Name() const override { return name_; }
  void RunIteration(
      std::function<void(core::IterationStats)> on_done) override;

 private:
  struct Partition {
    std::size_t bytes = 0;
    int server_host = 0;
    double ready_offset = 0.0;  // when its gradients finish in backward
  };

  void StartPartition(std::size_t index);
  void PushPartition(std::size_t index);
  void OnServerAggregated(std::size_t index);
  void OnPartitionDone(std::size_t index);
  void PumpQueue();
  void MaybeFinishIteration();

  PsParams params_;
  std::string name_;
  core::GradientRegistry registry_;
  std::vector<Partition> partitions_;

  struct IterationState {
    double start_time = 0.0;
    bool backward_done = false;
    std::size_t partitions_remaining = 0;
    std::vector<std::size_t> waiting;  // ready, not yet in flight
    int inflight = 0;
    /// Serialized server CPU: busy-until per host.
    std::vector<double> server_busy_until;
    bool done_fired = false;
    std::function<void(core::IterationStats)> on_done;
    core::IterationStats stats;
  };
  IterationState iter_;
};

/// Convenience factories.
std::unique_ptr<PsLikeEngine> MakeBytePsEngine(core::WorkloadSetup setup);
std::unique_ptr<PsLikeEngine> MakeMxnetKvStoreEngine(
    core::WorkloadSetup setup);

}  // namespace aiacc::baselines
