#include "baselines/byteps_like.h"

#include <algorithm>

#include "common/logging.h"

namespace aiacc::baselines {

PsLikeEngine::PsLikeEngine(core::WorkloadSetup setup, PsParams params,
                           std::string name)
    : DdlEngine(setup),
      params_(params),
      name_(std::move(name)),
      registry_(core::GradientRegistry::FromModel(*setup.model,
                                                  setup.wire_dtype)) {
  // Carve the gradient space (in backward production order) into partitions
  // and assign servers round-robin, as BytePS hashes keys across servers.
  const int num_hosts = setup_.fabric->topology().num_hosts;
  std::size_t acc_bytes = 0;
  double acc_offset = 0.0;
  int next_server = 0;
  auto flush = [&] {
    if (acc_bytes == 0) return;
    partitions_.push_back(Partition{acc_bytes, next_server, acc_offset});
    next_server = (next_server + 1) % num_hosts;
    acc_bytes = 0;
    acc_offset = 0.0;
  };
  for (int model_id : setup_.model->backward_order()) {
    const dnn::GradientSpec& g =
        setup_.model->gradients()[static_cast<std::size_t>(model_id)];
    std::size_t remaining = g.ByteSize(setup_.wire_dtype);
    acc_offset = std::max(
        acc_offset, profile_.ready_time[static_cast<std::size_t>(model_id)]);
    while (remaining > 0) {
      const std::size_t take =
          std::min(remaining, params_.partition_bytes - acc_bytes);
      acc_bytes += take;
      remaining -= take;
      if (acc_bytes == params_.partition_bytes) flush();
    }
  }
  flush();
}

void PsLikeEngine::RunIteration(
    std::function<void(core::IterationStats)> on_done) {
  AIACC_CHECK(iter_.on_done == nullptr);
  iter_ = IterationState{};
  iter_.start_time = Sim().Now();
  iter_.on_done = std::move(on_done);
  iter_.partitions_remaining = partitions_.size();
  iter_.server_busy_until.assign(
      static_cast<std::size_t>(setup_.fabric->topology().num_hosts), 0.0);

  const double jitter = NextComputeJitter();
  const double backward_start =
      iter_.start_time + profile_.forward_time * jitter;
  const double backward_end =
      backward_start + profile_.backward_time * jitter;
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    Sim().ScheduleAt(backward_start + partitions_[p].ready_offset * jitter,
                     [this, p] { StartPartition(p); });
  }
  Sim().ScheduleAt(backward_end, [this] {
    iter_.backward_done = true;
    MaybeFinishIteration();
  });
}

void PsLikeEngine::StartPartition(std::size_t index) {
  iter_.waiting.push_back(index);
  PumpQueue();
}

void PsLikeEngine::PumpQueue() {
  while (iter_.inflight < params_.max_inflight_partitions &&
         !iter_.waiting.empty()) {
    const std::size_t index = iter_.waiting.front();
    iter_.waiting.erase(iter_.waiting.begin());
    ++iter_.inflight;
    iter_.stats.max_concurrent_streams =
        std::max(iter_.stats.max_concurrent_streams, iter_.inflight);
    PushPartition(index);
  }
}

void PsLikeEngine::PushPartition(std::size_t index) {
  const Partition& part = partitions_[index];
  const auto& topo = setup_.fabric->topology();
  const int g = topo.gpus_per_host;
  const double bytes = static_cast<double>(part.bytes);

  // Stage 1: local aggregation. BytePS reduces across the host's GPUs
  // (NVLink) and stages the result in CPU memory over PCIe; KVStore device
  // mode skips aggregation (each GPU pushes its own copy).
  double local_cost = 0.0;
  if (params_.local_aggregation && g > 1) {
    local_cost += 2.0 * bytes * (g - 1) / g /
                  setup_.fabric->params().nvlink_bandwidth;
  }
  local_cost += bytes / setup_.fabric->params().pcie_bandwidth;  // to CPU

  Sim().ScheduleAfter(local_cost, [this, index] {
    const Partition& part = partitions_[index];
    const auto& topo = setup_.fabric->topology();
    const int m = topo.num_hosts;
    if (m == 1) {
      OnServerAggregated(index);
      return;
    }
    // Stage 2: push — one TCP connection per (worker host, server) pair.
    const int g = topo.gpus_per_host;
    const double wire_bytes =
        static_cast<double>(part.bytes) *
        (params_.local_aggregation ? 1.0 : static_cast<double>(g));
    auto pending = std::make_shared<int>(m - 1);
    for (int h = 0; h < m; ++h) {
      if (h == part.server_host) continue;
      net::Network::FlowSpec spec;
      spec.path = {setup_.fabric->EgressLink(h),
                   setup_.fabric->IngressLink(part.server_host)};
      spec.bytes = wire_bytes;
      spec.rate_cap = setup_.fabric->InterNodeStreamCap();
      spec.start_delay = setup_.fabric->InterNodeHopCost();
      spec.on_complete = [this, index, pending] {
        if (--*pending == 0) OnServerAggregated(index);
      };
      setup_.fabric->network().StartFlow(std::move(spec));
      iter_.stats.comm_bytes_per_nic += wire_bytes / m;  // avg per NIC
    }
  });
}

void PsLikeEngine::OnServerAggregated(std::size_t index) {
  const Partition& part = partitions_[index];
  const auto& topo = setup_.fabric->topology();
  const int m = topo.num_hosts;
  const int g = topo.gpus_per_host;
  if (m == 1) {
    // Single host: the NVLink local aggregation already produced the result;
    // no CPU parameter server is involved.
    OnPartitionDone(index);
    return;
  }
  // Stage 3: serialized CPU work at the server process: one read pass over
  // every contribution plus one write pass per response copy staged for the
  // pull (hence the factor 2 on contributions).
  const double contributions =
      params_.local_aggregation ? m : static_cast<double>(m) * g;
  const double sum_time = params_.server_request_overhead * m +
                          2.0 * contributions * static_cast<double>(part.bytes) /
                              params_.server_sum_rate;
  auto& busy = iter_.server_busy_until[static_cast<std::size_t>(
      part.server_host)];
  const double start = std::max(Sim().Now(), busy);
  busy = start + sum_time;
  Sim().ScheduleAt(busy, [this, index] {
    const Partition& part = partitions_[index];
    const auto& topo = setup_.fabric->topology();
    const int m = topo.num_hosts;
    if (m == 1) {
      OnPartitionDone(index);
      return;
    }
    // Stage 4: pull — the server fans the aggregated partition back out.
    const int g = topo.gpus_per_host;
    const double wire_bytes =
        static_cast<double>(part.bytes) *
        (params_.local_aggregation ? 1.0 : static_cast<double>(g));
    auto pending = std::make_shared<int>(m - 1);
    for (int h = 0; h < m; ++h) {
      if (h == part.server_host) continue;
      net::Network::FlowSpec spec;
      spec.path = {setup_.fabric->EgressLink(part.server_host),
                   setup_.fabric->IngressLink(h)};
      spec.bytes = wire_bytes;
      spec.rate_cap = setup_.fabric->InterNodeStreamCap();
      spec.start_delay = setup_.fabric->InterNodeHopCost();
      spec.on_complete = [this, index, pending] {
        if (--*pending == 0) OnPartitionDone(index);
      };
      setup_.fabric->network().StartFlow(std::move(spec));
      iter_.stats.comm_bytes_per_nic += wire_bytes / m;
    }
  });
}

void PsLikeEngine::OnPartitionDone(std::size_t index) {
  const Partition& part = partitions_[index];
  // Stage 5: stage back to GPU memory over PCIe (broadcast locally).
  const double pcie = static_cast<double>(part.bytes) /
                      setup_.fabric->params().pcie_bandwidth;
  Sim().ScheduleAfter(pcie, [this] {
    --iter_.inflight;
    --iter_.partitions_remaining;
    ++iter_.stats.allreduce_units;
    PumpQueue();
    MaybeFinishIteration();
  });
}

void PsLikeEngine::MaybeFinishIteration() {
  if (iter_.done_fired) return;
  if (!iter_.backward_done || iter_.partitions_remaining > 0) return;
  iter_.done_fired = true;
  const double update = setup_.gpu.OptimizerUpdateTime(
      static_cast<double>(setup_.model->TotalParameterBytes()));
  Sim().ScheduleAfter(update, [this] {
    iter_.stats.duration = Sim().Now() - iter_.start_time;
    auto done = std::move(iter_.on_done);
    iter_.on_done = nullptr;
    done(iter_.stats);
  });
}

std::unique_ptr<PsLikeEngine> MakeBytePsEngine(core::WorkloadSetup setup) {
  PsParams params;
  params.local_aggregation = true;
  return std::make_unique<PsLikeEngine>(setup, params, "byteps");
}

std::unique_ptr<PsLikeEngine> MakeMxnetKvStoreEngine(
    core::WorkloadSetup setup) {
  // dist_device_sync KVStore: gradients aggregate on-device before the push
  // (like BytePS), but keys are coarse (whole layers, no fine partitioning),
  // outstanding push/pulls are few, and the server path is slower (MXNet's
  // single-threaded per-key server engine).
  PsParams params;
  params.local_aggregation = true;
  params.partition_bytes = 32u << 20;
  params.max_inflight_partitions = 4;
  params.server_sum_rate = 0.6e9;
  params.server_request_overhead = 50e-6;
  return std::make_unique<PsLikeEngine>(setup, params, "mxnet-kvstore");
}

}  // namespace aiacc::baselines
