#include "baselines/threaded_ps.h"

#include "common/logging.h"

namespace aiacc::baselines {

ThreadedParameterServer::ThreadedParameterServer(
    int num_workers, int num_servers, std::vector<std::size_t> key_sizes)
    : num_workers_(num_workers),
      num_servers_(num_servers),
      key_sizes_(std::move(key_sizes)),
      transport_(num_workers + num_servers) {
  AIACC_CHECK(num_workers >= 1);
  AIACC_CHECK(num_servers >= 1);
  AIACC_CHECK(!key_sizes_.empty());
  servers_.reserve(static_cast<std::size_t>(num_servers));
  for (int s = 0; s < num_servers; ++s) {
    servers_.emplace_back([this, s] { ServerLoop(s); });
  }
}

ThreadedParameterServer::~ThreadedParameterServer() { Shutdown(); }

void ThreadedParameterServer::Shutdown() {
  if (shutdown_.exchange(true)) return;
  transport_.Shutdown();
  for (auto& t : servers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadedParameterServer::Push(int worker, int key,
                                   std::span<const float> data) {
  AIACC_CHECK(key >= 0 && key < static_cast<int>(key_sizes_.size()));
  AIACC_CHECK(data.size() == key_sizes_[static_cast<std::size_t>(key)]);
  const int server = ServerRank(key % num_servers_);
  transport_.Send(worker, server, PushTag(key),
                  transport::Payload(data.begin(), data.end()));
}

void ThreadedParameterServer::Pull(int worker, int key,
                                   std::span<float> data) {
  AIACC_CHECK(key >= 0 && key < static_cast<int>(key_sizes_.size()));
  const int server = ServerRank(key % num_servers_);
  auto result = transport_.Recv(worker, server, PullTag(key));
  AIACC_CHECK(result.ok() && "parameter server shut down during pull");
  AIACC_CHECK(result->size() == data.size());
  std::copy(result->begin(), result->end(), data.begin());
}

void ThreadedParameterServer::PushPull(int worker, int key,
                                       std::span<float> data) {
  Push(worker, key, data);
  Pull(worker, key, data);
}

void ThreadedParameterServer::ServerLoop(int server_index) {
  const int me = ServerRank(server_index);
  // Serve owned keys round-robin forever; per (key, iteration) gather the
  // workers' contributions, average, fan back out. (src, tag) matching
  // makes the gather order-independent across keys and iterations.
  while (!shutdown_.load(std::memory_order_acquire)) {
    for (int key = server_index;
         key < static_cast<int>(key_sizes_.size()); key += num_servers_) {
      std::vector<float> acc(key_sizes_[static_cast<std::size_t>(key)], 0.0f);
      for (int w = 0; w < num_workers_; ++w) {
        auto contribution = transport_.Recv(me, w, PushTag(key));
        if (!contribution.ok()) return;  // shutdown
        AIACC_CHECK(contribution->size() == acc.size());
        for (std::size_t i = 0; i < acc.size(); ++i) {
          acc[i] += (*contribution)[i];
        }
        pushes_served_.fetch_add(1, std::memory_order_relaxed);
      }
      const float inv = 1.0f / static_cast<float>(num_workers_);
      for (float& v : acc) v *= inv;
      for (int w = 0; w < num_workers_; ++w) {
        transport_.Send(me, w, PullTag(key),
                        transport::Payload(acc.begin(), acc.end()));
      }
    }
  }
}

}  // namespace aiacc::baselines
