#include "baselines/ddp_like.h"

#include <algorithm>

#include "common/logging.h"

namespace aiacc::baselines {

DdpLikeEngine::DdpLikeEngine(core::WorkloadSetup setup, DdpParams params)
    : DdlEngine(setup),
      params_(params),
      registry_(core::GradientRegistry::FromModel(*setup.model,
                                                  setup.wire_dtype)) {
  // Build buckets in backward production order (DDP: reverse of
  // registration, which approximates production order).
  std::vector<std::vector<int>> buckets;
  std::vector<int> current;
  std::size_t current_bytes = 0;
  std::vector<double> offsets;
  double current_offset = 0.0;
  auto flush = [&] {
    if (!current.empty()) {
      buckets.push_back(std::move(current));
      current.clear();
      bucket_bytes_.push_back(current_bytes);
      offsets.push_back(current_offset);
      current_bytes = 0;
      current_offset = 0.0;
    }
  };
  for (int model_id : setup_.model->backward_order()) {
    const dnn::GradientSpec& g =
        setup_.model->gradients()[static_cast<std::size_t>(model_id)];
    auto reg_id = registry_.IdOf(g.name);
    AIACC_CHECK(reg_id.ok());
    current.push_back(*reg_id);
    current_bytes += g.ByteSize(setup_.wire_dtype);
    current_offset = std::max(
        current_offset,
        profile_.ready_time[static_cast<std::size_t>(model_id)]);
    if (current_bytes >= params_.bucket_bytes) flush();
  }
  flush();
  buckets_ = std::move(buckets);
  bucket_ready_offset_ = std::move(offsets);
}

void DdpLikeEngine::RunIteration(
    std::function<void(core::IterationStats)> on_done) {
  AIACC_CHECK(iter_.on_done == nullptr);
  iter_ = IterationState{};
  iter_.start_time = Sim().Now();
  iter_.on_done = std::move(on_done);
  iter_.buckets_remaining = buckets_.size();

  const double jitter = NextComputeJitter();
  const double backward_start =
      iter_.start_time + profile_.forward_time * jitter;
  const double backward_end =
      backward_start + profile_.backward_time * jitter;
  // Bucket b's all-reduce can launch when its last gradient lands. Buckets
  // are in production order, so ready events arrive in index order.
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    Sim().ScheduleAt(backward_start + bucket_ready_offset_[b] * jitter,
                     [this, b] { OnBucketReady(b); });
  }
  Sim().ScheduleAt(backward_end, [this] {
    iter_.backward_done = true;
    MaybeFinishIteration();
  });
}

void DdpLikeEngine::OnBucketReady(std::size_t bucket_index) {
  // Production order makes readiness a prefix property.
  AIACC_CHECK(bucket_index == iter_.ready_high_water);
  ++iter_.ready_high_water;
  Dispatch();
}

void DdpLikeEngine::Dispatch() {
  if (iter_.stream_busy) return;
  if (iter_.next_to_launch >= buckets_.size()) return;
  if (iter_.next_to_launch >= iter_.ready_high_water) return;
  const std::size_t b = iter_.next_to_launch++;
  iter_.stream_busy = true;
  iter_.stats.max_concurrent_streams = 1;
  ++iter_.stats.allreduce_units;

  collective::SimCollectives::Unit sim_unit;
  sim_unit.bytes_per_rank = static_cast<double>(bucket_bytes_[b]);
  sim_unit.op = collective::ReduceOp::kAvg;
  sim_unit.algorithm = collective::Algorithm::kRing;
  sim_unit.on_done = [this, b](double) { OnBucketComplete(b); };
  Sim().ScheduleAfter(setup_.gpu.params().kernel_launch_overhead,
                      [this, u = std::move(sim_unit)]() mutable {
                        setup_.collectives->Start(std::move(u));
                      });
}

void DdpLikeEngine::OnBucketComplete(std::size_t bucket_index) {
  iter_.stream_busy = false;
  --iter_.buckets_remaining;
  const int n = WorldSize();
  iter_.stats.comm_bytes_per_nic +=
      2.0 * static_cast<double>(bucket_bytes_[bucket_index]) * (n - 1) /
      std::max(1, n);
  Dispatch();
  MaybeFinishIteration();
}

void DdpLikeEngine::MaybeFinishIteration() {
  if (iter_.done_fired) return;
  if (!iter_.backward_done || iter_.buckets_remaining > 0) return;
  iter_.done_fired = true;
  const double update = setup_.gpu.OptimizerUpdateTime(
      static_cast<double>(setup_.model->TotalParameterBytes()));
  Sim().ScheduleAfter(update, [this] {
    iter_.stats.duration = Sim().Now() - iter_.start_time;
    auto done = std::move(iter_.on_done);
    iter_.on_done = nullptr;
    done(iter_.stats);
  });
}

}  // namespace aiacc::baselines
