// A real multi-threaded parameter server — the functional counterpart of
// the simulated PS baselines (BytePS-like / MXNet-KVStore-like), so the
// push/pull aggregation semantics those models assume are demonstrated and
// tested with actual concurrency:
//
//   * keys (gradient tensors) are partitioned across server threads
//     round-robin (key % num_servers), as BytePS hashes keys;
//   * each training iteration a worker *pushes* its contribution for every
//     key (asynchronous) and then *pulls* the average (blocking);
//   * a server thread aggregates the workers' contributions per key and
//     fans the result back out.
//
// Numeric contract (tested): PushPull over a set of keys produces exactly
// the same averages as a ring all-reduce over the concatenated tensors.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <thread>
#include <vector>

#include "transport/inproc.h"

namespace aiacc::baselines {

class ThreadedParameterServer {
 public:
  /// `key_sizes[k]` = element count of key k. Keys are served by server
  /// thread (k % num_servers).
  ThreadedParameterServer(int num_workers, int num_servers,
                          std::vector<std::size_t> key_sizes);
  ~ThreadedParameterServer();
  ThreadedParameterServer(const ThreadedParameterServer&) = delete;
  ThreadedParameterServer& operator=(const ThreadedParameterServer&) = delete;

  /// Asynchronously push worker `worker`'s contribution for `key`.
  void Push(int worker, int key, std::span<const float> data);

  /// Block until the averaged value of `key` for the current iteration is
  /// available; writes it into `data`. Each worker must push exactly once
  /// per key per iteration before pulling that key.
  void Pull(int worker, int key, std::span<float> data);

  /// Convenience: push + pull one key (in-place average).
  void PushPull(int worker, int key, std::span<float> data);

  [[nodiscard]] int num_workers() const noexcept { return num_workers_; }
  [[nodiscard]] int num_servers() const noexcept { return num_servers_; }
  /// Total push messages processed by all servers (diagnostics).
  [[nodiscard]] std::uint64_t PushesServed() const noexcept {
    return pushes_served_.load(std::memory_order_relaxed);
  }

  void Shutdown();

 private:
  void ServerLoop(int server_index);

  [[nodiscard]] int ServerRank(int server_index) const noexcept {
    return num_workers_ + server_index;
  }
  static int PushTag(int key) { return key * 2; }
  static int PullTag(int key) { return key * 2 + 1; }

  const int num_workers_;
  const int num_servers_;
  const std::vector<std::size_t> key_sizes_;
  transport::InProcTransport transport_;
  std::vector<std::thread> servers_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> pushes_served_{0};
};

}  // namespace aiacc::baselines
