// Horovod-like baseline (v0.23-era behaviour, §VII-C):
//   * master-coordinated readiness negotiation once per cycle (rank 0
//     collects every worker's ready list and broadcasts the response — the
//     coordination pattern AIACC's decentralized sync replaces);
//   * tensor fusion into a fixed-size fusion buffer (64 MB default);
//   * a single NCCL communication stream: fused all-reduces execute one at a
//     time and a lone TCP stream is capped at ~30% of the NIC.
#pragma once

#include <deque>

#include "core/config.h"
#include "core/ddl_engine.h"
#include "core/packing.h"
#include "core/registry.h"
#include "core/sync.h"

namespace aiacc::baselines {

struct HorovodParams {
  /// HOROVOD_FUSION_THRESHOLD default.
  std::size_t fusion_buffer_bytes = 64u << 20;
  core::SyncParams sync;
};

class HorovodLikeEngine final : public core::DdlEngine {
 public:
  HorovodLikeEngine(core::WorkloadSetup setup, HorovodParams params = {});

  [[nodiscard]] std::string Name() const override { return "horovod"; }
  void RunIteration(
      std::function<void(core::IterationStats)> on_done) override;

 private:
  void OnGradientReady(int registry_id);
  void MaybeNegotiate();
  void OnNegotiated(const BitVector& agreed);
  void Dispatch();
  void OnUnitComplete(std::size_t unit_bytes, int num_whole_gradients);
  void MaybeFinishIteration();

  HorovodParams params_;
  core::GradientRegistry registry_;
  core::MasterSync sync_;
  /// Fusion buffer: negotiated tensors stream into 64 MB units.
  core::StreamingPacker packer_;
  std::vector<double> ready_offset_;
  std::vector<std::size_t> reduced_bytes_;

  struct IterationState {
    double start_time = 0.0;
    double backward_end = 0.0;
    bool backward_done = false;
    BitVector local_ready;
    bool negotiation_in_flight = false;
    int negotiated_gradients = 0;
    bool stream_busy = false;  // single communication stream
    int gradients_remaining = 0;
    bool done_fired = false;
    std::function<void(core::IterationStats)> on_done;
    core::IterationStats stats;
  };
  IterationState iter_;
};

}  // namespace aiacc::baselines
