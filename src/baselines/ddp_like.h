// PyTorch-DDP-like baseline (v1.10-era DistributedDataParallel):
//   * no readiness negotiation — gradients are assigned to fixed buckets
//     (25 MB default) in reverse registration order, and a bucket's
//     all-reduce launches when its last gradient is produced locally (all
//     workers produce in the same order, so this is safe);
//   * buckets all-reduce *in order* on a single NCCL stream.
#pragma once

#include <deque>

#include "core/ddl_engine.h"
#include "core/registry.h"

namespace aiacc::baselines {

struct DdpParams {
  /// DDP bucket_cap_mb default (25 MB).
  std::size_t bucket_bytes = 25u << 20;
};

class DdpLikeEngine final : public core::DdlEngine {
 public:
  DdpLikeEngine(core::WorkloadSetup setup, DdpParams params = {});

  [[nodiscard]] std::string Name() const override { return "pytorch-ddp"; }
  void RunIteration(
      std::function<void(core::IterationStats)> on_done) override;

  /// Bucket layout (exposed for tests): gradient ids per bucket, in launch
  /// order.
  [[nodiscard]] const std::vector<std::vector<int>>& buckets() const noexcept {
    return buckets_;
  }

 private:
  void OnBucketReady(std::size_t bucket_index);
  void Dispatch();
  void OnBucketComplete(std::size_t bucket_index);
  void MaybeFinishIteration();

  DdpParams params_;
  core::GradientRegistry registry_;
  /// Buckets in launch order (reverse registration order of members).
  std::vector<std::vector<int>> buckets_;
  std::vector<std::size_t> bucket_bytes_;
  std::vector<double> bucket_ready_offset_;  // max member ready time

  struct IterationState {
    double start_time = 0.0;
    bool backward_done = false;
    /// Buckets whose gradients are all produced, waiting for the stream;
    /// DDP launches strictly in bucket order.
    std::size_t next_to_launch = 0;
    std::size_t ready_high_water = 0;  // buckets ready so far (prefix)
    bool stream_busy = false;
    std::size_t buckets_remaining = 0;
    bool done_fired = false;
    std::function<void(core::IterationStats)> on_done;
    core::IterationStats stats;
  };
  IterationState iter_;
};

}  // namespace aiacc::baselines
