// Lightweight Status / Result<T> error-handling types used across the
// AIACC-Training reproduction. We do not use exceptions on hot paths; fallible
// operations return Status or Result<T> and callers decide how to react
// (Core Guidelines E.27-style for a library that must also run inside a
// deterministic simulator where unwinding would be awkward).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace aiacc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kAborted,
  kResourceExhausted,
  kCancelled,
  kDataLoss,
  kDeadlineExceeded,
};

/// Human-readable name for a status code ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code) noexcept;

/// A cheap, value-semantic error carrier. An engaged message is only
/// allocated on the error path; the OK status is trivially copyable in
/// practice (empty string).
class [[nodiscard]] Status {
 public:
  Status() noexcept : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "INVALID_ARGUMENT: <message>".
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status OutOfRange(std::string msg) {
  return {StatusCode::kOutOfRange, std::move(msg)};
}
inline Status Unimplemented(std::string msg) {
  return {StatusCode::kUnimplemented, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status Aborted(std::string msg) {
  return {StatusCode::kAborted, std::move(msg)};
}
inline Status ResourceExhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status Cancelled(std::string msg) {
  return {StatusCode::kCancelled, std::move(msg)};
}
inline Status DataLoss(std::string msg) {
  return {StatusCode::kDataLoss, std::move(msg)};
}
inline Status DeadlineExceeded(std::string msg) {
  return {StatusCode::kDeadlineExceeded, std::move(msg)};
}

/// Result<T>: either a value or a non-OK Status. Modeled on std::expected
/// (not yet available in our toolchain's libstdc++ for all uses we need).
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirror std::expected ergonomics.
  Result(T value) : data_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {
    assert(!std::get<Status>(data_).ok() &&
           "Result<T> must not hold an OK status without a value");
  }

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(data_);
  }

  [[nodiscard]] const Status& status() const noexcept {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  // Without the rvalue overload, `*std::move(result)` binds const& and
  // silently copies — for pooled payload buffers that both allocates and
  // strands the original's class-sized capacity.
  T&& operator*() && { return std::move(*this).value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace aiacc

/// Early-return helper: propagate a non-OK status to the caller.
#define AIACC_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::aiacc::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)
