#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace aiacc {

void RunningStats::Add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double GeometricMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double Percentile(std::vector<double> xs, double p) {
  return PercentileInPlace(xs, p);
}

double PercentileInPlace(std::vector<double>& xs, double p) {
  if (xs.empty()) return 0.0;
  if (!std::is_sorted(xs.begin(), xs.end())) std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatBytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[u]);
  return buf;
}

std::string FormatRate(double bytes_per_sec) {
  // Network rates are conventionally reported in bits/s.
  double bps = bytes_per_sec * 8.0;
  const char* units[] = {"bps", "Kbps", "Mbps", "Gbps", "Tbps"};
  int u = 0;
  while (bps >= 1000.0 && u < 4) {
    bps /= 1000.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bps, units[u]);
  return buf;
}

}  // namespace aiacc
