// Dense bit vector used for the gradient synchronization vector (paper §V-A):
// one bit per registered gradient, 1 = "locally computed and ready to reduce".
// Workers agree on ready gradients by min-all-reducing their vectors, which
// for bits is a bitwise AND — MinCombine implements exactly that.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace aiacc {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t n_bits) : n_bits_(n_bits),
      words_((n_bits + kWordBits - 1) / kWordBits, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_bits_; }
  [[nodiscard]] bool empty() const noexcept { return n_bits_ == 0; }

  void Set(std::size_t i) noexcept {
    words_[i / kWordBits] |= (Word{1} << (i % kWordBits));
  }
  void Clear(std::size_t i) noexcept {
    words_[i / kWordBits] &= ~(Word{1} << (i % kWordBits));
  }
  void Assign(std::size_t i, bool value) noexcept {
    if (value) Set(i); else Clear(i);
  }
  [[nodiscard]] bool Test(std::size_t i) const noexcept {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  /// Resets every bit to 0 (paper: "Before each backward stage, elements of
  /// the gradient synchronization vector are set to zeros").
  void Reset() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t Count() const noexcept;

  /// True when all n_bits_ bits are set.
  [[nodiscard]] bool All() const noexcept;
  /// True when no bit is set.
  [[nodiscard]] bool None() const noexcept;

  /// Element-wise min with `other` (bitwise AND): the all-reduce combine step
  /// of the decentralized gradient synchronization protocol. Sizes must match.
  void MinCombine(const BitVector& other) noexcept;

  /// Indices of all set bits, ascending. Gradient ids are assigned in sorted
  /// registration order, so this is also the implicit communication order.
  [[nodiscard]] std::vector<std::size_t> SetIndices() const;

  /// Serialized byte size (for modeling sync-message cost: one bit/gradient).
  [[nodiscard]] std::size_t ByteSize() const noexcept {
    return words_.size() * sizeof(Word);
  }

  /// "10110..." debug rendering (bit 0 first).
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const BitVector& a, const BitVector& b) noexcept {
    return a.n_bits_ == b.n_bits_ && a.words_ == b.words_;
  }

 private:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  std::size_t n_bits_ = 0;
  std::vector<Word> words_;
};

}  // namespace aiacc
