// Byte-buffer serialization used by checkpointing (§IV "fault-tolerance to
// restart the training process from the last checkpoint") and by the sync
// protocol's wire messages. Little-endian, append-only writer + cursor reader.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace aiacc {

class ByteWriter {
 public:
  void WriteU8(std::uint8_t v) { Append(&v, 1); }
  void WriteU32(std::uint32_t v) { Append(&v, sizeof(v)); }
  void WriteU64(std::uint64_t v) { Append(&v, sizeof(v)); }
  void WriteI64(std::int64_t v) { Append(&v, sizeof(v)); }
  void WriteF32(float v) { Append(&v, sizeof(v)); }
  void WriteF64(double v) { Append(&v, sizeof(v)); }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    Append(s.data(), s.size());
  }

  void WriteF32Vector(const std::vector<float>& v) {
    WriteU64(v.size());
    Append(v.data(), v.size() * sizeof(float));
  }

  void WriteBytes(const void* data, std::size_t n) { Append(data, n); }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> Take() && { return std::move(buf_); }

 private:
  void Append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<std::uint8_t> buf_;
};

/// Cursor-based reader; every accessor reports truncation via Result/Status
/// rather than reading past the end (checkpoints may be corrupt after a
/// simulated node failure — DataLoss is an expected runtime condition).
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  Result<std::uint8_t> ReadU8() { return ReadPod<std::uint8_t>(); }
  Result<std::uint32_t> ReadU32() { return ReadPod<std::uint32_t>(); }
  Result<std::uint64_t> ReadU64() { return ReadPod<std::uint64_t>(); }
  Result<std::int64_t> ReadI64() { return ReadPod<std::int64_t>(); }
  Result<float> ReadF32() { return ReadPod<float>(); }
  Result<double> ReadF64() { return ReadPod<double>(); }

  Result<std::string> ReadString() {
    auto n = ReadU64();
    if (!n.ok()) return n.status();
    if (pos_ + *n > size_) return TruncatedError();
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(*n));
    pos_ += static_cast<std::size_t>(*n);
    return s;
  }

  Result<std::vector<float>> ReadF32Vector() {
    auto n = ReadU64();
    if (!n.ok()) return n.status();
    const std::size_t byte_len = static_cast<std::size_t>(*n) * sizeof(float);
    if (pos_ + byte_len > size_) return TruncatedError();
    std::vector<float> v(static_cast<std::size_t>(*n));
    std::memcpy(v.data(), data_ + pos_, byte_len);
    pos_ += byte_len;
    return v;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool AtEnd() const noexcept { return pos_ == size_; }

 private:
  template <typename T>
  Result<T> ReadPod() {
    if (pos_ + sizeof(T) > size_) return TruncatedError();
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  static Status TruncatedError() {
    return DataLoss("serialized buffer truncated");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace aiacc
