// Fixed-size worker pool. The AIACC threaded backend uses one pool as the
// "communication thread pool" of Algorithm 1: each worker owns a stream
// context and pulls all-reduce units from a shared queue.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/queues.h"
#include "common/sync.h"

namespace aiacc {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue fire-and-forget work.
  void Submit(std::function<void()> task);

  /// Enqueue work and get a future for its completion/result.
  template <typename F>
  auto SubmitWithResult(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    Submit([task] { (*task)(); });
    return fut;
  }

  /// Blocks until every submitted task (so far) has finished.
  void WaitIdle();

  /// Grow the pool so it has at least `n` workers (no-op when already that
  /// large; the pool never shrinks). Lets long-lived pools absorb demand
  /// spikes — callers that submit tasks which may *block* on each other
  /// must reserve enough workers for every concurrently blocked task, or
  /// the pool deadlocks.
  void EnsureWorkers(std::size_t n);

  [[nodiscard]] std::size_t size() const;

 private:
  void WorkerLoop();

  // Internally synchronized; never nested under this class's own locks.
  BlockingQueue<std::function<void()>> tasks_;  // NOLOCK(owns its own mutex)
  mutable common::Mutex threads_mu_{"thread-pool-threads",
                                    common::lock_rank::kThreadPool};
  std::vector<std::thread> threads_ GUARDED_BY(threads_mu_);

  common::Mutex idle_mu_{"thread-pool-idle", common::lock_rank::kThreadPool};
  common::CondVar idle_cv_;
  std::size_t in_flight_ GUARDED_BY(idle_mu_) = 0;  // queued + running
};

}  // namespace aiacc
