// Size-classed recycling pool for payload buffers (std::vector<float>).
//
// The threaded collectives move one freshly sized buffer into the transport
// per point-to-point step; without recycling, every step of every ring on
// every rank heap-allocates — at multi-channel stream counts that is
// thousands of allocations per training iteration, and the allocator lock
// becomes a hidden serialization point between "independent" streams. The
// pool makes the steady state allocation-free: buffers released after a
// receive are handed back to the next sender of a similar size.
//
// Size classes are powers of two (floor on the stored capacity, ceil on the
// requested length), so any released buffer can serve any request whose
// rounded-up size is at most the buffer's class. Acquire reserves *exactly*
// the class capacity, which keeps a buffer in the same class across its
// whole acquire/release life — the population of each class is stable and
// the steady state of a fixed communication pattern performs zero
// allocations (counter-verified in tests/hotpath_test.cpp).
//
// Thread-safe; one mutex per size class. Misses/hits/returns are counted
// per instance (stats()); the telemetry registry exposes the global pool's
// stats as `pool.*` callback counters (src/telemetry/telemetry.cpp), so
// benches and tests can assert allocation behaviour on either surface.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/sync.h"

namespace aiacc::common {

class BufferPool {
 public:
  using Buffer = std::vector<float>;

  /// `max_free_per_class` bounds how many idle buffers each size class
  /// retains; surplus releases are freed (counted as `discarded`).
  explicit BufferPool(std::size_t max_free_per_class = 256);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer of size `n` with capacity equal to n's size class. Reuses a
  /// pooled buffer when one is available (hit), otherwise allocates (miss).
  [[nodiscard]] Buffer Acquire(std::size_t n);

  /// Return a buffer for reuse. Accepts buffers of any origin (pooled or
  /// not); they are filed under the class their capacity can serve.
  void Release(Buffer&& buffer);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t returns = 0;
    std::uint64_t discarded = 0;
  };
  [[nodiscard]] Stats stats() const;
  void ResetStats();

  /// Number of idle buffers currently pooled (all classes).
  [[nodiscard]] std::size_t FreeBuffers() const;

  /// Process-wide pool shared by all transports/collectives by default.
  static BufferPool& Global();

 private:
  // Classes 0..kNumClasses-1 hold capacities 2^(k + kMinClassLog2); the
  // largest class covers 2^26 floats (256 MiB) — anything bigger is served
  // unpooled (always a miss, release frees).
  static constexpr std::size_t kMinClassLog2 = 6;   // 64 floats
  static constexpr std::size_t kMaxClassLog2 = 26;
  static constexpr std::size_t kNumClasses = kMaxClassLog2 - kMinClassLog2 + 1;

  struct SizeClass {
    mutable Mutex mu{"buffer-pool-class", lock_rank::kBufferPool};
    std::vector<Buffer> free GUARDED_BY(mu);
  };

  /// Smallest class whose capacity is >= n, or kNumClasses when n exceeds
  /// the largest class.
  static std::size_t ClassForRequest(std::size_t n);
  /// Largest class whose capacity is <= cap (requests of that class fit).
  static std::size_t ClassForCapacity(std::size_t cap);
  static std::size_t ClassCapacity(std::size_t cls);

  const std::size_t max_free_per_class_;
  std::array<SizeClass, kNumClasses> classes_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> returns_{0};
  std::atomic<std::uint64_t> discarded_{0};
};

}  // namespace aiacc::common
