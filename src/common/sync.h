// Concurrency primitives for the whole repository: the ONLY place where
// std::mutex / std::condition_variable may appear (tools/check_invariants.py
// enforces this as a ctest). Everything else locks through these wrappers,
// which buys two machine-checked guarantees:
//
//   1. Static race detection. The wrappers carry Clang thread-safety
//      annotations (CAPABILITY / GUARDED_BY / REQUIRES / ACQUIRE / RELEASE /
//      EXCLUDES). Under Clang the build runs with
//      `-Wthread-safety -Werror=thread-safety`, so reading a GUARDED_BY
//      member without its mutex is a *compile error*, not a TSan lottery
//      ticket. Under GCC the macros expand to nothing.
//
//   2. Dynamic deadlock detection. Every Mutex has a name and an optional
//      lock *rank*. A per-thread held-lock stack checks each acquisition:
//      re-acquiring a held mutex (self-deadlock) or acquiring a ranked mutex
//      while holding one of equal/higher rank (an inversion of the documented
//      lock hierarchy — see lock_rank below and DESIGN.md "Concurrency
//      invariants") aborts immediately with both locks' names and the full
//      held stack, instead of deadlocking some unlucky run later. The checks
//      are on in every build except release-bench
//      (-DAIACC_NO_LOCK_ORDER_CHECKS).
//
// Adding a new lock: pick the rank band it belongs to from lock_rank (the
// rank must be strictly greater than every lock that may be held when it is
// acquired), give it a descriptive name, and annotate the state it protects
// with GUARDED_BY. Unranked locks (kNoRank) opt out of order checking but
// are still self-deadlock checked — use a rank unless the lock is a leaf
// local to one function.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Clang thread-safety analysis attributes (no-ops elsewhere). Mirrors the
// attribute set documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.
// ---------------------------------------------------------------------------
#if defined(__clang__) && (!defined(SWIG))
#define AIACC_TSA(x) __attribute__((x))
#else
#define AIACC_TSA(x)  // no-op
#endif

#define CAPABILITY(x) AIACC_TSA(capability(x))
#define SCOPED_CAPABILITY AIACC_TSA(scoped_lockable)
#define GUARDED_BY(x) AIACC_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) AIACC_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) AIACC_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) AIACC_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) AIACC_TSA(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) AIACC_TSA(acquire_capability(__VA_ARGS__))
#define RELEASE(...) AIACC_TSA(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) AIACC_TSA(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) AIACC_TSA(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) AIACC_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS AIACC_TSA(no_thread_safety_analysis)

namespace aiacc::common {

/// Rank of a lock that opts out of acquisition-order checking.
inline constexpr int kNoRank = -1;

/// The repository lock hierarchy, highest level first. A thread may acquire
/// a ranked mutex only while every ranked mutex it already holds has a
/// *strictly smaller* rank — i.e. locks are always taken top-down through
/// this list. Leave gaps when adding bands so new layers fit without
/// renumbering. DESIGN.md "Concurrency invariants" documents who nests in
/// whom and why.
namespace lock_rank {
inline constexpr int kTrainer = 50;         // trainer/recovery result locks
inline constexpr int kEngineState = 100;    // per-rank engine state + finalize
inline constexpr int kEngineAbort = 150;    // engine abort status/suspects
inline constexpr int kChannelWorkers = 200; // multi-channel worker reservation
inline constexpr int kChannelHealth = 250;  // channel health tracker state
inline constexpr int kQueue = 300;          // Blocking/Bounded queue internals
inline constexpr int kThreadPool = 400;     // ThreadPool threads/idle tracking
inline constexpr int kReliableTransport = 450;  // reliable-delivery tx/rx maps
                                            // (below kTransport: the
                                            // retransmit daemon calls into
                                            // the decorated faulty/inproc
                                            // transport while holding it)
inline constexpr int kTransport = 500;      // transport decorators (faulty)
inline constexpr int kMailbox = 600;        // inproc mailboxes + barrier
inline constexpr int kBufferPool = 700;     // buffer-pool size classes
inline constexpr int kTelemetry = 750;      // metrics registry + trace rings:
                                            // touchable from under any
                                            // runtime lock; may only log
inline constexpr int kLogSink = 800;        // log sink: a leaf, loggable from
                                            // under any other lock
}  // namespace lock_rank

/// A std::mutex with a name, an optional lock rank, and Clang capability
/// annotations. Prefer MutexLock for scoped acquisition; Lock/Unlock exist
/// for the rare manual pattern.
class CAPABILITY("mutex") Mutex {
 public:
  /// `name` must outlive the mutex (string literals only, by convention);
  /// it is what the deadlock detector prints. `rank` places the lock in the
  /// global hierarchy (see lock_rank); kNoRank skips order checking.
  explicit Mutex(const char* name, int rank = kNoRank) noexcept
      : name_(name), rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE();
  void Unlock() RELEASE();

  [[nodiscard]] const char* name() const noexcept { return name_; }
  [[nodiscard]] int rank() const noexcept { return rank_; }

 private:
  friend class MutexLock;
  friend class CondVar;

  std::mutex mu_;
  const char* const name_;
  const int rank_;
};

namespace sync_internal {
/// Validate an acquisition against this thread's held-lock stack; aborts
/// with a diagnostic naming both locks on self-deadlock or rank inversion.
/// Called *before* blocking on the mutex so bugs abort instead of hanging.
void CheckAcquire(const Mutex* m);
/// Push/pop the held-lock stack (pop tolerates out-of-order release).
void RecordAcquire(const Mutex* m);
void RecordRelease(const Mutex* m);
/// Locks currently held by the calling thread (tests/debugging).
std::size_t HeldLockCount();
}  // namespace sync_internal

/// RAII lock covering a scope; the annotated replacement for
/// std::lock_guard / std::unique_lock. Supports early Unlock() (e.g. to
/// notify after releasing) and lends its underlying lock to CondVar waits.
/// All deadlock-detector bookkeeping lives in Mutex::Lock/Unlock, so the
/// detector gate (AIACC_NO_LOCK_ORDER_CHECKS) only affects sync.cpp.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release before the end of the scope (the lock stays released).
  void Unlock() RELEASE() {
    held_ = false;
    mu_.Unlock();
  }

  [[nodiscard]] const Mutex& mutex() const noexcept { return mu_; }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable bound to Mutex/MutexLock. No predicate overloads on
/// purpose: write the wait loop inline (`while (!ready_) cv_.Wait(lock);`)
/// so Clang's analysis sees the guarded predicate read under the lock —
/// a lambda predicate would be analysed as an unlocked function.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `lock`, sleep, re-acquire. The lock's entry stays on
  /// the holder's lock stack for the duration (the thread cannot acquire
  /// anything else while asleep, and it holds the lock again on return).
  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> native = Adopt(lock);
    cv_.wait(native);
    native.release();  // ownership stays with the MutexLock
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& d) {
    std::unique_lock<std::mutex> native = Adopt(lock);
    const std::cv_status status = cv_.wait_for(native, d);
    native.release();
    return status;
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> native = Adopt(lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  /// Borrow the already-held native mutex for the duration of one wait.
  static std::unique_lock<std::mutex> Adopt(MutexLock& lock) noexcept {
    return std::unique_lock<std::mutex>(lock.mu_.mu_, std::adopt_lock);
  }

  std::condition_variable cv_;
};

}  // namespace aiacc::common
