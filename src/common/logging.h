// Minimal leveled logger. Thread-safe, level-filtered at runtime, writes to
// stderr. Benchmarks default the level to kWarn so tables stay clean.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace aiacc {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global minimum level; messages below it are discarded before formatting
/// their arguments is *finished* (the stream still evaluates, so keep hot-path
/// logging at kTrace/kDebug and guard with ShouldLog when formatting is pricey).
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;
inline bool ShouldLog(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(GetLogLevel());
}

namespace internal {

/// One log statement: accumulates a line, emits it (with level tag, file:line)
/// on destruction. Not for storing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log expression when the level is filtered out.
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace aiacc

#define AIACC_LOG(level)                                                   \
  !::aiacc::ShouldLog(::aiacc::LogLevel::level)                            \
      ? (void)0                                                           \
      : ::aiacc::internal::LogMessageVoidify() &                           \
            ::aiacc::internal::LogMessage(::aiacc::LogLevel::level,        \
                                          __FILE__, __LINE__)

#define LOG_TRACE AIACC_LOG(kTrace)
#define LOG_DEBUG AIACC_LOG(kDebug)
#define LOG_INFO AIACC_LOG(kInfo)
#define LOG_WARN AIACC_LOG(kWarn)
#define LOG_ERROR AIACC_LOG(kError)

/// Invariant check that survives NDEBUG: aborts with a message. Use for
/// protocol invariants whose violation means the simulation state is garbage.
#define AIACC_CHECK(cond)                                                  \
  (static_cast<bool>(cond)                                                 \
       ? (void)0                                                          \
       : ::aiacc::internal::CheckFailed(#cond, __FILE__, __LINE__))

namespace aiacc::internal {
[[noreturn]] void CheckFailed(const char* cond, const char* file, int line);
}  // namespace aiacc::internal
