// Minimal leveled logger. Thread-safe, level-filtered at runtime, writes to
// stderr. Benchmarks default the level to kWarn so tables stay clean.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace aiacc {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

namespace internal {
/// Global minimum level. Inline so ShouldLog compiles to a single relaxed
/// load with no function call — the filtered-out cost of a log statement.
inline std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
}  // namespace internal

inline void SetLogLevel(LogLevel level) noexcept {
  internal::g_log_level.store(static_cast<int>(level),
                              std::memory_order_relaxed);
}
inline LogLevel GetLogLevel() noexcept {
  return static_cast<LogLevel>(
      internal::g_log_level.load(std::memory_order_relaxed));
}
/// The AIACC_LOG macro short-circuits on this *before* constructing the
/// message stream, so a filtered statement's `<<` arguments are never
/// evaluated: the whole statement costs one relaxed load and a branch.
inline bool ShouldLog(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(GetLogLevel());
}

/// Identity a thread attaches to its log lines and trace lane: typically
/// "r<rank>/<role><index>" (e.g. "r2/comm1", "r0/hb") or a bare role for
/// rankless threads. Long-lived runtime threads (engine comm loops,
/// heartbeat, service workers) set this once at startup.
void SetThreadLogContext(int rank, const char* role, int index = -1);
void ClearThreadLogContext();
/// The label composed from the thread's context, or "" when unset.
std::string ThreadLogLabel();

namespace internal {

/// One log statement: accumulates a line, emits it (with level tag, thread
/// label, file:line) on destruction. Not for storing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log expression when the level is filtered out.
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace aiacc

#define AIACC_LOG(level)                                                   \
  !::aiacc::ShouldLog(::aiacc::LogLevel::level)                            \
      ? (void)0                                                           \
      : ::aiacc::internal::LogMessageVoidify() &                           \
            ::aiacc::internal::LogMessage(::aiacc::LogLevel::level,        \
                                          __FILE__, __LINE__)

#define LOG_TRACE AIACC_LOG(kTrace)
#define LOG_DEBUG AIACC_LOG(kDebug)
#define LOG_INFO AIACC_LOG(kInfo)
#define LOG_WARN AIACC_LOG(kWarn)
#define LOG_ERROR AIACC_LOG(kError)

/// Invariant check that survives NDEBUG: aborts with a message. Use for
/// protocol invariants whose violation means the simulation state is garbage.
#define AIACC_CHECK(cond)                                                  \
  (static_cast<bool>(cond)                                                 \
       ? (void)0                                                          \
       : ::aiacc::internal::CheckFailed(#cond, __FILE__, __LINE__))

namespace aiacc::internal {
[[noreturn]] void CheckFailed(const char* cond, const char* file, int line);
}  // namespace aiacc::internal
