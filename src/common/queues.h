// Concurrent queues used by the real-thread transport and the communication
// thread pool:
//   * BlockingQueue<T>  — unbounded MPMC queue with blocking pop and shutdown.
//   * BoundedQueue<T>   — bounded MPMC queue with blocking push/pop (used as
//                         the gradient message queue between the "GPU worker"
//                         and the "MPI process" in the threaded backend).
//   * SpscRing<T>       — wait-free single-producer/single-consumer ring for
//                         per-channel message delivery on hot paths.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace aiacc {

/// Unbounded multi-producer/multi-consumer FIFO. Pop blocks until an item is
/// available or Shutdown() is called (then returns nullopt once drained).
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  void Push(T item) EXCLUDES(mu_) {
    {
      common::MutexLock lock(mu_);
      items_.push_back(std::move(item));
    }
    cv_.NotifyOne();
  }

  /// Blocks until an item arrives or the queue is shut down and empty.
  std::optional<T> Pop() EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    while (items_.empty() && !shutdown_) cv_.Wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// After shutdown, Push is a no-op and Pop drains remaining items then
  /// returns nullopt.
  void Shutdown() EXCLUDES(mu_) {
    {
      common::MutexLock lock(mu_);
      shutdown_ = true;
    }
    cv_.NotifyAll();
  }

  [[nodiscard]] bool IsShutdown() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return shutdown_;
  }

  [[nodiscard]] std::size_t Size() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable common::Mutex mu_{"blocking-queue", common::lock_rank::kQueue};
  common::CondVar cv_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
};

/// Bounded MPMC FIFO: Push blocks when full, Pop blocks when empty.
/// Backpressure from a slow consumer (the comm process) naturally throttles
/// the producer (the training worker), as in the paper's gradient queue.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Returns false if the queue was shut down before space became available.
  bool Push(T item) EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    while (items_.size() >= capacity_ && !shutdown_) not_full_.Wait(lock);
    if (shutdown_) return false;
    items_.push_back(std::move(item));
    lock.Unlock();
    not_empty_.NotifyOne();
    return true;
  }

  std::optional<T> Pop() EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    while (items_.empty() && !shutdown_) not_empty_.Wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.Unlock();
    not_full_.NotifyOne();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.Unlock();
    not_full_.NotifyOne();
    return item;
  }

  void Shutdown() EXCLUDES(mu_) {
    {
      common::MutexLock lock(mu_);
      shutdown_ = true;
    }
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  [[nodiscard]] std::size_t Size() const EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable common::Mutex mu_{"bounded-queue", common::lock_rank::kQueue};
  common::CondVar not_empty_;
  common::CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
};

/// Wait-free SPSC ring buffer (power-of-two capacity). Producer and consumer
/// must each be a single thread. Used for per-channel message slots in the
/// threaded transport, mirroring NCCL's per-connection FIFO.
template <typename T>
class SpscRing {
 public:
  /// `capacity_pow2` must be a power of two >= 2.
  explicit SpscRing(std::size_t capacity_pow2)
      : mask_(capacity_pow2 - 1), slots_(capacity_pow2) {}
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Returns false when full.
  bool TryPush(T item) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;
    slots_[head & mask_] = std::move(item);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Returns nullopt when empty.
  std::optional<T> TryPop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;
    T item = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return item;
  }

  [[nodiscard]] std::size_t SizeApprox() const noexcept {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;  // ordered by the head_/tail_ acquire-release fences
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace aiacc
