// Concurrent queues used by the real-thread transport and the communication
// thread pool:
//   * BlockingQueue<T>  — unbounded MPMC queue with blocking pop and shutdown.
//   * BoundedQueue<T>   — bounded MPMC queue with blocking push/pop (used as
//                         the gradient message queue between the "GPU worker"
//                         and the "MPI process" in the threaded backend).
//   * SpscRing<T>       — wait-free single-producer/single-consumer ring for
//                         per-channel message delivery on hot paths.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace aiacc {

/// Unbounded multi-producer/multi-consumer FIFO. Pop blocks until an item is
/// available or Shutdown() is called (then returns nullopt once drained).
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  void Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Blocks until an item arrives or the queue is shut down and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || shutdown_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// After shutdown, Push is a no-op and Pop drains remaining items then
  /// returns nullopt.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool IsShutdown() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shutdown_;
  }

  [[nodiscard]] std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool shutdown_ = false;
};

/// Bounded MPMC FIFO: Push blocks when full, Pop blocks when empty.
/// Backpressure from a slow consumer (the comm process) naturally throttles
/// the producer (the training worker), as in the paper's gradient queue.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Returns false if the queue was shut down before space became available.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || shutdown_; });
    if (shutdown_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || shutdown_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool shutdown_ = false;
};

/// Wait-free SPSC ring buffer (power-of-two capacity). Producer and consumer
/// must each be a single thread. Used for per-channel message slots in the
/// threaded transport, mirroring NCCL's per-connection FIFO.
template <typename T>
class SpscRing {
 public:
  /// `capacity_pow2` must be a power of two >= 2.
  explicit SpscRing(std::size_t capacity_pow2)
      : mask_(capacity_pow2 - 1), slots_(capacity_pow2) {}
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Returns false when full.
  bool TryPush(T item) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;
    slots_[head & mask_] = std::move(item);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Returns nullopt when empty.
  std::optional<T> TryPop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;
    T item = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return item;
  }

  [[nodiscard]] std::size_t SizeApprox() const noexcept {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace aiacc
