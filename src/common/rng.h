// Deterministic RNG (xoshiro256**) so simulations, tests and benchmarks are
// bit-reproducible across runs and platforms — std::mt19937 distributions are
// not guaranteed identical across standard library implementations.
#pragma once

#include <cstdint>
#include <limits>

namespace aiacc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    auto next = [&seed] {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& s : state_) s = next();
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(NextU64() % span);
  }

  /// Standard normal via Box-Muller (no cached spare: determinism over speed).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate (lambda).
  double Exponential(double rate);

  /// Bernoulli trial.
  bool Chance(double p) { return NextDouble() < p; }

  /// UniformRandomBitGenerator interface, so Rng plugs into std::shuffle.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return NextU64(); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace aiacc
