#include "common/thread_pool.h"

#include "common/logging.h"

namespace aiacc {

ThreadPool::ThreadPool(std::size_t n_threads) {
  AIACC_CHECK(n_threads > 0);
  EnsureWorkers(n_threads);
}

ThreadPool::~ThreadPool() {
  tasks_.Shutdown();
  common::MutexLock lock(threads_mu_);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::EnsureWorkers(std::size_t n) {
  common::MutexLock lock(threads_mu_);
  while (threads_.size() < n) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

std::size_t ThreadPool::size() const {
  common::MutexLock lock(threads_mu_);
  return threads_.size();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    common::MutexLock lock(idle_mu_);
    ++in_flight_;
  }
  tasks_.Push(std::move(task));
}

void ThreadPool::WaitIdle() {
  common::MutexLock lock(idle_mu_);
  while (in_flight_ != 0) idle_cv_.Wait(lock);
}

void ThreadPool::WorkerLoop() {
  while (auto task = tasks_.Pop()) {
    (*task)();
    {
      common::MutexLock lock(idle_mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace aiacc
