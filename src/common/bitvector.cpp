#include "common/bitvector.h"

#include <bit>
#include <cassert>

namespace aiacc {

std::size_t BitVector::Count() const noexcept {
  std::size_t total = 0;
  for (Word w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool BitVector::All() const noexcept { return Count() == n_bits_; }

bool BitVector::None() const noexcept {
  for (Word w : words_) {
    if (w != 0) return false;
  }
  return true;
}

void BitVector::MinCombine(const BitVector& other) noexcept {
  assert(n_bits_ == other.n_bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
  }
}

std::vector<std::size_t> BitVector::SetIndices() const {
  std::vector<std::size_t> out;
  out.reserve(Count());
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    Word w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(wi * kWordBits + static_cast<std::size_t>(bit));
      w &= w - 1;
    }
  }
  return out;
}

std::string BitVector::ToString() const {
  std::string s;
  s.reserve(n_bits_);
  for (std::size_t i = 0; i < n_bits_; ++i) s.push_back(Test(i) ? '1' : '0');
  return s;
}

}  // namespace aiacc
