#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace aiacc {

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Exponential(double rate) {
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -std::log(u) / rate;
}

}  // namespace aiacc
