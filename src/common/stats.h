// Small statistics helpers used by the measurement harness: running moments,
// geometric mean (the paper reports geomean over 5 runs), percentiles, and a
// fixed-width table printer for bench output.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace aiacc {

/// Online mean/variance (Welford) plus min/max.
class RunningStats {
 public:
  void Add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of positive samples; returns 0 for an empty input.
double GeometricMean(const std::vector<double>& xs);

/// p in [0,100]; linear interpolation between order statistics.
double Percentile(std::vector<double> xs, double p);

/// Fixed-width ASCII table used by every bench binary so output diffs are
/// stable. Columns are sized to the widest cell.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Render to stdout.
  void Print() const;
  /// Render to a string (tests).
  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
std::string FormatDouble(double v, int precision = 2);
std::string FormatBytes(double bytes);
std::string FormatRate(double bytes_per_sec);

/// Lock-free instrumentation of the communication hot path: payload buffer
/// allocations (BufferPool misses + legacy copy-path allocations) and
/// condition-variable signal/wakeup counts in the transport. The process
/// global instance aggregates allocation events; `InProcTransport` embeds a
/// per-instance copy for its wake counters so tests can isolate one
/// transport. Benches snapshot before/after a measured region and report
/// deltas (e.g. allocations per all-reduce iteration).
struct HotPathCounters {
  std::atomic<std::uint64_t> payload_allocs{0};  // heap allocations of payload buffers
  std::atomic<std::uint64_t> pool_hits{0};       // BufferPool reuse hits
  std::atomic<std::uint64_t> pool_returns{0};    // buffers handed back
  std::atomic<std::uint64_t> notifies{0};        // CV signals sent by senders
  std::atomic<std::uint64_t> wakeups{0};         // blocked receivers woken
  std::atomic<std::uint64_t> futile_wakeups{0};  // woke with nothing to take

  struct Snapshot {
    std::uint64_t payload_allocs = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t pool_returns = 0;
    std::uint64_t notifies = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t futile_wakeups = 0;
  };
  [[nodiscard]] Snapshot Read() const;
  void Reset();
};

/// Process-wide hot-path counters (allocation events from every pool and
/// legacy copy path).
HotPathCounters& GlobalHotPathCounters();

}  // namespace aiacc
