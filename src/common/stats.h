// Small statistics helpers used by the measurement harness: running moments,
// geometric mean (the paper reports geomean over 5 runs), percentiles, and a
// fixed-width table printer for bench output.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace aiacc {

/// Online mean/variance (Welford) plus min/max.
class RunningStats {
 public:
  void Add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of positive samples; returns 0 for an empty input.
double GeometricMean(const std::vector<double>& xs);

/// p in [0,100]; linear interpolation between order statistics. Copies its
/// input; prefer PercentileInPlace when the caller owns the vector.
double Percentile(std::vector<double> xs, double p);

/// Same percentile, but sorts the caller's vector in place — no copy. After
/// the first call the vector stays sorted, so extracting several quantiles
/// from one sample set (telemetry snapshots pull p50 and p99) costs one
/// sort total.
double PercentileInPlace(std::vector<double>& xs, double p);

/// Fixed-width ASCII table used by every bench binary so output diffs are
/// stable. Columns are sized to the widest cell.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Render to stdout.
  void Print() const;
  /// Render to a string (tests).
  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
std::string FormatDouble(double v, int precision = 2);
std::string FormatBytes(double bytes);
std::string FormatRate(double bytes_per_sec);

}  // namespace aiacc
