#include "common/sync.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace aiacc::common {
namespace sync_internal {
namespace {

/// Locks held by this thread, in acquisition order. A plain vector: the
/// stack is a handful of entries deep (the lock hierarchy has < 10 levels),
/// so the linear scans below are cheaper than any clever structure.
thread_local std::vector<const Mutex*> t_held_locks;

/// Diagnostics bypass the aiacc logger: the log sink is itself one of the
/// tracked locks, and the failing thread may already hold arbitrary locks.
[[noreturn]] void DieWithHeldStack(const char* headline, const Mutex* m) {
  std::fprintf(stderr, "FATAL lock-order violation: %s \"%s\" (rank %d)\n",
               headline, m->name(), m->rank());
  std::fprintf(stderr, "  locks held by this thread (acquisition order):\n");
  for (const Mutex* h : t_held_locks) {
    std::fprintf(stderr, "    \"%s\" (rank %d)\n", h->name(), h->rank());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void CheckAcquire(const Mutex* m) {
  for (const Mutex* h : t_held_locks) {
    if (h == m) {
      DieWithHeldStack("self-deadlock acquiring", m);
    }
  }
  if (m->rank() == kNoRank) return;
  for (const Mutex* h : t_held_locks) {
    if (h->rank() != kNoRank && h->rank() >= m->rank()) {
      std::fprintf(stderr,
                   "FATAL lock-order inversion: acquiring \"%s\" (rank %d) "
                   "while holding \"%s\" (rank %d)\n",
                   m->name(), m->rank(), h->name(), h->rank());
      DieWithHeldStack("inversion detected acquiring", m);
    }
  }
}

void RecordAcquire(const Mutex* m) { t_held_locks.push_back(m); }

void RecordRelease(const Mutex* m) {
  // Locks are usually released LIFO, but overlapping MutexLock scopes may
  // release out of order — scan from the top.
  for (auto it = t_held_locks.rbegin(); it != t_held_locks.rend(); ++it) {
    if (*it == m) {
      t_held_locks.erase(std::next(it).base());
      return;
    }
  }
  DieWithHeldStack("releasing a lock this thread does not hold:", m);
}

std::size_t HeldLockCount() { return t_held_locks.size(); }

}  // namespace sync_internal

void Mutex::Lock() {
#if !defined(AIACC_NO_LOCK_ORDER_CHECKS)
  sync_internal::CheckAcquire(this);
  mu_.lock();
  sync_internal::RecordAcquire(this);
#else
  mu_.lock();
#endif
}

void Mutex::Unlock() {
#if !defined(AIACC_NO_LOCK_ORDER_CHECKS)
  sync_internal::RecordRelease(this);
#endif
  mu_.unlock();
}

}  // namespace aiacc::common
