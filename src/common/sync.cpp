#include "common/sync.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace aiacc::common {
namespace sync_internal {
namespace {

/// Set once this thread's held-lock stack has been destroyed. glibc runs
/// C++ thread_local destructors *before* atexit handlers, and exit-time
/// work (the telemetry dump) legitimately takes ranked locks — so after
/// teardown the detector must become a no-op rather than write through the
/// dead vector. A plain bool is trivially destructible and stays readable
/// for the rest of thread exit.
thread_local bool t_stack_dead = false;

struct HeldStack {
  /// Locks held by this thread, in acquisition order. A plain vector: the
  /// stack is a handful of entries deep (the lock hierarchy has < 10
  /// levels), so the linear scans below are cheaper than any clever
  /// structure.
  std::vector<const Mutex*> locks;
  ~HeldStack() { t_stack_dead = true; }
};

thread_local HeldStack t_held;

/// Diagnostics bypass the aiacc logger: the log sink is itself one of the
/// tracked locks, and the failing thread may already hold arbitrary locks.
[[noreturn]] void DieWithHeldStack(const char* headline, const Mutex* m) {
  std::fprintf(stderr, "FATAL lock-order violation: %s \"%s\" (rank %d)\n",
               headline, m->name(), m->rank());
  std::fprintf(stderr, "  locks held by this thread (acquisition order):\n");
  for (const Mutex* h : t_held.locks) {
    std::fprintf(stderr, "    \"%s\" (rank %d)\n", h->name(), h->rank());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void CheckAcquire(const Mutex* m) {
  if (t_stack_dead) return;
  for (const Mutex* h : t_held.locks) {
    if (h == m) {
      DieWithHeldStack("self-deadlock acquiring", m);
    }
  }
  if (m->rank() == kNoRank) return;
  for (const Mutex* h : t_held.locks) {
    if (h->rank() != kNoRank && h->rank() >= m->rank()) {
      std::fprintf(stderr,
                   "FATAL lock-order inversion: acquiring \"%s\" (rank %d) "
                   "while holding \"%s\" (rank %d)\n",
                   m->name(), m->rank(), h->name(), h->rank());
      DieWithHeldStack("inversion detected acquiring", m);
    }
  }
}

void RecordAcquire(const Mutex* m) {
  if (t_stack_dead) return;
  t_held.locks.push_back(m);
}

void RecordRelease(const Mutex* m) {
  if (t_stack_dead) return;
  // Locks are usually released LIFO, but overlapping MutexLock scopes may
  // release out of order — scan from the top.
  for (auto it = t_held.locks.rbegin(); it != t_held.locks.rend(); ++it) {
    if (*it == m) {
      t_held.locks.erase(std::next(it).base());
      return;
    }
  }
  DieWithHeldStack("releasing a lock this thread does not hold:", m);
}

std::size_t HeldLockCount() {
  return t_stack_dead ? 0 : t_held.locks.size();
}

}  // namespace sync_internal

void Mutex::Lock() {
#if !defined(AIACC_NO_LOCK_ORDER_CHECKS)
  sync_internal::CheckAcquire(this);
  mu_.lock();
  sync_internal::RecordAcquire(this);
#else
  mu_.lock();
#endif
}

void Mutex::Unlock() {
#if !defined(AIACC_NO_LOCK_ORDER_CHECKS)
  sync_internal::RecordRelease(this);
#endif
  mu_.unlock();
}

}  // namespace aiacc::common
