#include "common/buffer_pool.h"

#include <bit>

namespace aiacc::common {

BufferPool::BufferPool(std::size_t max_free_per_class)
    : max_free_per_class_(max_free_per_class) {}

std::size_t BufferPool::ClassCapacity(std::size_t cls) {
  return std::size_t{1} << (cls + kMinClassLog2);
}

std::size_t BufferPool::ClassForRequest(std::size_t n) {
  if (n <= ClassCapacity(0)) return 0;
  const std::size_t log2 = std::bit_width(n - 1);  // ceil(log2(n))
  if (log2 > kMaxClassLog2) return kNumClasses;    // unpoolable
  return log2 - kMinClassLog2;
}

std::size_t BufferPool::ClassForCapacity(std::size_t cap) {
  if (cap < ClassCapacity(0)) return kNumClasses;  // too small to serve any class
  const std::size_t log2 = static_cast<std::size_t>(std::bit_width(cap)) - 1;
  return std::min(log2 - kMinClassLog2, kNumClasses - 1);
}

BufferPool::Buffer BufferPool::Acquire(std::size_t n) {
  const std::size_t cls = ClassForRequest(n);
  if (cls < kNumClasses) {
    SizeClass& sc = classes_[cls];
    MutexLock lock(sc.mu);
    if (!sc.free.empty()) {
      Buffer buffer = std::move(sc.free.back());
      sc.free.pop_back();
      lock.Unlock();
      hits_.fetch_add(1, std::memory_order_relaxed);
      buffer.resize(n);  // capacity >= class size: never reallocates
      return buffer;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Buffer buffer;
  if (cls < kNumClasses) buffer.reserve(ClassCapacity(cls));
  buffer.resize(n);
  return buffer;
}

void BufferPool::Release(Buffer&& buffer) {
  returns_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t cls = ClassForCapacity(buffer.capacity());
  if (cls < kNumClasses) {
    SizeClass& sc = classes_[cls];
    MutexLock lock(sc.mu);
    if (sc.free.size() < max_free_per_class_) {
      sc.free.push_back(std::move(buffer));
      return;
    }
  }
  discarded_.fetch_add(1, std::memory_order_relaxed);
  // buffer freed on scope exit
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.returns = returns_.load(std::memory_order_relaxed);
  s.discarded = discarded_.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  returns_.store(0, std::memory_order_relaxed);
  discarded_.store(0, std::memory_order_relaxed);
}

std::size_t BufferPool::FreeBuffers() const {
  std::size_t total = 0;
  for (const SizeClass& sc : classes_) {
    MutexLock lock(sc.mu);
    total += sc.free.size();
  }
  return total;
}

BufferPool& BufferPool::Global() {
  static BufferPool* pool = new BufferPool();  // never destroyed: transports
  return *pool;  // and engine threads may release during static teardown
}

}  // namespace aiacc::common
