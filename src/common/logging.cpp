#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

#include "common/sync.h"

namespace aiacc {
namespace {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "T";
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

// Rank kLogSink is the bottom of the lock hierarchy: any thread may emit a
// log line while holding any other lock, so nothing may nest inside it.
common::Mutex& SinkMutex() {
  static common::Mutex m{"log-sink", common::lock_rank::kLogSink};
  return m;
}

struct ThreadLogContext {
  int rank = -1;
  const char* role = nullptr;  // literal; nullptr = unset
  int index = -1;
};

thread_local ThreadLogContext t_log_context;

}  // namespace

void SetThreadLogContext(int rank, const char* role, int index) {
  t_log_context = ThreadLogContext{rank, role, index};
}

void ClearThreadLogContext() { t_log_context = ThreadLogContext{}; }

std::string ThreadLogLabel() {
  const ThreadLogContext& ctx = t_log_context;
  if (ctx.role == nullptr && ctx.rank < 0) return "";
  std::string label;
  if (ctx.rank >= 0) {
    label += "r" + std::to_string(ctx.rank);
    if (ctx.role != nullptr) label += "/";
  }
  if (ctx.role != nullptr) {
    label += ctx.role;
    if (ctx.index >= 0) label += std::to_string(ctx.index);
  }
  return label;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level_);
  const std::string label = ThreadLogLabel();
  if (!label.empty()) stream_ << " " << label;
  stream_ << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  common::MutexLock lock(SinkMutex());
  std::fputs(stream_.str().c_str(), stderr);
  std::fputc('\n', stderr);
}

void CheckFailed(const char* cond, const char* file, int line) {
  {
    LogMessage(LogLevel::kError, file, line) << "CHECK failed: " << cond;
  }
  std::abort();
}

}  // namespace internal
}  // namespace aiacc
