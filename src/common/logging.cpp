#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

#include "common/sync.h"

namespace aiacc {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "T";
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

// Rank kLogSink is the bottom of the lock hierarchy: any thread may emit a
// log line while holding any other lock, so nothing may nest inside it.
common::Mutex& SinkMutex() {
  static common::Mutex m{"log-sink", common::lock_rank::kLogSink};
  return m;
}

}  // namespace

void SetLogLevel(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  common::MutexLock lock(SinkMutex());
  std::fputs(stream_.str().c_str(), stderr);
  std::fputc('\n', stderr);
}

void CheckFailed(const char* cond, const char* file, int line) {
  {
    LogMessage(LogLevel::kError, file, line) << "CHECK failed: " << cond;
  }
  std::abort();
}

}  // namespace internal
}  // namespace aiacc
