// Gradient synchronization protocols (paper §V-A-2).
//
// AIACC-Training: fully decentralized — the per-worker MPI processes ring
// all-reduce the gradient synchronization bit-vector with a `min` operator;
// a gradient is agreed ready iff every worker has produced it. Cost is a
// pipelined ring of a tiny payload: 2(n-1) hops, of which only one per host
// boundary crosses the NIC (MPI processes on one host talk via shared
// memory).
//
// Horovod-style baseline: a master (rank 0) collects readiness from every
// worker, computes the intersection, and broadcasts the response. The master
// serializes per-worker message handling and per-tensor response assembly,
// so rounds queue up behind it — the §VIII-C CTR bottleneck.
//
// Both are modeled with analytic per-round costs on the simulation clock
// (their payloads are a few hundred bytes; link contention from sync traffic
// is negligible, the latency/serialization structure is what matters).
#pragma once

#include <functional>
#include <string>

#include "common/bitvector.h"
#include "net/fabric.h"
#include "sim/engine.h"

namespace aiacc::core {

struct SyncParams {
  /// Hop between two MPI processes on the same host (shared memory).
  double shm_hop = 1e-6;
  /// Master-side cost to ingest one worker's readiness message.
  double master_per_message = 5e-6;
  /// Master-side cost per (worker, tensor) readiness entry: the coordinator
  /// parses every worker's per-tensor announcement and assembles per-tensor
  /// responses, so its work is O(world * tensors) per round — the scaling
  /// that melts down on the CTR workload (§VIII-C).
  double master_per_entry = 0.3e-6;
  /// Coordination cycle period of the master-based protocol (Horovod's
  /// HOROVOD_CYCLE_TIME; readiness is only negotiated once per cycle).
  double master_cycle_time = 1e-3;
};

/// Agreement over which gradients are globally ready. Implementations are
/// symmetric-worker models: callers pass the local ready vector, and in a
/// synchronous data-parallel step all workers' vectors are identical, so the
/// agreed set equals the input; what differs across protocols is *when* the
/// agreement lands (the completion delay and its scaling with world size and
/// tensor count).
class SyncProtocol {
 public:
  virtual ~SyncProtocol() = default;

  /// Begin a round for `local_ready`; `done` fires on the simulation engine
  /// with the agreed vector once the protocol completes. Implementations may
  /// queue rounds internally (the master serializes them).
  virtual void StartRound(const BitVector& local_ready,
                          std::function<void(BitVector)> done) = 0;

  [[nodiscard]] virtual std::string Name() const = 0;

  /// Completed rounds (diagnostics / bench output).
  [[nodiscard]] std::uint64_t RoundsCompleted() const noexcept {
    return rounds_completed_;
  }

 protected:
  std::uint64_t rounds_completed_ = 0;
};

/// AIACC's decentralized ring-min protocol.
class DecentralizedSync final : public SyncProtocol {
 public:
  DecentralizedSync(net::CloudFabric& fabric, SyncParams params = {})
      : fabric_(fabric), params_(params) {}

  void StartRound(const BitVector& local_ready,
                  std::function<void(BitVector)> done) override;
  [[nodiscard]] std::string Name() const override { return "decentralized"; }

  /// Analytic one-round latency (also used by tests).
  [[nodiscard]] double RoundCost(std::size_t vector_bytes) const;

 private:
  net::CloudFabric& fabric_;
  SyncParams params_;
};

/// Horovod-style master-coordinated protocol.
class MasterSync final : public SyncProtocol {
 public:
  MasterSync(net::CloudFabric& fabric, SyncParams params = {})
      : fabric_(fabric), params_(params) {}

  void StartRound(const BitVector& local_ready,
                  std::function<void(BitVector)> done) override;
  [[nodiscard]] std::string Name() const override { return "master"; }

  /// Master-side serialized processing time for one round announcing
  /// `ready_tensors` tensors.
  [[nodiscard]] double MasterProcessingCost(std::size_t ready_tensors) const;

 private:
  net::CloudFabric& fabric_;
  SyncParams params_;
  /// Simulated time until which the master thread is busy with earlier
  /// rounds; later rounds queue behind it.
  double master_busy_until_ = 0.0;
};

}  // namespace aiacc::core
