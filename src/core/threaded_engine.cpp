#include "core/threaded_engine.h"

#include <algorithm>
#include <bit>
#include <chrono>

#include "collective/threaded.h"
#include "common/buffer_pool.h"
#include "common/logging.h"
#include "core/sync_bits.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"
#include "telemetry/tracer.h"

namespace aiacc::core {
namespace {

// Tag layout (collective/tags.h is the single source of truth): heartbeats
// own tag 0, sync rounds use the low namespace, and each all-reduce unit
// gets its own channel derived from its (rank-agreed) unit id.
using collective::kHeartbeatTag;
using collective::kSyncTag;
using collective::kUnitRetryEpochs;
using collective::UnitEpochTagBase;

// Degradation-level agreement rides the sync round's bitwise-AND all-reduce
// as one extra payload word: a rank's local level proposal is encoded as a
// unary mask — all-ones with the `level` low bits cleared — so ANDing the
// masks across ranks clears every bit any rank cleared, and the result is
// exactly the mask of the *maximum* proposed level. Every rank decodes the
// same agreed level at the same round, which is what makes it safe to stamp
// into that round's units as a cross-rank pipeline depth. (kBitAnd routes
// arbitrary 32-bit patterns — including the all-ones NaN — bit-exactly.)
float LevelMask(int level) {
  return std::bit_cast<float>(~std::uint32_t{0} << level);
}

int LevelFromMask(float lane) {
  const auto mask = std::bit_cast<std::uint32_t>(lane);
  return mask == 0 ? 31 : std::countr_zero(mask);
}

std::string RankList(const std::vector<int>& ranks) {
  std::string out;
  for (int r : ranks) {
    if (!out.empty()) out += ",";
    out += std::to_string(r);
  }
  return out;
}

}  // namespace

ThreadedAiaccEngine::ThreadedAiaccEngine(int world_size, CommConfig config,
                                         FailureConfig failure)
    : world_size_(world_size),
      config_(config),
      failure_(std::move(failure)),
      metrics_dump_period_ms_(telemetry::MetricsDumpPeriodMs()),
      inproc_(world_size),
      transport_(&inproc_),
      degradation_(failure_.degradation) {
  AIACC_CHECK(world_size >= 1);
  AIACC_CHECK(config_.num_streams >= 1);
  unit_retries_ = &metrics_.GetCounter("engine.unit_retries");
  degradation_.BindTelemetry(&metrics_.GetGauge("engine.degradation_level"),
                             &metrics_.GetCounter("engine.degradations"),
                             &metrics_.GetCounter("engine.restorations"));
  // One long-lived task per service loop: each rank runs an MPI process and
  // `num_streams` communication streams, plus a heartbeat when detection is
  // on and a metrics dumper when periodic dumping is configured. The pool
  // is sized for all of them at once (they block on each other across
  // ranks, so none may wait for a free worker).
  const std::size_t service_tasks =
      static_cast<std::size_t>(world_size) *
          (1 + static_cast<std::size_t>(config_.num_streams)) +
      (failure_.detect_failures && world_size > 1
           ? static_cast<std::size_t>(world_size)
           : 0) +
      (metrics_dump_period_ms_ > 0 ? 1 : 0);
  service_pool_ = std::make_unique<ThreadPool>(service_tasks);
  if (metrics_dump_period_ms_ > 0) {
    service_pool_->Submit([this] { MetricsDumpLoop(); });
  }
  // Transport stack (bottom to top): inproc -> faulty -> reliable. When the
  // reliable layer is on, the fault spec is forced to raw delivery — the
  // reliable layer owns framing/reassembly, and faults must hit its wire
  // frames (so a flipped bit lands in a CRC-protected frame, not in the
  // strict-mode reassembly metadata underneath it).
  if (failure_.faults.has_value()) {
    transport::FaultSpec spec = *failure_.faults;
    if (failure_.reliable_transport) {
      spec.delivery = transport::FaultDelivery::kRaw;
    }
    faulty_ = std::make_unique<transport::FaultyTransport>(inproc_, spec);
    transport_ = faulty_.get();
  }
  if (failure_.reliable_transport) {
    reliable_ = std::make_unique<transport::ReliableTransport>(
        *transport_, failure_.reliable_options);
    transport_ = reliable_.get();
  }
  // Observability tier rides on top of everything: the stamp trailer is
  // appended last on send and stripped first on receive, so the reliable
  // layer's CRC covers it and the layers below never see trailer lanes.
  // trace_messages: -1 auto (stamp iff the tracer records flow-level
  // events right now), 0 off, 1 forced on.
  const bool stamp_messages =
      failure_.trace_messages > 0 ||
      (failure_.trace_messages < 0 &&
       telemetry::RuntimeTracer::Global().enabled(
           telemetry::TraceLevel::kPhase));
  if (stamp_messages) {
    transport::TracingOptions topts;
    topts.rank_skew_ns = failure_.trace_rank_skew_ns;
    tracing_ =
        std::make_unique<transport::TracingTransport>(*transport_, topts);
    transport_ = tracing_.get();
  }
  workers_.reserve(static_cast<std::size_t>(world_size));
  ranks_.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    workers_.emplace_back(new Worker(this, r));
    auto state = std::make_unique<RankState>();
    state->queue = std::make_unique<BoundedQueue<int>>(4096);
    // num_gradients is unknown until Finalize; BindGradientCount fixes the
    // urgent cutoff there, before any service loop can push a unit.
    state->scheduler = std::make_unique<ReadySetScheduler>(SchedulerPolicy{
        config_.priority_urgent_fraction, config_.priority_aging_ms, 0});
    ranks_.push_back(std::move(state));
  }
}

ThreadedAiaccEngine::Worker::Worker(ThreadedAiaccEngine* engine, int rank)
    : engine_(engine), rank_(rank) {
  telemetry::MetricsRegistry& m = engine_->metrics_;
  sync_rounds_ =
      &m.GetCounter(telemetry::RankScoped("engine.sync_rounds", rank));
  sync_payload_floats_ =
      &m.GetCounter(telemetry::RankScoped("engine.sync_payload_floats", rank));
  units_reduced_ =
      &m.GetCounter(telemetry::RankScoped("engine.units_reduced", rank));
  bytes_reduced_ =
      &m.GetCounter(telemetry::RankScoped("engine.bytes_reduced", rank));
  iterations_ =
      &m.GetCounter(telemetry::RankScoped("engine.iterations", rank));
  // 1us .. ~0.5s exponential edges: unit latency spans queue wait + ring
  // all-reduce + scatter.
  unit_latency_ =
      &m.GetHistogram(telemetry::RankScoped("engine.unit_latency_s", rank),
                      telemetry::ExponentialBounds(1e-6, 20));
}

ThreadedAiaccEngine::RankStats ThreadedAiaccEngine::Worker::stats()
    const noexcept {
  RankStats s;
  s.sync_rounds = sync_rounds_->Value();
  s.units_reduced = units_reduced_->Value();
  s.bytes_reduced = bytes_reduced_->Value();
  s.iterations = iterations_->Value();
  return s;
}

void ThreadedAiaccEngine::MetricsDumpLoop() {
  SetThreadLogContext(-1, "metrics-dump");
  const std::string dest = telemetry::GlobalEnvOptions().metrics_dump.empty()
                               ? "stderr"
                               : telemetry::GlobalEnvOptions().metrics_dump;
  using Clock = std::chrono::steady_clock;
  const auto period = std::chrono::milliseconds(metrics_dump_period_ms_);
  auto next_dump = Clock::now() + period;
  while (!shutdown_.load(std::memory_order_acquire) &&
         !aborted_.load(std::memory_order_acquire)) {
    // Sleep in short slices so engine teardown never waits a full period.
    const auto now = Clock::now();
    if (now < next_dump) {
      std::this_thread::sleep_for(
          std::min<Clock::duration>(next_dump - now,
                                    std::chrono::milliseconds(100)));
      continue;
    }
    const Status st = telemetry::DumpMetrics(metrics_.Snapshot(), dest);
    if (!st.ok()) {
      LOG_WARN << "periodic metrics dump failed: " << st.ToString();
      return;
    }
    next_dump += period;
  }
}

ThreadedAiaccEngine::~ThreadedAiaccEngine() { Shutdown(); }

void ThreadedAiaccEngine::Shutdown() {
  if (shutdown_.exchange(true)) return;
  for (auto& state : ranks_) {
    state->queue->Shutdown();
    state->scheduler->Shutdown();
  }
  transport_->Shutdown();
  for (auto& state : ranks_) {
    common::MutexLock lock(state->mu);
    state->cv.NotifyAll();
  }
  // Every service loop observes the signals above and returns; destroying
  // the pool joins its workers.
  service_pool_.reset();
}

Status ThreadedAiaccEngine::health() const {
  if (!aborted_.load(std::memory_order_acquire)) return Status::Ok();
  common::MutexLock lock(abort_mu_);
  return abort_status_;
}

std::vector<int> ThreadedAiaccEngine::SuspectedRanks() const {
  common::MutexLock lock(abort_mu_);
  return suspected_;
}

std::uint64_t ThreadedAiaccEngine::FaultPressure() const {
  std::uint64_t pressure = unit_retries_->Value();
  if (reliable_ != nullptr) {
    const transport::ReliableStats s = reliable_->stats();
    pressure += s.retransmits + s.crc_failures + s.delivery_failures;
  }
  return pressure;
}

void ThreadedAiaccEngine::Abort(Status status, std::vector<int> suspected) {
  AIACC_CHECK(!status.ok());
  telemetry::FlightRecorder& flight = telemetry::FlightRecorder::Global();
  for (int r : suspected) {
    flight.Record(telemetry::FlightSeverity::kError, "engine", "suspect", r);
  }
  flight.Record(telemetry::FlightSeverity::kFatal, "engine", "abort",
                /*rank=*/-1, /*channel=*/-1, /*tag=*/-1,
                /*detail0=*/static_cast<std::int64_t>(status.code()));
  {
    common::MutexLock lock(abort_mu_);
    for (int r : suspected) {
      auto it = std::lower_bound(suspected_.begin(), suspected_.end(), r);
      if (it == suspected_.end() || *it != r) suspected_.insert(it, r);
    }
    if (!aborted_.exchange(true, std::memory_order_acq_rel)) {
      abort_status_ = std::move(status);  // first failure wins
    }
  }
  (void)flight.DumpToEnvDir("abort");  // best effort: logs on failure
  // Wake every blocked party: queue sleepers, collective receivers, and the
  // workers parked in WaitIteration. The engine is dead from here on —
  // recovery means rebuilding a fresh one over the survivors.
  for (auto& state : ranks_) {
    state->queue->Shutdown();
    state->scheduler->Shutdown();
  }
  transport_->Shutdown();
  for (auto& state : ranks_) {
    common::MutexLock lock(state->mu);
    state->cv.NotifyAll();
  }
}

void ThreadedAiaccEngine::HandleCollectiveFailure(int rank,
                                                  const Status& status) {
  if (shutdown_.load(std::memory_order_acquire)) return;  // normal teardown
  telemetry::FlightRecorder::Global().Record(
      telemetry::FlightSeverity::kError, "engine", "collective-failed", rank,
      /*channel=*/-1, /*tag=*/-1,
      /*detail0=*/static_cast<std::int64_t>(status.code()));
  Abort(Status(status.code(), "rank " + std::to_string(rank) +
                                  " collective failed: " + status.message()),
        {});
}

Status ThreadedAiaccEngine::Worker::Register(const std::string& name,
                                             std::span<float> tensor) {
  RankState& state = *engine_->ranks_[static_cast<std::size_t>(rank_)];
  if (state.registry.finalized()) {
    return FailedPrecondition("registration already finalized");
  }
  for (const auto& [existing, span] : state.pending_reg) {
    if (existing == name) return AlreadyExists("gradient '" + name + "'");
  }
  state.pending_reg.emplace_back(name, tensor);
  return Status::Ok();
}

void ThreadedAiaccEngine::Worker::Finalize() {
  RankState& state = *engine_->ranks_[static_cast<std::size_t>(rank_)];
  AIACC_CHECK(!state.pending_reg.empty());
  for (const auto& [name, span] : state.pending_reg) {
    const Status st =
        state.registry.Register(name, span.size() * sizeof(float));
    AIACC_CHECK(st.ok());
  }
  state.registry.Finalize();
  // Tensor lookup by registry id (name-sorted order, identical on every
  // rank — the paper's sorted registration).
  state.tensors.resize(static_cast<std::size_t>(state.registry.size()));
  state.codecs.resize(static_cast<std::size_t>(state.registry.size()));
  state.residuals.resize(static_cast<std::size_t>(state.registry.size()));
  for (const auto& [name, span] : state.pending_reg) {
    auto id = state.registry.IdOf(name);
    AIACC_CHECK(id.ok());
    state.tensors[static_cast<std::size_t>(*id)] = span;
    const compress::CodecSpec spec = engine_->config_.CodecFor(name);
    state.codecs[static_cast<std::size_t>(*id)] = spec;
    if (compress::UsesErrorFeedback(spec.kind)) {
      state.residuals[static_cast<std::size_t>(*id)].assign(span.size(), 0.0f);
    }
  }
  {
    common::MutexLock lock(state.mu);
    state.reduced_bytes.assign(
        static_cast<std::size_t>(state.registry.size()), 0);
  }
  // Fix the urgent-priority cutoff now that the gradient-id space is known
  // (ids are name-sorted and identical on every rank, so every rank derives
  // the same cutoff).
  state.scheduler->BindGradientCount(state.registry.size());
  // Resolve bound parameters to registry order for the streamed optimizer.
  if (state.optimizer != nullptr) {
    state.params.assign(static_cast<std::size_t>(state.registry.size()),
                        std::span<float>{});
    for (const auto& [name, span] : state.pending_params) {
      auto id = state.registry.IdOf(name);
      AIACC_CHECK(id.ok() && "parameter bound for unregistered gradient");
      AIACC_CHECK(span.size() ==
                  state.tensors[static_cast<std::size_t>(*id)].size());
      state.params[static_cast<std::size_t>(*id)] = span;
    }
    for (const auto& p : state.params) {
      AIACC_CHECK(!p.empty() &&
                  "BindOptimizer requires a parameter for every gradient");
    }
  }

  // Wait for every rank before starting the communication threads: the
  // collectives need all participants.
  {
    common::MutexLock lock(engine_->finalize_mu_);
    if (++engine_->finalized_count_ == engine_->world_size_) {
      engine_->finalize_cv_.NotifyAll();
    } else {
      while (engine_->finalized_count_ != engine_->world_size_) {
        engine_->finalize_cv_.Wait(lock);
      }
    }
  }

  engine_->service_pool_->Submit([this] { engine_->MpiProcessLoop(rank_); });
  if (engine_->failure_.detect_failures && engine_->world_size_ > 1) {
    engine_->service_pool_->Submit(
        [this] { engine_->HeartbeatLoop(rank_); });
  }
  for (int s = 0; s < engine_->config_.num_streams; ++s) {
    engine_->service_pool_->Submit(
        [this, s] { engine_->CommThreadLoop(rank_, s); });
  }
}

void ThreadedAiaccEngine::Worker::Push(const std::string& name) {
  RankState& state = *engine_->ranks_[static_cast<std::size_t>(rank_)];
  auto id = state.registry.IdOf(name);
  AIACC_CHECK(id.ok());
  AIACC_TRACE_INSTANT("engine", "grad-ready");
  state.queue->Push(*id);
}

void ThreadedAiaccEngine::Worker::FlushIteration() {
  RankState& state = *engine_->ranks_[static_cast<std::size_t>(rank_)];
  state.queue->Push(kFlush);
}

void ThreadedAiaccEngine::Worker::PushAll() {
  RankState& state = *engine_->ranks_[static_cast<std::size_t>(rank_)];
  for (int id = 0; id < state.registry.size(); ++id) {
    state.queue->Push(id);
  }
  FlushIteration();
}

Status ThreadedAiaccEngine::Worker::WaitIteration() {
  RankState& state = *engine_->ranks_[static_cast<std::size_t>(rank_)];
  common::MutexLock lock(state.mu);
  while (!state.iteration_done &&
         !engine_->aborted_.load(std::memory_order_acquire)) {
    state.cv.Wait(lock);
  }
  if (!state.iteration_done) return engine_->health();
  state.iteration_done = false;
  iterations_->Add();
  return Status::Ok();
}

void ThreadedAiaccEngine::Worker::BindOptimizer(Optimizer* optimizer,
                                                double lr) {
  RankState& state = *engine_->ranks_[static_cast<std::size_t>(rank_)];
  AIACC_CHECK(!state.registry.finalized());
  AIACC_CHECK(optimizer != nullptr);
  state.optimizer = optimizer;
  common::MutexLock lock(state.mu);
  state.lr = lr;
}

void ThreadedAiaccEngine::Worker::BindParameter(const std::string& name,
                                                std::span<float> param) {
  RankState& state = *engine_->ranks_[static_cast<std::size_t>(rank_)];
  AIACC_CHECK(!state.registry.finalized());
  for (const auto& [existing, span] : state.pending_params) {
    AIACC_CHECK(existing != name && "parameter already bound");
  }
  state.pending_params.emplace_back(name, param);
}

void ThreadedAiaccEngine::Worker::SetLearningRate(double lr) {
  RankState& state = *engine_->ranks_[static_cast<std::size_t>(rank_)];
  common::MutexLock lock(state.mu);
  state.lr = lr;
}

Status ThreadedAiaccEngine::Worker::WaitGradient(const std::string& name) {
  RankState& state = *engine_->ranks_[static_cast<std::size_t>(rank_)];
  auto id = state.registry.IdOf(name);
  AIACC_CHECK(id.ok());
  const auto idx = static_cast<std::size_t>(*id);
  const std::size_t bytes = state.registry.Get(*id).bytes;
  common::MutexLock lock(state.mu);
  // `reduced_bytes` is zeroed at the *end* of each iteration (just before
  // iteration_done flips), so between iterations every slot reads 0 and a
  // caller arriving before the next protocol round can never see the
  // previous iteration's full count as "done".
  while (state.reduced_bytes[idx] != bytes && !state.iteration_done &&
         !engine_->aborted_.load(std::memory_order_acquire)) {
    state.cv.Wait(lock);
  }
  if (state.reduced_bytes[idx] == bytes || state.iteration_done) {
    return Status::Ok();
  }
  return engine_->health();
}

SchedulerStats ThreadedAiaccEngine::Worker::scheduler_stats() const {
  return engine_->ranks_[static_cast<std::size_t>(rank_)]->scheduler->stats();
}

void ThreadedAiaccEngine::MpiProcessLoop(int rank) {
  SetThreadLogContext(rank, "mpi");
  // The sync bit-vector is reused across every iteration of this rank's
  // protocol — after the first round the engine's control plane allocates
  // nothing per iteration.
  std::vector<float> sync_scratch;
  while (!shutdown_.load(std::memory_order_acquire) &&
         !aborted_.load(std::memory_order_acquire)) {
    RunIterationProtocol(rank, sync_scratch);
  }
}

void ThreadedAiaccEngine::HeartbeatLoop(int rank) {
  SetThreadLogContext(rank, "hb");
  using Clock = std::chrono::steady_clock;
  const auto interval = std::chrono::duration<double, std::milli>(
      failure_.heartbeat_interval_ms);
  const auto timeout = std::chrono::duration<double, std::milli>(
      failure_.heartbeat_timeout_ms);
  std::vector<Clock::time_point> last_seen(
      static_cast<std::size_t>(world_size_), Clock::now());
  std::uint64_t beat = 0;
  auto prev_loop = Clock::now();
  while (!shutdown_.load(std::memory_order_acquire) &&
         !aborted_.load(std::memory_order_acquire)) {
    // Starvation guard: if *this* thread was descheduled for a large slice
    // of the suspicion window, its staleness view is invalid — peers may
    // have beaten the whole time. Refresh rather than falsely accuse.
    const auto loop_start = Clock::now();
    if (loop_start - prev_loop > timeout / 2) {
      std::fill(last_seen.begin(), last_seen.end(), loop_start);
    }
    prev_loop = loop_start;
    auto& pool = common::BufferPool::Global();
    for (int peer = 0; peer < world_size_; ++peer) {
      if (peer == rank) continue;
      transport::Payload pulse = pool.Acquire(1);
      pulse[0] = static_cast<float>(beat);
      transport_->Send(rank, peer, kHeartbeatTag, std::move(pulse));
    }
    ++beat;
    AIACC_TRACE_INSTANT_V("engine.hb", "heartbeat");
    for (int peer = 0; peer < world_size_; ++peer) {
      if (peer == rank) continue;
      while (auto pulse = transport_->TryRecv(rank, peer, kHeartbeatTag)) {
        last_seen[static_cast<std::size_t>(peer)] = Clock::now();
        pool.Release(std::move(*pulse));
      }
    }

    const auto now = Clock::now();
    std::vector<int> missing;
    bool others_fresh = true;  // every non-missing peer seen recently
    for (int peer = 0; peer < world_size_; ++peer) {
      if (peer == rank) continue;
      const auto silence = now - last_seen[static_cast<std::size_t>(peer)];
      if (silence > timeout) {
        missing.push_back(peer);
      } else if (silence > timeout / 2) {
        others_fresh = false;
      }
    }
    // A minority verdict needs a stable picture: if the remaining peers are
    // also going stale (they are about to cross the deadline too — e.g. we
    // are the isolated one and their clocks just differ by a beat), wait
    // for the next check instead of accusing whoever expired first.
    if (!missing.empty() &&
        (others_fresh ||
         2 * static_cast<int>(missing.size()) > world_size_ - 1)) {
      // Majority of peers silent: more likely *we* are the isolated /
      // crashed node — indict ourselves so survivors and victim converge on
      // the same suspect set.
      if (2 * static_cast<int>(missing.size()) > world_size_ - 1) {
        Abort(Unavailable("rank " + std::to_string(rank) +
                          " isolated: no heartbeat from ranks " +
                          RankList(missing)),
              {rank});
      } else {
        Abort(Unavailable("heartbeat deadline missed by ranks " +
                          RankList(missing)),
              missing);
      }
      return;
    }
    std::this_thread::sleep_for(interval);
  }
}

void ThreadedAiaccEngine::RunIterationProtocol(
    int rank, std::vector<float>& sync_scratch) {
  RankState& state = *ranks_[static_cast<std::size_t>(rank)];
  Worker& worker = *workers_[static_cast<std::size_t>(rank)];
  const int n = state.registry.size();

  // Fresh iteration state. reduced_bytes was zeroed at the end of the
  // previous iteration (not here) so a WaitGradient caller racing ahead of
  // this protocol round never reads a stale full count.
  state.gradients_remaining.store(n, std::memory_order_release);
  // Advance iteration-wide optimizer state (Adam's timestep) before any
  // unit can be pushed: every StepTensor this iteration happens-after this
  // call via the scheduler handoff.
  if (state.optimizer != nullptr) {
    state.optimizer->BeginIteration(state.params);
  }
  StreamingPacker packer(config_.granularity_bytes);
  BitVector local_ready(static_cast<std::size_t>(n));
  int agreed_total = 0;
  bool flush_seen = false;

  // The first pop blocks until the worker produces something (or shutdown).
  auto first = state.queue->Pop();
  if (!first.has_value()) return;  // shutdown
  if (*first != kFlush) {
    local_ready.Set(static_cast<std::size_t>(*first));
  } else {
    flush_seen = true;
  }

  // Bit-packed sync payload: 32 readiness bits per float word (sync_bits.h)
  // instead of one 0/1 float per gradient — a 32x cut in per-round traffic.
  // Under degrade_before_abort one extra word carries the degradation-level
  // proposal (see LevelMask above); the same AND-all-reduce that agrees the
  // ready set then also agrees the max level across ranks, for free.
  const bool degrade = failure_.degrade_before_abort;
  const std::size_t sync_words = SyncWordCount(static_cast<std::size_t>(n));
  const std::size_t payload_words = sync_words + (degrade ? 1 : 0);
  sync_scratch.resize(payload_words);
  std::span<float> sync_vector(sync_scratch.data(), sync_words);
  int agreed_level = 0;
  while (agreed_total < n) {
    // Drain whatever else has been produced.
    while (!flush_seen) {
      auto msg = state.queue->TryPop();
      if (!msg.has_value()) break;
      if (*msg == kFlush) {
        flush_seen = true;
      } else {
        local_ready.Set(static_cast<std::size_t>(*msg));
      }
    }

    // Decentralized synchronization round: AND-all-reduce the bit-packed
    // readiness vector among the MPI processes (the intersection of every
    // rank's ready set, exactly what the old kMin over 0/1 floats
    // computed). Every rank executes the same number of rounds: the agreed
    // count after each round is identical everywhere, and the loop
    // condition depends only on it.
    PackSyncBits(local_ready, sync_vector);
    if (degrade) {
      sync_scratch[sync_words] = LevelMask(degradation_.level());
    }
    collective::Comm comm{transport_, rank, world_size_, kSyncTag,
                          failure_.collective_timeout_ms};
    const Status st = [&] {
      AIACC_TRACE_SPAN("engine", "sync-round");
      return collective::RingAllReduce(comm, std::span<float>(sync_scratch),
                                       collective::ReduceOp::kBitAnd);
    }();
    if (!st.ok()) {
      HandleCollectiveFailure(rank, st);
      return;
    }
    if (shutdown_.load(std::memory_order_acquire) ||
        aborted_.load(std::memory_order_acquire)) {
      return;
    }
    if (degrade) {
      agreed_level = std::min(LevelFromMask(sync_scratch[sync_words]),
                              failure_.degradation.max_level);
    }
    worker.sync_rounds_->Add();
    worker.sync_payload_floats_->Add(payload_words);

    // Gradients agreed by everyone enter the packing stream (in id order,
    // so all ranks build identical units with identical unit ids).
    for (int i = 0; i < n; ++i) {
      if (SyncBitSet(sync_vector, static_cast<std::size_t>(i)) &&
          local_ready.Test(static_cast<std::size_t>(i))) {
        local_ready.Clear(static_cast<std::size_t>(i));
        packer.Add(i, state.registry.Get(i).bytes,
                   state.codecs[static_cast<std::size_t>(i)]);
        ++agreed_total;
      }
    }
    if (agreed_total == n) packer.Flush();
    while (packer.HasReadyUnit()) {
      AllReduceUnit unit = packer.PopReadyUnit();
      if (degrade) {
        // Stamp the *agreed* depth (never the local controller value —
        // ranks disagreeing on a unit's depth would exchange mismatched
        // slice counts and abort, defeating graceful degradation).
        unit.pipeline_depth = DegradationController::DepthAt(
            config_.pipeline_depth, agreed_level);
      }
      state.scheduler->Push(std::move(unit));
    }
    // If nothing new was agreed and production continues, take one blocking
    // message so the loop does not spin on empty rounds.
    if (agreed_total < n && !flush_seen) {
      auto msg = state.queue->Pop();
      if (!msg.has_value()) return;  // shutdown
      if (*msg == kFlush) {
        flush_seen = true;
      } else {
        local_ready.Set(static_cast<std::size_t>(*msg));
      }
    }
  }

  // Consume this iteration's flush marker if the blocking pops above raced
  // ahead of it (all n ids can be agreed before the marker is read); a
  // stale marker must never leak into the next iteration's protocol.
  while (!flush_seen) {
    auto msg = state.queue->Pop();
    if (!msg.has_value()) return;  // shutdown
    AIACC_CHECK(*msg == kFlush && "gradient pushed after all were agreed");
    flush_seen = true;
  }

  // All units are in flight; wait for the stream pool to finish them.
  {
    common::MutexLock lock(state.mu);
    while (state.gradients_remaining.load(std::memory_order_acquire) != 0 &&
           !shutdown_.load(std::memory_order_acquire) &&
           !aborted_.load(std::memory_order_acquire)) {
      state.cv.Wait(lock);
    }
    if (shutdown_.load(std::memory_order_acquire) ||
        aborted_.load(std::memory_order_acquire)) {
      return;
    }
    // Close the iteration: zero the per-gradient progress *before* flipping
    // iteration_done, so once the worker is released every slot already
    // reads "nothing reduced yet" for the next iteration (WaitGradient
    // relies on this ordering).
    std::fill(state.reduced_bytes.begin(), state.reduced_bytes.end(), 0);
    state.iteration_done = true;
  }
  state.cv.NotifyAll();
}

void ThreadedAiaccEngine::CommThreadLoop(int rank, int stream_index) {
  SetThreadLogContext(rank, "comm", stream_index);
  RankState& state = *ranks_[static_cast<std::size_t>(rank)];
  Worker& worker = *workers_[static_cast<std::size_t>(rank)];
  auto& buffer_pool = common::BufferPool::Global();
  const bool degrade = failure_.degrade_before_abort;
  for (;;) {
    // Stream gating: under degradation, high-index streams park instead of
    // claiming units (fewer concurrent rings = less fault surface). Purely
    // local — streams pull from a shared queue, so ranks may disagree on
    // stream counts freely. Stream 0 never parks: progress is guaranteed
    // even at max degradation, and a parked stream's units are simply
    // served by the active ones.
    while (degrade && stream_index > 0 &&
           stream_index >= degradation_.EffectiveStreams(config_.num_streams)) {
      if (shutdown_.load(std::memory_order_acquire) ||
          aborted_.load(std::memory_order_acquire)) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    auto unit = state.scheduler->PopFor(stream_index);
    if (!unit.has_value()) return;
    const auto unit_begin = std::chrono::steady_clock::now();
    // Dispatch telemetry: the queue-wait span (backdated to the push) with
    // the unit's priority, plus an inversion marker when an urgent unit was
    // overtaken by less-urgent dispatches while it waited. trace_analyze.py
    // aggregates these into the per-iteration priority-inversion stat.
    const ReadySetScheduler::PopInfo pop = state.scheduler->last_pop();
    // Keep the UrgentActive preemption hint honest on every exit path
    // (success, collective failure, shutdown): the pop above marked urgent
    // units in-flight, and bulk units elsewhere poll that hint to yield.
    struct UnitDoneGuard {
      ReadySetScheduler* sched;
      int priority;
      ~UnitDoneGuard() { sched->UnitFinished(priority); }
    } unit_done_guard{state.scheduler.get(), pop.priority};
    {
      auto& tracer = telemetry::RuntimeTracer::Global();
      if (tracer.enabled(telemetry::TraceLevel::kPhase)) {
        const std::int64_t now = tracer.NowNs();
        const std::int64_t waited = pop.pop_ns - pop.push_ns;
        tracer.RecordSpan("engine.sched", "unit.wait", now - waited, now,
                          static_cast<int>(unit->unit_id), "priority",
                          pop.priority);
        if (pop.urgent && pop.bypassed > 0) {
          tracer.RecordInstant("engine.sched", "sched.inversion",
                               static_cast<int>(unit->unit_id), "bypassed",
                               pop.bypassed);
        }
      }
    }
    AIACC_TRACE_SPAN_IDX("engine.unit", "unit",
                         static_cast<int>(unit->unit_id));
    const std::size_t bytes = unit->TotalBytes();
    AIACC_CHECK(bytes % sizeof(float) == 0);
    // Pooled staging: across iterations the same few buffers cycle through
    // gather -> all-reduce -> scatter, so steady state allocates nothing.
    std::vector<float> staging = buffer_pool.Acquire(bytes / sizeof(float));
    // Sparse codecs carry an error-feedback residual alongside the data.
    // It is staged exactly like the tensors: gathered fresh per attempt
    // (CompressedAllReduce mutates its residual span before the ring runs,
    // so a failed attempt must restart from the persistent copy) and
    // scattered back only after success.
    const bool sparse_unit = compress::IsSparse(unit->codec.kind);
    std::vector<float> residual_staging;
    if (sparse_unit) {
      residual_staging = buffer_pool.Acquire(bytes / sizeof(float));
    }

    // Attempt loop (tier 2.5): a failed all-reduce is retried in-band on a
    // fresh tag epoch at depth 1 instead of aborting outright. Collective
    // failures are symmetric (every rank of the wedged ring times out), so
    // per-rank epoch counters advance in lockstep and all ranks meet again
    // on the same retry namespace; the old epoch's tags are never reused,
    // so stale half-ring messages from the failed attempt are inert.
    const int max_attempts =
        degrade ? 1 + std::max(0, failure_.max_unit_retries) : 1;
    Status st;
    int epoch = 0;  // outlives the loop: names the failing tag on abort
    for (int attempt = 0;; ++attempt) {
      // (Re-)gather the unit's slice of each gradient into staging. The
      // tensors are untouched until a successful scatter, so every attempt
      // restarts from pristine inputs.
      {
        std::vector<std::span<const std::byte>> views;
        views.reserve(state.tensors.size());
        for (auto t : state.tensors) {
          views.push_back(std::as_bytes(t));
        }
        GatherUnit(*unit, views,
                   std::as_writable_bytes(std::span<float>(staging)));
      }
      if (sparse_unit) {
        std::vector<std::span<const std::byte>> views;
        views.reserve(state.residuals.size());
        for (auto& r : state.residuals) {
          views.push_back(std::as_bytes(std::span<const float>(r)));
        }
        GatherUnit(*unit, views,
                   std::as_writable_bytes(std::span<float>(residual_staging)));
      }

      epoch = 0;
      if (degrade) {
        common::MutexLock lock(state.mu);
        epoch = state.unit_tag_epoch[unit->unit_id];
      }
      // One concurrent all-reduce per unit, on the unit's own (epoch-fresh)
      // tag channel — this thread is one "communication stream" of
      // Algorithm 1.
      collective::Comm comm{transport_, rank, world_size_,
                            UnitEpochTagBase(unit->unit_id, epoch),
                            failure_.collective_timeout_ms};
      // Attempt 0 runs at the depth agreed by the sync protocol (stamped on
      // the unit; 0 = engine default). Retries always run unpipelined —
      // the retry decision is per-rank-symmetric but not *agreed*, so depth
      // 1 is the only value every rank can assume without coordination.
      if (attempt == 0) {
        comm.pipeline_depth = unit->pipeline_depth > 0 ? unit->pipeline_depth
                                                       : config_.pipeline_depth;
      } else {
        comm.pipeline_depth = 1;
      }
      // The unit's agreed wire codec (stamped by the packer from the shared
      // config; identical on every rank, like pipeline_depth).
      comm.codec = unit->codec;
      // Cooperative preemption: a non-urgent bulk unit checks between
      // pipeline slices whether an urgent collective is currently in
      // flight on another stream and briefly parks so the urgent ring gets
      // the transport. The predicate is "urgent RUNNING", not "urgent
      // queued": when every stream holds bulk, a queued urgent unit cannot
      // start and yielding would stall them all (plus their ring peers)
      // for nothing. The budget caps the total parked time per unit at
      // ~160 us: the nudge tilts transport interleaving toward the urgent
      // ring, but every bulk unit the engine delays extends the iteration
      // tail directly (WaitIteration needs ALL units), and collectives are
      // distributed — an unbounded one-rank yield transitively stalls
      // peers whose own hint says "don't yield". Timing-only, so results
      // stay bit-identical; the check itself is one relaxed atomic load.
      struct YieldCtx {
        ReadySetScheduler* sched;
        int budget;
      };
      YieldCtx yield_ctx{state.scheduler.get(), 16};
      if (state.scheduler->policy().enabled() && !pop.urgent) {
        comm.slice_yield = [](void* raw) {
          auto* ctx = static_cast<YieldCtx*>(raw);
          while (ctx->budget > 0 && ctx->sched->UrgentActive()) {
            --ctx->budget;
            std::this_thread::sleep_for(std::chrono::microseconds(10));
          }
        };
        comm.slice_yield_ctx = &yield_ctx;
      }
      if (sparse_unit) {
        // Sparse codecs need the error-feedback residual and use one
        // record-all-gather regardless of algorithm/depth.
        st = collective::CompressedAllReduce(
            comm, staging, collective::ReduceOp::kAvg,
            std::span<float>(residual_staging));
      } else if (attempt == 0 &&
                 config_.algorithm == collective::Algorithm::kHierarchical &&
                 world_size_ % 2 == 0 && world_size_ > 2) {
        st = collective::HierarchicalAllReduce(comm, /*gpus_per_host=*/2,
                                               staging,
                                               collective::ReduceOp::kAvg);
      } else {
        st = collective::RingAllReduce(comm, staging,
                                       collective::ReduceOp::kAvg);
      }
      if (st.ok()) {
        if (degrade) degradation_.RecordSuccess();
        break;
      }
      if (!degrade || shutdown_.load(std::memory_order_acquire) ||
          aborted_.load(std::memory_order_acquire) ||
          st.code() == StatusCode::kUnavailable) {
        break;  // teardown/abort — retrying a dead transport is pointless
      }
      degradation_.RecordFailure();
      if (attempt + 1 >= max_attempts) break;
      bool epochs_left = true;
      {
        common::MutexLock lock(state.mu);
        int& e = state.unit_tag_epoch[unit->unit_id];
        if (e + 1 >= kUnitRetryEpochs) {
          epochs_left = false;  // retry namespace exhausted -> tier 3
        } else {
          ++e;
        }
      }
      if (!epochs_left) break;
      unit_retries_->Add();
      telemetry::FlightRecorder::Global().Record(
          telemetry::FlightSeverity::kWarn, "engine", "unit-retry", rank,
          /*channel=*/-1, UnitEpochTagBase(unit->unit_id, epoch),
          /*detail0=*/unit->unit_id, /*detail1=*/epoch);
      AIACC_TRACE_INSTANT_V("engine.unit", "unit-retry");
      LOG_INFO << "rank " << rank << " retrying unit " << unit->unit_id
               << " (attempt " << attempt + 1 << "): " << st.ToString();
    }
    if (!st.ok()) {
      buffer_pool.Release(std::move(staging));
      if (sparse_unit) buffer_pool.Release(std::move(residual_staging));
      telemetry::FlightRecorder::Global().Record(
          telemetry::FlightSeverity::kError, "engine", "unit-failed", rank,
          /*channel=*/-1, UnitEpochTagBase(unit->unit_id, epoch),
          /*detail0=*/unit->unit_id, /*detail1=*/epoch);
      HandleCollectiveFailure(rank, st);
      return;
    }
    if (shutdown_.load(std::memory_order_acquire) ||
        aborted_.load(std::memory_order_acquire)) {
      buffer_pool.Release(std::move(staging));
      if (sparse_unit) buffer_pool.Release(std::move(residual_staging));
      return;
    }

    // Scatter the averaged bytes back and account for completed gradients.
    int completed = 0;
    {
      common::MutexLock lock(state.mu);
      std::vector<std::span<std::byte>> views;
      views.reserve(state.tensors.size());
      for (auto t : state.tensors) {
        views.push_back(std::as_writable_bytes(t));
      }
      ScatterUnit(*unit, std::as_bytes(std::span<const float>(staging)),
                  views);
      if (sparse_unit) {
        // Commit the updated error-feedback residual only now that the
        // collective succeeded (a retried attempt must not see a residual
        // that was already consumed by a failed ring).
        std::vector<std::span<std::byte>> rviews;
        rviews.reserve(state.residuals.size());
        for (auto& r : state.residuals) {
          rviews.push_back(std::as_writable_bytes(std::span<float>(r)));
        }
        ScatterUnit(*unit,
                    std::as_bytes(std::span<const float>(residual_staging)),
                    rviews);
      }
      for (const UnitSegment& seg : unit->segments) {
        const auto gid = static_cast<std::size_t>(seg.gradient_id);
        auto& done = state.reduced_bytes[gid];
        done += seg.length;
        if (done == state.registry.Get(seg.gradient_id).bytes) {
          ++completed;
          // Optimizer/comm overlap: step this parameter now, under mu,
          // while the other streams keep reducing the remaining units. The
          // gradient tensor holds the averaged value after ScatterUnit.
          if (state.optimizer != nullptr) {
            AIACC_TRACE_SPAN_IDX("engine.opt", "step-tensor",
                                 seg.gradient_id);
            state.optimizer->StepTensor(gid, state.params[gid],
                                        state.tensors[gid], state.lr);
          }
        }
      }
      worker.units_reduced_->Add();
      worker.bytes_reduced_->Add(bytes);
    }
    buffer_pool.Release(std::move(staging));
    if (sparse_unit) buffer_pool.Release(std::move(residual_staging));
    worker.unit_latency_->Record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      unit_begin)
            .count());
    if (completed > 0) {
      // Notify on *every* batch of completed gradients (not only the last):
      // WaitGradient callers sleep on the same condvar as the protocol's
      // end-of-iteration wait.
      state.gradients_remaining.fetch_sub(completed,
                                          std::memory_order_acq_rel);
      state.cv.NotifyAll();
    }
  }
}

}  // namespace aiacc::core
