#include "core/perseus.h"

#include <thread>

#include "common/logging.h"
#include "core/compression.h"

namespace aiacc::perseus {

Session::Session(std::shared_ptr<Context> context, int rank)
    : context_(std::move(context)), rank_(rank) {
  AIACC_CHECK(context_ != nullptr);
  AIACC_CHECK(rank_ >= 0 && rank_ < context_->world_size());
}

void Session::AllReduce(std::span<float> data, int num_channels,
                        collective::ReduceOp op) {
  collective::Comm comm;
  comm.transport = &context_->transport();
  comm.rank = rank_;
  comm.world_size = size();
  // All ranks advance tags in lockstep (collective calls are ordered, as in
  // MPI communicators), so namespaces never collide across operations. The
  // cursor advances by one channel stride per channel plus one for the
  // fallback single-ring namespace (collective/tags.h).
  comm.tag_base = next_tag_;
  next_tag_ += collective::kChannelTagStride * (num_channels + 1);
  const Status st =
      collective::MultiChannelAllReduce(comm, data, op, num_channels);
  AIACC_CHECK(st.ok() && "session all-reduce failed");
}

void Session::AllReduceFp16(std::span<float> data, int num_channels) {
  core::QuantizeToHalfInPlace(data);
  AllReduce(data, num_channels, collective::ReduceOp::kAvg);
}

void Session::BroadcastParameters(const std::vector<std::span<float>>& params,
                                  int root) {
  for (const std::span<float>& p : params) {
    collective::Comm comm;
    comm.transport = &context_->transport();
    comm.rank = rank_;
    comm.world_size = size();
    comm.tag_base = next_tag_;
    next_tag_ += collective::kTagsPerCollective + 1;
    const Status st = collective::Broadcast(comm, root, p);
    AIACC_CHECK(st.ok() && "session broadcast failed");
  }
}

void Session::Barrier() {
  const Status st = context_->transport().Barrier();
  AIACC_CHECK(st.ok() && "barrier interrupted");
}

core::NanReport Session::AllReduceGradients(
    const std::vector<std::span<float>>& grads, int num_channels,
    bool allow_nan) {
  std::vector<std::span<const float>> views(grads.begin(), grads.end());
  core::NanReport report = core::CheckForNan(views);
  if (!report.Clean() && !allow_nan) {
    LOG_ERROR << "rank " << rank_ << ": NaN/Inf detected in "
              << report.entries.size() << " gradient element(s); skipping "
              << "aggregation";
    // Keep collective ordering consistent across ranks: tags must advance
    // even when this rank skips, so other ranks' operations don't mismatch.
    next_tag_ += collective::kChannelTagStride * (num_channels + 1) *
                 static_cast<int>(grads.size());
    return report;
  }
  for (const std::span<float>& g : grads) {
    AllReduce(g, num_channels, collective::ReduceOp::kAvg);
  }
  return report;
}

void RunRanks(int world_size, const std::function<void(Session&)>& body) {
  auto context = std::make_shared<Context>(world_size);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    threads.emplace_back([context, r, &body] {
      Session session(context, r);
      body(session);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace aiacc::perseus
