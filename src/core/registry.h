// Gradient registration (paper §V-A-1). When a model loads, every worker
// registers its parameters; parameters are sorted and assigned a unique
// index into the gradient synchronization vector, giving all workers an
// identical id space and an implicitly agreed communication order.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "dnn/model.h"

namespace aiacc::core {

struct RegisteredGradient {
  int id = 0;
  std::string name;
  std::size_t bytes = 0;
};

class GradientRegistry {
 public:
  /// Register one parameter tensor; call once per tensor, then Finalize().
  /// Duplicate names are rejected (two workers registering differently is a
  /// deployment bug the production library reports early).
  Status Register(const std::string& name, std::size_t bytes);

  /// Sorts by name and assigns dense ids. No further registration allowed.
  void Finalize();

  /// Build a finalized registry straight from a model descriptor. Note that
  /// registry ids are assigned in name-sorted order and therefore differ
  /// from the descriptor's layer-order gradient ids; engines map between the
  /// two via gradient names.
  static GradientRegistry FromModel(const dnn::ModelDescriptor& model,
                                    dnn::DType wire_dtype = dnn::DType::kF32);

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(gradients_.size());
  }
  [[nodiscard]] const RegisteredGradient& Get(int id) const {
    return gradients_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const std::vector<RegisteredGradient>& All() const noexcept {
    return gradients_;
  }
  [[nodiscard]] Result<int> IdOf(const std::string& name) const;

  [[nodiscard]] std::size_t TotalBytes() const noexcept { return total_bytes_; }

  /// Byte size of the gradient synchronization vector (one bit per
  /// gradient, rounded up to whole words) — the sync protocol's wire cost.
  [[nodiscard]] std::size_t SyncVectorBytes() const noexcept {
    return (gradients_.size() + 7) / 8;
  }

 private:
  std::vector<RegisteredGradient> gradients_;
  std::size_t total_bytes_ = 0;
  bool finalized_ = false;
};

}  // namespace aiacc::core
