// Communication hyperparameters that AIACC-Training auto-tunes at runtime
// (§VI): the number of concurrent communication streams, the gradient
// communication granularity (all-reduce unit size), and the all-reduce
// algorithm. These form the search space of the auto-tuner.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "collective/simulated.h"
#include "compress/codec.h"

namespace aiacc::core {

struct CommConfig {
  /// Concurrent communication streams (CUDA streams in the paper). The
  /// tuner explores 1..32; deployments settle between 2 and 24 (§VIII-D).
  int num_streams = 8;
  /// Target all-reduce unit size in bytes: ready gradients are packed (small
  /// tensors merged, large tensors split) to this granularity.
  std::size_t granularity_bytes = 8u << 20;
  /// Ring vs hierarchical ("tree") all-reduce.
  collective::Algorithm algorithm = collective::Algorithm::kRing;
  /// Minimum locally-buffered bytes before a synchronization round is
  /// triggered (the "minimum communication granularity" of §V-A).
  std::size_t min_bucket_bytes = 1u << 20;
  /// Ring-slice pipeline depth (collective::Comm::pipeline_depth): how many
  /// slices of each ring step stay concurrently in flight per channel, so
  /// the receive-side reduce overlaps the next slice's transport wait.
  /// Bit-identical at every depth; the default pipelines the engine's unit
  /// rings without changing any numerics.
  int pipeline_depth = 4;
  /// Default wire codec for gradient collectives (compress/codec.h): the
  /// global config dimension the grid/PBT/Bayes searchers explore. kNone
  /// keeps the raw-fp32 wire.
  compress::CodecSpec codec{};
  /// Per-tensor codec overrides by gradient name, the output of the
  /// per-tensor bandit (compress/tuner.h): a sparse embedding gradient can
  /// run top-k while dense layers run fp16. Applied by name on every rank —
  /// gradient registration order is deterministic, so all ranks resolve the
  /// same codec for the same tensor. Kept sorted-insertion-free (small
  /// linear list; models have few distinct override targets).
  std::vector<std::pair<std::string, compress::CodecSpec>> codec_overrides;
  /// Priority dispatch (core/scheduler.h): the fraction of the gradient-id
  /// space counted as urgent — the front layers the next forward consumes
  /// first. 0 disables the ready-set scheduler (pure FIFO dispatch, no
  /// preemption): the scheduler-off arm of the bench A/B. Dispatch order
  /// never changes numerics, so every value is bit-identical.
  float priority_urgent_fraction = 0.25f;
  /// Starvation/latency aging window for the ready set: entries older than
  /// this outrank everything younger on the priority streams.
  int priority_aging_ms = 50;

  /// Codec for gradient `name`: its override when present, else `codec`.
  [[nodiscard]] compress::CodecSpec CodecFor(const std::string& name) const;

  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const CommConfig&, const CommConfig&) = default;
};

/// The discrete search space used by the auto-tuner and benches.
struct CommConfigSpace {
  std::vector<int> stream_options = {1, 2, 4, 8, 12, 16, 24, 32};
  std::vector<std::size_t> granularity_options = {
      1u << 20, 2u << 20, 4u << 20, 8u << 20, 16u << 20, 32u << 20, 64u << 20};
  std::vector<collective::Algorithm> algorithm_options = {
      collective::Algorithm::kRing, collective::Algorithm::kHierarchical};
  std::vector<int> pipeline_depth_options = {1, 2, 4, 8};
  /// Wire codecs the global searchers explore. Axes are appended to the
  /// mixed-radix flat index in the order they were introduced (codec, then
  /// the priority axes), so indices below an older space size map to
  /// exactly the configurations they did before the newer axes existed.
  std::vector<compress::CodecSpec> codec_options = {
      compress::CodecSpec{compress::CodecKind::kNone},
      compress::CodecSpec{compress::CodecKind::kFp16},
      compress::CodecSpec{compress::CodecKind::kOneBit},
      compress::CodecSpec{compress::CodecKind::kTopK, 0.01f}};
  /// Priority-dispatch axes (appended after the codec axis in the
  /// mixed-radix flat index, so pre-existing indices map to exactly the
  /// configurations they did before — the tuning-cache v4 rule). 0 = the
  /// FIFO baseline stays searchable.
  /// 1.0 = the whole id space is the urgent class: full forward-order
  /// transmission (the paper's layer-priority scheme, strongest overlap).
  std::vector<float> priority_urgent_options = {0.0f, 0.25f, 0.5f, 1.0f};
  std::vector<int> priority_aging_options = {10, 50, 200};

  [[nodiscard]] std::size_t NumPoints() const noexcept {
    return stream_options.size() * granularity_options.size() *
           algorithm_options.size() * pipeline_depth_options.size() *
           codec_options.size() * priority_urgent_options.size() *
           priority_aging_options.size();
  }
  /// Enumerate every configuration (grid order).
  [[nodiscard]] std::vector<CommConfig> AllConfigs() const;
  /// Map a flat index to a configuration (for samplers).
  [[nodiscard]] CommConfig ConfigAt(std::size_t index) const;
};

}  // namespace aiacc::core
