// Fault tolerance (paper §IV): checkpoint the training state so a failed
// run restarts from the last checkpoint, and elastic deployment support that
// seeds newly-joined workers with the current parameters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace aiacc::core {

struct Checkpoint {
  std::int64_t iteration = 0;
  double learning_rate = 0.0;
  std::vector<std::vector<float>> parameters;
  std::vector<std::vector<float>> optimizer_state;
};

/// Serialize with a magic header, format version and a trailing checksum so
/// a truncated/corrupt file (the node died mid-write) is detected instead of
/// silently restoring garbage.
std::vector<std::uint8_t> SerializeCheckpoint(const Checkpoint& ckpt);
Result<Checkpoint> DeserializeCheckpoint(
    const std::vector<std::uint8_t>& bytes);

/// File round-trip (atomic: writes to "<path>.tmp" then renames).
Status SaveCheckpoint(const Checkpoint& ckpt, const std::string& path);
Result<Checkpoint> LoadCheckpoint(const std::string& path);

}  // namespace aiacc::core
