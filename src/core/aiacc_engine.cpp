#include "core/aiacc_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace aiacc::core {

AiaccEngine::AiaccEngine(WorkloadSetup setup, CommConfig config,
                         SyncParams sync_params)
    : DdlEngine(setup),
      config_(config),
      registry_(GradientRegistry::FromModel(*setup.model, setup.wire_dtype)),
      sync_(*setup.fabric, sync_params),
      packer_(config.granularity_bytes) {
  // Map registry ids (name-sorted) to the model's backward ready schedule.
  ready_offset_.assign(static_cast<std::size_t>(registry_.size()), 0.0);
  for (const dnn::GradientSpec& g : setup_.model->gradients()) {
    auto id = registry_.IdOf(g.name);
    AIACC_CHECK(id.ok());
    ready_offset_[static_cast<std::size_t>(*id)] =
        profile_.ready_time[static_cast<std::size_t>(g.id)];
  }
  reduced_bytes_.assign(static_cast<std::size_t>(registry_.size()), 0);
}

void AiaccEngine::SetConfig(const CommConfig& config) {
  AIACC_CHECK(iter_.on_done == nullptr && "reconfigure only between iterations");
  config_ = config;
  packer_ = StreamingPacker(config.granularity_bytes);
}

int AiaccEngine::EffectiveStreamLimit() const {
  const bool compute_active = !iter_.backward_done;
  const double busy =
      compute_active ? setup_.model->SmBusyFraction() : 0.0;
  return std::min(config_.num_streams,
                  setup_.gpu.UsableCommStreams(busy));
}

void AiaccEngine::RunIteration(std::function<void(IterationStats)> on_done) {
  AIACC_CHECK(iter_.on_done == nullptr && "iteration already in flight");
  iter_ = IterationState{};
  iter_.start_time = Sim().Now();
  iter_.on_done = std::move(on_done);
  iter_.local_ready = BitVector(static_cast<std::size_t>(registry_.size()));
  iter_.gradients_remaining = registry_.size();
  iter_.bytes_remaining = registry_.TotalBytes();
  packer_.Reset();
  std::fill(reduced_bytes_.begin(), reduced_bytes_.end(), 0);

  // Forward compute, then backward produces gradients on the schedule
  // (per-iteration compute jitter models run-to-run hardware variance).
  const double jitter = NextComputeJitter();
  const double backward_start =
      iter_.start_time + profile_.forward_time * jitter;
  iter_.backward_end = backward_start + profile_.backward_time * jitter;
  for (int id = 0; id < registry_.size(); ++id) {
    const double t = backward_start +
                     ready_offset_[static_cast<std::size_t>(id)] * jitter;
    Sim().ScheduleAt(t, [this, id] { OnGradientReady(id); });
  }
  if (setup_.tracer != nullptr) {
    setup_.tracer->AddSpan("compute", "forward", iter_.start_time,
                           backward_start);
    setup_.tracer->AddSpan("compute", "backward", backward_start,
                           iter_.backward_end);
  }
  // Backward completion: flush any remainder below the sync threshold and
  // re-evaluate the stream limit (compute kernels have left the SMs).
  Sim().ScheduleAt(iter_.backward_end, [this] {
    iter_.backward_done = true;
    MaybeStartSyncRound(/*flush=*/true);
    Dispatch();
  });
}

void AiaccEngine::OnGradientReady(int registry_id) {
  // The training worker's hook pushes the gradient into the CUDA-MPI aware
  // gradient queue; the MPI process marks the synchronization vector.
  iter_.local_ready.Set(static_cast<std::size_t>(registry_id));
  iter_.pending_sync_bytes += registry_.Get(registry_id).bytes;
  MaybeStartSyncRound(/*flush=*/false);
}

void AiaccEngine::MaybeStartSyncRound(bool flush) {
  if (iter_.sync_in_flight) return;
  if (iter_.local_ready.None()) return;
  if (!flush && !iter_.backward_done &&
      iter_.pending_sync_bytes < config_.min_bucket_bytes) {
    return;
  }
  iter_.sync_in_flight = true;
  ++iter_.stats.sync_rounds;
  BitVector to_sync = iter_.local_ready;
  // Gradients entering this round leave the local-pending set; they are
  // owned by the sync round until agreement.
  iter_.local_ready.Reset();
  iter_.pending_sync_bytes = 0;
  const double round_start = Sim().Now();
  sync_.StartRound(to_sync, [this, round_start](BitVector agreed) {
    iter_.sync_in_flight = false;
    if (setup_.tracer != nullptr) {
      setup_.tracer->AddSpan("sync", "bitvector round", round_start,
                             Sim().Now());
    }
    OnSyncAgreed(agreed);
    // More gradients may have landed while the round was in flight.
    MaybeStartSyncRound(/*flush=*/iter_.backward_done);
  });
}

void AiaccEngine::OnSyncAgreed(const BitVector& agreed) {
  // Agreed gradients join the packing stream; complete units become
  // dispatchable immediately, the trailing partial waits for more gradients
  // (or the end-of-backward flush), exactly like the fusion behaviour of
  // production libraries — sync-round boundaries do not fragment units.
  for (std::size_t i : agreed.SetIndices()) {
    const int id = static_cast<int>(i);
    packer_.Add(id, registry_.Get(id).bytes);
    ++iter_.synced_gradients;
  }
  if (iter_.synced_gradients == registry_.size()) packer_.Flush();
  Dispatch();
}

void AiaccEngine::Dispatch() {
  // Algorithm 1: hand all-reduce units to free communication threads; stop
  // when the pool (or the GPU's schedulable stream budget) is exhausted.
  const int limit = EffectiveStreamLimit();
  while (iter_.active_streams < limit && packer_.HasReadyUnit()) {
    AllReduceUnit unit = packer_.PopReadyUnit();
    ++iter_.active_streams;
    iter_.stats.max_concurrent_streams =
        std::max(iter_.stats.max_concurrent_streams, iter_.active_streams);
    ++iter_.stats.allreduce_units;

    const std::size_t unit_bytes = unit.TotalBytes();
    // Stream-slot assignment (for the execution trace): lowest free slot.
    int slot = -1;
    if (setup_.tracer != nullptr) {
      for (std::size_t i = 0; i < stream_slot_busy_.size(); ++i) {
        if (!stream_slot_busy_[i]) {
          slot = static_cast<int>(i);
          break;
        }
      }
      if (slot < 0) {
        slot = static_cast<int>(stream_slot_busy_.size());
        stream_slot_busy_.push_back(false);
      }
      stream_slot_busy_[static_cast<std::size_t>(slot)] = true;
    }
    const double dispatch_time = Sim().Now();
    const std::uint64_t unit_id = unit.unit_id;
    // Count gradients completed by this unit (for bookkeeping a gradient is
    // done when all its bytes have been reduced).
    collective::SimCollectives::Unit sim_unit;
    sim_unit.bytes_per_rank = static_cast<double>(unit_bytes);
    sim_unit.op = collective::ReduceOp::kAvg;
    sim_unit.algorithm = config_.algorithm;
    sim_unit.on_done = [this, unit_bytes, slot, dispatch_time, unit_id,
                        segments = unit.segments](double) {
      if (setup_.tracer != nullptr && slot >= 0) {
        setup_.tracer->AddSpan(
            "stream " + std::to_string(slot),
            "unit " + std::to_string(unit_id) + " (" +
                std::to_string(unit_bytes >> 10) + " KiB)",
            dispatch_time, Sim().Now());
        stream_slot_busy_[static_cast<std::size_t>(slot)] = false;
      }
      int whole = 0;
      for (const UnitSegment& seg : segments) {
        auto& done = reduced_bytes_[static_cast<std::size_t>(seg.gradient_id)];
        done += seg.length;
        if (done == registry_.Get(seg.gradient_id).bytes) ++whole;
      }
      OnUnitComplete(unit_bytes, whole);
    };
    // Kernel launch overhead before the collective begins.
    Sim().ScheduleAfter(setup_.gpu.params().kernel_launch_overhead,
                        [this, u = std::move(sim_unit)]() mutable {
                          setup_.collectives->Start(std::move(u));
                        });
  }
}

void AiaccEngine::OnUnitComplete(std::size_t unit_bytes,
                                 int num_whole_gradients) {
  --iter_.active_streams;
  iter_.gradients_remaining -= num_whole_gradients;
  iter_.bytes_remaining -= std::min(iter_.bytes_remaining, unit_bytes);
  const int n = WorldSize();
  iter_.stats.comm_bytes_per_nic +=
      2.0 * static_cast<double>(unit_bytes) * (n - 1) / std::max(1, n);
  Dispatch();
  MaybeFinishIteration();
}

void AiaccEngine::MaybeFinishIteration() {
  if (iter_.done_fired) return;
  if (!iter_.backward_done || iter_.gradients_remaining > 0) return;
  AIACC_CHECK(!packer_.HasReadyUnit());
  AIACC_CHECK(iter_.active_streams == 0);
  iter_.done_fired = true;
  // Optimizer update on the aggregated gradients (optionally CPU-offloaded,
  // the §IX extension).
  const double param_bytes =
      static_cast<double>(setup_.model->TotalParameterBytes());
  const double update = setup_.cpu_optimizer_offload
                            ? setup_.gpu.CpuOffloadUpdateTime(param_bytes)
                            : setup_.gpu.OptimizerUpdateTime(param_bytes);
  Sim().ScheduleAfter(update, [this] {
    iter_.stats.duration = Sim().Now() - iter_.start_time;
    if (setup_.tracer != nullptr) {
      setup_.tracer->AddInstant("compute", "iteration complete", Sim().Now());
    }
    auto done = std::move(iter_.on_done);
    iter_.on_done = nullptr;
    done(iter_.stats);
  });
}

}  // namespace aiacc::core
