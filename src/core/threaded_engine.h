// The AIACC-Training runtime with *real* concurrency — the functional twin
// of the simulated AiaccEngine, structured exactly like the paper's Fig. 4-6:
//
//   * each rank has a training-worker thread (the caller: computes real
//     gradients) and a communication-servicing thread (the "MPI process");
//   * the worker pushes ready gradients into a bounded gradient queue (the
//     CUDA-MPI-aware message queue of §V-A-2);
//   * the MPI process marks the gradient synchronization bit-vector and runs
//     decentralized min-all-reduce rounds over it (as 0/1 floats through the
//     real ring collective — a min over bits is the intersection);
//   * agreed gradients stream through the packer into all-reduce units; a
//     pool of `num_streams` communication threads runs one real ring
//     all-reduce per unit concurrently (each on its own tag channel —
//     Algorithm 1 with actual threads instead of CUDA streams);
//   * completed units scatter the averaged bytes back into the caller's
//     tensors; the worker unblocks when every registered gradient is
//     reduced, applies the optimizer, and starts the next iteration.
//
// Failure semantics (paper §IV reliability posture, made real): when a
// FailureConfig enables detection, each rank's comm side also runs a
// heartbeat thread on a reserved tag channel. A peer that misses its
// heartbeat deadline — or a collective receive that misses the configured
// per-message deadline — aborts the engine: every in-flight collective
// returns kDeadlineExceeded/kUnavailable instead of hanging, WaitIteration
// surfaces the abort Status to the caller, and SuspectedRanks() names the
// peers that went silent so a trainer can rebuild over the survivors
// (trainer/recovery.h).
//
// Everything is real: payloads, reductions, queues, thread concurrency. The
// integration tests train a real MLP through this engine and require exact
// agreement with sequential full-batch training.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/sync.h"

#include "common/bitvector.h"
#include "common/queues.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "core/degradation.h"
#include "core/optimizer.h"
#include "core/packing.h"
#include "core/registry.h"
#include "core/scheduler.h"
#include "telemetry/metrics.h"
#include "transport/faulty.h"
#include "transport/inproc.h"
#include "transport/reliable.h"
#include "transport/tracing.h"

namespace aiacc::core {

/// Failure-detection and fault-injection knobs. The default (all off) is
/// the original engine: infinite patience, no extra threads.
struct FailureConfig {
  /// Run per-rank heartbeat threads and abort when a peer goes silent.
  bool detect_failures = false;
  double heartbeat_interval_ms = 5.0;
  /// A peer is suspected after this long without a heartbeat. Must cover
  /// many intervals so sporadic heartbeat loss is not a false positive.
  double heartbeat_timeout_ms = 300.0;
  /// Per-message deadline for engine collectives (<= 0 = block forever).
  /// The backstop that turns a wedged collective into an abort even when
  /// heartbeat detection is off.
  std::int64_t collective_timeout_ms = 0;
  /// When set, all engine traffic runs through a seeded FaultyTransport.
  std::optional<transport::FaultSpec> faults;

  /// Tier 1 of the fault story: stack a ReliableTransport over the faulty
  /// layer so dropped/duplicated/reordered/corrupted messages are repaired
  /// in-band (retransmit + dedup + CRC) instead of surfacing as collective
  /// deadline failures. When enabled together with `faults`, the fault spec
  /// is forced to FaultDelivery::kRaw — the reliable layer owns framing.
  bool reliable_transport = false;
  transport::ReliableOptions reliable_options;

  /// Tier 2.5: on a failed unit all-reduce, retry the unit in-band (on a
  /// fresh tag epoch, at degraded depth) and shrink effective pipeline
  /// depth / stream count under sustained fault pressure, instead of
  /// aborting straight to checkpoint recovery. Symmetric by construction:
  /// a unit collective that fails on one rank fails on all (same ring),
  /// so every rank retries in lockstep.
  bool degrade_before_abort = false;
  /// Retries per unit collective before giving up and aborting (tier 3).
  int max_unit_retries = 2;
  DegradationController::Options degradation;

  /// Observability tier: stack a TracingTransport on top of the stack so
  /// every frame carries a causal trace context (origin, message id, HLC)
  /// and recv spans bind to their originating sends via Chrome flow events.
  /// Tri-state: -1 = auto (stamp iff the global tracer is enabled at engine
  /// construction — the common case: tracing on means causal edges wanted),
  /// 0 = never stamp (no tracing layer), 1 = always stamp (even with the
  /// tracer off; tests use this to exercise the wire format alone).
  int trace_messages = -1;
  /// Synthetic per-rank clock skew fed to the tracing layer's HLCs (ns);
  /// test/bench-only — models per-machine clock disagreement in-process.
  std::vector<std::int64_t> trace_rank_skew_ns;
};

class ThreadedAiaccEngine {
 public:
  /// Point-in-time statistics for one rank. The live values are telemetry
  /// counters in the engine's metrics registry (`engine.*@r<rank>`),
  /// written concurrently by three different threads — the MPI-process loop
  /// (sync_rounds), the comm-stream workers (units_reduced, bytes_reduced),
  /// and the caller's worker thread (iterations); stats() snapshots them at
  /// any time.
  struct RankStats {
    std::uint64_t sync_rounds = 0;
    std::uint64_t units_reduced = 0;
    std::uint64_t bytes_reduced = 0;
    std::uint64_t iterations = 0;
  };

  ThreadedAiaccEngine(int world_size, CommConfig config,
                      FailureConfig failure = {});
  ~ThreadedAiaccEngine();
  ThreadedAiaccEngine(const ThreadedAiaccEngine&) = delete;
  ThreadedAiaccEngine& operator=(const ThreadedAiaccEngine&) = delete;

  /// Per-rank handle used from that rank's worker thread.
  class Worker {
   public:
    /// Register a named gradient tensor (the engine keeps the span and
    /// scatters averaged values back into it). All ranks must register the
    /// same names/sizes. Call before Finalize.
    Status Register(const std::string& name, std::span<float> tensor);

    /// Finish registration (collective: blocks until every rank finalized).
    void Finalize();

    /// Optimizer/comm overlap: bind an optimizer so the engine applies
    /// `StepTensor` for each parameter the moment its gradient's collective
    /// completes, hiding the optimizer under the tail collectives instead
    /// of running it barriered after WaitIteration. Numerically identical
    /// to the barriered flow (see core/optimizer.h). Every registered
    /// gradient must get a parameter via BindParameter. The optimizer must
    /// outlive the engine; `lr` applies until SetLearningRate. Call before
    /// Finalize.
    void BindOptimizer(Optimizer* optimizer, double lr);

    /// Bind the parameter tensor updated by gradient `name` (same element
    /// count). Call after Register(name, ...), before Finalize.
    void BindParameter(const std::string& name, std::span<float> param);

    /// Update the learning rate the engine-applied optimizer uses from the
    /// next completed gradient on. Call between WaitIteration and the next
    /// iteration's pushes (the classic per-iteration schedule point).
    void SetLearningRate(double lr);

    /// Block until gradient `name` is fully averaged this iteration (and,
    /// with a bound optimizer, its parameter stepped) — the next forward
    /// pass's layer-wise consumption point, which is what makes priority
    /// dispatch pay off: front layers unblock without waiting for the
    /// iteration tail. Ok on completion; the abort Status on engine death.
    [[nodiscard]] Status WaitGradient(const std::string& name);

    /// Announce that the gradient `name` has been (re)computed for this
    /// iteration. The tensor contents are read asynchronously afterwards —
    /// do not touch them until WaitIteration returns. After pushing every
    /// gradient of the iteration, call FlushIteration.
    void Push(const std::string& name);

    /// Mark the end of this iteration's gradient production (the paper's
    /// end-of-backward signal). Required before WaitIteration.
    void FlushIteration();

    /// Convenience: push every registered gradient and flush (production
    /// order does not matter; the sync protocol orders them).
    void PushAll();

    /// Block until every registered gradient has been averaged across all
    /// ranks (then the optimizer may run and the next iteration start).
    /// Returns Ok on completion, or the engine's abort Status when a peer
    /// failure / deadline cut the iteration short — the tensors are then in
    /// an unspecified state and the engine is dead (rebuild to recover).
    [[nodiscard]] Status WaitIteration();

    [[nodiscard]] int rank() const noexcept { return rank_; }
    [[nodiscard]] RankStats stats() const noexcept;
    /// Dispatch counters of this rank's ready-set scheduler (pops,
    /// priority pops, inversions, aged pops).
    [[nodiscard]] SchedulerStats scheduler_stats() const;

   private:
    friend class ThreadedAiaccEngine;
    Worker(ThreadedAiaccEngine* engine, int rank);

    ThreadedAiaccEngine* engine_;
    int rank_;
    // Cached handles into the engine's registry (rank-scoped names);
    // registration happens once here, every increment is a relaxed add.
    telemetry::Counter* sync_rounds_;
    telemetry::Counter* sync_payload_floats_;  // bit-packed words per round
    telemetry::Counter* units_reduced_;
    telemetry::Counter* bytes_reduced_;
    telemetry::Counter* iterations_;
    telemetry::Histogram* unit_latency_;  // seconds per reduced unit
  };

  [[nodiscard]] Worker& worker(int rank) {
    return *workers_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] int world_size() const noexcept { return world_size_; }

  /// This engine's metrics surface: per-rank `engine.*@r<n>` counters and
  /// unit-latency histograms. Per-instance (not the process Global()) so
  /// stats are exact per engine lifetime; Snapshot().Aggregate() merges the
  /// rank scopes.
  [[nodiscard]] telemetry::MetricsRegistry& metrics() noexcept {
    return metrics_;
  }

  /// Stop the communication threads (also done by the destructor).
  void Shutdown();

  /// Ok while healthy; the first abort Status afterwards.
  [[nodiscard]] Status health() const;
  [[nodiscard]] bool aborted() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }
  /// Ranks that went silent (heartbeat verdicts), sorted. A crashed rank
  /// reports itself as isolated, so survivors and the victim agree on the
  /// same set.
  [[nodiscard]] std::vector<int> SuspectedRanks() const;

  /// The injector when FailureConfig::faults is set (tests poke it to
  /// crash ranks mid-run); nullptr otherwise.
  [[nodiscard]] transport::FaultyTransport* fault_injector() noexcept {
    return faulty_.get();
  }

  /// The reliable layer when FailureConfig::reliable_transport is set
  /// (tests read its retransmit/CRC stats); nullptr otherwise.
  [[nodiscard]] transport::ReliableTransport* reliable_layer() noexcept {
    return reliable_.get();
  }

  /// The tracing layer when message tracing is active (tests read its
  /// stamp/strip stats and HLC values); nullptr otherwise.
  [[nodiscard]] transport::TracingTransport* tracing_layer() noexcept {
    return tracing_.get();
  }

  /// Current agreed-upon degradation level (0 = full configuration).
  [[nodiscard]] int degradation_level() const noexcept {
    return degradation_.level();
  }

  /// Monotonic fault-pressure signal for autotuning: total in-band repair
  /// work (unit retries + transport retransmits/CRC failures) this engine
  /// has performed. A config whose score only held up thanks to nonzero
  /// pressure delta is penalized by the tuner (autotune/autotuner.h).
  [[nodiscard]] std::uint64_t FaultPressure() const;

 private:
  struct RankState {
    // Registration (worker thread only, until finalized; immutable once the
    // service loops start).
    std::vector<std::pair<std::string, std::span<float>>> pending_reg;  // NOLOCK(registration phase only)
    GradientRegistry registry;              // NOLOCK(frozen before service threads start)
    std::vector<std::span<float>> tensors;  // NOLOCK(frozen before service threads start)
    // Per-gradient wire codec, resolved from CommConfig::CodecFor at
    // Finalize (registration order is deterministic, so every rank resolves
    // the same codec per id).
    std::vector<compress::CodecSpec> codecs;  // NOLOCK(frozen before service threads start)
    // Error-feedback residual shadow tensors, one per gradient using a
    // sparse codec (empty otherwise). Each comm stream touches only its
    // unit's segments — units partition gradient bytes disjointly — and a
    // failed attempt re-gathers from here, so retries never double-apply
    // the residual.
    std::vector<std::vector<float>> residuals;  // NOLOCK(comm streams access disjoint unit segments; scatter-back under mu)

    // Optimizer/comm overlap (Worker::BindOptimizer): the comm streams
    // apply StepTensor under `mu` the moment a gradient completes, so the
    // optimizer runs hidden under the remaining collectives. Pointers and
    // spans freeze at Finalize; only `lr` changes afterwards (under mu).
    Optimizer* optimizer = nullptr;  // NOLOCK(frozen before service threads start)
    std::vector<std::pair<std::string, std::span<float>>> pending_params;  // NOLOCK(registration phase only)
    std::vector<std::span<float>> params;  // NOLOCK(frozen before service threads start)

    // Gradient message queue worker -> MPI process. Ids >= 0; kFlush ends
    // an iteration's production.
    std::unique_ptr<BoundedQueue<int>> queue;  // NOLOCK(set in ctor; queue is internally synchronized)

    // Completion signalling (MPI process -> worker).
    common::Mutex mu{"engine-rank-state", common::lock_rank::kEngineState};
    common::CondVar cv;
    bool iteration_done GUARDED_BY(mu) = false;
    double lr GUARDED_BY(mu) = 0.0;  // engine-applied optimizer step size

    // Priority ready-set feeding the communication streams (replaces the
    // old FIFO unit queue; core/scheduler.h has the dispatch rules and the
    // cross-rank deadlock-freedom argument).
    std::unique_ptr<ReadySetScheduler> scheduler;  // NOLOCK(set in ctor; internally synchronized)
    // Units completed this iteration (MPI process aggregates).
    std::atomic<int> gradients_remaining{0};
    std::vector<std::size_t> reduced_bytes GUARDED_BY(mu);

    // Tag-epoch per unit id (tier 2.5 retries): bumped on every failed
    // attempt so a retry never reuses a tag channel that may still hold
    // stale half-ring messages from the failed attempt. Persistent across
    // iterations for the same reason (unit ids recur each iteration).
    // Failures are symmetric across ranks, so per-rank maps stay in
    // lockstep without coordination.
    std::map<std::uint64_t, int> unit_tag_epoch GUARDED_BY(mu);
  };

  static constexpr int kFlush = -1;

  void MpiProcessLoop(int rank);
  void CommThreadLoop(int rank, int stream_index);
  /// Service task dumping the engine registry every AIACC_METRICS_PERIOD_MS
  /// (only started when the env var is set). Sleeps in short slices so
  /// Shutdown is never delayed by a full period.
  void MetricsDumpLoop();
  /// `sync_scratch` is the caller's reusable bit-vector buffer (one per MPI
  /// process loop) so steady-state iterations allocate nothing.
  void RunIterationProtocol(int rank, std::vector<float>& sync_scratch);
  void HeartbeatLoop(int rank);
  /// Record the first failure, remember the suspects, and wake every
  /// blocked thread with an error. Never joins (callable from engine
  /// threads); Shutdown() still does the joining.
  void Abort(Status status, std::vector<int> suspected);
  /// Collective returned non-OK: normal teardown is silent, anything else
  /// aborts the engine.
  void HandleCollectiveFailure(int rank, const Status& status);

  const int world_size_;
  const CommConfig config_;
  const FailureConfig failure_;
  const int metrics_dump_period_ms_;  // 0 = no periodic dump task
  // Declared before workers_: Worker constructors register their handles.
  telemetry::MetricsRegistry metrics_;  // NOLOCK(internally synchronized)
  // All engine service loops (MPI processes, communication streams,
  // heartbeats) run as long-lived tasks on this pool instead of per-rank
  // raw threads. It is sized in the constructor for the exact task count —
  // the loops block on each other across ranks, so every task must hold a
  // worker for the engine to make progress. Destroying the pool (Shutdown)
  // joins everything; Abort only signals and never joins.
  std::unique_ptr<ThreadPool> service_pool_;  // NOLOCK(set in ctor, reset only by the one Shutdown winner)
  transport::InProcTransport inproc_;         // NOLOCK(internally synchronized)
  std::unique_ptr<transport::FaultyTransport> faulty_;  // NOLOCK(set in ctor only)
  std::unique_ptr<transport::ReliableTransport> reliable_;  // NOLOCK(set in ctor only)
  std::unique_ptr<transport::TracingTransport> tracing_;  // NOLOCK(set in ctor only)
  transport::Transport* transport_;  // NOLOCK(set in ctor; topmost decorator of the inproc -> faulty -> reliable -> tracing stack)
  DegradationController degradation_;  // NOLOCK(internally synchronized)
  telemetry::Counter* unit_retries_;   // NOLOCK(set in ctor only)
  std::vector<std::unique_ptr<Worker>> workers_;  // NOLOCK(sized in ctor, never resized)
  std::vector<std::unique_ptr<RankState>> ranks_; // NOLOCK(sized in ctor, never resized)
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> aborted_{false};
  mutable common::Mutex abort_mu_{"engine-abort",
                                  common::lock_rank::kEngineAbort};
  Status abort_status_ GUARDED_BY(abort_mu_);
  std::vector<int> suspected_ GUARDED_BY(abort_mu_);  // sorted unique
  std::atomic<int> finalized_count_{0};
  common::Mutex finalize_mu_{"engine-finalize",
                             common::lock_rank::kEngineState};
  common::CondVar finalize_cv_;
};

}  // namespace aiacc::core
