// The AIACC-Training runtime with *real* concurrency — the functional twin
// of the simulated AiaccEngine, structured exactly like the paper's Fig. 4-6:
//
//   * each rank has a training-worker thread (the caller: computes real
//     gradients) and a communication-servicing thread (the "MPI process");
//   * the worker pushes ready gradients into a bounded gradient queue (the
//     CUDA-MPI-aware message queue of §V-A-2);
//   * the MPI process marks the gradient synchronization bit-vector and runs
//     decentralized min-all-reduce rounds over it (as 0/1 floats through the
//     real ring collective — a min over bits is the intersection);
//   * agreed gradients stream through the packer into all-reduce units; a
//     pool of `num_streams` communication threads runs one real ring
//     all-reduce per unit concurrently (each on its own tag channel —
//     Algorithm 1 with actual threads instead of CUDA streams);
//   * completed units scatter the averaged bytes back into the caller's
//     tensors; the worker unblocks when every registered gradient is
//     reduced, applies the optimizer, and starts the next iteration.
//
// Everything is real: payloads, reductions, queues, thread concurrency. The
// integration tests train a real MLP through this engine and require exact
// agreement with sequential full-batch training.
#pragma once

#include <condition_variable>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/bitvector.h"
#include "common/queues.h"
#include "core/config.h"
#include "core/packing.h"
#include "core/registry.h"
#include "transport/inproc.h"

namespace aiacc::core {

class ThreadedAiaccEngine {
 public:
  /// Statistics for one rank (read after Shutdown or between iterations).
  struct RankStats {
    std::uint64_t sync_rounds = 0;
    std::uint64_t units_reduced = 0;
    std::uint64_t bytes_reduced = 0;
    std::uint64_t iterations = 0;
  };

  ThreadedAiaccEngine(int world_size, CommConfig config);
  ~ThreadedAiaccEngine();
  ThreadedAiaccEngine(const ThreadedAiaccEngine&) = delete;
  ThreadedAiaccEngine& operator=(const ThreadedAiaccEngine&) = delete;

  /// Per-rank handle used from that rank's worker thread.
  class Worker {
   public:
    /// Register a named gradient tensor (the engine keeps the span and
    /// scatters averaged values back into it). All ranks must register the
    /// same names/sizes. Call before Finalize.
    Status Register(const std::string& name, std::span<float> tensor);

    /// Finish registration (collective: blocks until every rank finalized).
    void Finalize();

    /// Announce that the gradient `name` has been (re)computed for this
    /// iteration. The tensor contents are read asynchronously afterwards —
    /// do not touch them until WaitIteration returns. After pushing every
    /// gradient of the iteration, call FlushIteration.
    void Push(const std::string& name);

    /// Mark the end of this iteration's gradient production (the paper's
    /// end-of-backward signal). Required before WaitIteration.
    void FlushIteration();

    /// Convenience: push every registered gradient and flush (production
    /// order does not matter; the sync protocol orders them).
    void PushAll();

    /// Block until every registered gradient has been averaged across all
    /// ranks (then the optimizer may run and the next iteration start).
    void WaitIteration();

    [[nodiscard]] int rank() const noexcept { return rank_; }
    [[nodiscard]] const RankStats& stats() const noexcept { return stats_; }

   private:
    friend class ThreadedAiaccEngine;
    Worker(ThreadedAiaccEngine* engine, int rank)
        : engine_(engine), rank_(rank) {}

    ThreadedAiaccEngine* engine_;
    int rank_;
    RankStats stats_;
  };

  [[nodiscard]] Worker& worker(int rank) {
    return *workers_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] int world_size() const noexcept { return world_size_; }

  /// Stop the communication threads (also done by the destructor).
  void Shutdown();

 private:
  struct RankState {
    // Registration (worker thread only, until finalized).
    std::vector<std::pair<std::string, std::span<float>>> pending_reg;
    GradientRegistry registry;
    std::vector<std::span<float>> tensors;  // by registry id

    // Gradient message queue worker -> MPI process. Ids >= 0; kFlush ends
    // an iteration's production.
    std::unique_ptr<BoundedQueue<int>> queue;

    // Completion signalling (MPI process -> worker).
    std::mutex mu;
    std::condition_variable cv;
    bool iteration_done = false;

    std::thread mpi_thread;
    std::vector<std::thread> comm_threads;  // the stream pool
    std::unique_ptr<BlockingQueue<AllReduceUnit>> unit_queue;
    // Units completed this iteration (MPI process aggregates).
    std::atomic<int> gradients_remaining{0};
    std::vector<std::size_t> reduced_bytes;
  };

  static constexpr int kFlush = -1;

  void MpiProcessLoop(int rank);
  void CommThreadLoop(int rank, int stream_index);
  void RunIterationProtocol(int rank);

  const int world_size_;
  const CommConfig config_;
  transport::InProcTransport transport_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int> finalized_count_{0};
  std::mutex finalize_mu_;
  std::condition_variable finalize_cv_;
};

}  // namespace aiacc::core
