// Engine-level degradation policy (tier 2.5 of the fault story): under
// sustained fault pressure the engine shrinks its own aggressiveness —
// effective pipeline depth and concurrent communication streams — before
// escalating to tier 3 (abort + checkpoint recovery). The controller is a
// tiny hysteresis ladder over atomics:
//
//   * every failed collective attempt bumps the level (capped);
//   * `recover_after` consecutive successes walk one level back down;
//   * EffectiveDepth/EffectiveStreams halve per level (floor 1).
//
// Stream count is a *local* decision (streams process disjoint tag-isolated
// units, so ranks may disagree freely). Pipeline depth is NOT: every rank
// must run a given unit's ring at the same depth, so the engine never feeds
// controller levels straight into a collective — the per-rank level is only
// a *proposal*, agreed via the sync-round piggyback (threaded_engine.cpp)
// before it is stamped into units.
#pragma once

#include <algorithm>
#include <atomic>

#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace aiacc::core {

class DegradationController {
 public:
  struct Options {
    int max_level = 3;       // depth/streams shrink at most 2^3 = 8x
    int recover_after = 16;  // consecutive successes per level restored
  };

  DegradationController() : DegradationController(Options()) {}
  explicit DegradationController(Options options) : options_(options) {}

  /// Gauges to mirror the state into (may be null): current level and
  /// lifetime level-up count.
  void BindTelemetry(telemetry::Gauge* level_gauge,
                     telemetry::Counter* degrades,
                     telemetry::Counter* restores) noexcept {
    level_gauge_ = level_gauge;
    degrades_ = degrades;
    restores_ = restores;
  }

  void RecordFailure() noexcept {
    streak_.store(0, std::memory_order_relaxed);
    int cur = level_.load(std::memory_order_relaxed);
    while (cur < options_.max_level &&
           !level_.compare_exchange_weak(cur, cur + 1,
                                         std::memory_order_relaxed)) {
    }
    if (cur < options_.max_level) {
      if (degrades_ != nullptr) degrades_->Add();
      if (level_gauge_ != nullptr) {
        level_gauge_->Set(static_cast<double>(cur + 1));
      }
      telemetry::FlightRecorder::Global().Record(
          telemetry::FlightSeverity::kWarn, "engine.degradation", "degrade",
          /*rank=*/-1, /*channel=*/-1, /*tag=*/-1, /*detail0=*/cur + 1);
    }
  }

  void RecordSuccess() noexcept {
    if (level_.load(std::memory_order_relaxed) == 0) return;
    const int s = streak_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (s < options_.recover_after) return;
    streak_.store(0, std::memory_order_relaxed);
    int cur = level_.load(std::memory_order_relaxed);
    while (cur > 0 && !level_.compare_exchange_weak(
                          cur, cur - 1, std::memory_order_relaxed)) {
    }
    if (cur > 0) {
      if (restores_ != nullptr) restores_->Add();
      if (level_gauge_ != nullptr) {
        level_gauge_->Set(static_cast<double>(cur - 1));
      }
      telemetry::FlightRecorder::Global().Record(
          telemetry::FlightSeverity::kInfo, "engine.degradation", "restore",
          /*rank=*/-1, /*channel=*/-1, /*tag=*/-1, /*detail0=*/cur - 1);
    }
  }

  [[nodiscard]] int level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int EffectiveDepth(int configured) const noexcept {
    return DepthAt(configured, level());
  }
  [[nodiscard]] int EffectiveStreams(int configured) const noexcept {
    return std::max(1, configured >> level());
  }
  /// Depth for an *agreed* level (the cross-rank value, not this rank's).
  [[nodiscard]] static int DepthAt(int configured, int level) noexcept {
    return std::max(1, configured >> level);
  }

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  const Options options_;
  std::atomic<int> level_{0};
  std::atomic<int> streak_{0};
  telemetry::Gauge* level_gauge_ = nullptr;
  telemetry::Counter* degrades_ = nullptr;
  telemetry::Counter* restores_ = nullptr;
};

}  // namespace aiacc::core
