#include "core/config.h"

#include <sstream>

#include "common/logging.h"

namespace aiacc::core {

compress::CodecSpec CommConfig::CodecFor(const std::string& name) const {
  for (const auto& [tensor, spec] : codec_overrides) {
    if (tensor == name) return spec;
  }
  return codec;
}

std::string CommConfig::ToString() const {
  std::ostringstream out;
  out << "{streams=" << num_streams
      << ", granularity=" << (granularity_bytes >> 20) << "MiB"
      << ", algo=" << collective::ToString(algorithm)
      << ", min_bucket=" << (min_bucket_bytes >> 10) << "KiB"
      << ", depth=" << pipeline_depth
      << ", codec=" << compress::ToString(codec);
  // Both scheduler axes always print (0 = FIFO dispatch) so every config in
  // the search space renders to a distinct string.
  out << ", sched=" << priority_urgent_fraction << "/" << priority_aging_ms
      << "ms";
  if (!codec_overrides.empty()) {
    out << ", overrides=" << codec_overrides.size();
  }
  out << "}";
  return out.str();
}

std::vector<CommConfig> CommConfigSpace::AllConfigs() const {
  std::vector<CommConfig> out;
  out.reserve(NumPoints());
  for (std::size_t i = 0; i < NumPoints(); ++i) out.push_back(ConfigAt(i));
  return out;
}

CommConfig CommConfigSpace::ConfigAt(std::size_t index) const {
  AIACC_CHECK(index < NumPoints());
  const std::size_t n_streams = stream_options.size();
  const std::size_t n_gran = granularity_options.size();
  const std::size_t n_algo = algorithm_options.size();
  CommConfig cfg;
  cfg.num_streams = stream_options[index % n_streams];
  index /= n_streams;
  cfg.granularity_bytes = granularity_options[index % n_gran];
  index /= n_gran;
  cfg.algorithm = algorithm_options[index % n_algo];
  index /= n_algo;
  const std::size_t n_depth = pipeline_depth_options.size();
  cfg.pipeline_depth = pipeline_depth_options[index % n_depth];
  index /= n_depth;
  const std::size_t n_codec = codec_options.size();
  cfg.codec = codec_options[index % n_codec];
  index /= n_codec;
  const std::size_t n_urgent = priority_urgent_options.size();
  cfg.priority_urgent_fraction = priority_urgent_options[index % n_urgent];
  index /= n_urgent;
  cfg.priority_aging_ms = priority_aging_options[index];
  cfg.min_bucket_bytes = std::min<std::size_t>(cfg.granularity_bytes, 1u << 20);
  return cfg;
}

}  // namespace aiacc::core
