// Common interface for the simulated distributed-training engines: AIACC and
// the baselines (Horovod-like, PyTorch-DDP-like, BytePS-like, MXNet-KVStore-
// like) all implement DdlEngine over the same substrate, so every comparison
// in the benches is strategy-vs-strategy on identical simulated hardware.
//
// Symmetric-worker model: synchronous data parallelism makes all workers
// statistically identical, so one engine instance simulates the global
// iteration timeline; per-host asymmetries that matter (the master's
// serialized coordination, PS incast) are modeled explicitly by the
// respective strategies.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "collective/simulated.h"
#include "common/rng.h"
#include "dnn/model.h"
#include "gpu/gpu_model.h"
#include "net/fabric.h"
#include "sim/trace.h"

namespace aiacc::core {

struct WorkloadSetup {
  net::CloudFabric* fabric = nullptr;
  collective::SimCollectives* collectives = nullptr;
  gpu::GpuModel gpu;
  const dnn::ModelDescriptor* model = nullptr;
  /// Per-GPU minibatch (samples; for NLP models, sequences).
  int batch_per_gpu = 64;
  /// Gradient wire precision (fp16 when AIACC's compression is on).
  dnn::DType wire_dtype = dnn::DType::kF32;
  /// Optional execution tracer: engines emit compute/sync/stream spans for
  /// chrome://tracing (production-debugging support).
  sim::Tracer* tracer = nullptr;
  /// §IX extension: run the parameter update on the host CPU (reduces GPU
  /// memory footprint; pays a CPU pass + PCIe upload per iteration).
  bool cpu_optimizer_offload = false;
  /// Multiplicative log-normal jitter on per-iteration compute time
  /// (sigma of ln-space noise). 0 keeps the simulator fully deterministic;
  /// the paper's 5-run geometric-mean methodology (§VII-D) is reproduced by
  /// measuring under nonzero jitter with different seeds.
  double compute_jitter_sigma = 0.0;
  std::uint64_t jitter_seed = 1;
};

struct IterationStats {
  double duration = 0.0;        // seconds of simulated time
  double comm_bytes_per_nic = 0.0;
  int sync_rounds = 0;
  int allreduce_units = 0;
  int max_concurrent_streams = 0;
};

class DdlEngine {
 public:
  explicit DdlEngine(WorkloadSetup setup);
  virtual ~DdlEngine() = default;
  DdlEngine(const DdlEngine&) = delete;
  DdlEngine& operator=(const DdlEngine&) = delete;

  [[nodiscard]] virtual std::string Name() const = 0;

  /// Simulate one synchronous training iteration starting at the engine's
  /// current simulated time; `on_done` fires (with per-iteration stats) when
  /// the optimizer update completes and the next iteration may begin.
  virtual void RunIteration(std::function<void(IterationStats)> on_done) = 0;

  /// Drive `count` back-to-back iterations to completion on the simulation
  /// engine; returns their stats.
  std::vector<IterationStats> RunIterations(int count);

  /// Steady-state cluster throughput in samples/sec: run `warmup` iterations,
  /// then measure over `measure` iterations (the paper reports throughput
  /// after the first 100 iterations; benches use scaled-down counts since the
  /// simulator is deterministic and converges immediately).
  double MeasureThroughput(int warmup, int measure);

  [[nodiscard]] const WorkloadSetup& setup() const noexcept { return setup_; }
  [[nodiscard]] int WorldSize() const noexcept {
    return setup_.fabric->topology().WorldSize();
  }

 protected:
  [[nodiscard]] sim::Engine& Sim() noexcept { return setup_.fabric->engine(); }

  /// Per-iteration compute-time multiplier (1.0 when jitter is disabled) —
  /// models run-to-run hardware variance (clocking, input pipeline).
  [[nodiscard]] double NextComputeJitter();

  WorkloadSetup setup_;
  Rng jitter_rng_;
  /// Per-iteration compute profile (forward/backward durations and the
  /// gradient ready schedule) — identical across iterations.
  dnn::ModelDescriptor::IterationProfile profile_;
};

}  // namespace aiacc::core
