#include "core/compression.h"

#include <bit>
#include <cstring>

#include "common/logging.h"

namespace aiacc::core {

std::uint16_t FloatToHalf(float value) noexcept {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t exponent = (bits >> 23) & 0xFFu;
  std::uint32_t mantissa = bits & 0x7FFFFFu;

  if (exponent == 0xFF) {
    // Inf / NaN: preserve NaN-ness with a quiet-bit payload.
    return static_cast<std::uint16_t>(
        sign | 0x7C00u | (mantissa != 0 ? 0x200u : 0u));
  }
  // Re-bias 127 -> 15.
  const int new_exp = static_cast<int>(exponent) - 127 + 15;
  if (new_exp >= 0x1F) {
    return static_cast<std::uint16_t>(sign | 0x7C00u);  // overflow -> inf
  }
  if (new_exp <= 0) {
    // Subnormal half (or underflow to zero). Shift the mantissa (with the
    // implicit leading 1) right and round to nearest even.
    if (new_exp < -10) return static_cast<std::uint16_t>(sign);  // -> +-0
    mantissa |= 0x800000u;  // make the leading 1 explicit
    const int shift = 14 - new_exp;  // 14..24
    std::uint32_t half_mant = mantissa >> shift;
    const std::uint32_t remainder = mantissa & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (remainder > halfway ||
        (remainder == halfway && (half_mant & 1u) != 0)) {
      ++half_mant;  // round to nearest even; may promote to normal (correct)
    }
    return static_cast<std::uint16_t>(sign | half_mant);
  }
  // Normal half: round mantissa 23 -> 10 bits, nearest even.
  std::uint32_t half = sign | (static_cast<std::uint32_t>(new_exp) << 10) |
                       (mantissa >> 13);
  const std::uint32_t round_bit = mantissa & 0x1000u;
  const std::uint32_t sticky = mantissa & 0x0FFFu;
  if (round_bit && (sticky || (half & 1u))) {
    ++half;  // may carry into the exponent; that is correct (e.g. inf)
  }
  return static_cast<std::uint16_t>(half);
}

float HalfToFloat(std::uint16_t half) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half) & 0x8000u)
                             << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1Fu;
  std::uint32_t mantissa = half & 0x3FFu;

  std::uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // +-0
    } else {
      // Subnormal half -> normalized float.
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | ((127 - 15 - e) << 23) | ((m & 0x3FFu) << 13);
    }
  } else if (exponent == 0x1F) {
    bits = sign | 0x7F800000u | (mantissa << 13);  // inf / NaN
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(bits);
}

std::vector<std::uint16_t> CompressToHalf(std::span<const float> values) {
  std::vector<std::uint16_t> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = FloatToHalf(values[i]);
  }
  return out;
}

void DecompressFromHalf(std::span<const std::uint16_t> halfs,
                        std::span<float> out) {
  AIACC_CHECK(halfs.size() == out.size());
  for (std::size_t i = 0; i < halfs.size(); ++i) {
    out[i] = HalfToFloat(halfs[i]);
  }
}

void QuantizeToHalfInPlace(std::span<float> values) {
  for (float& v : values) v = HalfToFloat(FloatToHalf(v));
}

}  // namespace aiacc::core
