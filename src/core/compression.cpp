#include "core/compression.h"

#include "common/logging.h"
#include "compress/scalar.h"

// The scalar binary16 conversion lives in compress/scalar.cpp now — the
// codec layer and this legacy Perseus wire path must quantize identically,
// so there is exactly one implementation and core forwards to it.

namespace aiacc::core {

std::uint16_t FloatToHalf(float value) noexcept {
  return compress::FloatToHalf(value);
}

float HalfToFloat(std::uint16_t half) noexcept {
  return compress::HalfToFloat(half);
}

std::vector<std::uint16_t> CompressToHalf(std::span<const float> values) {
  std::vector<std::uint16_t> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = FloatToHalf(values[i]);
  }
  return out;
}

void DecompressFromHalf(std::span<const std::uint16_t> halfs,
                        std::span<float> out) {
  AIACC_CHECK(halfs.size() == out.size());
  for (std::size_t i = 0; i < halfs.size(); ++i) {
    out[i] = HalfToFloat(halfs[i]);
  }
}

void QuantizeToHalfInPlace(std::span<float> values) {
  for (float& v : values) v = HalfToFloat(FloatToHalf(v));
}

}  // namespace aiacc::core
