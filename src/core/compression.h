// Gradient compression (paper §IV/§X): AIACC-Training transmits gradients
// in half-precision to halve wire traffic. This is a real IEEE 754 binary16
// codec (round-to-nearest-even, correct subnormal/inf/NaN handling), not a
// size annotation: the threaded backend ships the encoded bytes and the
// numeric tests measure the quantization error end-to-end.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace aiacc::core {

/// Convert one float to IEEE 754 binary16 (round to nearest even).
std::uint16_t FloatToHalf(float value) noexcept;

/// Convert one binary16 value back to float (exact).
float HalfToFloat(std::uint16_t half) noexcept;

/// Encode a float tensor into packed halfs.
std::vector<std::uint16_t> CompressToHalf(std::span<const float> values);

/// Decode packed halfs into `out` (sizes must match).
void DecompressFromHalf(std::span<const std::uint16_t> halfs,
                        std::span<float> out);

/// In-place lossy round-trip: value = half(value). This is what the wire
/// does to a gradient; exposed so tests and the threaded backend share the
/// exact quantization.
void QuantizeToHalfInPlace(std::span<float> values);

/// Largest relative error binary16 introduces for normal values (2^-11).
inline constexpr float kHalfRelativeError = 1.0f / 2048.0f;

}  // namespace aiacc::core
