// Parameter optimizers (paper §IV "Main components" and "Other features"):
// SGD with momentum, Adam, and AIACC's hybrid optimizer that combines Adam's
// adaptive moments with an SGD-style step for selected layers. Learning-rate
// schedules include the linear decay AIACC prefers over step decay.
//
// These operate on real float tensors — they are exercised by the numeric
// end-to-end tests and the quickstart example, not just by the simulator.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"

namespace aiacc::core {

/// Learning-rate schedule interface.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  [[nodiscard]] virtual double LearningRate(std::int64_t step) const = 0;
  [[nodiscard]] virtual std::string Name() const = 0;
};

/// lr(t) = base * (1 - t/total), floored at `final_fraction * base`.
/// AIACC uses linear decay because it "works better with the communication
/// optimization and gradient compression" (§IV).
class LinearDecay final : public LrSchedule {
 public:
  LinearDecay(double base_lr, std::int64_t total_steps,
              double final_fraction = 0.0)
      : base_(base_lr), total_(total_steps), final_fraction_(final_fraction) {
    AIACC_CHECK(total_steps > 0);
  }
  [[nodiscard]] double LearningRate(std::int64_t step) const override;
  [[nodiscard]] std::string Name() const override { return "linear"; }

 private:
  double base_;
  std::int64_t total_;
  double final_fraction_;
};

/// lr(t) = base * gamma^(t / step_size)  — the common step decay.
class StepDecay final : public LrSchedule {
 public:
  StepDecay(double base_lr, std::int64_t step_size, double gamma = 0.1)
      : base_(base_lr), step_size_(step_size), gamma_(gamma) {
    AIACC_CHECK(step_size > 0);
  }
  [[nodiscard]] double LearningRate(std::int64_t step) const override;
  [[nodiscard]] std::string Name() const override { return "step"; }

 private:
  double base_;
  std::int64_t step_size_;
  double gamma_;
};

/// Optimizer over a fixed set of parameter tensors.
///
/// Two ways to drive it, numerically identical by construction (all state
/// is per-tensor; iteration-wide state advances only in BeginIteration):
///
///   * barriered: call Step once per iteration after every gradient is
///     aggregated — the classic flow;
///   * streamed (optimizer/comm overlap): call BeginIteration once at the
///     start of the iteration, then StepTensor per tensor the moment that
///     tensor's collective completes. Different tensors may be stepped
///     from different threads concurrently; the same tensor must not.
///
/// The threaded engine uses the streamed form to hide the optimizer under
/// the tail collectives (see ThreadedAiaccEngine::Worker::BindOptimizer).
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Open an iteration: size per-tensor state to `params` and advance any
  /// iteration-wide state (Adam's timestep). Must complete before the
  /// iteration's first StepTensor; single-threaded.
  virtual void BeginIteration(const std::vector<std::span<float>>& params) = 0;

  /// Apply one tensor's update. Requires BeginIteration this iteration.
  /// `tensor_index` identifies the per-tensor state slot; concurrent calls
  /// are allowed on distinct indices.
  virtual void StepTensor(std::size_t tensor_index, std::span<float> param,
                          std::span<const float> grad, double lr) = 0;

  /// Apply one barriered update: BeginIteration + StepTensor over every
  /// tensor. `params[i]` and `grads[i]` must alias the same tensor layout
  /// across calls (state is per-tensor).
  virtual void Step(const std::vector<std::span<float>>& params,
                    const std::vector<std::span<const float>>& grads,
                    double lr);

  [[nodiscard]] virtual std::string Name() const = 0;

  /// Serialize/restore internal state (for checkpointing).
  [[nodiscard]] virtual std::vector<std::vector<float>> ExportState() const = 0;
  virtual void ImportState(std::vector<std::vector<float>> state) = 0;
};

/// SGD with classical momentum: v = mu*v + g; p -= lr*v.
class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(double momentum = 0.9) : momentum_(momentum) {}
  void BeginIteration(const std::vector<std::span<float>>& params) override;
  void StepTensor(std::size_t tensor_index, std::span<float> param,
                  std::span<const float> grad, double lr) override;
  [[nodiscard]] std::string Name() const override { return "sgd"; }
  [[nodiscard]] std::vector<std::vector<float>> ExportState() const override {
    return velocity_;
  }
  void ImportState(std::vector<std::vector<float>> state) override {
    velocity_ = std::move(state);
  }

 private:
  double momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba).
class AdamOptimizer final : public Optimizer {
 public:
  AdamOptimizer(double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8)
      : beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void BeginIteration(const std::vector<std::span<float>>& params) override;
  void StepTensor(std::size_t tensor_index, std::span<float> param,
                  std::span<const float> grad, double lr) override;
  [[nodiscard]] std::string Name() const override { return "adam"; }
  [[nodiscard]] std::vector<std::vector<float>> ExportState() const override;
  void ImportState(std::vector<std::vector<float>> state) override;

 private:
  double beta1_, beta2_, eps_;
  std::int64_t t_ = 0;
  // Bias corrections for the current iteration, computed once in
  // BeginIteration so concurrent StepTensor calls only read them.
  double bc1_ = 1.0;
  double bc2_ = 1.0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// AIACC's hybrid optimizer: Adam moments drive the step *direction*, but
/// the step *magnitude* is renormalized to the SGD step's magnitude per
/// tensor (an Adam/SGD combination in the spirit of §IV; also similar to
/// LARS-style trust ratios). Falls back to plain Adam for tiny tensors.
class HybridAdamSgdOptimizer final : public Optimizer {
 public:
  HybridAdamSgdOptimizer(double momentum = 0.9, double beta1 = 0.9,
                         double beta2 = 0.999, double eps = 1e-8)
      : sgd_(momentum), adam_(beta1, beta2, eps) {}
  void BeginIteration(const std::vector<std::span<float>>& params) override;
  void StepTensor(std::size_t tensor_index, std::span<float> param,
                  std::span<const float> grad, double lr) override;
  [[nodiscard]] std::string Name() const override { return "hybrid-adam-sgd"; }
  [[nodiscard]] std::vector<std::vector<float>> ExportState() const override;
  void ImportState(std::vector<std::vector<float>> state) override;

 private:
  SgdOptimizer sgd_;
  AdamOptimizer adam_;
};

/// Debugging support (§IV): scan gradient tensors for NaN/Inf and report the
/// offending tensor indices — "a headache for many users during DDL".
struct NanReport {
  struct Entry {
    std::size_t tensor_index;
    std::size_t element_index;
    float value;
  };
  std::vector<Entry> entries;
  [[nodiscard]] bool Clean() const noexcept { return entries.empty(); }
};
NanReport CheckForNan(const std::vector<std::span<const float>>& grads,
                      std::size_t max_entries = 16);

}  // namespace aiacc::core
