#include "core/checkpoint.h"

#include <cstdio>
#include <filesystem>

namespace aiacc::core {
namespace {

constexpr std::uint32_t kMagic = 0xA1ACC001;
constexpr std::uint32_t kVersion = 1;

std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

void WriteTensorList(ByteWriter& writer,
                     const std::vector<std::vector<float>>& tensors) {
  writer.WriteU64(tensors.size());
  for (const auto& t : tensors) writer.WriteF32Vector(t);
}

Result<std::vector<std::vector<float>>> ReadTensorList(ByteReader& reader) {
  auto count = reader.ReadU64();
  if (!count.ok()) return count.status();
  std::vector<std::vector<float>> tensors;
  tensors.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto t = reader.ReadF32Vector();
    if (!t.ok()) return t.status();
    tensors.push_back(std::move(*t));
  }
  return tensors;
}

}  // namespace

std::vector<std::uint8_t> SerializeCheckpoint(const Checkpoint& ckpt) {
  ByteWriter body;
  body.WriteI64(ckpt.iteration);
  body.WriteF64(ckpt.learning_rate);
  WriteTensorList(body, ckpt.parameters);
  WriteTensorList(body, ckpt.optimizer_state);

  ByteWriter out;
  out.WriteU32(kMagic);
  out.WriteU32(kVersion);
  out.WriteU64(body.bytes().size());
  out.WriteBytes(body.bytes().data(), body.bytes().size());
  out.WriteU64(Fnv1a(body.bytes().data(), body.bytes().size()));
  return std::move(out).Take();
}

Result<Checkpoint> DeserializeCheckpoint(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader header(bytes);
  auto magic = header.ReadU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kMagic) return DataLoss("bad checkpoint magic");
  auto version = header.ReadU32();
  if (!version.ok()) return version.status();
  if (*version != kVersion) {
    return Unimplemented("unsupported checkpoint version " +
                         std::to_string(*version));
  }
  auto body_len = header.ReadU64();
  if (!body_len.ok()) return body_len.status();
  constexpr std::size_t kHeader = 4 + 4 + 8;
  if (bytes.size() < kHeader + *body_len + 8) {
    return DataLoss("checkpoint truncated");
  }
  const std::uint8_t* body = bytes.data() + kHeader;
  ByteReader tail(body + *body_len, 8);
  auto stored_sum = tail.ReadU64();
  if (!stored_sum.ok()) return stored_sum.status();
  if (Fnv1a(body, static_cast<std::size_t>(*body_len)) != *stored_sum) {
    return DataLoss("checkpoint checksum mismatch");
  }

  ByteReader reader(body, static_cast<std::size_t>(*body_len));
  Checkpoint ckpt;
  auto iter = reader.ReadI64();
  if (!iter.ok()) return iter.status();
  ckpt.iteration = *iter;
  auto lr = reader.ReadF64();
  if (!lr.ok()) return lr.status();
  ckpt.learning_rate = *lr;
  auto params = ReadTensorList(reader);
  if (!params.ok()) return params.status();
  ckpt.parameters = std::move(*params);
  auto opt = ReadTensorList(reader);
  if (!opt.ok()) return opt.status();
  ckpt.optimizer_state = std::move(*opt);
  return ckpt;
}

Status SaveCheckpoint(const Checkpoint& ckpt, const std::string& path) {
  const std::vector<std::uint8_t> bytes = SerializeCheckpoint(ckpt);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Unavailable("cannot open " + tmp);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const int close_rc = std::fclose(f);
  if (written != bytes.size() || close_rc != 0) {
    std::remove(tmp.c_str());
    return DataLoss("short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Unavailable("rename failed: " + ec.message());
  return Status::Ok();
}

Result<Checkpoint> LoadCheckpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFound("no checkpoint at " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  const std::size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) return DataLoss("short read from " + path);
  return DeserializeCheckpoint(bytes);
}

}  // namespace aiacc::core
