#include "core/sync.h"

#include <algorithm>
#include <cmath>

namespace aiacc::core {

double DecentralizedSync::RoundCost(std::size_t vector_bytes) const {
  const auto& topo = fabric_.topology();
  const int n = topo.WorldSize();
  if (n <= 1) return params_.shm_hop;
  const int m = topo.num_hosts;
  // A ring over all n MPI processes: per lap, m hops cross host boundaries
  // (each NIC once) and n - m stay on-host; reduce-scatter + all-gather of
  // the bit-vector = 2 laps. Payload transfer adds a tiny bandwidth term.
  const double inter = topo.IsMultiNode() ? fabric_.InterNodeHopCost() : 0.0;
  const double lap =
      m * (topo.IsMultiNode() ? inter : 0.0) + (n - m) * params_.shm_hop;
  const double wire = topo.IsMultiNode()
                          ? 2.0 * static_cast<double>(vector_bytes) /
                                fabric_.InterNodeStreamCap()
                          : 0.0;
  return 2.0 * lap + wire;
}

void DecentralizedSync::StartRound(const BitVector& local_ready,
                                   std::function<void(BitVector)> done) {
  const double cost = RoundCost(local_ready.ByteSize());
  fabric_.engine().ScheduleAfter(
      cost, [this, agreed = local_ready, done = std::move(done)]() mutable {
        ++rounds_completed_;
        done(std::move(agreed));
      });
}

double MasterSync::MasterProcessingCost(std::size_t ready_tensors) const {
  const int n = fabric_.topology().WorldSize();
  // The master ingests one readiness message per worker and walks every
  // (worker, tensor) entry to compute the intersection — all serialized on
  // the coordinator thread.
  return n * params_.master_per_message +
         static_cast<double>(ready_tensors) * n * params_.master_per_entry;
}

void MasterSync::StartRound(const BitVector& local_ready,
                            std::function<void(BitVector)> done) {
  sim::Engine& engine = fabric_.engine();
  const double now = engine.Now();
  const auto& topo = fabric_.topology();
  const double hop =
      topo.IsMultiNode() ? fabric_.InterNodeHopCost() : params_.shm_hop;

  // Workers report at the next negotiation cycle boundary.
  const double cycle = params_.master_cycle_time;
  const double cycle_start = std::ceil(now / cycle) * cycle;
  // Requests reach the master one hop later, then wait for the serialized
  // master thread.
  const double arrive = std::max(cycle_start + hop, master_busy_until_);
  const double processing = MasterProcessingCost(local_ready.Count());
  master_busy_until_ = arrive + processing;
  // Response broadcast: master emits n messages back-to-back + one hop.
  const double respond = master_busy_until_ +
                         topo.WorldSize() * params_.master_per_message + hop;
  engine.ScheduleAt(
      respond, [this, agreed = local_ready, done = std::move(done)]() mutable {
        ++rounds_completed_;
        done(std::move(agreed));
      });
}

}  // namespace aiacc::core
