// The paper's contribution: multi-streamed, concurrent, fully decentralized
// gradient communication (Sections V and Algorithm 1), as a simulated-time
// engine.
//
// Per iteration:
//   1. forward compute;
//   2. backward compute produces gradients on the model's ready schedule;
//      each ready gradient is pushed through the gradient queue and buffered
//      in the communication bucket;
//   3. when buffered bytes reach the minimum communication granularity, a
//      decentralized synchronization round (bit-vector min-all-reduce among
//      the MPI processes) agrees on the globally-ready set;
//   4. agreed gradients are packed/split into all-reduce units of the tuned
//      granularity and dispatched to the communication stream pool; up to
//      min(config streams, GPU-schedulable streams) units fly concurrently,
//      each as an independent ring (or hierarchical) all-reduce;
//   5. the iteration completes when backward is done, every gradient has
//      been reduced, and the optimizer update has been applied.
//
// Synchronization, packing and dispatch all run concurrently with backward
// compute (they live on the CPU-side MPI process), so communication overlaps
// computation exactly as in Fig. 5/6 of the paper.
#pragma once

#include <deque>

#include "core/config.h"
#include "core/ddl_engine.h"
#include "core/packing.h"
#include "core/registry.h"
#include "core/sync.h"

namespace aiacc::core {

class AiaccEngine final : public DdlEngine {
 public:
  AiaccEngine(WorkloadSetup setup, CommConfig config,
              SyncParams sync_params = {});

  [[nodiscard]] std::string Name() const override { return "aiacc"; }
  void RunIteration(std::function<void(IterationStats)> on_done) override;

  /// Reconfigure between iterations (the auto-tuner changes parameters
  /// during the warm-up phase). Must not be called mid-iteration.
  void SetConfig(const CommConfig& config);
  [[nodiscard]] const CommConfig& config() const noexcept { return config_; }

  [[nodiscard]] const GradientRegistry& registry() const noexcept {
    return registry_;
  }

 private:
  struct IterationState {
    double start_time = 0.0;
    double backward_end = 0.0;
    bool backward_done = false;
    BitVector local_ready;     // produced locally, not yet sync-agreed
    std::size_t pending_sync_bytes = 0;
    bool sync_in_flight = false;
    int synced_gradients = 0;  // agreed ready so far this iteration
    int active_streams = 0;
    int gradients_remaining = 0;  // not yet fully reduced
    std::size_t bytes_remaining = 0;
    bool done_fired = false;
    std::function<void(IterationStats)> on_done;
    IterationStats stats;
  };

  void OnGradientReady(int registry_id);
  void MaybeStartSyncRound(bool flush);
  void OnSyncAgreed(const BitVector& agreed);
  void Dispatch();
  void OnUnitComplete(std::size_t unit_bytes, int num_whole_gradients);
  void MaybeFinishIteration();
  [[nodiscard]] int EffectiveStreamLimit() const;

  CommConfig config_;
  GradientRegistry registry_;
  DecentralizedSync sync_;
  /// Carves the agreed-ready gradient stream into granularity-sized units
  /// (the paper's gradient packing, §V-B).
  StreamingPacker packer_;
  /// registry id -> ready time offset within backward (seconds).
  std::vector<double> ready_offset_;
  /// Tracks how many bytes of each gradient have been reduced (a split
  /// gradient finishes when all its units complete).
  std::vector<std::size_t> reduced_bytes_;
  /// Trace-only stream-slot occupancy (lowest-free-slot assignment).
  std::vector<bool> stream_slot_busy_;
  IterationState iter_;
};

}  // namespace aiacc::core
