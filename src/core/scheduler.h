// Ready-set unit scheduler (DAG-scheduled gradient transmission).
//
// The engine models one training iteration as a DAG: backward compute
// produces gradients back-to-front, each all-reduce unit is a comm node,
// and the *next* forward pass consumes tensors front-to-back. The longest
// path through that DAG — not total comm volume — is the iteration time
// (Shi et al., PAPERS.md), so the unit a channel should run next is the one
// whose result the next forward needs soonest: the unit holding the
// lowest gradient id (registration order is name-sorted and identical on
// every rank, so ids order the next forward's consumption on every rank
// identically). FIFO dispatch inverts this — backward readiness order is
// back-to-front — which is exactly the priority inversion this scheduler
// removes.
//
// Deadlock-freedom across ranks. Units run blocking collectives: a unit's
// ring only completes once EVERY rank has popped it. Pure priority pops
// are unsafe — ranks observe different ready-set states (push/pop timing
// differs) and could partition their channels over disjoint unit sets,
// each blocking forever in a ring the other ranks never join. The
// scheduler therefore splits policy by stream:
//
//   * stream 0 always pops the oldest unit in push-sequence order;
//   * streams >= 1 pop the urgent class by (priority, sequence) first,
//     and everything else — bulk — strictly FIFO, with aging on top.
//
// Priority ordering is confined to the urgent class on purpose. A total
// priority order over bulk units buys nothing (the next forward pass is
// nowhere near those layers when they dispatch) but maximizes cross-rank
// ready-set divergence: ranks whose queues differ by one in-flight unit
// pop bulk in different orders, mispairing streams across ranks so each
// stream blocks in a ring its peer hasn't joined yet. Bulk-FIFO keeps the
// common case rank-consistent while urgent units still jump the queue
// identically everywhere (the cutoff is a rank-agreed constant).
//
// Proof sketch: the unit push sequence is identical on every rank (it is
// derived from the agreed sync rounds + deterministic packing). Let m be
// the globally smallest-sequence incomplete unit. Every unit before m is
// complete, hence was popped on every rank (all ranks participate in every
// collective). So on each rank, m is either already claimed by some stream
// (that stream is inside m's collective) or m is the oldest queued unit
// and the rank's stream 0 claims it on its next pop. Either way every
// rank eventually runs m's collective, m completes, induction. The same
// argument gives starvation-freedom: every unit becomes the smallest
// incomplete one eventually, regardless of what streams >= 1 do.
//
// Aging is a latency guard on top of that liveness guarantee: an entry
// that has waited longer than the aging window sorts ahead of everything
// younger, so streams >= 1 also drain old bulk units instead of leaving
// them all to stream 0.
//
// The scheduler only reorders *dispatch*; the bytes each collective
// reduces are unchanged, so results are bit-identical under any policy.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/sync.h"
#include "core/packing.h"

namespace aiacc::core {

/// Dispatch policy knobs (autotuner dimensions; see CommConfig).
struct SchedulerPolicy {
  /// Fraction of the gradient-id space counted as "urgent" (consumed
  /// earliest by the next forward). 0 disables priority dispatch entirely:
  /// every stream pops FIFO and no preemption yields are requested — the
  /// scheduler-off arm of the A/B.
  float urgent_fraction = 0.25f;
  /// Entries older than this sort ahead of everything younger on
  /// streams >= 1 (latency aging; liveness never depends on it).
  int aging_ms = 50;
  /// Total registered gradients; with urgent_fraction it fixes the urgent
  /// id cutoff. 0 = cutoff unknown, nothing is urgent.
  int num_gradients = 0;

  [[nodiscard]] bool enabled() const noexcept {
    return urgent_fraction > 0.0f;
  }
  /// Ids strictly below the cutoff are urgent.
  [[nodiscard]] int UrgentCutoff() const noexcept;
};

/// Counters the scheduler accumulates (drained by the engine into metrics
/// and telemetry; all monotonic).
struct SchedulerStats {
  std::uint64_t pops = 0;
  std::uint64_t priority_pops = 0;  // pops that bypassed FIFO order
  std::uint64_t inversions = 0;     // urgent unit popped after being bypassed
  std::uint64_t aged_pops = 0;      // pops won on age, not priority
};

/// Priority ready-set replacing the engine's FIFO `unit_queue`. All
/// dispatch must go through Push/PopFor (tools/aiacc_analyzer enforces
/// this via the `priority-ordering` check).
///
/// Thread-safe; Pop blocks until a unit arrives or Shutdown(). Steady
/// state performs no allocations: entries recycle the vector's capacity
/// and AllReduceUnit storage is moved, never copied.
class ReadySetScheduler {
 public:
  explicit ReadySetScheduler(SchedulerPolicy policy = SchedulerPolicy{});
  ReadySetScheduler(const ReadySetScheduler&) = delete;
  ReadySetScheduler& operator=(const ReadySetScheduler&) = delete;

  /// Fix the registered gradient count (the urgent-cutoff denominator).
  /// The engine calls this at Finalize — after registration froze the
  /// registry, before any service loop can Push.
  void BindGradientCount(int num_gradients) EXCLUDES(mu_);

  /// Enqueue a ready unit. Stamps the push sequence (the agreed global
  /// order) and the wait-span start time.
  void Push(AllReduceUnit unit) EXCLUDES(mu_);

  /// Blocking pop for communication stream `stream_index`. Stream 0 pops
  /// strictly in push-sequence order (the deadlock-freedom anchor);
  /// streams >= 1 pop aged entries FIFO, then the urgent class by
  /// (priority, sequence), then bulk FIFO. Returns nullopt once the
  /// scheduler is shut down and drained.
  std::optional<AllReduceUnit> PopFor(int stream_index) EXCLUDES(mu_);

  /// Non-blocking PopFor.
  std::optional<AllReduceUnit> TryPopFor(int stream_index) EXCLUDES(mu_);

  /// True when a queued unit is urgent and strictly more urgent than
  /// `active_priority`. Lock-free (relaxed atomic): a hint, never a
  /// correctness input.
  [[nodiscard]] bool UrgentWaiting(int active_priority) const noexcept;

  /// True while an urgent unit's collective is in flight on some stream —
  /// the cooperative-preemption predicate a non-urgent bulk transfer polls
  /// between pipeline slices to decide whether to yield transport
  /// bandwidth. Deliberately NOT "urgent unit queued": when every stream
  /// is busy with bulk, a queued urgent unit cannot start, and yielding
  /// would stall all of them (and their ring peers) without helping
  /// anyone. Lock-free (relaxed atomic).
  [[nodiscard]] bool UrgentActive() const noexcept;

  /// The engine's stream loop reports a popped unit's collective as
  /// finished (pass PopInfo::priority); pairs with PopFor to maintain the
  /// UrgentActive hint.
  void UnitFinished(int priority) noexcept;

  /// After shutdown Push is a no-op and PopFor drains then returns nullopt.
  void Shutdown() EXCLUDES(mu_);

  [[nodiscard]] std::size_t Size() const EXCLUDES(mu_);
  [[nodiscard]] SchedulerStats stats() const EXCLUDES(mu_);
  [[nodiscard]] const SchedulerPolicy& policy() const noexcept {
    return policy_;
  }
  /// Wall-clock wait (push -> pop) of the most recent pop, and its
  /// priority/bypass data — read by the popping thread right after PopFor
  /// to emit the `engine.sched` wait span without re-locking.
  struct PopInfo {
    std::int64_t push_ns = 0;
    std::int64_t pop_ns = 0;
    int priority = 0;
    bool urgent = false;
    std::uint32_t bypassed = 0;  // less-urgent pops that overtook this unit
  };
  /// Valid on the calling thread after a successful PopFor/TryPopFor.
  [[nodiscard]] const PopInfo& last_pop() const noexcept;

 private:
  struct Entry {
    AllReduceUnit unit;
    std::uint64_t seq = 0;
    std::int64_t push_ns = 0;
    int priority = 0;
    std::uint32_t bypassed = 0;
  };

  [[nodiscard]] std::size_t PickIndex(int stream_index,
                                      std::int64_t now_ns) const
      REQUIRES(mu_);
  std::optional<AllReduceUnit> TakeAt(std::size_t index) REQUIRES(mu_);
  void RefreshUrgentHint() REQUIRES(mu_);

  SchedulerPolicy policy_;  // NOLOCK(mutated only by BindGradientCount under mu_ before the service loops start; frozen while Push/Pop traffic runs)
  mutable common::Mutex mu_{"ready-set-scheduler",
                            common::lock_rank::kQueue};
  common::CondVar cv_;
  std::vector<Entry> entries_ GUARDED_BY(mu_);
  std::uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  SchedulerStats stats_ GUARDED_BY(mu_);
  /// Most urgent queued priority, or kNoUrgent when none is urgent.
  /// Relaxed: consumed only as a preemption hint.
  static constexpr int kNoUrgent = std::numeric_limits<int>::max();
  std::atomic<int> urgent_waiting_{kNoUrgent};
  /// In-flight urgent collectives (popped, not yet UnitFinished).
  /// Relaxed: consumed only as the preemption hint.
  std::atomic<int> urgent_active_{0};
};

}  // namespace aiacc::core
