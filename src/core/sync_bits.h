// Bit-packed encoding of the gradient-readiness vector exchanged by the
// decentralized synchronization rounds (threaded_engine.cpp's
// RunIterationProtocol).
//
// The original protocol shipped one float per registered gradient (1.0 =
// ready, 0.0 = not) and intersected them with a kMin all-reduce — 4 bytes
// of sync traffic per gradient per round. This encoding packs 32 readiness
// bits into each float lane (bit i of word i/32, little-endian within the
// word) and intersects with ReduceOp::kBitAnd, shrinking every round's
// payload 32x while computing the identical set: for 0/1 bits, min == and.
// The lanes are opaque bit patterns, never arithmetic floats — kBitAnd is
// the only op that may touch them (collective/ops.h explains why transit
// is bit-safe).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/bitvector.h"

namespace aiacc::core {

/// Number of float words needed to carry `n_bits` readiness bits.
constexpr std::size_t SyncWordCount(std::size_t n_bits) {
  return (n_bits + 31) / 32;
}

/// Pack `ready` (the per-rank readiness bit-vector) into `words`, which
/// must hold SyncWordCount(ready.size()) floats. Trailing bits of the last
/// word are set: they are identity elements under AND, so they never veto.
inline void PackSyncBits(const BitVector& ready, std::span<float> words) {
  const std::size_t n = ready.size();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint32_t bits = ~std::uint32_t{0};
    const std::size_t base = w * 32;
    for (std::size_t b = 0; b < 32 && base + b < n; ++b) {
      if (!ready.Test(base + b)) bits &= ~(std::uint32_t{1} << b);
    }
    words[w] = std::bit_cast<float>(bits);
  }
}

/// Bit i of the packed (and typically already all-reduced) word vector.
inline bool SyncBitSet(std::span<const float> words, std::size_t i) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(words[i / 32]);
  return (bits >> (i % 32)) & 1u;
}

}  // namespace aiacc::core
