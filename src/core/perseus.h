// Perseus: AIACC-Training's unified, Horovod-compatible programming
// interface (paper §IV). This is the public API an application links
// against; the quickstart example ports a sequential training loop to it by
// changing only the communicator construction — the Horovod-style porting
// story the paper automates with its source-to-source translator.
//
// This facade drives the *threaded* backend: every rank is a real thread and
// gradient aggregation runs through the real multi-channel ring collectives.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "collective/threaded.h"
#include "common/status.h"
#include "core/optimizer.h"
#include "transport/inproc.h"

namespace aiacc::perseus {

/// Shared state for one "job" (all ranks in-process).
class Context {
 public:
  explicit Context(int world_size)
      : transport_(world_size), world_size_(world_size) {}

  [[nodiscard]] int world_size() const noexcept { return world_size_; }
  [[nodiscard]] transport::InProcTransport& transport() noexcept {
    return transport_;
  }

 private:
  transport::InProcTransport transport_;
  int world_size_;
};

/// Per-rank session (Horovod: hvd.init/rank/size/allreduce/broadcast...).
class Session {
 public:
  Session(std::shared_ptr<Context> context, int rank);

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return context_->world_size(); }

  /// In-place averaged all-reduce over all ranks, using `num_channels`
  /// concurrent communication channels (AIACC's multi-stream setting; 1
  /// behaves like classic Horovod/NCCL).
  void AllReduce(std::span<float> data, int num_channels = 4,
                 collective::ReduceOp op = collective::ReduceOp::kAvg);

  /// All-reduce with fp16 wire compression (paper §IV/§X): the local
  /// contribution is quantized to IEEE binary16 before transmission and the
  /// reduction accumulates in fp32. Halves wire traffic at ~2^-11 relative
  /// quantization error per element.
  void AllReduceFp16(std::span<float> data, int num_channels = 4);

  /// Broadcast tensors from `root` (Horovod's broadcast_parameters; also the
  /// elastic-deployment path that seeds a new worker's parameters).
  void BroadcastParameters(const std::vector<std::span<float>>& params,
                           int root = 0);

  void Barrier();

  /// Aggregate this rank's gradient tensors (averaged across ranks),
  /// checking for NaNs first (§IV debugging support). Returns the NaN report
  /// from the *local* gradients; aggregation proceeds only if clean or
  /// `allow_nan`.
  core::NanReport AllReduceGradients(
      const std::vector<std::span<float>>& grads, int num_channels = 4,
      bool allow_nan = false);

 private:
  std::shared_ptr<Context> context_;
  int rank_;
  int next_tag_ = 0;
};

/// Launch `world_size` rank threads running `body(session)` and join them —
/// the SPMD harness used by examples and tests.
void RunRanks(int world_size,
              const std::function<void(Session&)>& body);

}  // namespace aiacc::perseus
