#include "core/scheduler.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/logging.h"

namespace aiacc::core {

namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

thread_local ReadySetScheduler::PopInfo t_last_pop;

}  // namespace

int SchedulerPolicy::UrgentCutoff() const noexcept {
  if (!enabled() || num_gradients <= 0) return 0;
  const float cut = urgent_fraction * static_cast<float>(num_gradients);
  // At least one gradient is urgent whenever the policy is on at all.
  return std::max(1, static_cast<int>(cut));
}

ReadySetScheduler::ReadySetScheduler(SchedulerPolicy policy)
    : policy_(policy) {
  // Typical ready-set depth is bounded by units-per-iteration; reserving
  // up front keeps the steady state allocation-free.
  common::MutexLock lock(mu_);
  entries_.reserve(64);
}

void ReadySetScheduler::BindGradientCount(int num_gradients) {
  common::MutexLock lock(mu_);
  policy_.num_gradients = num_gradients;
  RefreshUrgentHint();
}

void ReadySetScheduler::Push(AllReduceUnit unit) {
  // Priority = the earliest-consumed gradient in the unit. The packers
  // stamp it; derive it from the segments when a caller did not.
  int priority = unit.priority;
  if (priority < 0) {
    priority = std::numeric_limits<int>::max();
    for (const UnitSegment& seg : unit.segments) {
      priority = std::min(priority, seg.gradient_id);
    }
  }
  {
    common::MutexLock lock(mu_);
    if (shutdown_) return;
    Entry e;
    e.unit = std::move(unit);
    e.seq = next_seq_++;
    e.push_ns = NowNs();
    e.priority = priority;
    entries_.push_back(std::move(e));
    RefreshUrgentHint();
  }
  cv_.NotifyAll();
}

std::size_t ReadySetScheduler::PickIndex(int stream_index,
                                         std::int64_t now_ns) const {
  AIACC_CHECK(!entries_.empty());
  // Stream 0 (and every stream when priority dispatch is off) pops the
  // oldest push sequence: the rule every rank shares, which guarantees the
  // globally smallest-sequence incomplete unit is always claimed.
  std::size_t best = 0;
  if (stream_index == 0 || !policy_.enabled()) {
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].seq < entries_[best].seq) best = i;
    }
    return best;
  }
  const std::int64_t aging_ns =
      static_cast<std::int64_t>(policy_.aging_ms) * 1'000'000;
  const int cutoff = policy_.UrgentCutoff();
  auto key = [&](const Entry& e) {
    const bool aged = aging_ns > 0 && (now_ns - e.push_ns) >= aging_ns;
    // Three classes, oldest-first inside each except urgent: aged entries
    // drain first (FIFO — the latency guard), then the urgent class by
    // (priority, seq), then bulk strictly FIFO. Priority ordering is
    // deliberately confined to the urgent class: a total priority order
    // over bulk buys nothing (the next forward is nowhere near those
    // layers) while maximizing cross-rank ready-set divergence — ranks pop
    // bulk in different orders whenever their queue contents differ by a
    // beat, mispairing streams across ranks and serializing the rings.
    // Sequence breaks every tie, so the pop is deterministic given the
    // same ready-set contents.
    if (aged) return std::tuple<int, int, std::uint64_t>(0, 0, e.seq);
    if (e.priority < cutoff) {
      return std::tuple<int, int, std::uint64_t>(1, e.priority, e.seq);
    }
    return std::tuple<int, int, std::uint64_t>(2, 0, e.seq);
  };
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (key(entries_[i]) < key(entries_[best])) best = i;
  }
  return best;
}

std::optional<AllReduceUnit> ReadySetScheduler::TakeAt(std::size_t index) {
  Entry taken = std::move(entries_[index]);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));

  const int cutoff = policy_.UrgentCutoff();
  const std::int64_t now = NowNs();
  ++stats_.pops;
  bool bypassed_someone = false;
  for (Entry& w : entries_) {
    if (w.seq < taken.seq) bypassed_someone = true;
    // Everything more urgent that is still waiting has now been overtaken
    // by a less-urgent dispatch — the raw material of an inversion.
    if (w.priority < taken.priority) ++w.bypassed;
  }
  if (bypassed_someone) ++stats_.priority_pops;
  const bool urgent = taken.priority < cutoff;
  if (urgent) urgent_active_.fetch_add(1, std::memory_order_relaxed);
  if (urgent && taken.bypassed > 0) ++stats_.inversions;
  const std::int64_t aging_ns =
      static_cast<std::int64_t>(policy_.aging_ms) * 1'000'000;
  if (policy_.enabled() && aging_ns > 0 &&
      (now - taken.push_ns) >= aging_ns) {
    ++stats_.aged_pops;
  }

  t_last_pop.push_ns = taken.push_ns;
  t_last_pop.pop_ns = now;
  t_last_pop.priority = taken.priority;
  t_last_pop.urgent = urgent;
  t_last_pop.bypassed = taken.bypassed;

  RefreshUrgentHint();
  return std::move(taken.unit);
}

std::optional<AllReduceUnit> ReadySetScheduler::PopFor(int stream_index) {
  common::MutexLock lock(mu_);
  while (entries_.empty() && !shutdown_) cv_.Wait(lock);
  if (entries_.empty()) return std::nullopt;
  return TakeAt(PickIndex(stream_index, NowNs()));
}

std::optional<AllReduceUnit> ReadySetScheduler::TryPopFor(int stream_index) {
  common::MutexLock lock(mu_);
  if (entries_.empty()) return std::nullopt;
  return TakeAt(PickIndex(stream_index, NowNs()));
}

bool ReadySetScheduler::UrgentWaiting(int active_priority) const noexcept {
  const int waiting = urgent_waiting_.load(std::memory_order_relaxed);
  return waiting < active_priority;
}

bool ReadySetScheduler::UrgentActive() const noexcept {
  return urgent_active_.load(std::memory_order_relaxed) > 0;
}

void ReadySetScheduler::UnitFinished(int priority) noexcept {
  // policy_ is frozen once service traffic runs (see the member comment),
  // so reading the cutoff without mu_ is safe here.
  if (priority < policy_.UrgentCutoff()) {
    urgent_active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ReadySetScheduler::RefreshUrgentHint() {
  const int cutoff = policy_.UrgentCutoff();
  int best = kNoUrgent;
  for (const Entry& e : entries_) {
    if (e.priority < cutoff) best = std::min(best, e.priority);
  }
  urgent_waiting_.store(best, std::memory_order_relaxed);
}

void ReadySetScheduler::Shutdown() {
  {
    common::MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
}

std::size_t ReadySetScheduler::Size() const {
  common::MutexLock lock(mu_);
  return entries_.size();
}

SchedulerStats ReadySetScheduler::stats() const {
  common::MutexLock lock(mu_);
  return stats_;
}

const ReadySetScheduler::PopInfo& ReadySetScheduler::last_pop()
    const noexcept {
  return t_last_pop;
}

}  // namespace aiacc::core
