#include "core/registry.h"

#include <algorithm>

#include "common/logging.h"

namespace aiacc::core {

Status GradientRegistry::Register(const std::string& name, std::size_t bytes) {
  if (finalized_) {
    return FailedPrecondition("registry already finalized");
  }
  if (bytes == 0) {
    return InvalidArgument("gradient '" + name + "' has zero size");
  }
  for (const RegisteredGradient& g : gradients_) {
    if (g.name == name) {
      return AlreadyExists("gradient '" + name + "' already registered");
    }
  }
  gradients_.push_back(RegisteredGradient{0, name, bytes});
  total_bytes_ += bytes;
  return Status::Ok();
}

void GradientRegistry::Finalize() {
  AIACC_CHECK(!finalized_);
  AIACC_CHECK(!gradients_.empty());
  std::sort(gradients_.begin(), gradients_.end(),
            [](const RegisteredGradient& a, const RegisteredGradient& b) {
              return a.name < b.name;
            });
  for (std::size_t i = 0; i < gradients_.size(); ++i) {
    gradients_[i].id = static_cast<int>(i);
  }
  finalized_ = true;
}

GradientRegistry GradientRegistry::FromModel(const dnn::ModelDescriptor& model,
                                             dnn::DType wire_dtype) {
  GradientRegistry registry;
  for (const dnn::GradientSpec& g : model.gradients()) {
    const Status st = registry.Register(g.name, g.ByteSize(wire_dtype));
    AIACC_CHECK(st.ok());
  }
  registry.Finalize();
  return registry;
}

Result<int> GradientRegistry::IdOf(const std::string& name) const {
  for (const RegisteredGradient& g : gradients_) {
    if (g.name == name) return g.id;
  }
  return NotFound("gradient '" + name + "' not registered");
}

}  // namespace aiacc::core
