#include "core/ddl_engine.h"

#include <cmath>

#include "common/logging.h"

namespace aiacc::core {

DdlEngine::DdlEngine(WorkloadSetup setup)
    : setup_(setup), jitter_rng_(setup.jitter_seed) {
  AIACC_CHECK(setup_.fabric != nullptr);
  AIACC_CHECK(setup_.collectives != nullptr);
  AIACC_CHECK(setup_.model != nullptr);
  AIACC_CHECK(setup_.batch_per_gpu > 0);
  profile_ = setup_.model->Profile(setup_.gpu, setup_.batch_per_gpu);
}

double DdlEngine::NextComputeJitter() {
  if (setup_.compute_jitter_sigma <= 0.0) return 1.0;
  return std::exp(jitter_rng_.Normal(0.0, setup_.compute_jitter_sigma));
}

std::vector<IterationStats> DdlEngine::RunIterations(int count) {
  std::vector<IterationStats> stats;
  stats.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    bool finished = false;
    RunIteration([&](IterationStats s) {
      stats.push_back(s);
      finished = true;
    });
    // The DES is single-threaded: run until this iteration's completion
    // callback fired.
    while (!finished && Sim().Step()) {
    }
    AIACC_CHECK(finished && "iteration did not complete (engine deadlock)");
  }
  return stats;
}

double DdlEngine::MeasureThroughput(int warmup, int measure) {
  AIACC_CHECK(measure > 0);
  (void)RunIterations(warmup);
  const double t0 = Sim().Now();
  (void)RunIterations(measure);
  const double elapsed = Sim().Now() - t0;
  AIACC_CHECK(elapsed > 0.0);
  const double samples = static_cast<double>(setup_.batch_per_gpu) *
                         WorldSize() * measure;
  return samples / elapsed;
}

}  // namespace aiacc::core
