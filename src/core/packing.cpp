#include "core/packing.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/logging.h"

namespace aiacc::core {

namespace {

/// Criticality = the earliest-consumed (smallest-id) gradient in the unit.
int UnitPriority(const AllReduceUnit& unit) {
  int priority = std::numeric_limits<int>::max();
  for (const UnitSegment& seg : unit.segments) {
    priority = std::min(priority, seg.gradient_id);
  }
  return unit.segments.empty() ? -1 : priority;
}

}  // namespace

std::vector<AllReduceUnit> PackingPlanner::Pack(
    const GradientRegistry& registry, const std::vector<int>& ready_ids,
    std::size_t alignment) {
  AIACC_CHECK(alignment > 0);
  std::vector<AllReduceUnit> units;
  AllReduceUnit current;
  current.unit_id = next_unit_id_++;
  std::size_t current_bytes = 0;

  auto flush = [&] {
    if (!current.segments.empty()) {
      current.priority = UnitPriority(current);
      units.push_back(std::move(current));
      current = AllReduceUnit{};
      current.unit_id = next_unit_id_++;
      current_bytes = 0;
    }
  };

  for (int id : ready_ids) {
    AIACC_CHECK(id >= 0 && id < registry.size());
    const std::size_t total = registry.Get(id).bytes;
    std::size_t offset = 0;
    while (offset < total) {
      std::size_t room = granularity_ - current_bytes;
      // Keep slices element-aligned; if the remaining room can't hold a
      // whole element, start a fresh unit.
      room -= room % alignment;
      if (room == 0) {
        flush();
        continue;
      }
      const std::size_t take = std::min(room, total - offset);
      current.segments.push_back(UnitSegment{id, offset, take});
      current_bytes += take;
      offset += take;
      if (current_bytes >= granularity_) flush();
    }
  }
  flush();
  return units;
}

void StreamingPacker::Add(int gradient_id, std::size_t bytes,
                          compress::CodecSpec codec) {
  if (!current_.segments.empty() && current_.codec != codec) {
    CloseCurrent();
  }
  std::size_t offset = 0;
  while (offset < bytes) {
    std::size_t room = granularity_ - current_bytes_;
    room -= room % alignment_;
    if (room == 0) {
      CloseCurrent();
      continue;
    }
    const std::size_t take = std::min(room, bytes - offset);
    // Stamp (and re-stamp after a mid-gradient close) so every unit a split
    // gradient spans carries the gradient's codec.
    current_.codec = codec;
    current_.segments.push_back(UnitSegment{gradient_id, offset, take});
    current_bytes_ += take;
    offset += take;
    if (current_bytes_ >= granularity_) CloseCurrent();
  }
}

void StreamingPacker::CloseCurrent() {
  if (current_.segments.empty()) return;
  current_.unit_id = next_unit_id_++;
  current_.priority = UnitPriority(current_);
  ready_.push_back(std::move(current_));
  current_ = AllReduceUnit{};
  current_bytes_ = 0;
}

void StreamingPacker::Flush() { CloseCurrent(); }

AllReduceUnit StreamingPacker::PopReadyUnit() {
  AIACC_CHECK(!ready_.empty());
  AllReduceUnit unit = std::move(ready_.front());
  ready_.pop_front();
  return unit;
}

void StreamingPacker::Reset() {
  current_ = AllReduceUnit{};
  current_bytes_ = 0;
  ready_.clear();
}

void GatherUnit(const AllReduceUnit& unit,
                const std::vector<std::span<const std::byte>>& gradient_data,
                std::span<std::byte> staging) {
  AIACC_CHECK(staging.size() >= unit.TotalBytes());
  std::size_t pos = 0;
  for (const UnitSegment& seg : unit.segments) {
    const auto& src = gradient_data[static_cast<std::size_t>(seg.gradient_id)];
    AIACC_CHECK(seg.offset + seg.length <= src.size());
    std::memcpy(staging.data() + pos, src.data() + seg.offset, seg.length);
    pos += seg.length;
  }
}

void ScatterUnit(const AllReduceUnit& unit, std::span<const std::byte> staging,
                 const std::vector<std::span<std::byte>>& gradient_data) {
  AIACC_CHECK(staging.size() >= unit.TotalBytes());
  std::size_t pos = 0;
  for (const UnitSegment& seg : unit.segments) {
    const auto& dst = gradient_data[static_cast<std::size_t>(seg.gradient_id)];
    AIACC_CHECK(seg.offset + seg.length <= dst.size());
    std::memcpy(dst.data() + seg.offset, staging.data() + pos, seg.length);
    pos += seg.length;
  }
}

}  // namespace aiacc::core
