#include "core/optimizer.h"

#include <algorithm>
#include <cmath>

namespace aiacc::core {
namespace {

/// Lazily size per-tensor state to match the parameter layout.
void EnsureState(std::vector<std::vector<float>>& state,
                 const std::vector<std::span<float>>& params) {
  if (state.size() == params.size()) return;
  AIACC_CHECK(state.empty());
  state.resize(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    state[i].assign(params[i].size(), 0.0f);
  }
}

double L2Norm(std::span<const float> v) {
  double sum = 0.0;
  for (float x : v) sum += double{x} * x;
  return std::sqrt(sum);
}

}  // namespace

double LinearDecay::LearningRate(std::int64_t step) const {
  const double frac =
      1.0 - static_cast<double>(std::min(step, total_)) /
                static_cast<double>(total_);
  return base_ * std::max(frac, final_fraction_);
}

double StepDecay::LearningRate(std::int64_t step) const {
  const auto k = static_cast<double>(step / step_size_);
  return base_ * std::pow(gamma_, k);
}

void Optimizer::Step(const std::vector<std::span<float>>& params,
                     const std::vector<std::span<const float>>& grads,
                     double lr) {
  AIACC_CHECK(params.size() == grads.size());
  BeginIteration(params);
  for (std::size_t t = 0; t < params.size(); ++t) {
    StepTensor(t, params[t], grads[t], lr);
  }
}

void SgdOptimizer::BeginIteration(
    const std::vector<std::span<float>>& params) {
  EnsureState(velocity_, params);
}

void SgdOptimizer::StepTensor(std::size_t tensor_index,
                              std::span<float> param,
                              std::span<const float> grad, double lr) {
  AIACC_CHECK(param.size() == grad.size());
  std::vector<float>& vel = velocity_[tensor_index];
  for (std::size_t i = 0; i < param.size(); ++i) {
    vel[i] = static_cast<float>(momentum_ * vel[i] + grad[i]);
    param[i] -= static_cast<float>(lr * vel[i]);
  }
}

void AdamOptimizer::BeginIteration(
    const std::vector<std::span<float>>& params) {
  EnsureState(m_, params);
  EnsureState(v_, params);
  ++t_;
  bc1_ = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  bc2_ = 1.0 - std::pow(beta2_, static_cast<double>(t_));
}

void AdamOptimizer::StepTensor(std::size_t tensor_index,
                               std::span<float> param,
                               std::span<const float> grad, double lr) {
  AIACC_CHECK(param.size() == grad.size());
  std::vector<float>& m = m_[tensor_index];
  std::vector<float>& v = v_[tensor_index];
  for (std::size_t i = 0; i < param.size(); ++i) {
    const double g = grad[i];
    m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * g);
    v[i] = static_cast<float>(beta2_ * v[i] + (1.0 - beta2_) * g * g);
    const double m_hat = m[i] / bc1_;
    const double v_hat = v[i] / bc2_;
    param[i] -= static_cast<float>(lr * m_hat / (std::sqrt(v_hat) + eps_));
  }
}

std::vector<std::vector<float>> AdamOptimizer::ExportState() const {
  // Layout: [t as a single float][m tensors...][v tensors...].
  std::vector<std::vector<float>> out;
  out.push_back({static_cast<float>(t_)});
  for (const auto& m : m_) out.push_back(m);
  for (const auto& v : v_) out.push_back(v);
  return out;
}

void AdamOptimizer::ImportState(std::vector<std::vector<float>> state) {
  AIACC_CHECK(!state.empty());
  AIACC_CHECK(state.front().size() == 1);
  AIACC_CHECK((state.size() - 1) % 2 == 0);
  t_ = static_cast<std::int64_t>(state.front()[0]);
  const std::size_t n = (state.size() - 1) / 2;
  m_.assign(state.begin() + 1, state.begin() + 1 + static_cast<long>(n));
  v_.assign(state.begin() + 1 + static_cast<long>(n), state.end());
}

void HybridAdamSgdOptimizer::BeginIteration(
    const std::vector<std::span<float>>& params) {
  adam_.BeginIteration(params);
}

void HybridAdamSgdOptimizer::StepTensor(std::size_t tensor_index,
                                        std::span<float> param,
                                        std::span<const float> grad,
                                        double lr) {
  // Snapshot, run Adam, then rescale this tensor's step to the magnitude an
  // SGD step would have taken (trust-ratio style), so the update direction
  // is adaptive but the per-layer step size follows SGD's well-understood
  // scaling. Tensors with fewer than 32 elements (biases, norms) keep the
  // raw Adam step. Entirely per-tensor, so the streamed and barriered
  // flows agree bit for bit.
  std::vector<float> before(param.begin(), param.end());
  adam_.StepTensor(tensor_index, param, grad, lr);
  if (param.size() < 32) return;
  double adam_step_norm = 0.0;
  for (std::size_t i = 0; i < param.size(); ++i) {
    const double d = double{param[i]} - before[i];
    adam_step_norm += d * d;
  }
  adam_step_norm = std::sqrt(adam_step_norm);
  if (adam_step_norm < 1e-12) return;
  const double sgd_step_norm = lr * L2Norm(grad);
  const double scale = sgd_step_norm / adam_step_norm;
  for (std::size_t i = 0; i < param.size(); ++i) {
    param[i] = static_cast<float>(before[i] +
                                  scale * (double{param[i]} - before[i]));
  }
}

std::vector<std::vector<float>> HybridAdamSgdOptimizer::ExportState() const {
  return adam_.ExportState();
}

void HybridAdamSgdOptimizer::ImportState(
    std::vector<std::vector<float>> state) {
  adam_.ImportState(std::move(state));
}

NanReport CheckForNan(const std::vector<std::span<const float>>& grads,
                      std::size_t max_entries) {
  NanReport report;
  for (std::size_t t = 0; t < grads.size(); ++t) {
    for (std::size_t i = 0; i < grads[t].size(); ++i) {
      const float v = grads[t][i];
      if (std::isnan(v) || std::isinf(v)) {
        report.entries.push_back(NanReport::Entry{t, i, v});
        if (report.entries.size() >= max_entries) return report;
      }
    }
  }
  return report;
}

}  // namespace aiacc::core
